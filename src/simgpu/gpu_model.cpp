#include "simgpu/gpu_model.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace hitopk::simgpu {
namespace {

// ceil(log2(n)) for n >= 1.
int ceil_log2(size_t n) {
  int bits = 0;
  size_t v = 1;
  while (v < n) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

}  // namespace

double GpuCostModel::coalesced_pass_seconds(size_t bytes) const {
  return params_.kernel_launch +
         static_cast<double>(bytes) /
             (params_.hbm_bandwidth * params_.coalesced_efficiency);
}

double GpuCostModel::sort_pass_seconds(size_t bytes) const {
  return params_.kernel_launch +
         static_cast<double>(bytes) /
             (params_.hbm_bandwidth * params_.sort_pass_efficiency);
}

double GpuCostModel::exact_topk_seconds(size_t d) const {
  if (d == 0) return 0.0;
  // Bitonic sort: stage s has s merge passes; total L(L+1)/2 passes, each
  // reading + writing the full key array.
  const int levels = std::max(1, ceil_log2(d));
  const int passes = levels * (levels + 1) / 2;
  const size_t bytes_per_pass = d * GpuModelParams::fp32 * 2;  // read+write
  return static_cast<double>(passes) * sort_pass_seconds(bytes_per_pass);
}

double GpuCostModel::dgc_topk_seconds(size_t d, double effective_fraction) const {
  if (d == 0) return 0.0;
  HITOPK_CHECK(effective_fraction > 0.0 && effective_fraction <= 1.0);
  // Sample + hierarchical re-selection modelled as one exact selection over
  // the calibrated effective volume, plus the full-input threshold scan,
  // stream compaction of candidates, and two host syncs for the retry logic.
  const auto effective = static_cast<size_t>(
      std::max(1.0, effective_fraction * static_cast<double>(d)));
  const double selection = exact_topk_seconds(effective);
  const double scan = coalesced_pass_seconds(d * GpuModelParams::fp32);
  const double compaction =
      params_.kernel_launch + static_cast<double>(d) * GpuModelParams::fp32 /
                                  (params_.hbm_bandwidth * params_.gather_efficiency * 4.0);
  return selection + scan + compaction + params_.host_sync;
}

double GpuCostModel::mstopk_seconds(size_t d, size_t k, int n_samplings) const {
  if (d == 0) return 0.0;
  const size_t pass_bytes = d * GpuModelParams::fp32;
  // abs + mean + max fused statistics (3 passes in the worst case).
  double t = 3.0 * coalesced_pass_seconds(pass_bytes);
  // N counting passes; each is a coalesced read with a block-local popcount.
  t += static_cast<double>(n_samplings) * coalesced_pass_seconds(pass_bytes);
  // Two compaction passes (certain set + band) and the k-element gather.
  t += 2.0 * coalesced_pass_seconds(pass_bytes);
  t += params_.kernel_launch +
       static_cast<double>(k) * GpuModelParams::fp32 /
           (params_.hbm_bandwidth * params_.gather_efficiency);
  return t;
}

double GpuCostModel::elementwise_seconds(size_t d, int n_tensors) const {
  const size_t bytes = d * GpuModelParams::fp32 * (static_cast<size_t>(n_tensors) + 1);
  return coalesced_pass_seconds(bytes);
}

double GpuCostModel::reduction_seconds(size_t d) const {
  return coalesced_pass_seconds(d * GpuModelParams::fp32) + params_.kernel_launch;
}

double GpuCostModel::scatter_add_seconds(size_t nnz) const {
  return params_.kernel_launch +
         static_cast<double>(nnz) * (GpuModelParams::fp32 + 4) /
             (params_.hbm_bandwidth * params_.gather_efficiency);
}

double GpuCostModel::lars_seconds(size_t layers, size_t total_params,
                                  int ops_per_layer) const {
  // Memory traffic: read weights + gradients once each.
  const double traffic =
      static_cast<double>(total_params) * GpuModelParams::fp32 * 2.0 /
      (params_.hbm_bandwidth * params_.coalesced_efficiency);
  // Per-layer op scheduling: norms, divisions, clips — launched per layer.
  const double op_overhead = static_cast<double>(layers) *
                             static_cast<double>(ops_per_layer) *
                             params_.framework_op_overhead;
  return traffic + op_overhead;
}

}  // namespace hitopk::simgpu
