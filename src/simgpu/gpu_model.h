// Analytical V100 device cost model.
//
// Substitution for real GPU hardware (see DESIGN.md): every operator the
// paper times on a V100 is described by its kernel-pass structure — how many
// passes over how many bytes, and whether each pass is coalesced (streaming)
// or irregular (sort/gather).  Time = sum over passes of
//     launch_latency + bytes_touched / (hbm_bandwidth * access_efficiency).
//
// This reproduces the architectural argument of Fig. 6: exact top-k needs
// O(log^2 d) data-wide sort passes at poor (irregular) efficiency, DGC needs
// two smaller exact selections plus compaction, and MSTopK needs only N
// coalesced counting passes.  Constants are calibrated in
// models/calibration.h so the absolute numbers land near the paper's.
#pragma once

#include <cstddef>

namespace hitopk::simgpu {

struct GpuModelParams {
  // V100-SXM2: 900 GB/s HBM2.
  double hbm_bandwidth = 900e9;  // bytes / second
  // Achievable fraction of peak for fully coalesced streaming passes.
  double coalesced_efficiency = 0.80;
  // Achievable fraction during sort-network passes (irregular strides,
  // bank conflicts); calibrated so nn.topk(128M) lands near Fig. 6's 1.2 s
  // and nn.topk(25.6M) near Fig. 1's 0.239 s compression bar.
  double sort_pass_efficiency = 0.34;
  // Random gather/scatter efficiency (index-driven access).
  double gather_efficiency = 0.08;
  // Kernel launch + scheduling latency per pass.
  double kernel_launch = 5e-6;  // seconds
  // Host<->device synchronization (needed when a selection result must be
  // inspected on the host, as DGC's retry loop does).
  double host_sync = 0.5e-3;  // seconds
  // Framework (TF graph executor) per-op overhead; dominates many-small-op
  // computations such as layer-wise LARS (see §5.4: 11 ms for 161 layers).
  double framework_op_overhead = 5.5e-6;  // seconds per op
  // FP32 element size on the device.
  static constexpr size_t fp32 = 4;
};

class GpuCostModel {
 public:
  GpuCostModel() = default;
  explicit GpuCostModel(const GpuModelParams& params) : params_(params) {}

  const GpuModelParams& params() const { return params_; }

  // One streaming pass reading (and optionally writing) `bytes`.
  double coalesced_pass_seconds(size_t bytes) const;

  // One sort-network pass over `bytes` (irregular access).
  double sort_pass_seconds(size_t bytes) const;

  // Exact top-k (TF nn.topk): bitonic-style full sort, ceil(log2 d) stages
  // of increasing length => L(L+1)/2 passes over the data.
  double exact_topk_seconds(size_t d) const;

  // DGC double sampling: exact selection over an effective fraction of the
  // input (sample sort + hierarchical candidate re-selection + stream
  // compaction) plus host syncs.  effective_fraction is calibrated; the
  // paper gives relative, not absolute, DGC cost.
  double dgc_topk_seconds(size_t d, double effective_fraction = 0.5) const;

  // MSTopK (Alg. 1): 3 setup passes (abs/mean/max), n_samplings coalesced
  // counting passes, 2 compaction passes, one gather of k elements.
  double mstopk_seconds(size_t d, size_t k, int n_samplings = 30) const;

  // Elementwise kernel touching n_tensors inputs + one output of d elements.
  double elementwise_seconds(size_t d, int n_tensors = 1) const;

  // Reduction (sum/norm) over d elements: one coalesced pass + log-depth
  // finish (folded into one extra launch).
  double reduction_seconds(size_t d) const;

  // Scatter-add of nnz sparse elements into a dense buffer.
  double scatter_add_seconds(size_t nnz) const;

  // Layer-wise LARS (Eq. 11) over `layers` tensors totalling `total_params`
  // elements: per layer, two norms plus a handful of scalar ops; per-op
  // framework overhead dominates (ops_per_layer calibrated to §5.4).
  double lars_seconds(size_t layers, size_t total_params,
                      int ops_per_layer = 12) const;

 private:
  GpuModelParams params_;
};

}  // namespace hitopk::simgpu
