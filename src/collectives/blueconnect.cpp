#include "collectives/blueconnect.h"

#include <algorithm>

#include "collectives/ring.h"

namespace hitopk::coll {
namespace {

std::vector<int> derive_factors(const simnet::Topology& topo) {
  HITOPK_VALIDATE(topo.uniform())
      << "BlueConnect auto-factorization needs a uniform topology; pass "
         "explicit factors for uneven clusters";
  const int n = topo.gpus_per_node();
  const int m = topo.nodes();
  if (m == 1) return {n};
  if (n == 1) return {m};
  return {n, m};
}

}  // namespace

size_t build_blueconnect(Schedule& sched, const simnet::Topology& topo,
                         const RankData& data, size_t elems,
                         const BlueConnectOptions& options) {
  const int p = topo.world_size();
  check_data(world_group(topo), data, elems);
  const bool functional = !data.empty();

  const std::vector<int> factors =
      options.factors.empty() ? derive_factors(topo) : options.factors;
  const size_t S = factors.size();
  int product = 1;
  for (int f : factors) {
    HITOPK_VALIDATE(f > 0) << "stage factor" << f << "must be positive";
    product *= f;
  }
  HITOPK_VALIDATE(product == p)
      << "stage factors multiply to" << product << ", world size is" << p;
  if (p <= 1) return S;

  // Mixed-radix strides: digit s of rank r is (r / stride[s]) % factors[s].
  std::vector<int> stride(S, 1);
  for (size_t s = 1; s < S; ++s) stride[s] = stride[s - 1] * factors[s - 1];

  // ext[r]: the range rank r owns entering the current stage (narrows by
  // the rank's stage digit as the Reduce-Scatter descends).
  std::vector<ChunkRange> ext(static_cast<size_t>(p), ChunkRange{0, elems});

  std::vector<std::vector<Group>> stage_groups(S);
  std::vector<std::vector<ChunkRange>> stage_extents(S);
  std::vector<RingGrid> grids(S);

  // Descending Reduce-Scatter stages, one collapse sync after each: stage
  // s + 1 reads the owner chunks stage s produced across *different* rings,
  // so the scalar phase hand-off is the correct dependency (and gives the
  // per-phase breakdown).
  for (size_t s = 0; s < S; ++s) {
    const int f = factors[s];
    std::vector<Group>& groups = stage_groups[s];
    std::vector<RankData> group_data;
    // Base ranks (digit s == 0) in ascending rank order; group member i is
    // base + i * stride[s], so rings follow the rank/digit order (per-node
    // rings for the intra stage, cross-node rings beyond).
    for (int base = 0; base < p; ++base) {
      if ((base / stride[s]) % f != 0) continue;
      Group group(static_cast<size_t>(f));
      for (int i = 0; i < f; ++i) {
        group[static_cast<size_t>(i)] = base + i * stride[s];
      }
      // All members share digits below s, hence the same owned extent.
      stage_extents[s].push_back(ext[static_cast<size_t>(base)]);
      if (functional) {
        RankData gd;
        for (int rank : group) gd.push_back(data[static_cast<size_t>(rank)]);
        group_data.push_back(std::move(gd));
      }
      groups.push_back(std::move(group));
    }
    grids[s] = ring_grid(sched, groups, group_data, options.wire);
    // Fused chains are valid at every stage: the non-owned chunks a stage's
    // Reduce-Scatter skips are exactly what its All-Gather counterpart
    // overwrites with resolved copies on the way back up.
    build_ring_reduce_scatter(sched, groups, grids[s], stage_extents[s],
                              options.wire, /*fused_chains=*/true);
    sched.sync(/*collapse=*/true);
    // Narrow every rank's extent by its stage digit.
    for (int r = 0; r < p; ++r) {
      const int digit = (r / stride[s]) % f;
      ChunkRange sub = chunk_range(ext[static_cast<size_t>(r)].count,
                                   static_cast<size_t>(f),
                                   static_cast<size_t>(digit));
      sub.begin += ext[static_cast<size_t>(r)].begin;
      ext[static_cast<size_t>(r)] = sub;
    }
  }

  // Ascending All-Gather stages (reverse order), reusing each stage's grid
  // so the resolved copies feed from the owner chunks in place.
  for (size_t s = S; s-- > 0;) {
    build_ring_allgather(sched, stage_groups[s], grids[s], stage_extents[s],
                         options.wire);
    if (s > 0) sched.sync(/*collapse=*/true);
  }
  return S;
}

BlueConnectBreakdown blueconnect_allreduce(simnet::Cluster& cluster,
                                           const RankData& data, size_t elems,
                                           const BlueConnectOptions& options,
                                           double start) {
  Schedule sched;
  const size_t S =
      build_blueconnect(sched, cluster.topology(), data, elems, options);

  BlueConnectBreakdown out;
  out.stages = S;
  if (cluster.topology().world_size() <= 1) return out;

  const Schedule::TimingResult timing = sched.run_timing(cluster, start);
  sched.run_data();

  // sync_times[S-1] is the Reduce-Scatter / All-Gather midpoint.
  const double mid = timing.sync_times[S - 1];
  out.reduce_scatter = mid - start;
  out.allgather = timing.finish - mid;
  out.total = timing.finish - start;
  return out;
}

}  // namespace hitopk::coll
