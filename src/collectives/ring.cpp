#include "collectives/ring.h"

#include <algorithm>

#include "core/parallel.h"
#include "core/tensor.h"

namespace hitopk::coll {
namespace {

// Send-chunk schedules.  Reduce-scatter: at step s, group rank i sends chunk
// (i - s - 1) mod G and receives chunk (i - s - 2) mod G; after G-1 steps
// rank i owns chunk i fully reduced.  All-gather: rank i starts owning chunk
// i, sends chunk (i - s) mod G, receives (i - s - 1) mod G.
size_t rs_send_chunk(size_t i, size_t s, size_t g) { return (i + 2 * g - s - 1) % g; }
size_t ag_send_chunk(size_t i, size_t s, size_t g) { return (i + 2 * g - s) % g; }

// Per-group in-flight state: the data-readiness clock of each group rank.
using Ready = std::vector<double>;

// One interleaved reduce-scatter pass over all groups.  All groups must have
// the same size; steps are issued round-robin across groups so concurrent
// streams share NIC capacity in the port model.
void rs_steps(simnet::Cluster& cluster, const std::vector<Group>& groups,
              const std::vector<RankData>& data, size_t elems,
              size_t wire_bytes, std::vector<Ready>& ready) {
  const size_t g = groups.empty() ? 0 : groups[0].size();
  if (g <= 1) return;
  const size_t nq = groups.size();
  std::vector<Ready> next(ready.size());
  for (size_t s = 0; s + 1 < g; ++s) {
    // Timing: the cluster port clocks mutate on every send, so the send
    // order stays serial (and identical to the pre-parallel code).
    for (size_t q = 0; q < nq; ++q) next[q] = ready[q];
    for (size_t i = 0; i < g; ++i) {
      for (size_t q = 0; q < nq; ++q) {
        const Group& group = groups[q];
        const size_t peer = (i + 1) % g;
        const size_t chunk = rs_send_chunk(i, s, g);
        const ChunkRange range = chunk_range(elems, g, chunk);
        const double done =
            cluster.send(group[i], group[peer], range.count * wire_bytes,
                         ready[q][i]);
        next[q][peer] = std::max(next[q][peer], done);
      }
    }
    ready.swap(next);
    // Data movement: within one step every (group, rank) pair reduces into a
    // distinct (buffer, chunk) destination and reads a chunk no other pair
    // writes, so the pairs run concurrently and bitwise-match the serial
    // loop.
    if (!data.empty()) {
      parallel_for(0, g * nq, [&](size_t pair) {
        const size_t i = pair / nq;
        const size_t q = pair % nq;
        if (data[q].empty()) return;
        const size_t peer = (i + 1) % g;
        const size_t chunk = rs_send_chunk(i, s, g);
        const ChunkRange range = chunk_range(elems, g, chunk);
        if (range.count == 0) return;
        auto src = data[q][i].subspan(range.begin, range.count);
        auto dst = data[q][peer].subspan(range.begin, range.count);
        tensor_ops::add_into(dst, src);  // vectorized reduce
      });
    }
  }
}

void ag_steps(simnet::Cluster& cluster, const std::vector<Group>& groups,
              const std::vector<RankData>& data, size_t elems,
              size_t wire_bytes, std::vector<Ready>& ready) {
  const size_t g = groups.empty() ? 0 : groups[0].size();
  if (g <= 1) return;
  const size_t nq = groups.size();
  std::vector<Ready> next(ready.size());
  for (size_t s = 0; s + 1 < g; ++s) {
    // Serial timing, parallel data movement — see rs_steps.
    for (size_t q = 0; q < nq; ++q) next[q] = ready[q];
    for (size_t i = 0; i < g; ++i) {
      for (size_t q = 0; q < nq; ++q) {
        const Group& group = groups[q];
        const size_t peer = (i + 1) % g;
        const size_t chunk = ag_send_chunk(i, s, g);
        const ChunkRange range = chunk_range(elems, g, chunk);
        const double done =
            cluster.send(group[i], group[peer], range.count * wire_bytes,
                         ready[q][i]);
        next[q][peer] = std::max(next[q][peer], done);
      }
    }
    ready.swap(next);
    if (!data.empty()) {
      parallel_for(0, g * nq, [&](size_t pair) {
        const size_t i = pair / nq;
        const size_t q = pair % nq;
        if (data[q].empty()) return;
        const size_t peer = (i + 1) % g;
        const size_t chunk = ag_send_chunk(i, s, g);
        const ChunkRange range = chunk_range(elems, g, chunk);
        if (range.count == 0) return;
        auto src = data[q][i].subspan(range.begin, range.count);
        auto dst = data[q][peer].subspan(range.begin, range.count);
        std::copy(src.begin(), src.end(), dst.begin());
      });
    }
  }
}

std::vector<Ready> init_ready(const std::vector<Group>& groups, double start) {
  std::vector<Ready> ready(groups.size());
  for (size_t q = 0; q < groups.size(); ++q) {
    ready[q].assign(groups[q].size(), start);
  }
  return ready;
}

double max_ready(const std::vector<Ready>& ready, double floor) {
  double best = floor;
  for (const auto& r : ready) {
    for (double t : r) best = std::max(best, t);
  }
  return best;
}

void check_groups(const std::vector<Group>& groups,
                  const std::vector<RankData>& data, size_t elems) {
  HITOPK_CHECK(!groups.empty());
  for (const auto& group : groups) {
    HITOPK_CHECK_EQ(group.size(), groups[0].size());
  }
  if (!data.empty()) {
    HITOPK_CHECK_EQ(data.size(), groups.size());
    for (size_t q = 0; q < groups.size(); ++q) {
      check_data(groups[q], data[q], elems);
    }
  }
}

}  // namespace

double ring_reduce_scatter(simnet::Cluster& cluster, const Group& group,
                           const RankData& data, size_t elems,
                           size_t wire_bytes, double start) {
  check_data(group, data, elems);
  if (group.size() <= 1) return start;
  std::vector<Group> groups{group};
  std::vector<RankData> group_data;
  if (!data.empty()) group_data.push_back(data);
  auto ready = init_ready(groups, start);
  rs_steps(cluster, groups, group_data, elems, wire_bytes, ready);
  return max_ready(ready, start);
}

double ring_allgather(simnet::Cluster& cluster, const Group& group,
                      const RankData& data, size_t elems, size_t wire_bytes,
                      double start) {
  check_data(group, data, elems);
  if (group.size() <= 1) return start;
  std::vector<Group> groups{group};
  std::vector<RankData> group_data;
  if (!data.empty()) group_data.push_back(data);
  auto ready = init_ready(groups, start);
  ag_steps(cluster, groups, group_data, elems, wire_bytes, ready);
  return max_ready(ready, start);
}

double ring_allreduce(simnet::Cluster& cluster, const Group& group,
                      const RankData& data, size_t elems, size_t wire_bytes,
                      double start) {
  const double mid =
      ring_reduce_scatter(cluster, group, data, elems, wire_bytes, start);
  return ring_allgather(cluster, group, data, elems, wire_bytes, mid);
}

double ring_allreduce_multi(simnet::Cluster& cluster,
                            const std::vector<Group>& groups,
                            const std::vector<RankData>& data, size_t elems,
                            size_t wire_bytes, double start) {
  check_groups(groups, data, elems);
  if (groups[0].size() <= 1) return start;
  auto ready = init_ready(groups, start);
  // No barrier between the phases: each group's all-gather steps chain off
  // its own reduce-scatter readiness.
  rs_steps(cluster, groups, data, elems, wire_bytes, ready);
  ag_steps(cluster, groups, data, elems, wire_bytes, ready);
  return max_ready(ready, start);
}

double ring_allgather_bytes(simnet::Cluster& cluster, const Group& group,
                            const std::vector<size_t>& payload_bytes,
                            double start, double step_overhead) {
  return ring_allgather_bytes_multi(cluster, {group}, {payload_bytes}, start,
                                    step_overhead);
}

double ring_allgather_bytes_multi(
    simnet::Cluster& cluster, const std::vector<Group>& groups,
    const std::vector<std::vector<size_t>>& payload_bytes, double start,
    double step_overhead) {
  HITOPK_CHECK(!groups.empty());
  HITOPK_CHECK_EQ(payload_bytes.size(), groups.size());
  const size_t g = groups[0].size();
  for (size_t q = 0; q < groups.size(); ++q) {
    HITOPK_CHECK_EQ(groups[q].size(), g);
    HITOPK_CHECK_EQ(payload_bytes[q].size(), g);
  }
  if (g <= 1) return start;

  auto ready = init_ready(groups, start);
  std::vector<Ready> next(groups.size());
  for (size_t s = 0; s + 1 < g; ++s) {
    for (size_t q = 0; q < groups.size(); ++q) next[q] = ready[q];
    for (size_t i = 0; i < g; ++i) {
      for (size_t q = 0; q < groups.size(); ++q) {
        const Group& group = groups[q];
        const size_t peer = (i + 1) % g;
        // At step s, rank i forwards the block originating at (i - s) mod G.
        const size_t origin = (i + 2 * g - s) % g;
        const double done =
            cluster.send(group[i], group[peer], payload_bytes[q][origin],
                         ready[q][i], step_overhead);
        next[q][peer] = std::max(next[q][peer], done);
      }
    }
    ready.swap(next);
  }
  return max_ready(ready, start);
}

}  // namespace hitopk::coll
