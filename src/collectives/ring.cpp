#include "collectives/ring.h"

#include <algorithm>

#include "core/parallel.h"
#include "core/tensor.h"

namespace hitopk::coll {
namespace {

// Send-chunk schedules.  Reduce-scatter: at step s, group rank i sends chunk
// (i - s - 1) mod G and receives chunk (i - s - 2) mod G; after G-1 steps
// rank i owns chunk i fully reduced.  All-gather: rank i starts owning chunk
// i, sends chunk (i - s) mod G, receives (i - s - 1) mod G.
size_t rs_send_chunk(size_t i, size_t s, size_t g) { return (i + 2 * g - s - 1) % g; }
size_t ag_send_chunk(size_t i, size_t s, size_t g) { return (i + 2 * g - s) % g; }

// ===================== legacy path (validation reference) =====================
// The pre-engine inline loops, kept verbatim behind CollectivePath::kLegacy:
// schedule_equivalence_test pins the engine to them bitwise (data) and
// exactly (clocks).

// Per-group in-flight state: the data-readiness clock of each group rank.
using Ready = std::vector<double>;

// One interleaved reduce-scatter pass over all groups.  All groups must have
// the same size; steps are issued round-robin across groups so concurrent
// streams share NIC capacity in the port model.
// Worker-local staging for the legacy loops' quantized hops: the receiver
// adds/stores rt(sent chunk), so the sent chunk is rounded off to the side.
std::vector<float>& legacy_staging() {
  thread_local std::vector<float> tmp;
  return tmp;
}

void rs_steps(simnet::Cluster& cluster, const std::vector<Group>& groups,
              const std::vector<RankData>& data, size_t elems, WireDtype wire,
              std::vector<Ready>& ready) {
  const size_t g = groups.empty() ? 0 : groups[0].size();
  if (g <= 1) return;
  const size_t nq = groups.size();
  std::vector<Ready> next(ready.size());
  for (size_t s = 0; s + 1 < g; ++s) {
    // Timing: the cluster port clocks mutate on every send, so the send
    // order stays serial (and identical to the pre-parallel code).
    for (size_t q = 0; q < nq; ++q) next[q] = ready[q];
    for (size_t i = 0; i < g; ++i) {
      for (size_t q = 0; q < nq; ++q) {
        const Group& group = groups[q];
        const size_t peer = (i + 1) % g;
        const size_t chunk = rs_send_chunk(i, s, g);
        const ChunkRange range = chunk_range(elems, g, chunk);
        const double done =
            cluster
                .submit({simnet::kDefaultJob, group[i], group[peer],
                         wire_payload_bytes(wire, range.count), ready[q][i]})
                .time;
        next[q][peer] = std::max(next[q][peer], done);
      }
    }
    ready.swap(next);
    // Data movement: within one step every (group, rank) pair reduces into a
    // distinct (buffer, chunk) destination and reads a chunk no other pair
    // writes, so the pairs run concurrently and bitwise-match the serial
    // loop.  On a quantized wire the receiver adds the codec-rounded chunk:
    // dst += rt(src), the hop-by-hop reference the engine is pinned to.
    if (!data.empty()) {
      parallel_for(0, g * nq, [&](size_t pair) {
        const size_t i = pair / nq;
        const size_t q = pair % nq;
        if (data[q].empty()) return;
        const size_t peer = (i + 1) % g;
        const size_t chunk = rs_send_chunk(i, s, g);
        const ChunkRange range = chunk_range(elems, g, chunk);
        if (range.count == 0) return;
        auto src = data[q][i].subspan(range.begin, range.count);
        auto dst = data[q][peer].subspan(range.begin, range.count);
        if (wire == WireDtype::kFp32) {
          tensor_ops::add_into(dst, src);  // vectorized reduce
        } else {
          auto& tmp = legacy_staging();
          tmp.assign(src.begin(), src.end());
          std::span<float> staged(tmp.data(), range.count);
          wire_round_trip(wire, staged);
          tensor_ops::add_into(dst, staged);
        }
      });
    }
  }
}

void ag_steps(simnet::Cluster& cluster, const std::vector<Group>& groups,
              const std::vector<RankData>& data, size_t elems, WireDtype wire,
              std::vector<Ready>& ready) {
  const size_t g = groups.empty() ? 0 : groups[0].size();
  if (g <= 1) return;
  const size_t nq = groups.size();
  std::vector<Ready> next(ready.size());
  for (size_t s = 0; s + 1 < g; ++s) {
    // Serial timing, parallel data movement — see rs_steps.
    for (size_t q = 0; q < nq; ++q) next[q] = ready[q];
    for (size_t i = 0; i < g; ++i) {
      for (size_t q = 0; q < nq; ++q) {
        const Group& group = groups[q];
        const size_t peer = (i + 1) % g;
        const size_t chunk = ag_send_chunk(i, s, g);
        const ChunkRange range = chunk_range(elems, g, chunk);
        const double done =
            cluster
                .submit({simnet::kDefaultJob, group[i], group[peer],
                         wire_payload_bytes(wire, range.count), ready[q][i]})
                .time;
        next[q][peer] = std::max(next[q][peer], done);
      }
    }
    ready.swap(next);
    // A quantized gather hop stores rt(src); forwarding is then a fixed
    // point (the codec is idempotent), so every non-origin replica holds
    // the identical rounded chunk.
    if (!data.empty()) {
      parallel_for(0, g * nq, [&](size_t pair) {
        const size_t i = pair / nq;
        const size_t q = pair % nq;
        if (data[q].empty()) return;
        const size_t peer = (i + 1) % g;
        const size_t chunk = ag_send_chunk(i, s, g);
        const ChunkRange range = chunk_range(elems, g, chunk);
        if (range.count == 0) return;
        auto src = data[q][i].subspan(range.begin, range.count);
        auto dst = data[q][peer].subspan(range.begin, range.count);
        std::copy(src.begin(), src.end(), dst.begin());
        wire_round_trip(wire, dst);
      });
    }
  }
}

std::vector<Ready> init_ready(const std::vector<Group>& groups, double start) {
  std::vector<Ready> ready(groups.size());
  for (size_t q = 0; q < groups.size(); ++q) {
    ready[q].assign(groups[q].size(), start);
  }
  return ready;
}

double max_ready(const std::vector<Ready>& ready, double floor) {
  double best = floor;
  for (const auto& r : ready) {
    for (double t : r) best = std::max(best, t);
  }
  return best;
}

double legacy_allgather_bytes_multi(
    simnet::Cluster& cluster, const std::vector<Group>& groups,
    const std::vector<std::vector<size_t>>& payload_bytes, double start,
    double step_overhead) {
  const size_t g = groups[0].size();
  auto ready = init_ready(groups, start);
  std::vector<Ready> next(groups.size());
  for (size_t s = 0; s + 1 < g; ++s) {
    for (size_t q = 0; q < groups.size(); ++q) next[q] = ready[q];
    for (size_t i = 0; i < g; ++i) {
      for (size_t q = 0; q < groups.size(); ++q) {
        const Group& group = groups[q];
        const size_t peer = (i + 1) % g;
        // At step s, rank i forwards the block originating at (i - s) mod G.
        const size_t origin = (i + 2 * g - s) % g;
        const double done =
            cluster
                .submit({simnet::kDefaultJob, group[i], group[peer],
                         payload_bytes[q][origin], ready[q][i], step_overhead})
                .time;
        next[q][peer] = std::max(next[q][peer], done);
      }
    }
    ready.swap(next);
  }
  return max_ready(ready, start);
}

// ========================== engine path helpers ==========================

void check_groups(const std::vector<Group>& groups,
                  const std::vector<RankData>& data, size_t elems) {
  HITOPK_VALIDATE(!groups.empty()) << "ring collective needs a group";
  for (const auto& group : groups) {
    HITOPK_VALIDATE(group.size() == groups[0].size())
        << "ring groups must share one size; got" << group.size() << "and"
        << groups[0].size();
  }
  if (!data.empty()) {
    HITOPK_VALIDATE(data.size() == groups.size())
        << "got" << data.size() << "data vectors for" << groups.size()
        << "groups";
    for (size_t q = 0; q < groups.size(); ++q) {
      check_data(groups[q], data[q], elems);
    }
  }
}

// Wraps a single group (+ optional data) for the multi builders.
std::vector<RankData> single_data(const RankData& data) {
  std::vector<RankData> out;
  if (!data.empty()) out.push_back(data);
  return out;
}

}  // namespace

RingGrid ring_grid(Schedule& sched, const std::vector<Group>& groups,
                   const std::vector<RankData>& data, WireDtype wire) {
  RingGrid grid;
  grid.nq = groups.size();
  grid.g = groups.empty() ? 0 : groups[0].size();
  grid.slot0 = sched.add_slots(static_cast<uint32_t>(grid.nq * grid.g));
  if (!data.empty()) {
    grid.bufs.assign(grid.nq * grid.g, RingGrid::kNoBuf);
    for (size_t q = 0; q < grid.nq; ++q) {
      if (data[q].empty()) continue;  // timing-only group
      for (size_t i = 0; i < grid.g; ++i) {
        grid.bufs[q * grid.g + i] = sched.add_buffer(data[q][i], wire);
      }
    }
  }
  return grid;
}

void build_ring_reduce_scatter(Schedule& sched,
                               const std::vector<Group>& groups,
                               const RingGrid& grid,
                               const std::vector<ChunkRange>& extents,
                               WireDtype wire, bool fused_chains) {
  const size_t g = grid.g;
  if (g <= 1) return;
  HITOPK_CHECK_EQ(extents.size(), grid.nq);
  // Chunk c of group q, inside that group's extent.
  auto chunk_of = [&](size_t q, size_t c) {
    ChunkRange range = chunk_range(extents[q].count, g, c);
    range.begin += extents[q].begin;
    return range;
  };
  // Fused chains: all data movement sits in the first step (each chunk's
  // chain is independent — chain c writes only owner c's chunk c and reads
  // chunk c of the others, ranges disjoint across chains).  Per chunk the
  // legacy reduction order is b[c+1], then b[c+2] ... b[c+g-1], with the
  // owner's own contribution last.
  if (fused_chains && !grid.bufs.empty()) {
    for (size_t q = 0; q < grid.nq; ++q) {
      if (grid.buf(q, 0) == RingGrid::kNoBuf) continue;
      for (size_t c = 0; c < g; ++c) {
        const ChunkRange range = chunk_of(q, c);
        const uint32_t owner = grid.buf(q, c);
        sched.move(TransferOp::kChainFirst, grid.buf(q, (c + 1) % g), owner,
                   range.begin, range.count);
        for (size_t j = 2; j < g; ++j) {
          sched.move(TransferOp::kChainMid, grid.buf(q, (c + j) % g), owner,
                     range.begin, range.count);
        }
        sched.move(TransferOp::kChainLast, owner, owner, range.begin,
                   range.count);
      }
    }
  }
  for (size_t s = 0; s + 1 < g; ++s) {
    for (size_t i = 0; i < g; ++i) {
      for (size_t q = 0; q < grid.nq; ++q) {
        const size_t peer = (i + 1) % g;
        const size_t chunk = rs_send_chunk(i, s, g);
        const ChunkRange range = chunk_of(q, chunk);
        sched.send(groups[q][i], groups[q][peer],
                   wire_payload_bytes(wire, range.count), grid.slot(q, i),
                   grid.slot(q, peer));
        if (!fused_chains && !grid.bufs.empty() &&
            grid.buf(q, i) != RingGrid::kNoBuf) {
          sched.reduce(grid.buf(q, i), grid.buf(q, peer), range.begin,
                       range.count);
        }
      }
    }
    sched.end_step();
  }
}

void build_ring_reduce_scatter(Schedule& sched,
                               const std::vector<Group>& groups,
                               const RingGrid& grid, size_t elems,
                               WireDtype wire, bool fused_chains) {
  build_ring_reduce_scatter(sched, groups, grid,
                            std::vector<ChunkRange>(grid.nq, {0, elems}),
                            wire, fused_chains);
}

void build_ring_allgather(Schedule& sched, const std::vector<Group>& groups,
                          const RingGrid& grid,
                          const std::vector<ChunkRange>& extents,
                          WireDtype wire) {
  const size_t g = grid.g;
  if (g <= 1) return;
  HITOPK_CHECK_EQ(extents.size(), grid.nq);
  auto chunk_of = [&](size_t q, size_t c) {
    ChunkRange range = chunk_range(extents[q].count, g, c);
    range.begin += extents[q].begin;
    return range;
  };
  // Resolved data movement: the wire forwards chunk c hop by hop, but every
  // forwarded value *is* group rank c's chunk c, so each destination gets
  // one direct copy from the origin (recorded in the first gather step —
  // origins are never overwritten during the gather, so intra-step reads
  // and writes are disjoint).  Source-major buckets: owner c's chunk is
  // read once and streams cache-hot to its g-1 destinations.
  if (!grid.bufs.empty()) {
    for (size_t q = 0; q < grid.nq; ++q) {
      if (grid.buf(q, 0) == RingGrid::kNoBuf) continue;
      for (size_t c = 0; c < g; ++c) {
        const ChunkRange owned = chunk_of(q, c);
        for (size_t i = 0; i < g; ++i) {
          if (i == c) continue;
          sched.copy(grid.buf(q, c), grid.buf(q, i), owned.begin, owned.count,
                     /*bucket=*/grid.buf(q, c));
        }
      }
    }
  }
  for (size_t s = 0; s + 1 < g; ++s) {
    for (size_t i = 0; i < g; ++i) {
      for (size_t q = 0; q < grid.nq; ++q) {
        const size_t peer = (i + 1) % g;
        const size_t chunk = ag_send_chunk(i, s, g);
        const ChunkRange range = chunk_of(q, chunk);
        sched.send(groups[q][i], groups[q][peer],
                   wire_payload_bytes(wire, range.count), grid.slot(q, i),
                   grid.slot(q, peer));
      }
    }
    sched.end_step();
  }
}

void build_ring_allgather(Schedule& sched, const std::vector<Group>& groups,
                          const RingGrid& grid, size_t elems, WireDtype wire) {
  build_ring_allgather(sched, groups, grid,
                       std::vector<ChunkRange>(grid.nq, {0, elems}), wire);
}

void build_ring_allgather_bytes(
    Schedule& sched, const std::vector<Group>& groups, const RingGrid& grid,
    const std::vector<std::vector<size_t>>& payload_bytes,
    double step_overhead) {
  const size_t g = grid.g;
  if (g <= 1) return;
  for (size_t s = 0; s + 1 < g; ++s) {
    for (size_t i = 0; i < g; ++i) {
      for (size_t q = 0; q < grid.nq; ++q) {
        const size_t peer = (i + 1) % g;
        const size_t origin = (i + 2 * g - s) % g;
        sched.send(groups[q][i], groups[q][peer], payload_bytes[q][origin],
                   grid.slot(q, i), grid.slot(q, peer), step_overhead);
      }
    }
    sched.end_step();
  }
}

// ========================== public entry points ==========================

double ring_reduce_scatter(simnet::Cluster& cluster, const Group& group,
                           const RankData& data, size_t elems, WireDtype wire,
                           double start) {
  check_data(group, data, elems);
  if (group.size() <= 1) return start;
  std::vector<Group> groups{group};
  std::vector<RankData> group_data = single_data(data);
  if (collective_path() == CollectivePath::kLegacy) {
    auto ready = init_ready(groups, start);
    rs_steps(cluster, groups, group_data, elems, wire, ready);
    return max_ready(ready, start);
  }
  Schedule sched;
  const RingGrid grid = ring_grid(sched, groups, group_data, wire);
  build_ring_reduce_scatter(sched, groups, grid, elems, wire);
  const double done = sched.run_timing(cluster, start).finish;
  sched.run_data();
  return done;
}

double ring_allgather(simnet::Cluster& cluster, const Group& group,
                      const RankData& data, size_t elems, WireDtype wire,
                      double start) {
  check_data(group, data, elems);
  if (group.size() <= 1) return start;
  std::vector<Group> groups{group};
  std::vector<RankData> group_data = single_data(data);
  if (collective_path() == CollectivePath::kLegacy) {
    auto ready = init_ready(groups, start);
    ag_steps(cluster, groups, group_data, elems, wire, ready);
    return max_ready(ready, start);
  }
  Schedule sched;
  const RingGrid grid = ring_grid(sched, groups, group_data, wire);
  build_ring_allgather(sched, groups, grid, elems, wire);
  const double done = sched.run_timing(cluster, start).finish;
  sched.run_data();
  return done;
}

double ring_allreduce(simnet::Cluster& cluster, const Group& group,
                      const RankData& data, size_t elems, WireDtype wire,
                      double start) {
  if (collective_path() == CollectivePath::kLegacy) {
    const double mid =
        ring_reduce_scatter(cluster, group, data, elems, wire, start);
    return ring_allgather(cluster, group, data, elems, wire, mid);
  }
  check_data(group, data, elems);
  if (group.size() <= 1) return start;
  std::vector<Group> groups{group};
  std::vector<RankData> group_data = single_data(data);
  Schedule sched;
  const RingGrid grid = ring_grid(sched, groups, group_data, wire);
  build_ring_reduce_scatter(sched, groups, grid, elems, wire,
                            /*fused_chains=*/true);
  // The legacy path runs RS and AG as separate calls: the gather starts for
  // everyone at the RS completion maximum.  The gather then reuses the
  // reduce-scatter result in place (owner chunks feed the resolved copies).
  sched.sync(/*collapse=*/true);
  build_ring_allgather(sched, groups, grid, elems, wire);
  const double done = sched.run_timing(cluster, start).finish;
  sched.run_data();
  return done;
}

double ring_allreduce_multi(simnet::Cluster& cluster,
                            const std::vector<Group>& groups,
                            const std::vector<RankData>& data, size_t elems,
                            WireDtype wire, double start) {
  check_groups(groups, data, elems);
  if (groups[0].size() <= 1) return start;
  if (collective_path() == CollectivePath::kLegacy) {
    auto ready = init_ready(groups, start);
    // No barrier between the phases: each group's all-gather steps chain off
    // its own reduce-scatter readiness.
    rs_steps(cluster, groups, data, elems, wire, ready);
    ag_steps(cluster, groups, data, elems, wire, ready);
    return max_ready(ready, start);
  }
  Schedule sched;
  const RingGrid grid = ring_grid(sched, groups, data, wire);
  build_ring_reduce_scatter(sched, groups, grid, elems, wire);
  // No sync: each group's gather chains off its own reduce-scatter slots.
  build_ring_allgather(sched, groups, grid, elems, wire);
  const double done = sched.run_timing(cluster, start).finish;
  sched.run_data();
  return done;
}

double ring_allgather_bytes(simnet::Cluster& cluster, const Group& group,
                            const std::vector<size_t>& payload_bytes,
                            double start, double step_overhead) {
  return ring_allgather_bytes_multi(cluster, {group}, {payload_bytes}, start,
                                    step_overhead);
}

double ring_allgather_bytes_multi(
    simnet::Cluster& cluster, const std::vector<Group>& groups,
    const std::vector<std::vector<size_t>>& payload_bytes, double start,
    double step_overhead) {
  HITOPK_VALIDATE(!groups.empty()) << "allgather needs a group";
  HITOPK_VALIDATE(payload_bytes.size() == groups.size())
      << "got" << payload_bytes.size() << "payload vectors for"
      << groups.size() << "groups";
  const size_t g = groups[0].size();
  // Zero-size groups carry no blocks and no steps: return before the
  // per-group validation below would index payload_bytes[q][origin] with
  // origin computed modulo g == 0.
  if (g == 0) return start;
  for (size_t q = 0; q < groups.size(); ++q) {
    HITOPK_VALIDATE(groups[q].size() == g)
        << "group" << q << "has" << groups[q].size() << "ranks, expected" << g;
    HITOPK_VALIDATE(payload_bytes[q].size() == g)
        << "payload vector" << q << "has" << payload_bytes[q].size()
        << "entries, expected" << g;
  }
  if (g == 1) return start;

  if (collective_path() == CollectivePath::kLegacy) {
    return legacy_allgather_bytes_multi(cluster, groups, payload_bytes, start,
                                        step_overhead);
  }
  Schedule sched;
  const RingGrid grid = ring_grid(sched, groups, {});
  build_ring_allgather_bytes(sched, groups, grid, payload_bytes,
                             step_overhead);
  return sched.run_timing(cluster, start).finish;
}

}  // namespace hitopk::coll
