// Hierarchical leader-based All-Reduce (ablation baseline).
//
// The other classic two-level dense scheme (Goyal et al. 2017; Jia et al.
// 2018): reduce inside each node onto a leader GPU, ring All-Reduce among
// the m leaders over the NIC, then broadcast inside each node.  Unlike
// 2DTAR it uses only one inter-node stream per node but moves the *full*
// buffer across the NIC, so it loses to 2DTAR when n > 1 — the comparison
// bench_ablation_cluster quantifies this.  Works on uneven topologies
// (per-node GPU counts may differ): only the leader role matters, so it is
// the dense baseline for heterogeneous-cluster scenarios.
#pragma once

#include "collectives/common.h"
#include "collectives/schedule.h"

namespace hitopk::coll {

struct HierArBreakdown {
  double intra_reduce = 0.0;
  double inter_allreduce = 0.0;
  double intra_broadcast = 0.0;
  double total = 0.0;
};

HierArBreakdown hier_allreduce(simnet::Cluster& cluster, const RankData& data,
                               size_t elems, WireDtype wire, double start);

// Records the whole collective (leader fan-in, leaders' ring All-Reduce,
// leader broadcast, with collapse syncs at the phase boundaries:
// sync_times[0] ends phase 1, sync_times[2] ends phase 2) into a
// caller-owned schedule.  Works on uneven topologies.  Exposed for the
// planner (collectives/planner.h).
void build_hier_allreduce(Schedule& sched, const simnet::Topology& topo,
                          const RankData& data, size_t elems, WireDtype wire);

}  // namespace hitopk::coll
