// Ring collectives (the NCCL-style building blocks).
//
// All three run over an arbitrary rank group on per-rank buffers of `elems`
// floats, with `wire_bytes` bytes per element on the wire (4 = FP32,
// 2 = FP16).  Data spans may be empty for timing-only simulation (see
// common.h).  Every function takes a simulated start time (all group ranks
// aligned — the training loop synchronizes per gradient bucket) and returns
// the completion time of the slowest rank.
#pragma once

#include "collectives/common.h"

namespace hitopk::coll {

// In-place ring Reduce-Scatter.  After completion, group rank i's chunk i
// (chunk_range(elems, G, i)) holds the sum over all group ranks; other
// chunks hold partial sums.  Cost: (G-1) steps of elems/G elements.
double ring_reduce_scatter(simnet::Cluster& cluster, const Group& group,
                           const RankData& data, size_t elems,
                           size_t wire_bytes, double start);

// In-place ring All-Gather.  Requires group rank i's chunk i to be valid;
// replicates every chunk to every rank.
double ring_allgather(simnet::Cluster& cluster, const Group& group,
                      const RankData& data, size_t elems, size_t wire_bytes,
                      double start);

// Reduce-Scatter followed by All-Gather: the classic bandwidth-optimal ring
// All-Reduce.  After completion every rank holds the full sum.
double ring_allreduce(simnet::Cluster& cluster, const Group& group,
                      const RankData& data, size_t elems, size_t wire_bytes,
                      double start);

// All-Gather of variable-size opaque blocks: group rank i contributes
// payload_bytes[i]; every rank ends up having seen every block.  Used for
// sparse (value, index) payloads where the data movement is tracked by the
// caller.  step_overhead is an optional per-step protocol cost (see
// models/calibration.h, flat world-scale rings).  Returns completion time.
double ring_allgather_bytes(simnet::Cluster& cluster, const Group& group,
                            const std::vector<size_t>& payload_bytes,
                            double start, double step_overhead = 0.0);

// Concurrent multi-group variants.  Several equally-sized ring groups run
// *simultaneously* — their per-step transfers are interleaved in issue
// order so the Cluster's port clocks model NIC capacity sharing across the
// streams (the n parallel inter-node rings of 2DTAR and HiTopKComm step 3).
// Issuing the groups sequentially instead would serialize them at the NIC
// high-water marks and underestimate the aggregation the paper relies on.
// data[g] is group g's RankData (all empty for timing-only).
double ring_allreduce_multi(simnet::Cluster& cluster,
                            const std::vector<Group>& groups,
                            const std::vector<RankData>& data, size_t elems,
                            size_t wire_bytes, double start);

double ring_allgather_bytes_multi(
    simnet::Cluster& cluster, const std::vector<Group>& groups,
    const std::vector<std::vector<size_t>>& payload_bytes, double start,
    double step_overhead = 0.0);

}  // namespace hitopk::coll
