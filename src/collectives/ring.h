// Ring collectives (the NCCL-style building blocks).
//
// All three run over an arbitrary rank group on per-rank buffers of `elems`
// floats, transferred as typed payloads of `wire` dtype (fp32 / fp16 /
// int8-quantized; compress/wire_codec.h).  The simulated bytes per hop are
// wire_payload_bytes(wire, chunk) and the functional values are rounded
// through the codec at every hop, exactly like a real mixed-precision ring.
// Data spans may be empty for timing-only simulation (see common.h).  Every function takes a simulated start time (all group ranks
// aligned — the training loop synchronizes per gradient bucket) and returns
// the completion time of the slowest rank.
#pragma once

#include "collectives/schedule.h"

namespace hitopk::coll {

// In-place ring Reduce-Scatter.  After completion, group rank i's chunk i
// (chunk_range(elems, G, i)) holds the sum over all group ranks; other
// chunks hold partial sums.  Cost: (G-1) steps of elems/G elements.
double ring_reduce_scatter(simnet::Cluster& cluster, const Group& group,
                           const RankData& data, size_t elems, WireDtype wire,
                           double start);

// In-place ring All-Gather.  Requires group rank i's chunk i to be valid;
// replicates every chunk to every rank.
double ring_allgather(simnet::Cluster& cluster, const Group& group,
                      const RankData& data, size_t elems, WireDtype wire,
                      double start);

// Reduce-Scatter followed by All-Gather: the classic bandwidth-optimal ring
// All-Reduce.  After completion every rank holds the full sum.
double ring_allreduce(simnet::Cluster& cluster, const Group& group,
                      const RankData& data, size_t elems, WireDtype wire,
                      double start);

// All-Gather of variable-size opaque blocks: group rank i contributes
// payload_bytes[i]; every rank ends up having seen every block.  Used for
// sparse (value, index) payloads where the data movement is tracked by the
// caller.  step_overhead is an optional per-step protocol cost (see
// models/calibration.h, flat world-scale rings).  Returns completion time.
double ring_allgather_bytes(simnet::Cluster& cluster, const Group& group,
                            const std::vector<size_t>& payload_bytes,
                            double start, double step_overhead = 0.0);

// Concurrent multi-group variants.  Several equally-sized ring groups run
// *simultaneously* — their per-step transfers are interleaved in issue
// order so the Cluster's port clocks model NIC capacity sharing across the
// streams (the n parallel inter-node rings of 2DTAR and HiTopKComm step 3).
// Issuing the groups sequentially instead would serialize them at the NIC
// high-water marks and underestimate the aggregation the paper relies on.
// data[g] is group g's RankData (all empty for timing-only).
double ring_allreduce_multi(simnet::Cluster& cluster,
                            const std::vector<Group>& groups,
                            const std::vector<RankData>& data, size_t elems,
                            WireDtype wire, double start);

double ring_allgather_bytes_multi(
    simnet::Cluster& cluster, const std::vector<Group>& groups,
    const std::vector<std::vector<size_t>>& payload_bytes, double start,
    double step_overhead = 0.0);

// ---- schedule-engine builders --------------------------------------------
// The hierarchical collectives (2DTAR, HierAR, HiTopKComm) compose their
// phases from ring legs; these builders append one leg to a caller-owned
// Schedule so a whole collective becomes a single schedule with sync()
// phase boundaries.  RingGrid carries the per-(group, rank) readiness slots
// and data-pass buffer ids; allocate it with ring_grid() once per leg (or
// reuse it across an RS+AG pair operating on the same groups/buffers).
struct RingGrid {
  size_t g = 0;                // group size (equal across groups)
  size_t nq = 0;               // number of concurrent groups
  uint32_t slot0 = 0;          // slot(q, i) = slot0 + q * g + i
  std::vector<uint32_t> bufs;  // buf(q, i), kNoBuf for timing-only groups
  static constexpr uint32_t kNoBuf = UINT32_MAX;
  uint32_t buf(size_t q, size_t i) const { return bufs[q * g + i]; }
  uint32_t slot(size_t q, size_t i) const {
    return slot0 + static_cast<uint32_t>(q * g + i);
  }
};

// data may be empty (all groups timing-only) or hold one RankData per group
// (individually empty for timing-only groups, like the legacy multi loops).
RingGrid ring_grid(Schedule& sched, const std::vector<Group>& groups,
                   const std::vector<RankData>& data,
                   WireDtype wire = WireDtype::kFp32);

// Range-aware leg builders: group q's ring operates on its own sub-range
// extents[q] of the rank buffers, with chunk c = chunk_range(extents[q].count,
// G, c) shifted by extents[q].begin.  This is what lets nested-ring
// decompositions (BlueConnect) reduce a progressively narrower slice per
// stage; the whole-buffer builders below are the extents = {0, elems}
// special case.
void build_ring_reduce_scatter(Schedule& sched,
                               const std::vector<Group>& groups,
                               const RingGrid& grid,
                               const std::vector<ChunkRange>& extents,
                               WireDtype wire, bool fused_chains = false);

void build_ring_allgather(Schedule& sched, const std::vector<Group>& groups,
                          const RingGrid& grid,
                          const std::vector<ChunkRange>& extents,
                          WireDtype wire);

// Reduce-Scatter leg: G-1 snapshot steps.  With fused_chains=false the data
// pass mirrors the wire per-step (kReduce moves, partial sums land in the
// intermediate buffers exactly like the legacy loop).  With
// fused_chains=true each owner chunk reduces through a scratch-accumulator
// chain (see TransferOp::kChain*): same float-add order, owner chunks
// bitwise identical, but nothing is written to non-owned chunks — only
// valid when the caller overwrites or ignores them (an All-Reduce's
// resolved gather, 2DTAR phase 3, HiTopKComm's rebuild).
void build_ring_reduce_scatter(Schedule& sched,
                               const std::vector<Group>& groups,
                               const RingGrid& grid, size_t elems,
                               WireDtype wire, bool fused_chains = false);

// All-Gather leg: G-1 timed forwarding steps, but the data pass is
// *resolved* — each destination chunk is copied once from its final origin
// (group rank c's chunk c) instead of forwarded G-1 times.
void build_ring_allgather(Schedule& sched, const std::vector<Group>& groups,
                          const RingGrid& grid, size_t elems, WireDtype wire);

// Variable-payload All-Gather leg (timing only; sparse payload data
// movement is tracked by the caller).
void build_ring_allgather_bytes(
    Schedule& sched, const std::vector<Group>& groups, const RingGrid& grid,
    const std::vector<std::vector<size_t>>& payload_bytes,
    double step_overhead);

}  // namespace hitopk::coll
