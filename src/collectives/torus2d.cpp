#include "collectives/torus2d.h"

#include <algorithm>

#include "collectives/ring.h"

namespace hitopk::coll {
namespace {

// ===================== legacy path (validation reference) =====================
Torus2dBreakdown legacy_torus2d(simnet::Cluster& cluster, const RankData& data,
                                size_t elems, WireDtype wire, double start) {
  const simnet::Topology& topo = cluster.topology();
  const int m = topo.nodes();
  const int n = topo.gpus_per_node();

  Torus2dBreakdown out;

  // Phase 1: intra-node reduce-scatter, all nodes in parallel.
  double phase1 = start;
  for (int node = 0; node < m; ++node) {
    const Group group = node_group(topo, node);
    RankData node_data;
    if (!data.empty()) {
      for (int rank : group) node_data.push_back(data[static_cast<size_t>(rank)]);
    }
    phase1 = std::max(phase1, ring_reduce_scatter(cluster, group, node_data,
                                                  elems, wire, start));
  }
  out.reduce_scatter = phase1 - start;

  // Phase 2: per-local-rank inter-node all-reduce on the owned shard.  The
  // n rings run concurrently and share each node's NIC; they are issued
  // interleaved so the port model aggregates them toward line rate.
  // Shards may differ by one element when n does not divide elems; the
  // largest shard is simulated for all rings (upper bound, and exact in the
  // common divisible case).
  const size_t max_shard = chunk_range(elems, static_cast<size_t>(n), 0).count;
  double phase2 = phase1;
  if (max_shard > 0) {
    std::vector<Group> stream_groups;
    std::vector<RankData> stream_data;
    for (int local = 0; local < n; ++local) {
      const ChunkRange shard = chunk_range(elems, static_cast<size_t>(n),
                                           static_cast<size_t>(local));
      if (shard.count == 0) continue;
      stream_groups.push_back(cross_node_group(topo, local));
      if (!data.empty()) {
        RankData shard_data;
        for (int rank : stream_groups.back()) {
          shard_data.push_back(data[static_cast<size_t>(rank)].subspan(
              shard.begin, shard.count));
        }
        stream_data.push_back(std::move(shard_data));
      }
    }
    // Functional mode requires exact per-stream shard sizes; when ragged,
    // fall back to per-stream calls (still correct, slightly pessimistic).
    if (!data.empty() && elems % static_cast<size_t>(n) != 0) {
      for (size_t q = 0; q < stream_groups.size(); ++q) {
        const ChunkRange shard = chunk_range(elems, static_cast<size_t>(n), q);
        phase2 = std::max(
            phase2, ring_allreduce(cluster, stream_groups[q], stream_data[q],
                                   shard.count, wire, phase1));
      }
    } else {
      phase2 = std::max(
          phase2, ring_allreduce_multi(cluster, stream_groups, stream_data,
                                       max_shard, wire, phase1));
    }
  }
  out.inter_allreduce = phase2 - phase1;

  // Phase 3: intra-node all-gather to replicate the reduced shards.
  double phase3 = phase2;
  for (int node = 0; node < m; ++node) {
    const Group group = node_group(topo, node);
    RankData node_data;
    if (!data.empty()) {
      for (int rank : group) node_data.push_back(data[static_cast<size_t>(rank)]);
    }
    phase3 = std::max(phase3, ring_allgather(cluster, group, node_data, elems,
                                             wire, phase2));
  }
  out.intra_allgather = phase3 - phase2;
  out.total = phase3 - start;
  return out;
}

// ============================= engine path =============================
// One schedule for the whole collective: the three phases are legs of the
// same schedule separated by collapse syncs (the legacy scalar phase
// hand-offs), and the sync times are the breakdown.  The only exception is
// the ragged functional phase 2, which the legacy path runs as sequential
// per-stream All-Reduce calls — that issue order is NIC-visible, so the
// engine mirrors it with per-stream schedules (via ring_allreduce, itself
// engine-backed) between two single-phase schedules.
Torus2dBreakdown schedule_torus2d(simnet::Cluster& cluster,
                                  const RankData& data, size_t elems,
                                  WireDtype wire, double start) {
  const simnet::Topology& topo = cluster.topology();
  const int m = topo.nodes();
  const int n = topo.gpus_per_node();
  const bool functional = !data.empty();

  std::vector<Group> node_groups;
  std::vector<RankData> node_data;
  for (int node = 0; node < m; ++node) {
    node_groups.push_back(node_group(topo, node));
    if (functional) {
      RankData nd;
      for (int rank : node_groups.back()) {
        nd.push_back(data[static_cast<size_t>(rank)]);
      }
      node_data.push_back(std::move(nd));
    }
  }

  const size_t max_shard = chunk_range(elems, static_cast<size_t>(n), 0).count;
  std::vector<Group> stream_groups;
  std::vector<RankData> stream_data;
  if (max_shard > 0) {
    for (int local = 0; local < n; ++local) {
      const ChunkRange shard = chunk_range(elems, static_cast<size_t>(n),
                                           static_cast<size_t>(local));
      if (shard.count == 0) continue;
      stream_groups.push_back(cross_node_group(topo, local));
      if (functional) {
        RankData shard_data;
        for (int rank : stream_groups.back()) {
          shard_data.push_back(data[static_cast<size_t>(rank)].subspan(
              shard.begin, shard.count));
        }
        stream_data.push_back(std::move(shard_data));
      }
    }
  }
  const bool ragged_functional =
      functional && elems % static_cast<size_t>(n) != 0;

  Torus2dBreakdown out;
  if (!ragged_functional) {
    Schedule sched;
    const RingGrid node_grid = ring_grid(sched, node_groups, node_data, wire);
    build_ring_reduce_scatter(sched, node_groups, node_grid, elems, wire,
                              /*fused_chains=*/true);
    sched.sync(/*collapse=*/true);  // phase 1 done
    if (!stream_groups.empty()) {
      const RingGrid stream_grid = ring_grid(sched, stream_groups, stream_data, wire);
      build_ring_reduce_scatter(sched, stream_groups, stream_grid, max_shard,
                                wire, /*fused_chains=*/true);
      build_ring_allgather(sched, stream_groups, stream_grid, max_shard,
                           wire);
    }
    sched.sync(/*collapse=*/true);  // phase 2 done
    build_ring_allgather(sched, node_groups, node_grid, elems, wire);
    const Schedule::TimingResult timing = sched.run_timing(cluster, start);
    sched.run_data();
    const double t1 = timing.sync_times[0];
    const double t2 = timing.sync_times[1];
    out.reduce_scatter = t1 - start;
    out.inter_allreduce = t2 - t1;
    out.intra_allgather = timing.finish - t2;
    out.total = timing.finish - start;
    return out;
  }

  // Ragged functional: phase 2 as sequential per-stream calls.
  Schedule phase1_sched;
  const RingGrid node_grid1 = ring_grid(phase1_sched, node_groups, node_data, wire);
  build_ring_reduce_scatter(phase1_sched, node_groups, node_grid1, elems,
                            wire, /*fused_chains=*/true);
  const double phase1 = phase1_sched.run_timing(cluster, start).finish;
  phase1_sched.run_data();
  out.reduce_scatter = phase1 - start;

  double phase2 = phase1;
  for (size_t q = 0; q < stream_groups.size(); ++q) {
    const ChunkRange shard = chunk_range(elems, static_cast<size_t>(n), q);
    phase2 = std::max(
        phase2, ring_allreduce(cluster, stream_groups[q], stream_data[q],
                               shard.count, wire, phase1));
  }
  out.inter_allreduce = phase2 - phase1;

  Schedule phase3_sched;
  const RingGrid node_grid3 = ring_grid(phase3_sched, node_groups, node_data, wire);
  build_ring_allgather(phase3_sched, node_groups, node_grid3, elems,
                       wire);
  const double phase3 = phase3_sched.run_timing(cluster, phase2).finish;
  phase3_sched.run_data();
  out.intra_allgather = phase3 - phase2;
  out.total = phase3 - start;
  return out;
}

}  // namespace

void build_torus2d(Schedule& sched, const simnet::Topology& topo,
                   const RankData& data, size_t elems, WireDtype wire) {
  HITOPK_VALIDATE(topo.uniform())
      << "torus2d's node-major grid needs a uniform topology";
  check_data(world_group(topo), data, elems);
  const int m = topo.nodes();
  const int n = topo.gpus_per_node();
  const bool functional = !data.empty();

  std::vector<Group> node_groups;
  std::vector<RankData> node_data;
  for (int node = 0; node < m; ++node) {
    node_groups.push_back(node_group(topo, node));
    if (functional) {
      RankData nd;
      for (int rank : node_groups.back()) {
        nd.push_back(data[static_cast<size_t>(rank)]);
      }
      node_data.push_back(std::move(nd));
    }
  }

  // Phase 2 operates on full rank buffers through per-stream extents
  // (stream `local` owns chunk `local` of the node partition), so ragged
  // shard sizes are exact and the whole collective stays one schedule.
  std::vector<Group> stream_groups;
  std::vector<RankData> stream_data;
  std::vector<ChunkRange> stream_extents;
  for (int local = 0; local < n; ++local) {
    const ChunkRange shard =
        chunk_range(elems, static_cast<size_t>(n), static_cast<size_t>(local));
    if (shard.count == 0) continue;
    stream_groups.push_back(cross_node_group(topo, local));
    stream_extents.push_back(shard);
    if (functional) {
      RankData shard_data;
      for (int rank : stream_groups.back()) {
        shard_data.push_back(data[static_cast<size_t>(rank)]);
      }
      stream_data.push_back(std::move(shard_data));
    }
  }

  const RingGrid node_grid = ring_grid(sched, node_groups, node_data, wire);
  build_ring_reduce_scatter(sched, node_groups, node_grid, elems, wire,
                            /*fused_chains=*/true);
  sched.sync(/*collapse=*/true);  // phase 1 done
  if (!stream_groups.empty()) {
    const RingGrid stream_grid = ring_grid(sched, stream_groups, stream_data, wire);
    build_ring_reduce_scatter(sched, stream_groups, stream_grid,
                              stream_extents, wire,
                              /*fused_chains=*/true);
    build_ring_allgather(sched, stream_groups, stream_grid, stream_extents,
                         wire);
  }
  sched.sync(/*collapse=*/true);  // phase 2 done
  build_ring_allgather(sched, node_groups, node_grid, elems, wire);
}

Torus2dBreakdown torus2d_allreduce(simnet::Cluster& cluster,
                                   const RankData& data, size_t elems,
                                   WireDtype wire, double start) {
  const simnet::Topology& topo = cluster.topology();
  HITOPK_VALIDATE(topo.uniform())
      << "torus2d's node-major grid needs a uniform topology";
  if (!data.empty()) {
    HITOPK_VALIDATE(static_cast<int>(data.size()) == topo.world_size())
        << "got" << data.size() << "rank buffers for world size"
        << topo.world_size();
  }
  if (collective_path() == CollectivePath::kLegacy) {
    return legacy_torus2d(cluster, data, elems, wire, start);
  }
  return schedule_torus2d(cluster, data, elems, wire, start);
}

}  // namespace hitopk::coll
