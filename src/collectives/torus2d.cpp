#include "collectives/torus2d.h"

#include <algorithm>

#include "collectives/ring.h"

namespace hitopk::coll {

Torus2dBreakdown torus2d_allreduce(simnet::Cluster& cluster,
                                   const RankData& data, size_t elems,
                                   size_t wire_bytes, double start) {
  const simnet::Topology& topo = cluster.topology();
  const int m = topo.nodes();
  const int n = topo.gpus_per_node();
  if (!data.empty()) {
    HITOPK_CHECK_EQ(static_cast<int>(data.size()), topo.world_size());
  }

  Torus2dBreakdown out;

  // Phase 1: intra-node reduce-scatter, all nodes in parallel.
  double phase1 = start;
  for (int node = 0; node < m; ++node) {
    const Group group = node_group(topo, node);
    RankData node_data;
    if (!data.empty()) {
      for (int rank : group) node_data.push_back(data[static_cast<size_t>(rank)]);
    }
    phase1 = std::max(phase1, ring_reduce_scatter(cluster, group, node_data,
                                                  elems, wire_bytes, start));
  }
  out.reduce_scatter = phase1 - start;

  // Phase 2: per-local-rank inter-node all-reduce on the owned shard.  The
  // n rings run concurrently and share each node's NIC; they are issued
  // interleaved so the port model aggregates them toward line rate.
  // Shards may differ by one element when n does not divide elems; the
  // largest shard is simulated for all rings (upper bound, and exact in the
  // common divisible case).
  const size_t max_shard = chunk_range(elems, static_cast<size_t>(n), 0).count;
  double phase2 = phase1;
  if (max_shard > 0) {
    std::vector<Group> stream_groups;
    std::vector<RankData> stream_data;
    for (int local = 0; local < n; ++local) {
      const ChunkRange shard = chunk_range(elems, static_cast<size_t>(n),
                                           static_cast<size_t>(local));
      if (shard.count == 0) continue;
      stream_groups.push_back(cross_node_group(topo, local));
      if (!data.empty()) {
        RankData shard_data;
        for (int rank : stream_groups.back()) {
          shard_data.push_back(data[static_cast<size_t>(rank)].subspan(
              shard.begin, shard.count));
        }
        stream_data.push_back(std::move(shard_data));
      }
    }
    // Functional mode requires exact per-stream shard sizes; when ragged,
    // fall back to per-stream calls (still correct, slightly pessimistic).
    if (!data.empty() && elems % static_cast<size_t>(n) != 0) {
      for (size_t q = 0; q < stream_groups.size(); ++q) {
        const ChunkRange shard = chunk_range(elems, static_cast<size_t>(n), q);
        phase2 = std::max(
            phase2, ring_allreduce(cluster, stream_groups[q], stream_data[q],
                                   shard.count, wire_bytes, phase1));
      }
    } else {
      phase2 = std::max(
          phase2, ring_allreduce_multi(cluster, stream_groups, stream_data,
                                       max_shard, wire_bytes, phase1));
    }
  }
  out.inter_allreduce = phase2 - phase1;

  // Phase 3: intra-node all-gather to replicate the reduced shards.
  double phase3 = phase2;
  for (int node = 0; node < m; ++node) {
    const Group group = node_group(topo, node);
    RankData node_data;
    if (!data.empty()) {
      for (int rank : group) node_data.push_back(data[static_cast<size_t>(rank)]);
    }
    phase3 = std::max(phase3, ring_allgather(cluster, group, node_data, elems,
                                             wire_bytes, phase2));
  }
  out.intra_allgather = phase3 - phase2;
  out.total = phase3 - start;
  return out;
}

}  // namespace hitopk::coll
