#include "collectives/validator.h"

#include <algorithm>
#include <vector>

#include "core/check.h"

namespace hitopk::coll {
namespace {

// Half-open element-address interval tagged with its data-pass bucket.
// Raw addresses, not (buffer, begin): builders register aliased spans.
struct Interval {
  const float* begin;
  const float* end;
  uint32_t bucket;
};

bool by_begin(const Interval& a, const Interval& b) {
  return a.begin < b.begin;
}

// Merges same-bucket intervals in place; output sorted by begin, intervals
// of one bucket pairwise disjoint.
void merge_per_bucket(std::vector<Interval>& v) {
  std::sort(v.begin(), v.end(), [](const Interval& a, const Interval& b) {
    return a.bucket != b.bucket ? a.bucket < b.bucket : a.begin < b.begin;
  });
  size_t out = 0;
  for (const Interval& iv : v) {
    if (out > 0 && v[out - 1].bucket == iv.bucket &&
        v[out - 1].end >= iv.begin) {
      v[out - 1].end = std::max(v[out - 1].end, iv.end);
    } else {
      v[out++] = iv;
    }
  }
  v.resize(out);
  std::sort(v.begin(), v.end(), by_begin);
}

// The per-move element range a bucket writes into buffers, if any.  The
// chain head/mid links write only the thread-local accumulator.
bool writes_buffer(TransferOp op) {
  return op == TransferOp::kCopy || op == TransferOp::kReduce ||
         op == TransferOp::kChainLast;
}

// The per-move element range a bucket reads from buffers, if any.  The
// chain tail reads the accumulator plus its own destination (which the
// write interval already covers), kCopy/kReduce/head/mid read src.
bool reads_buffer(TransferOp op) { return op != TransferOp::kChainLast; }

// Open reduction chain within one bucket (see TransferOp::kChain*).
struct ChainState {
  bool open = false;
  size_t begin = 0;
  size_t count = 0;
  WireDtype wire = WireDtype::kFp32;
};

}  // namespace

void ScheduleValidator::validate(const ScheduleView& view) const {
  // ---- sends: endpoints, liveness, slots, step ordering -----------------
  uint32_t prev_step = 0;
  for (size_t i = 0; i < view.sends.size(); ++i) {
    const Schedule::Send& s = view.sends[i];
    HITOPK_VALIDATE(i == 0 || s.step >= prev_step)
        << "send" << i << "steps back from step" << prev_step << "to"
        << s.step << "- record order is port replay order";
    prev_step = s.step;
    if (options_.world_size > 0) {
      HITOPK_VALIDATE(s.src >= 0 && s.src < options_.world_size)
          << "send" << i << "src rank" << s.src << "outside world of"
          << options_.world_size;
      HITOPK_VALIDATE(s.dst >= 0 && s.dst < options_.world_size)
          << "send" << i << "dst rank" << s.dst << "outside world of"
          << options_.world_size;
    }
    HITOPK_VALIDATE(s.src != s.dst)
        << "send" << i << "loops rank" << s.src << "to itself";
    if (!options_.live.empty()) {
      const auto live_rank = [&](int r) {
        return r >= 0 && r < static_cast<int>(options_.live.size()) &&
               options_.live[static_cast<size_t>(r)];
      };
      HITOPK_VALIDATE(live_rank(s.src))
          << "send" << i << "sources from dead rank" << s.src;
      HITOPK_VALIDATE(live_rank(s.dst))
          << "send" << i << "targets dead rank" << s.dst;
    }
    HITOPK_VALIDATE(s.src_slot < view.num_slots)
        << "send" << i << "src slot" << s.src_slot << "of" << view.num_slots;
    HITOPK_VALIDATE(s.dst_slot < view.num_slots)
        << "send" << i << "dst slot" << s.dst_slot << "of" << view.num_slots;
  }

  // ---- syncs: step ordering --------------------------------------------
  for (size_t i = 1; i < view.syncs.size(); ++i) {
    HITOPK_VALIDATE(view.syncs[i].step >= view.syncs[i - 1].step)
        << "sync" << i << "steps back from step" << view.syncs[i - 1].step
        << "to" << view.syncs[i].step;
  }

  // ---- buffer wires: one dtype per registered buffer --------------------
  HITOPK_VALIDATE(view.buffer_wires.empty() ||
                  view.buffer_wires.size() == view.buffers.size())
      << "got" << view.buffer_wires.size() << "buffer wire dtypes for"
      << view.buffers.size() << "buffers";
  const auto wire_of = [&](uint32_t buf) {
    return buf < view.buffer_wires.size() ? view.buffer_wires[buf]
                                          : WireDtype::kFp32;
  };

  // ---- moves: ids, ranges, step ordering -------------------------------
  for (size_t i = 0; i < view.moves.size(); ++i) {
    const Schedule::Move& m = view.moves[i];
    HITOPK_VALIDATE(i == 0 || m.step >= view.moves[i - 1].step)
        << "move" << i << "steps back from step" << view.moves[i - 1].step
        << "to" << m.step;
    const size_t nbufs = view.buffers.size();
    HITOPK_VALIDATE(m.src_buf < nbufs)
        << "move" << i << "src buffer" << m.src_buf << "of" << nbufs;
    HITOPK_VALIDATE(m.dst_buf < nbufs)
        << "move" << i << "dst buffer" << m.dst_buf << "of" << nbufs;
    HITOPK_VALIDATE(m.bucket < nbufs)
        << "move" << i << "bucket" << m.bucket << "of" << nbufs;
    HITOPK_VALIDATE(m.count > 0) << "move" << i << "has zero count";
    HITOPK_VALIDATE(wire_of(m.src_buf) == wire_of(m.dst_buf))
        << "move" << i << "transfers" << wire_dtype_name(wire_of(m.src_buf))
        << "buffer" << m.src_buf << "into" << wire_dtype_name(wire_of(m.dst_buf))
        << "buffer" << m.dst_buf << "- wire dtype must not change mid-path";
    for (const uint32_t buf : {m.src_buf, m.dst_buf}) {
      const size_t size = view.buffers[buf].size();
      HITOPK_VALIDATE(m.count <= size && m.begin <= size - m.count)
          << "move" << i << "range [" << m.begin << "," << m.begin + m.count
          << ") outside buffer" << buf << "of" << size << "elements";
    }
  }

  // ---- per-step race freedom + chain discipline ------------------------
  std::vector<Interval> writes;
  std::vector<Interval> reads;
  std::vector<Interval> all_writes;  // across steps, for coverage
  size_t i = 0;
  while (i < view.moves.size()) {
    const uint32_t step = view.moves[i].step;
    size_t end = i;
    writes.clear();
    reads.clear();
    // Chains live inside one bucket of one step; track the open chain per
    // bucket in record order.
    std::vector<std::pair<uint32_t, ChainState>> chains;
    auto chain_of = [&](uint32_t bucket) -> ChainState& {
      for (auto& [b, st] : chains) {
        if (b == bucket) return st;
      }
      chains.emplace_back(bucket, ChainState{});
      return chains.back().second;
    };
    while (end < view.moves.size() && view.moves[end].step == step) {
      const Schedule::Move& m = view.moves[end];
      if (writes_buffer(m.op)) {
        const float* base = view.buffers[m.dst_buf].data() + m.begin;
        writes.push_back({base, base + m.count, m.bucket});
      }
      if (reads_buffer(m.op)) {
        const float* base = view.buffers[m.src_buf].data() + m.begin;
        reads.push_back({base, base + m.count, m.bucket});
      }
      ChainState& chain = chain_of(m.bucket);
      switch (m.op) {
        case TransferOp::kChainFirst:
          HITOPK_VALIDATE(!chain.open)
              << "move" << end << "starts a chain while bucket" << m.bucket
              << "has one open - chains must be contiguous";
          chain = {true, m.begin, m.count, wire_of(m.dst_buf)};
          break;
        case TransferOp::kChainMid:
        case TransferOp::kChainLast:
          HITOPK_VALIDATE(chain.open)
              << "move" << end << "continues a chain bucket" << m.bucket
              << "never opened";
          HITOPK_VALIDATE(m.begin == chain.begin && m.count == chain.count)
              << "move" << end << "chain range [" << m.begin << ","
              << m.begin + m.count << ") disagrees with the chain head ["
              << chain.begin << "," << chain.begin + chain.count << ")";
          HITOPK_VALIDATE(wire_of(m.dst_buf) == chain.wire)
              << "move" << end << "chain link is"
              << wire_dtype_name(wire_of(m.dst_buf)) << "but the chain head is"
              << wire_dtype_name(chain.wire)
              << "- a chain shares one accumulator, hence one wire dtype";
          if (m.op == TransferOp::kChainLast) chain.open = false;
          break;
        case TransferOp::kCopy:
        case TransferOp::kReduce:
          HITOPK_VALIDATE(!chain.open)
              << "move" << end << "interleaves with the open chain of bucket"
              << m.bucket << "- chains must be contiguous";
          break;
      }
      ++end;
    }
    for (const auto& [bucket, chain] : chains) {
      HITOPK_VALIDATE(!chain.open)
          << "bucket" << bucket << "leaves a reduction chain open at the end"
          << "of step" << step << "- the accumulator does not cross steps";
    }

    // Writes of distinct buckets must be pairwise disjoint.  After merging
    // per bucket the intervals of one bucket are disjoint, so *any* overlap
    // in the combined sorted list crosses buckets.
    merge_per_bucket(writes);
    for (size_t w = 1; w < writes.size(); ++w) {
      HITOPK_VALIDATE(writes[w].begin >= writes[w - 1].end)
          << "step" << step << ": buckets" << writes[w - 1].bucket << "and"
          << writes[w].bucket << "write overlapping ranges concurrently";
    }
    // No bucket may read a range some *other* bucket writes this step.
    // The write list is globally disjoint here, so each read overlaps a
    // well-defined run of write intervals.
    for (const Interval& r : reads) {
      auto it = std::upper_bound(writes.begin(), writes.end(), r, by_begin);
      if (it != writes.begin()) --it;  // predecessor may straddle r.begin
      for (; it != writes.end() && it->begin < r.end; ++it) {
        if (it->end <= r.begin) continue;
        HITOPK_VALIDATE(it->bucket == r.bucket)
            << "step" << step << ": bucket" << r.bucket
            << "reads a range bucket" << it->bucket << "writes concurrently";
      }
    }
    all_writes.insert(all_writes.end(), writes.begin(), writes.end());
    i = end;
  }

  // ---- coverage: every functional element written at least once --------
  if (options_.require_full_coverage && !view.buffers.empty()) {
    // Collapse to plain address intervals (buckets irrelevant across steps)
    // and dedupe aliased buffer registrations by address range.
    for (Interval& iv : all_writes) iv.bucket = 0;
    merge_per_bucket(all_writes);
    for (size_t b = 0; b < view.buffers.size(); ++b) {
      const RankSpan& span = view.buffers[b];
      if (span.empty()) continue;
      const float* lo = span.data();
      const float* hi = span.data() + span.size();
      // Walk the disjoint sorted write intervals across [lo, hi).
      const float* covered = lo;
      for (const Interval& iv : all_writes) {
        if (iv.end <= covered || iv.begin >= hi) continue;
        HITOPK_VALIDATE(iv.begin <= covered)
            << "buffer" << b << "element"
            << static_cast<size_t>(covered - lo)
            << "is never written - incomplete chunk coverage";
        covered = std::max(covered, iv.end);
        if (covered >= hi) break;
      }
      HITOPK_VALIDATE(covered >= hi)
          << "buffer" << b << "element" << static_cast<size_t>(covered - lo)
          << "is never written - incomplete chunk coverage";
    }
  }
}

}  // namespace hitopk::coll
