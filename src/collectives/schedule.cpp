#include "collectives/schedule.h"

#include <algorithm>

#include "core/parallel.h"
#include "core/tensor.h"
#include "core/workspace.h"

namespace hitopk::coll {

namespace {

CollectivePath g_path = CollectivePath::kSchedule;

// Worker-local chain-reduction accumulator (see TransferOp::kChain*).
std::vector<float>& chain_acc() {
  thread_local std::vector<float> acc;
  return acc;
}

// Worker-local staging buffer for quantized kReduce moves: the wire carries
// the codec-rounded source chunk, so the destination adds rt(src), never src.
std::vector<float>& reduce_staging() {
  thread_local std::vector<float> tmp;
  return tmp;
}

// Single-pass execution of a whole fp32 reduction chain: per element the
// partial sum lives in a register from the first source to the final
// destination add, replacing the accumulator's (N+1) memory passes with one.
// The float-add order is identical to the kChainFirst/Mid/Last sequence
// (s0 + s1 + ... left-associated, destination last), so the result is
// bitwise the same — this is purely a memory-traffic optimization, which is
// why run_data may pick either form per chain.
template <int N>
void fused_chain_kernel(float* dst, const float* const* srcs, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    float t = srcs[0][i];
    for (int k = 1; k < N; ++k) t += srcs[k][i];
    dst[i] += t;
  }
}

using FusedChainFn = void (*)(float*, const float* const*, size_t);

// Chains longer than this fall back to the accumulator (the register
// pressure and dispatch table stop paying off; the accumulator's relative
// overhead also shrinks as chains grow).
constexpr int kMaxFusedChain = 8;

constexpr FusedChainFn kFusedChain[kMaxFusedChain + 1] = {
    nullptr,
    fused_chain_kernel<1>, fused_chain_kernel<2>, fused_chain_kernel<3>,
    fused_chain_kernel<4>, fused_chain_kernel<5>, fused_chain_kernel<6>,
    fused_chain_kernel<7>, fused_chain_kernel<8>,
};

}  // namespace

CollectivePath collective_path() { return g_path; }
void set_collective_path(CollectivePath path) { g_path = path; }

uint32_t Schedule::add_slots(uint32_t n) {
  const uint32_t first = num_slots_;
  num_slots_ += n;
  return first;
}

uint32_t Schedule::add_buffer(RankSpan span, WireDtype wire) {
  buffers_.push_back(span);
  buffer_wires_.push_back(wire);
  return static_cast<uint32_t>(buffers_.size() - 1);
}

void Schedule::send(int src, int dst, size_t bytes, uint32_t src_slot,
                    uint32_t dst_slot, double extra_seconds) {
  HITOPK_CHECK_LT(src_slot, num_slots_);
  HITOPK_CHECK_LT(dst_slot, num_slots_);
  sends_.push_back({step_, src, dst, src_slot, dst_slot, bytes, extra_seconds});
}

void Schedule::move(TransferOp op, uint32_t src_buf, uint32_t dst_buf,
                    size_t begin, size_t count, uint32_t bucket) {
  HITOPK_CHECK_LT(src_buf, buffers_.size());
  HITOPK_CHECK_LT(dst_buf, buffers_.size());
  if (bucket == kBucketDst) bucket = dst_buf;
  HITOPK_CHECK_LT(bucket, buffers_.size());
  if (count == 0) return;
  moves_.push_back({step_, op, src_buf, dst_buf, bucket, begin, count});
}

void Schedule::end_step() { ++step_; }

void Schedule::sync(bool collapse) { syncs_.push_back({step_, collapse}); }

Schedule::TimingResult Schedule::run_timing(simnet::Cluster& cluster,
                                            double start, int job) const {
  TimingResult result;
  result.sync_times.reserve(syncs_.size());
  // clock = slot readiness at the last step boundary; next = in-progress
  // updates, committed at the next boundary (the legacy ready/next swap).
  Scratch<double> clock_buf(num_slots_);
  Scratch<double> next_buf(num_slots_);
  auto clock = clock_buf.span();
  auto next = next_buf.span();
  std::fill(clock.begin(), clock.end(), start);

  auto running_max = [&] {
    double best = start;
    for (double t : clock) best = std::max(best, t);
    return best;
  };

  size_t sync_cursor = 0;
  size_t i = 0;
  while (i < sends_.size() || sync_cursor < syncs_.size()) {
    // Next step boundary: the smaller of the next send's and next sync's
    // step (syncs at a step apply before its sends).
    uint32_t step;
    if (i < sends_.size() && sync_cursor < syncs_.size()) {
      step = std::min(sends_[i].step, syncs_[sync_cursor].step);
    } else if (i < sends_.size()) {
      step = sends_[i].step;
    } else {
      step = syncs_[sync_cursor].step;
    }
    while (sync_cursor < syncs_.size() && syncs_[sync_cursor].step <= step) {
      const double t = running_max();
      result.sync_times.push_back(t);
      if (syncs_[sync_cursor].collapse) {
        std::fill(clock.begin(), clock.end(), t);
      }
      ++sync_cursor;
    }
    if (i >= sends_.size()) break;
    std::copy(clock.begin(), clock.end(), next.begin());
    for (; i < sends_.size() && sends_[i].step == step; ++i) {
      const Send& t = sends_[i];
      const simnet::FlowOutcome sent = cluster.submit(
          {job, t.src, t.dst, t.bytes, clock[t.src_slot], t.extra_seconds});
      HITOPK_CHECK(sent.delivered)
          << "run_timing touched preempted rank" << sent.dead_rank
          << "at t=" << sent.time
          << "(use run_timing_abortable on fault-injected runs)";
      next[t.dst_slot] = std::max(next[t.dst_slot], sent.time);
    }
    std::swap(clock, next);
  }
  result.finish = running_max();
  return result;
}

ScheduleOutcome Schedule::run_timing_abortable(simnet::Cluster& cluster,
                                               double start, int job) const {
  ScheduleOutcome out;
  out.sync_times.reserve(syncs_.size());
  // Same replay loop as run_timing; see the comments there.  The only
  // divergence is try_send: a fault-free cluster takes the identical
  // arithmetic path, so completed outcomes match run_timing bit-for-bit.
  Scratch<double> clock_buf(num_slots_);
  Scratch<double> next_buf(num_slots_);
  auto clock = clock_buf.span();
  auto next = next_buf.span();
  std::fill(clock.begin(), clock.end(), start);

  auto running_max = [&](std::span<double> slots) {
    double best = start;
    for (double t : slots) best = std::max(best, t);
    return best;
  };

  bool degraded = false;
  size_t sync_cursor = 0;
  size_t i = 0;
  while (i < sends_.size() || sync_cursor < syncs_.size()) {
    uint32_t step;
    if (i < sends_.size() && sync_cursor < syncs_.size()) {
      step = std::min(sends_[i].step, syncs_[sync_cursor].step);
    } else if (i < sends_.size()) {
      step = sends_[i].step;
    } else {
      step = syncs_[sync_cursor].step;
    }
    while (sync_cursor < syncs_.size() && syncs_[sync_cursor].step <= step) {
      const double t = running_max(clock);
      out.sync_times.push_back(t);
      if (syncs_[sync_cursor].collapse) {
        std::fill(clock.begin(), clock.end(), t);
      }
      ++sync_cursor;
    }
    if (i >= sends_.size()) break;
    std::copy(clock.begin(), clock.end(), next.begin());
    for (; i < sends_.size() && sends_[i].step == step; ++i) {
      const Send& t = sends_[i];
      const simnet::FlowOutcome sent = cluster.submit(
          {job, t.src, t.dst, t.bytes, clock[t.src_slot], t.extra_seconds});
      if (!sent.delivered) {
        // Abort: everything already in flight this step (the partials in
        // `next`, which started >= the step-boundary clock) drains, the
        // failure surfaces at sent.time, and the runtime waits out its
        // detection timeout before declaring the rank dead.
        const double detect =
            cluster.fault_plan() ? cluster.fault_plan()->detection_timeout()
                                 : 0.0;
        out.status = ScheduleStatus::kAborted;
        out.abort_step = static_cast<int>(step);
        out.dead_rank = sent.dead_rank;
        out.finish =
            std::max(running_max(next), sent.time) + detect;
        return out;
      }
      out.retries += sent.retries;
      degraded = degraded || sent.degraded;
      next[t.dst_slot] = std::max(next[t.dst_slot], sent.time);
    }
    std::swap(clock, next);
  }
  out.finish = running_max(clock);
  if (degraded) out.status = ScheduleStatus::kDegraded;
  return out;
}

void Schedule::run_data() const {
  if (buffers_.empty() || moves_.empty()) return;
  // Per step: group moves by bucket key (destination buffer by default).
  // Buckets write disjoint (buffer, range) sets, so they run concurrently;
  // a bucket's moves apply in recorded order, so reductions into one
  // buffer keep the legacy float-add order.
  Scratch<uint32_t> bucket_of_buf(buffers_.size());
  auto bucket_of = bucket_of_buf.span();
  const uint32_t kNone = UINT32_MAX;
  std::vector<std::vector<uint32_t>> buckets;  // move indices, issue order
  size_t i = 0;
  while (i < moves_.size()) {
    const uint32_t step = moves_[i].step;
    size_t end = i;
    while (end < moves_.size() && moves_[end].step == step) ++end;
    std::fill(bucket_of.begin(), bucket_of.end(), kNone);
    size_t n_buckets = 0;
    for (size_t m = i; m < end; ++m) {
      const uint32_t key = moves_[m].bucket;
      if (bucket_of[key] == kNone) {
        bucket_of[key] = static_cast<uint32_t>(n_buckets++);
        if (buckets.size() < n_buckets) buckets.emplace_back();
        buckets[n_buckets - 1].clear();
      }
      buckets[bucket_of[key]].push_back(static_cast<uint32_t>(m));
    }
    // Recognizes a whole fp32 chain recorded contiguously in this bucket
    // (kChainFirst, kChainMid*, kChainLast over one range) and returns the
    // number of moves it consumed after running it through the single-pass
    // fused kernel; 0 means "not fusable, execute move-by-move".  Quantized
    // chains always take the accumulator path: the codec needs the whole
    // partial-sum shard (int8 derives its scale from the shard max) between
    // links, which a per-element register pass cannot provide.
    auto try_fused_chain = [&](const std::vector<uint32_t>& list,
                               size_t pos) -> size_t {
      const Move& first = moves_[list[pos]];
      if (buffer_wires_[first.dst_buf] != WireDtype::kFp32) return 0;
      const float* srcs[kMaxFusedChain];
      srcs[0] = buffers_[first.src_buf].data() + first.begin;
      int n = 1;
      for (size_t j = pos + 1; j < list.size(); ++j) {
        const Move& link = moves_[list[j]];
        if (link.dst_buf != first.dst_buf || link.begin != first.begin ||
            link.count != first.count) {
          return 0;
        }
        if (link.op == TransferOp::kChainMid) {
          if (n == kMaxFusedChain) return 0;
          srcs[n++] = buffers_[link.src_buf].data() + link.begin;
          continue;
        }
        if (link.op != TransferOp::kChainLast) return 0;
        kFusedChain[n](buffers_[first.dst_buf].data() + first.begin, srcs,
                       first.count);
        return j - pos + 1;
      }
      return 0;
    };
    parallel_for(0, n_buckets, [&](size_t b) {
      const std::vector<uint32_t>& list = buckets[b];
      for (size_t pos = 0; pos < list.size(); ++pos) {
        const Move& mv = moves_[list[pos]];
        if (mv.op == TransferOp::kChainFirst) {
          const size_t consumed = try_fused_chain(list, pos);
          if (consumed != 0) {
            pos += consumed - 1;
            continue;
          }
        }
        auto src = buffers_[mv.src_buf].subspan(mv.begin, mv.count);
        auto dst = buffers_[mv.dst_buf].subspan(mv.begin, mv.count);
        // The destination buffer's wire dtype governs the transfer (the
        // validator pins src and dst to the same dtype): every value that
        // crosses the wire is rounded through the codec exactly where the
        // legacy hop-by-hop loop rounds it.  kFp32 round trips are no-ops
        // and keep this pass bitwise identical to the untyped engine.
        const WireDtype wire = buffer_wires_[mv.dst_buf];
        switch (mv.op) {
          case TransferOp::kCopy:
            std::copy(src.begin(), src.end(), dst.begin());
            wire_round_trip(wire, dst);
            break;
          case TransferOp::kReduce:
            if (wire == WireDtype::kFp32) {
              tensor_ops::add_into(dst, src);
            } else {
              auto& tmp = reduce_staging();
              tmp.assign(src.begin(), src.end());
              std::span<float> staged(tmp.data(), mv.count);
              wire_round_trip(wire, staged);
              tensor_ops::add_into(dst, staged);
            }
            break;
          case TransferOp::kChainFirst:
            // The chain's remaining links run on this same worker (a chain
            // is recorded contiguously within its destination bucket), so
            // the accumulator is thread-local and keeps its capacity
            // across chains and calls.  Quantized chains round the
            // accumulator after every link that the wire would forward:
            // the next hop receives rt(partial), as in the legacy loop.
            chain_acc().assign(src.begin(), src.end());
            wire_round_trip(wire,
                            std::span<float>(chain_acc().data(), mv.count));
            break;
          case TransferOp::kChainMid:
            tensor_ops::add_into(
                std::span<float>(chain_acc().data(), mv.count), src);
            wire_round_trip(wire,
                            std::span<float>(chain_acc().data(), mv.count));
            break;
          case TransferOp::kChainLast:
            // The accumulator already carries the last hop's rounded
            // payload; the owner adds its own (local, never-transferred)
            // contribution at full precision.
            tensor_ops::add_into(
                dst, std::span<const float>(chain_acc().data(), mv.count));
            break;
        }
      }
    });
    i = end;
  }
}

}  // namespace hitopk::coll
