#include "collectives/schedule.h"

#include <algorithm>

#include "core/parallel.h"
#include "core/tensor.h"
#include "core/workspace.h"

namespace hitopk::coll {

namespace {

CollectivePath g_path = CollectivePath::kSchedule;

// Worker-local chain-reduction accumulator (see TransferOp::kChain*).
std::vector<float>& chain_acc() {
  thread_local std::vector<float> acc;
  return acc;
}

}  // namespace

CollectivePath collective_path() { return g_path; }
void set_collective_path(CollectivePath path) { g_path = path; }

uint32_t Schedule::add_slots(uint32_t n) {
  const uint32_t first = num_slots_;
  num_slots_ += n;
  return first;
}

uint32_t Schedule::add_buffer(RankSpan span) {
  buffers_.push_back(span);
  return static_cast<uint32_t>(buffers_.size() - 1);
}

void Schedule::send(int src, int dst, size_t bytes, uint32_t src_slot,
                    uint32_t dst_slot, double extra_seconds) {
  HITOPK_CHECK_LT(src_slot, num_slots_);
  HITOPK_CHECK_LT(dst_slot, num_slots_);
  sends_.push_back({step_, src, dst, src_slot, dst_slot, bytes, extra_seconds});
}

void Schedule::move(TransferOp op, uint32_t src_buf, uint32_t dst_buf,
                    size_t begin, size_t count, uint32_t bucket) {
  HITOPK_CHECK_LT(src_buf, buffers_.size());
  HITOPK_CHECK_LT(dst_buf, buffers_.size());
  if (bucket == kBucketDst) bucket = dst_buf;
  HITOPK_CHECK_LT(bucket, buffers_.size());
  if (count == 0) return;
  moves_.push_back({step_, op, src_buf, dst_buf, bucket, begin, count});
}

void Schedule::end_step() { ++step_; }

void Schedule::sync(bool collapse) { syncs_.push_back({step_, collapse}); }

Schedule::TimingResult Schedule::run_timing(simnet::Cluster& cluster,
                                            double start, int job) const {
  TimingResult result;
  result.sync_times.reserve(syncs_.size());
  // clock = slot readiness at the last step boundary; next = in-progress
  // updates, committed at the next boundary (the legacy ready/next swap).
  Scratch<double> clock_buf(num_slots_);
  Scratch<double> next_buf(num_slots_);
  auto clock = clock_buf.span();
  auto next = next_buf.span();
  std::fill(clock.begin(), clock.end(), start);

  auto running_max = [&] {
    double best = start;
    for (double t : clock) best = std::max(best, t);
    return best;
  };

  size_t sync_cursor = 0;
  size_t i = 0;
  while (i < sends_.size() || sync_cursor < syncs_.size()) {
    // Next step boundary: the smaller of the next send's and next sync's
    // step (syncs at a step apply before its sends).
    uint32_t step;
    if (i < sends_.size() && sync_cursor < syncs_.size()) {
      step = std::min(sends_[i].step, syncs_[sync_cursor].step);
    } else if (i < sends_.size()) {
      step = sends_[i].step;
    } else {
      step = syncs_[sync_cursor].step;
    }
    while (sync_cursor < syncs_.size() && syncs_[sync_cursor].step <= step) {
      const double t = running_max();
      result.sync_times.push_back(t);
      if (syncs_[sync_cursor].collapse) {
        std::fill(clock.begin(), clock.end(), t);
      }
      ++sync_cursor;
    }
    if (i >= sends_.size()) break;
    std::copy(clock.begin(), clock.end(), next.begin());
    for (; i < sends_.size() && sends_[i].step == step; ++i) {
      const Send& t = sends_[i];
      const simnet::FlowOutcome sent = cluster.submit(
          {job, t.src, t.dst, t.bytes, clock[t.src_slot], t.extra_seconds});
      HITOPK_CHECK(sent.delivered)
          << "run_timing touched preempted rank" << sent.dead_rank
          << "at t=" << sent.time
          << "(use run_timing_abortable on fault-injected runs)";
      next[t.dst_slot] = std::max(next[t.dst_slot], sent.time);
    }
    std::swap(clock, next);
  }
  result.finish = running_max();
  return result;
}

ScheduleOutcome Schedule::run_timing_abortable(simnet::Cluster& cluster,
                                               double start, int job) const {
  ScheduleOutcome out;
  out.sync_times.reserve(syncs_.size());
  // Same replay loop as run_timing; see the comments there.  The only
  // divergence is try_send: a fault-free cluster takes the identical
  // arithmetic path, so completed outcomes match run_timing bit-for-bit.
  Scratch<double> clock_buf(num_slots_);
  Scratch<double> next_buf(num_slots_);
  auto clock = clock_buf.span();
  auto next = next_buf.span();
  std::fill(clock.begin(), clock.end(), start);

  auto running_max = [&](std::span<double> slots) {
    double best = start;
    for (double t : slots) best = std::max(best, t);
    return best;
  };

  bool degraded = false;
  size_t sync_cursor = 0;
  size_t i = 0;
  while (i < sends_.size() || sync_cursor < syncs_.size()) {
    uint32_t step;
    if (i < sends_.size() && sync_cursor < syncs_.size()) {
      step = std::min(sends_[i].step, syncs_[sync_cursor].step);
    } else if (i < sends_.size()) {
      step = sends_[i].step;
    } else {
      step = syncs_[sync_cursor].step;
    }
    while (sync_cursor < syncs_.size() && syncs_[sync_cursor].step <= step) {
      const double t = running_max(clock);
      out.sync_times.push_back(t);
      if (syncs_[sync_cursor].collapse) {
        std::fill(clock.begin(), clock.end(), t);
      }
      ++sync_cursor;
    }
    if (i >= sends_.size()) break;
    std::copy(clock.begin(), clock.end(), next.begin());
    for (; i < sends_.size() && sends_[i].step == step; ++i) {
      const Send& t = sends_[i];
      const simnet::FlowOutcome sent = cluster.submit(
          {job, t.src, t.dst, t.bytes, clock[t.src_slot], t.extra_seconds});
      if (!sent.delivered) {
        // Abort: everything already in flight this step (the partials in
        // `next`, which started >= the step-boundary clock) drains, the
        // failure surfaces at sent.time, and the runtime waits out its
        // detection timeout before declaring the rank dead.
        const double detect =
            cluster.fault_plan() ? cluster.fault_plan()->detection_timeout()
                                 : 0.0;
        out.status = ScheduleStatus::kAborted;
        out.abort_step = static_cast<int>(step);
        out.dead_rank = sent.dead_rank;
        out.finish =
            std::max(running_max(next), sent.time) + detect;
        return out;
      }
      out.retries += sent.retries;
      degraded = degraded || sent.degraded;
      next[t.dst_slot] = std::max(next[t.dst_slot], sent.time);
    }
    std::swap(clock, next);
  }
  out.finish = running_max(clock);
  if (degraded) out.status = ScheduleStatus::kDegraded;
  return out;
}

void Schedule::run_data() const {
  if (buffers_.empty() || moves_.empty()) return;
  // Per step: group moves by bucket key (destination buffer by default).
  // Buckets write disjoint (buffer, range) sets, so they run concurrently;
  // a bucket's moves apply in recorded order, so reductions into one
  // buffer keep the legacy float-add order.
  Scratch<uint32_t> bucket_of_buf(buffers_.size());
  auto bucket_of = bucket_of_buf.span();
  const uint32_t kNone = UINT32_MAX;
  std::vector<std::vector<uint32_t>> buckets;  // move indices, issue order
  size_t i = 0;
  while (i < moves_.size()) {
    const uint32_t step = moves_[i].step;
    size_t end = i;
    while (end < moves_.size() && moves_[end].step == step) ++end;
    std::fill(bucket_of.begin(), bucket_of.end(), kNone);
    size_t n_buckets = 0;
    for (size_t m = i; m < end; ++m) {
      const uint32_t key = moves_[m].bucket;
      if (bucket_of[key] == kNone) {
        bucket_of[key] = static_cast<uint32_t>(n_buckets++);
        if (buckets.size() < n_buckets) buckets.emplace_back();
        buckets[n_buckets - 1].clear();
      }
      buckets[bucket_of[key]].push_back(static_cast<uint32_t>(m));
    }
    parallel_for(0, n_buckets, [&](size_t b) {
      for (const uint32_t m : buckets[b]) {
        const Move& mv = moves_[m];
        auto src = buffers_[mv.src_buf].subspan(mv.begin, mv.count);
        auto dst = buffers_[mv.dst_buf].subspan(mv.begin, mv.count);
        switch (mv.op) {
          case TransferOp::kCopy:
            std::copy(src.begin(), src.end(), dst.begin());
            break;
          case TransferOp::kReduce:
            tensor_ops::add_into(dst, src);
            break;
          case TransferOp::kChainFirst:
            // The chain's remaining links run on this same worker (a chain
            // is recorded contiguously within its destination bucket), so
            // the accumulator is thread-local and keeps its capacity
            // across chains and calls.
            chain_acc().assign(src.begin(), src.end());
            break;
          case TransferOp::kChainMid:
            tensor_ops::add_into(
                std::span<float>(chain_acc().data(), mv.count), src);
            break;
          case TransferOp::kChainLast:
            tensor_ops::add_into(
                dst, std::span<const float>(chain_acc().data(), mv.count));
            break;
        }
      }
    });
    i = end;
  }
}

}  // namespace hitopk::coll
