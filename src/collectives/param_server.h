// Sharded parameter-server aggregation (Li et al. 2014, the paper's §1
// alternative to All-Reduce).
//
// One server per node, co-located with the workers; parameter shard s
// (d/m elements) lives on server s.  Each iteration: every worker pushes
// its gradient shard to every server (sums applied server-side), then
// pulls every aggregated shard back.  With co-located servers the
// bisection traffic matches ring All-Reduce, but every byte crosses the
// slow NIC twice and fans in/out of single endpoints — the congestion
// pattern that made PS architectures lose to All-Reduce on dense GPU
// clusters (§1).  Included as an aggregation baseline for the ablations.
#pragma once

#include "collectives/common.h"

namespace hitopk::coll {

struct ParamServerResult {
  double total = 0.0;
  double push = 0.0;
  double pull = 0.0;
};

// In-place dense aggregation over the whole cluster: after completion every
// rank's buffer holds the element-wise sum.  Timing-only when data is
// empty.
ParamServerResult param_server_allreduce(simnet::Cluster& cluster,
                                         const RankData& data, size_t elems,
                                         WireDtype wire, double start);

}  // namespace hitopk::coll
