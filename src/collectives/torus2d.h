// 2D-Torus All-Reduce ("2DTAR", Mikami et al. 2018; Cho et al. 2019).
//
// The hierarchical dense baseline the paper implements inside CommLib
// (§5.3): exploit the bandwidth imbalance by keeping the big flows on
// NVLink and sending only 1/n of the data per GPU across the slow NIC.
//   1. intra-node ring Reduce-Scatter   (each GPU owns a d/n shard summed
//      over its node),
//   2. inter-node ring All-Reduce of each shard across nodes — n concurrent
//      rings, one per local rank, sharing each node's NIC,
//   3. intra-node ring All-Gather to rebuild the full buffer everywhere.
#pragma once

#include "collectives/common.h"
#include "collectives/schedule.h"

namespace hitopk::coll {

struct Torus2dBreakdown {
  double reduce_scatter = 0.0;
  double inter_allreduce = 0.0;
  double intra_allgather = 0.0;
  double total = 0.0;
};

// In-place 2D-torus All-Reduce over the whole cluster.  data (when
// functional) holds one full-size buffer per world rank, in rank order.
Torus2dBreakdown torus2d_allreduce(simnet::Cluster& cluster,
                                   const RankData& data, size_t elems,
                                   WireDtype wire, double start);

// Records the whole collective into a caller-owned schedule, with collapse
// syncs at the two phase boundaries.  Phase 2 uses per-stream extents over
// the full rank buffers, so — unlike torus2d_allreduce's engine path, which
// mirrors the legacy multi-schedule issue order — ragged shards (n does not
// divide elems) stay inside the single schedule with exact per-stream
// sizes.  Requires a uniform topology.  Exposed for the planner
// (collectives/planner.h).
void build_torus2d(Schedule& sched, const simnet::Topology& topo,
                   const RankData& data, size_t elems, WireDtype wire);

}  // namespace hitopk::coll
