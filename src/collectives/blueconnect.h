// BlueConnect-style multi-ring decomposition All-Reduce (Cho et al. 2019).
//
// Factor the P-rank world into nested ring stages along the node/NIC
// hierarchy: P = f_0 * f_1 * ... * f_{S-1} with rank mixed-radix decomposed
// as rank = d_0 + f_0 * (d_1 + f_1 * (d_2 + ...)).  Stage s runs P / f_s
// concurrent rings of size f_s among ranks that differ only in digit d_s.
// Reduce-Scatter descends the stages — each stage splits the range owned
// after the previous stage into f_s chunks, so stage s moves only
// 1/(f_0...f_{s-1}) of the gradient — then All-Gather ascends them in
// reverse.  Compared to the flat P-rank ring this (a) keeps the bulk of the
// bytes on the fast intra-node stage, (b) opens f_0 concurrent inter-node
// flows per node (NIC aggregation, like 2DTAR), and (c) pushes f_0-fold
// fewer bytes through the fabric core — the property that wins on
// oversubscribed fat trees (Topology::oversubscription).
//
// The whole collective is a single transfer schedule built from ring.h's
// range-aware builders — no legacy twin exists; with factors = {P} the
// recorded schedule is identical to ring_allreduce's (pinned by
// schedule_equivalence_test), which serves as its validation anchor.
#pragma once

#include "collectives/common.h"
#include "collectives/schedule.h"

namespace hitopk::coll {

struct BlueConnectOptions {
  // Ring sizes from the fastest-varying digit outward; the product must
  // equal the world size.  Empty = derive from the (uniform) topology:
  // {gpus_per_node, nodes}, degenerating to a single stage when either
  // dimension is 1.  Extra inter-node factors ({n, m1, m2} with
  // m = m1 * m2) express rack/pod hierarchies inside the fat tree.
  std::vector<int> factors;
  WireDtype wire = WireDtype::kFp32;
};

struct BlueConnectBreakdown {
  double total = 0.0;
  double reduce_scatter = 0.0;  // all descending stages
  double allgather = 0.0;       // all ascending stages
  size_t stages = 0;
};

// Records the complete BlueConnect schedule (descending Reduce-Scatter
// stages, then ascending All-Gather stages, with a collapse sync between
// consecutive stages) into `sched` and returns the stage count S; replaying
// it, sync_times[S-1] is the RS/AG midpoint.  Throws ConfigError when the
// factors do not multiply to the world size (or auto-factorization meets an
// uneven topology).  Exposed so the elastic layer can rebuild the schedule
// for a surviving world after a preemption.
size_t build_blueconnect(Schedule& sched, const simnet::Topology& topo,
                         const RankData& data, size_t elems,
                         const BlueConnectOptions& options);

// In-place All-Reduce over the whole cluster.  Functional mode: every
// data[rank] (full `elems` floats) ends up holding the global sum (the
// stage-wise float-add order: intra-stage ring order first, outer stages
// over partial node sums).  Timing-only mode: data empty.
BlueConnectBreakdown blueconnect_allreduce(simnet::Cluster& cluster,
                                           const RankData& data, size_t elems,
                                           const BlueConnectOptions& options,
                                           double start);

}  // namespace hitopk::coll
