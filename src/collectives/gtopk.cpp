#include "collectives/gtopk.h"

#include <algorithm>
#include <cmath>

#include "collectives/schedule.h"
#include "compress/exact_topk.h"
#include "core/parallel.h"
#include "core/tensor.h"
#include "core/workspace.h"

namespace hitopk::coll {
namespace {

int floor_pow2(int v) {
  int q = 1;
  while (q * 2 <= v) q *= 2;
  return q;
}

// Sum two sparse tensors and keep the top-k of the result — legacy form
// (validation reference): a fresh dense Tensor per call, O(d) allocation on
// every (rank, round).
compress::SparseTensor merge_topk_legacy(const compress::SparseTensor& a,
                                         const compress::SparseTensor& b,
                                         size_t k, compress::TopKSelect algo) {
  HITOPK_CHECK_EQ(a.dense_size, b.dense_size);
  Tensor dense(a.dense_size);
  a.scatter_add_into(dense.span());
  b.scatter_add_into(dense.span());
  return compress::exact_topk(dense.span(), k, algo);
}

// Engine-path merge: the dense accumulator comes from the thread-local
// workspace pool (no allocation at steady state) and the two scatter-adds
// run as one fused accumulate_into — same per-element float-add order, so
// the selection is bitwise identical to the legacy form.
compress::SparseTensor merge_topk_fused(const compress::SparseTensor& a,
                                        const compress::SparseTensor& b,
                                        size_t k, compress::TopKSelect algo) {
  HITOPK_CHECK_EQ(a.dense_size, b.dense_size);
  Scratch<float> dense(a.dense_size);
  const compress::SparseTensor* parts[2] = {&a, &b};
  compress::accumulate_into(parts, dense.span());
  return compress::exact_topk(dense.span(), k, algo);
}

struct GtopkShape {
  int p = 0;    // world size
  int q = 0;    // hypercube size: largest power of two <= p
  int rem = 0;  // ranks folded in before / out after the hypercube
};

// ===================== legacy path (validation reference) =====================
// The pre-engine inline loop: per-round ready/next snapshot clocks with the
// dense-allocating merge, kept verbatim behind CollectivePath::kLegacy plus
// the fold/unfold rounds (which the engine path mirrors send for send).
double legacy_gtopk(simnet::Cluster& cluster, const GtopkShape& shape,
                    size_t payload, size_t k, compress::TopKSelect algo,
                    std::vector<compress::SparseTensor>& state, double start,
                    size_t& rounds) {
  const auto [p, q, rem] = shape;
  const bool functional = !state.empty();
  std::vector<double> ready(static_cast<size_t>(p), start);

  // Pre-fold: extra ranks send their selection into the hypercube.
  if (rem > 0) {
    ++rounds;
    std::vector<double> next = ready;
    for (int r = 0; r < rem; ++r) {
      const double done =
          cluster
              .submit({simnet::kDefaultJob, q + r, r, payload,
                       ready[static_cast<size_t>(q + r)]})
              .time;
      next[static_cast<size_t>(r)] =
          std::max(next[static_cast<size_t>(r)], done);
    }
    ready.swap(next);
    if (functional) {
      for (int r = 0; r < rem; ++r) {
        state[static_cast<size_t>(r)] =
            merge_topk_legacy(state[static_cast<size_t>(r)],
                              state[static_cast<size_t>(q + r)], k, algo);
      }
    }
  }

  // Recursive doubling: in round g, rank r exchanges with r ^ gap; both
  // merge and re-select, so the whole hypercube converges to one set.
  for (int gap = 1; gap < q; gap <<= 1) {
    ++rounds;
    std::vector<double> next = ready;
    for (int r = 0; r < q; ++r) {
      const int partner = r ^ gap;
      // Full-duplex pairwise exchange; both directions are issued.
      const double done =
          cluster
              .submit({simnet::kDefaultJob, r, partner, payload,
                       ready[static_cast<size_t>(r)]})
              .time;
      next[static_cast<size_t>(partner)] =
          std::max(next[static_cast<size_t>(partner)], done);
    }
    ready.swap(next);
    if (functional) {
      std::vector<compress::SparseTensor> merged(static_cast<size_t>(q));
      for (int r = 0; r < q; ++r) {
        merged[static_cast<size_t>(r)] =
            merge_topk_legacy(state[static_cast<size_t>(r)],
                              state[static_cast<size_t>(r ^ gap)], k, algo);
      }
      for (int r = 0; r < q; ++r) {
        state[static_cast<size_t>(r)] =
            std::move(merged[static_cast<size_t>(r)]);
      }
    }
  }

  // Unfold: the converged set travels back to the extra ranks.
  if (rem > 0) {
    ++rounds;
    std::vector<double> next = ready;
    for (int r = 0; r < rem; ++r) {
      const double done =
          cluster
              .submit({simnet::kDefaultJob, r, q + r, payload,
                       ready[static_cast<size_t>(r)]})
              .time;
      next[static_cast<size_t>(q + r)] =
          std::max(next[static_cast<size_t>(q + r)], done);
    }
    ready.swap(next);
    if (functional) {
      for (int r = 0; r < rem; ++r) {
        state[static_cast<size_t>(q + r)] = state[static_cast<size_t>(r)];
      }
    }
  }
  return *std::max_element(ready.begin(), ready.end());
}

// ============================= engine path =============================
// One schedule: fold step, log2(q) hypercube steps, unfold step — the
// engine's per-step snapshot slots are exactly the legacy ready/next swap.
// The functional merges run per round on the parallel_for pool (each rank's
// merge reads the previous round's state and writes its own slot, so the
// rounds are bitwise-identical to the serial loop) with the fused
// workspace-backed merge.
double schedule_gtopk(simnet::Cluster& cluster, const GtopkShape& shape,
                      size_t payload, size_t k, compress::TopKSelect algo,
                      std::vector<compress::SparseTensor>& state, double start,
                      size_t& rounds, ScheduleOutcome* outcome) {
  const auto [p, q, rem] = shape;
  bool functional = !state.empty();

  Schedule sched;
  const uint32_t slot0 = sched.add_slots(static_cast<uint32_t>(p));
  auto slot = [&](int r) { return slot0 + static_cast<uint32_t>(r); };

  if (rem > 0) {
    ++rounds;
    for (int r = 0; r < rem; ++r) {
      sched.send(q + r, r, payload, slot(q + r), slot(r));
    }
    sched.end_step();
  }
  for (int gap = 1; gap < q; gap <<= 1) {
    ++rounds;
    for (int r = 0; r < q; ++r) {
      sched.send(r, r ^ gap, payload, slot(r), slot(r ^ gap));
    }
    sched.end_step();
  }
  if (rem > 0) {
    ++rounds;
    for (int r = 0; r < rem; ++r) {
      sched.send(r, q + r, payload, slot(r), slot(q + r));
    }
    sched.end_step();
  }
  double done;
  if (outcome != nullptr) {
    *outcome = sched.run_timing_abortable(cluster, start);
    done = outcome->finish;
    // Aborted exchange: no merge ever completed consistently across the
    // world, so the functional rounds are skipped and callers leave the
    // input gradients untouched.
    if (outcome->aborted()) functional = false;
  } else {
    done = sched.run_timing(cluster, start).finish;
  }

  if (functional) {
    if (rem > 0) {
      parallel_for(0, static_cast<size_t>(rem), [&](size_t r) {
        state[r] = merge_topk_fused(state[r], state[static_cast<size_t>(q) + r],
                                    k, algo);
      });
    }
    std::vector<compress::SparseTensor> merged(static_cast<size_t>(q));
    for (int gap = 1; gap < q; gap <<= 1) {
      parallel_for(0, static_cast<size_t>(q), [&](size_t r) {
        merged[r] = merge_topk_fused(
            state[r], state[r ^ static_cast<size_t>(gap)], k, algo);
      });
      for (int r = 0; r < q; ++r) {
        std::swap(state[static_cast<size_t>(r)],
                  merged[static_cast<size_t>(r)]);
      }
    }
    if (rem > 0) {
      parallel_for(0, static_cast<size_t>(rem), [&](size_t r) {
        state[static_cast<size_t>(q) + r] = state[r];
      });
    }
  }
  return done;
}

}  // namespace

GtopkResult gtopk_comm(simnet::Cluster& cluster, const RankData& data,
                       size_t elems, const GtopkOptions& options,
                       double start) {
  const simnet::Topology& topo = cluster.topology();
  GtopkShape shape;
  shape.p = topo.world_size();
  shape.q = floor_pow2(shape.p);
  shape.rem = shape.p - shape.q;
  const bool functional = !data.empty();
  check_data(world_group(topo), data, elems);

  const size_t k = std::max<size_t>(
      1, static_cast<size_t>(std::llround(options.density *
                                          static_cast<double>(elems))));
  const size_t payload = k * (options.value_wire_bytes + 4);

  GtopkResult out;

  // Local selection (with optional error feedback).  Ranks are independent
  // — per-rank EF entries are pre-created so the pool workers only look
  // them up — and each iteration is deterministic, so the parallel run is
  // bitwise identical to the serial loop (same argument as HiTopKComm's
  // selection step).
  std::vector<compress::SparseTensor> state(
      functional ? static_cast<size_t>(shape.p) : 0);
  if (functional) {
    std::vector<std::string> ef_keys;
    if (options.error_feedback != nullptr) {
      ef_keys.resize(static_cast<size_t>(shape.p));
      for (int r = 0; r < shape.p; ++r) {
        ef_keys[static_cast<size_t>(r)] =
            options.ef_key_prefix + ":" + std::to_string(r);
        options.error_feedback->ensure(ef_keys[static_cast<size_t>(r)], elems);
      }
    }
    parallel_for(0, static_cast<size_t>(shape.p), [&](size_t r) {
      auto grad = data[r];
      // Fused EF exchange (grad untouched between compensation and
      // absorption; see ErrorFeedback::apply_priming).
      if (options.error_feedback != nullptr) {
        options.error_feedback->apply_priming(ef_keys[r], grad);
      }
      state[r] = compress::exact_topk(grad, k, options.topk_select);
      if (options.error_feedback != nullptr) {
        options.error_feedback->absorb_primed(ef_keys[r], state[r]);
      }
    });
  }

  const bool legacy = collective_path() == CollectivePath::kLegacy;
  const double done =
      legacy ? legacy_gtopk(cluster, shape, payload, k, options.topk_select,
                            state, start, out.rounds)
             : schedule_gtopk(cluster, shape, payload, k, options.topk_select,
                              state, start, out.rounds, options.outcome);
  out.total = done - start;
  if (legacy && options.outcome != nullptr) {
    // The legacy reference has no abortable replay (a dead rank throws from
    // Cluster::send); report a completed outcome for interface parity.
    *options.outcome = ScheduleOutcome{};
    options.outcome->finish = done;
  }

  const bool aborted = options.outcome != nullptr && options.outcome->aborted();
  if (functional && !aborted) {
    out.final_nnz = state[0].nnz();
    parallel_for(0, static_cast<size_t>(shape.p), [&](size_t r) {
      auto dst = data[r];
      std::fill(dst.begin(), dst.end(), 0.0f);
      state[r].scatter_add_into(dst);
    });
  } else {
    out.final_nnz = k;
  }
  return out;
}

}  // namespace hitopk::coll
