#include "collectives/gtopk.h"

#include <algorithm>
#include <cmath>

#include "compress/exact_topk.h"
#include "core/tensor.h"

namespace hitopk::coll {
namespace {

bool is_power_of_two(int v) { return v > 0 && (v & (v - 1)) == 0; }

// Sum two sparse tensors and keep the top-k of the result.
compress::SparseTensor merge_topk(const compress::SparseTensor& a,
                                  const compress::SparseTensor& b, size_t k,
                                  compress::TopKSelect algo) {
  HITOPK_CHECK_EQ(a.dense_size, b.dense_size);
  Tensor dense(a.dense_size);
  a.scatter_add_into(dense.span());
  b.scatter_add_into(dense.span());
  return compress::exact_topk(dense.span(), k, algo);
}

}  // namespace

GtopkResult gtopk_comm(simnet::Cluster& cluster, const RankData& data,
                       size_t elems, const GtopkOptions& options,
                       double start) {
  const simnet::Topology& topo = cluster.topology();
  const int p = topo.world_size();
  HITOPK_CHECK(is_power_of_two(p)) << "gTop-k needs a power-of-two world";
  const bool functional = !data.empty();
  check_data(world_group(topo), data, elems);

  const size_t k = std::max<size_t>(
      1, static_cast<size_t>(std::llround(options.density *
                                          static_cast<double>(elems))));
  const size_t payload = k * (options.value_wire_bytes + 4);

  GtopkResult out;

  // Local selection (with optional error feedback).
  std::vector<compress::SparseTensor> state(static_cast<size_t>(p));
  if (functional) {
    for (int r = 0; r < p; ++r) {
      auto grad = data[static_cast<size_t>(r)];
      const std::string key =
          options.ef_key_prefix + ":" + std::to_string(r);
      // Fused EF exchange (grad untouched between compensation and
      // absorption; see ErrorFeedback::apply_priming).
      if (options.error_feedback != nullptr) {
        options.error_feedback->apply_priming(key, grad);
      }
      state[static_cast<size_t>(r)] =
          compress::exact_topk(grad, k, options.topk_select);
      if (options.error_feedback != nullptr) {
        options.error_feedback->absorb_primed(key,
                                              state[static_cast<size_t>(r)]);
      }
    }
  }

  // Recursive doubling: in round g, rank r exchanges with r ^ gap; both
  // merge and re-select, so the whole hypercube converges to one set.
  std::vector<double> ready(static_cast<size_t>(p), start);
  for (int gap = 1; gap < p; gap <<= 1) {
    ++out.rounds;
    std::vector<double> next = ready;
    for (int r = 0; r < p; ++r) {
      const int partner = r ^ gap;
      // Full-duplex pairwise exchange; both directions are issued.
      const double done = cluster.send(r, partner, payload,
                                       ready[static_cast<size_t>(r)]);
      next[static_cast<size_t>(partner)] =
          std::max(next[static_cast<size_t>(partner)], done);
    }
    ready.swap(next);
    if (functional) {
      std::vector<compress::SparseTensor> merged(static_cast<size_t>(p));
      for (int r = 0; r < p; ++r) {
        merged[static_cast<size_t>(r)] =
            merge_topk(state[static_cast<size_t>(r)],
                       state[static_cast<size_t>(r ^ gap)], k,
                       options.topk_select);
      }
      state.swap(merged);
    }
  }
  out.total = *std::max_element(ready.begin(), ready.end()) - start;

  if (functional) {
    out.final_nnz = state[0].nnz();
    for (int r = 0; r < p; ++r) {
      auto dst = data[static_cast<size_t>(r)];
      std::fill(dst.begin(), dst.end(), 0.0f);
      state[static_cast<size_t>(r)].scatter_add_into(dst);
    }
  } else {
    out.final_nnz = k;
  }
  return out;
}

}  // namespace hitopk::coll
