#include "collectives/planner.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <set>
#include <unordered_map>

#include "collectives/blueconnect.h"
#include "collectives/gtopk.h"
#include "collectives/halving_doubling.h"
#include "collectives/hier_allreduce.h"
#include "collectives/ring.h"
#include "collectives/torus2d.h"
#include "collectives/validator.h"

namespace hitopk::coll {
namespace {

// FNV-1a over the group membership (order matters: a ring over a permuted
// group is a different plan).
uint64_t group_hash(const Group& group) {
  uint64_t h = 1469598103934665603ull;
  for (int rank : group) {
    for (int shift = 0; shift < 32; shift += 8) {
      h ^= static_cast<uint64_t>((static_cast<uint32_t>(rank) >> shift) & 0xff);
      h *= 1099511628211ull;
    }
  }
  return h;
}

// Message sizes within a power of two score identically often enough that
// one plan per octave is the right cache grain.
int size_bucket(size_t elems) {
  return static_cast<int>(std::bit_width(elems));
}

// Dense requests share bucket 0; sparse densities bucket at half-decade
// grain (0.01 and 0.02 share a plan; 0.01 and 0.001 do not).
int density_bucket(double density, double dense_density) {
  if (density >= dense_density) return 0;
  return static_cast<int>(std::floor(std::log10(density) * 2.0));
}

std::string cache_key(const simnet::Topology& topo, const Group& group,
                      size_t elems, double density, double dense_density) {
  return std::to_string(topo.fingerprint()) + ":" +
         std::to_string(group_hash(group)) + ":" +
         std::to_string(size_bucket(elems)) + ":" +
         std::to_string(density_bucket(density, dense_density));
}

std::string factors_name(const std::vector<int>& factors) {
  std::string name = "blueconnect{";
  for (size_t i = 0; i < factors.size(); ++i) {
    if (i) name += ",";
    name += std::to_string(factors[i]);
  }
  return name + "}";
}

// Reindexes group-position data into ring-order position data.
RankData permute_data(const Group& group, const Group& order,
                      const RankData& data) {
  if (data.empty() || order == group) return data;
  std::unordered_map<int, size_t> pos;
  pos.reserve(group.size());
  for (size_t i = 0; i < group.size(); ++i) pos[group[i]] = i;
  RankData permuted;
  permuted.reserve(order.size());
  for (int rank : order) permuted.push_back(data[pos.at(rank)]);
  return permuted;
}

}  // namespace

const char* plan_algorithm_name(PlanAlgorithm algorithm) {
  switch (algorithm) {
    case PlanAlgorithm::kFlatRing: return "ring";
    case PlanAlgorithm::kReorderedRing: return "ring+podsort";
    case PlanAlgorithm::kTreeAllReduce: return "tree";
    case PlanAlgorithm::kHierAllReduce: return "hier";
    case PlanAlgorithm::kTorus2d: return "torus2d";
    case PlanAlgorithm::kBlueConnect: return "blueconnect";
    case PlanAlgorithm::kHalvingDoubling: return "hd";
    case PlanAlgorithm::kGtopk: return "gtopk";
  }
  return "unknown";
}

Planner::Planner(PlannerOptions options) : options_(std::move(options)) {
  HITOPK_VALIDATE(options_.dense_density > 0.0)
      << "dense_density must be positive";
}

std::vector<Planner::Candidate> Planner::enumerate(
    const simnet::Topology& topo, const Group& group, bool full_world,
    double density) const {
  const WireDtype w = options_.wire;
  std::vector<Candidate> cands;
  // The flat ring is always candidate 0: it is the baseline the planner
  // must never lose to, and scoring keeps ties on the earliest candidate.
  cands.push_back({PlanAlgorithm::kFlatRing, "ring", {}, group, true, w});

  const Group sorted = locality_sorted_group(topo, group);
  if (sorted != group) {
    cands.push_back(
        {PlanAlgorithm::kReorderedRing, "ring+podsort", {}, sorted, true, w});
  }
  cands.push_back({PlanAlgorithm::kHalvingDoubling, "hd", {}, group, true, w});
  if (sorted != group) {
    cands.push_back(
        {PlanAlgorithm::kHalvingDoubling, "hd+podsort", {}, sorted, true, w});
  }
  // Quantization axis: score a "+fp16" twin of every exact-sum candidate
  // enumerated so far (and below, via the append at the end).  Twins halve
  // the wire bytes and drop the exact-sum mark.
  auto append_fp16_twins = [&](size_t from) {
    if (!options_.quantized_candidates || w != WireDtype::kFp32) return;
    const size_t upto = cands.size();
    for (size_t i = from; i < upto; ++i) {
      if (!cands[i].exact_sum) continue;
      Candidate q = cands[i];
      q.name += "+fp16";
      q.exact_sum = false;
      q.wire = WireDtype::kFp16;
      cands.push_back(std::move(q));
    }
  };
  if (!full_world) {
    append_fp16_twins(0);
    return cands;
  }

  // Whole-world hierarchical candidates.
  const int m = topo.nodes();
  const int n = topo.uniform() ? topo.gpus_per_node() : 0;
  if (topo.uniform() && topo.world_size() > 1) {
    cands.push_back(
        {PlanAlgorithm::kTreeAllReduce, "tree", {}, group, true, w});
  }
  if (m > 1) {
    cands.push_back(
        {PlanAlgorithm::kHierAllReduce, "hier", {}, group, true, w});
  }
  if (topo.uniform() && m > 1 && n > 1) {
    cands.push_back({PlanAlgorithm::kTorus2d, "torus2d", {}, group, true, w});
  }
  if (topo.uniform() && topo.world_size() > 1) {
    // BlueConnect stage factorizations, pruned to the hierarchy-aligned
    // splits: the node split, the pod-aligned three-stage split, then
    // balanced divisor splits of the node count (nearest sqrt(m) first).
    // All factors >= 2 — a size-1 stage ring is a no-op and a single-stage
    // factorization is the flat ring again.
    std::set<std::vector<int>> seen;
    std::vector<std::vector<int>> splits;
    auto add = [&](std::vector<int> f) {
      if (static_cast<int>(splits.size()) >= options_.max_blueconnect_candidates)
        return;
      for (int s : f) {
        if (s < 2) return;
      }
      if (f.size() < 2) return;
      if (seen.insert(f).second) splits.push_back(std::move(f));
    };
    // Every factorization must multiply to the world n * m; with n == 1
    // the intra stage is dropped rather than recorded as a size-1 ring.
    auto add_node_split = [&](int a, int b) {
      if (n > 1) {
        add({n, a, b});
      } else {
        add({a, b});
      }
    };
    add({n, m});
    const int npp = topo.nodes_per_pod();
    if (npp > 0 && npp < m && m % npp == 0) add_node_split(npp, m / npp);
    const int root = static_cast<int>(std::sqrt(static_cast<double>(m)));
    for (int d = root; d >= 2; --d) {
      if (m % d == 0) add_node_split(d, m / d);
    }
    for (std::vector<int>& f : splits) {
      cands.push_back({PlanAlgorithm::kBlueConnect, factors_name(f),
                       std::move(f), group, true, w});
    }
  }
  if (density < options_.dense_density && topo.world_size() > 1) {
    cands.push_back({PlanAlgorithm::kGtopk, "gtopk", {}, group, false, w});
  }
  append_fp16_twins(0);
  return cands;
}

bool Planner::build_candidate(Schedule& sched, const simnet::Topology& topo,
                              const Candidate& cand, const Group& group,
                              const RankData& data, size_t elems) const {
  const WireDtype wire = cand.wire;
  switch (cand.algorithm) {
    case PlanAlgorithm::kFlatRing:
    case PlanAlgorithm::kReorderedRing: {
      // Record-for-record the ring_allreduce engine sequence, over the
      // candidate's membership order.
      std::vector<Group> groups{cand.ring_order};
      std::vector<RankData> group_data{
          permute_data(group, cand.ring_order, data)};
      const RingGrid grid = ring_grid(sched, groups, group_data, wire);
      build_ring_reduce_scatter(sched, groups, grid, elems, wire,
                                /*fused_chains=*/true);
      sched.sync(/*collapse=*/true);
      build_ring_allgather(sched, groups, grid, elems, wire);
      return true;
    }
    case PlanAlgorithm::kHalvingDoubling:
      build_halving_doubling(sched, cand.ring_order,
                             permute_data(group, cand.ring_order, data), elems,
                             wire);
      return true;
    case PlanAlgorithm::kTreeAllReduce: {
      TreeOptions tree = options_.tree;
      tree.wire = wire;
      build_tree_allreduce(sched, topo, data, elems, tree);
      return true;
    }
    case PlanAlgorithm::kHierAllReduce:
      build_hier_allreduce(sched, topo, data, elems, wire);
      return true;
    case PlanAlgorithm::kTorus2d:
      build_torus2d(sched, topo, data, elems, wire);
      return true;
    case PlanAlgorithm::kBlueConnect: {
      BlueConnectOptions bc;
      bc.factors = cand.factors;
      bc.wire = wire;
      build_blueconnect(sched, topo, data, elems, bc);
      return true;
    }
    case PlanAlgorithm::kGtopk:
      return false;  // not a transfer schedule; scored through gtopk_comm
  }
  return false;
}

double Planner::score(const simnet::Topology& topo, const Candidate& cand,
                      const Group& group, size_t elems, double density) const {
  // Every candidate is replayed against a fresh cluster from t = 0: the
  // score is the schedule's intrinsic cost on this topology, not its cost
  // amid whatever traffic the caller's cluster is carrying.
  simnet::Cluster fresh(topo);
  if (cand.algorithm == PlanAlgorithm::kGtopk) {
    GtopkOptions gopts;
    gopts.density = density;
    gopts.value_wire_bytes = wire_elem_bytes(options_.wire);
    return gtopk_comm(fresh, {}, elems, gopts, 0.0).total;
  }
  Schedule sched;
  build_candidate(sched, topo, cand, group, {}, elems);
  if (options_.validate) {
    ValidatorOptions vopts;
    vopts.world_size = topo.world_size();
    ScheduleValidator(vopts).validate(sched);
  }
  return sched.run_timing(fresh, 0.0).finish;
}

PlanChoice Planner::plan_impl(const simnet::Topology& topo, const Group& group,
                              bool full_world, size_t elems, double density) {
  HITOPK_VALIDATE(density > 0.0 && density <= 1.0)
      << "density" << density << "outside (0, 1]";
  for (int rank : group) {
    HITOPK_VALIDATE(rank >= 0 && rank < topo.world_size())
        << "group rank" << rank << "outside world of" << topo.world_size();
  }

  PlanChoice choice;
  choice.ring_order = group;
  if (group.size() <= 1) {
    // Nothing to plan: a single rank (or empty group) already holds the sum.
    choice.name = "ring";
    choice.candidates_scored = 1;
    return choice;
  }

  auto fill = [&](const Candidate& winner, double predicted, double ring_t,
                  int scored, bool hit) {
    choice.algorithm = winner.algorithm;
    choice.name = winner.name;
    choice.factors = winner.factors;
    choice.ring_order = winner.ring_order;
    choice.predicted_seconds = predicted;
    choice.flat_ring_seconds = ring_t;
    choice.candidates_scored = scored;
    choice.cache_hit = hit;
    choice.exact_sum = winner.exact_sum;
    choice.wire = winner.wire;
  };

  const std::string key =
      cache_key(topo, group, elems, density, options_.dense_density);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++cache_hits_;
    // The cache remembers the winning *configuration* for this bucket, but
    // the never-lose guarantee must hold at the requested size, not the
    // size that populated the bucket — so re-score the cached winner
    // against the flat ring here and take the min.
    const Candidate ring{PlanAlgorithm::kFlatRing, "ring", {}, group, true,
                         options_.wire};
    const double ring_t = score(topo, ring, group, elems, density);
    int scored = 1;
    const Candidate& cached = it->second;
    if (cached.algorithm == PlanAlgorithm::kFlatRing &&
        cached.ring_order == group) {
      fill(ring, ring_t, ring_t, scored, true);
      return choice;
    }
    const double cached_t = score(topo, cached, group, elems, density);
    ++scored;
    if (cached_t < ring_t) {
      fill(cached, cached_t, ring_t, scored, true);
    } else {
      fill(ring, ring_t, ring_t, scored, true);
    }
    return choice;
  }

  const std::vector<Candidate> cands =
      enumerate(topo, group, full_world, density);
  double ring_t = 0.0;
  double best_t = std::numeric_limits<double>::infinity();
  size_t best = 0;
  for (size_t i = 0; i < cands.size(); ++i) {
    const double t = score(topo, cands[i], group, elems, density);
    if (i == 0) ring_t = t;
    if (t < best_t) {  // strict: ties keep the earliest (the flat ring)
      best_t = t;
      best = i;
    }
  }
  cache_.emplace(key, cands[best]);
  fill(cands[best], best_t, ring_t, static_cast<int>(cands.size()), false);
  return choice;
}

double Planner::score_live(const simnet::Cluster& cluster,
                           const Candidate& cand, const Group& group,
                           size_t elems, double density, int job,
                           double start) const {
  // What-if replay on a copy of the live reservation state: the score is
  // the candidate's duration amid the traffic other tenants already hold.
  // Scoring must never observe scripted faults (it is a hypothetical, not a
  // fault replay), so the copy drops the plan.
  simnet::Cluster replica = cluster;
  replica.set_fault_plan(nullptr);
  if (cand.algorithm == PlanAlgorithm::kGtopk) {
    GtopkOptions gopts;
    gopts.density = density;
    gopts.value_wire_bytes = wire_elem_bytes(options_.wire);
    return gtopk_comm(replica, {}, elems, gopts, start).total;
  }
  Schedule sched;
  build_candidate(sched, cluster.topology(), cand, group, {}, elems);
  if (options_.validate) {
    ValidatorOptions vopts;
    vopts.world_size = cluster.topology().world_size();
    ScheduleValidator(vopts).validate(sched);
  }
  return sched.run_timing(replica, start, job).finish - start;
}

PlanChoice Planner::plan_live(const simnet::Cluster& cluster,
                              const Group& group, bool full_world,
                              size_t elems, double density, int job,
                              double start) {
  HITOPK_VALIDATE(density > 0.0 && density <= 1.0)
      << "density" << density << "outside (0, 1]";
  for (int rank : group) {
    HITOPK_VALIDATE(rank >= 0 && rank < cluster.world_size())
        << "group rank" << rank << "outside world of" << cluster.world_size();
  }

  PlanChoice choice;
  choice.ring_order = group;
  if (group.size() <= 1) {
    choice.name = "ring";
    choice.candidates_scored = 1;
    return choice;
  }

  // No cache: the winner depends on the cluster's transient load, which the
  // topology-keyed cache must never memoize.
  const std::vector<Candidate> cands =
      enumerate(cluster.topology(), group, full_world, density);
  double ring_t = 0.0;
  double best_t = std::numeric_limits<double>::infinity();
  size_t best = 0;
  for (size_t i = 0; i < cands.size(); ++i) {
    const double t =
        score_live(cluster, cands[i], group, elems, density, job, start);
    if (i == 0) ring_t = t;
    if (t < best_t) {  // strict: ties keep the earliest (the flat ring)
      best_t = t;
      best = i;
    }
  }
  choice.algorithm = cands[best].algorithm;
  choice.name = cands[best].name;
  choice.factors = cands[best].factors;
  choice.ring_order = cands[best].ring_order;
  choice.predicted_seconds = best_t;
  choice.flat_ring_seconds = ring_t;
  choice.candidates_scored = static_cast<int>(cands.size());
  choice.exact_sum = cands[best].exact_sum;
  choice.wire = cands[best].wire;
  return choice;
}

PlanChoice Planner::plan(const simnet::Topology& topo, size_t elems,
                         double density) {
  return plan_impl(topo, world_group(topo), /*full_world=*/true, elems,
                   density);
}

PlanChoice Planner::plan(const simnet::Cluster& cluster, size_t elems,
                         double density, int job, double start) {
  return plan_group(cluster, world_group(cluster.topology()), elems, density,
                    job, start);
}

PlanChoice Planner::plan_group(const simnet::Cluster& cluster,
                               const Group& group, size_t elems,
                               double density, int job, double start) {
  // The idle-snapshot contract: an untouched cluster at start == 0 is
  // indistinguishable from a fresh one, so delegate to the (cached)
  // topology path and return its winners exactly.
  if (cluster.idle() && start == 0.0) {
    return plan_group(cluster.topology(), group, elems, density);
  }
  const bool full_world =
      static_cast<int>(group.size()) == cluster.world_size() &&
      [&] {
        for (size_t i = 0; i < group.size(); ++i) {
          if (group[i] != static_cast<int>(i)) return false;
        }
        return true;
      }();
  return plan_live(cluster, group, full_world, elems, density, job, start);
}

PlanChoice Planner::plan_group(const simnet::Topology& topo, const Group& group,
                               size_t elems, double density) {
  const bool full_world =
      static_cast<int>(group.size()) == topo.world_size() &&
      [&] {
        for (size_t i = 0; i < group.size(); ++i) {
          if (group[i] != static_cast<int>(i)) return false;
        }
        return true;
      }();
  return plan_impl(topo, group, full_world, elems, density);
}

double Planner::execute(simnet::Cluster& cluster, const RankData& data,
                        size_t elems, double density, double start) {
  return execute(cluster, world_group(cluster.topology()), data, elems,
                 density, start);
}

double Planner::execute(simnet::Cluster& cluster, const Group& group,
                        const RankData& data, size_t elems, double density,
                        double start) {
  const simnet::Topology& topo = cluster.topology();
  check_data(group, data, elems);
  if (group.size() <= 1) return start;

  const PlanChoice choice = plan_group(topo, group, elems, density);
  if (choice.algorithm == PlanAlgorithm::kGtopk) {
    GtopkOptions gopts;
    gopts.density = density;
    gopts.value_wire_bytes = wire_elem_bytes(options_.wire);
    return start + gtopk_comm(cluster, data, elems, gopts, start).total;
  }

  // The executed schedule is record-for-record the scored one (the builders
  // record identical sends with or without functional data), so on a fresh
  // cluster with start == 0 the finish below equals predicted_seconds.
  const Candidate cand{choice.algorithm, choice.name, choice.factors,
                       choice.ring_order, choice.exact_sum, choice.wire};
  Schedule sched;
  build_candidate(sched, topo, cand, group, data, elems);
  if (options_.validate) {
    ValidatorOptions vopts;
    vopts.world_size = topo.world_size();
    vopts.require_full_coverage = true;  // exact All-Reduce: no partials left
    ScheduleValidator(vopts).validate(sched);
  }
  const double finish = sched.run_timing(cluster, start).finish;
  sched.run_data();
  return finish;
}

}  // namespace hitopk::coll
