// Elastic collective execution: abort on preemption, rebuild for survivors.
//
// A preemption mid-collective surfaces as an aborted ScheduleOutcome (see
// schedule.h).  The elastic layer turns that into graceful degradation: it
// drops the dead ranks, renumbers the survivors into a dense world over a
// shrunk Topology, re-derives the collective's schedule for that world —
// ring and BlueConnect from the public ring builders, gTop-k through its
// fold/unfold shape — and retries, charging the abort's detection timeout
// plus a fixed reschedule cost per attempt.  Aborted attempts never run the
// data pass, so the gradients a retry consumes are exactly the inputs; the
// completed attempt is therefore bitwise identical to a fresh run at the
// surviving world size (pinned by schedule_equivalence_test).
//
// The membership of every attempt is re-derived from the *full original
// world's* liveness at that attempt's start time, so the world both shrinks
// and grows: a rank whose scripted recover_time has passed rejoins the next
// rebuild (its buffer still holds its original contribution — aborted
// attempts never touch data).  Degenerate worlds need no schedule at all: a
// single survivor completes instantly with zero traffic (an All-Reduce of
// one contribution is the identity), and an all-on-one-node world runs a
// hierarchy-free flat ring whatever the requested algorithm's hierarchy.
//
// Buffers stay indexed by *original* world rank throughout: attempt data is
// a view selecting the survivors' spans, so callers keep one stable buffer
// vector across rescales.
#pragma once

#include "collectives/blueconnect.h"
#include "collectives/gtopk.h"
#include "collectives/schedule.h"
#include "simnet/fault.h"

namespace hitopk::coll {

// A shrunk, densely renumbered world plus its mapping to the original.
// Surviving ranks keep their relative order; nodes that lose every GPU
// disappear (the shrunk topology may be uneven even if the original was
// uniform — one node keeps 3 of its 4 GPUs).
struct SurvivorWorld {
  simnet::Topology topology;
  std::vector<int> old_rank;  // new rank  -> original rank
  std::vector<int> old_node;  // new node  -> original node
};

// Throws ConfigError when no rank survives.
SurvivorWorld shrink_topology(const simnet::Topology& topology,
                              const std::vector<int>& dead_ranks);

enum class ElasticAlgorithm { kRing, kBlueConnect, kGtopk };

struct ElasticOptions {
  ElasticAlgorithm algorithm = ElasticAlgorithm::kRing;
  WireDtype wire = WireDtype::kFp32;  // ring path
  // BlueConnect path: factors apply to the original world; once a rescale
  // invalidates them the stage factorization is re-derived from the shrunk
  // topology (auto when it stays uniform, a flat ring otherwise).
  BlueConnectOptions blueconnect;
  GtopkOptions gtopk;  // gTop-k path (outcome field is managed internally)
  // Fixed cost per rebuild: survivor rendezvous + schedule re-derivation.
  double reschedule_seconds = 0.0;
  int max_attempts = 8;
};

struct ElasticAttempt {
  ScheduleOutcome outcome;
  int world = 0;  // world size this attempt ran at
};

struct ElasticResult {
  bool completed = false;
  double finish = 0.0;            // absolute completion (or give-up) time
  int surviving_world = 0;        // world size of the final attempt
  std::vector<int> survivors;     // original ranks of the final attempt
  std::vector<ElasticAttempt> attempts;
  int rescales = 0;               // attempts that dropped at least one rank
  int regrows = 0;                // attempts that regained at least one rank
};

// All-Reduce (or gTop-k aggregation) over the whole original world under a
// fault script.  `data` is indexed by original rank (empty = timing-only).
// On completion the survivors' buffers hold the collective's result over
// the surviving contributions; dead ranks' buffers are untouched.  Never
// throws for faults scripted in the plan.
ElasticResult elastic_allreduce(const simnet::Topology& topology,
                                const simnet::FaultPlan& plan,
                                const RankData& data, size_t elems,
                                const ElasticOptions& options, double start);

}  // namespace hitopk::coll
