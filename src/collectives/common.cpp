#include "collectives/common.h"

#include <algorithm>

namespace hitopk::coll {

Group node_group(const simnet::Topology& topology, int node) {
  Group group;
  const int gpus = topology.gpus_on_node(node);
  group.reserve(static_cast<size_t>(gpus));
  for (int local = 0; local < gpus; ++local) {
    group.push_back(topology.rank_of(node, local));
  }
  return group;
}

Group cross_node_group(const simnet::Topology& topology, int local_rank) {
  Group group;
  group.reserve(static_cast<size_t>(topology.nodes()));
  for (int node = 0; node < topology.nodes(); ++node) {
    group.push_back(topology.rank_of(node, local_rank));
  }
  return group;
}

Group world_group(const simnet::Topology& topology) {
  Group group;
  group.reserve(static_cast<size_t>(topology.world_size()));
  for (int rank = 0; rank < topology.world_size(); ++rank) group.push_back(rank);
  return group;
}

Group locality_sorted_group(const simnet::Topology& topology,
                            const Group& group) {
  Group sorted = group;
  std::stable_sort(sorted.begin(), sorted.end(), [&](int a, int b) {
    const int node_a = topology.node_of(a);
    const int node_b = topology.node_of(b);
    const int pod_a = topology.pod_of(node_a);
    const int pod_b = topology.pod_of(node_b);
    if (pod_a != pod_b) return pod_a < pod_b;
    if (node_a != node_b) return node_a < node_b;
    return a < b;
  });
  return sorted;
}

}  // namespace hitopk::coll
