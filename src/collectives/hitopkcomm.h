// HiTopKComm: the paper's hierarchical top-k communication (Algorithm 2).
//
// Four steps (Fig. 3):
//   1. intra-node ring Reduce-Scatter of the dense gradients — GPU j of each
//      node owns shard j (d/n elements) summed over its node,
//   2. per-GPU MSTopK on the owned shard, selecting k~ = rho * d / n
//      elements (an n-times smaller selection than whole-tensor top-k),
//   3. n concurrent inter-node All-Gathers — stream j exchanges the sparse
//      (values, indices) blocks among "GPU j of every node", and each GPU
//      scatter-adds the m blocks into its shard (duplicate indices
//      accumulate, Alg. 2 line 18),
//   4. intra-node All-Gather of the accumulated sparse shards to rebuild the
//      full aggregated gradient on every GPU.
//
// Because step 1 aggregates densely inside the node, only cross-node
// information is sparsified — the property that makes MSTopK-SGD converge
// slightly better than plain TopK-SGD (Table 2).
//
// Uneven fleets: nodes may carry different GPU counts ({8, 8, 4, 4}-style
// spot fleets).  The gradient is partitioned into L = max gpus-per-node
// shards; on a node with g GPUs, GPU j owns every shard s with s % g == j,
// so each node still covers the whole gradient and shard s's inter-node
// stream runs among its per-node owners.  Small nodes aggregate shards by
// direct fan-in to the owner (a ring Reduce-Scatter needs one chunk per
// member); uniform fleets keep the ring path bit-for-bit.
#pragma once

#include <string>

#include "collectives/common.h"
#include "compress/error_feedback.h"
#include "simgpu/gpu_model.h"

namespace hitopk::coll {

struct HiTopKOptions {
  // rho: fraction of the full gradient selected overall.
  double density = 0.01;
  // Wire dtype of the transferred gradient values (compress/wire_codec.h).
  // The dense step-1 leg travels at this dtype, and the sparse legs' values
  // are rounded through the codec right after selection — before error
  // feedback absorbs the send, so the residual keeps the quantization error
  // (EF-SGD with compressed messages).  Indices are always 4 bytes.  kFp32
  // keeps the whole pipeline bitwise-exact.
  WireDtype value_wire = WireDtype::kFp32;
  // N of Algorithm 1.  The device timing model always scales with N; the
  // functional selection consumes it only in legacy multi-pass mode.
  int mstopk_samplings = 30;
  // Selection operator for the functional path: the single-pass histogram
  // MSTopK (default) or the legacy multi-pass binary search (validation
  // reference; see MsTopKMode).
  bool mstopk_histogram = true;
  uint64_t seed = 42;
  // Device model for compression / scatter-add timing; nullptr times pure
  // communication (Fig. 7 mode).
  const simgpu::GpuCostModel* gpu = nullptr;
  // Optional shard-level error feedback (functional mode only): residuals
  // are added to each GPU's owned shard before selection and the unsent
  // remainder is stored back.  Keys are "<ef_key_prefix>:<rank>" on uniform
  // fleets (one shard per GPU) and "<ef_key_prefix>:<rank>:s<shard>" on
  // uneven ones (a GPU owns several shards).
  compress::ErrorFeedback* error_feedback = nullptr;
  std::string ef_key_prefix = "grad";
};

struct HiTopKBreakdown {
  double reduce_scatter = 0.0;
  double mstopk = 0.0;
  double inter_allgather = 0.0;
  double intra_allgather = 0.0;
  double total = 0.0;
  // k~ actually used for (the largest) shard.
  size_t selected_per_shard = 0;
};

// In-place hierarchical sparse aggregation over the whole cluster.  In
// functional mode (data non-empty, one full-size buffer per world rank) each
// buffer is replaced by the aggregated sparse gradient, identical on every
// rank.  In timing-only mode (data empty) only the clocks advance.
HiTopKBreakdown hitopk_comm(simnet::Cluster& cluster, const RankData& data,
                            size_t elems, const HiTopKOptions& options,
                            double start);

}  // namespace hitopk::coll
