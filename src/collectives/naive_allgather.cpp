#include "collectives/naive_allgather.h"

#include <algorithm>

#include "collectives/ring.h"
#include "core/parallel.h"
#include "core/tensor.h"
#include "core/workspace.h"

namespace hitopk::coll {

NaiveAgResult naive_sparse_allgather(
    simnet::Cluster& cluster,
    const std::vector<compress::SparseTensor>& sparse, const RankData& data,
    size_t elems, size_t value_wire_bytes, double accumulate_seconds_per_rank,
    double start, double step_overhead) {
  const simnet::Topology& topo = cluster.topology();
  const size_t p = static_cast<size_t>(topo.world_size());
  HITOPK_CHECK_EQ(sparse.size(), p);
  check_data(world_group(topo), data, elems);

  // Wire payload per origin rank: k values + k indices.
  std::vector<size_t> payload(p);
  for (size_t r = 0; r < p; ++r) {
    HITOPK_CHECK(sparse[r].is_valid());
    HITOPK_CHECK_EQ(sparse[r].dense_size, elems);
    payload[r] = sparse[r].nnz() * (value_wire_bytes + 4);
  }

  NaiveAgResult out;
  const Group group = world_group(topo);
  const double gathered =
      ring_allgather_bytes(cluster, group, payload, start, step_overhead);
  out.allgather = gathered - start;

  // Every rank scatter-adds all P blocks locally.
  const double done =
      simnet::Cluster::compute(gathered, accumulate_seconds_per_rank);
  out.accumulate = done - gathered;
  out.total = done - start;

  if (!data.empty()) {
    // All ranks compute the identical sum; the fused accumulation builds it
    // once into a workspace buffer (index space partitioned across the
    // pool), then every rank's independent destination gets a copy.
    Scratch<float> sum(elems);
    compress::accumulate_into(sparse, sum.span());
    parallel_for(0, data.size(), [&](size_t r) {
      std::copy(sum.span().begin(), sum.span().end(), data[r].begin());
    });
  }
  return out;
}

NaiveAgResult naive_sparse_allgather_time(simnet::Cluster& cluster, size_t k,
                                          size_t value_wire_bytes,
                                          double accumulate_seconds_per_rank,
                                          double start, double step_overhead) {
  const size_t p = static_cast<size_t>(cluster.topology().world_size());
  std::vector<size_t> payload(p, k * (value_wire_bytes + 4));

  NaiveAgResult out;
  const Group group = world_group(cluster.topology());
  const double gathered =
      ring_allgather_bytes(cluster, group, payload, start, step_overhead);
  out.allgather = gathered - start;
  const double done =
      simnet::Cluster::compute(gathered, accumulate_seconds_per_rank);
  out.accumulate = done - gathered;
  out.total = done - start;
  return out;
}

}  // namespace hitopk::coll
