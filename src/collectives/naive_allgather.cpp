#include "collectives/naive_allgather.h"

#include <algorithm>

#include "collectives/ring.h"
#include "core/parallel.h"
#include "core/tensor.h"
#include "core/workspace.h"

namespace hitopk::coll {
namespace {

// The timed flat world-scale gather, as one recorded schedule (engine path)
// or the legacy inline ring loop (ring_allgather_bytes honors the same
// CollectivePath flag, so delegating keeps the validation reference).
// Single-rank worlds and empty payloads carry no steps — the same guard
// class as ring_allgather_bytes_multi's g == 0 fix — and return `start`.
double gather_time(simnet::Cluster& cluster,
                   const std::vector<size_t>& payload, double start,
                   double step_overhead) {
  const Group group = world_group(cluster.topology());
  if (group.size() <= 1) return start;
  if (collective_path() == CollectivePath::kLegacy) {
    return ring_allgather_bytes(cluster, group, payload, start, step_overhead);
  }
  Schedule sched;
  const std::vector<Group> groups{group};
  const RingGrid grid = ring_grid(sched, groups, {});
  build_ring_allgather_bytes(sched, groups, grid, {payload}, step_overhead);
  return sched.run_timing(cluster, start).finish;
}

}  // namespace

NaiveAgResult naive_sparse_allgather(
    simnet::Cluster& cluster,
    const std::vector<compress::SparseTensor>& sparse, const RankData& data,
    size_t elems, size_t value_wire_bytes, double accumulate_seconds_per_rank,
    double start, double step_overhead) {
  const simnet::Topology& topo = cluster.topology();
  const size_t p = static_cast<size_t>(topo.world_size());
  HITOPK_VALIDATE(sparse.size() == p)
      << "got" << sparse.size() << "sparse blocks for world size" << p;
  check_data(world_group(topo), data, elems);

  // Wire payload per origin rank: k values + k indices (k == 0 blocks ride
  // the ring as pure-latency messages, like the legacy loop).
  std::vector<size_t> payload(p);
  for (size_t r = 0; r < p; ++r) {
    HITOPK_CHECK(sparse[r].is_valid());
    HITOPK_VALIDATE(sparse[r].dense_size == elems)
        << "sparse block" << r << "has dense_size" << sparse[r].dense_size
        << ", expected" << elems;
    payload[r] = sparse[r].nnz() * (value_wire_bytes + 4);
  }

  NaiveAgResult out;
  const double gathered = gather_time(cluster, payload, start, step_overhead);
  out.allgather = gathered - start;

  // Every rank scatter-adds all P blocks locally.
  const double done =
      simnet::Cluster::compute(gathered, accumulate_seconds_per_rank);
  out.accumulate = done - gathered;
  out.total = done - start;

  if (!data.empty()) {
    // All ranks compute the identical sum; the fused accumulation builds it
    // once into a workspace buffer (index space partitioned across the
    // pool), then every rank's independent destination gets a copy.
    Scratch<float> sum(elems);
    compress::accumulate_into(sparse, sum.span());
    parallel_for(0, data.size(), [&](size_t r) {
      std::copy(sum.span().begin(), sum.span().end(), data[r].begin());
    });
  }
  return out;
}

NaiveAgResult naive_sparse_allgather_time(simnet::Cluster& cluster, size_t k,
                                          size_t value_wire_bytes,
                                          double accumulate_seconds_per_rank,
                                          double start, double step_overhead) {
  const size_t p = static_cast<size_t>(cluster.topology().world_size());
  std::vector<size_t> payload(p, k * (value_wire_bytes + 4));

  NaiveAgResult out;
  const double gathered = gather_time(cluster, payload, start, step_overhead);
  out.allgather = gathered - start;
  const double done =
      simnet::Cluster::compute(gathered, accumulate_seconds_per_rank);
  out.accumulate = done - gathered;
  out.total = done - start;
  return out;
}

}  // namespace hitopk::coll
