// Shared helpers for collective implementations.
//
// Collectives operate on a *group* of ranks (a subset of the cluster, e.g.
// one node's GPUs, or "GPU j of every node") and on per-rank buffers passed
// as spans.  Every collective has two modes:
//   functional — data.size() == group.size(): real bytes are reduced/copied,
//                so tests and convergence experiments see true results;
//   timing-only — data is empty: only the Cluster port clocks advance, so
//                benches can model 128-rank x 110M-element transfers without
//                materializing the buffers.
#pragma once

#include <span>
#include <vector>

#include "compress/wire_codec.h"
#include "core/check.h"
#include "simnet/cluster.h"

namespace hitopk::coll {

using RankSpan = std::span<float>;
using RankData = std::vector<RankSpan>;

// Typed transfer payloads (compress/wire_codec.h): every collective takes
// the wire dtype its bytes travel in.  fp32 is the bitwise-identity
// baseline; fp16/int8 shrink the simulated bytes *and* round the functional
// values through the codec at each shard boundary, exactly as the legacy
// hop-by-hop loops would.
using compress::WireDtype;
using compress::wire_dtype_name;
using compress::wire_elem_bytes;
using compress::wire_payload_bytes;
using compress::wire_round_trip;
using compress::wire_scale_bytes;

// Balanced partition of `total` elements into `parts` chunks: the first
// (total % parts) chunks get one extra element.
struct ChunkRange {
  size_t begin = 0;
  size_t count = 0;
};

inline ChunkRange chunk_range(size_t total, size_t parts, size_t index) {
  HITOPK_CHECK_GT(parts, 0u);
  HITOPK_CHECK_LT(index, parts);
  const size_t base = total / parts;
  const size_t extra = total % parts;
  const size_t begin = index * base + std::min(index, extra);
  const size_t count = base + (index < extra ? 1 : 0);
  return {begin, count};
}

// Group of world ranks participating in one collective call.
using Group = std::vector<int>;

// All ranks of one node, in local-rank order.
Group node_group(const simnet::Topology& topology, int node);

// Rank j of every node ("stream j" of HiTopKComm step 3), in node order.
Group cross_node_group(const simnet::Topology& topology, int local_rank);

// All world ranks in rank order.
Group world_group(const simnet::Topology& topology);

// Pod-aware ring-membership reordering: the group's ranks stably sorted by
// (pod, node, rank).  A ring over the sorted order crosses each pod
// boundary once per direction instead of scattering hops across the
// oversubscribed core — for an arbitrarily-permuted membership (elastic
// survivor sets, shuffled placements) this recovers the locality a
// rank-ordered world gets for free.  Identity on already-sorted groups.
Group locality_sorted_group(const simnet::Topology& topology,
                            const Group& group);

// Validates a functional data vector against a group.  Throws the
// recoverable ConfigError: buffer/group shape mismatches arrive from
// callers' runtime configuration (world size, payload layout), not from
// internal invariants.
inline void check_data(const Group& group, const RankData& data, size_t elems) {
  if (data.empty()) return;  // timing-only
  HITOPK_VALIDATE(data.size() == group.size())
      << "got" << data.size() << "rank buffers for a group of"
      << group.size();
  for (const auto& span : data) {
    HITOPK_VALIDATE(span.size() == elems)
        << "rank buffer has" << span.size() << "elements, expected" << elems;
  }
}

}  // namespace hitopk::coll
