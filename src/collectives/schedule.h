// Unified collective-schedule engine.
//
// Every collective in this repo — ring, double-binary tree, hierarchical,
// 2D-torus, parameter server, and HiTopKComm's dense legs — is at heart a
// *schedule* of point-to-point transfers (Sergeev & Del Balso 2018; Cho et
// al. 2019): step s moves range R from rank a to rank b, either copying or
// reducing.  The legacy implementations re-derive that schedule inline and
// interleave it with port-clock timing, which welds the timing model to the
// data movement and makes every new topology a new simulator.
//
// The Schedule class separates the two concerns as two passes over one
// recorded schedule:
//
//   timing pass (run_timing) — serial replay of the recorded sends against
//     the Cluster port clocks, in recorded issue order, with snapshot
//     ("next = ready") semantics at step boundaries.  Issue order and
//     readiness slots are recorded explicitly, so the pass is port-clock
//     identical to the legacy loop that recorded it.
//
//   data pass (run_data) — the functional movement, freed from the clock.
//     Within a step, moves are grouped into buckets (by destination buffer
//     unless the builder overrides — see move()): buckets run concurrently
//     on the parallel_for pool, moves inside a bucket apply in recorded
//     order.  Element-wise float adds commute across *disjoint*
//     destinations and stay ordered within one, so the pass is bitwise
//     identical to the serial legacy loop (the same argument as
//     core/parallel.h; pinned by schedule_equivalence_test).
//
// Because the data pass no longer has to mirror the wire protocol, builders
// may *resolve* pure-forwarding chains: a ring All-Gather records G-1
// timed hops per chunk but a single origin->destination copy per receiver,
// and an All-Reduce reuses the Reduce-Scatter result in place, feeding the
// resolved gather from each chunk's final owner.
//
// Readiness model: `slots` are data-readiness clocks (one per group rank,
// or per (node, chunk) for pipelined trees — builders allocate what they
// need).  A send starts no earlier than its src slot and max-combines its
// completion into its dst slot.  Slot updates within a step become visible
// at the next step boundary (the legacy double-buffered `ready`/`next`
// swap); chained dependencies are expressed by putting the dependent send
// in a later step.  sync() records a phase boundary: it captures the
// running clock maximum (phase breakdowns) and optionally collapses every
// slot to that maximum (the scalar hand-off between phases of the legacy
// code, e.g. Reduce-Scatter "mid" -> All-Gather start).
#pragma once

#include <cstdint>
#include <vector>

#include "collectives/common.h"

namespace hitopk::coll {

// Which implementation the converted collectives run: the schedule engine
// (default) or the legacy inline loops kept as the validation reference.
// Process-global test/bench knob (like MsTopKMode, but the ring entry
// points have no options struct to thread it through); set it between
// collective calls, not concurrently with one.
enum class CollectivePath { kSchedule, kLegacy };
CollectivePath collective_path();
void set_collective_path(CollectivePath path);

// kCopy / kReduce act pairwise: dst[range] = / += src[range].
//
// kChain* runs one destination chunk's whole reduction as a chain through a
// worker-local scratch accumulator: kChainFirst loads src into the
// accumulator, kChainMid adds further sources, kChainLast adds the
// accumulator into the destination (the destination's own contribution is
// the chain's last addition, like the legacy ring order).  The float-add
// sequence per element matches the legacy step-by-step reduce-scatter, so
// results are bitwise identical for any non-NaN input, but the partial
// sums never touch the intermediate buffers — (G-1) chunk reads and one
// chunk write instead of (G-1) read-modify-writes.  Builders use chains
// only where the partials are dead (an All-Reduce's scatter leg, or a
// phase whose non-owned chunks a later resolved gather overwrites);
// standalone Reduce-Scatter keeps pairwise moves so the documented
// partial-sum layout stays bit-exact.
enum class TransferOp : uint8_t {
  kCopy,
  kReduce,
  kChainFirst,
  kChainMid,
  kChainLast,
};

// Outcome of an abortable timed replay (run_timing_abortable).
//
//   kCompleted — every recorded send delivered at full health.
//   kDegraded  — completed, but some sends paid degradation windows or
//                transient retries (finish reflects the slowdown).
//   kAborted   — a send touched a preempted rank: the replay stopped at
//                that schedule step, charged the fault plan's detection
//                timeout on top of all in-flight work, and never ran the
//                data pass (buffers keep their pre-collective contents, so
//                a rebuilt schedule on the surviving world starts clean).
enum class ScheduleStatus : uint8_t { kCompleted, kDegraded, kAborted };

struct ScheduleOutcome {
  ScheduleStatus status = ScheduleStatus::kCompleted;
  double finish = 0.0;              // completion, or abort-detected time
  std::vector<double> sync_times;   // syncs reached before finishing/aborting
  int abort_step = -1;              // schedule step of the fatal send
  int dead_rank = -1;               // the preempted endpoint
  int retries = 0;                  // transient retries across delivered sends
  bool aborted() const { return status == ScheduleStatus::kAborted; }
  bool completed() const { return status != ScheduleStatus::kAborted; }
};

class Schedule {
 public:
  // Recorded primitives, exposed read-only through sends()/moves()/syncs()
  // so static checkers (collectives/validator.h) can audit a schedule
  // without replaying it.
  struct Send {
    uint32_t step;
    int src;
    int dst;
    uint32_t src_slot;
    uint32_t dst_slot;
    size_t bytes;
    double extra_seconds;
  };
  struct Move {
    uint32_t step;
    TransferOp op;
    uint32_t src_buf;
    uint32_t dst_buf;
    uint32_t bucket;
    size_t begin;
    size_t count;
  };
  struct Sync {
    uint32_t step;
    bool collapse;
  };

  // ---- recording ------------------------------------------------------
  // Allocates `n` readiness slots, returns the first id.  Slots start at
  // the run_timing start time.
  uint32_t add_slots(uint32_t n = 1);

  // Registers a functional buffer for the data pass, returns its id.  The
  // wire dtype is the representation the buffer's chunks travel in: every
  // move whose destination is this buffer rounds the transferred range
  // through the codec (compress/wire_codec.h) exactly where the legacy
  // hop-by-hop loop would — see run_data.  kFp32 is the identity and keeps
  // the data pass bitwise-unchanged.  Chained transfers must agree on the
  // wire dtype end to end (collectives/validator.h enforces it).
  uint32_t add_buffer(RankSpan span,
                      WireDtype wire = WireDtype::kFp32);

  // Records one timed message of `bytes` from world rank src to dst.
  // extra_seconds is the per-message protocol overhead forwarded to
  // Cluster::send.
  void send(int src, int dst, size_t bytes, uint32_t src_slot,
            uint32_t dst_slot, double extra_seconds = 0.0);

  // Records one data movement: dst_buf[begin, begin+count) op=
  // src_buf[begin, begin+count) (ranges coincide — all converted
  // collectives move chunks in place).
  //
  // `bucket` keys the data pass's execution units: within a step, moves
  // sharing a bucket run serially in recorded order on one worker, and
  // distinct buckets run concurrently.  It defaults to the destination
  // buffer (ordered reductions).  Builders may override it — a resolved
  // gather buckets by *source* so each owner chunk is read once and stays
  // cache-hot across its fan-out (measurably faster than destination-major
  // even single-threaded).  Buckets of one step must write disjoint
  // (buffer, range) destinations, and nothing a concurrent bucket reads.
  static constexpr uint32_t kBucketDst = UINT32_MAX;
  void move(TransferOp op, uint32_t src_buf, uint32_t dst_buf, size_t begin,
            size_t count, uint32_t bucket = kBucketDst);
  void copy(uint32_t src_buf, uint32_t dst_buf, size_t begin, size_t count,
            uint32_t bucket = kBucketDst) {
    move(TransferOp::kCopy, src_buf, dst_buf, begin, count, bucket);
  }
  void reduce(uint32_t src_buf, uint32_t dst_buf, size_t begin, size_t count) {
    move(TransferOp::kReduce, src_buf, dst_buf, begin, count);
  }

  // Closes the current step: sends recorded after this see the slot updates
  // of sends before it, and the data pass inserts a bucket boundary.
  void end_step();

  // Records a phase boundary at the current step.  The timing pass stores
  // the running clock maximum into TimingResult::sync_times (in recording
  // order); with collapse=true it also sets every slot to that maximum —
  // the scalar "phase done, next phase starts for everyone" hand-off.
  void sync(bool collapse);

  // ---- execution ------------------------------------------------------
  struct TimingResult {
    double finish = 0.0;              // max over final slots
    std::vector<double> sync_times;   // one entry per recorded sync()
  };

  // Serial timing replay.  Does not touch data buffers.  `job` is the
  // tenant context the recorded sends are submitted under: on a shared
  // multi-tenant cluster the replay's flows processor-share contended ports
  // with other jobs' reservations, while on an idle cluster every job id
  // replays to identical clocks (the single-tenant compatibility pin).
  TimingResult run_timing(simnet::Cluster& cluster, double start,
                          int job = simnet::kDefaultJob) const;

  // Fault-aware timing replay via Cluster::submit.  With no fault plan on
  // the cluster (or an empty one) the finish and sync times are bit-identical
  // to run_timing.  On a dead-rank hit it stops issuing, charges the plan's
  // detection timeout, and reports the abort step — it never throws for
  // faults scripted in the plan.  Does not touch data buffers; callers skip
  // run_data when the outcome is aborted.
  ScheduleOutcome run_timing_abortable(simnet::Cluster& cluster, double start,
                                       int job = simnet::kDefaultJob) const;

  // Functional data pass (no clocks).  No-op for timing-only schedules.
  void run_data() const;

  bool empty() const { return sends_.empty() && moves_.empty(); }
  size_t num_sends() const { return sends_.size(); }
  size_t num_moves() const { return moves_.size(); }

  // ---- introspection (read-only, for validators / planners) -----------
  const std::vector<Send>& sends() const { return sends_; }
  const std::vector<Move>& moves() const { return moves_; }
  const std::vector<Sync>& syncs() const { return syncs_; }
  const std::vector<RankSpan>& buffers() const { return buffers_; }
  const std::vector<WireDtype>& buffer_wires() const { return buffer_wires_; }
  uint32_t num_slots() const { return num_slots_; }

 private:
  uint32_t step_ = 0;
  uint32_t num_slots_ = 0;
  std::vector<RankSpan> buffers_;
  std::vector<WireDtype> buffer_wires_;
  std::vector<Send> sends_;
  std::vector<Move> moves_;
  std::vector<Sync> syncs_;
};

}  // namespace hitopk::coll
