// Cost-model-driven schedule planner: autotuning the collective to the
// topology.
//
// Every collective in this repo is an explicit transfer schedule over a
// simnet::Topology, and the simulated clock (Schedule::run_timing) is the
// cost model the whole repo is calibrated against — so "which algorithm
// wins on this cluster for this message?" is a search problem the system
// answers itself, the way NCCL autotunes algorithm choice and MiCS plans
// around the cloud hierarchy.  Given (topology, message size, density) the
// planner:
//
//   1. enumerates candidate schedules — the flat ring (always, as the
//      baseline the planner must never lose to), pod-aware reordered rings,
//      double-binary tree, hierarchical leader All-Reduce, 2D-torus,
//      BlueConnect stage factorizations (mixed-radix enumeration pruned to
//      the hierarchy-aligned splits), the recursive halving-doubling
//      builder for the latency-bound small-message regime, and gTop-k for
//      sparse densities;
//   2. statically validates every schedule-backed candidate
//      (collectives/validator.h) — a candidate that breaks a schedule
//      invariant is a bug, not a slow choice, and must never be scored;
//   3. scores each candidate by replaying its schedule against a fresh
//      Cluster from t = 0 and keeps the earliest finisher (ties keep the
//      earlier-enumerated, simpler candidate — the flat ring is enumerated
//      first);
//   4. caches the winning *configuration* per (topology fingerprint, group,
//      size bucket, density bucket).  A cache hit re-scores only the cached
//      winner and the flat ring at the requested size — so the planner's
//      "never lose to the flat ring" guarantee holds at every size inside a
//      bucket, not just the size that populated it.
//
// Scoring is O(candidates * schedule size) with no functional data; a
// 128-rank plan costs well under a millisecond.  execute() then rebuilds
// the winner as a functional schedule, validates it again with full chunk
// coverage, and runs the timing + data passes — the executed schedule is
// record-for-record the scored one, so on a fresh cluster the executed
// finish equals the predicted finish exactly (the planner fuzz harness
// pins this).
//
// Not thread-safe: one Planner per planning thread (the cache is a plain
// map).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "collectives/common.h"
#include "collectives/schedule.h"
#include "collectives/tree_allreduce.h"

namespace hitopk::coll {

enum class PlanAlgorithm {
  kFlatRing,         // ring_allreduce's engine schedule, membership as given
  kReorderedRing,    // ring over the pod-aware locality-sorted membership
  kTreeAllReduce,    // NCCL-style double binary tree (uniform topologies)
  kHierAllReduce,    // leader-based hierarchical All-Reduce (any topology)
  kTorus2d,          // 2D-torus All-Reduce (uniform topologies)
  kBlueConnect,      // nested multi-ring stage factorization (uniform)
  kHalvingDoubling,  // recursive halving-doubling (latency-bound regime)
  kGtopk,            // sparse global top-k aggregation (density-gated)
};

const char* plan_algorithm_name(PlanAlgorithm algorithm);

struct PlannerOptions {
  // Wire dtype every candidate's transfers travel in (typed payloads,
  // compress/wire_codec.h).  fp32 keeps plans exact-sum.
  WireDtype wire = WireDtype::kFp32;
  // Quantization axis: when true (and `wire` is fp32), every exact-sum
  // candidate is additionally scored as a "+fp16" variant that halves the
  // wire bytes.  fp16 variants are marked exact_sum = false (the result is
  // rounded at shard boundaries), so callers that require the bitwise
  // All-Reduce can filter on PlanChoice::exact_sum.  The flat fp32 ring
  // remains candidate 0, so the never-lose guarantee is unchanged.
  bool quantized_candidates = false;
  // Cap on BlueConnect stage factorizations scored per plan; the pruning
  // heuristic keeps the hierarchy-aligned splits ({gpus, nodes}, the
  // pod-aligned three-stage split, then balanced divisor splits of the node
  // count nearest sqrt(nodes)).
  int max_blueconnect_candidates = 6;
  // Densities below this gate gTop-k into the candidate set; at or above
  // it the message is considered dense and only exact-sum candidates run.
  double dense_density = 0.5;
  // Statically validate every schedule-backed candidate before scoring and
  // the winner (with full chunk coverage) before execution.
  bool validate = true;
  // Chunk pipelining for the tree candidate.
  TreeOptions tree;
};

struct PlanChoice {
  PlanAlgorithm algorithm = PlanAlgorithm::kFlatRing;
  std::string name;          // e.g. "blueconnect{8,4,4}" or "hd+podsort"
  std::vector<int> factors;  // BlueConnect stage sizes (empty otherwise)
  Group ring_order;          // membership order for ring / halving-doubling
  // Simulated finish of the winner / the flat-ring baseline, replayed on a
  // fresh cluster from t = 0.  predicted_seconds <= flat_ring_seconds
  // always (the flat ring is itself a candidate).
  double predicted_seconds = 0.0;
  double flat_ring_seconds = 0.0;
  int candidates_scored = 0;
  bool cache_hit = false;
  // Wire dtype of the winning schedule (PlannerOptions::wire, or kFp16 when
  // a quantized variant won the score).
  WireDtype wire = WireDtype::kFp32;
  // False only for the gTop-k plan, whose result is the shared global
  // top-k *approximation* of the sum; every other plan is an exact-sum
  // All-Reduce, bitwise-comparable against the flat-ring oracle on inputs
  // where float addition is exact.
  bool exact_sum = true;

  double speedup() const {
    return predicted_seconds > 0.0 ? flat_ring_seconds / predicted_seconds
                                   : 1.0;
  }
};

class Planner {
 public:
  explicit Planner(PlannerOptions options = {});

  // Plans an All-Reduce over the full world in rank order.
  PlanChoice plan(const simnet::Topology& topo, size_t elems,
                  double density = 1.0);

  // Plans over an arbitrary rank group (elastic survivor sets, shuffled
  // placements).  A group that is exactly the full world in rank order
  // gets the full candidate set; any other membership restricts to the
  // group-shaped candidates (rings, pod-aware reordered rings,
  // halving-doubling in given and locality-sorted order) — the hierarchical
  // builders and gTop-k are whole-world collectives.
  PlanChoice plan_group(const simnet::Topology& topo, const Group& group,
                        size_t elems, double density = 1.0);

  // Contention-aware overloads: plan against the *live* cluster instead of
  // a fresh idle one.  Candidates are scored by replaying on a copy of the
  // cluster — reservation timelines included — from `start` under `job`, so
  // a candidate whose traffic pattern dodges the ports other tenants have
  // loaded can win, and predicted_seconds/flat_ring_seconds report the
  // *duration* under that load.  An idle cluster with start == 0 delegates
  // to the topology overloads above and returns their winners exactly
  // (pinned); loaded calls bypass the winner cache, because load is
  // transient state, not a cacheable topology property.  The flat-ring
  // never-lose guarantee holds in both regimes.
  PlanChoice plan(const simnet::Cluster& cluster, size_t elems,
                  double density = 1.0, int job = simnet::kDefaultJob,
                  double start = 0.0);
  PlanChoice plan_group(const simnet::Cluster& cluster, const Group& group,
                        size_t elems, double density = 1.0,
                        int job = simnet::kDefaultJob, double start = 0.0);

  // Plans (cache-backed), rebuilds the winner as a functional schedule,
  // validates it with full chunk coverage, and executes both passes on
  // `cluster`.  data is indexed by group position (world rank order for the
  // first overload) and may be empty for timing-only; returns the finish
  // time.  On a fresh cluster with start == 0 the returned finish equals
  // the plan's predicted_seconds exactly.
  double execute(simnet::Cluster& cluster, const RankData& data, size_t elems,
                 double density, double start);
  double execute(simnet::Cluster& cluster, const Group& group,
                 const RankData& data, size_t elems, double density,
                 double start);

  const PlannerOptions& options() const { return options_; }
  size_t cache_size() const { return cache_.size(); }
  size_t cache_hits() const { return cache_hits_; }

 private:
  // A candidate / cached winner: the configuration, without timings.
  struct Candidate {
    PlanAlgorithm algorithm = PlanAlgorithm::kFlatRing;
    std::string name;
    std::vector<int> factors;
    Group ring_order;
    bool exact_sum = true;
    WireDtype wire = WireDtype::kFp32;
  };

  std::vector<Candidate> enumerate(const simnet::Topology& topo,
                                   const Group& group, bool full_world,
                                   double density) const;
  // Records the candidate's schedule; returns false for the non-schedule
  // gTop-k candidate (scored and executed through gtopk_comm).
  bool build_candidate(Schedule& sched, const simnet::Topology& topo,
                       const Candidate& cand, const Group& group,
                       const RankData& data, size_t elems) const;
  double score(const simnet::Topology& topo, const Candidate& cand,
               const Group& group, size_t elems, double density) const;
  double score_live(const simnet::Cluster& cluster, const Candidate& cand,
                    const Group& group, size_t elems, double density, int job,
                    double start) const;
  PlanChoice plan_impl(const simnet::Topology& topo, const Group& group,
                       bool full_world, size_t elems, double density);
  PlanChoice plan_live(const simnet::Cluster& cluster, const Group& group,
                       bool full_world, size_t elems, double density, int job,
                       double start);

  PlannerOptions options_;
  std::unordered_map<std::string, Candidate> cache_;
  size_t cache_hits_ = 0;
};

}  // namespace hitopk::coll
