// Recursive halving-doubling All-Reduce (Thakur et al. 2005), built for the
// latency-bound regime.
//
// A ring All-Reduce costs 2(G-1) message latencies; for the small gradient
// buckets of the paper's layer-wise pipeline on a 25us-alpha cloud fabric,
// those latencies dominate and the ring loses to anything with fewer
// rounds.  Recursive halving-doubling runs 2*log2(G) rounds: reduce-scatter
// by pairwise exchange with partner p XOR 2^t (each round halves the active
// range), then all-gather by the mirrored doubling.
//
// Two deliberate departures from the textbook formulation:
//
//   ascending distance — rounds run h = 1, 2, 4, ... with the *largest*
//     exchanges first, so with ranks in topology order the elems/2-sized
//     round stays on intra-node NVLink and only the geometrically shrinking
//     tails cross nodes and pods.  The kept range is selected by bit t of
//     the rank (low half for 0), so rank p ends owning the chunk at the
//     bit-reversal of p; the all-gather mirrors in descending-t order,
//     finishing with the bulk intra-node round.  On a high-oversubscription
//     fat tree this sends only O(elems / 2^(depth)) bytes through the
//     uplinks — the latency- *and* uplink-suppressing shape the planner
//     wants there.
//
//   fold/unfold for non-powers-of-two — the r = G - 2^floor(log2 G) extra
//     ranks fold their full contribution into partners 0..r-1 up front and
//     receive the finished result back at the end (the gTop-k fold idiom),
//     keeping the core exchange a clean hypercube.
//
// Float order: each round adds the received partial into the kept range
// (dst += src), a fixed serial order per element — deterministic, but a
// *different* association than the ring; differential tests use
// integer-valued inputs where float addition is exact.
#pragma once

#include "collectives/schedule.h"

namespace hitopk::coll {

// Appends the full All-Reduce over `group` to `sched`.  data may be empty
// (timing-only) or hold one span of `elems` floats per group rank.
void build_halving_doubling(Schedule& sched, const Group& group,
                            const RankData& data, size_t elems,
                            WireDtype wire);

// Standalone entry point: build, replay the clock, run the data pass.
double halving_doubling_allreduce(simnet::Cluster& cluster, const Group& group,
                                  const RankData& data, size_t elems,
                                  WireDtype wire, double start);

}  // namespace hitopk::coll
