#include "collectives/hitopkcomm.h"

#include <algorithm>
#include <cmath>

#include "collectives/ring.h"
#include "compress/mstopk.h"
#include "core/tensor.h"

namespace hitopk::coll {
namespace {

size_t shard_k(double density, size_t shard_elems) {
  if (shard_elems == 0) return 0;
  return std::max<size_t>(
      1, static_cast<size_t>(std::llround(density * static_cast<double>(shard_elems))));
}

}  // namespace

HiTopKBreakdown hitopk_comm(simnet::Cluster& cluster, const RankData& data,
                            size_t elems, const HiTopKOptions& options,
                            double start) {
  const simnet::Topology& topo = cluster.topology();
  const int m = topo.nodes();
  const int n = topo.gpus_per_node();
  const bool functional = !data.empty();
  check_data(world_group(topo), data, elems);

  HiTopKBreakdown out;

  // ---- Step 1: intra-node reduce-scatter (dense, Alg. 2 lines 2-4).
  double t1 = start;
  for (int node = 0; node < m; ++node) {
    const Group group = node_group(topo, node);
    RankData node_data;
    if (functional) {
      for (int rank : group) node_data.push_back(data[static_cast<size_t>(rank)]);
    }
    t1 = std::max(t1, ring_reduce_scatter(cluster, group, node_data, elems,
                                          options.value_wire_bytes, start));
  }
  out.reduce_scatter = t1 - start;

  // ---- Step 2: MSTopK on each GPU's owned shard (Alg. 2 lines 5-8).
  // Per-rank sparse selection, indices local to the shard.
  std::vector<compress::SparseTensor> selected(
      static_cast<size_t>(topo.world_size()));
  size_t max_k = 0;
  double mstopk_seconds = 0.0;
  for (int local = 0; local < n; ++local) {
    const ChunkRange shard =
        chunk_range(elems, static_cast<size_t>(n), static_cast<size_t>(local));
    const size_t k = shard_k(options.density, shard.count);
    max_k = std::max(max_k, k);
    if (options.gpu != nullptr) {
      mstopk_seconds = std::max(
          mstopk_seconds, options.gpu->mstopk_seconds(shard.count, k,
                                                      options.mstopk_samplings));
    }
    if (!functional) continue;
    for (int node = 0; node < m; ++node) {
      const int rank = topo.rank_of(node, local);
      auto shard_span =
          data[static_cast<size_t>(rank)].subspan(shard.begin, shard.count);
      compress::MsTopK mstopk(options.mstopk_samplings,
                              options.seed + static_cast<uint64_t>(rank));
      if (options.error_feedback != nullptr) {
        options.error_feedback->apply(
            options.ef_key_prefix + ":" + std::to_string(rank), shard_span);
      }
      selected[static_cast<size_t>(rank)] = mstopk.compress(shard_span, k);
      if (options.error_feedback != nullptr) {
        options.error_feedback->absorb(
            options.ef_key_prefix + ":" + std::to_string(rank), shard_span,
            selected[static_cast<size_t>(rank)]);
      }
    }
  }
  out.selected_per_shard = max_k;
  const double t2 = simnet::Cluster::compute(t1, mstopk_seconds);
  out.mstopk = t2 - t1;

  // ---- Step 3: n concurrent inter-node all-gathers (Alg. 2 lines 11-14)
  // plus local accumulation with duplicate-index adds (lines 15-20).
  // shard_acc[rank] is the dense accumulation of the m sparse blocks.
  std::vector<Tensor> shard_acc;
  if (functional) shard_acc.resize(static_cast<size_t>(topo.world_size()));
  std::vector<Group> stream_groups;
  std::vector<std::vector<size_t>> stream_payloads;
  for (int local = 0; local < n; ++local) {
    const ChunkRange shard =
        chunk_range(elems, static_cast<size_t>(n), static_cast<size_t>(local));
    if (shard.count == 0) continue;
    const Group group = cross_node_group(topo, local);
    std::vector<size_t> payload(group.size());
    for (size_t i = 0; i < group.size(); ++i) {
      const size_t nnz = functional
                             ? selected[static_cast<size_t>(group[i])].nnz()
                             : shard_k(options.density, shard.count);
      payload[i] = nnz * (options.value_wire_bytes + 4);
    }
    stream_payloads.push_back(std::move(payload));
    if (functional) {
      for (int rank : group) {
        Tensor acc(shard.count);
        for (int peer : group) {
          selected[static_cast<size_t>(peer)].scatter_add_into(acc.span());
        }
        shard_acc[static_cast<size_t>(rank)] = std::move(acc);
      }
    }
    stream_groups.push_back(std::move(group));
  }
  // The n streams run concurrently (Alg. 2 line 11: "for j in [n] in
  // parallel"), sharing each node's NIC.
  double t3_comm = t2;
  if (!stream_groups.empty()) {
    t3_comm = ring_allgather_bytes_multi(cluster, stream_groups,
                                         stream_payloads, t2);
  }
  double accumulate_seconds = 0.0;
  if (options.gpu != nullptr) {
    accumulate_seconds = options.gpu->scatter_add_seconds(
        static_cast<size_t>(m) * max_k);
  }
  const double t3 = simnet::Cluster::compute(t3_comm, accumulate_seconds);
  out.inter_allgather = t3 - t2;

  // ---- Step 4: intra-node all-gather of the accumulated sparse shards
  // (Alg. 2 lines 21-23).  Each GPU contributes at most m*k~ nonzeros.
  std::vector<compress::SparseTensor> shard_sparse;
  if (functional) {
    shard_sparse.resize(static_cast<size_t>(topo.world_size()));
    for (int rank = 0; rank < topo.world_size(); ++rank) {
      const int local = topo.local_rank(rank);
      const ChunkRange shard = chunk_range(elems, static_cast<size_t>(n),
                                           static_cast<size_t>(local));
      compress::SparseTensor sparse;
      sparse.dense_size = elems;
      const Tensor& acc = shard_acc[static_cast<size_t>(rank)];
      for (size_t i = 0; i < acc.size(); ++i) {
        if (acc[i] != 0.0f) {
          sparse.indices.push_back(static_cast<uint32_t>(shard.begin + i));
          sparse.values.push_back(acc[i]);
        }
      }
      shard_sparse[static_cast<size_t>(rank)] = std::move(sparse);
    }
  }
  double t4_comm = t3;
  for (int node = 0; node < m; ++node) {
    const Group group = node_group(topo, node);
    std::vector<size_t> payload(group.size());
    for (size_t i = 0; i < group.size(); ++i) {
      size_t nnz;
      if (functional) {
        nnz = shard_sparse[static_cast<size_t>(group[i])].nnz();
      } else {
        const ChunkRange shard = chunk_range(
            elems, static_cast<size_t>(n), static_cast<size_t>(i));
        nnz = std::min(static_cast<size_t>(m) *
                           shard_k(options.density, shard.count),
                       shard.count);
      }
      payload[i] = nnz * (options.value_wire_bytes + 4);
    }
    t4_comm = std::max(t4_comm,
                       ring_allgather_bytes(cluster, group, payload, t3));
  }
  double rebuild_seconds = 0.0;
  if (options.gpu != nullptr) {
    rebuild_seconds = options.gpu->scatter_add_seconds(
        std::min(static_cast<size_t>(m) * max_k * static_cast<size_t>(n),
                 elems));
  }
  const double t4 = simnet::Cluster::compute(t4_comm, rebuild_seconds);
  out.intra_allgather = t4 - t3;
  out.total = t4 - start;

  if (functional) {
    // Rebuild the full aggregated gradient on every rank: the union of all
    // node-local shard accumulations (identical across nodes by step 3).
    for (int rank = 0; rank < topo.world_size(); ++rank) {
      auto dst = data[static_cast<size_t>(rank)];
      std::fill(dst.begin(), dst.end(), 0.0f);
      const int node = topo.node_of(rank);
      for (int local = 0; local < n; ++local) {
        const int peer = topo.rank_of(node, local);
        shard_sparse[static_cast<size_t>(peer)].scatter_add_into(dst);
      }
    }
  }
  return out;
}

}  // namespace hitopk::coll
