#include "collectives/hitopkcomm.h"

#include <algorithm>
#include <cmath>

#include "collectives/ring.h"
#include "compress/mstopk.h"
#include "core/parallel.h"
#include "core/tensor.h"
#include "core/workspace.h"

namespace hitopk::coll {
namespace {

size_t shard_k(double density, size_t shard_elems) {
  if (shard_elems == 0) return 0;
  return std::max<size_t>(
      1, static_cast<size_t>(std::llround(density * static_cast<double>(shard_elems))));
}

}  // namespace

HiTopKBreakdown hitopk_comm(simnet::Cluster& cluster, const RankData& data,
                            size_t elems, const HiTopKOptions& options,
                            double start) {
  const simnet::Topology& topo = cluster.topology();
  HITOPK_VALIDATE(topo.uniform())
      << "hitopk_comm's owned-shard layout needs a uniform topology";
  const int m = topo.nodes();
  const int n = topo.gpus_per_node();
  const int world = topo.world_size();
  const bool functional = !data.empty();
  check_data(world_group(topo), data, elems);

  HiTopKBreakdown out;

  // Owned-shard layout: GPU `local` of every node owns shard `local`.
  std::vector<ChunkRange> shards(static_cast<size_t>(n));
  for (int local = 0; local < n; ++local) {
    shards[static_cast<size_t>(local)] =
        chunk_range(elems, static_cast<size_t>(n), static_cast<size_t>(local));
  }

  // ---- Step 1: intra-node reduce-scatter (dense, Alg. 2 lines 2-4).
  double t1 = start;
  if (collective_path() == CollectivePath::kLegacy) {
    for (int node = 0; node < m; ++node) {
      const Group group = node_group(topo, node);
      RankData node_data;
      if (functional) {
        for (int rank : group) node_data.push_back(data[static_cast<size_t>(rank)]);
      }
      t1 = std::max(t1, ring_reduce_scatter(cluster, group, node_data, elems,
                                            options.value_wire_bytes, start));
    }
  } else {
    // Engine path: the m per-node rings are one multi-group schedule — same
    // clocks (intra-node ports are disjoint across nodes), but each step's
    // reduces across all nodes batch into a single parallel_for.
    std::vector<Group> node_groups;
    std::vector<RankData> node_data;
    for (int node = 0; node < m; ++node) {
      node_groups.push_back(node_group(topo, node));
      if (functional) {
        RankData nd;
        for (int rank : node_groups.back()) {
          nd.push_back(data[static_cast<size_t>(rank)]);
        }
        node_data.push_back(std::move(nd));
      }
    }
    Schedule sched;
    const RingGrid grid = ring_grid(sched, node_groups, node_data);
    build_ring_reduce_scatter(sched, node_groups, grid, elems,
                              options.value_wire_bytes,
                              /*fused_chains=*/true);
    t1 = sched.run_timing(cluster, start).finish;
    sched.run_data();
  }
  out.reduce_scatter = t1 - start;

  // ---- Step 2: MSTopK on each GPU's owned shard (Alg. 2 lines 5-8).
  // Per-rank sparse selection, indices local to the shard.
  std::vector<compress::SparseTensor> selected(static_cast<size_t>(world));
  size_t max_k = 0;
  double mstopk_seconds = 0.0;
  for (int local = 0; local < n; ++local) {
    const ChunkRange& shard = shards[static_cast<size_t>(local)];
    const size_t k = shard_k(options.density, shard.count);
    max_k = std::max(max_k, k);
    if (options.gpu != nullptr) {
      mstopk_seconds = std::max(
          mstopk_seconds, options.gpu->mstopk_seconds(shard.count, k,
                                                      options.mstopk_samplings));
    }
  }
  if (functional) {
    // Error-feedback keys are per rank and constant across iterations:
    // build each "<prefix>:<rank>" string once instead of re-concatenating
    // it in the selection loop, and pre-create the residual entries so the
    // parallel workers below only ever look them up (inserts would race).
    std::vector<std::string> ef_keys;
    if (options.error_feedback != nullptr) {
      ef_keys.resize(static_cast<size_t>(world));
      for (int rank = 0; rank < world; ++rank) {
        ef_keys[static_cast<size_t>(rank)] =
            options.ef_key_prefix + ":" + std::to_string(rank);
        const ChunkRange& shard =
            shards[static_cast<size_t>(topo.local_rank(rank))];
        options.error_feedback->ensure(ef_keys[static_cast<size_t>(rank)],
                                       shard.count);
      }
    }
    // Every rank simulates an independent GPU: disjoint shard buffers,
    // per-rank seeded RNG, per-rank residual entry.  The iterations commute,
    // so the parallel execution is bitwise identical to the serial loop.
    const compress::MsTopKMode mode = options.mstopk_histogram
                                          ? compress::MsTopKMode::kHistogram
                                          : compress::MsTopKMode::kMultiPass;
    parallel_for(0, static_cast<size_t>(world), [&](size_t r) {
      const int rank = static_cast<int>(r);
      const ChunkRange& shard =
          shards[static_cast<size_t>(topo.local_rank(rank))];
      const size_t k = shard_k(options.density, shard.count);
      auto shard_span = data[r].subspan(shard.begin, shard.count);
      compress::MsTopK mstopk(options.mstopk_samplings,
                              options.seed + static_cast<uint64_t>(rank),
                              mode);
      // Fused EF exchange: the shard is untouched between compensation and
      // absorption, so priming the residual during apply saves absorb's
      // full-shard copy.
      if (options.error_feedback != nullptr) {
        options.error_feedback->apply_priming(ef_keys[r], shard_span);
      }
      selected[r] = mstopk.compress(shard_span, k);
      if (options.error_feedback != nullptr) {
        options.error_feedback->absorb_primed(ef_keys[r], selected[r]);
      }
    });
  }
  out.selected_per_shard = max_k;
  const double t2 = simnet::Cluster::compute(t1, mstopk_seconds);
  out.mstopk = t2 - t1;

  // ---- Step 3: n concurrent inter-node all-gathers (Alg. 2 lines 11-14)
  // plus local accumulation with duplicate-index adds (lines 15-20).
  // Every rank of stream `local` computes the identical dense accumulation
  // of the stream's m sparse blocks, so it is computed once per stream (not
  // once per rank), directly into the stream's shard slice of one flat
  // dense buffer.  The owned shards tile [0, elems), so the flat buffer IS
  // the aggregated gradient — step 4's rebuild becomes a straight copy per
  // rank instead of materialising per-shard SparseTensors and scatter-adding
  // them n times per rank.  stream_nnz keeps the per-stream nonzero counts
  // the step-4 wire payloads need.
  Scratch<float> stream_dense(functional ? elems : 0, /*zeroed=*/true);
  std::vector<size_t> stream_nnz(static_cast<size_t>(n), 0);
  std::vector<Group> stream_groups;
  std::vector<std::vector<size_t>> stream_payloads;
  std::vector<int> stream_locals;
  for (int local = 0; local < n; ++local) {
    const ChunkRange& shard = shards[static_cast<size_t>(local)];
    if (shard.count == 0) continue;
    Group group = cross_node_group(topo, local);
    std::vector<size_t> payload(group.size());
    for (size_t i = 0; i < group.size(); ++i) {
      const size_t nnz = functional
                             ? selected[static_cast<size_t>(group[i])].nnz()
                             : shard_k(options.density, shard.count);
      payload[i] = nnz * (options.value_wire_bytes + 4);
    }
    stream_payloads.push_back(std::move(payload));
    stream_groups.push_back(std::move(group));
    stream_locals.push_back(local);
  }
  if (functional) {
    parallel_for(0, stream_locals.size(), [&](size_t s) {
      const int local = stream_locals[s];
      const ChunkRange& shard = shards[static_cast<size_t>(local)];
      const Group& group = stream_groups[s];
      // Disjoint shard slices: every stream worker owns its own range of
      // the flat buffer, so the parallel accumulation is race-free and
      // bitwise-identical to the serial loop.
      auto acc = stream_dense.span().subspan(shard.begin, shard.count);
      for (int peer : group) {
        selected[static_cast<size_t>(peer)].scatter_add_into(acc);
      }
      size_t nnz = 0;
      for (const float v : acc) nnz += v != 0.0f ? 1 : 0;
      stream_nnz[static_cast<size_t>(local)] = nnz;
    });
  }
  // The n streams run concurrently (Alg. 2 line 11: "for j in [n] in
  // parallel"), sharing each node's NIC.
  double t3_comm = t2;
  if (!stream_groups.empty()) {
    t3_comm = ring_allgather_bytes_multi(cluster, stream_groups,
                                         stream_payloads, t2);
  }
  double accumulate_seconds = 0.0;
  if (options.gpu != nullptr) {
    accumulate_seconds = options.gpu->scatter_add_seconds(
        static_cast<size_t>(m) * max_k);
  }
  const double t3 = simnet::Cluster::compute(t3_comm, accumulate_seconds);
  out.inter_allgather = t3 - t2;

  // ---- Step 4: intra-node all-gather of the accumulated sparse shards
  // (Alg. 2 lines 21-23).  Each GPU contributes at most m*k~ nonzeros.
  double t4_comm = t3;
  for (int node = 0; node < m; ++node) {
    const Group group = node_group(topo, node);
    std::vector<size_t> payload(group.size());
    for (size_t i = 0; i < group.size(); ++i) {
      size_t nnz;
      if (functional) {
        const int local = topo.local_rank(group[i]);
        nnz = stream_nnz[static_cast<size_t>(local)];
      } else {
        const ChunkRange shard = chunk_range(
            elems, static_cast<size_t>(n), static_cast<size_t>(i));
        nnz = std::min(static_cast<size_t>(m) *
                           shard_k(options.density, shard.count),
                       shard.count);
      }
      payload[i] = nnz * (options.value_wire_bytes + 4);
    }
    t4_comm = std::max(t4_comm,
                       ring_allgather_bytes(cluster, group, payload, t3));
  }
  double rebuild_seconds = 0.0;
  if (options.gpu != nullptr) {
    rebuild_seconds = options.gpu->scatter_add_seconds(
        std::min(static_cast<size_t>(m) * max_k * static_cast<size_t>(n),
                 elems));
  }
  const double t4 = simnet::Cluster::compute(t4_comm, rebuild_seconds);
  out.intra_allgather = t4 - t3;
  out.total = t4 - start;

  if (functional) {
    // Rebuild the full aggregated gradient on every rank.  The owned shards
    // tile [0, elems) and each stream already accumulated into its slice,
    // so the flat buffer is the complete aggregate — one contiguous copy
    // per rank replaces the old zero-fill plus n sparse scatter-adds.
    parallel_for(0, static_cast<size_t>(world), [&](size_t r) {
      std::copy(stream_dense.span().begin(), stream_dense.span().end(),
                data[r].begin());
    });
  }
  return out;
}

}  // namespace hitopk::coll
