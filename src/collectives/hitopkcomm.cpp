#include "collectives/hitopkcomm.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "collectives/ring.h"
#include "compress/mstopk.h"
#include "core/parallel.h"
#include "core/tensor.h"
#include "core/workspace.h"

namespace hitopk::coll {
namespace {

size_t shard_k(double density, size_t shard_elems) {
  if (shard_elems == 0) return 0;
  return std::max<size_t>(
      1, static_cast<size_t>(std::llround(density * static_cast<double>(shard_elems))));
}

// Wire bytes of one sparse (values, indices) block: values at the value
// wire dtype (plus its per-block scale record), 4-byte indices.
size_t sparse_payload_bytes(WireDtype wire, size_t nnz) {
  return wire_payload_bytes(wire, nnz) + nnz * 4;
}

// Scratch for staging a shard through the wire codec on the fan-in path.
std::vector<float>& fanin_staging() {
  thread_local std::vector<float> staging;
  return staging;
}

// One stream's aggregated sparse result: globally-indexed, ascending,
// compact (exact zeros already dropped).  The inter-node all-gather legs
// quote indices.size() as the stream's nonzero count, and step 4's rebuild
// scatters the pairs directly — the engine path never materialises the
// dense accumulation buffer the legacy path scatter-adds into.
struct CompactStream {
  std::vector<uint32_t> indices;
  std::vector<float> values;
};

// Stable index-sort of a block whose indices arrive out of order.  MSTopK
// always emits ascending indices, so this is cold; it exists so
// merge_accumulate stays correct for arbitrary SparseTensor inputs
// (duplicates within a block keep their storage order, matching the
// scatter-add sequence).
const compress::SparseTensor* sorted_block(
    const compress::SparseTensor* sp,
    std::vector<compress::SparseTensor>& storage) {
  std::vector<uint32_t> perm(sp->nnz());
  std::iota(perm.begin(), perm.end(), 0u);
  std::stable_sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
    return sp->indices[a] < sp->indices[b];
  });
  compress::SparseTensor sorted;
  sorted.dense_size = sp->dense_size;
  sorted.indices.reserve(perm.size());
  sorted.values.reserve(perm.size());
  for (const uint32_t i : perm) {
    sorted.indices.push_back(sp->indices[i]);
    sorted.values.push_back(sp->values[i]);
  }
  storage.push_back(std::move(sorted));
  return &storage.back();
}

// Merge-accumulates one stream's m sorted sparse blocks into a compact
// (index, value) stream.  Each output index sums its occurrences in block
// order starting from a literal 0.0f, which is float-for-float the sequence
// the legacy path's scatter-add into a zeroed dense buffer performs — the
// result is bitwise identical, including signed-zero and NaN propagation.
// Touching only the k-way frontier costs O(nnz * m) instead of the legacy
// dense memset + full-shard nonzero rescan.
void merge_accumulate(std::span<const compress::SparseTensor* const> blocks,
                      size_t shard_begin, CompactStream& out) {
  struct Cursor {
    const uint32_t* idx;
    const uint32_t* end;
    const float* val;
  };
  std::vector<compress::SparseTensor> sorted_storage;
  sorted_storage.reserve(blocks.size());
  std::vector<Cursor> cursors;
  cursors.reserve(blocks.size());
  size_t total = 0;
  for (const compress::SparseTensor* sp : blocks) {
    const compress::SparseTensor* use = sp;
    if (!std::is_sorted(sp->indices.begin(), sp->indices.end())) {
      use = sorted_block(sp, sorted_storage);
    }
    if (!use->indices.empty()) {
      cursors.push_back({use->indices.data(),
                         use->indices.data() + use->indices.size(),
                         use->values.data()});
      total += use->indices.size();
    }
  }
  out.indices.clear();
  out.values.clear();
  out.indices.reserve(total);
  out.values.reserve(total);
  while (!cursors.empty()) {
    uint32_t lo = *cursors.front().idx;
    for (size_t c = 1; c < cursors.size(); ++c) {
      lo = std::min(lo, *cursors[c].idx);
    }
    // Blocks stay in storage order, so duplicate indices accumulate in the
    // same order the legacy scatter-add applies them.
    float sum = 0.0f;
    for (Cursor& cur : cursors) {
      while (cur.idx != cur.end && *cur.idx == lo) {
        sum += *cur.val;
        ++cur.idx;
        ++cur.val;
      }
    }
    cursors.erase(std::remove_if(cursors.begin(), cursors.end(),
                                 [](const Cursor& c) { return c.idx == c.end; }),
                  cursors.end());
    if (sum != 0.0f) {
      out.indices.push_back(static_cast<uint32_t>(shard_begin + lo));
      out.values.push_back(sum);
    }
  }
}

// Rebuilds the full aggregated gradient on every rank from the compact
// streams.  The streams are in shard order and each is ascending, so the
// concatenation is globally sorted: one forward pass per rank zero-fills
// L1-sized tiles with memset and scatters the tile's survivors while its
// lines are still cache-resident.  That writes each output element exactly
// once at streaming-store speed, where the legacy full-buffer copy also
// *reads* every element — roughly halving step 4's memory traffic.
void rebuild_from_compact(const RankData& data,
                          const std::vector<CompactStream>& streams) {
  constexpr size_t kTileElems = 8 * 1024;  // 32 KiB of floats.
  parallel_for(0, data.size(), [&](size_t r) {
    float* out = data[r].data();
    const size_t elems = data[r].size();
    size_t s = 0;
    size_t cur = 0;
    for (size_t begin = 0; begin < elems; begin += kTileElems) {
      const size_t end = std::min(elems, begin + kTileElems);
      std::memset(out + begin, 0, (end - begin) * sizeof(float));
      while (s < streams.size()) {
        const CompactStream& st = streams[s];
        while (cur < st.indices.size() && st.indices[cur] < end) {
          out[st.indices[cur]] = st.values[cur];
          ++cur;
        }
        if (cur < st.indices.size()) break;
        ++s;
        cur = 0;
      }
    }
  });
}

// ======================= uniform fleets (n GPUs everywhere) ==============
HiTopKBreakdown hitopk_uniform(simnet::Cluster& cluster, const RankData& data,
                               size_t elems, const HiTopKOptions& options,
                               double start) {
  const simnet::Topology& topo = cluster.topology();
  const int m = topo.nodes();
  const int n = topo.gpus_per_node();
  const int world = topo.world_size();
  const bool functional = !data.empty();
  const bool legacy = collective_path() == CollectivePath::kLegacy;
  const WireDtype wire = options.value_wire;

  HiTopKBreakdown out;

  // Owned-shard layout: GPU `local` of every node owns shard `local`.
  std::vector<ChunkRange> shards(static_cast<size_t>(n));
  for (int local = 0; local < n; ++local) {
    shards[static_cast<size_t>(local)] =
        chunk_range(elems, static_cast<size_t>(n), static_cast<size_t>(local));
  }

  // ---- Step 1: intra-node reduce-scatter (dense, Alg. 2 lines 2-4).
  double t1 = start;
  if (legacy) {
    for (int node = 0; node < m; ++node) {
      const Group group = node_group(topo, node);
      RankData node_data;
      if (functional) {
        for (int rank : group) node_data.push_back(data[static_cast<size_t>(rank)]);
      }
      t1 = std::max(t1, ring_reduce_scatter(cluster, group, node_data, elems,
                                            wire, start));
    }
  } else {
    // Engine path: the m per-node rings are one multi-group schedule — same
    // clocks (intra-node ports are disjoint across nodes), but each step's
    // reduces across all nodes batch into a single parallel_for.
    std::vector<Group> node_groups;
    std::vector<RankData> node_data;
    for (int node = 0; node < m; ++node) {
      node_groups.push_back(node_group(topo, node));
      if (functional) {
        RankData nd;
        for (int rank : node_groups.back()) {
          nd.push_back(data[static_cast<size_t>(rank)]);
        }
        node_data.push_back(std::move(nd));
      }
    }
    Schedule sched;
    const RingGrid grid = ring_grid(sched, node_groups, node_data, wire);
    build_ring_reduce_scatter(sched, node_groups, grid, elems, wire,
                              /*fused_chains=*/true);
    t1 = sched.run_timing(cluster, start).finish;
    sched.run_data();
  }
  out.reduce_scatter = t1 - start;

  // ---- Step 2: MSTopK on each GPU's owned shard (Alg. 2 lines 5-8).
  // Per-rank sparse selection, indices local to the shard.
  std::vector<compress::SparseTensor> selected(static_cast<size_t>(world));
  size_t max_k = 0;
  double mstopk_seconds = 0.0;
  for (int local = 0; local < n; ++local) {
    const ChunkRange& shard = shards[static_cast<size_t>(local)];
    const size_t k = shard_k(options.density, shard.count);
    max_k = std::max(max_k, k);
    if (options.gpu != nullptr) {
      mstopk_seconds = std::max(
          mstopk_seconds, options.gpu->mstopk_seconds(shard.count, k,
                                                      options.mstopk_samplings));
    }
  }
  if (functional) {
    // Error-feedback keys are per rank and constant across iterations:
    // build each "<prefix>:<rank>" string once instead of re-concatenating
    // it in the selection loop, and pre-create the residual entries so the
    // parallel workers below only ever look them up (inserts would race).
    std::vector<std::string> ef_keys;
    if (options.error_feedback != nullptr) {
      ef_keys.resize(static_cast<size_t>(world));
      for (int rank = 0; rank < world; ++rank) {
        ef_keys[static_cast<size_t>(rank)] =
            options.ef_key_prefix + ":" + std::to_string(rank);
        const ChunkRange& shard =
            shards[static_cast<size_t>(topo.local_rank(rank))];
        options.error_feedback->ensure(ef_keys[static_cast<size_t>(rank)],
                                       shard.count);
      }
    }
    // Every rank simulates an independent GPU: disjoint shard buffers,
    // per-rank seeded RNG, per-rank residual entry.  The iterations commute,
    // so the parallel execution is bitwise identical to the serial loop.
    const compress::MsTopKMode mode = options.mstopk_histogram
                                          ? compress::MsTopKMode::kHistogram
                                          : compress::MsTopKMode::kMultiPass;
    parallel_for(0, static_cast<size_t>(world), [&](size_t r) {
      const int rank = static_cast<int>(r);
      const ChunkRange& shard =
          shards[static_cast<size_t>(topo.local_rank(rank))];
      const size_t k = shard_k(options.density, shard.count);
      auto shard_span = data[r].subspan(shard.begin, shard.count);
      compress::MsTopK mstopk(options.mstopk_samplings,
                              options.seed + static_cast<uint64_t>(rank),
                              mode);
      // Fused EF exchange: the shard is untouched between compensation and
      // absorption, so priming the residual during apply saves absorb's
      // full-shard copy.
      if (options.error_feedback != nullptr) {
        options.error_feedback->apply_priming(ef_keys[r], shard_span);
      }
      selected[r] = mstopk.compress(shard_span, k);
      // Typed payloads: the values cross the wire in the selected dtype, so
      // round them through the codec *before* error feedback absorbs the
      // send — the residual then keeps the quantization error alongside the
      // unselected coordinates.  A no-op for fp32.
      wire_round_trip(wire, std::span<float>(selected[r].values));
      if (options.error_feedback != nullptr) {
        options.error_feedback->absorb_primed(ef_keys[r], selected[r]);
      }
    });
  }
  out.selected_per_shard = max_k;
  const double t2 = simnet::Cluster::compute(t1, mstopk_seconds);
  out.mstopk = t2 - t1;

  // ---- Step 3: n concurrent inter-node all-gathers (Alg. 2 lines 11-14)
  // plus local accumulation with duplicate-index adds (lines 15-20).
  // Every rank of stream `local` computes the identical dense accumulation
  // of the stream's m sparse blocks, so it is computed once per stream (not
  // once per rank), directly into the stream's shard slice of one flat
  // dense buffer.  The owned shards tile [0, elems), so the flat buffer IS
  // the aggregated gradient.  stream_nnz keeps the per-stream nonzero
  // counts the step-4 wire payloads need.
  //
  // The legacy branch zeroes the flat buffer, scatter-adds, and scans each
  // shard for nonzeros; the engine branch merge-accumulates the sorted
  // blocks into compact streams (see merge_accumulate), which needs no
  // dense buffer, no memset, and no full-shard rescan — the streams then
  // feed step 4's tiled scatter rebuild.
  Scratch<float> stream_dense(functional && legacy ? elems : 0,
                              /*zeroed=*/true);
  std::vector<CompactStream> streams(
      functional && !legacy ? static_cast<size_t>(n) : 0);
  std::vector<size_t> stream_nnz(static_cast<size_t>(n), 0);
  std::vector<Group> stream_groups;
  std::vector<std::vector<size_t>> stream_payloads;
  std::vector<int> stream_locals;
  for (int local = 0; local < n; ++local) {
    const ChunkRange& shard = shards[static_cast<size_t>(local)];
    if (shard.count == 0) continue;
    Group group = cross_node_group(topo, local);
    std::vector<size_t> payload(group.size());
    for (size_t i = 0; i < group.size(); ++i) {
      const size_t nnz = functional
                             ? selected[static_cast<size_t>(group[i])].nnz()
                             : shard_k(options.density, shard.count);
      payload[i] = sparse_payload_bytes(wire, nnz);
    }
    stream_payloads.push_back(std::move(payload));
    stream_groups.push_back(std::move(group));
    stream_locals.push_back(local);
  }
  if (functional) {
    parallel_for(0, stream_locals.size(), [&](size_t s) {
      const int local = stream_locals[s];
      const ChunkRange& shard = shards[static_cast<size_t>(local)];
      const Group& group = stream_groups[s];
      // Disjoint shard slices: every stream worker owns its own range of
      // the flat buffer, so the parallel accumulation is race-free and
      // bitwise-identical to the serial loop.
      if (legacy) {
        auto acc = stream_dense.span().subspan(shard.begin, shard.count);
        for (int peer : group) {
          selected[static_cast<size_t>(peer)].scatter_add_into(acc);
        }
        size_t nnz = 0;
        for (const float v : acc) nnz += v != 0.0f ? 1 : 0;
        stream_nnz[static_cast<size_t>(local)] = nnz;
      } else {
        std::vector<const compress::SparseTensor*> blocks;
        blocks.reserve(group.size());
        for (int peer : group) {
          blocks.push_back(&selected[static_cast<size_t>(peer)]);
        }
        CompactStream& stream = streams[static_cast<size_t>(local)];
        merge_accumulate(blocks, shard.begin, stream);
        stream_nnz[static_cast<size_t>(local)] = stream.indices.size();
      }
    });
  }
  // The n streams run concurrently (Alg. 2 line 11: "for j in [n] in
  // parallel"), sharing each node's NIC.
  double t3_comm = t2;
  if (!stream_groups.empty()) {
    t3_comm = ring_allgather_bytes_multi(cluster, stream_groups,
                                         stream_payloads, t2);
  }
  double accumulate_seconds = 0.0;
  if (options.gpu != nullptr) {
    accumulate_seconds = options.gpu->scatter_add_seconds(
        static_cast<size_t>(m) * max_k);
  }
  const double t3 = simnet::Cluster::compute(t3_comm, accumulate_seconds);
  out.inter_allgather = t3 - t2;

  // ---- Step 4: intra-node all-gather of the accumulated sparse shards
  // (Alg. 2 lines 21-23).  Each GPU contributes at most m*k~ nonzeros.
  double t4_comm = t3;
  for (int node = 0; node < m; ++node) {
    const Group group = node_group(topo, node);
    std::vector<size_t> payload(group.size());
    for (size_t i = 0; i < group.size(); ++i) {
      size_t nnz;
      if (functional) {
        const int local = topo.local_rank(group[i]);
        nnz = stream_nnz[static_cast<size_t>(local)];
      } else {
        const ChunkRange shard = chunk_range(
            elems, static_cast<size_t>(n), static_cast<size_t>(i));
        nnz = std::min(static_cast<size_t>(m) *
                           shard_k(options.density, shard.count),
                       shard.count);
      }
      payload[i] = sparse_payload_bytes(wire, nnz);
    }
    t4_comm = std::max(t4_comm,
                       ring_allgather_bytes(cluster, group, payload, t3));
  }
  double rebuild_seconds = 0.0;
  if (options.gpu != nullptr) {
    rebuild_seconds = options.gpu->scatter_add_seconds(
        std::min(static_cast<size_t>(m) * max_k * static_cast<size_t>(n),
                 elems));
  }
  const double t4 = simnet::Cluster::compute(t4_comm, rebuild_seconds);
  out.intra_allgather = t4 - t3;
  out.total = t4 - start;

  if (functional) {
    // Rebuild the full aggregated gradient on every rank.  The owned shards
    // tile [0, elems), so the legacy flat buffer (or the concatenated
    // compact streams) is the complete aggregate.  The legacy branch copies
    // the whole buffer per rank; the engine branch runs the tiled
    // zero-and-scatter pass.
    if (legacy) {
      parallel_for(0, static_cast<size_t>(world), [&](size_t r) {
        std::copy(stream_dense.span().begin(), stream_dense.span().end(),
                  data[r].begin());
      });
    } else {
      rebuild_from_compact(data, streams);
    }
  }
  return out;
}

// ==================== uneven fleets (per-node GPU counts) ================
//
// L = max gpus-per-node shards tile the gradient; on a node with g GPUs,
// GPU j owns every shard s with s % g == j.  Step 1 aggregates each shard
// by direct fan-in to its owner (a per-node ring reduce-scatter needs one
// chunk per member, which the L-shard grid of a small node does not
// provide); steps 2-4 are the uniform pipeline run per (shard, node) unit.
// One implementation serves both collective paths — there is no legacy
// inline loop to validate against, so the engine-style merge accumulation
// and tiled scatter rebuild run unconditionally.
HiTopKBreakdown hitopk_uneven(simnet::Cluster& cluster, const RankData& data,
                              size_t elems, const HiTopKOptions& options,
                              double start) {
  const simnet::Topology& topo = cluster.topology();
  const int m = topo.nodes();
  const int world = topo.world_size();
  const bool functional = !data.empty();
  const WireDtype wire = options.value_wire;

  int L = 0;
  for (int node = 0; node < m; ++node) {
    L = std::max(L, topo.gpus_on_node(node));
  }
  HITOPK_CHECK_GT(L, 0);

  HiTopKBreakdown out;
  std::vector<ChunkRange> shards(static_cast<size_t>(L));
  for (int s = 0; s < L; ++s) {
    shards[static_cast<size_t>(s)] =
        chunk_range(elems, static_cast<size_t>(L), static_cast<size_t>(s));
  }
  const auto owner_of = [&](int node, int s) {
    return topo.rank_of(node, s % topo.gpus_on_node(node));
  };

  // ---- Step 1: per-(node, shard) dense fan-in to the shard's owner.
  double t1 = start;
  for (int node = 0; node < m; ++node) {
    const int g = topo.gpus_on_node(node);
    for (int s = 0; s < L; ++s) {
      const ChunkRange& shard = shards[static_cast<size_t>(s)];
      if (shard.count == 0) continue;
      const int owner = owner_of(node, s);
      for (int local = 0; local < g; ++local) {
        const int rank = topo.rank_of(node, local);
        if (rank == owner) continue;
        const double done =
            cluster
                .submit({simnet::kDefaultJob, rank, owner,
                         wire_payload_bytes(wire, shard.count), start})
                .time;
        t1 = std::max(t1, done);
      }
      if (functional) {
        auto acc = data[static_cast<size_t>(owner)].subspan(shard.begin,
                                                            shard.count);
        for (int local = 0; local < g; ++local) {
          const int rank = topo.rank_of(node, local);
          if (rank == owner) continue;
          auto src =
              data[static_cast<size_t>(rank)].subspan(shard.begin, shard.count);
          if (wire == WireDtype::kFp32) {
            tensor_ops::add_into(acc, src);
          } else {
            // The peer's slice crosses the wire before the owner adds it.
            auto& staging = fanin_staging();
            staging.assign(src.begin(), src.end());
            wire_round_trip(wire, std::span<float>(staging));
            tensor_ops::add_into(acc, std::span<const float>(staging));
          }
        }
      }
    }
  }
  out.reduce_scatter = t1 - start;

  // ---- Step 2: MSTopK per (shard, node) unit.  A small node's GPU owns
  // several shards, so units — not ranks — are the parallel grain, and the
  // error-feedback keys carry the shard: "<prefix>:<rank>:s<shard>".
  struct Unit {
    int s;
    int node;
  };
  std::vector<Unit> units;
  size_t max_k = 0;
  double mstopk_seconds = 0.0;
  for (int s = 0; s < L; ++s) {
    const ChunkRange& shard = shards[static_cast<size_t>(s)];
    if (shard.count == 0) continue;
    const size_t k = shard_k(options.density, shard.count);
    max_k = std::max(max_k, k);
    if (options.gpu != nullptr) {
      mstopk_seconds = std::max(
          mstopk_seconds, options.gpu->mstopk_seconds(shard.count, k,
                                                      options.mstopk_samplings));
    }
    for (int node = 0; node < m; ++node) units.push_back({s, node});
  }
  // sel[s * m + node]: the block node `node` contributes to shard s's stream.
  std::vector<compress::SparseTensor> sel(static_cast<size_t>(L * m));
  if (functional) {
    std::vector<std::string> ef_keys;
    if (options.error_feedback != nullptr) {
      ef_keys.resize(units.size());
      for (size_t u = 0; u < units.size(); ++u) {
        const int rank = owner_of(units[u].node, units[u].s);
        ef_keys[u] = options.ef_key_prefix + ":" + std::to_string(rank) +
                     ":s" + std::to_string(units[u].s);
        options.error_feedback->ensure(
            ef_keys[u], shards[static_cast<size_t>(units[u].s)].count);
      }
    }
    const compress::MsTopKMode mode = options.mstopk_histogram
                                          ? compress::MsTopKMode::kHistogram
                                          : compress::MsTopKMode::kMultiPass;
    parallel_for(0, units.size(), [&](size_t u) {
      const int s = units[u].s;
      const int rank = owner_of(units[u].node, s);
      const ChunkRange& shard = shards[static_cast<size_t>(s)];
      const size_t k = shard_k(options.density, shard.count);
      auto shard_span =
          data[static_cast<size_t>(rank)].subspan(shard.begin, shard.count);
      // Per-unit seed: a rank owning several shards runs one independent
      // selection stream per shard.
      compress::MsTopK mstopk(
          options.mstopk_samplings,
          options.seed + static_cast<uint64_t>(rank) *
                             static_cast<uint64_t>(L) +
              static_cast<uint64_t>(s),
          mode);
      if (options.error_feedback != nullptr) {
        options.error_feedback->apply_priming(ef_keys[u], shard_span);
      }
      compress::SparseTensor& block =
          sel[static_cast<size_t>(s * m + units[u].node)];
      block = mstopk.compress(shard_span, k);
      wire_round_trip(wire, std::span<float>(block.values));
      if (options.error_feedback != nullptr) {
        options.error_feedback->absorb_primed(ef_keys[u], block);
      }
    });
  }
  out.selected_per_shard = max_k;
  const double t2 = simnet::Cluster::compute(t1, mstopk_seconds);
  out.mstopk = t2 - t1;

  // ---- Step 3: L concurrent inter-node all-gathers, one per shard, among
  // the shard's per-node owners.  Two shards of a small node share their
  // owner's NIC; the port clocks serialize them.
  std::vector<CompactStream> streams(functional ? static_cast<size_t>(L) : 0);
  std::vector<size_t> stream_nnz(static_cast<size_t>(L), 0);
  std::vector<Group> stream_groups;
  std::vector<std::vector<size_t>> stream_payloads;
  std::vector<int> stream_shards;
  for (int s = 0; s < L; ++s) {
    const ChunkRange& shard = shards[static_cast<size_t>(s)];
    if (shard.count == 0) continue;
    Group group;
    std::vector<size_t> payload;
    for (int node = 0; node < m; ++node) {
      group.push_back(owner_of(node, s));
      const size_t nnz = functional
                             ? sel[static_cast<size_t>(s * m + node)].nnz()
                             : shard_k(options.density, shard.count);
      payload.push_back(sparse_payload_bytes(wire, nnz));
    }
    stream_groups.push_back(std::move(group));
    stream_payloads.push_back(std::move(payload));
    stream_shards.push_back(s);
  }
  if (functional) {
    parallel_for(0, stream_shards.size(), [&](size_t i) {
      const int s = stream_shards[i];
      const ChunkRange& shard = shards[static_cast<size_t>(s)];
      std::vector<const compress::SparseTensor*> blocks;
      blocks.reserve(static_cast<size_t>(m));
      for (int node = 0; node < m; ++node) {
        blocks.push_back(&sel[static_cast<size_t>(s * m + node)]);
      }
      CompactStream& stream = streams[static_cast<size_t>(s)];
      merge_accumulate(blocks, shard.begin, stream);
      stream_nnz[static_cast<size_t>(s)] = stream.indices.size();
    });
  }
  double t3_comm = t2;
  if (!stream_groups.empty()) {
    t3_comm = ring_allgather_bytes_multi(cluster, stream_groups,
                                         stream_payloads, t2);
  }
  double accumulate_seconds = 0.0;
  if (options.gpu != nullptr) {
    accumulate_seconds = options.gpu->scatter_add_seconds(
        static_cast<size_t>(m) * max_k);
  }
  const double t3 = simnet::Cluster::compute(t3_comm, accumulate_seconds);
  out.inter_allgather = t3 - t2;

  // ---- Step 4: intra-node all-gather; each GPU contributes every shard it
  // owns (at most m*k~ nonzeros per shard).
  double t4_comm = t3;
  for (int node = 0; node < m; ++node) {
    const Group group = node_group(topo, node);
    const int g = topo.gpus_on_node(node);
    std::vector<size_t> payload(group.size(), 0);
    for (int s = 0; s < L; ++s) {
      const ChunkRange& shard = shards[static_cast<size_t>(s)];
      if (shard.count == 0) continue;
      size_t nnz;
      if (functional) {
        nnz = stream_nnz[static_cast<size_t>(s)];
      } else {
        nnz = std::min(
            static_cast<size_t>(m) * shard_k(options.density, shard.count),
            shard.count);
      }
      payload[static_cast<size_t>(s % g)] += sparse_payload_bytes(wire, nnz);
    }
    t4_comm = std::max(t4_comm,
                       ring_allgather_bytes(cluster, group, payload, t3));
  }
  double rebuild_seconds = 0.0;
  if (options.gpu != nullptr) {
    rebuild_seconds = options.gpu->scatter_add_seconds(
        std::min(static_cast<size_t>(m) * max_k * static_cast<size_t>(L),
                 elems));
  }
  const double t4 = simnet::Cluster::compute(t4_comm, rebuild_seconds);
  out.intra_allgather = t4 - t3;
  out.total = t4 - start;

  if (functional) {
    rebuild_from_compact(data, streams);
  }
  (void)world;
  return out;
}

}  // namespace

HiTopKBreakdown hitopk_comm(simnet::Cluster& cluster, const RankData& data,
                            size_t elems, const HiTopKOptions& options,
                            double start) {
  check_data(world_group(cluster.topology()), data, elems);
  if (cluster.topology().uniform()) {
    return hitopk_uniform(cluster, data, elems, options, start);
  }
  return hitopk_uneven(cluster, data, elems, options, start);
}

}  // namespace hitopk::coll
