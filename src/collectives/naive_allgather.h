// NaiveAG: flat sparse All-Gather aggregation (Renggli et al. 2019 style),
// the paper's TopK-SGD communication baseline.
//
// Every world rank contributes its top-k (values, indices) pair; a flat ring
// All-Gather over all P ranks replicates all P sparse blocks everywhere,
// crossing the slow node boundary for every block; each rank then
// accumulates the blocks into a dense buffer.  Cost per Eq. 3:
// alpha*steps + 4(P-1)*beta*k per gather, and the values and indices
// gathers together move 2k elements per rank.
#pragma once

#include "collectives/common.h"
#include "compress/sparse_tensor.h"

namespace hitopk::coll {

struct NaiveAgResult {
  double total = 0.0;
  double allgather = 0.0;
  double accumulate = 0.0;  // local scatter-add of P sparse blocks
};

// Per-ring-step protocol overhead of the flat world-scale sparse All-Gather
// (see models/calibration.h): measured NCCL sparse all-gathers at P = 128
// over cloud TCP reach only a fraction of line rate.  Pass 0 for a pure
// alpha-beta lower bound.
inline constexpr double kFlatRingStepOverhead = 1.0e-3;

// Functional + timed: `sparse` holds one compressed gradient per world rank;
// each rank's dense result (the sum of all P sparse blocks) is written into
// data[rank] when data is non-empty.  value_wire_bytes: 2 for FP16 values.
// accumulate_seconds_per_rank: device-side scatter-add cost (0 to measure
// pure communication).
NaiveAgResult naive_sparse_allgather(
    simnet::Cluster& cluster,
    const std::vector<compress::SparseTensor>& sparse, const RankData& data,
    size_t elems, size_t value_wire_bytes, double accumulate_seconds_per_rank,
    double start, double step_overhead = kFlatRingStepOverhead);

// Timing-only variant: every rank contributes exactly k elements.
NaiveAgResult naive_sparse_allgather_time(
    simnet::Cluster& cluster, size_t k, size_t value_wire_bytes,
    double accumulate_seconds_per_rank, double start,
    double step_overhead = kFlatRingStepOverhead);

}  // namespace hitopk::coll
