// Double-binary-tree All-Reduce (the paper's "TreeAR" baseline).
//
// NCCL's large-scale All-Reduce (Sanders et al. 2009): two complementary
// binary trees each handle half of the buffer; each tree reduces leaf-to-root
// then broadcasts root-to-leaf, pipelined over chunks.  The trees are built
// over the flat rank order, so edges freely cross node boundaries — exactly
// why TreeAR underuses NVLink and oversubscribes the slow NIC on cloud
// clusters (§5.3).
#pragma once

#include "collectives/common.h"
#include "collectives/schedule.h"

namespace hitopk::coll {

struct TreeOptions {
  // Pipelining granularity; NCCL uses fine-grained chunks.
  size_t chunk_bytes = 4 << 20;
  // Wire dtype of every hop's payload (compress/wire_codec.h).
  WireDtype wire = WireDtype::kFp32;
};

// In-place tree All-Reduce over `group`.  After completion every rank holds
// the element-wise sum.  Returns the completion time of the slowest rank.
double tree_allreduce(simnet::Cluster& cluster, const Group& group,
                      const RankData& data, size_t elems,
                      const TreeOptions& options, double start);

// Records the whole collective — tree 0 over [0, elems/2), then tree 1 over
// the rest — into one caller-owned schedule.  Replaying it is port-clock
// identical to tree_allreduce's sequential two-tree execution (both trees
// start from the same slot epoch; the replay issues tree 0's sends first,
// exactly like the entry point).  Requires a uniform topology and operates
// on the full world in rank order; data may be empty for timing-only.
// Exposed for the planner (collectives/planner.h).
void build_tree_allreduce(Schedule& sched, const simnet::Topology& topo,
                          const RankData& data, size_t elems,
                          const TreeOptions& options);

}  // namespace hitopk::coll
