// Static schedule-validity checking.
//
// A recorded Schedule is a claim: "replaying these sends against the port
// clocks and these moves against the buffers implements the collective".
// The planner (collectives/planner.h) scores machine-enumerated candidate
// schedules, so that claim needs an auditor that does not depend on running
// the schedule.  ScheduleValidator walks the recorded primitives and checks
// the invariants every legal schedule satisfies:
//
//   sends    — endpoints are in-range, distinct world ranks that are alive
//              (when a liveness mask is given); readiness slots exist.
//   ordering — step indices are nondecreasing in record order for sends,
//              moves, and syncs (the engine replays in record order, so
//              record order *is* port order; a step that jumps backwards
//              would replay under the wrong snapshot clock).
//   moves    — buffer ids exist and [begin, begin+count) lies inside both
//              endpoint buffers; zero-count moves never reach the record.
//   races    — within one step, the data pass runs buckets concurrently:
//              writes of distinct buckets must be disjoint, and no bucket
//              may read what another bucket writes.  Ranges compare by raw
//              element address, because builders legitimately register
//              aliased buffers (BlueConnect re-registers the same span for
//              every nested stage).
//   chains   — kChainFirst/Mid/Last sequences (the serial-float-order
//              reduction chains) are contiguous within their bucket, agree
//              on [begin, count), close before the step ends, and never
//              start mid-chain — the thread-local accumulator contract.
//   dtypes   — typed transfer payloads: a move's source and destination
//              buffers agree on the wire dtype, and every link of a
//              reduction chain shares the chain head's dtype.  The codec
//              applies per hop at the destination's dtype; a dtype flip
//              mid-path would re-encode an already-rounded shard at a
//              different grid and break the idempotence that resolved
//              multi-hop schedules rely on (compress/wire_codec.h).
//   coverage — optionally (all-reduce schedules), the union of write ranges
//              covers every element of every functional buffer: no rank is
//              left holding a partial sum.
//
// Violations throw the recoverable hitopk::ConfigError: a schedule arrives
// from a planner/builder configuration, and a scheduling layer may catch
// the rejection and fall back to another candidate.
//
// The checks run on a ScheduleView — bare spans over the recorded
// primitives — so tests can hand-assemble broken records that the Schedule
// recording API itself refuses to produce.
#pragma once

#include <span>

#include "collectives/schedule.h"

namespace hitopk::coll {

// Read-only view of a recorded schedule (see Schedule's accessors).
struct ScheduleView {
  std::span<const Schedule::Send> sends;
  std::span<const Schedule::Move> moves;
  std::span<const Schedule::Sync> syncs;
  std::span<const RankSpan> buffers;
  // Wire dtype per buffer; empty means all-fp32 (hand-assembled views).
  std::span<const WireDtype> buffer_wires;
  uint32_t num_slots = 0;
};

inline ScheduleView view_of(const Schedule& sched) {
  return ScheduleView{sched.sends(),   sched.moves(),
                      sched.syncs(),   sched.buffers(),
                      sched.buffer_wires(), sched.num_slots()};
}

struct ValidatorOptions {
  // World size the sends' ranks must lie in; <= 0 skips the range check
  // (schedules recorded against an abstract group).
  int world_size = 0;
  // Per-world-rank liveness; empty = everyone alive.  A send touching a
  // dead rank is rejected — elastic rebuilds must not reference casualties.
  std::vector<bool> live;
  // All-reduce contract: every element of every functional buffer is
  // written at least once (no rank ends with an untouched partial).  Leave
  // false for standalone reduce-scatter / all-gather legs, whose outputs
  // legitimately cover only part of each buffer.
  bool require_full_coverage = false;
};

class ScheduleValidator {
 public:
  explicit ScheduleValidator(ValidatorOptions options = {})
      : options_(std::move(options)) {}

  // Throws hitopk::ConfigError on the first violated invariant.
  void validate(const ScheduleView& view) const;
  void validate(const Schedule& sched) const { validate(view_of(sched)); }

 private:
  ValidatorOptions options_;
};

}  // namespace hitopk::coll
