#include "collectives/tree_allreduce.h"

#include <algorithm>

#include "collectives/schedule.h"

namespace hitopk::coll {
namespace {

// Legacy-path wire hooks: a quantized hop delivers the codec-rounded range.
std::vector<float>& tree_staging() {
  thread_local std::vector<float> tmp;
  return tmp;
}

void reduce_over_wire(std::span<float> dst, std::span<const float> src,
                      WireDtype wire) {
  if (wire == WireDtype::kFp32) {
    for (size_t e = 0; e < dst.size(); ++e) dst[e] += src[e];
    return;
  }
  auto& tmp = tree_staging();
  tmp.assign(src.begin(), src.end());
  std::span<float> staged(tmp.data(), tmp.size());
  wire_round_trip(wire, staged);
  for (size_t e = 0; e < dst.size(); ++e) dst[e] += staged[e];
}

void copy_over_wire(std::span<float> dst, std::span<const float> src,
                    WireDtype wire) {
  std::copy(src.begin(), src.end(), dst.begin());
  wire_round_trip(wire, dst);
}

}  // namespace
}  // namespace hitopk::coll

namespace hitopk::coll {
namespace {

// NCCL's tree All-Reduce is hierarchical: inside each node a pipelined chain
// over NVLink funnels data to a leader GPU, and the double binary tree runs
// across the node leaders only.  Two complementary trees (one per half of
// the buffer) balance the leader roles: tree 0 uses local rank 0 leaders and
// the identity node order; tree 1 uses the last local rank and the reversed
// node order, so a root/interior node of one tree is a leaf of the other.

struct TreeShape {
  int leader_local;            // local rank acting as node leader
  std::vector<int> node_perm;  // heap position -> node id
};

TreeShape tree_shape(const simnet::Topology& topo, int tree) {
  TreeShape shape;
  shape.leader_local = tree == 0 ? 0 : topo.gpus_per_node() - 1;
  shape.node_perm.resize(static_cast<size_t>(topo.nodes()));
  for (int p = 0; p < topo.nodes(); ++p) {
    shape.node_perm[static_cast<size_t>(p)] =
        tree == 0 ? p : topo.nodes() - 1 - p;
  }
  return shape;
}

// ===================== legacy path (validation reference) =====================

// One tree handling [half_begin, half_begin + half_elems).
double run_tree_legacy(simnet::Cluster& cluster, const RankData& data,
                       size_t half_begin, size_t half_elems,
                       const TreeOptions& options, double start, int tree) {
  const simnet::Topology& topo = cluster.topology();
  const int m = topo.nodes();
  const int n = topo.gpus_per_node();
  if (half_elems == 0 || topo.world_size() <= 1) return start;

  const TreeShape shape = tree_shape(topo, tree);
  const size_t chunk_elems = std::max<size_t>(
      1, options.chunk_bytes / wire_elem_bytes(options.wire));
  const size_t n_chunks = (half_elems + chunk_elems - 1) / chunk_elems;
  auto chunk_bytes = [&](size_t c) {
    return wire_payload_bytes(options.wire,
                              chunk_range(half_elems, n_chunks, c).count);
  };

  // Chain order within a node: leader last.  For tree 0 the chain is
  // (n-1) -> (n-2) -> ... -> 0; for tree 1 it is 0 -> 1 -> ... -> (n-1).
  auto chain_rank = [&](int node, int pos) {
    // pos 0 = chain head (farthest from leader), pos n-1 = leader.
    const int local = tree == 0 ? n - 1 - pos : pos;
    return topo.rank_of(node, local);
  };

  // ---- Phase A: intra-node chain reduce to the leader, pipelined.
  // up[node][c]: time node's leader has chunk c reduced over the node.
  std::vector<std::vector<double>> up(
      static_cast<size_t>(m), std::vector<double>(n_chunks, start));
  for (int node = 0; node < m; ++node) {
    std::vector<double> ready(n_chunks, start);  // at current chain position
    for (int pos = 0; pos + 1 < n; ++pos) {
      const int src = chain_rank(node, pos);
      const int dst = chain_rank(node, pos + 1);
      for (size_t c = 0; c < n_chunks; ++c) {
        ready[c] =
            cluster
                .submit({simnet::kDefaultJob, src, dst, chunk_bytes(c),
                         ready[c]})
                .time;
      }
      if (!data.empty()) {
        auto d = data[static_cast<size_t>(dst)].subspan(half_begin, half_elems);
        auto s = data[static_cast<size_t>(src)].subspan(half_begin, half_elems);
        reduce_over_wire(d, s, options.wire);
      }
    }
    up[static_cast<size_t>(node)] = ready;
  }

  // ---- Phase B: double-binary-tree reduce across node leaders.
  // heap position p children: 2p+1, 2p+2 (positions index shape.node_perm).
  auto leader_rank = [&](size_t p) {
    return topo.rank_of(shape.node_perm[p], shape.leader_local);
  };
  std::vector<std::vector<double>> tree_ready(static_cast<size_t>(m));
  for (int p = 0; p < m; ++p) {
    tree_ready[static_cast<size_t>(p)] =
        up[static_cast<size_t>(shape.node_perm[static_cast<size_t>(p)])];
  }
  for (size_t p = static_cast<size_t>(m); p-- > 0;) {
    for (size_t c = 0; c < n_chunks; ++c) {
      for (size_t child : {2 * p + 1, 2 * p + 2}) {
        if (child >= static_cast<size_t>(m)) continue;
        const double done =
            cluster
                .submit({simnet::kDefaultJob, leader_rank(child),
                         leader_rank(p), chunk_bytes(c), tree_ready[child][c]})
                .time;
        tree_ready[p][c] = std::max(tree_ready[p][c], done);
      }
    }
    if (!data.empty()) {
      for (size_t child : {2 * p + 1, 2 * p + 2}) {
        if (child >= static_cast<size_t>(m)) continue;
        auto d = data[static_cast<size_t>(leader_rank(p))].subspan(half_begin,
                                                                   half_elems);
        auto s = data[static_cast<size_t>(leader_rank(child))].subspan(
            half_begin, half_elems);
        reduce_over_wire(d, s, options.wire);
      }
    }
  }

  // ---- Phase C: broadcast down the tree.
  std::vector<std::vector<double>> down = std::move(tree_ready);
  for (size_t p = 0; p < static_cast<size_t>(m); ++p) {
    for (size_t c = 0; c < n_chunks; ++c) {
      for (size_t child : {2 * p + 1, 2 * p + 2}) {
        if (child >= static_cast<size_t>(m)) continue;
        down[child][c] =
            cluster
                .submit({simnet::kDefaultJob, leader_rank(p),
                         leader_rank(child), chunk_bytes(c), down[p][c]})
                .time;
      }
    }
    if (!data.empty()) {
      for (size_t child : {2 * p + 1, 2 * p + 2}) {
        if (child >= static_cast<size_t>(m)) continue;
        auto s = data[static_cast<size_t>(leader_rank(p))].subspan(half_begin,
                                                                   half_elems);
        auto d = data[static_cast<size_t>(leader_rank(child))].subspan(
            half_begin, half_elems);
        copy_over_wire(d, s, options.wire);
      }
    }
  }

  // ---- Phase D: intra-node chain broadcast from the leader.
  double finish = start;
  for (int p = 0; p < m; ++p) {
    const int node = shape.node_perm[static_cast<size_t>(p)];
    std::vector<double> ready = down[static_cast<size_t>(p)];
    for (int pos = n - 1; pos > 0; --pos) {
      const int src = chain_rank(node, pos);
      const int dst = chain_rank(node, pos - 1);
      for (size_t c = 0; c < n_chunks; ++c) {
        ready[c] =
            cluster
                .submit({simnet::kDefaultJob, src, dst, chunk_bytes(c),
                         ready[c]})
                .time;
      }
      if (!data.empty()) {
        auto s = data[static_cast<size_t>(src)].subspan(half_begin, half_elems);
        auto d = data[static_cast<size_t>(dst)].subspan(half_begin, half_elems);
        copy_over_wire(d, s, options.wire);
      }
    }
    for (size_t c = 0; c < n_chunks; ++c) finish = std::max(finish, ready[c]);
  }
  return finish;
}

// ============================= engine path =============================

// One tree as a schedule.  Readiness slots are the legacy per-(node, chunk)
// pipeline clocks; each dependent hop sits in a later step, and independent
// nodes share steps (their transfers touch disjoint ports, so the replay is
// port-clock identical to the node-major legacy issue order).  The reduce
// moves keep the legacy per-destination order; the phase C+D broadcast is
// resolved to one copy per rank from the root leader's fully-reduced half.
void build_one_tree(Schedule& sched, const simnet::Topology& topo,
                    const RankData& data, size_t half_begin, size_t half_elems,
                    const TreeOptions& options, int tree) {
  const int m = topo.nodes();
  const int n = topo.gpus_per_node();
  if (half_elems == 0 || topo.world_size() <= 1) return;

  const TreeShape shape = tree_shape(topo, tree);
  const size_t chunk_elems = std::max<size_t>(
      1, options.chunk_bytes / wire_elem_bytes(options.wire));
  const size_t n_chunks = (half_elems + chunk_elems - 1) / chunk_elems;
  auto chunk_bytes = [&](size_t c) {
    return wire_payload_bytes(options.wire,
                              chunk_range(half_elems, n_chunks, c).count);
  };
  auto chain_rank = [&](int node, int pos) {
    const int local = tree == 0 ? n - 1 - pos : pos;
    return topo.rank_of(node, local);
  };
  auto leader_rank = [&](size_t p) {
    return topo.rank_of(shape.node_perm[p], shape.leader_local);
  };

  // slot(node, c): the pipeline clock of chunk c in node `node` — the chain
  // wavefront in phases A/D, the leader's subtree readiness in B/C.
  const uint32_t slot0 = sched.add_slots(
      static_cast<uint32_t>(static_cast<size_t>(m) * n_chunks));
  auto slot = [&](int node, size_t c) {
    return slot0 +
           static_cast<uint32_t>(static_cast<size_t>(node) * n_chunks + c);
  };
  auto heap_slot = [&](size_t p, size_t c) {
    return slot(shape.node_perm[p], c);
  };
  std::vector<uint32_t> bufs;
  if (!data.empty()) {
    bufs.reserve(data.size());
    for (const auto& span : data) {
      bufs.push_back(sched.add_buffer(span, options.wire));
    }
  }
  auto rank_buf = [&](int rank) { return bufs[static_cast<size_t>(rank)]; };

  // ---- Phase A: intra-node chain reduce, one step per chain position.
  for (int pos = 0; pos + 1 < n; ++pos) {
    for (int node = 0; node < m; ++node) {
      const int src = chain_rank(node, pos);
      const int dst = chain_rank(node, pos + 1);
      for (size_t c = 0; c < n_chunks; ++c) {
        sched.send(src, dst, chunk_bytes(c), slot(node, c), slot(node, c));
      }
      if (!data.empty()) {
        sched.reduce(rank_buf(src), rank_buf(dst), half_begin, half_elems);
      }
    }
    sched.end_step();
  }

  // ---- Phase B: tree reduce across leaders, one step per heap position
  // (children sit at larger positions, so their slots are final before the
  // parent's step reads them).
  for (size_t p = static_cast<size_t>(m); p-- > 0;) {
    bool any = false;
    for (size_t c = 0; c < n_chunks; ++c) {
      for (size_t child : {2 * p + 1, 2 * p + 2}) {
        if (child >= static_cast<size_t>(m)) continue;
        sched.send(leader_rank(child), leader_rank(p), chunk_bytes(c),
                   heap_slot(child, c), heap_slot(p, c));
        any = true;
      }
    }
    if (!data.empty()) {
      for (size_t child : {2 * p + 1, 2 * p + 2}) {
        if (child >= static_cast<size_t>(m)) continue;
        sched.reduce(rank_buf(leader_rank(child)), rank_buf(leader_rank(p)),
                     half_begin, half_elems);
      }
    }
    if (any) sched.end_step();
  }

  // ---- Phase C: broadcast down the leader tree, one step per heap
  // position.  (A parent's phase-C arrival can only be later than every
  // clock its children accumulated in phase B — each transfer into a rank
  // serializes through its recv port — so the engine's max-combine equals
  // the legacy overwrite.)  Functional movement for C and D is resolved
  // below: every copy forwards the root leader's finished half verbatim.
  if (!data.empty() && m * n > 1) {
    const int root = leader_rank(0);
    for (int rank = 0; rank < m * n; ++rank) {
      if (rank == root) continue;
      sched.copy(rank_buf(root), rank_buf(rank), half_begin, half_elems);
    }
  }
  for (size_t p = 0; p < static_cast<size_t>(m); ++p) {
    bool any = false;
    for (size_t c = 0; c < n_chunks; ++c) {
      for (size_t child : {2 * p + 1, 2 * p + 2}) {
        if (child >= static_cast<size_t>(m)) continue;
        sched.send(leader_rank(p), leader_rank(child), chunk_bytes(c),
                   heap_slot(p, c), heap_slot(child, c));
        any = true;
      }
    }
    if (any) sched.end_step();
  }

  // ---- Phase D: intra-node chain broadcast, one step per chain hop.
  for (int pos = n - 1; pos > 0; --pos) {
    for (int node = 0; node < m; ++node) {
      const int src = chain_rank(node, pos);
      const int dst = chain_rank(node, pos - 1);
      for (size_t c = 0; c < n_chunks; ++c) {
        sched.send(src, dst, chunk_bytes(c), slot(node, c), slot(node, c));
      }
    }
    sched.end_step();
  }
}

double run_tree_schedule(simnet::Cluster& cluster, const RankData& data,
                         size_t half_begin, size_t half_elems,
                         const TreeOptions& options, double start, int tree) {
  Schedule sched;
  build_one_tree(sched, cluster.topology(), data, half_begin, half_elems,
                 options, tree);
  // An empty record (degenerate half or world) replays to `start` exactly
  // like the legacy early return.
  const double finish = sched.run_timing(cluster, start).finish;
  sched.run_data();
  return finish;
}

double run_tree(simnet::Cluster& cluster, const RankData& data,
                size_t half_begin, size_t half_elems,
                const TreeOptions& options, double start, int tree) {
  if (collective_path() == CollectivePath::kLegacy) {
    return run_tree_legacy(cluster, data, half_begin, half_elems, options,
                           start, tree);
  }
  return run_tree_schedule(cluster, data, half_begin, half_elems, options,
                           start, tree);
}

}  // namespace

void build_tree_allreduce(Schedule& sched, const simnet::Topology& topo,
                          const RankData& data, size_t elems,
                          const TreeOptions& options) {
  HITOPK_VALIDATE(topo.uniform())
      << "tree_allreduce's leader layout needs a uniform topology";
  check_data(world_group(topo), data, elems);
  const size_t half = elems / 2;
  // Tree 1's record follows tree 0's at strictly later steps, so the replay
  // issues tree 0's sends first against fresh slots for both — the same
  // port-clock sequence as the entry point's two sequential schedules.
  build_one_tree(sched, topo, data, 0, half, options, 0);
  build_one_tree(sched, topo, data, half, elems - half, options, 1);
}

double tree_allreduce(simnet::Cluster& cluster, const Group& group,
                      const RankData& data, size_t elems,
                      const TreeOptions& options, double start) {
  const simnet::Topology& topo = cluster.topology();
  HITOPK_VALIDATE(topo.uniform())
      << "tree_allreduce's leader layout needs a uniform topology";
  // TreeAR is a whole-cluster collective (it is NCCL's All-Reduce): the
  // group must be the full world in rank order.
  HITOPK_VALIDATE(group.size() == static_cast<size_t>(topo.world_size()))
      << "tree_allreduce group has" << group.size()
      << "ranks, world size is" << topo.world_size();
  for (size_t i = 0; i < group.size(); ++i) {
    HITOPK_VALIDATE(group[i] == static_cast<int>(i))
        << "tree_allreduce group must be the full world in rank order";
  }
  check_data(group, data, elems);
  if (topo.world_size() <= 1) return start;

  const size_t half = elems / 2;
  const double done0 =
      run_tree(cluster, data, 0, half, options, start, 0);
  const double done1 =
      run_tree(cluster, data, half, elems - half, options, start, 1);
  return std::max(done0, done1);
}

}  // namespace hitopk::coll
