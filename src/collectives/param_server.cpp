#include "collectives/param_server.h"

#include <algorithm>
#include <vector>

#include "collectives/schedule.h"
#include "core/tensor.h"

namespace hitopk::coll {
namespace {

// Scratch for staging a shard through the wire codec on the legacy path.
std::vector<float>& ps_staging() {
  thread_local std::vector<float> staging;
  return staging;
}

// ===================== legacy path (validation reference) =====================
ParamServerResult legacy_param_server(simnet::Cluster& cluster,
                                      const RankData& data, size_t elems,
                                      WireDtype wire, double start) {
  const simnet::Topology& topo = cluster.topology();
  const int m = topo.nodes();
  const bool functional = !data.empty();

  ParamServerResult out;
  // Server s = GPU 0 of node s owns shard s.
  auto server_rank = [&](int s) { return topo.rank_of(s, 0); };

  // ---- Push: every worker sends each shard to its server.  The server's
  // recv port and its node NIC serialize the fan-in.
  std::vector<double> shard_ready(static_cast<size_t>(m), start);
  for (int s = 0; s < m; ++s) {
    const ChunkRange shard =
        chunk_range(elems, static_cast<size_t>(m), static_cast<size_t>(s));
    if (shard.count == 0) continue;
    for (int worker = 0; worker < topo.world_size(); ++worker) {
      if (worker == server_rank(s)) continue;  // server's own shard is local
      const double done =
          cluster
              .submit({simnet::kDefaultJob, worker, server_rank(s),
                       wire_payload_bytes(wire, shard.count), start})
              .time;
      shard_ready[static_cast<size_t>(s)] =
          std::max(shard_ready[static_cast<size_t>(s)], done);
    }
    if (functional) {
      auto acc = data[static_cast<size_t>(server_rank(s))].subspan(
          shard.begin, shard.count);
      for (int worker = 0; worker < topo.world_size(); ++worker) {
        if (worker == server_rank(s)) continue;
        auto src = data[static_cast<size_t>(worker)].subspan(shard.begin,
                                                             shard.count);
        if (wire == WireDtype::kFp32) {
          for (size_t e = 0; e < shard.count; ++e) acc[e] += src[e];
        } else {
          // The worker's shard crosses the wire before the server adds it.
          auto& staging = ps_staging();
          staging.assign(src.begin(), src.end());
          wire_round_trip(wire, std::span<float>(staging));
          for (size_t e = 0; e < shard.count; ++e) acc[e] += staging[e];
        }
      }
    }
  }
  double push_done = start;
  for (double t : shard_ready) push_done = std::max(push_done, t);
  out.push = push_done - start;

  // ---- Pull: every worker fetches every aggregated shard.
  double pull_done = push_done;
  for (int s = 0; s < m; ++s) {
    const ChunkRange shard =
        chunk_range(elems, static_cast<size_t>(m), static_cast<size_t>(s));
    if (shard.count == 0) continue;
    for (int worker = 0; worker < topo.world_size(); ++worker) {
      if (worker == server_rank(s)) continue;
      const double done =
          cluster
              .submit({simnet::kDefaultJob, server_rank(s), worker,
                       wire_payload_bytes(wire, shard.count),
                       shard_ready[static_cast<size_t>(s)]})
              .time;
      pull_done = std::max(pull_done, done);
    }
    if (functional) {
      auto src = data[static_cast<size_t>(server_rank(s))].subspan(
          shard.begin, shard.count);
      for (int worker = 0; worker < topo.world_size(); ++worker) {
        if (worker == server_rank(s)) continue;
        auto dst = data[static_cast<size_t>(worker)].subspan(shard.begin,
                                                             shard.count);
        std::copy(src.begin(), src.end(), dst.begin());
        wire_round_trip(wire, dst);  // the pulled copy crossed the wire
      }
    }
  }
  out.pull = pull_done - push_done;
  out.total = pull_done - start;
  return out;
}

// ============================= engine path =============================
// Two steps: push (fan-in, reduce moves per server bucket in worker order)
// and pull (fan-out, resolved copies).  Shard readiness gets its own slot
// per server — pulls of shard s start at shard s's push completion, not at
// a global barrier, so the sync between the steps is a non-collapsing mark
// that only records push_done for the breakdown.
ParamServerResult schedule_param_server(simnet::Cluster& cluster,
                                        const RankData& data, size_t elems,
                                        WireDtype wire, double start) {
  const simnet::Topology& topo = cluster.topology();
  const int m = topo.nodes();
  const int world = topo.world_size();
  const bool functional = !data.empty();
  auto server_rank = [&](int s) { return topo.rank_of(s, 0); };

  Schedule sched;
  const uint32_t worker_slot0 = sched.add_slots(static_cast<uint32_t>(world));
  const uint32_t shard_slot0 = sched.add_slots(static_cast<uint32_t>(m));
  std::vector<uint32_t> bufs;
  if (functional) {
    for (const auto& span : data) bufs.push_back(sched.add_buffer(span, wire));
  }

  // ---- Push.
  for (int s = 0; s < m; ++s) {
    const ChunkRange shard =
        chunk_range(elems, static_cast<size_t>(m), static_cast<size_t>(s));
    if (shard.count == 0) continue;
    for (int worker = 0; worker < world; ++worker) {
      if (worker == server_rank(s)) continue;  // server's own shard is local
      sched.send(worker, server_rank(s), wire_payload_bytes(wire, shard.count),
                 worker_slot0 + static_cast<uint32_t>(worker),
                 shard_slot0 + static_cast<uint32_t>(s));
      if (functional) {
        sched.reduce(bufs[static_cast<size_t>(worker)],
                     bufs[static_cast<size_t>(server_rank(s))], shard.begin,
                     shard.count);
      }
    }
  }
  sched.end_step();
  sched.sync(/*collapse=*/false);  // record push_done only

  // ---- Pull.
  for (int s = 0; s < m; ++s) {
    const ChunkRange shard =
        chunk_range(elems, static_cast<size_t>(m), static_cast<size_t>(s));
    if (shard.count == 0) continue;
    for (int worker = 0; worker < world; ++worker) {
      if (worker == server_rank(s)) continue;
      sched.send(server_rank(s), worker, wire_payload_bytes(wire, shard.count),
                 shard_slot0 + static_cast<uint32_t>(s),
                 worker_slot0 + static_cast<uint32_t>(worker));
      if (functional) {
        // Source-major bucket: shard s streams hot from its server to all
        // workers; the m shards fan out concurrently.
        sched.copy(bufs[static_cast<size_t>(server_rank(s))],
                   bufs[static_cast<size_t>(worker)], shard.begin,
                   shard.count,
                   /*bucket=*/bufs[static_cast<size_t>(server_rank(s))]);
      }
    }
  }

  const Schedule::TimingResult timing = sched.run_timing(cluster, start);
  sched.run_data();

  ParamServerResult out;
  const double push_done = timing.sync_times[0];
  out.push = push_done - start;
  out.pull = timing.finish - push_done;
  out.total = timing.finish - start;
  return out;
}

}  // namespace

ParamServerResult param_server_allreduce(simnet::Cluster& cluster,
                                         const RankData& data, size_t elems,
                                         WireDtype wire, double start) {
  check_data(world_group(cluster.topology()), data, elems);
  if (collective_path() == CollectivePath::kLegacy) {
    return legacy_param_server(cluster, data, elems, wire, start);
  }
  return schedule_param_server(cluster, data, elems, wire, start);
}

}  // namespace hitopk::coll
