#include "collectives/param_server.h"

#include <algorithm>

#include "core/tensor.h"

namespace hitopk::coll {

ParamServerResult param_server_allreduce(simnet::Cluster& cluster,
                                         const RankData& data, size_t elems,
                                         size_t wire_bytes, double start) {
  const simnet::Topology& topo = cluster.topology();
  const int m = topo.nodes();
  const bool functional = !data.empty();
  check_data(world_group(topo), data, elems);

  ParamServerResult out;
  // Server s = GPU 0 of node s owns shard s.
  auto server_rank = [&](int s) { return topo.rank_of(s, 0); };

  // ---- Push: every worker sends each shard to its server.  The server's
  // recv port and its node NIC serialize the fan-in.
  std::vector<double> shard_ready(static_cast<size_t>(m), start);
  for (int s = 0; s < m; ++s) {
    const ChunkRange shard =
        chunk_range(elems, static_cast<size_t>(m), static_cast<size_t>(s));
    if (shard.count == 0) continue;
    for (int worker = 0; worker < topo.world_size(); ++worker) {
      if (worker == server_rank(s)) continue;  // server's own shard is local
      const double done = cluster.send(worker, server_rank(s),
                                       shard.count * wire_bytes, start);
      shard_ready[static_cast<size_t>(s)] =
          std::max(shard_ready[static_cast<size_t>(s)], done);
    }
    if (functional) {
      auto acc = data[static_cast<size_t>(server_rank(s))].subspan(
          shard.begin, shard.count);
      for (int worker = 0; worker < topo.world_size(); ++worker) {
        if (worker == server_rank(s)) continue;
        auto src = data[static_cast<size_t>(worker)].subspan(shard.begin,
                                                             shard.count);
        for (size_t e = 0; e < shard.count; ++e) acc[e] += src[e];
      }
    }
  }
  double push_done = start;
  for (double t : shard_ready) push_done = std::max(push_done, t);
  out.push = push_done - start;

  // ---- Pull: every worker fetches every aggregated shard.
  double pull_done = push_done;
  for (int s = 0; s < m; ++s) {
    const ChunkRange shard =
        chunk_range(elems, static_cast<size_t>(m), static_cast<size_t>(s));
    if (shard.count == 0) continue;
    for (int worker = 0; worker < topo.world_size(); ++worker) {
      if (worker == server_rank(s)) continue;
      const double done =
          cluster.send(server_rank(s), worker, shard.count * wire_bytes,
                       shard_ready[static_cast<size_t>(s)]);
      pull_done = std::max(pull_done, done);
    }
    if (functional) {
      auto src = data[static_cast<size_t>(server_rank(s))].subspan(
          shard.begin, shard.count);
      for (int worker = 0; worker < topo.world_size(); ++worker) {
        if (worker == server_rank(s)) continue;
        auto dst = data[static_cast<size_t>(worker)].subspan(shard.begin,
                                                             shard.count);
        std::copy(src.begin(), src.end(), dst.begin());
      }
    }
  }
  out.pull = pull_done - push_done;
  out.total = pull_done - start;
  return out;
}

}  // namespace hitopk::coll
