#include "collectives/hier_allreduce.h"

#include <algorithm>

#include "collectives/ring.h"

namespace hitopk::coll {

HierArBreakdown hier_allreduce(simnet::Cluster& cluster, const RankData& data,
                               size_t elems, size_t wire_bytes, double start) {
  const simnet::Topology& topo = cluster.topology();
  const int m = topo.nodes();
  const int n = topo.gpus_per_node();
  const bool functional = !data.empty();
  check_data(world_group(topo), data, elems);

  HierArBreakdown out;

  // Phase 1: reduce onto each node's leader (local rank 0) — the non-leader
  // GPUs send their full buffer over NVLink; the leader adds sequentially
  // (its recv port serializes the incoming transfers).
  double t1 = start;
  for (int node = 0; node < m; ++node) {
    const int leader = topo.rank_of(node, 0);
    for (int local = 1; local < n; ++local) {
      const int src = topo.rank_of(node, local);
      const double done =
          cluster.send(src, leader, elems * wire_bytes, start);
      t1 = std::max(t1, done);
      if (functional) {
        auto dst = data[static_cast<size_t>(leader)];
        auto src_span = data[static_cast<size_t>(src)];
        for (size_t e = 0; e < elems; ++e) dst[e] += src_span[e];
      }
    }
  }
  out.intra_reduce = t1 - start;

  // Phase 2: ring all-reduce among the m leaders over the NICs.
  Group leaders;
  for (int node = 0; node < m; ++node) leaders.push_back(topo.rank_of(node, 0));
  RankData leader_data;
  if (functional) {
    for (int rank : leaders) leader_data.push_back(data[static_cast<size_t>(rank)]);
  }
  const double t2 =
      ring_allreduce(cluster, leaders, leader_data, elems, wire_bytes, t1);
  out.inter_allreduce = t2 - t1;

  // Phase 3: leaders broadcast the result inside their node.
  double t3 = t2;
  for (int node = 0; node < m; ++node) {
    const int leader = topo.rank_of(node, 0);
    for (int local = 1; local < n; ++local) {
      const int dst = topo.rank_of(node, local);
      const double done = cluster.send(leader, dst, elems * wire_bytes, t2);
      t3 = std::max(t3, done);
      if (functional) {
        auto src_span = data[static_cast<size_t>(leader)];
        auto dst_span = data[static_cast<size_t>(dst)];
        std::copy(src_span.begin(), src_span.end(), dst_span.begin());
      }
    }
  }
  out.intra_broadcast = t3 - t2;
  out.total = t3 - start;
  return out;
}

}  // namespace hitopk::coll
