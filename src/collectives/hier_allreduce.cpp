#include "collectives/hier_allreduce.h"

#include <algorithm>

#include "collectives/ring.h"

namespace hitopk::coll {
namespace {

// Legacy-path wire staging: a quantized hop delivers the codec-rounded
// buffer (dst += rt(src) on the fan-in, dst = rt(src) on the broadcast).
std::vector<float>& hier_staging() {
  thread_local std::vector<float> tmp;
  return tmp;
}

// ===================== legacy path (validation reference) =====================
HierArBreakdown legacy_hier(simnet::Cluster& cluster, const RankData& data,
                            size_t elems, WireDtype wire, double start) {
  const simnet::Topology& topo = cluster.topology();
  const int m = topo.nodes();
  const bool functional = !data.empty();

  HierArBreakdown out;

  // Phase 1: reduce onto each node's leader (local rank 0) — the non-leader
  // GPUs send their full buffer over NVLink; the leader adds sequentially
  // (its recv port serializes the incoming transfers).  Per-node GPU counts
  // may differ (heterogeneous clusters); leader-based reduction only needs
  // each node to have a rank 0.
  double t1 = start;
  for (int node = 0; node < m; ++node) {
    const int leader = topo.rank_of(node, 0);
    for (int local = 1; local < topo.gpus_on_node(node); ++local) {
      const int src = topo.rank_of(node, local);
      const double done =
          cluster
              .submit({simnet::kDefaultJob, src, leader,
                       wire_payload_bytes(wire, elems), start})
              .time;
      t1 = std::max(t1, done);
      if (functional) {
        auto dst = data[static_cast<size_t>(leader)];
        auto src_span = data[static_cast<size_t>(src)];
        if (wire == WireDtype::kFp32) {
          for (size_t e = 0; e < elems; ++e) dst[e] += src_span[e];
        } else {
          auto& tmp = hier_staging();
          tmp.assign(src_span.begin(), src_span.end());
          std::span<float> staged(tmp.data(), elems);
          wire_round_trip(wire, staged);
          for (size_t e = 0; e < elems; ++e) dst[e] += staged[e];
        }
      }
    }
  }
  out.intra_reduce = t1 - start;

  // Phase 2: ring all-reduce among the m leaders over the NICs.
  Group leaders;
  for (int node = 0; node < m; ++node) leaders.push_back(topo.rank_of(node, 0));
  RankData leader_data;
  if (functional) {
    for (int rank : leaders) leader_data.push_back(data[static_cast<size_t>(rank)]);
  }
  const double t2 =
      ring_allreduce(cluster, leaders, leader_data, elems, wire, t1);
  out.inter_allreduce = t2 - t1;

  // Phase 3: leaders broadcast the result inside their node.
  double t3 = t2;
  for (int node = 0; node < m; ++node) {
    const int leader = topo.rank_of(node, 0);
    for (int local = 1; local < topo.gpus_on_node(node); ++local) {
      const int dst = topo.rank_of(node, local);
      const double done =
          cluster
              .submit({simnet::kDefaultJob, leader, dst,
                       wire_payload_bytes(wire, elems), t2})
              .time;
      t3 = std::max(t3, done);
      if (functional) {
        auto src_span = data[static_cast<size_t>(leader)];
        auto dst_span = data[static_cast<size_t>(dst)];
        std::copy(src_span.begin(), src_span.end(), dst_span.begin());
        wire_round_trip(wire, dst_span);
      }
    }
  }
  out.intra_broadcast = t3 - t2;
  out.total = t3 - start;
  return out;
}

}  // namespace

// ============================= engine path =============================
// One schedule: leader fan-in step, collapse sync, leaders' ring
// Reduce-Scatter + collapse + resolved All-Gather, collapse sync, broadcast
// step with resolved leader->local copies.
void build_hier_allreduce(Schedule& sched, const simnet::Topology& topo,
                          const RankData& data, size_t elems, WireDtype wire) {
  const int m = topo.nodes();
  const bool functional = !data.empty();

  const uint32_t rank_slot0 =
      sched.add_slots(static_cast<uint32_t>(topo.world_size()));
  auto rank_slot = [&](int rank) {
    return rank_slot0 + static_cast<uint32_t>(rank);
  };
  std::vector<uint32_t> bufs;
  if (functional) {
    for (const auto& span : data) bufs.push_back(sched.add_buffer(span, wire));
  }

  // Phase 1: fan-in to the leaders.  The leader's recv port serializes the
  // incoming transfers; the reduce moves keep the legacy local-rank order
  // per leader bucket.
  for (int node = 0; node < m; ++node) {
    const int leader = topo.rank_of(node, 0);
    for (int local = 1; local < topo.gpus_on_node(node); ++local) {
      const int src = topo.rank_of(node, local);
      sched.send(src, leader, wire_payload_bytes(wire, elems), rank_slot(src),
                 rank_slot(leader));
      if (functional) {
        sched.reduce(bufs[static_cast<size_t>(src)],
                     bufs[static_cast<size_t>(leader)], 0, elems);
      }
    }
  }
  sched.end_step();
  sched.sync(/*collapse=*/true);  // phase 1 done

  // Phase 2: ring All-Reduce among the leaders (Reduce-Scatter, the legacy
  // mid-point barrier, then the resolved All-Gather reusing the scattered
  // sums in place).
  std::vector<Group> leader_groups(1);
  for (int node = 0; node < m; ++node) {
    leader_groups[0].push_back(topo.rank_of(node, 0));
  }
  std::vector<RankData> leader_data;
  if (functional) {
    RankData ld;
    for (int rank : leader_groups[0]) {
      ld.push_back(data[static_cast<size_t>(rank)]);
    }
    leader_data.push_back(std::move(ld));
  }
  const RingGrid grid = ring_grid(sched, leader_groups, leader_data, wire);
  build_ring_reduce_scatter(sched, leader_groups, grid, elems, wire,
                            /*fused_chains=*/true);
  sched.sync(/*collapse=*/true);  // ring mid-point
  build_ring_allgather(sched, leader_groups, grid, elems, wire);
  sched.sync(/*collapse=*/true);  // phase 2 done

  // Phase 3: leaders broadcast inside their node (resolved copies).
  for (int node = 0; node < m; ++node) {
    const int leader = topo.rank_of(node, 0);
    for (int local = 1; local < topo.gpus_on_node(node); ++local) {
      const int dst = topo.rank_of(node, local);
      sched.send(leader, dst, wire_payload_bytes(wire, elems),
                 rank_slot(leader), rank_slot(dst));
      if (functional) {
        // Source-major bucket: the leader's buffer streams hot to its
        // node's destinations (one bucket per node, so nodes still run
        // concurrently on the pool).
        sched.copy(bufs[static_cast<size_t>(leader)],
                   bufs[static_cast<size_t>(dst)], 0, elems,
                   /*bucket=*/bufs[static_cast<size_t>(leader)]);
      }
    }
  }
}

HierArBreakdown hier_allreduce(simnet::Cluster& cluster, const RankData& data,
                               size_t elems, WireDtype wire, double start) {
  check_data(world_group(cluster.topology()), data, elems);
  if (collective_path() == CollectivePath::kLegacy) {
    return legacy_hier(cluster, data, elems, wire, start);
  }
  Schedule sched;
  build_hier_allreduce(sched, cluster.topology(), data, elems, wire);
  const Schedule::TimingResult timing = sched.run_timing(cluster, start);
  sched.run_data();

  HierArBreakdown out;
  const double t1 = timing.sync_times[0];
  const double t2 = timing.sync_times[2];
  out.intra_reduce = t1 - start;
  out.inter_allreduce = t2 - t1;
  out.intra_broadcast = timing.finish - t2;
  out.total = timing.finish - start;
  return out;
}

}  // namespace hitopk::coll
