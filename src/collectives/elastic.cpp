#include "collectives/elastic.h"

#include <algorithm>

#include "collectives/ring.h"

namespace hitopk::coll {
namespace {

// Records the exact engine-path ring All-Reduce (ring.cpp ring_allreduce):
// fused-chain Reduce-Scatter, collapse sync, resolved All-Gather.
void build_ring_allreduce(Schedule& sched, const Group& group,
                          const RankData& data, size_t elems,
                          WireDtype wire) {
  if (group.size() <= 1) return;
  std::vector<Group> groups{group};
  std::vector<RankData> group_data;
  if (!data.empty()) group_data.push_back(data);
  const RingGrid grid = ring_grid(sched, groups, group_data, wire);
  build_ring_reduce_scatter(sched, groups, grid, elems, wire,
                            /*fused_chains=*/true);
  sched.sync(/*collapse=*/true);
  build_ring_allgather(sched, groups, grid, elems, wire);
}

}  // namespace

SurvivorWorld shrink_topology(const simnet::Topology& topology,
                              const std::vector<int>& dead_ranks) {
  std::vector<bool> dead(static_cast<size_t>(topology.world_size()), false);
  for (int r : dead_ranks) {
    HITOPK_CHECK(r >= 0 && r < topology.world_size());
    dead[static_cast<size_t>(r)] = true;
  }

  SurvivorWorld out{simnet::Topology(1, 1, topology.intra(), topology.inter()),
                    {}, {}};
  std::vector<int> gpus;
  for (int node = 0; node < topology.nodes(); ++node) {
    int alive_here = 0;
    for (int local = 0; local < topology.gpus_on_node(node); ++local) {
      const int rank = topology.rank_of(node, local);
      if (dead[static_cast<size_t>(rank)]) continue;
      ++alive_here;
      out.old_rank.push_back(rank);
    }
    if (alive_here > 0) {
      gpus.push_back(alive_here);
      out.old_node.push_back(node);
    }
  }
  HITOPK_VALIDATE(!out.old_rank.empty())
      << "no rank survives the preemption set";
  // nodes_per_pod is a count of *original* node positions; once nodes drop
  // out the pod grouping no longer tiles, so the shrunk fabric keeps the
  // oversubscription factor but collapses to a single switch layer (the
  // conservative model: every inter-node flow sees the oversubscribed
  // core).  A uniform original topology that loses whole nodes only stays
  // podded when the grouping still tiles exactly.
  int nodes_per_pod = topology.nodes_per_pod();
  if (nodes_per_pod > 0) {
    bool tiles = static_cast<int>(gpus.size()) % nodes_per_pod == 0;
    for (size_t i = 0; tiles && i < out.old_node.size(); ++i) {
      tiles = out.old_node[i] / nodes_per_pod ==
              static_cast<int>(i) / nodes_per_pod;
    }
    if (!tiles) nodes_per_pod = 0;
  }
  out.topology = simnet::Topology(std::move(gpus), topology.intra(),
                                  topology.inter(), topology.nic_beta(),
                                  topology.oversubscription(), nodes_per_pod);
  return out;
}

ElasticResult elastic_allreduce(const simnet::Topology& topology,
                                const simnet::FaultPlan& plan,
                                const RankData& data, size_t elems,
                                const ElasticOptions& options, double start) {
  check_data(world_group(topology), data, elems);
  const bool functional = !data.empty();

  ElasticResult result;
  double now = start;
  // Survivors of the previous attempt (original ranks); membership of each
  // new attempt is re-derived from full-world liveness so recovered ranks
  // rejoin (grow) just as dead ones drop out (shrink).
  std::vector<int> previous;
  for (int attempt = 0; attempt < options.max_attempts; ++attempt) {
    std::vector<int> survivors;
    std::vector<int> dead;
    for (int r = 0; r < topology.world_size(); ++r) {
      (plan.alive(r, now) ? survivors : dead).push_back(r);
    }
    if (survivors.empty()) break;
    if (attempt > 0) {
      const bool dropped =
          std::any_of(previous.begin(), previous.end(), [&](int r) {
            return std::find(survivors.begin(), survivors.end(), r) ==
                   survivors.end();
          });
      const bool gained =
          std::any_of(survivors.begin(), survivors.end(), [&](int r) {
            return std::find(previous.begin(), previous.end(), r) ==
                   previous.end();
          });
      if (dropped) ++result.rescales;
      if (gained) ++result.regrows;
    }
    previous = survivors;

    if (survivors.size() == 1) {
      // Degenerate world: one survivor needs no collective (the All-Reduce
      // of a single contribution is the identity).  Complete instantly with
      // no cluster, schedule, or traffic — and no abort risk.
      ScheduleOutcome outcome;
      outcome.finish = now;
      result.attempts.push_back(ElasticAttempt{outcome, 1});
      result.surviving_world = 1;
      result.survivors = survivors;
      result.completed = true;
      result.finish = now;
      return result;
    }

    const SurvivorWorld world = shrink_topology(topology, dead);
    const simnet::FaultPlan local_plan =
        plan.remap(world.old_rank, world.old_node);
    simnet::Cluster cluster(world.topology);
    cluster.set_fault_plan(&local_plan);
    const int p = world.topology.world_size();

    RankData attempt_data;
    if (functional) {
      for (int r : world.old_rank) {
        attempt_data.push_back(data[static_cast<size_t>(r)]);
      }
    }

    ScheduleOutcome outcome;
    switch (options.algorithm) {
      case ElasticAlgorithm::kRing: {
        Schedule sched;
        build_ring_allreduce(sched, world_group(world.topology), attempt_data,
                             elems, options.wire);
        outcome = sched.run_timing_abortable(cluster, now);
        if (outcome.completed()) sched.run_data();
        break;
      }
      case ElasticAlgorithm::kBlueConnect: {
        BlueConnectOptions bc = options.blueconnect;
        int product = 1;
        for (int f : bc.factors) product *= f;
        if (bc.factors.empty() || product != p) {
          // Rescale invalidated the caller's factorization: re-derive (auto
          // on uniform multi-node survivors; a flat hierarchy-free ring on
          // uneven worlds and on all-on-one-node worlds, where a multi-stage
          // hierarchy has nothing to exploit).
          bc.factors = world.topology.uniform() && world.topology.nodes() > 1
                           ? std::vector<int>{}
                           : std::vector<int>{p};
        }
        Schedule sched;
        build_blueconnect(sched, world.topology, attempt_data, elems, bc);
        outcome = sched.run_timing_abortable(cluster, now);
        if (outcome.completed()) sched.run_data();
        break;
      }
      case ElasticAlgorithm::kGtopk: {
        GtopkOptions gt = options.gtopk;
        gt.outcome = &outcome;
        gtopk_comm(cluster, attempt_data, elems, gt, now);
        break;
      }
    }

    result.attempts.push_back(ElasticAttempt{outcome, p});
    result.surviving_world = p;
    result.survivors = world.old_rank;
    if (outcome.completed()) {
      result.completed = true;
      result.finish = outcome.finish;
      return result;
    }

    // Abort: the failure was detected at outcome.finish; survivors
    // rendezvous and the next attempt re-derives its membership from
    // full-world liveness at the rebuilt start time.
    now = outcome.finish + options.reschedule_seconds;
  }

  result.finish = now;
  return result;
}

}  // namespace hitopk::coll
