#include "collectives/elastic.h"

#include <algorithm>

#include "collectives/ring.h"

namespace hitopk::coll {
namespace {

// Records the exact engine-path ring All-Reduce (ring.cpp ring_allreduce):
// fused-chain Reduce-Scatter, collapse sync, resolved All-Gather.
void build_ring_allreduce(Schedule& sched, const Group& group,
                          const RankData& data, size_t elems,
                          size_t wire_bytes) {
  if (group.size() <= 1) return;
  std::vector<Group> groups{group};
  std::vector<RankData> group_data;
  if (!data.empty()) group_data.push_back(data);
  const RingGrid grid = ring_grid(sched, groups, group_data);
  build_ring_reduce_scatter(sched, groups, grid, elems, wire_bytes,
                            /*fused_chains=*/true);
  sched.sync(/*collapse=*/true);
  build_ring_allgather(sched, groups, grid, elems, wire_bytes);
}

}  // namespace

SurvivorWorld shrink_topology(const simnet::Topology& topology,
                              const std::vector<int>& dead_ranks) {
  std::vector<bool> dead(static_cast<size_t>(topology.world_size()), false);
  for (int r : dead_ranks) {
    HITOPK_CHECK(r >= 0 && r < topology.world_size());
    dead[static_cast<size_t>(r)] = true;
  }

  SurvivorWorld out{simnet::Topology(1, 1, topology.intra(), topology.inter()),
                    {}, {}};
  std::vector<int> gpus;
  for (int node = 0; node < topology.nodes(); ++node) {
    int alive_here = 0;
    for (int local = 0; local < topology.gpus_on_node(node); ++local) {
      const int rank = topology.rank_of(node, local);
      if (dead[static_cast<size_t>(rank)]) continue;
      ++alive_here;
      out.old_rank.push_back(rank);
    }
    if (alive_here > 0) {
      gpus.push_back(alive_here);
      out.old_node.push_back(node);
    }
  }
  HITOPK_VALIDATE(!out.old_rank.empty())
      << "no rank survives the preemption set";
  // nodes_per_pod is a count of *original* node positions; once nodes drop
  // out the pod grouping no longer tiles, so the shrunk fabric keeps the
  // oversubscription factor but collapses to a single switch layer (the
  // conservative model: every inter-node flow sees the oversubscribed
  // core).  A uniform original topology that loses whole nodes only stays
  // podded when the grouping still tiles exactly.
  int nodes_per_pod = topology.nodes_per_pod();
  if (nodes_per_pod > 0) {
    bool tiles = static_cast<int>(gpus.size()) % nodes_per_pod == 0;
    for (size_t i = 0; tiles && i < out.old_node.size(); ++i) {
      tiles = out.old_node[i] / nodes_per_pod ==
              static_cast<int>(i) / nodes_per_pod;
    }
    if (!tiles) nodes_per_pod = 0;
  }
  out.topology = simnet::Topology(std::move(gpus), topology.intra(),
                                  topology.inter(), topology.nic_beta(),
                                  topology.oversubscription(), nodes_per_pod);
  return out;
}

ElasticResult elastic_allreduce(const simnet::Topology& topology,
                                const simnet::FaultPlan& plan,
                                const RankData& data, size_t elems,
                                const ElasticOptions& options, double start) {
  check_data(world_group(topology), data, elems);
  const bool functional = !data.empty();

  ElasticResult result;
  // Original ranks participating in the current attempt.
  std::vector<int> survivors;
  for (int r = 0; r < topology.world_size(); ++r) {
    if (plan.alive(r, start)) survivors.push_back(r);
  }
  std::vector<int> dead;
  for (int r = 0; r < topology.world_size(); ++r) {
    if (!plan.alive(r, start)) dead.push_back(r);
  }

  double now = start;
  for (int attempt = 0; attempt < options.max_attempts; ++attempt) {
    if (survivors.empty()) break;
    const SurvivorWorld world = shrink_topology(topology, dead);
    const simnet::FaultPlan local_plan =
        plan.remap(world.old_rank, world.old_node);
    simnet::Cluster cluster(world.topology);
    cluster.set_fault_plan(&local_plan);
    const int p = world.topology.world_size();

    RankData attempt_data;
    if (functional) {
      for (int r : world.old_rank) {
        attempt_data.push_back(data[static_cast<size_t>(r)]);
      }
    }

    ScheduleOutcome outcome;
    switch (options.algorithm) {
      case ElasticAlgorithm::kRing: {
        Schedule sched;
        build_ring_allreduce(sched, world_group(world.topology), attempt_data,
                             elems, options.wire_bytes);
        outcome = sched.run_timing_abortable(cluster, now);
        if (outcome.completed()) sched.run_data();
        break;
      }
      case ElasticAlgorithm::kBlueConnect: {
        BlueConnectOptions bc = options.blueconnect;
        int product = 1;
        for (int f : bc.factors) product *= f;
        if (bc.factors.empty() || product != p) {
          // Rescale invalidated the caller's factorization: re-derive (auto
          // on uniform survivors, flat ring on uneven ones).
          bc.factors = world.topology.uniform() ? std::vector<int>{}
                                                : std::vector<int>{p};
        }
        Schedule sched;
        build_blueconnect(sched, world.topology, attempt_data, elems, bc);
        outcome = sched.run_timing_abortable(cluster, now);
        if (outcome.completed()) sched.run_data();
        break;
      }
      case ElasticAlgorithm::kGtopk: {
        GtopkOptions gt = options.gtopk;
        gt.outcome = &outcome;
        gtopk_comm(cluster, attempt_data, elems, gt, now);
        break;
      }
    }

    result.attempts.push_back(ElasticAttempt{outcome, p});
    result.surviving_world = p;
    result.survivors = world.old_rank;
    if (outcome.completed()) {
      result.completed = true;
      result.finish = outcome.finish;
      return result;
    }

    // Abort: the failure was detected at outcome.finish; survivors
    // rendezvous, drop every rank dead at that point, and rebuild.
    now = outcome.finish + options.reschedule_seconds;
    std::vector<int> still_alive;
    for (int r : survivors) {
      if (plan.alive(r, now)) {
        still_alive.push_back(r);
      } else {
        dead.push_back(r);
      }
    }
    if (still_alive.size() < survivors.size()) ++result.rescales;
    survivors = std::move(still_alive);
  }

  result.finish = now;
  return result;
}

}  // namespace hitopk::coll
