// gTop-k: global top-k sparse aggregation (Shi et al. 2019c, cited in §6).
//
// A tree/hypercube alternative to both NaiveAG and HiTopKComm: every rank
// selects its local top-k, then in log2(P) recursive-doubling rounds pairs
// exchange their k (value, index) entries, sum coincident indices, and
// re-select the top-k of the merge.  All ranks end with the *same* global
// top-k approximation of the gradient sum, moving only O(k log P) bytes per
// rank — less traffic than NaiveAG's O(kP) but with log P rounds of
// re-selection (and more selection bias, since mass outside the running
// top-k is dropped at every merge unless error feedback catches it).
//
// Non-power-of-two worlds run a documented pre-fold: with q the largest
// power of two <= P and rem = P - q, the rem extra ranks first fold their
// selections into ranks 0..rem-1 (one merge round), the q-rank hypercube
// runs the recursive doubling, and a final unfold round sends the result
// back to the extra ranks.  `rounds` counts every exchange round:
// log2(q) + 2 when rem > 0, log2(P) otherwise.
//
// Like the other collectives, the timed exchange is a recorded transfer
// schedule (collectives/schedule.h); CollectivePath::kLegacy selects the
// pre-engine inline loop as the validation reference, which also keeps the
// original dense-per-merge scratch behavior the engine path replaces with
// workspace-backed fused accumulation (bitwise-identical results, pinned in
// schedule_equivalence_test).
#pragma once

#include "collectives/common.h"
#include "collectives/schedule.h"
#include "compress/error_feedback.h"
#include "compress/sparse_tensor.h"
#include "compress/threshold_select.h"

namespace hitopk::coll {

struct GtopkOptions {
  // Elements each rank keeps at every merge (k = density * d).
  double density = 0.01;
  size_t value_wire_bytes = 4;
  // Exact top-k backend for the local selection and every merge
  // re-selection (bit-identical outputs either way; kNthElement is the
  // timing reference — see compress/threshold_select.h).
  compress::TopKSelect topk_select = compress::TopKSelect::kHistogram;
  // Optional error feedback applied to the local selection (functional
  // mode); keys are "<ef_key_prefix>:<rank>".
  compress::ErrorFeedback* error_feedback = nullptr;
  std::string ef_key_prefix = "gtopk";
  uint64_t seed = 42;
  // Abortable mode (engine path only): when set, the timed replay runs
  // through Cluster::try_send against the cluster's FaultPlan and the
  // outcome lands here.  On an abort the functional merges and the final
  // scatter are skipped entirely, so every data[rank] keeps the gradient it
  // handed in (EF-primed if error feedback is on — the local selection and
  // EF exchange had already happened on the worker, exactly as on a real
  // machine) and an elastic retry on the surviving world starts from clean
  // inputs.
  ScheduleOutcome* outcome = nullptr;
};

struct GtopkResult {
  double total = 0.0;
  size_t rounds = 0;
  size_t final_nnz = 0;
};

// In-place global top-k aggregation over the whole cluster (any world
// size; non-powers-of-two pay one fold and one unfold round).  Functional
// mode: each data[rank] (full d elements) is replaced by the identical
// global top-k of the sum.  Timing-only mode: data empty.
GtopkResult gtopk_comm(simnet::Cluster& cluster, const RankData& data,
                       size_t elems, const GtopkOptions& options, double start);

}  // namespace hitopk::coll
