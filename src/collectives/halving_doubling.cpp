#include "collectives/halving_doubling.h"

#include <utility>
#include <vector>

namespace hitopk::coll {
namespace {

// Chunk interval [c0, c1) at granularity q, as a contiguous element range
// (chunk_range is a balanced partition, so consecutive chunks abut).
ChunkRange chunks_span(size_t elems, size_t q, size_t c0, size_t c1) {
  const size_t begin = c0 < q ? chunk_range(elems, q, c0).begin : elems;
  const size_t end = c1 < q ? chunk_range(elems, q, c1).begin : elems;
  return {begin, end - begin};
}

// Chunk interval rank p keeps after reduce-scatter rounds 0..t: round j
// splits the current interval in half, bit j of p selecting low (0) or
// high (1).  After all log2(q) rounds p owns the single chunk at the
// bit-reversal of p.
std::pair<size_t, size_t> kept_chunks(size_t p, int t, size_t q) {
  size_t c0 = 0;
  size_t width = q;
  for (int j = 0; j <= t; ++j) {
    width /= 2;
    if ((p >> j) & 1) c0 += width;
  }
  return {c0, c0 + width};
}

}  // namespace

void build_halving_doubling(Schedule& sched, const Group& group,
                            const RankData& data, size_t elems,
                            WireDtype wire) {
  check_data(group, data, elems);
  const size_t P = group.size();
  if (P <= 1) return;
  size_t q = 1;
  int k = 0;
  while (q * 2 <= P) {
    q *= 2;
    ++k;
  }
  const size_t r = P - q;

  const uint32_t slot0 = sched.add_slots(static_cast<uint32_t>(P));
  std::vector<uint32_t> bufs;
  if (!data.empty()) {
    bufs.reserve(P);
    for (const RankSpan& span : data) {
      bufs.push_back(sched.add_buffer(span, wire));
    }
  }
  auto slot = [&](size_t p) { return slot0 + static_cast<uint32_t>(p); };

  // Fold: the r extra ranks contribute their whole buffer to partners
  // 0..r-1, then sit out the hypercube.
  if (r > 0) {
    for (size_t j = 0; j < r; ++j) {
      sched.send(group[q + j], group[j], wire_payload_bytes(wire, elems),
                 slot(q + j), slot(j));
      if (!bufs.empty()) sched.reduce(bufs[q + j], bufs[j], 0, elems);
    }
    sched.end_step();
  }

  // Reduce-scatter: ascending distance, one pairwise exchange per round.
  // Rank p keeps kept_chunks(p, t) and ships the sibling interval (which
  // is exactly what the partner keeps) to p XOR 2^t.
  for (int t = 0; t < k; ++t) {
    const size_t h = size_t{1} << t;
    for (size_t p = 0; p < q; ++p) {
      const size_t partner = p ^ h;
      const auto [k0, k1] = kept_chunks(p, t, q);
      const auto [s0, s1] = kept_chunks(partner, t, q);
      const ChunkRange sent = chunks_span(elems, q, s0, s1);
      sched.send(group[p], group[partner],
                 wire_payload_bytes(wire, sent.count), slot(p), slot(partner));
      if (!bufs.empty()) {
        const ChunkRange kept = chunks_span(elems, q, k0, k1);
        sched.reduce(bufs[partner], bufs[p], kept.begin, kept.count);
      }
    }
    sched.end_step();
  }

  // All-gather: mirrored recursive doubling.  Valid ranges merge from the
  // finest split upward, so the round order is forced (t descending) and
  // the bulk elems/2 exchange lands back on the h = 1 neighbors.
  for (int t = k - 1; t >= 0; --t) {
    const size_t h = size_t{1} << t;
    for (size_t p = 0; p < q; ++p) {
      const size_t partner = p ^ h;
      const auto [v0, v1] = kept_chunks(p, t, q);
      const auto [r0, r1] = kept_chunks(partner, t, q);
      const ChunkRange valid = chunks_span(elems, q, v0, v1);
      sched.send(group[p], group[partner],
                 wire_payload_bytes(wire, valid.count), slot(p),
                 slot(partner));
      if (!bufs.empty()) {
        const ChunkRange recv = chunks_span(elems, q, r0, r1);
        sched.copy(bufs[partner], bufs[p], recv.begin, recv.count);
      }
    }
    sched.end_step();
  }

  // Unfold: finished results stream back to the folded ranks.
  if (r > 0) {
    for (size_t j = 0; j < r; ++j) {
      sched.send(group[j], group[q + j], wire_payload_bytes(wire, elems),
                 slot(j), slot(q + j));
      if (!bufs.empty()) sched.copy(bufs[j], bufs[q + j], 0, elems);
    }
    sched.end_step();
  }
}

double halving_doubling_allreduce(simnet::Cluster& cluster, const Group& group,
                                  const RankData& data, size_t elems,
                                  WireDtype wire, double start) {
  check_data(group, data, elems);
  if (group.size() <= 1) return start;
  Schedule sched;
  build_halving_doubling(sched, group, data, elems, wire);
  const double done = sched.run_timing(cluster, start).finish;
  sched.run_data();
  return done;
}

}  // namespace hitopk::coll
