// Tape-based reverse-mode automatic differentiation.
//
// The convergence experiments (Fig. 10, Table 2) need *real* gradients
// flowing through *real* compression and collectives, so this module
// implements a small eager autodiff: operations evaluate immediately and
// record themselves on a tape; backward() walks the tape in reverse.
//
// Leaves reference external storage (the trainer's flat parameter/gradient
// buffers), so one Tape is built per iteration and parameters persist
// outside it.  Supported ops cover the MLP classifier and the
// embedding-based sequence model used as convergence stand-ins:
// matmul, bias add, relu, tanh, embedding lookup, mean pooling, and
// softmax cross-entropy.
#pragma once

#include <span>
#include <vector>

#include "core/tensor.h"

namespace hitopk::ad {

using VarId = int;

class Tape {
 public:
  Tape() = default;

  // Leaf over external row-major storage.  `grad` may be empty (constants /
  // inputs); when present, backward() accumulates into it.
  VarId leaf(std::span<const float> value, std::span<float> grad, size_t rows,
             size_t cols);

  // C = A (rows_a x cols_a) * B (cols_a x cols_b).
  VarId matmul(VarId a, VarId b);

  // Row-wise bias add: X (n x c) + b (1 x c).
  VarId add_bias(VarId x, VarId bias);

  VarId relu(VarId x);
  VarId tanh_act(VarId x);

  // Rows of `table` (vocab x width) selected by ids; result is
  // (ids.size() x width).  Backward scatter-adds into the table's grad.
  VarId embedding(VarId table, std::vector<int> ids);

  // 2-D convolution, stride 1, "same" zero padding.  x is
  // (batch x c_in*h*w) with CHW layout per row; weight is
  // (c_out x c_in*k*k).  Result is (batch x c_out*h*w).
  VarId conv2d(VarId x, VarId weight, size_t c_in, size_t h, size_t w,
               size_t c_out, size_t k);

  // Mean over consecutive groups of `group` rows: (n x c) -> (n/group x c).
  VarId mean_pool(VarId x, size_t group);

  // Global average pooling over channels laid out channel-major per row:
  // (n x channels*spatial) -> (n x channels), averaging each channel's
  // `spatial` contiguous columns.  Makes a convolutional head translation
  // invariant.
  VarId channel_pool(VarId x, size_t channels);

  // Terminal op: mean softmax cross-entropy of logits (n x classes) against
  // integer labels.  Returns the loss; backward() starts here.
  double softmax_cross_entropy(VarId logits, std::span<const int> labels);

  // Runs reverse-mode accumulation from the loss into every leaf grad.
  // softmax_cross_entropy must have been called exactly once.
  void backward();

  // Read-only access to a variable's value (rows x cols, row-major).
  std::span<const float> value(VarId id) const;
  size_t rows(VarId id) const;
  size_t cols(VarId id) const;

  // Class predictions from logits: true if the correct label is within the
  // top-k logits of its row (utility for accuracy metrics).
  static size_t count_topk_correct(std::span<const float> logits, size_t rows,
                                   size_t cols, std::span<const int> labels,
                                   size_t k);

 private:
  enum class Op {
    kLeaf,
    kMatmul,
    kAddBias,
    kRelu,
    kTanh,
    kEmbedding,
    kMeanPool,
    kChannelPool,
    kConv2d,
    kSoftmaxXent,
  };

  struct ConvShape {
    size_t c_in = 0, h = 0, w = 0, c_out = 0, k = 0;
  };

  struct Node {
    Op op = Op::kLeaf;
    VarId a = -1;
    VarId b = -1;
    size_t rows = 0;
    size_t cols = 0;
    Tensor value;                      // owned value (non-leaf)
    Tensor grad;                       // owned gradient buffer
    std::span<const float> leaf_value; // leaf external value
    std::span<float> leaf_grad;        // leaf external grad (may be empty)
    std::vector<int> ids;              // embedding / labels
    size_t group = 1;                  // mean-pool group size
    ConvShape conv;                    // conv2d geometry
  };

  std::span<const float> node_value(const Node& n) const;
  Node& check_id(VarId id);
  const Node& check_id(VarId id) const;

  std::vector<Node> nodes_;
  VarId loss_node_ = -1;
};

}  // namespace hitopk::ad
