// Tape-based reverse-mode automatic differentiation.
//
// The convergence experiments (Fig. 10, Table 2) need *real* gradients
// flowing through *real* compression and collectives, so this module
// implements a small eager autodiff: operations evaluate immediately and
// record themselves on a tape; backward() walks the tape in reverse.
//
// Engine layout (the "near-hardware-speed" rebuild):
//   - Every dense product — matmul forward, both backward products
//     (dA = dC*B^T, dB = A^T*dC), and im2col-lowered conv2d forward and
//     backward — runs through the register-tiled SGEMM in core/gemm.h.
//   - Node value/grad storage is bump-allocated from a core/workspace Arena
//     (thread-local backing buffers), not per-node heap Tensors; reset()
//     rewinds the tape for the next iteration with capacity intact, so
//     steady-state iterations allocate nothing.
//   - add_bias_relu() fuses the rows+bias add with the ReLU clamp (one
//     traversal forward, one masked accumulate backward); it is bitwise
//     equivalent to add_bias() followed by relu().
//
// Leaves reference external storage (the trainer's flat parameter/gradient
// buffers), so parameters persist outside the tape.  Supported ops cover
// the MLP classifier, the embedding-based sequence model, and the small CNN
// used as convergence stand-ins: matmul, bias add, (fused) relu, tanh,
// embedding lookup, conv2d, mean/channel pooling, and softmax cross-entropy.
#pragma once

#include <initializer_list>
#include <span>
#include <vector>

#include "core/workspace.h"

namespace hitopk::ad {

using VarId = int;

// Accumulation precision of Tape::softmax_cross_entropy.
//
//   kFloat (default) — per-row exponentials through a vectorizable
//       polynomial expf (blocked, compile-time trip counts) with a float
//       denominator.  Relative error of each probability is < 1e-6 vs the
//       double reference; convergence curves stay within noise (the
//       float-vs-double property tests in tests/softmax_mode_test.cpp and
//       the Fig. 10 harness pin this down — see docs/REPRODUCING.md for
//       the measured tolerance).
//   kDouble — the original std::exp/double-denominator path, kept as the
//       validation reference behind this flag (like mstopk_legacy /
//       exact_topk_legacy for the selection operators).
//
// The mode is a process-wide default read at softmax_cross_entropy time;
// set it before training starts (benches: --softmax=double).  Parallel
// gradient workers only read it, so leaving it constant during a run is
// thread-safe.
enum class SoftmaxMode { kFloat, kDouble };
void set_softmax_mode(SoftmaxMode mode);
SoftmaxMode softmax_mode();

class Tape {
 public:
  // Reserves room for a typical model's worth of nodes up front; the
  // convergence stand-ins record 10-12 nodes per pass.
  Tape() { nodes_.reserve(16); }

  // Rewinds the tape for a fresh forward/backward pass.  Node storage
  // capacity (arena buffer, node vector, id staging) survives, so a reused
  // tape is bitwise-identical to a fresh one but allocation-free.
  void reset();

  // Leaf over external row-major storage.  `grad` may be empty (constants /
  // inputs); when present, backward() accumulates into it.
  VarId leaf(std::span<const float> value, std::span<float> grad, size_t rows,
             size_t cols);

  // C = A (rows_a x cols_a) * B (cols_a x cols_b).
  VarId matmul(VarId a, VarId b);

  // Row-wise bias add: X (n x c) + b (1 x c).
  VarId add_bias(VarId x, VarId bias);

  VarId relu(VarId x);

  // Fused relu(X + b); bitwise-identical to add_bias() then relu() but one
  // tape node and one memory pass.
  VarId add_bias_relu(VarId x, VarId bias);

  VarId tanh_act(VarId x);

  // Rows of `table` (vocab x width) selected by ids; result is
  // (ids.size() x width).  Backward scatter-adds into the table's grad.
  // The ids are copied into tape-owned staging (reused across reset()).
  VarId embedding(VarId table, std::span<const int> ids);
  VarId embedding(VarId table, std::initializer_list<int> ids) {
    return embedding(table, std::span<const int>(ids.begin(), ids.size()));
  }

  // 2-D convolution, stride 1, "same" zero padding.  x is
  // (batch x c_in*h*w) with CHW layout per row; weight is
  // (c_out x c_in*k*k).  Result is (batch x c_out*h*w).
  VarId conv2d(VarId x, VarId weight, size_t c_in, size_t h, size_t w,
               size_t c_out, size_t k);

  // Mean over consecutive groups of `group` rows: (n x c) -> (n/group x c).
  VarId mean_pool(VarId x, size_t group);

  // Global average pooling over channels laid out channel-major per row:
  // (n x channels*spatial) -> (n x channels), averaging each channel's
  // `spatial` contiguous columns.  Makes a convolutional head translation
  // invariant.
  VarId channel_pool(VarId x, size_t channels);

  // Terminal op: mean softmax cross-entropy of logits (n x classes) against
  // integer labels.  Returns the loss; backward() starts here.
  double softmax_cross_entropy(VarId logits, std::span<const int> labels);

  // Runs reverse-mode accumulation from the loss into every leaf grad.
  // softmax_cross_entropy must have been called exactly once.
  void backward();

  // Read-only access to a variable's value (rows x cols, row-major).
  std::span<const float> value(VarId id) const;
  size_t rows(VarId id) const;
  size_t cols(VarId id) const;

  // Class predictions from logits: true if the correct label is within the
  // top-k logits of its row (utility for accuracy metrics).
  static size_t count_topk_correct(std::span<const float> logits, size_t rows,
                                   size_t cols, std::span<const int> labels,
                                   size_t k);

 private:
  enum class Op {
    kLeaf,
    kMatmul,
    kAddBias,
    kRelu,
    kBiasRelu,
    kTanh,
    kEmbedding,
    kMeanPool,
    kChannelPool,
    kConv2d,
    kSoftmaxXent,
  };

  struct ConvShape {
    size_t c_in = 0, h = 0, w = 0, c_out = 0, k = 0;
  };

  static constexpr size_t kNone = static_cast<size_t>(-1);

  struct Node {
    Op op = Op::kLeaf;
    VarId a = -1;
    VarId b = -1;
    size_t rows = 0;
    size_t cols = 0;
    size_t value_offset = kNone;       // arena value block (non-leaf)
    size_t grad_offset = kNone;        // arena grad block (set by backward)
    size_t col_offset = kNone;         // conv2d: cached im2col panels
    std::span<const float> leaf_value; // leaf external value
    std::span<float> leaf_grad;        // leaf external grad (may be empty)
    size_t ids_begin = 0;              // embedding / labels, in ids_
    size_t ids_count = 0;
    size_t group = 1;                  // mean-pool group size
    ConvShape conv;                    // conv2d geometry
  };

  // Appends the node and allocates its arena value block; returns its id.
  // Accumulating forward kernels pass zeroed = true.
  VarId push(Node n, bool zeroed = false);

  std::span<const float> node_value(const Node& n) const;
  std::span<float> node_grad(Node& n);
  std::span<const int> node_ids(const Node& n) const;
  Node& check_id(VarId id);
  const Node& check_id(VarId id) const;
  void backward_matmul(Node& n);
  void backward_conv2d(Node& n);

  std::vector<Node> nodes_;
  std::vector<int> ids_;  // staging for embedding ids / xent labels
  Arena arena_;
  VarId loss_node_ = -1;
};

}  // namespace hitopk::ad
