#include "autodiff/tape.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace hitopk::ad {

Tape::Node& Tape::check_id(VarId id) {
  HITOPK_CHECK(id >= 0 && static_cast<size_t>(id) < nodes_.size());
  return nodes_[static_cast<size_t>(id)];
}

const Tape::Node& Tape::check_id(VarId id) const {
  HITOPK_CHECK(id >= 0 && static_cast<size_t>(id) < nodes_.size());
  return nodes_[static_cast<size_t>(id)];
}

std::span<const float> Tape::node_value(const Node& n) const {
  return n.op == Op::kLeaf ? n.leaf_value
                           : std::span<const float>(n.value.span());
}

std::span<const float> Tape::value(VarId id) const {
  return node_value(check_id(id));
}

size_t Tape::rows(VarId id) const { return check_id(id).rows; }
size_t Tape::cols(VarId id) const { return check_id(id).cols; }

VarId Tape::leaf(std::span<const float> value, std::span<float> grad,
                 size_t rows, size_t cols) {
  HITOPK_CHECK_EQ(value.size(), rows * cols);
  if (!grad.empty()) {
    HITOPK_CHECK_EQ(grad.size(), value.size());
  }
  Node n;
  n.op = Op::kLeaf;
  n.rows = rows;
  n.cols = cols;
  n.leaf_value = value;
  n.leaf_grad = grad;
  nodes_.push_back(std::move(n));
  return static_cast<VarId>(nodes_.size() - 1);
}

VarId Tape::matmul(VarId a, VarId b) {
  const Node& na = check_id(a);
  const Node& nb = check_id(b);
  HITOPK_CHECK_EQ(na.cols, nb.rows) << "matmul shape mismatch";
  Node n;
  n.op = Op::kMatmul;
  n.a = a;
  n.b = b;
  n.rows = na.rows;
  n.cols = nb.cols;
  n.value = Tensor(n.rows, n.cols);
  // C = A * B, ikj loop order for cache-friendly row access.
  const auto va = node_value(na);
  const auto vb = node_value(nb);
  float* c = n.value.data();
  const size_t inner = na.cols;
  for (size_t i = 0; i < n.rows; ++i) {
    for (size_t k = 0; k < inner; ++k) {
      const float aik = va[i * inner + k];
      if (aik == 0.0f) continue;
      const float* brow = &vb[k * n.cols];
      float* crow = &c[i * n.cols];
      for (size_t j = 0; j < n.cols; ++j) crow[j] += aik * brow[j];
    }
  }
  nodes_.push_back(std::move(n));
  return static_cast<VarId>(nodes_.size() - 1);
}

VarId Tape::add_bias(VarId x, VarId bias) {
  const Node& nx = check_id(x);
  const Node& nb = check_id(bias);
  HITOPK_CHECK_EQ(nb.rows * nb.cols, nx.cols) << "bias width mismatch";
  Node n;
  n.op = Op::kAddBias;
  n.a = x;
  n.b = bias;
  n.rows = nx.rows;
  n.cols = nx.cols;
  n.value = Tensor(n.rows, n.cols);
  const auto vx = node_value(nx);
  const auto vb = node_value(nb);
  for (size_t i = 0; i < n.rows; ++i) {
    for (size_t j = 0; j < n.cols; ++j) {
      n.value[i * n.cols + j] = vx[i * n.cols + j] + vb[j];
    }
  }
  nodes_.push_back(std::move(n));
  return static_cast<VarId>(nodes_.size() - 1);
}

VarId Tape::relu(VarId x) {
  const Node& nx = check_id(x);
  Node n;
  n.op = Op::kRelu;
  n.a = x;
  n.rows = nx.rows;
  n.cols = nx.cols;
  n.value = Tensor(n.rows, n.cols);
  const auto vx = node_value(nx);
  for (size_t i = 0; i < vx.size(); ++i) {
    n.value[i] = vx[i] > 0.0f ? vx[i] : 0.0f;
  }
  nodes_.push_back(std::move(n));
  return static_cast<VarId>(nodes_.size() - 1);
}

VarId Tape::tanh_act(VarId x) {
  const Node& nx = check_id(x);
  Node n;
  n.op = Op::kTanh;
  n.a = x;
  n.rows = nx.rows;
  n.cols = nx.cols;
  n.value = Tensor(n.rows, n.cols);
  const auto vx = node_value(nx);
  for (size_t i = 0; i < vx.size(); ++i) n.value[i] = std::tanh(vx[i]);
  nodes_.push_back(std::move(n));
  return static_cast<VarId>(nodes_.size() - 1);
}

VarId Tape::embedding(VarId table, std::vector<int> ids) {
  const Node& nt = check_id(table);
  Node n;
  n.op = Op::kEmbedding;
  n.a = table;
  n.rows = ids.size();
  n.cols = nt.cols;
  n.ids = std::move(ids);
  n.value = Tensor(n.rows, n.cols);
  const auto vt = node_value(nt);
  for (size_t i = 0; i < n.rows; ++i) {
    const int id = n.ids[i];
    HITOPK_CHECK(id >= 0 && static_cast<size_t>(id) < nt.rows)
        << "embedding id out of range:" << id;
    std::copy_n(&vt[static_cast<size_t>(id) * n.cols], n.cols,
                &n.value[i * n.cols]);
  }
  nodes_.push_back(std::move(n));
  return static_cast<VarId>(nodes_.size() - 1);
}

VarId Tape::channel_pool(VarId x, size_t channels) {
  const Node& nx = check_id(x);
  HITOPK_CHECK_GT(channels, 0u);
  HITOPK_CHECK_EQ(nx.cols % channels, 0u) << "cols not divisible by channels";
  Node n;
  n.op = Op::kChannelPool;
  n.a = x;
  n.group = nx.cols / channels;  // spatial size
  n.rows = nx.rows;
  n.cols = channels;
  n.value = Tensor(n.rows, n.cols);
  const auto vx = node_value(nx);
  const float inv = 1.0f / static_cast<float>(n.group);
  for (size_t b = 0; b < n.rows; ++b) {
    for (size_t c = 0; c < channels; ++c) {
      double acc = 0.0;
      const float* src = &vx[b * nx.cols + c * n.group];
      for (size_t j = 0; j < n.group; ++j) acc += src[j];
      n.value[b * channels + c] = static_cast<float>(acc) * inv;
    }
  }
  nodes_.push_back(std::move(n));
  return static_cast<VarId>(nodes_.size() - 1);
}

VarId Tape::conv2d(VarId x, VarId weight, size_t c_in, size_t h, size_t w,
                   size_t c_out, size_t k) {
  const Node& nx = check_id(x);
  const Node& nw = check_id(weight);
  HITOPK_CHECK_EQ(nx.cols, c_in * h * w) << "conv input shape mismatch";
  HITOPK_CHECK_EQ(nw.rows, c_out);
  HITOPK_CHECK_EQ(nw.cols, c_in * k * k) << "conv kernel shape mismatch";
  HITOPK_CHECK_EQ(k % 2, 1u) << "odd kernel sizes only (same padding)";

  Node n;
  n.op = Op::kConv2d;
  n.a = x;
  n.b = weight;
  n.rows = nx.rows;
  n.cols = c_out * h * w;
  n.conv = ConvShape{c_in, h, w, c_out, k};
  n.value = Tensor(n.rows, n.cols);

  const auto vx = node_value(nx);
  const auto vw = node_value(nw);
  const long pad = static_cast<long>(k / 2);
  for (size_t b = 0; b < n.rows; ++b) {
    const float* img = &vx[b * c_in * h * w];
    float* out = &n.value[b * c_out * h * w];
    for (size_t co = 0; co < c_out; ++co) {
      const float* kernel = &vw[co * c_in * k * k];
      for (size_t y = 0; y < h; ++y) {
        for (size_t xw = 0; xw < w; ++xw) {
          double acc = 0.0;
          for (size_t ci = 0; ci < c_in; ++ci) {
            for (size_t ky = 0; ky < k; ++ky) {
              const long sy = static_cast<long>(y) + static_cast<long>(ky) - pad;
              if (sy < 0 || sy >= static_cast<long>(h)) continue;
              for (size_t kx = 0; kx < k; ++kx) {
                const long sx =
                    static_cast<long>(xw) + static_cast<long>(kx) - pad;
                if (sx < 0 || sx >= static_cast<long>(w)) continue;
                acc += static_cast<double>(
                           img[(ci * h + static_cast<size_t>(sy)) * w +
                               static_cast<size_t>(sx)]) *
                       kernel[(ci * k + ky) * k + kx];
              }
            }
          }
          out[(co * h + y) * w + xw] = static_cast<float>(acc);
        }
      }
    }
  }
  nodes_.push_back(std::move(n));
  return static_cast<VarId>(nodes_.size() - 1);
}

VarId Tape::mean_pool(VarId x, size_t group) {
  const Node& nx = check_id(x);
  HITOPK_CHECK_GT(group, 0u);
  HITOPK_CHECK_EQ(nx.rows % group, 0u) << "rows not divisible by group";
  Node n;
  n.op = Op::kMeanPool;
  n.a = x;
  n.group = group;
  n.rows = nx.rows / group;
  n.cols = nx.cols;
  n.value = Tensor(n.rows, n.cols);
  const auto vx = node_value(nx);
  const float inv = 1.0f / static_cast<float>(group);
  for (size_t i = 0; i < n.rows; ++i) {
    for (size_t g = 0; g < group; ++g) {
      const float* src = &vx[(i * group + g) * n.cols];
      for (size_t j = 0; j < n.cols; ++j) n.value[i * n.cols + j] += src[j];
    }
    for (size_t j = 0; j < n.cols; ++j) n.value[i * n.cols + j] *= inv;
  }
  nodes_.push_back(std::move(n));
  return static_cast<VarId>(nodes_.size() - 1);
}

double Tape::softmax_cross_entropy(VarId logits, std::span<const int> labels) {
  HITOPK_CHECK_EQ(loss_node_, -1) << "loss already defined on this tape";
  const Node& nl = check_id(logits);
  HITOPK_CHECK_EQ(labels.size(), nl.rows);
  Node n;
  n.op = Op::kSoftmaxXent;
  n.a = logits;
  n.rows = nl.rows;
  n.cols = nl.cols;
  n.ids.assign(labels.begin(), labels.end());
  n.value = Tensor(n.rows, n.cols);  // stores the probabilities

  const auto v = node_value(nl);
  double loss = 0.0;
  for (size_t i = 0; i < n.rows; ++i) {
    const float* row = &v[i * n.cols];
    float max_logit = row[0];
    for (size_t j = 1; j < n.cols; ++j) max_logit = std::max(max_logit, row[j]);
    double denom = 0.0;
    for (size_t j = 0; j < n.cols; ++j) {
      const double e = std::exp(static_cast<double>(row[j] - max_logit));
      n.value[i * n.cols + j] = static_cast<float>(e);
      denom += e;
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (size_t j = 0; j < n.cols; ++j) n.value[i * n.cols + j] *= inv;
    const int label = n.ids[i];
    HITOPK_CHECK(label >= 0 && static_cast<size_t>(label) < n.cols);
    loss -= std::log(
        std::max(1e-12, static_cast<double>(n.value[i * n.cols + label])));
  }
  loss /= static_cast<double>(n.rows);
  nodes_.push_back(std::move(n));
  loss_node_ = static_cast<VarId>(nodes_.size() - 1);
  return loss;
}

void Tape::backward() {
  HITOPK_CHECK_NE(loss_node_, -1) << "no loss op recorded";
  for (auto& n : nodes_) {
    if (n.op != Op::kLeaf) {
      n.grad = Tensor(n.rows, n.cols);
    } else if (n.op == Op::kLeaf) {
      // Leaf gradients accumulate into external storage; nothing to reset.
    }
  }
  // Seed: d(loss)/d(logits) = (P - onehot) / n, written directly into the
  // xent node's input gradient during its backward step below.
  for (size_t idx = nodes_.size(); idx-- > 0;) {
    Node& n = nodes_[idx];
    auto input_grad = [&](VarId id) -> std::span<float> {
      Node& in = check_id(id);
      return in.op == Op::kLeaf ? in.leaf_grad
                                : std::span<float>(in.grad.span());
    };
    switch (n.op) {
      case Op::kLeaf:
        break;
      case Op::kSoftmaxXent: {
        auto gx = input_grad(n.a);
        if (gx.empty()) break;
        const float inv_n = 1.0f / static_cast<float>(n.rows);
        for (size_t i = 0; i < n.rows; ++i) {
          for (size_t j = 0; j < n.cols; ++j) {
            float g = n.value[i * n.cols + j];
            if (static_cast<size_t>(n.ids[i]) == j) g -= 1.0f;
            gx[i * n.cols + j] += g * inv_n;
          }
        }
        break;
      }
      case Op::kMatmul: {
        const Node& na = check_id(n.a);
        const Node& nb = check_id(n.b);
        const auto va = node_value(na);
        const auto vb = node_value(nb);
        const size_t inner = na.cols;
        auto ga = input_grad(n.a);
        auto gb = input_grad(n.b);
        // dA = dC * B^T
        if (!ga.empty()) {
          for (size_t i = 0; i < n.rows; ++i) {
            for (size_t k = 0; k < inner; ++k) {
              double acc = 0.0;
              const float* gc = &n.grad[i * n.cols];
              const float* brow = &vb[k * n.cols];
              for (size_t j = 0; j < n.cols; ++j) acc += gc[j] * brow[j];
              ga[i * inner + k] += static_cast<float>(acc);
            }
          }
        }
        // dB = A^T * dC
        if (!gb.empty()) {
          for (size_t i = 0; i < n.rows; ++i) {
            const float* arow = &va[i * inner];
            const float* gc = &n.grad[i * n.cols];
            for (size_t k = 0; k < inner; ++k) {
              const float aik = arow[k];
              if (aik == 0.0f) continue;
              float* grow = &gb[k * n.cols];
              for (size_t j = 0; j < n.cols; ++j) grow[j] += aik * gc[j];
            }
          }
        }
        break;
      }
      case Op::kAddBias: {
        auto gx = input_grad(n.a);
        auto gb = input_grad(n.b);
        if (!gx.empty()) {
          for (size_t i = 0; i < n.grad.size(); ++i) gx[i] += n.grad[i];
        }
        if (!gb.empty()) {
          for (size_t i = 0; i < n.rows; ++i) {
            for (size_t j = 0; j < n.cols; ++j) {
              gb[j] += n.grad[i * n.cols + j];
            }
          }
        }
        break;
      }
      case Op::kRelu: {
        auto gx = input_grad(n.a);
        if (gx.empty()) break;
        const auto vx = node_value(check_id(n.a));
        for (size_t i = 0; i < n.grad.size(); ++i) {
          if (vx[i] > 0.0f) gx[i] += n.grad[i];
        }
        break;
      }
      case Op::kTanh: {
        auto gx = input_grad(n.a);
        if (gx.empty()) break;
        for (size_t i = 0; i < n.grad.size(); ++i) {
          gx[i] += n.grad[i] * (1.0f - n.value[i] * n.value[i]);
        }
        break;
      }
      case Op::kEmbedding: {
        auto gt = input_grad(n.a);
        if (gt.empty()) break;
        for (size_t i = 0; i < n.rows; ++i) {
          const size_t row = static_cast<size_t>(n.ids[i]);
          for (size_t j = 0; j < n.cols; ++j) {
            gt[row * n.cols + j] += n.grad[i * n.cols + j];
          }
        }
        break;
      }
      case Op::kChannelPool: {
        auto gx = input_grad(n.a);
        if (gx.empty()) break;
        const float inv = 1.0f / static_cast<float>(n.group);
        for (size_t b = 0; b < n.rows; ++b) {
          for (size_t c = 0; c < n.cols; ++c) {
            const float g = n.grad[b * n.cols + c] * inv;
            float* dst = &gx[(b * n.cols + c) * n.group];
            for (size_t j = 0; j < n.group; ++j) dst[j] += g;
          }
        }
        break;
      }
      case Op::kConv2d: {
        const auto [c_in, h, w, c_out, k] = n.conv;
        const long pad = static_cast<long>(k / 2);
        const Node& nx = check_id(n.a);
        const Node& nw = check_id(n.b);
        const auto vx = node_value(nx);
        const auto vw = node_value(nw);
        auto gx = input_grad(n.a);
        auto gw = input_grad(n.b);
        for (size_t b = 0; b < n.rows; ++b) {
          const float* img = &vx[b * c_in * h * w];
          const float* gout = &n.grad[b * c_out * h * w];
          for (size_t co = 0; co < c_out; ++co) {
            const float* kernel = &vw[co * c_in * k * k];
            for (size_t y = 0; y < h; ++y) {
              for (size_t xw = 0; xw < w; ++xw) {
                const float g = gout[(co * h + y) * w + xw];
                if (g == 0.0f) continue;
                for (size_t ci = 0; ci < c_in; ++ci) {
                  for (size_t ky = 0; ky < k; ++ky) {
                    const long sy =
                        static_cast<long>(y) + static_cast<long>(ky) - pad;
                    if (sy < 0 || sy >= static_cast<long>(h)) continue;
                    for (size_t kx = 0; kx < k; ++kx) {
                      const long sx =
                          static_cast<long>(xw) + static_cast<long>(kx) - pad;
                      if (sx < 0 || sx >= static_cast<long>(w)) continue;
                      const size_t img_index =
                          (ci * h + static_cast<size_t>(sy)) * w +
                          static_cast<size_t>(sx);
                      if (!gw.empty()) {
                        gw[co * c_in * k * k + (ci * k + ky) * k + kx] +=
                            g * img[img_index];
                      }
                      if (!gx.empty()) {
                        gx[b * c_in * h * w + img_index] +=
                            g * kernel[(ci * k + ky) * k + kx];
                      }
                    }
                  }
                }
              }
            }
          }
        }
        break;
      }
      case Op::kMeanPool: {
        auto gx = input_grad(n.a);
        if (gx.empty()) break;
        const float inv = 1.0f / static_cast<float>(n.group);
        for (size_t i = 0; i < n.rows; ++i) {
          for (size_t g = 0; g < n.group; ++g) {
            for (size_t j = 0; j < n.cols; ++j) {
              gx[(i * n.group + g) * n.cols + j] +=
                  n.grad[i * n.cols + j] * inv;
            }
          }
        }
        break;
      }
    }
  }
}

size_t Tape::count_topk_correct(std::span<const float> logits, size_t rows,
                                size_t cols, std::span<const int> labels,
                                size_t k) {
  HITOPK_CHECK_EQ(logits.size(), rows * cols);
  HITOPK_CHECK_EQ(labels.size(), rows);
  HITOPK_CHECK_GT(k, 0u);
  size_t correct = 0;
  for (size_t i = 0; i < rows; ++i) {
    const float* row = &logits[i * cols];
    const float target = row[labels[i]];
    // Rank of the target logit: count strictly-greater entries.
    size_t greater = 0;
    for (size_t j = 0; j < cols; ++j) {
      if (row[j] > target) ++greater;
    }
    if (greater < k) ++correct;
  }
  return correct;
}

}  // namespace hitopk::ad
