#include "autodiff/tape.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "core/check.h"
#include "core/gemm.h"

namespace hitopk::ad {
namespace {

SoftmaxMode g_softmax_mode = SoftmaxMode::kFloat;

// Vectorizable float exp: range-reduce x = n*ln2 + r via the round-to-
// nearest "magic number" trick (plain float adds and bit casts instead of a
// libm lrintf call), evaluate a degree-6 Taylor polynomial on
// r in [-ln2/2, ln2/2], and scale by 2^n through the exponent bits.  All
// straight-line float/int arithmetic — exactly what GCC12's -O2 cost model
// will vectorize inside a constant-trip-count block.  Max relative error
// ~1.2e-7 (about 1 float ulp) over the clamp range; exp(0) == 1 exactly.
// Inputs are clamped to [-80, 80]: softmax arguments are <= 0 after the
// row-max subtraction, and anything below -80 contributes < 2e-35 to a
// denominator that is >= 1.
inline float fast_expf(float x) {
  constexpr float kLog2e = 1.4426950408889634f;
  constexpr float kLn2Hi = 0.693359375f;        // Cody-Waite split of ln 2
  constexpr float kLn2Lo = -2.12194440e-4f;
  constexpr float kMagic = 12582912.0f;         // 1.5 * 2^23
  x = std::min(std::max(x, -80.0f), 80.0f);
  const float zf = x * kLog2e + kMagic;
  const int32_t n = std::bit_cast<int32_t>(zf) - 0x4B400000;
  const float nf = zf - kMagic;
  float r = x - nf * kLn2Hi;
  r -= nf * kLn2Lo;
  float p = 1.3888889e-3f;                      // 1/720
  p = p * r + 8.3333333e-3f;                    // 1/120
  p = p * r + 4.1666667e-2f;                    // 1/24
  p = p * r + 1.6666667e-1f;                    // 1/6
  p = p * r + 0.5f;
  p = p * r + 1.0f;
  p = p * r + 1.0f;
  return std::bit_cast<float>(std::bit_cast<int32_t>(p) + (n << 23));
}

// One softmax row in float: prow[j] = exp(row[j] - max_logit), returning the
// float-accumulated denominator.  Blocked with a compile-time trip count so
// the polynomial exp vectorizes; the remainder reuses the same block helper
// with a runtime count (same scalar operation sequence, so results do not
// depend on where the block boundary falls).
inline float softmax_row_float(const float* __restrict row,
                               float* __restrict prow, size_t cols,
                               float max_logit) {
  constexpr size_t kBlock = 16;
  auto exp_block = [&](size_t base, size_t count) {
    for (size_t j = 0; j < count; ++j) {
      prow[base + j] = fast_expf(row[base + j] - max_logit);
    }
  };
  const size_t full_end = cols - cols % kBlock;
  for (size_t base = 0; base < full_end; base += kBlock) {
    exp_block(base, kBlock);
  }
  exp_block(full_end, cols - full_end);
  float denom = 0.0f;
  for (size_t j = 0; j < cols; ++j) denom += prow[j];
  return denom;
}

// Writes the im2col lowering of one CHW image into `col` (c_in*k*k rows by
// h*w columns): col[(ci*k+ky)*k+kx][y*w+x] = img[ci][y+ky-pad][x+kx-pad],
// zero outside the image.  Row-major `col`, so conv forward is the plain
// product  out (c_out x hw) = W (c_out x c_in*k*k) * col.
void im2col(const float* img, size_t c_in, size_t h, size_t w, size_t k,
            float* col) {
  const long pad = static_cast<long>(k / 2);
  const size_t hw = h * w;
  size_t row = 0;
  for (size_t ci = 0; ci < c_in; ++ci) {
    for (size_t ky = 0; ky < k; ++ky) {
      const long dy = static_cast<long>(ky) - pad;
      for (size_t kx = 0; kx < k; ++kx, ++row) {
        const long dx = static_cast<long>(kx) - pad;
        float* dst_row = col + row * hw;
        // x + dx must land in [0, w):
        const size_t x0 = static_cast<size_t>(std::max<long>(0, -dx));
        const size_t x1 = static_cast<size_t>(
            std::min<long>(static_cast<long>(w), static_cast<long>(w) - dx));
        for (size_t y = 0; y < h; ++y) {
          const long sy = static_cast<long>(y) + dy;
          float* dst = dst_row + y * w;
          if (sy < 0 || sy >= static_cast<long>(h) || x0 >= x1) {
            std::memset(dst, 0, w * sizeof(float));
            continue;
          }
          const float* src = img + (ci * h + static_cast<size_t>(sy)) * w;
          std::memset(dst, 0, x0 * sizeof(float));
          std::memcpy(dst + x0, src + static_cast<size_t>(
                                          static_cast<long>(x0) + dx),
                      (x1 - x0) * sizeof(float));
          std::memset(dst + x1, 0, (w - x1) * sizeof(float));
        }
      }
    }
  }
}

// Adjoint of im2col: scatter-adds the column gradient back onto the image
// gradient, reversing the zero-padded gather above.
void col2im_add(const float* col, size_t c_in, size_t h, size_t w, size_t k,
                float* img_grad) {
  const long pad = static_cast<long>(k / 2);
  const size_t hw = h * w;
  size_t row = 0;
  for (size_t ci = 0; ci < c_in; ++ci) {
    for (size_t ky = 0; ky < k; ++ky) {
      const long dy = static_cast<long>(ky) - pad;
      for (size_t kx = 0; kx < k; ++kx, ++row) {
        const long dx = static_cast<long>(kx) - pad;
        const float* src_row = col + row * hw;
        const size_t x0 = static_cast<size_t>(std::max<long>(0, -dx));
        const size_t x1 = static_cast<size_t>(
            std::min<long>(static_cast<long>(w), static_cast<long>(w) - dx));
        if (x0 >= x1) continue;
        for (size_t y = 0; y < h; ++y) {
          const long sy = static_cast<long>(y) + dy;
          if (sy < 0 || sy >= static_cast<long>(h)) continue;
          float* dst = img_grad + (ci * h + static_cast<size_t>(sy)) * w +
                       static_cast<size_t>(static_cast<long>(x0) + dx);
          const float* src = src_row + y * w + x0;
          for (size_t x = 0; x < x1 - x0; ++x) dst[x] += src[x];
        }
      }
    }
  }
}

}  // namespace

void set_softmax_mode(SoftmaxMode mode) { g_softmax_mode = mode; }
SoftmaxMode softmax_mode() { return g_softmax_mode; }

void Tape::reset() {
  nodes_.clear();
  ids_.clear();
  arena_.reset();
  loss_node_ = -1;
}

Tape::Node& Tape::check_id(VarId id) {
  HITOPK_CHECK(id >= 0 && static_cast<size_t>(id) < nodes_.size());
  return nodes_[static_cast<size_t>(id)];
}

const Tape::Node& Tape::check_id(VarId id) const {
  HITOPK_CHECK(id >= 0 && static_cast<size_t>(id) < nodes_.size());
  return nodes_[static_cast<size_t>(id)];
}

std::span<const float> Tape::node_value(const Node& n) const {
  return n.op == Op::kLeaf ? n.leaf_value
                           : arena_.span(n.value_offset, n.rows * n.cols);
}

std::span<float> Tape::node_grad(Node& n) {
  if (n.op == Op::kLeaf) return n.leaf_grad;
  HITOPK_CHECK_NE(n.grad_offset, kNone) << "node grad not allocated";
  return arena_.span(n.grad_offset, n.rows * n.cols);
}

std::span<const int> Tape::node_ids(const Node& n) const {
  return std::span<const int>(ids_.data() + n.ids_begin, n.ids_count);
}

std::span<const float> Tape::value(VarId id) const {
  return node_value(check_id(id));
}

size_t Tape::rows(VarId id) const { return check_id(id).rows; }
size_t Tape::cols(VarId id) const { return check_id(id).cols; }

VarId Tape::push(Node n, bool zeroed) {
  if (n.op != Op::kLeaf) {
    n.value_offset = arena_.alloc(n.rows * n.cols, zeroed);
  }
  nodes_.push_back(std::move(n));
  return static_cast<VarId>(nodes_.size() - 1);
}

VarId Tape::leaf(std::span<const float> value, std::span<float> grad,
                 size_t rows, size_t cols) {
  HITOPK_CHECK_EQ(value.size(), rows * cols);
  if (!grad.empty()) {
    HITOPK_CHECK_EQ(grad.size(), value.size());
  }
  Node n;
  n.op = Op::kLeaf;
  n.rows = rows;
  n.cols = cols;
  n.leaf_value = value;
  n.leaf_grad = grad;
  return push(std::move(n));
}

VarId Tape::matmul(VarId a, VarId b) {
  const Node& na = check_id(a);
  const Node& nb = check_id(b);
  HITOPK_CHECK_EQ(na.cols, nb.rows) << "matmul shape mismatch";
  Node n;
  n.op = Op::kMatmul;
  n.a = a;
  n.b = b;
  n.rows = na.rows;
  n.cols = nb.cols;
  const size_t inner = na.cols;
  const VarId id = push(std::move(n));  // may move the arena: re-derive spans
  Node& self = nodes_.back();
  gemm::sgemm(gemm::Trans::kNo, gemm::Trans::kNo, self.rows, self.cols, inner,
              node_value(check_id(a)).data(), inner,
              node_value(check_id(b)).data(), self.cols,
              arena_.span(self.value_offset, self.rows * self.cols).data(),
              self.cols, /*accumulate=*/false);
  return id;
}

VarId Tape::add_bias(VarId x, VarId bias) {
  const Node& nx = check_id(x);
  const Node& nb = check_id(bias);
  HITOPK_CHECK_EQ(nb.rows * nb.cols, nx.cols) << "bias width mismatch";
  Node n;
  n.op = Op::kAddBias;
  n.a = x;
  n.b = bias;
  n.rows = nx.rows;
  n.cols = nx.cols;
  const VarId id = push(std::move(n));
  Node& self = nodes_.back();
  const auto vx = node_value(check_id(x));
  const auto vb = node_value(check_id(bias));
  auto out = arena_.span(self.value_offset, self.rows * self.cols);
  for (size_t i = 0; i < self.rows; ++i) {
    for (size_t j = 0; j < self.cols; ++j) {
      out[i * self.cols + j] = vx[i * self.cols + j] + vb[j];
    }
  }
  return id;
}

VarId Tape::relu(VarId x) {
  const Node& nx = check_id(x);
  Node n;
  n.op = Op::kRelu;
  n.a = x;
  n.rows = nx.rows;
  n.cols = nx.cols;
  const VarId id = push(std::move(n));
  Node& self = nodes_.back();
  const auto vx = node_value(check_id(x));
  auto out = arena_.span(self.value_offset, vx.size());
  for (size_t i = 0; i < vx.size(); ++i) {
    out[i] = vx[i] > 0.0f ? vx[i] : 0.0f;
  }
  return id;
}

VarId Tape::add_bias_relu(VarId x, VarId bias) {
  const Node& nx = check_id(x);
  const Node& nb = check_id(bias);
  HITOPK_CHECK_EQ(nb.rows * nb.cols, nx.cols) << "bias width mismatch";
  Node n;
  n.op = Op::kBiasRelu;
  n.a = x;
  n.b = bias;
  n.rows = nx.rows;
  n.cols = nx.cols;
  const VarId id = push(std::move(n));
  Node& self = nodes_.back();
  const auto vx = node_value(check_id(x));
  const auto vb = node_value(check_id(bias));
  auto out = arena_.span(self.value_offset, self.rows * self.cols);
  for (size_t i = 0; i < self.rows; ++i) {
    const float* xrow = &vx[i * self.cols];
    float* orow = &out[i * self.cols];
    for (size_t j = 0; j < self.cols; ++j) {
      const float z = xrow[j] + vb[j];
      orow[j] = z > 0.0f ? z : 0.0f;
    }
  }
  return id;
}

VarId Tape::tanh_act(VarId x) {
  const Node& nx = check_id(x);
  Node n;
  n.op = Op::kTanh;
  n.a = x;
  n.rows = nx.rows;
  n.cols = nx.cols;
  const VarId id = push(std::move(n));
  Node& self = nodes_.back();
  const auto vx = node_value(check_id(x));
  auto out = arena_.span(self.value_offset, vx.size());
  for (size_t i = 0; i < vx.size(); ++i) out[i] = std::tanh(vx[i]);
  return id;
}

VarId Tape::embedding(VarId table, std::span<const int> ids) {
  const Node& nt = check_id(table);
  // Validate before mutating any tape state, so a failed check leaves the
  // tape exactly as it was.
  for (const int row : ids) {
    HITOPK_CHECK(row >= 0 && static_cast<size_t>(row) < nt.rows)
        << "embedding id out of range:" << row;
  }
  Node n;
  n.op = Op::kEmbedding;
  n.a = table;
  n.rows = ids.size();
  n.cols = nt.cols;
  n.ids_begin = ids_.size();
  n.ids_count = ids.size();
  ids_.insert(ids_.end(), ids.begin(), ids.end());
  const VarId id = push(std::move(n));
  Node& self = nodes_.back();
  const auto vt = node_value(check_id(table));
  const auto self_ids = node_ids(self);
  auto out = arena_.span(self.value_offset, self.rows * self.cols);
  for (size_t i = 0; i < self.rows; ++i) {
    const size_t row = static_cast<size_t>(self_ids[i]);
    std::copy_n(&vt[row * self.cols], self.cols, &out[i * self.cols]);
  }
  return id;
}

VarId Tape::channel_pool(VarId x, size_t channels) {
  const Node& nx = check_id(x);
  HITOPK_CHECK_GT(channels, 0u);
  HITOPK_CHECK_EQ(nx.cols % channels, 0u) << "cols not divisible by channels";
  Node n;
  n.op = Op::kChannelPool;
  n.a = x;
  n.group = nx.cols / channels;  // spatial size
  n.rows = nx.rows;
  n.cols = channels;
  const size_t in_cols = nx.cols;
  const VarId id = push(std::move(n));
  Node& self = nodes_.back();
  const auto vx = node_value(check_id(x));
  auto out = arena_.span(self.value_offset, self.rows * self.cols);
  const float inv = 1.0f / static_cast<float>(self.group);
  for (size_t b = 0; b < self.rows; ++b) {
    for (size_t c = 0; c < channels; ++c) {
      double acc = 0.0;
      const float* src = &vx[b * in_cols + c * self.group];
      for (size_t j = 0; j < self.group; ++j) acc += src[j];
      out[b * channels + c] = static_cast<float>(acc) * inv;
    }
  }
  return id;
}

VarId Tape::conv2d(VarId x, VarId weight, size_t c_in, size_t h, size_t w,
                   size_t c_out, size_t k) {
  const Node& nx = check_id(x);
  const Node& nw = check_id(weight);
  HITOPK_CHECK_EQ(nx.cols, c_in * h * w) << "conv input shape mismatch";
  HITOPK_CHECK_EQ(nw.rows, c_out);
  HITOPK_CHECK_EQ(nw.cols, c_in * k * k) << "conv kernel shape mismatch";
  HITOPK_CHECK_EQ(k % 2, 1u) << "odd kernel sizes only (same padding)";

  Node n;
  n.op = Op::kConv2d;
  n.a = x;
  n.b = weight;
  n.rows = nx.rows;
  n.cols = c_out * h * w;
  n.conv = ConvShape{c_in, h, w, c_out, k};
  const VarId id = push(std::move(n));

  const size_t hw = h * w;
  const size_t patch = c_in * k * k;
  // The im2col panels are kept in the arena so the backward pass reuses
  // them for dW instead of re-lowering every image — but only when the
  // weight can actually receive a gradient.  Gradient-free forward passes
  // (held-out evaluation) would otherwise size the long-lived arena by
  // batch * patch * hw floats per conv layer for a cache nothing reads.
  const Node& weight_node = check_id(weight);
  const bool needs_cols =
      weight_node.op != Op::kLeaf || !weight_node.leaf_grad.empty();
  const size_t batch = nodes_.back().rows;
  if (needs_cols) {
    nodes_.back().col_offset = arena_.alloc(batch * patch * hw);
  }
  Node& self = nodes_.back();
  const auto vx = node_value(check_id(x));
  const auto vw = node_value(check_id(weight));
  auto out = arena_.span(self.value_offset, self.rows * self.cols);
  Scratch<float> col_scratch(needs_cols ? 0 : patch * hw);
  for (size_t b = 0; b < self.rows; ++b) {
    float* col = needs_cols
                     ? arena_.span(self.col_offset, batch * patch * hw)
                               .data() +
                           b * patch * hw
                     : col_scratch.data();
    im2col(&vx[b * c_in * hw], c_in, h, w, k, col);
    // out_b (c_out x hw) = W (c_out x patch) * col (patch x hw)
    gemm::sgemm(gemm::Trans::kNo, gemm::Trans::kNo, c_out, hw, patch,
                vw.data(), patch, col, hw, &out[b * c_out * hw], hw,
                /*accumulate=*/false);
  }
  return id;
}

VarId Tape::mean_pool(VarId x, size_t group) {
  const Node& nx = check_id(x);
  HITOPK_CHECK_GT(group, 0u);
  HITOPK_CHECK_EQ(nx.rows % group, 0u) << "rows not divisible by group";
  Node n;
  n.op = Op::kMeanPool;
  n.a = x;
  n.group = group;
  n.rows = nx.rows / group;
  n.cols = nx.cols;
  const VarId id = push(std::move(n), /*zeroed=*/true);
  Node& self = nodes_.back();
  const auto vx = node_value(check_id(x));
  auto out = arena_.span(self.value_offset, self.rows * self.cols);
  const float inv = 1.0f / static_cast<float>(group);
  for (size_t i = 0; i < self.rows; ++i) {
    for (size_t g = 0; g < group; ++g) {
      const float* src = &vx[(i * group + g) * self.cols];
      for (size_t j = 0; j < self.cols; ++j) out[i * self.cols + j] += src[j];
    }
    for (size_t j = 0; j < self.cols; ++j) out[i * self.cols + j] *= inv;
  }
  return id;
}

double Tape::softmax_cross_entropy(VarId logits, std::span<const int> labels) {
  HITOPK_CHECK_EQ(loss_node_, -1) << "loss already defined on this tape";
  const Node& nl = check_id(logits);
  HITOPK_CHECK_EQ(labels.size(), nl.rows);
  // Validate before mutating any tape state (see embedding()).
  for (const int label : labels) {
    HITOPK_CHECK(label >= 0 && static_cast<size_t>(label) < nl.cols)
        << "label out of range:" << label;
  }
  Node n;
  n.op = Op::kSoftmaxXent;
  n.a = logits;
  n.rows = nl.rows;
  n.cols = nl.cols;
  n.ids_begin = ids_.size();
  n.ids_count = labels.size();
  ids_.insert(ids_.end(), labels.begin(), labels.end());
  const VarId id = push(std::move(n));  // value stores the probabilities
  Node& self = nodes_.back();

  const auto v = node_value(check_id(logits));
  const auto self_ids = node_ids(self);
  auto probs = arena_.span(self.value_offset, self.rows * self.cols);
  const bool use_float = softmax_mode() == SoftmaxMode::kFloat;
  double loss = 0.0;
  for (size_t i = 0; i < self.rows; ++i) {
    const float* row = &v[i * self.cols];
    float* prow = &probs[i * self.cols];
    float max_logit = row[0];
    for (size_t j = 1; j < self.cols; ++j) {
      max_logit = std::max(max_logit, row[j]);
    }
    float inv;
    if (use_float) {
      inv = 1.0f / softmax_row_float(row, prow, self.cols, max_logit);
    } else {
      // Reference path (SoftmaxMode::kDouble): libm exp and denominator
      // accumulation in double, as the original engine did.
      double denom = 0.0;
      for (size_t j = 0; j < self.cols; ++j) {
        const double e = std::exp(static_cast<double>(row[j] - max_logit));
        prow[j] = static_cast<float>(e);
        denom += e;
      }
      inv = static_cast<float>(1.0 / denom);
    }
    for (size_t j = 0; j < self.cols; ++j) prow[j] *= inv;
    const size_t label = static_cast<size_t>(self_ids[i]);
    loss -= std::log(std::max(1e-12, static_cast<double>(prow[label])));
  }
  loss /= static_cast<double>(self.rows);
  loss_node_ = id;
  return loss;
}

void Tape::backward_matmul(Node& n) {
  const Node& na = check_id(n.a);
  const size_t inner = na.cols;
  const auto gc = node_grad(n);
  auto ga = node_grad(check_id(n.a));
  auto gb = node_grad(check_id(n.b));
  if (!ga.empty()) {
    // dA += dC * B^T
    gemm::sgemm(gemm::Trans::kNo, gemm::Trans::kYes, n.rows, inner, n.cols,
                gc.data(), n.cols, node_value(check_id(n.b)).data(), n.cols,
                ga.data(), inner, /*accumulate=*/true);
  }
  if (!gb.empty()) {
    // dB += A^T * dC
    gemm::sgemm(gemm::Trans::kYes, gemm::Trans::kNo, inner, n.cols, n.rows,
                node_value(check_id(n.a)).data(), inner, gc.data(), n.cols,
                gb.data(), n.cols, /*accumulate=*/true);
  }
}

void Tape::backward_conv2d(Node& n) {
  const auto [c_in, h, w, c_out, k] = n.conv;
  const size_t hw = h * w;
  const size_t patch = c_in * k * k;
  const auto vw = node_value(check_id(n.b));
  const auto gout = node_grad(n);
  auto gx = node_grad(check_id(n.a));
  auto gw = node_grad(check_id(n.b));
  if (gx.empty() && gw.empty()) return;
  // A weight that can receive a gradient always has its im2col panels
  // cached by the forward pass (see conv2d()).
  HITOPK_CHECK(gw.empty() || n.col_offset != kNone);
  const auto cols = gw.empty() ? std::span<const float>{}
                               : arena_.span(n.col_offset,
                                             n.rows * patch * hw);
  Scratch<float> dcol(gx.empty() ? 0 : patch * hw);
  for (size_t b = 0; b < n.rows; ++b) {
    const float* gout_img = &gout[b * c_out * hw];
    if (!gw.empty()) {
      // dW += dOut (c_out x hw) * col^T (hw x patch); col cached by forward
      gemm::sgemm(gemm::Trans::kNo, gemm::Trans::kYes, c_out, patch, hw,
                  gout_img, hw, &cols[b * patch * hw], hw, gw.data(), patch,
                  /*accumulate=*/true);
    }
    if (!gx.empty()) {
      // dcol (patch x hw) = W^T (patch x c_out) * dOut (c_out x hw)
      gemm::sgemm(gemm::Trans::kYes, gemm::Trans::kNo, patch, hw, c_out,
                  vw.data(), patch, gout_img, hw, dcol.data(), hw,
                  /*accumulate=*/false);
      col2im_add(dcol.data(), c_in, h, w, k, &gx[b * c_in * hw]);
    }
  }
}

void Tape::backward() {
  HITOPK_CHECK_NE(loss_node_, -1) << "no loss op recorded";
  // Zeroed arena grad blocks for every non-leaf node; leaf gradients
  // accumulate into external storage and are left untouched.  The terminal
  // xent node's own grad is never read (its backward step seeds its input
  // directly), so it gets no block.
  for (auto& n : nodes_) {
    if (n.op != Op::kLeaf && n.op != Op::kSoftmaxXent) {
      n.grad_offset = arena_.alloc(n.rows * n.cols, /*zeroed=*/true);
    }
  }
  // Seed: d(loss)/d(logits) = (P - onehot) / n, written directly into the
  // xent node's input gradient during its backward step below.
  for (size_t idx = nodes_.size(); idx-- > 0;) {
    Node& n = nodes_[idx];
    switch (n.op) {
      case Op::kLeaf:
        break;
      case Op::kSoftmaxXent: {
        auto gx = node_grad(check_id(n.a));
        if (gx.empty()) break;
        const auto probs = node_value(n);
        const auto labels = node_ids(n);
        const float inv_n = 1.0f / static_cast<float>(n.rows);
        for (size_t i = 0; i < n.rows; ++i) {
          for (size_t j = 0; j < n.cols; ++j) {
            float g = probs[i * n.cols + j];
            if (static_cast<size_t>(labels[i]) == j) g -= 1.0f;
            gx[i * n.cols + j] += g * inv_n;
          }
        }
        break;
      }
      case Op::kMatmul:
        backward_matmul(n);
        break;
      case Op::kAddBias: {
        const auto gc = node_grad(n);
        auto gx = node_grad(check_id(n.a));
        auto gb = node_grad(check_id(n.b));
        if (!gx.empty()) {
          for (size_t i = 0; i < gc.size(); ++i) gx[i] += gc[i];
        }
        if (!gb.empty()) {
          for (size_t i = 0; i < n.rows; ++i) {
            for (size_t j = 0; j < n.cols; ++j) {
              gb[j] += gc[i * n.cols + j];
            }
          }
        }
        break;
      }
      case Op::kRelu: {
        auto gx = node_grad(check_id(n.a));
        if (gx.empty()) break;
        const auto gc = node_grad(n);
        const auto vx = node_value(check_id(n.a));
        for (size_t i = 0; i < gc.size(); ++i) {
          if (vx[i] > 0.0f) gx[i] += gc[i];
        }
        break;
      }
      case Op::kBiasRelu: {
        // out = relu(x + b): the mask is out > 0 (== x + b > 0); one fused
        // pass accumulates both input grads, matching add_bias-then-relu
        // bitwise.
        const auto gc = node_grad(n);
        const auto out = node_value(n);
        auto gx = node_grad(check_id(n.a));
        auto gb = node_grad(check_id(n.b));
        for (size_t i = 0; i < n.rows; ++i) {
          const float* orow = &out[i * n.cols];
          const float* grow = &gc[i * n.cols];
          for (size_t j = 0; j < n.cols; ++j) {
            if (orow[j] > 0.0f) {
              if (!gx.empty()) gx[i * n.cols + j] += grow[j];
              if (!gb.empty()) gb[j] += grow[j];
            }
          }
        }
        break;
      }
      case Op::kTanh: {
        auto gx = node_grad(check_id(n.a));
        if (gx.empty()) break;
        const auto gc = node_grad(n);
        const auto out = node_value(n);
        for (size_t i = 0; i < gc.size(); ++i) {
          gx[i] += gc[i] * (1.0f - out[i] * out[i]);
        }
        break;
      }
      case Op::kEmbedding: {
        auto gt = node_grad(check_id(n.a));
        if (gt.empty()) break;
        const auto gc = node_grad(n);
        const auto ids = node_ids(n);
        for (size_t i = 0; i < n.rows; ++i) {
          const size_t row = static_cast<size_t>(ids[i]);
          for (size_t j = 0; j < n.cols; ++j) {
            gt[row * n.cols + j] += gc[i * n.cols + j];
          }
        }
        break;
      }
      case Op::kChannelPool: {
        auto gx = node_grad(check_id(n.a));
        if (gx.empty()) break;
        const auto gc = node_grad(n);
        const float inv = 1.0f / static_cast<float>(n.group);
        for (size_t b = 0; b < n.rows; ++b) {
          for (size_t c = 0; c < n.cols; ++c) {
            const float g = gc[b * n.cols + c] * inv;
            float* dst = &gx[(b * n.cols + c) * n.group];
            for (size_t j = 0; j < n.group; ++j) dst[j] += g;
          }
        }
        break;
      }
      case Op::kConv2d:
        backward_conv2d(n);
        break;
      case Op::kMeanPool: {
        auto gx = node_grad(check_id(n.a));
        if (gx.empty()) break;
        const auto gc = node_grad(n);
        const float inv = 1.0f / static_cast<float>(n.group);
        for (size_t i = 0; i < n.rows; ++i) {
          for (size_t g = 0; g < n.group; ++g) {
            for (size_t j = 0; j < n.cols; ++j) {
              gx[(i * n.group + g) * n.cols + j] +=
                  gc[i * n.cols + j] * inv;
            }
          }
        }
        break;
      }
    }
  }
}

size_t Tape::count_topk_correct(std::span<const float> logits, size_t rows,
                                size_t cols, std::span<const int> labels,
                                size_t k) {
  HITOPK_CHECK_EQ(logits.size(), rows * cols);
  HITOPK_CHECK_EQ(labels.size(), rows);
  HITOPK_CHECK_GT(k, 0u);
  size_t correct = 0;
  for (size_t i = 0; i < rows; ++i) {
    const float* row = &logits[i * cols];
    const float target = row[labels[i]];
    // Rank of the target logit: count strictly-greater entries.
    size_t greater = 0;
    for (size_t j = 0; j < cols; ++j) {
      if (row[j] > target) ++greater;
    }
    if (greater < k) ++correct;
  }
  return correct;
}

}  // namespace hitopk::ad
