#include "core/half.h"

#include <bit>
#include <cstring>

#include "core/check.h"

namespace hitopk {

Half float_to_half(float value) {
  const uint32_t f = std::bit_cast<uint32_t>(value);
  const uint32_t sign = (f >> 16) & 0x8000u;
  const int32_t exponent = static_cast<int32_t>((f >> 23) & 0xffu) - 127;
  uint32_t mantissa = f & 0x7fffffu;

  if (exponent == 128) {  // Inf or NaN
    // Preserve the top payload bits (including the quiet bit) so every
    // 16-bit NaN pattern survives a half -> float -> half round trip.  Only
    // when the narrowed payload would be all-zero — which would turn the
    // NaN into an infinity — substitute the quiet bit.
    uint16_t payload = static_cast<uint16_t>(mantissa >> 13);
    if (mantissa != 0 && payload == 0) payload = 0x0200u;
    return Half{static_cast<uint16_t>(sign | 0x7c00u | payload)};
  }
  if (exponent > 15) {  // Overflow -> infinity
    return Half{static_cast<uint16_t>(sign | 0x7c00u)};
  }
  if (exponent >= -14) {  // Normal range
    // Round-to-nearest-even on the 13 discarded mantissa bits.
    uint32_t half_exp = static_cast<uint32_t>(exponent + 15);
    uint32_t rounded = (half_exp << 10) | (mantissa >> 13);
    const uint32_t remainder = mantissa & 0x1fffu;
    if (remainder > 0x1000u || (remainder == 0x1000u && (rounded & 1u))) {
      ++rounded;  // May carry into the exponent; that is correct rounding.
    }
    return Half{static_cast<uint16_t>(sign | rounded)};
  }
  if (exponent >= -25) {  // Subnormal half
    mantissa |= 0x800000u;  // Make the implicit bit explicit.
    const int shift = -exponent - 14 + 13;
    uint32_t rounded = mantissa >> shift;
    const uint32_t remainder = mantissa & ((1u << shift) - 1u);
    const uint32_t halfway = 1u << (shift - 1);
    if (remainder > halfway || (remainder == halfway && (rounded & 1u))) {
      ++rounded;
    }
    return Half{static_cast<uint16_t>(sign | rounded)};
  }
  return Half{static_cast<uint16_t>(sign)};  // Underflow -> signed zero
}

float half_to_float(Half h) {
  const uint32_t sign = (static_cast<uint32_t>(h.bits) & 0x8000u) << 16;
  const uint32_t exponent = (h.bits >> 10) & 0x1fu;
  uint32_t mantissa = h.bits & 0x3ffu;

  uint32_t f;
  if (exponent == 0) {
    if (mantissa == 0) {
      f = sign;  // Zero
    } else {
      // Subnormal: normalize by shifting the mantissa up.
      int e = -1;
      do {
        ++e;
        mantissa <<= 1;
      } while ((mantissa & 0x400u) == 0);
      mantissa &= 0x3ffu;
      f = sign | static_cast<uint32_t>(127 - 15 - e) << 23 | (mantissa << 13);
    }
  } else if (exponent == 0x1f) {
    f = sign | 0x7f800000u | (mantissa << 13);  // Inf / NaN
  } else {
    f = sign | ((exponent - 15 + 127) << 23) | (mantissa << 13);
  }
  return std::bit_cast<float>(f);
}

void float_to_half(std::span<const float> src, std::span<Half> dst) {
  HITOPK_CHECK_EQ(src.size(), dst.size());
  for (size_t i = 0; i < src.size(); ++i) dst[i] = float_to_half(src[i]);
}

void half_to_float(std::span<const Half> src, std::span<float> dst) {
  HITOPK_CHECK_EQ(src.size(), dst.size());
  for (size_t i = 0; i < src.size(); ++i) dst[i] = half_to_float(src[i]);
}

void fp16_round_trip(std::span<float> values) {
  // The round trip never materializes Half bits, so the normal-half range
  // (float exponent 113..142) reduces to rounding the low 13 mantissa bits
  // to nearest-even in the float encoding itself: add 0xfff plus the tie
  // bit and truncate.  A mantissa carry bumps the exponent — that IS the
  // correct rounding — and a carry past exponent 142 is the 65504 -> inf
  // overflow.  Subnormal, zero, and non-finite inputs take the exact
  // scalar pair.  Bitwise identical to half_to_float(float_to_half(v)) for
  // every input (verified over all 2^32 patterns).
  for (auto& v : values) {
    const uint32_t f = std::bit_cast<uint32_t>(v);
    const uint32_t e = (f >> 23) & 0xffu;
    if (e - 113u <= 29u) [[likely]] {  // 113 <= e <= 142
      uint32_t u = f + 0xfffu + ((f >> 13) & 1u);
      if (((u >> 23) & 0xffu) > 142u) {
        u = (f & 0x80000000u) | 0x7f800000u;
      } else {
        u &= ~0x1fffu;
      }
      v = std::bit_cast<float>(u);
    } else {
      v = half_to_float(float_to_half(v));
    }
  }
}

}  // namespace hitopk
