// Deterministic pseudo-random number generation.
//
// Every stochastic component in the repository (synthetic datasets, gradient
// noise, MSTopK's random tail selection, workload generators) draws from an
// explicitly seeded Rng so experiments are reproducible bit-for-bit across
// runs.  The generator is xoshiro256** seeded via SplitMix64, which is fast,
// has a 2^256-1 period, and passes BigCrush.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace hitopk {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  // Uniform 64-bit word.
  uint64_t next_u64();

  // Uniform in [0, 1).
  double uniform();

  // Uniform in [lo, hi).
  double uniform(double lo, double hi);

  // Uniform integer in [0, n).  n must be > 0.
  uint64_t uniform_index(uint64_t n);

  // Standard normal via Box-Muller (cached second value).
  double normal();

  // Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(uniform_index(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  // Derive an independent child stream (e.g. one per worker rank).
  Rng fork();

  // Complete generator state for checkpointing: the four xoshiro words plus
  // the Box-Muller cache (value bit-cast to u64, presence flag).  A restored
  // generator continues the exact stream, including a pending cached normal.
  static constexpr size_t kStateWords = 6;
  std::array<uint64_t, kStateWords> state() const;
  void set_state(const std::array<uint64_t, kStateWords>& words);

 private:
  uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace hitopk
