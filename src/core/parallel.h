// Shared thread pool for the functional hot paths.
//
// The collectives simulate many independent GPUs on one host: the per-rank
// MSTopK/error-feedback/scatter-add loops in HiTopKComm and the per-step data
// movement in the ring collectives are embarrassingly parallel (every
// iteration touches a disjoint buffer region), so they run on a process-wide
// pool via parallel_for.  Callers are responsible for that disjointness;
// parallel_for guarantees only that fn(i) runs exactly once for every i and
// that all iterations have finished when it returns.  Because iterations are
// independent, the result is bitwise identical to the serial loop regardless
// of thread count or scheduling (the determinism test in
// parallel_determinism_test.cpp pins this down).
#pragma once

#include <cstddef>
#include <functional>

namespace hitopk {

// Number of worker threads the pool runs with (including the calling thread).
// Defaults to std::thread::hardware_concurrency(); the HITOPK_THREADS
// environment variable overrides it at first use.
int parallel_threads();

// Overrides the thread count for subsequent parallel_for calls.  n <= 1
// forces serial execution (useful for A/B determinism tests).  Safe to call
// between parallel_for invocations, not from inside one.
void set_parallel_threads(int n);

// Runs fn(i) for every i in [begin, end), partitioned into contiguous blocks
// of at least `grain` iterations across the pool.  Blocks until every
// iteration has completed.  The calling thread participates, so nested calls
// from inside a worker degrade gracefully to inline execution.  The first
// exception thrown by any iteration is rethrown on the caller.
void parallel_for(size_t begin, size_t end,
                  const std::function<void(size_t)>& fn, size_t grain = 1);

}  // namespace hitopk
