#include "core/flags.h"

#include <cstdlib>

#include "core/check.h"

namespace hitopk {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";
    }
  }
}

bool Flags::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::get(const std::string& name,
                       const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

int Flags::get_int(const std::string& name, int fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return static_cast<int>(std::strtol(it->second.c_str(), nullptr, 10));
}

double Flags::get_double(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

}  // namespace hitopk
