// A minimal dense tensor for gradient/parameter data.
//
// The communication library and the convergence experiments only ever need
// flat float buffers with an optional 2-D shape (for matmul in the autodiff
// engine), so Tensor is deliberately simple: contiguous float32 storage with
// value semantics, a (rows, cols) shape where cols == 1 means a vector, and
// span-based views for zero-copy slicing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/check.h"

namespace hitopk {

class Rng;

class Tensor {
 public:
  Tensor() = default;

  // 1-D tensor of `size` zeros.
  explicit Tensor(size_t size) : rows_(size), cols_(1), data_(size, 0.0f) {}

  // 2-D tensor of zeros.
  Tensor(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  // 1-D tensor from explicit values.
  static Tensor from(std::vector<float> values);

  // 2-D tensor from explicit values (row-major); values.size() must equal
  // rows * cols.
  static Tensor from(size_t rows, size_t cols, std::vector<float> values);

  // Element count.
  size_t size() const { return data_.size(); }
  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  std::span<float> span() { return std::span<float>(data_); }
  std::span<const float> span() const { return std::span<const float>(data_); }

  // Zero-copy view of [offset, offset + count).
  std::span<float> slice(size_t offset, size_t count);
  std::span<const float> slice(size_t offset, size_t count) const;

  float& operator[](size_t i) { return data_[i]; }
  float operator[](size_t i) const { return data_[i]; }

  // 2-D access (row-major).  Bounds-checked via HITOPK_CHECK in debug-style
  // call sites only; hot paths use data() directly.
  float& at(size_t r, size_t c);
  float at(size_t r, size_t c) const;

  // Fill with a constant / random values.
  void fill(float value);
  void fill_uniform(Rng& rng, float lo, float hi);
  void fill_normal(Rng& rng, float mean, float stddev);

  // Elementwise in-place arithmetic; shapes must match exactly.
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(float scale);

  // Reductions.
  float sum() const;
  float l2_norm() const;
  float abs_mean() const;
  float abs_max() const;

  // Count of elements with |x| >= threshold.
  size_t count_abs_ge(float threshold) const;

  std::string shape_string() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
};

// Elementwise helpers over raw spans, shared by compressors and collectives.
namespace tensor_ops {

// Magnitude statistics gathered in one pass (MSTopK Alg. 1 lines 1-3 needs
// both; fusing them halves the memory traffic of separate abs_mean/abs_max
// sweeps).
struct AbsStats {
  double abs_sum = 0.0;
  float abs_max = 0.0f;
};

// One unrolled pass over x computing sum(|x|) and max(|x|).
AbsStats abs_stats(std::span<const float> x);

// Count of elements with |x| >= threshold.
size_t count_abs_ge(std::span<const float> x, float threshold);

// dst += src
void add_into(std::span<float> dst, std::span<const float> src);

// dst += src, then src = dst: the fused "compensate and re-prime" pass of
// ErrorFeedback::apply_priming (both buffers end up holding the sum, in one
// traversal instead of an add followed by a copy).
void add_into_both(std::span<float> dst, std::span<float> src);

// dst = 0
void zero(std::span<float> dst);

// L2 norm of a span.
float l2_norm(std::span<const float> x);

// Scales every element in place.
void scale(std::span<float> x, float factor);

}  // namespace tensor_ops

}  // namespace hitopk
