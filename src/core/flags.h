// Minimal command-line flag parsing for the examples and benches.
//
// Accepts "--name=value" and "--name value"; bare "--name" is a boolean
// true.  Unknown positional arguments are collected separately.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

namespace hitopk {

class Flags {
 public:
  Flags(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name,
                  const std::string& fallback = "") const;
  int get_int(const std::string& name, int fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback = false) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::unordered_map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace hitopk
