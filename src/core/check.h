// Precondition / invariant checking.
//
// HITOPK_CHECK(cond) aborts the operation by throwing hitopk::CheckError with
// a source location and optional streamed message:
//
//   HITOPK_CHECK(k <= d) << "k=" << k << " exceeds dimension " << d;
//
// Checks express contract violations (caller bugs), not recoverable runtime
// conditions; they stay enabled in release builds because every experiment in
// this repository depends on the simulator's invariants holding.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace hitopk {

// Thrown when a HITOPK_CHECK fails.  Derives from logic_error: a failed
// check is a programming error, not an environmental one.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace internal {

// Accumulates the streamed message and throws from the destructor-like
// terminal call.  Usage is via the macro only.
class CheckFailStream {
 public:
  CheckFailStream(const char* condition, const char* file, int line) {
    stream_ << file << ":" << line << ": check failed: " << condition;
  }

  template <typename T>
  CheckFailStream& operator<<(const T& value) {
    stream_ << " " << value;
    return *this;
  }

  [[noreturn]] ~CheckFailStream() noexcept(false) {
    throw CheckError(stream_.str());
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace hitopk

#define HITOPK_CHECK(condition)                                          \
  if (condition) {                                                       \
  } else                                                                 \
    ::hitopk::internal::CheckFailStream(#condition, __FILE__, __LINE__)

#define HITOPK_CHECK_EQ(a, b) HITOPK_CHECK((a) == (b))
#define HITOPK_CHECK_NE(a, b) HITOPK_CHECK((a) != (b))
#define HITOPK_CHECK_LT(a, b) HITOPK_CHECK((a) < (b))
#define HITOPK_CHECK_LE(a, b) HITOPK_CHECK((a) <= (b))
#define HITOPK_CHECK_GT(a, b) HITOPK_CHECK((a) > (b))
#define HITOPK_CHECK_GE(a, b) HITOPK_CHECK((a) >= (b))
