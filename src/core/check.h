// Precondition / invariant checking.
//
// HITOPK_CHECK(cond) aborts the operation by throwing hitopk::CheckError with
// a source location and optional streamed message:
//
//   HITOPK_CHECK(k <= d) << "k=" << k << " exceeds dimension " << d;
//
// Checks express contract violations (caller bugs), not recoverable runtime
// conditions; they stay enabled in release builds because every experiment in
// this repository depends on the simulator's invariants holding.
//
// HITOPK_VALIDATE(cond) is the recoverable sibling: it throws
// hitopk::ConfigError for invalid runtime configurations at API boundaries
// (unsupported topology shape, mismatched buffer sizes) that an elastic or
// scheduling layer may legitimately catch and respond to.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace hitopk {

// Thrown when a HITOPK_CHECK fails.  Derives from logic_error: a failed
// check is a programming error, not an environmental one.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

// Thrown when a HITOPK_VALIDATE fails.  Derives from runtime_error: an
// invalid *runtime configuration* (a collective asked to run on a topology
// it does not support, mismatched buffer shapes handed across an API
// boundary) is recoverable — a scheduler or elastic-execution layer may
// catch it, adjust the configuration, and retry — unlike a CheckError,
// which marks a broken internal invariant.
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

namespace internal {

// Accumulates the streamed message and throws from the destructor-like
// terminal call.  Usage is via the macro only.
class CheckFailStream {
 public:
  CheckFailStream(const char* condition, const char* file, int line) {
    stream_ << file << ":" << line << ": check failed: " << condition;
  }

  template <typename T>
  CheckFailStream& operator<<(const T& value) {
    stream_ << " " << value;
    return *this;
  }

  [[noreturn]] ~CheckFailStream() noexcept(false) {
    throw CheckError(stream_.str());
  }

 private:
  std::ostringstream stream_;
};

// Same shape as CheckFailStream, but throws the recoverable ConfigError.
class ValidateFailStream {
 public:
  ValidateFailStream(const char* condition, const char* file, int line) {
    stream_ << file << ":" << line << ": invalid configuration: " << condition;
  }

  template <typename T>
  ValidateFailStream& operator<<(const T& value) {
    stream_ << " " << value;
    return *this;
  }

  [[noreturn]] ~ValidateFailStream() noexcept(false) {
    throw ConfigError(stream_.str());
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace hitopk

#define HITOPK_CHECK(condition)                                          \
  if (condition) {                                                       \
  } else                                                                 \
    ::hitopk::internal::CheckFailStream(#condition, __FILE__, __LINE__)

// Recoverable counterpart of HITOPK_CHECK for runtime-configuration
// validation at API boundaries: throws hitopk::ConfigError.
#define HITOPK_VALIDATE(condition)                                          \
  if (condition) {                                                          \
  } else                                                                    \
    ::hitopk::internal::ValidateFailStream(#condition, __FILE__, __LINE__)

#define HITOPK_CHECK_EQ(a, b) HITOPK_CHECK((a) == (b))
#define HITOPK_CHECK_NE(a, b) HITOPK_CHECK((a) != (b))
#define HITOPK_CHECK_LT(a, b) HITOPK_CHECK((a) < (b))
#define HITOPK_CHECK_LE(a, b) HITOPK_CHECK((a) <= (b))
#define HITOPK_CHECK_GT(a, b) HITOPK_CHECK((a) > (b))
#define HITOPK_CHECK_GE(a, b) HITOPK_CHECK((a) >= (b))
