// Blocked, register-tiled single-precision GEMM for the autodiff engine.
//
// The convergence experiments (Fig. 10 / Table 2) spend nearly all their
// compute in small-to-medium dense products: MLP layers (batch x hidden),
// their two backward products (dA = dC*B^T, dB = A^T*dC), and im2col-lowered
// convolutions.  sgemm() computes C (+)= op(A) * op(B) through one packed
// microkernel whose inner loops have compile-time-constant trip counts
// (kMr x kNr register tile), which is what the GCC12 -O2 "very cheap"
// vectorizer cost model needs to engage — the same constraint the MSTopK
// histogram kernels are written around.
//
// Transposition is absorbed during packing, so all four variants run the
// identical microkernel.  For K <= kKc (every shape the synthetic tasks
// produce) each output element accumulates its K products in strictly
// increasing k order in float, i.e. bitwise-identically to the textbook
// `for k: c += a[i][k] * b[k][j]` loop; larger K is split into kKc-sized
// blocks whose partial sums are added in order.
#pragma once

#include <cstddef>

namespace hitopk::gemm {

enum class Trans {
  kNo,   // operand used as stored
  kYes,  // operand used transposed
};

// Register tile (microkernel output block) and K blocking.  kNr is a
// multiple of the 4-wide SSE vector so the constant-trip j-loops vectorize;
// kMr * kNr accumulators plus a broadcast and B loads stay within the 16
// xmm registers of baseline x86-64.
inline constexpr size_t kMr = 4;
inline constexpr size_t kNr = 8;
inline constexpr size_t kKc = 256;

// C (m x n, leading dimension ldc) (+)= op(A) * op(B) where op(A) is m x k
// and op(B) is k x n.  `lda`/`ldb` are the leading dimensions of the
// *stored* row-major matrices: op(X) == kYes means the stored matrix is the
// transpose (so A is stored k x m / B is stored n x k).  When `accumulate`
// is false C is overwritten, otherwise the product is added into it — the
// form backward passes need to merge gradients from several consumers.
void sgemm(Trans trans_a, Trans trans_b, size_t m, size_t n, size_t k,
           const float* a, size_t lda, const float* b, size_t ldb, float* c,
           size_t ldc, bool accumulate);

// Reference implementation (textbook triple loop, k innermost in increasing
// order).  The property tests compare sgemm against this, and
// bench_micro_gemm uses it as the speedup baseline.
void sgemm_naive(Trans trans_a, Trans trans_b, size_t m, size_t n, size_t k,
                 const float* a, size_t lda, const float* b, size_t ldb,
                 float* c, size_t ldc, bool accumulate);

}  // namespace hitopk::gemm
