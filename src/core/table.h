// Plain-text table printer used by the benchmark harnesses to emit rows in
// the same layout the paper's tables and figure series use.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace hitopk {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  // Adds a row; cell count must match the header count.
  void add_row(std::vector<std::string> cells);

  // Renders with column alignment and a header separator.
  void print(std::ostream& os) const;

  // Formatting helpers for numeric cells.
  static std::string fmt(double value, int precision = 3);
  static std::string fmt_int(long long value);
  static std::string fmt_percent(double fraction, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hitopk
