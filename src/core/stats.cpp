#include "core/stats.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace hitopk {

void RunningStats::add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> samples, double p) {
  HITOPK_CHECK(!samples.empty());
  HITOPK_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples[0];
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace hitopk
