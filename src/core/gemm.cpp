#include "core/gemm.h"

#include <algorithm>
#include <cstring>

#include "core/check.h"
#include "core/workspace.h"

namespace hitopk::gemm {
namespace {

// Packs the (mb x kb) block of op(A) into kMr-row panels: panel p holds
// rows [p*kMr, p*kMr + kMr), element (m, kk) at panel[kk * kMr + m].  Rows
// past mb are zero-filled so the microkernel always runs a full tile.
void pack_a(Trans trans, const float* a, size_t lda, size_t mb, size_t k0,
            size_t kb, float* dst) {
  const size_t panels = (mb + kMr - 1) / kMr;
  for (size_t p = 0; p < panels; ++p) {
    float* panel = dst + p * kMr * kb;
    const size_t i0 = p * kMr;
    const size_t rows = std::min(kMr, mb - i0);
    for (size_t kk = 0; kk < kb; ++kk) {
      float* col = panel + kk * kMr;
      for (size_t m = 0; m < rows; ++m) {
        col[m] = trans == Trans::kNo ? a[(i0 + m) * lda + k0 + kk]
                                     : a[(k0 + kk) * lda + i0 + m];
      }
      for (size_t m = rows; m < kMr; ++m) col[m] = 0.0f;
    }
  }
}

// Packs the (kb x nb) block of op(B) into kNr-column panels: panel q holds
// columns [q*kNr, q*kNr + kNr), element (kk, j) at panel[kk * kNr + j],
// zero-padded past nb.
void pack_b(Trans trans, const float* b, size_t ldb, size_t nb, size_t k0,
            size_t kb, float* dst) {
  const size_t panels = (nb + kNr - 1) / kNr;
  for (size_t q = 0; q < panels; ++q) {
    float* panel = dst + q * kNr * kb;
    const size_t j0 = q * kNr;
    const size_t cols = std::min(kNr, nb - j0);
    for (size_t kk = 0; kk < kb; ++kk) {
      float* row = panel + kk * kNr;
      for (size_t j = 0; j < cols; ++j) {
        row[j] = trans == Trans::kNo ? b[(k0 + kk) * ldb + j0 + j]
                                     : b[(j0 + j) * ldb + k0 + kk];
      }
      for (size_t j = cols; j < kNr; ++j) row[j] = 0.0f;
    }
  }
}

// One kMr x kNr output tile: out = sum over kk of a_panel(:,kk) * one
// kNr-wide band of B rows, where consecutive B rows are b_stride floats
// apart — kNr for packed panels, the matrix's own leading dimension when B
// is read in place (op(B) == B keeps rows contiguous, and skipping the pack
// saves a full copy of the often weight-sized matrix per call; at the small
// batch sizes of the convergence harness that copy rivals the useful
// flops).  The m/j loops have constant trip counts, so the j loop
// vectorizes and the accumulators stay in registers; kk advances in
// increasing order, which fixes the float summation order per element.
void micro_kernel(size_t kb, const float* __restrict__ ap,
                  const float* __restrict__ b, size_t b_stride,
                  float* __restrict__ out) {
  static_assert(kMr == 4, "accumulator rows are unrolled by hand");
  float acc0[kNr] = {}, acc1[kNr] = {}, acc2[kNr] = {}, acc3[kNr] = {};
  for (size_t kk = 0; kk < kb; ++kk) {
    const float* av = ap + kk * kMr;
    const float* bv = b + kk * b_stride;
    const float a0 = av[0], a1 = av[1], a2 = av[2], a3 = av[3];
    for (size_t j = 0; j < kNr; ++j) {
      const float bj = bv[j];
      acc0[j] += a0 * bj;
      acc1[j] += a1 * bj;
      acc2[j] += a2 * bj;
      acc3[j] += a3 * bj;
    }
  }
  std::memcpy(out, acc0, sizeof(acc0));
  std::memcpy(out + kNr, acc1, sizeof(acc1));
  std::memcpy(out + 2 * kNr, acc2, sizeof(acc2));
  std::memcpy(out + 3 * kNr, acc3, sizeof(acc3));
}

// Ragged column tail for the direct-B path: each output element is the
// increasing-k dot of a packed-A row with a B column (same summation order
// as the tiles).
void direct_b_tail(size_t kb, size_t mr, const float* ap, const float* b,
                   size_t ldb, size_t j0, size_t n, float* c, size_t ldc,
                   bool add) {
  for (size_t mm = 0; mm < mr; ++mm) {
    for (size_t j = j0; j < n; ++j) {
      float acc = 0.0f;
      for (size_t kk = 0; kk < kb; ++kk) {
        acc += ap[kk * kMr + mm] * b[kk * ldb + j];
      }
      c[mm * ldc + j] = add ? c[mm * ldc + j] + acc : acc;
    }
  }
}

}  // namespace

void sgemm(Trans trans_a, Trans trans_b, size_t m, size_t n, size_t k,
           const float* a, size_t lda, const float* b, size_t ldb, float* c,
           size_t ldc, bool accumulate) {
  if (m == 0 || n == 0) return;
  if (k == 0) {
    if (!accumulate) {
      for (size_t i = 0; i < m; ++i) {
        std::memset(c + i * ldc, 0, n * sizeof(float));
      }
    }
    return;
  }
  const size_t mp = (m + kMr - 1) / kMr;
  const size_t np = (n + kNr - 1) / kNr;
  const size_t kb_max = std::min(k, kKc);
  const bool direct_b = trans_b == Trans::kNo;
  Scratch<float> a_pack(mp * kMr * kb_max);
  Scratch<float> b_pack(direct_b ? 0 : np * kNr * kb_max);

  // Stores one computed tile into C, honoring ragged edges and the
  // overwrite-vs-accumulate mode; full tiles take the constant-trip path.
  auto store_tile = [&](const float* tile, size_t i0, size_t mr, size_t j0,
                        size_t nr, bool add) {
    if (mr == kMr && nr == kNr) {
      if (add) {
        for (size_t mm = 0; mm < kMr; ++mm) {
          float* crow = c + (i0 + mm) * ldc + j0;
          const float* trow = tile + mm * kNr;
          for (size_t j = 0; j < kNr; ++j) crow[j] += trow[j];
        }
      } else {
        for (size_t mm = 0; mm < kMr; ++mm) {
          std::memcpy(c + (i0 + mm) * ldc + j0, tile + mm * kNr,
                      kNr * sizeof(float));
        }
      }
    } else {
      for (size_t mm = 0; mm < mr; ++mm) {
        float* crow = c + (i0 + mm) * ldc + j0;
        const float* trow = tile + mm * kNr;
        for (size_t j = 0; j < nr; ++j) {
          crow[j] = add ? crow[j] + trow[j] : trow[j];
        }
      }
    }
  };

  for (size_t k0 = 0; k0 < k; k0 += kKc) {
    const size_t kb = std::min(kKc, k - k0);
    // The first K block overwrites C unless the caller asked to accumulate;
    // later blocks always add their partial sums (in increasing k0 order).
    const bool add = accumulate || k0 > 0;
    pack_a(trans_a, a, lda, m, k0, kb, a_pack.data());
    if (!direct_b) {
      pack_b(trans_b, b, ldb, n, k0, kb, b_pack.data());
    }
    const size_t n_full = (n / kNr) * kNr;
    for (size_t p = 0; p < mp; ++p) {
      const float* ap = a_pack.data() + p * kMr * kb;
      const size_t i0 = p * kMr;
      const size_t mr = std::min(kMr, m - i0);
      float tile[kMr * kNr];
      if (direct_b) {
        // B rows are contiguous as stored: stream them in place instead of
        // copying the whole (often weight-sized) matrix into panels.
        const float* b_block = b + k0 * ldb;
        for (size_t j0 = 0; j0 < n_full; j0 += kNr) {
          micro_kernel(kb, ap, b_block + j0, ldb, tile);
          store_tile(tile, i0, mr, j0, kNr, add);
        }
        if (n_full < n) {
          direct_b_tail(kb, mr, ap, b_block, ldb, n_full, n, c + i0 * ldc,
                        ldc, add);
        }
      } else {
        for (size_t q = 0; q < np; ++q) {
          const size_t j0 = q * kNr;
          micro_kernel(kb, ap, b_pack.data() + q * kNr * kb, kNr, tile);
          store_tile(tile, i0, mr, j0, std::min(kNr, n - j0), add);
        }
      }
    }
  }
}

void sgemm_naive(Trans trans_a, Trans trans_b, size_t m, size_t n, size_t k,
                 const float* a, size_t lda, const float* b, size_t ldb,
                 float* c, size_t ldc, bool accumulate) {
  // Loop orders mirror the pre-GEMM tape kernels (forward ikj, backward
  // dot-product / rank-1 loops), so bench_micro_gemm's baseline is the real
  // pre-rebuild engine, not a strawman.  Per output element every variant
  // accumulates its k products in increasing order, like sgemm().
  if (!accumulate) {
    for (size_t i = 0; i < m; ++i) {
      std::memset(c + i * ldc, 0, n * sizeof(float));
    }
  }
  if (trans_a == Trans::kNo && trans_b == Trans::kNo) {
    for (size_t i = 0; i < m; ++i) {
      for (size_t kk = 0; kk < k; ++kk) {
        const float aik = a[i * lda + kk];
        const float* brow = b + kk * ldb;
        float* crow = c + i * ldc;
        for (size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
      }
    }
  } else if (trans_a == Trans::kNo && trans_b == Trans::kYes) {
    for (size_t i = 0; i < m; ++i) {
      const float* arow = a + i * lda;
      for (size_t j = 0; j < n; ++j) {
        const float* brow = b + j * ldb;
        float acc = 0.0f;
        for (size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
        c[i * ldc + j] += acc;
      }
    }
  } else if (trans_a == Trans::kYes && trans_b == Trans::kNo) {
    for (size_t kk = 0; kk < k; ++kk) {
      const float* arow = a + kk * lda;
      const float* brow = b + kk * ldb;
      for (size_t i = 0; i < m; ++i) {
        const float aki = arow[i];
        float* crow = c + i * ldc;
        for (size_t j = 0; j < n; ++j) crow[j] += aki * brow[j];
      }
    }
  } else {
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < n; ++j) {
        float acc = 0.0f;
        for (size_t kk = 0; kk < k; ++kk) {
          acc += a[kk * lda + i] * b[j * ldb + kk];
        }
        c[i * ldc + j] += acc;
      }
    }
  }
}

}  // namespace hitopk::gemm
