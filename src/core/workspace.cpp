#include "core/workspace.h"

namespace hitopk {

void workspace_clear() {
  detail::workspace_pool<float>().clear();
  detail::workspace_pool<uint32_t>().clear();
  detail::workspace_pool<size_t>().clear();
  detail::workspace_pool<int>().clear();
}

size_t workspace_cached_buffers() {
  return detail::workspace_pool<float>().size() +
         detail::workspace_pool<uint32_t>().size() +
         detail::workspace_pool<size_t>().size() +
         detail::workspace_pool<int>().size();
}

}  // namespace hitopk
