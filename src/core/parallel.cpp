#include "core/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace hitopk {
namespace {

// True while the current thread is executing parallel_for iterations; nested
// calls then run inline instead of re-entering the shared pool.
thread_local bool in_parallel_region = false;

// One parallel_for invocation: a contiguous index range split into blocks
// claimed via an atomic cursor, so faster workers steal the remaining blocks.
struct Job {
  size_t begin = 0;
  size_t end = 0;
  size_t block = 1;
  const std::function<void(size_t)>* fn = nullptr;
  std::atomic<size_t> cursor{0};
  std::exception_ptr error;
  std::mutex error_mutex;

  void run_blocks() {
    const bool was_nested = in_parallel_region;
    in_parallel_region = true;
    for (;;) {
      const size_t b = cursor.fetch_add(block, std::memory_order_relaxed);
      const size_t lo = begin + b;
      if (lo >= end) break;
      const size_t hi = std::min(end, lo + block);
      try {
        for (size_t i = lo; i < hi; ++i) (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
      }
    }
    in_parallel_region = was_nested;
  }
};

// Lazily started, process-lifetime worker pool.  Workers sleep on a
// condition variable between jobs; the submitting thread always works on the
// job too, so a 1-thread configuration never touches the pool.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  int threads() {
    std::lock_guard<std::mutex> lock(mutex_);
    return threads_;
  }

  void set_threads(int n) {
    std::lock_guard<std::mutex> lock(mutex_);
    threads_ = n < 1 ? 1 : n;
  }

  void run(Job& job) {
    // One job at a time: concurrent top-level parallel_for calls from
    // different threads take turns on the pool.
    std::lock_guard<std::mutex> run_lock(run_mutex_);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ensure_workers(threads_ - 1);
      // Workers beyond the current width stay parked, so shrinking the
      // configured thread count after the pool has grown takes effect.
      job_workers_ = threads_ - 1;
      job_ = &job;
      ++generation_;
    }
    wake_.notify_all();
    job.run_blocks();
    // The caller ran out of blocks to claim.  Publish "no more claims" and
    // wait for workers still inside a claimed block: `job` lives on the
    // caller's stack, so nothing may touch it once run() returns.
    {
      std::unique_lock<std::mutex> lock(mutex_);
      job_ = nullptr;
      done_.wait(lock, [&] { return busy_ == 0; });
    }
  }

 private:
  Pool() {
    int n = static_cast<int>(std::thread::hardware_concurrency());
    if (const char* env = std::getenv("HITOPK_THREADS")) {
      const int parsed = std::atoi(env);
      if (parsed > 0) n = parsed;
    }
    threads_ = n < 1 ? 1 : n;
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    wake_.notify_all();
    for (auto& w : workers_) w.join();
  }

  void ensure_workers(int target) {  // mutex_ held
    while (static_cast<int>(workers_.size()) < target) {
      const int index = static_cast<int>(workers_.size());
      workers_.emplace_back([this, index] { worker_loop(index); });
    }
  }

  void worker_loop(int index) {
    uint64_t seen = 0;
    for (;;) {
      Job* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [&] {
          return stop_ || (job_ != nullptr && generation_ != seen);
        });
        if (stop_) return;
        seen = generation_;
        if (index >= job_workers_) continue;  // parked for this job
        job = job_;
        ++busy_;
      }
      job->run_blocks();
      {
        std::lock_guard<std::mutex> lock(mutex_);
        --busy_;
      }
      done_.notify_all();
    }
  }

  std::mutex run_mutex_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  std::vector<std::thread> workers_;
  Job* job_ = nullptr;
  uint64_t generation_ = 0;
  int job_workers_ = 0;  // workers allowed to join the current job
  int busy_ = 0;
  bool stop_ = false;
  int threads_ = 1;
};

}  // namespace

int parallel_threads() { return Pool::instance().threads(); }

void set_parallel_threads(int n) { Pool::instance().set_threads(n); }

void parallel_for(size_t begin, size_t end,
                  const std::function<void(size_t)>& fn, size_t grain) {
  if (begin >= end) return;
  const size_t count = end - begin;
  const int threads = Pool::instance().threads();
  if (grain == 0) grain = 1;
  if (threads <= 1 || count <= grain || in_parallel_region) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  Job job;
  job.begin = begin;
  job.end = end;
  // Aim for a few blocks per thread (load balance) without dropping below
  // the caller's grain size (per-block overhead).
  const size_t target_blocks = static_cast<size_t>(threads) * 4;
  job.block = std::max(grain, (count + target_blocks - 1) / target_blocks);
  job.fn = &fn;

  Pool::instance().run(job);

  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace hitopk
