// IEEE-754 binary16 (FP16) conversion.
//
// Figure 7 of the paper measures collectives on FP16 payloads; V100 tensor
// cores also train in mixed precision.  The simulator moves real bytes, so
// FP16 payloads need a real conversion: round-to-nearest-even float -> half
// and exact half -> float, handling subnormals, infinities, and NaN.
#pragma once

#include <cstdint>
#include <span>

namespace hitopk {

// Opaque 16-bit storage type for a half-precision value.
struct Half {
  uint16_t bits = 0;
};

// Converts with round-to-nearest-even, clamping overflow to infinity.
Half float_to_half(float value);

// Exact widening conversion.
float half_to_float(Half h);

// Bulk conversions (dst.size() must equal src.size()).
void float_to_half(std::span<const float> src, std::span<Half> dst);
void half_to_float(std::span<const Half> src, std::span<float> dst);

// Simulates a round trip through FP16, as mixed-precision communication does.
void fp16_round_trip(std::span<float> values);

}  // namespace hitopk
