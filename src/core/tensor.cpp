#include "core/tensor.h"

#include <cmath>
#include <sstream>
#include <utility>

#include "core/rng.h"

namespace hitopk {

Tensor Tensor::from(std::vector<float> values) {
  Tensor t;
  t.rows_ = values.size();
  t.cols_ = 1;
  t.data_ = std::move(values);
  return t;
}

Tensor Tensor::from(size_t rows, size_t cols, std::vector<float> values) {
  HITOPK_CHECK_EQ(rows * cols, values.size());
  Tensor t;
  t.rows_ = rows;
  t.cols_ = cols;
  t.data_ = std::move(values);
  return t;
}

std::span<float> Tensor::slice(size_t offset, size_t count) {
  HITOPK_CHECK_LE(offset + count, data_.size());
  return std::span<float>(data_.data() + offset, count);
}

std::span<const float> Tensor::slice(size_t offset, size_t count) const {
  HITOPK_CHECK_LE(offset + count, data_.size());
  return std::span<const float>(data_.data() + offset, count);
}

float& Tensor::at(size_t r, size_t c) {
  HITOPK_CHECK(r < rows_ && c < cols_)
      << "index (" << r << "," << c << ") out of " << shape_string();
  return data_[r * cols_ + c];
}

float Tensor::at(size_t r, size_t c) const {
  HITOPK_CHECK(r < rows_ && c < cols_)
      << "index (" << r << "," << c << ") out of " << shape_string();
  return data_[r * cols_ + c];
}

void Tensor::fill(float value) {
  for (auto& x : data_) x = value;
}

void Tensor::fill_uniform(Rng& rng, float lo, float hi) {
  for (auto& x : data_) x = static_cast<float>(rng.uniform(lo, hi));
}

void Tensor::fill_normal(Rng& rng, float mean, float stddev) {
  for (auto& x : data_) x = static_cast<float>(rng.normal(mean, stddev));
}

Tensor& Tensor::operator+=(const Tensor& other) {
  HITOPK_CHECK_EQ(size(), other.size());
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  HITOPK_CHECK_EQ(size(), other.size());
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float scale) {
  for (auto& x : data_) x *= scale;
  return *this;
}

float Tensor::sum() const {
  double acc = 0.0;
  for (float x : data_) acc += x;
  return static_cast<float>(acc);
}

float Tensor::l2_norm() const { return tensor_ops::l2_norm(span()); }

float Tensor::abs_mean() const {
  if (data_.empty()) return 0.0f;
  return static_cast<float>(tensor_ops::abs_stats(span()).abs_sum /
                            static_cast<double>(data_.size()));
}

float Tensor::abs_max() const { return tensor_ops::abs_stats(span()).abs_max; }

size_t Tensor::count_abs_ge(float threshold) const {
  return tensor_ops::count_abs_ge(span(), threshold);
}

std::string Tensor::shape_string() const {
  std::ostringstream os;
  os << "(" << rows_ << "," << cols_ << ")";
  return os.str();
}

namespace tensor_ops {

AbsStats abs_stats(std::span<const float> x) {
  // Four independent accumulator lanes break the loop-carried dependency so
  // the compiler can vectorize / pipeline the pass; the lane combination
  // order is fixed, keeping the result deterministic.
  double sum0 = 0.0, sum1 = 0.0, sum2 = 0.0, sum3 = 0.0;
  float max0 = 0.0f, max1 = 0.0f, max2 = 0.0f, max3 = 0.0f;
  const size_t n = x.size();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float m0 = std::fabs(x[i]);
    const float m1 = std::fabs(x[i + 1]);
    const float m2 = std::fabs(x[i + 2]);
    const float m3 = std::fabs(x[i + 3]);
    sum0 += m0;
    sum1 += m1;
    sum2 += m2;
    sum3 += m3;
    max0 = std::max(max0, m0);
    max1 = std::max(max1, m1);
    max2 = std::max(max2, m2);
    max3 = std::max(max3, m3);
  }
  for (; i < n; ++i) {
    const float m = std::fabs(x[i]);
    sum0 += m;
    max0 = std::max(max0, m);
  }
  AbsStats out;
  out.abs_sum = (sum0 + sum1) + (sum2 + sum3);
  out.abs_max = std::max(std::max(max0, max1), std::max(max2, max3));
  return out;
}

size_t count_abs_ge(std::span<const float> x, float threshold) {
  size_t count = 0;
  for (float v : x) count += std::fabs(v) >= threshold ? 1 : 0;
  return count;
}

namespace {

// Constant-trip inner block over restrict-qualified raw pointers so the
// GCC12 -O2 "very cheap" vectorizer engages (a plain runtime-count span
// loop does not); this is the reduce hot loop of the ring collectives.
void add_into_impl(float* __restrict__ d, const float* __restrict__ s,
                   size_t n) {
  constexpr size_t kBlock = 16;
  const size_t full_end = n - n % kBlock;
  for (size_t base = 0; base < full_end; base += kBlock) {
    float* dd = d + base;
    const float* ss = s + base;
    for (size_t j = 0; j < kBlock; ++j) dd[j] += ss[j];
  }
  for (size_t i = full_end; i < n; ++i) d[i] += s[i];
}

}  // namespace

void add_into(std::span<float> dst, std::span<const float> src) {
  HITOPK_CHECK_EQ(dst.size(), src.size());
  add_into_impl(dst.data(), src.data(), dst.size());
}

namespace {

void add_into_both_impl(float* __restrict__ d, float* __restrict__ s,
                        size_t n) {
  constexpr size_t kBlock = 16;
  const size_t full_end = n - n % kBlock;
  for (size_t base = 0; base < full_end; base += kBlock) {
    float* dd = d + base;
    float* ss = s + base;
    for (size_t j = 0; j < kBlock; ++j) {
      const float sum = dd[j] + ss[j];
      dd[j] = sum;
      ss[j] = sum;
    }
  }
  for (size_t i = full_end; i < n; ++i) {
    const float sum = d[i] + s[i];
    d[i] = sum;
    s[i] = sum;
  }
}

}  // namespace

void add_into_both(std::span<float> dst, std::span<float> src) {
  HITOPK_CHECK_EQ(dst.size(), src.size());
  add_into_both_impl(dst.data(), src.data(), dst.size());
}

void zero(std::span<float> dst) {
  for (auto& x : dst) x = 0.0f;
}

float l2_norm(std::span<const float> x) {
  double acc = 0.0;
  for (float v : x) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

void scale(std::span<float> x, float factor) {
  for (auto& v : x) v *= factor;
}

}  // namespace tensor_ops

}  // namespace hitopk
