#include "core/tensor.h"

#include <cmath>
#include <sstream>
#include <utility>

#include "core/rng.h"

namespace hitopk {

Tensor Tensor::from(std::vector<float> values) {
  Tensor t;
  t.rows_ = values.size();
  t.cols_ = 1;
  t.data_ = std::move(values);
  return t;
}

Tensor Tensor::from(size_t rows, size_t cols, std::vector<float> values) {
  HITOPK_CHECK_EQ(rows * cols, values.size());
  Tensor t;
  t.rows_ = rows;
  t.cols_ = cols;
  t.data_ = std::move(values);
  return t;
}

std::span<float> Tensor::slice(size_t offset, size_t count) {
  HITOPK_CHECK_LE(offset + count, data_.size());
  return std::span<float>(data_.data() + offset, count);
}

std::span<const float> Tensor::slice(size_t offset, size_t count) const {
  HITOPK_CHECK_LE(offset + count, data_.size());
  return std::span<const float>(data_.data() + offset, count);
}

float& Tensor::at(size_t r, size_t c) {
  HITOPK_CHECK(r < rows_ && c < cols_)
      << "index (" << r << "," << c << ") out of " << shape_string();
  return data_[r * cols_ + c];
}

float Tensor::at(size_t r, size_t c) const {
  HITOPK_CHECK(r < rows_ && c < cols_)
      << "index (" << r << "," << c << ") out of " << shape_string();
  return data_[r * cols_ + c];
}

void Tensor::fill(float value) {
  for (auto& x : data_) x = value;
}

void Tensor::fill_uniform(Rng& rng, float lo, float hi) {
  for (auto& x : data_) x = static_cast<float>(rng.uniform(lo, hi));
}

void Tensor::fill_normal(Rng& rng, float mean, float stddev) {
  for (auto& x : data_) x = static_cast<float>(rng.normal(mean, stddev));
}

Tensor& Tensor::operator+=(const Tensor& other) {
  HITOPK_CHECK_EQ(size(), other.size());
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  HITOPK_CHECK_EQ(size(), other.size());
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float scale) {
  for (auto& x : data_) x *= scale;
  return *this;
}

float Tensor::sum() const {
  double acc = 0.0;
  for (float x : data_) acc += x;
  return static_cast<float>(acc);
}

float Tensor::l2_norm() const { return tensor_ops::l2_norm(span()); }

float Tensor::abs_mean() const {
  if (data_.empty()) return 0.0f;
  double acc = 0.0;
  for (float x : data_) acc += std::fabs(x);
  return static_cast<float>(acc / static_cast<double>(data_.size()));
}

float Tensor::abs_max() const {
  float best = 0.0f;
  for (float x : data_) best = std::max(best, std::fabs(x));
  return best;
}

size_t Tensor::count_abs_ge(float threshold) const {
  size_t count = 0;
  for (float x : data_) {
    if (std::fabs(x) >= threshold) ++count;
  }
  return count;
}

std::string Tensor::shape_string() const {
  std::ostringstream os;
  os << "(" << rows_ << "," << cols_ << ")";
  return os.str();
}

namespace tensor_ops {

void add_into(std::span<float> dst, std::span<const float> src) {
  HITOPK_CHECK_EQ(dst.size(), src.size());
  for (size_t i = 0; i < dst.size(); ++i) dst[i] += src[i];
}

void zero(std::span<float> dst) {
  for (auto& x : dst) x = 0.0f;
}

float l2_norm(std::span<const float> x) {
  double acc = 0.0;
  for (float v : x) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

void scale(std::span<float> x, float factor) {
  for (auto& v : x) v *= factor;
}

}  // namespace tensor_ops

}  // namespace hitopk
