#include "core/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "core/check.h"

namespace hitopk {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  HITOPK_CHECK(!headers_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  HITOPK_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << "| " << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c] << " ";
    }
    os << "|\n";
  };
  print_row(headers_);
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << "|" << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string TablePrinter::fmt_int(long long value) {
  return std::to_string(value);
}

std::string TablePrinter::fmt_percent(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << "%";
  return os.str();
}

}  // namespace hitopk
