// Summary statistics for benchmark measurements.
#pragma once

#include <cstddef>
#include <vector>

namespace hitopk {

// Online mean/variance/min/max accumulator (Welford).
class RunningStats {
 public:
  void add(double value);

  size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Percentile over a copy of the samples; p in [0, 100].
double percentile(std::vector<double> samples, double p);

}  // namespace hitopk
