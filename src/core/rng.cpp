#include "core/rng.h"

#include <bit>
#include <cmath>

#include "core/check.h"

namespace hitopk {
namespace {

uint64_t splitmix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

uint64_t Rng::next_u64() {
  const uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

uint64_t Rng::uniform_index(uint64_t n) {
  HITOPK_CHECK_GT(n, 0u);
  // Rejection sampling removes modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % n;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

Rng Rng::fork() { return Rng(next_u64()); }

std::array<uint64_t, Rng::kStateWords> Rng::state() const {
  return {state_[0], state_[1], state_[2], state_[3],
          std::bit_cast<uint64_t>(cached_normal_),
          static_cast<uint64_t>(has_cached_normal_ ? 1 : 0)};
}

void Rng::set_state(const std::array<uint64_t, kStateWords>& words) {
  state_[0] = words[0];
  state_[1] = words[1];
  state_[2] = words[2];
  state_[3] = words[3];
  cached_normal_ = std::bit_cast<double>(words[4]);
  has_cached_normal_ = words[5] != 0;
}

}  // namespace hitopk
