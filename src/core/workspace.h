// Thread-local scratch-buffer arena.
//
// The compression operators and collectives need large temporary buffers
// (magnitude copies, candidate index lists, per-shard accumulation) on every
// call; allocating them fresh each time puts malloc/free on the gradient
// hot path.  Scratch<T> checks a vector<T> out of a thread-local free list
// and returns it at scope exit with its capacity intact, so steady-state
// calls reallocate nothing.  Being thread-local, checkout is lock-free and
// safe from inside parallel_for workers; nested checkouts simply pop further
// down the free list.
//
//   void hot_path(size_t d) {
//     Scratch<float> mags(d);          // capacity reused across calls
//     ...use mags.vec() / mags.span()...
//   }                                  // returned to this thread's pool
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace hitopk {

namespace detail {

// The per-thread, per-type free list.  Buffers are handed out LIFO so the
// most recently used (cache-warm, right-sized) buffer is reused first.
template <typename T>
std::vector<std::vector<T>>& workspace_pool() {
  thread_local std::vector<std::vector<T>> pool;
  return pool;
}

}  // namespace detail

template <typename T>
class Scratch {
 public:
  // Checks out a buffer and resizes it to n elements.  Contents are
  // unspecified unless `zeroed` is true.
  explicit Scratch(size_t n, bool zeroed = false) {
    auto& pool = detail::workspace_pool<T>();
    if (!pool.empty()) {
      buffer_ = std::move(pool.back());
      pool.pop_back();
    }
    if (zeroed) {
      buffer_.assign(n, T{});
    } else {
      buffer_.resize(n);
    }
  }

  ~Scratch() {
    buffer_.clear();
    detail::workspace_pool<T>().push_back(std::move(buffer_));
  }

  Scratch(const Scratch&) = delete;
  Scratch& operator=(const Scratch&) = delete;

  std::vector<T>& vec() { return buffer_; }
  std::span<T> span() { return std::span<T>(buffer_); }
  std::span<const T> span() const { return std::span<const T>(buffer_); }
  T* data() { return buffer_.data(); }
  size_t size() const { return buffer_.size(); }
  T& operator[](size_t i) { return buffer_[i]; }
  const T& operator[](size_t i) const { return buffer_[i]; }

 private:
  std::vector<T> buffer_;
};

// Drops every buffer cached by the calling thread (diagnostic / test hook).
void workspace_clear();

// Number of buffers currently parked in the calling thread's float/u32
// pools (test hook: proves reuse instead of reallocation).
size_t workspace_cached_buffers();

}  // namespace hitopk
