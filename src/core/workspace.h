// Thread-local scratch-buffer arena.
//
// The compression operators and collectives need large temporary buffers
// (magnitude copies, candidate index lists, per-shard accumulation) on every
// call; allocating them fresh each time puts malloc/free on the gradient
// hot path.  Scratch<T> checks a vector<T> out of a thread-local free list
// and returns it at scope exit with its capacity intact, so steady-state
// calls reallocate nothing.  Being thread-local, checkout is lock-free and
// safe from inside parallel_for workers; nested checkouts simply pop further
// down the free list.
//
//   void hot_path(size_t d) {
//     Scratch<float> mags(d);          // capacity reused across calls
//     ...use mags.vec() / mags.span()...
//   }                                  // returned to this thread's pool
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace hitopk {

namespace detail {

// The per-thread, per-type free list.  Buffers are handed out LIFO so the
// most recently used (cache-warm, right-sized) buffer is reused first.
template <typename T>
std::vector<std::vector<T>>& workspace_pool() {
  thread_local std::vector<std::vector<T>> pool;
  return pool;
}

}  // namespace detail

template <typename T>
class Scratch {
 public:
  // Checks out a buffer and resizes it to n elements.  Contents are
  // unspecified unless `zeroed` is true.
  explicit Scratch(size_t n, bool zeroed = false) {
    auto& pool = detail::workspace_pool<T>();
    if (!pool.empty()) {
      buffer_ = std::move(pool.back());
      pool.pop_back();
    }
    if (zeroed) {
      buffer_.assign(n, T{});
    } else {
      // Pooled buffers keep their size (not just capacity), so this only
      // value-initializes the tail beyond the previous high-water mark —
      // clearing before pooling would make resize() zero-fill all n
      // elements on every checkout, taxing every hot path with a redundant
      // memset.
      buffer_.resize(n);
    }
  }

  ~Scratch() {
    detail::workspace_pool<T>().push_back(std::move(buffer_));
  }

  Scratch(const Scratch&) = delete;
  Scratch& operator=(const Scratch&) = delete;

  std::vector<T>& vec() { return buffer_; }
  std::span<T> span() { return std::span<T>(buffer_); }
  std::span<const T> span() const { return std::span<const T>(buffer_); }
  T* data() { return buffer_.data(); }
  size_t size() const { return buffer_.size(); }
  T& operator[](size_t i) { return buffer_[i]; }
  const T& operator[](size_t i) const { return buffer_[i]; }

 private:
  std::vector<T> buffer_;
};

// Bump allocator over one workspace-pooled float buffer.
//
// The autodiff tape allocates many small value/grad blocks per iteration
// whose lifetimes all end together (when the tape is reset or destroyed), so
// it uses an Arena instead of per-node Scratch checkouts: alloc() hands out
// offsets into a single backing buffer that is checked out of the calling
// thread's pool at construction and returned — capacity intact — at
// destruction.  reset() rewinds the bump pointer without releasing storage,
// which is what makes a tape reusable across iterations with zero
// steady-state allocation.
//
// Offsets stay valid across alloc() calls (the backing buffer may move, so
// re-derive spans via span() after allocating).  Being workspace-backed, an
// Arena is as thread-safe as Scratch: each thread draws from its own pool.
class Arena {
 public:
  Arena() {
    // The pooled buffer keeps its previous size so alloc() below reuses it
    // without any value re-initialization (contents are unspecified unless
    // the caller asks for zeroing).
    auto& pool = detail::workspace_pool<float>();
    if (!pool.empty()) {
      buffer_ = std::move(pool.back());
      pool.pop_back();
    }
  }

  ~Arena() {
    detail::workspace_pool<float>().push_back(std::move(buffer_));
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Reserves n floats and returns their offset.  Contents are unspecified
  // unless `zeroed` (reset() recycles dirty storage).
  size_t alloc(size_t n, bool zeroed = false) {
    const size_t offset = used_;
    used_ += n;
    if (used_ > buffer_.size()) {
      buffer_.resize(std::max(used_, buffer_.size() * 2));
    }
    if (zeroed) {
      std::fill(buffer_.begin() + static_cast<ptrdiff_t>(offset),
                buffer_.begin() + static_cast<ptrdiff_t>(used_), 0.0f);
    }
    return offset;
  }

  std::span<float> span(size_t offset, size_t n) {
    return std::span<float>(buffer_.data() + offset, n);
  }
  std::span<const float> span(size_t offset, size_t n) const {
    return std::span<const float>(buffer_.data() + offset, n);
  }

  // Rewinds the bump pointer; capacity (and the backing allocation) stay.
  void reset() { used_ = 0; }

  size_t used() const { return used_; }
  size_t capacity() const { return buffer_.size(); }

 private:
  std::vector<float> buffer_;
  size_t used_ = 0;
};

// Drops every buffer cached by the calling thread (diagnostic / test hook).
void workspace_clear();

// Number of buffers currently parked in the calling thread's float/u32
// pools (test hook: proves reuse instead of reallocation).
size_t workspace_cached_buffers();

}  // namespace hitopk
