// Central calibration constants for the simulated substrate.
//
// Every constant that anchors simulated time to the paper's measurements
// lives here, so the calibration story is auditable in one place.  Sources:
//   - Table 1 / §5.1: instance NICs (25 GbE Tencent, 32 GbE Aliyun) and
//     V100 + NVLink nodes;
//   - §5.5.2: single-GPU mixed-precision throughputs (ResNet-50 1150,
//     VGG-19 560, Transformer 32 samples/s);
//   - Table 4: single-GPU throughput per input resolution;
//   - Fig. 6: nn.topk ~1.2 s at 128 M elements; MSTopK negligible;
//   - Fig. 1: exact top-k compression 0.239 s vs FF&BP 0.204 s at 224^2;
//   - §5.4: LARS 11 ms (ResNet-50) / 30 ms (Transformer) on one GPU.
#pragma once

#include <cstddef>

namespace hitopk::models {

struct Calibration {
  // ---- network (see simnet/topology.cpp presets)
  // NCCL sparse All-Gather over a *flat world-scale ring* on cloud TCP
  // reaches only ~20-30% of line rate (consistent with Fig. 7's NaiveAG
  // series): per-ring-step proxy/synchronization overhead at P = 128.
  // Hierarchical schemes (2DTAR, HiTopKComm) run short m-rank rings and do
  // not pay it.
  static constexpr double flat_ring_step_overhead = 1.0e-3;  // seconds

  // ---- V100 device model defaults live in simgpu::GpuModelParams; the
  // sort-pass efficiency there is calibrated so exact_topk(128 M) ~ 1.2 s.

  // ---- single-GPU training throughput anchors (samples/s, mixed precision,
  // local batch 256 unless noted).  §5.5.2 and Table 4.
  static constexpr double resnet50_224_throughput = 1150.0;
  static constexpr double vgg19_224_throughput = 560.0;
  static constexpr double transformer_throughput = 32.0;
  // Table 4 anchors (ResNet-50, without LARS/IO overlap accounting).
  static constexpr double resnet50_96_throughput = 4400.0;
  static constexpr double resnet50_128_throughput = 3010.0;
  static constexpr double resnet50_224_dawnbench_throughput = 1240.0;
  static constexpr double resnet50_288_throughput = 710.0;  // batch 128

  // ---- §5.4 LARS anchors (seconds, single GPU, full model).
  static constexpr double lars_resnet50_seconds = 11e-3;
  static constexpr double lars_transformer_seconds = 30e-3;
  // PTO residual framework overhead at 128 GPUs (seconds): the measured PTO
  // times (7 ms / 14 ms) sit far above compute/P + all-gather, reflecting
  // TF graph-partitioning overhead.
  static constexpr double pto_framework_overhead_resnet50 = 6e-3;
  static constexpr double pto_framework_overhead_transformer = 13e-3;
};

}  // namespace hitopk::models
