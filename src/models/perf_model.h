// Single-GPU compute-time model, calibrated to the paper's measurements.
//
// The timeline simulator needs per-iteration feed-forward + backpropagation
// time on one V100 (mixed precision).  Rather than simulating convolutions,
// the model interpolates the paper's own single-GPU throughput anchors
// (§5.5.2 and Table 4; see models/calibration.h) in FLOP-proportional
// (resolution^2) space.
#pragma once

#include <string>

namespace hitopk::models {

class PerfModel {
 public:
  // Seconds of FF&BP compute for one local iteration (batch `local_batch`)
  // on one V100.  `resolution` is the square input size for CNNs and is
  // ignored for the Transformer (one sample = one 256-token sentence).
  static double ffbp_seconds(const std::string& model, int resolution,
                             int local_batch);

  // Single-GPU samples/second (pure compute) for the workload.
  static double single_gpu_throughput(const std::string& model, int resolution);

  // Fraction of FF&BP spent in the forward pass (standard 1:2 fwd:bwd).
  static constexpr double forward_fraction = 1.0 / 3.0;
};

}  // namespace hitopk::models
