// Parameter-tensor tables for the paper's three workloads.
//
// The communication and LARS experiments never need activations — only the
// exact list of parameter tensors (one per "layer" in the LARS sense): name,
// shape, and kind.  ResNet-50 has 161 such tensors (§4.2: "the ResNet-50
// model, which has 161 layers"), VGG-19 has 38, and the WMT Transformer is
// configured to the paper's ~110 M parameters (Fig. 8).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hitopk::models {

enum class LayerKind {
  kConvWeight,
  kDenseWeight,
  kBias,
  kBatchNormGamma,
  kBatchNormBeta,
  kLayerNormGamma,
  kLayerNormBeta,
  kEmbedding,
};

struct LayerSpec {
  std::string name;
  std::vector<size_t> shape;
  LayerKind kind = LayerKind::kDenseWeight;
  // Relative compute cost per parameter: FLOPs of a layer are roughly
  // params x output positions, so a conv at 56x56 does ~3000x more work per
  // parameter than a fully-connected layer.  Backward wall-time per layer —
  // which decides when its gradient becomes available for communication —
  // is proportional to size() * compute_scale.
  double compute_scale = 1.0;

  size_t size() const;
  double compute_weight() const { return static_cast<double>(size()) * compute_scale; }
};

struct ModelSpec {
  std::string name;
  std::vector<LayerSpec> layers;

  size_t total_params() const;
  size_t num_tensors() const { return layers.size(); }
  size_t max_tensor_size() const;
  // Gradient sizes in backpropagation order (last layer first), as the
  // timeline simulator consumes them.
  std::vector<size_t> backprop_order_sizes() const;

  // Per-tensor compute weights in the same order (see
  // LayerSpec::compute_weight); drives gradient-availability times.
  std::vector<double> backprop_order_compute_weights() const;
};

// ResNet-50 v1 (He et al. 2016), ImageNet head: 161 parameter tensors,
// ~25.56 M parameters.
ModelSpec resnet50();

// ResNet-152 (stages {3, 8, 36, 3}): ~60.2 M parameters; used by the
// cluster-shape ablations as a heavier CNN gradient.
ModelSpec resnet152();

// VGG-19 with the standard 3-layer classifier: 38 tensors, ~143.7 M params.
ModelSpec vgg19();

// Encoder-decoder Transformer (Vaswani et al. 2017) sized to the paper's
// ~110 M parameters: d_model 768, d_ff 3072, 6+6 layers, shared 14k-entry
// vocabulary embedding.
ModelSpec transformer_wmt();

// BERT-base (Devlin et al. 2019, the paper's motivating example: "training
// a BERT model on a single TPU takes more than 1.5 months"): 12 encoder
// layers, hidden 768, vocabulary 30522 — ~110 M parameters.
ModelSpec bert_base();

// Lookup by name ("resnet50", "resnet152", "vgg19", "transformer",
// "bert"); throws CheckError on unknown names.
ModelSpec model_by_name(const std::string& name);

}  // namespace hitopk::models
