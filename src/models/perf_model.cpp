#include "models/perf_model.h"

#include <vector>

#include "core/check.h"
#include "models/calibration.h"

namespace hitopk::models {
namespace {

struct Anchor {
  double res_sq;
  double seconds_per_sample;
};

// Piecewise-linear interpolation of per-sample time in resolution^2 space
// (conv FLOPs scale with H*W); clamped extrapolation at the slope of the
// nearest segment.
double interpolate(const std::vector<Anchor>& anchors, double res_sq) {
  HITOPK_CHECK_GE(anchors.size(), 2u);
  if (res_sq <= anchors.front().res_sq) {
    const auto& a = anchors[0];
    const auto& b = anchors[1];
    const double slope = (b.seconds_per_sample - a.seconds_per_sample) /
                         (b.res_sq - a.res_sq);
    const double t = a.seconds_per_sample + slope * (res_sq - a.res_sq);
    return std::max(t, 0.25 * a.seconds_per_sample);
  }
  for (size_t i = 0; i + 1 < anchors.size(); ++i) {
    const auto& a = anchors[i];
    const auto& b = anchors[i + 1];
    if (res_sq <= b.res_sq) {
      const double frac = (res_sq - a.res_sq) / (b.res_sq - a.res_sq);
      return a.seconds_per_sample +
             frac * (b.seconds_per_sample - a.seconds_per_sample);
    }
  }
  const auto& a = anchors[anchors.size() - 2];
  const auto& b = anchors.back();
  const double slope =
      (b.seconds_per_sample - a.seconds_per_sample) / (b.res_sq - a.res_sq);
  return b.seconds_per_sample + slope * (res_sq - b.res_sq);
}

const std::vector<Anchor>& resnet50_anchors() {
  static const std::vector<Anchor> anchors = {
      {96.0 * 96.0, 1.0 / Calibration::resnet50_96_throughput},
      {128.0 * 128.0, 1.0 / Calibration::resnet50_128_throughput},
      {224.0 * 224.0, 1.0 / Calibration::resnet50_224_dawnbench_throughput},
      {288.0 * 288.0, 1.0 / Calibration::resnet50_288_throughput},
  };
  return anchors;
}

}  // namespace

double PerfModel::single_gpu_throughput(const std::string& model,
                                        int resolution) {
  const double res_sq = static_cast<double>(resolution) * resolution;
  if (model == "resnet50") {
    return 1.0 / interpolate(resnet50_anchors(), res_sq);
  }
  if (model == "vgg19") {
    // Single anchor at 224^2; FLOP-proportional scaling elsewhere.
    const double t224 = 1.0 / Calibration::vgg19_224_throughput;
    return 1.0 / (t224 * res_sq / (224.0 * 224.0));
  }
  if (model == "transformer") {
    return Calibration::transformer_throughput;
  }
  HITOPK_CHECK(false) << "unknown model:" << model;
  return 0.0;
}

double PerfModel::ffbp_seconds(const std::string& model, int resolution,
                               int local_batch) {
  HITOPK_CHECK_GT(local_batch, 0);
  return static_cast<double>(local_batch) /
         single_gpu_throughput(model, resolution);
}

}  // namespace hitopk::models
