#include "models/model_zoo.h"

#include <algorithm>

#include "core/check.h"

namespace hitopk::models {
namespace {

// Builder helpers keep the topology tables readable.
class SpecBuilder {
 public:
  explicit SpecBuilder(std::string name) { spec_.name = std::move(name); }

  void conv(const std::string& name, size_t kh, size_t kw, size_t cin,
            size_t cout, double output_positions) {
    spec_.layers.push_back({name,
                            {kh, kw, cin, cout},
                            LayerKind::kConvWeight,
                            output_positions});
  }

  void bias(const std::string& name, size_t n) {
    spec_.layers.push_back({name, {n}, LayerKind::kBias, 1.0});
  }

  void batch_norm(const std::string& name, size_t channels,
                  double output_positions) {
    spec_.layers.push_back({name + ".gamma",
                            {channels},
                            LayerKind::kBatchNormGamma,
                            output_positions});
    spec_.layers.push_back({name + ".beta",
                            {channels},
                            LayerKind::kBatchNormBeta,
                            output_positions});
  }

  void dense(const std::string& name, size_t in, size_t out, bool bias,
             double scale = 1.0) {
    spec_.layers.push_back(
        {name + ".w", {in, out}, LayerKind::kDenseWeight, scale});
    if (bias) {
      spec_.layers.push_back({name + ".b", {out}, LayerKind::kBias, scale});
    }
  }

  void layer_norm(const std::string& name, size_t width, double scale = 1.0) {
    spec_.layers.push_back(
        {name + ".gamma", {width}, LayerKind::kLayerNormGamma, scale});
    spec_.layers.push_back(
        {name + ".beta", {width}, LayerKind::kLayerNormBeta, scale});
  }

  void embedding(const std::string& name, size_t vocab, size_t width,
                 double scale = 1.0) {
    spec_.layers.push_back({name, {vocab, width}, LayerKind::kEmbedding, scale});
  }

  ModelSpec build() { return std::move(spec_); }

 private:
  ModelSpec spec_;
};

}  // namespace

size_t LayerSpec::size() const {
  size_t n = 1;
  for (size_t dim : shape) n *= dim;
  return n;
}

size_t ModelSpec::total_params() const {
  size_t n = 0;
  for (const auto& layer : layers) n += layer.size();
  return n;
}

size_t ModelSpec::max_tensor_size() const {
  size_t best = 0;
  for (const auto& layer : layers) best = std::max(best, layer.size());
  return best;
}

std::vector<size_t> ModelSpec::backprop_order_sizes() const {
  std::vector<size_t> sizes;
  sizes.reserve(layers.size());
  for (auto it = layers.rbegin(); it != layers.rend(); ++it) {
    sizes.push_back(it->size());
  }
  return sizes;
}

std::vector<double> ModelSpec::backprop_order_compute_weights() const {
  std::vector<double> weights;
  weights.reserve(layers.size());
  for (auto it = layers.rbegin(); it != layers.rend(); ++it) {
    weights.push_back(it->compute_weight());
  }
  return weights;
}

namespace {

// Shared bottleneck-stage builder for the ResNet family.
ModelSpec build_resnet(const std::string& name, const int blocks_per_stage[4]) {
  SpecBuilder b(name);
  b.conv("conv1", 7, 7, 3, 64, 112.0 * 112.0);
  b.batch_norm("bn1", 64, 112.0 * 112.0);
  const size_t widths[4] = {64, 128, 256, 512};
  const double positions[4] = {56.0 * 56.0, 28.0 * 28.0, 14.0 * 14.0,
                               7.0 * 7.0};
  size_t in_channels = 64;
  for (int s = 0; s < 4; ++s) {
    const size_t width = widths[s];
    const size_t out_channels = width * 4;
    for (int block = 0; block < blocks_per_stage[s]; ++block) {
      const std::string prefix =
          "layer" + std::to_string(s + 1) + "." + std::to_string(block);
      b.conv(prefix + ".conv1", 1, 1, in_channels, width, positions[s]);
      b.batch_norm(prefix + ".bn1", width, positions[s]);
      b.conv(prefix + ".conv2", 3, 3, width, width, positions[s]);
      b.batch_norm(prefix + ".bn2", width, positions[s]);
      b.conv(prefix + ".conv3", 1, 1, width, out_channels, positions[s]);
      b.batch_norm(prefix + ".bn3", out_channels, positions[s]);
      if (block == 0) {
        b.conv(prefix + ".downsample", 1, 1, in_channels, out_channels,
               positions[s]);
        b.batch_norm(prefix + ".downsample_bn", out_channels, positions[s]);
      }
      in_channels = out_channels;
    }
  }
  b.dense("fc", 2048, 1000, /*bias=*/true);
  return b.build();
}

}  // namespace

ModelSpec resnet152() {
  const int blocks[4] = {3, 8, 36, 3};
  return build_resnet("resnet152", blocks);
}

ModelSpec bert_base() {
  SpecBuilder b("bert");
  const size_t hidden = 768;
  const size_t d_ff = 3072;
  b.embedding("word_embeddings", 30522, hidden, 0.1);
  b.embedding("position_embeddings", 512, hidden, 0.1);
  b.embedding("token_type_embeddings", 2, hidden, 0.1);
  b.layer_norm("embeddings.ln", hidden);
  for (int l = 0; l < 12; ++l) {
    const std::string prefix = "encoder." + std::to_string(l);
    for (const char* proj : {"q", "k", "v", "o"}) {
      b.dense(prefix + ".attn." + proj, hidden, hidden, true);
    }
    b.layer_norm(prefix + ".ln1", hidden);
    b.dense(prefix + ".ffn1", hidden, d_ff, true);
    b.dense(prefix + ".ffn2", d_ff, hidden, true);
    b.layer_norm(prefix + ".ln2", hidden);
  }
  b.dense("pooler", hidden, hidden, true);
  return b.build();
}

ModelSpec resnet50() {
  const int blocks[4] = {3, 4, 6, 3};
  return build_resnet("resnet50", blocks);
}

ModelSpec vgg19() {
  SpecBuilder b("vgg19");
  // Configuration E: channel widths per conv layer (pooling layers carry no
  // parameters).  Every conv and dense layer has a bias: 19 weight + 19
  // bias tensors.
  const size_t widths[] = {64,  64,  128, 128, 256, 256, 256, 256,
                           512, 512, 512, 512, 512, 512, 512, 512};
  // Output positions per conv block (224^2 input, pool after each block).
  const double positions[] = {224.0 * 224.0, 224.0 * 224.0, 112.0 * 112.0,
                              112.0 * 112.0, 56.0 * 56.0,   56.0 * 56.0,
                              56.0 * 56.0,   56.0 * 56.0,   28.0 * 28.0,
                              28.0 * 28.0,   28.0 * 28.0,   28.0 * 28.0,
                              14.0 * 14.0,   14.0 * 14.0,   14.0 * 14.0,
                              14.0 * 14.0};
  size_t in_channels = 3;
  for (int i = 0; i < 16; ++i) {
    const std::string name = "conv" + std::to_string(i + 1);
    b.conv(name + ".w", 3, 3, in_channels, widths[i], positions[i]);
    b.bias(name + ".b", widths[i]);
    in_channels = widths[i];
  }
  b.dense("fc1", 512 * 7 * 7, 4096, true);
  b.dense("fc2", 4096, 4096, true);
  b.dense("fc3", 4096, 1000, true);
  return b.build();
}

ModelSpec transformer_wmt() {
  SpecBuilder b("transformer");
  const size_t d_model = 768;
  const size_t d_ff = 3072;
  const size_t vocab = 14000;  // shared source/target BPE vocabulary
  // The embedding backward is a cheap scatter-add (no matmul): far less
  // wall-time per parameter than the dense layers, even though the tensor
  // is the largest in the model.
  b.embedding("shared_embedding", vocab, d_model, 0.1);
  b.embedding("positional", 512, d_model, 0.1);

  auto attention = [&](const std::string& prefix) {
    for (const char* proj : {"q", "k", "v", "o"}) {
      b.dense(prefix + "." + proj, d_model, d_model, true);
    }
  };
  auto ffn = [&](const std::string& prefix) {
    b.dense(prefix + ".ffn1", d_model, d_ff, true);
    b.dense(prefix + ".ffn2", d_ff, d_model, true);
  };

  for (int l = 0; l < 6; ++l) {
    const std::string prefix = "encoder." + std::to_string(l);
    attention(prefix + ".self_attn");
    ffn(prefix);
    b.layer_norm(prefix + ".ln1", d_model);
    b.layer_norm(prefix + ".ln2", d_model);
  }
  for (int l = 0; l < 6; ++l) {
    const std::string prefix = "decoder." + std::to_string(l);
    attention(prefix + ".self_attn");
    attention(prefix + ".cross_attn");
    ffn(prefix);
    b.layer_norm(prefix + ".ln1", d_model);
    b.layer_norm(prefix + ".ln2", d_model);
    b.layer_norm(prefix + ".ln3", d_model);
  }
  b.layer_norm("final_ln", d_model);
  return b.build();
}

ModelSpec model_by_name(const std::string& name) {
  if (name == "resnet50") return resnet50();
  if (name == "resnet152") return resnet152();
  if (name == "vgg19") return vgg19();
  if (name == "transformer") return transformer_wmt();
  if (name == "bert") return bert_base();
  HITOPK_CHECK(false) << "unknown model:" << name;
  return {};
}

}  // namespace hitopk::models
