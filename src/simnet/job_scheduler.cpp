#include "simnet/job_scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/check.h"
#include "core/rng.h"

namespace hitopk::simnet {

const char* placement_policy_name(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kPackByPod:
      return "pack-by-pod";
    case PlacementPolicy::kSpread:
      return "spread";
    case PlacementPolicy::kLocalityAware:
      return "locality-aware";
  }
  return "?";
}

JobScheduler::JobScheduler(Cluster& cluster, JobSchedulerOptions options)
    : cluster_(cluster),
      options_(options),
      busy_(static_cast<size_t>(cluster.world_size()), 0) {}

int JobScheduler::free_on_node(int node) const {
  const Topology& topo = cluster_.topology();
  int free = 0;
  for (int local = 0; local < topo.gpus_on_node(node); ++local) {
    if (rank_free(topo.rank_of(node, local))) ++free;
  }
  return free;
}

namespace {

// Takes up to `want` free ranks from `node` (lowest local rank first),
// marking them busy so repeated takes from one node within a single
// placement never hand out the same rank twice.
int take_from_node(const Topology& topo, std::vector<char>& busy, int node,
                   int want, std::vector<int>& out) {
  int taken = 0;
  for (int local = 0; local < topo.gpus_on_node(node) && taken < want;
       ++local) {
    const int rank = topo.rank_of(node, local);
    if (!busy[static_cast<size_t>(rank)]) {
      busy[static_cast<size_t>(rank)] = 1;
      out.push_back(rank);
      ++taken;
    }
  }
  return taken;
}

}  // namespace

std::vector<int> JobScheduler::place(int gpus) const {
  const Topology& topo = cluster_.topology();
  HITOPK_CHECK(gpus >= 1 && gpus <= topo.world_size())
      << "gang of " << gpus << " GPUs can never fit a world of "
      << topo.world_size();

  std::vector<int> node_free(static_cast<size_t>(topo.nodes()));
  int total_free = 0;
  for (int n = 0; n < topo.nodes(); ++n) {
    node_free[static_cast<size_t>(n)] = free_on_node(n);
    total_free += node_free[static_cast<size_t>(n)];
  }
  if (total_free < gpus) return {};

  std::vector<int> ranks;
  ranks.reserve(static_cast<size_t>(gpus));
  // Scratch occupancy: taken ranks are marked here so one placement never
  // hands a rank out twice; the real busy_ map is updated on admission.
  std::vector<char> scratch = busy_;

  // Fills `want` GPUs from the nodes of `pod` (pod < 0: every node),
  // fragments first (best-fit: least free GPUs, ties on node id).
  auto fill_packed = [&](int pod, int want) {
    std::vector<int> order;
    for (int n = 0; n < topo.nodes(); ++n) {
      if (node_free[static_cast<size_t>(n)] > 0 &&
          (pod < 0 || topo.pod_of(n) == pod)) {
        order.push_back(n);
      }
    }
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return node_free[static_cast<size_t>(a)] <
             node_free[static_cast<size_t>(b)];
    });
    for (int n : order) {
      if (want == 0) break;
      want -= take_from_node(topo, scratch, n, want, ranks);
    }
  };

  switch (options_.policy) {
    case PlacementPolicy::kSpread: {
      // One GPU at a time from the node with the most free GPUs.
      int want = gpus;
      while (want > 0) {
        int best = -1;
        for (int n = 0; n < topo.nodes(); ++n) {
          if (node_free[static_cast<size_t>(n)] >
              (best < 0 ? 0 : node_free[static_cast<size_t>(best)])) {
            best = n;
          }
        }
        HITOPK_CHECK(best >= 0);
        take_from_node(topo, scratch, best, 1, ranks);
        --node_free[static_cast<size_t>(best)];
        --want;
      }
      break;
    }
    case PlacementPolicy::kLocalityAware: {
      // Smallest single node that fits, else smallest single pod, else pack.
      int best_node = -1;
      for (int n = 0; n < topo.nodes(); ++n) {
        const int free = node_free[static_cast<size_t>(n)];
        if (free >= gpus &&
            (best_node < 0 ||
             free < node_free[static_cast<size_t>(best_node)])) {
          best_node = n;
        }
      }
      if (best_node >= 0) {
        take_from_node(topo, scratch, best_node, gpus, ranks);
        break;
      }
      std::vector<int> pod_free(static_cast<size_t>(topo.pods()), 0);
      for (int n = 0; n < topo.nodes(); ++n) {
        pod_free[static_cast<size_t>(topo.pod_of(n))] +=
            node_free[static_cast<size_t>(n)];
      }
      int best_pod = -1;
      for (int p = 0; p < topo.pods(); ++p) {
        const int free = pod_free[static_cast<size_t>(p)];
        if (free >= gpus &&
            (best_pod < 0 || free < pod_free[static_cast<size_t>(best_pod)])) {
          best_pod = p;
        }
      }
      fill_packed(best_pod, gpus);  // -1 falls through to global packing
      break;
    }
    case PlacementPolicy::kPackByPod: {
      // Best-fit pod (least free capacity that still fits), else span pods.
      std::vector<int> pod_free(static_cast<size_t>(topo.pods()), 0);
      for (int n = 0; n < topo.nodes(); ++n) {
        pod_free[static_cast<size_t>(topo.pod_of(n))] +=
            node_free[static_cast<size_t>(n)];
      }
      int best_pod = -1;
      for (int p = 0; p < topo.pods(); ++p) {
        const int free = pod_free[static_cast<size_t>(p)];
        if (free >= gpus &&
            (best_pod < 0 || free < pod_free[static_cast<size_t>(best_pod)])) {
          best_pod = p;
        }
      }
      fill_packed(best_pod, gpus);
      break;
    }
  }

  HITOPK_CHECK_EQ(ranks.size(), static_cast<size_t>(gpus));
  std::sort(ranks.begin(), ranks.end());
  return ranks;
}

void JobScheduler::admit_from_queue(const JobBody& /*body*/, double now) {
  for (size_t qi = 0; qi < queue_.size();) {
    JobRecord& rec = records_[queue_[qi]];
    std::vector<int> ranks = place(rec.spec.gpus);
    if (ranks.empty()) {
      if (!options_.backfill) return;  // strict FIFO: blocked head blocks all
      ++qi;
      continue;
    }
    for (int r : ranks) busy_[static_cast<size_t>(r)] = 1;
    rec.ranks = std::move(ranks);
    rec.start = now;
    running_.push_back(Running{queue_[qi], now, rec.spec.iterations});
    queue_.erase(queue_.begin() + static_cast<long>(qi));
  }
}

std::vector<JobRecord> JobScheduler::run(const std::vector<JobSpec>& jobs,
                                         const JobBody& body) {
  records_.clear();
  running_.clear();
  queue_.clear();
  std::fill(busy_.begin(), busy_.end(), 0);

  records_.reserve(jobs.size());
  for (const JobSpec& spec : jobs) {
    HITOPK_CHECK(spec.iterations >= 1);
    JobRecord rec;
    rec.spec = spec;
    records_.push_back(std::move(rec));
  }
  // Arrival order: time, then job id (deterministic for simultaneous
  // arrivals).
  std::vector<size_t> arrivals(records_.size());
  for (size_t i = 0; i < arrivals.size(); ++i) arrivals[i] = i;
  std::stable_sort(arrivals.begin(), arrivals.end(), [&](size_t a, size_t b) {
    if (records_[a].spec.arrival != records_[b].spec.arrival) {
      return records_[a].spec.arrival < records_[b].spec.arrival;
    }
    return records_[a].spec.id < records_[b].spec.id;
  });

  constexpr double kInf = std::numeric_limits<double>::infinity();
  size_t next_arrival = 0;
  while (next_arrival < arrivals.size() || !running_.empty() ||
         !queue_.empty()) {
    const double arrival_t = next_arrival < arrivals.size()
                                 ? records_[arrivals[next_arrival]].spec.arrival
                                 : kInf;
    size_t run_i = running_.size();
    double run_t = kInf;
    for (size_t i = 0; i < running_.size(); ++i) {
      const Running& r = running_[i];
      if (r.clock < run_t ||
          (r.clock == run_t &&
           records_[r.job].spec.id < records_[running_[run_i].job].spec.id)) {
        run_t = r.clock;
        run_i = i;
      }
    }

    if (arrival_t <= run_t) {
      // Admit the arrival (or queue it) before advancing anyone past it.
      HITOPK_CHECK(next_arrival < arrivals.size())
          << "scheduler deadlock: queued jobs but nothing running";
      queue_.push_back(arrivals[next_arrival]);
      ++next_arrival;
      admit_from_queue(body, arrival_t);
      continue;
    }

    // Advance the earliest running job by one iteration.
    Running& r = running_[run_i];
    JobRecord& rec = records_[r.job];
    const JobIteration it = body(cluster_, rec.spec, rec.ranks, r.clock);
    HITOPK_CHECK(it.finish >= r.clock);
    rec.finish = it.finish;
    if (it.aborted) {
      rec.aborted = true;
    } else {
      ++rec.iterations_done;
      --r.remaining;
      r.clock = it.finish;
    }
    if (it.aborted || r.remaining == 0) {
      for (int rank : rec.ranks) busy_[static_cast<size_t>(rank)] = 0;
      running_.erase(running_.begin() + static_cast<long>(run_i));
      admit_from_queue(body, it.finish);
    }
  }

  std::vector<JobRecord> out = std::move(records_);
  records_.clear();
  std::sort(out.begin(), out.end(), [](const JobRecord& a, const JobRecord& b) {
    return a.spec.id < b.spec.id;
  });
  return out;
}

// ---- trace generation & replay --------------------------------------------

std::vector<JobSpec> generate_trace(const TraceOptions& options) {
  HITOPK_CHECK(!options.gang_sizes.empty());
  HITOPK_CHECK(options.gang_weights.empty() ||
               options.gang_weights.size() == options.gang_sizes.size());
  HITOPK_CHECK(options.min_iterations >= 1 &&
               options.max_iterations >= options.min_iterations);
  Rng rng(options.seed);
  double total_weight = 0.0;
  for (double w : options.gang_weights) total_weight += w;

  std::vector<JobSpec> jobs;
  jobs.reserve(static_cast<size_t>(options.jobs));
  double t = 0.0;
  for (int i = 0; i < options.jobs; ++i) {
    t += -options.mean_interarrival_seconds * std::log(1.0 - rng.uniform());
    JobSpec spec;
    spec.id = i + 1;  // ids >= 1: never alias kDefaultJob
    spec.arrival = t;
    if (options.gang_weights.empty()) {
      spec.gpus = options.gang_sizes[rng.uniform_index(
          options.gang_sizes.size())];
    } else {
      double u = rng.uniform() * total_weight;
      size_t pick = 0;
      while (pick + 1 < options.gang_sizes.size() &&
             u >= options.gang_weights[pick]) {
        u -= options.gang_weights[pick];
        ++pick;
      }
      spec.gpus = options.gang_sizes[pick];
    }
    spec.iterations =
        options.min_iterations +
        static_cast<int>(rng.uniform_index(static_cast<uint64_t>(
            options.max_iterations - options.min_iterations + 1)));
    spec.bytes = options.bytes_per_gpu;
    jobs.push_back(spec);
  }
  return jobs;
}

namespace {

double percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t n = sorted.size();
  size_t idx = static_cast<size_t>(
      std::ceil(q * static_cast<double>(n)));  // nearest-rank
  if (idx > 0) --idx;
  if (idx >= n) idx = n - 1;
  return sorted[idx];
}

}  // namespace

ReplayMetrics replay_trace(const Topology& topology,
                           const std::vector<JobSpec>& jobs,
                           const JobBody& body, PlacementPolicy policy,
                           bool backfill) {
  // Per-job isolated baseline: the job alone on a fresh cluster, same
  // placement policy (an empty cluster places identically regardless of
  // arrival time).
  std::vector<JobSpec> specs = jobs;
  for (JobSpec& spec : specs) {
    Cluster iso(topology);
    JobScheduler sched(iso, {policy, backfill});
    JobSpec alone = spec;
    alone.arrival = 0.0;
    const std::vector<JobRecord> rec = sched.run({alone}, body);
    HITOPK_CHECK_EQ(rec.size(), size_t{1});
    spec.isolated_seconds = rec[0].finish;
  }

  Cluster shared(topology);
  JobScheduler sched(shared, {policy, backfill});
  ReplayMetrics metrics;
  metrics.records = sched.run(specs, body);

  double first_arrival = std::numeric_limits<double>::infinity();
  double last_finish = 0.0;
  double isolated_sum = 0.0;
  double slowdown_sum = 0.0;
  size_t completed = 0;
  std::vector<double> jcts;
  for (const JobRecord& rec : metrics.records) {
    first_arrival = std::min(first_arrival, rec.spec.arrival);
    last_finish = std::max(last_finish, rec.finish);
    if (rec.aborted) continue;
    ++completed;
    isolated_sum += rec.spec.isolated_seconds;
    slowdown_sum += rec.slowdown();
    jcts.push_back(rec.jct());
  }
  std::sort(jcts.begin(), jcts.end());
  metrics.makespan =
      metrics.records.empty() ? 0.0 : last_finish - first_arrival;
  metrics.goodput =
      metrics.makespan > 0.0 ? isolated_sum / metrics.makespan : 0.0;
  metrics.mean_slowdown =
      completed > 0 ? slowdown_sum / static_cast<double>(completed) : 0.0;
  metrics.p50_jct = percentile(jcts, 0.50);
  metrics.p95_jct = percentile(jcts, 0.95);
  metrics.p99_jct = percentile(jcts, 0.99);
  return metrics;
}

}  // namespace hitopk::simnet
