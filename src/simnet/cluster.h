// Timed message-passing engine over a Topology.
//
// The Cluster does not own tensor data — collectives keep per-rank buffers —
// it owns *time*: per-GPU send/recv ports and per-node NIC ports, each a
// "free at" timestamp.  A transfer starts when the payload is ready and all
// required ports are free, and occupies those ports for its duration.  This
// reproduces the two properties the paper's analysis relies on:
//
//   1. intra-node transfers use dedicated NVLink peer ports (GPUs move data
//      in parallel inside a node), and
//   2. every inter-node transfer serializes through the node's single NIC,
//      so n concurrent inter-node streams from one node share 25 GbE.
//
// When the Topology declares a fat-tree oversubscription factor f > 1, a
// third constraint applies (service at the aggregate rate, processor
// sharing like the NIC, while the flow still completes at its per-flow
// rate):
//
//   - single switch layer (nodes_per_pod == 0): every inter-node transfer
//     shares one core port of capacity nodes * nic_rate / f;
//   - edge pods (0 < nodes_per_pod < nodes): transfers between nodes of
//     one pod see only the NIC ports (the edge switch is non-blocking),
//     while cross-pod transfers also occupy the source pod's uplink send
//     port and the destination pod's uplink recv port, each of capacity
//     nodes_per_pod * nic_rate / f.
//
// With f == 1 neither layer is consulted, so non-blocking topologies keep
// their exact pre-existing timings.
//
// All collectives are simulated deterministically in a single OS thread;
// simulated concurrency comes from the port timestamps.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "simnet/fault.h"
#include "simnet/topology.h"

namespace hitopk::simnet {

// One recorded transfer (tracing enabled only).
struct TraceEvent {
  int src = 0;
  int dst = 0;
  size_t bytes = 0;
  double start = 0.0;
  double duration = 0.0;
  bool inter_node = false;
};

// Result of try_send under a FaultPlan.  When `delivered` is false the
// transfer never happened: no port was occupied, no byte was counted, and
// `time` is the instant the failure became observable (the would-be start);
// the caller charges the plan's detection timeout on top.  `degraded` marks
// deliveries that paid a degradation window or transient retries.
struct SendOutcome {
  bool delivered = true;
  double time = 0.0;
  int dead_rank = -1;
  int retries = 0;
  bool degraded = false;
};

class Cluster {
 public:
  explicit Cluster(Topology topology);

  const Topology& topology() const { return topology_; }
  int world_size() const { return topology_.world_size(); }

  // Resets all port clocks to zero (start of a fresh measurement).
  void reset();

  // Sends `bytes` from rank src to rank dst.  The transfer starts at
  // max(data_ready, ports free) and returns its completion time.
  // extra_seconds models per-message protocol overhead that occupies the
  // ports for the whole duration (e.g. proxy-thread handoff on flat
  // world-scale rings, see models/calibration.h).
  // With a fault plan installed, a send touching a dead rank is a contract
  // violation here — fault-aware callers use try_send instead.
  double send(int src, int dst, size_t bytes, double data_ready,
              double extra_seconds = 0.0);

  // Fault-aware variant: consults the installed FaultPlan (if any).  A send
  // whose endpoints are alive is delivered — possibly slower, through
  // degradation windows (inter-node only) and transient retries — and
  // occupies ports exactly like send().  A send touching a preempted rank
  // returns delivered=false without mutating any state, so the caller can
  // abort and rebuild.  Without a plan this is bit-identical to send().
  SendOutcome try_send(int src, int dst, size_t bytes, double data_ready,
                       double extra_seconds = 0.0);

  // Installs a fault script (non-owning; nullptr disables).  The plan is
  // kept across reset() so a reset cluster replays the same script.
  void set_fault_plan(const FaultPlan* plan) { fault_plan_ = plan; }
  const FaultPlan* fault_plan() const { return fault_plan_; }

  // Models local (non-communication) work on a rank: occupies no ports,
  // returns ready + duration.  Exists so call sites read uniformly.
  static double compute(double ready, double duration);

  // Largest port timestamp: when the whole cluster is quiescent.
  double quiescent_time() const;

  // Cumulative bytes that crossed node boundaries / stayed intra-node since
  // the last reset (traffic accounting for the benches).
  size_t inter_node_bytes() const { return inter_node_bytes_; }
  size_t intra_node_bytes() const { return intra_node_bytes_; }

  // ---- transfer tracing (off by default; reset() clears events).
  void enable_tracing(bool enabled = true) { tracing_ = enabled; }
  const std::vector<TraceEvent>& trace() const { return trace_; }

  // Writes the recorded transfers as a Chrome-tracing (chrome://tracing /
  // Perfetto) JSON document: one track per rank, microsecond timestamps.
  void write_chrome_trace(std::ostream& os,
                          const std::string& process_name = "cluster") const;

 private:
  struct Port {
    double send_free = 0.0;
    double recv_free = 0.0;
  };

  Topology topology_;
  std::vector<Port> gpu_ports_;   // one per rank
  std::vector<Port> nic_ports_;   // one per node
  std::vector<Port> pod_ports_;   // one uplink per pod (oversub > 1, pods > 1)
  double core_free_ = 0.0;        // shared fat-tree core (oversub > 1, 1 pod)
  double core_beta_ = 0.0;        // seconds/byte of the aggregate core
  double uplink_beta_ = 0.0;      // seconds/byte of one pod uplink
  size_t inter_node_bytes_ = 0;
  size_t intra_node_bytes_ = 0;
  bool tracing_ = false;
  std::vector<TraceEvent> trace_;
  const FaultPlan* fault_plan_ = nullptr;  // non-owning
  uint64_t send_seq_ = 0;  // transient-failure hash key; cleared by reset()
};

}  // namespace hitopk::simnet
