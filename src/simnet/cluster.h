// Timed message-passing engine over a Topology — multi-tenant edition.
//
// The Cluster does not own tensor data — collectives keep per-rank buffers —
// it owns *time*.  Transfers are submitted as *flows*: Flow{job, src, dst,
// bytes, ready, extra} resolves to the port set it occupies (the endpoint
// GPU ports, the per-node NICs, and — on oversubscribed fat trees — the pod
// uplinks or the shared core) and returns a structured FlowOutcome.  Each
// contended port keeps a *reservation timeline* instead of one scalar
// "free at" clock:
//
//   - flows of ONE job serialize on a port exactly like the original
//     single-tenant engine: a job-keyed free-at clock advances by the
//     port's service time (the NIC serves a flow's bytes at aggregate line
//     rate and is then free for the job's next flow, while the flow itself
//     completes at its slower per-flow rate — processor sharing in time);
//   - flows of DIFFERENT jobs overlapping on a port do not queue behind
//     each other; they processor-share the port rate.  A flow whose service
//     window overlaps reservations of k-1 other jobs on its bottleneck port
//     runs at 1/k of its isolated rate (duration and service stretch by
//     the share factor, and the stretched window is what later flows see).
//
// A single job on an otherwise-idle cluster never observes a share factor,
// takes the exact arithmetic path of the legacy scalar clocks, and so
// reproduces every pre-refactor timing bit for bit (pinned by
// schedule_equivalence_test and the BENCH reference JSONs).
//
// The two properties the paper's analysis relies on are unchanged:
//
//   1. intra-node transfers use dedicated NVLink peer ports (GPUs move data
//      in parallel inside a node), and
//   2. every inter-node transfer serializes through the node's single NIC,
//      so n concurrent inter-node streams from one node share 25 GbE.
//
// When the Topology declares a fat-tree oversubscription factor f > 1, a
// third constraint applies exactly as before (single-switch core of
// capacity nodes * nic_rate / f, or per-pod uplinks of capacity
// nodes_per_pod * nic_rate / f); with f == 1 neither layer is consulted.
//
// All flows are simulated deterministically in a single OS thread;
// simulated concurrency comes from the port timelines.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "simnet/fault.h"
#include "simnet/topology.h"

namespace hitopk::simnet {

// Job id used by the deprecated send()/try_send() wrappers and every
// pre-multi-tenant call site.  Job ids are small non-negative integers;
// the JobScheduler hands out ids >= 1 so tenant traffic never aliases the
// default lane.
inline constexpr int kDefaultJob = 0;

// One transfer request.  `ready` is the instant the payload is available at
// the source; `extra_seconds` models per-message protocol overhead that
// occupies the ports for the whole duration (e.g. proxy-thread handoff on
// flat world-scale rings, see models/calibration.h).
struct Flow {
  int job = kDefaultJob;
  int src = 0;
  int dst = 0;
  size_t bytes = 0;
  double ready = 0.0;
  double extra_seconds = 0.0;
};

// Structured result of submitting a Flow.  When `delivered` is false the
// transfer never happened: no port was reserved, no byte was counted, and
// `time` is the instant the failure became observable (the would-be start);
// the caller charges the fault plan's detection timeout on top.
struct FlowOutcome {
  bool delivered = true;
  double start = 0.0;   // instant the flow occupied its ports
  double time = 0.0;    // completion (or failure-observable instant)
  int dead_rank = -1;   // preempted endpoint when !delivered
  int retries = 0;      // transient re-sends paid by this flow
  bool degraded = false;  // paid a degradation window or retries
  double share = 1.0;   // processor-sharing factor (1 = exclusive ports)
  bool inter_node = false;
};

// Legacy result shape of try_send (kept so fault-aware callers and
// out-of-tree code keep compiling; field-for-field a FlowOutcome subset).
struct SendOutcome {
  bool delivered = true;
  double time = 0.0;
  int dead_rank = -1;
  int retries = 0;
  bool degraded = false;
};

// One recorded transfer (tracing enabled only).
struct TraceEvent {
  int src = 0;
  int dst = 0;
  size_t bytes = 0;
  double start = 0.0;
  double duration = 0.0;
  bool inter_node = false;
  int job = kDefaultJob;
  double share = 1.0;
};

// Reservation timeline of one direction of a contended port (a NIC, a pod
// uplink, or the fat-tree core).  Per job it keeps a free-at clock (the
// job's own flows serialize, exactly the legacy scalar behavior) plus the
// merged intervals the job's flows have reserved; cross-job contention is
// answered by counting *other* jobs with reservations overlapping a
// window.  Back-to-back reservations of one job merge into a single
// interval, so a busy streak costs O(1) memory, and each lane keeps at most
// kMaxIntervals intervals (oldest dropped — older history can only be
// overlapped by flows that have already been submitted).
class PortTimeline {
 public:
  // Earliest instant `job` may start its next flow through this port.
  double free_at(int job) const;
  // Number of distinct jobs other than `job` holding a reservation
  // overlapping [begin, end).
  int sharers(int job, double begin, double end) const;
  // Records that the port serves `job` on [begin, end) and advances the
  // job's free-at clock to `end`.  begin must be >= free_at(job).
  void reserve(int job, double begin, double end);
  void clear() { lanes_.clear(); }
  // Largest free-at clock over every job (quiescence).
  double max_free() const;

 private:
  struct Interval {
    double begin = 0.0;
    double end = 0.0;
  };
  struct Lane {
    int job = kDefaultJob;
    double free = 0.0;
    std::vector<Interval> intervals;  // sorted, disjoint, merged
  };
  static constexpr size_t kMaxIntervals = 64;

  Lane& lane(int job);
  const Lane* find(int job) const;

  std::vector<Lane> lanes_;  // few jobs per port: linear scan
};

class Cluster {
 public:
  explicit Cluster(Topology topology);

  const Topology& topology() const { return topology_; }
  int world_size() const { return topology_.world_size(); }

  // Resets all port timelines to zero (start of a fresh measurement).
  void reset();

  // Submits one flow.  The transfer starts at max(flow.ready, ports free
  // for flow.job) and the outcome reports start/completion plus the
  // processor-sharing factor its bottleneck port imposed.  With a fault
  // plan installed, a flow touching a preempted rank returns
  // delivered=false without mutating any state.
  FlowOutcome submit(const Flow& flow);

  // Deprecated single-tenant wrappers: forward to submit() with
  // kDefaultJob.  Bit-identical to the flow path (regression-pinned), kept
  // so out-of-tree callers keep compiling.  send() on a flow touching a
  // preempted rank is a contract violation (use try_send / submit).
  double send(int src, int dst, size_t bytes, double data_ready,
              double extra_seconds = 0.0);
  SendOutcome try_send(int src, int dst, size_t bytes, double data_ready,
                       double extra_seconds = 0.0);

  // Installs a fault script (non-owning; nullptr disables).  The plan is
  // kept across reset() so a reset cluster replays the same script.
  void set_fault_plan(const FaultPlan* plan) { fault_plan_ = plan; }
  const FaultPlan* fault_plan() const { return fault_plan_; }

  // Models local (non-communication) work on a rank: occupies no ports,
  // returns ready + duration.  Exists so call sites read uniformly.
  static double compute(double ready, double duration);

  // Largest port timestamp: when the whole cluster is quiescent.
  double quiescent_time() const;
  // True when no flow has been submitted since construction/reset() —
  // the state in which contention-aware planning must match idle planning.
  bool idle() const { return quiescent_time() == 0.0 && traffic_.empty(); }

  // Cumulative bytes that crossed node boundaries / stayed intra-node since
  // the last reset.  The no-argument totals are the sum over every job.
  size_t inter_node_bytes() const { return inter_node_bytes_; }
  size_t intra_node_bytes() const { return intra_node_bytes_; }
  size_t inter_node_bytes(int job) const;
  size_t intra_node_bytes(int job) const;
  // Jobs that have moved at least one byte, ascending.
  std::vector<int> traffic_jobs() const;

  // ---- transfer tracing (off by default; reset() clears events).
  void enable_tracing(bool enabled = true) { tracing_ = enabled; }
  const std::vector<TraceEvent>& trace() const { return trace_; }

  // Writes the recorded transfers as a Chrome-tracing (chrome://tracing /
  // Perfetto) JSON document.  Single-tenant traces keep the original
  // layout (one process, one track per rank); traces containing jobs other
  // than kDefaultJob get one process per job (pid = job + 1) with per-rank
  // tracks under it, so concurrent tenants are visually separable.
  void write_chrome_trace(std::ostream& os,
                          const std::string& process_name = "cluster") const;

 private:
  struct Port {
    double send_free = 0.0;
    double recv_free = 0.0;
  };
  struct JobTraffic {
    size_t inter = 0;
    size_t intra = 0;
  };

  Topology topology_;
  std::vector<Port> gpu_ports_;          // one per rank (tenant-exclusive)
  std::vector<PortTimeline> nic_send_;   // one per node
  std::vector<PortTimeline> nic_recv_;
  std::vector<PortTimeline> pod_send_;   // one uplink per pod (oversub > 1)
  std::vector<PortTimeline> pod_recv_;
  PortTimeline core_;             // shared fat-tree core (oversub > 1, 1 pod)
  double core_beta_ = 0.0;        // seconds/byte of the aggregate core
  double uplink_beta_ = 0.0;      // seconds/byte of one pod uplink
  size_t inter_node_bytes_ = 0;
  size_t intra_node_bytes_ = 0;
  std::map<int, JobTraffic> traffic_;  // ordered: deterministic iteration
  bool tracing_ = false;
  std::vector<TraceEvent> trace_;
  const FaultPlan* fault_plan_ = nullptr;  // non-owning
  uint64_t send_seq_ = 0;  // transient-failure hash key; cleared by reset()
};

}  // namespace hitopk::simnet
