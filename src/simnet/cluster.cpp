#include "simnet/cluster.h"

#include <algorithm>
#include <ostream>

#include "core/check.h"

namespace hitopk::simnet {

Cluster::Cluster(Topology topology)
    : topology_(std::move(topology)),
      gpu_ports_(static_cast<size_t>(topology_.world_size())),
      nic_ports_(static_cast<size_t>(topology_.nodes())) {
  if (topology_.oversubscription() > 1.0) {
    if (topology_.pods() > 1) {
      // Edge/aggregation fat tree: one uplink per pod of capacity
      // nodes_per_pod * nic_rate / f, as seconds/byte.
      pod_ports_.resize(static_cast<size_t>(topology_.pods()));
      uplink_beta_ = topology_.nic_beta() * topology_.oversubscription() /
                     static_cast<double>(topology_.nodes_per_pod());
    } else {
      // Single switch layer: aggregate core capacity nodes * nic_rate / f.
      core_beta_ = topology_.nic_beta() * topology_.oversubscription() /
                   static_cast<double>(topology_.nodes());
    }
  }
}

void Cluster::reset() {
  for (auto& p : gpu_ports_) p = Port{};
  for (auto& p : nic_ports_) p = Port{};
  for (auto& p : pod_ports_) p = Port{};
  core_free_ = 0.0;
  inter_node_bytes_ = 0;
  intra_node_bytes_ = 0;
  trace_.clear();
  send_seq_ = 0;
}

double Cluster::send(int src, int dst, size_t bytes, double data_ready,
                     double extra_seconds) {
  const SendOutcome outcome =
      try_send(src, dst, bytes, data_ready, extra_seconds);
  HITOPK_CHECK(outcome.delivered)
      << "send touched preempted rank" << outcome.dead_rank
      << "at t=" << outcome.time << "(use try_send on fault-injected runs)";
  return outcome.time;
}

SendOutcome Cluster::try_send(int src, int dst, size_t bytes,
                              double data_ready, double extra_seconds) {
  HITOPK_CHECK(src >= 0 && src < world_size());
  HITOPK_CHECK(dst >= 0 && dst < world_size());
  HITOPK_CHECK_NE(src, dst);

  const bool crosses_node = !topology_.same_node(src, dst);
  const LinkParams& link = topology_.link_between(src, dst);
  double duration = link.transfer_seconds(bytes) + extra_seconds;

  const int src_node = crosses_node ? topology_.node_of(src) : 0;
  const int dst_node = crosses_node ? topology_.node_of(dst) : 0;
  const bool crosses_pod =
      crosses_node && uplink_beta_ > 0.0 &&
      !topology_.same_pod(src_node, dst_node);

  double start = std::max(data_ready, gpu_ports_[src].send_free);
  start = std::max(start, gpu_ports_[dst].recv_free);
  if (crosses_node) {
    start = std::max(start, nic_ports_[src_node].send_free);
    start = std::max(start, nic_ports_[dst_node].recv_free);
    if (core_beta_ > 0.0) start = std::max(start, core_free_);
    if (crosses_pod) {
      start = std::max(start, pod_ports_[topology_.pod_of(src_node)].send_free);
      start = std::max(start, pod_ports_[topology_.pod_of(dst_node)].recv_free);
    }
  }

  SendOutcome outcome;
  double nic_degrade = 1.0;
  const bool faults = fault_plan_ != nullptr && !fault_plan_->empty();
  if (faults) {
    // Message-boundary fault granularity: a transfer whose start falls in a
    // preemption window never happens; nothing below this point runs, so a
    // failed send leaves ports, counters, and the trace untouched.
    if (!fault_plan_->alive(src, start)) {
      outcome.delivered = false;
      outcome.dead_rank = src;
      outcome.time = start;
      return outcome;
    }
    if (!fault_plan_->alive(dst, start)) {
      outcome.delivered = false;
      outcome.dead_rank = dst;
      outcome.time = start;
      return outcome;
    }
    if (crosses_node) {
      nic_degrade =
          std::max(fault_plan_->degrade_factor(topology_.node_of(src), start),
                   fault_plan_->degrade_factor(topology_.node_of(dst), start));
      duration *= nic_degrade;
    }
    outcome.retries = fault_plan_->transient_attempts(send_seq_++);
    if (outcome.retries > 0) {
      // Each failed attempt wasted one full (possibly degraded) transfer
      // plus the backoff before the retry.
      duration += outcome.retries *
                  (duration + fault_plan_->transient_backoff());
    }
    outcome.degraded = nic_degrade > 1.0 || outcome.retries > 0;
  }
  const double done = start + duration;
  outcome.time = done;

  gpu_ports_[src].send_free = done;
  gpu_ports_[dst].recv_free = done;
  if (crosses_node) {
    // The NIC serves the flow's bytes at aggregate line rate and is then
    // free for the next flow — processor sharing across concurrent flows —
    // while the flow itself completes at its (slower) per-flow rate.
    const double nic_service =
        (static_cast<double>(bytes) * topology_.nic_beta() + extra_seconds) *
        nic_degrade;
    nic_ports_[src_node].send_free = start + nic_service;
    nic_ports_[dst_node].recv_free = start + nic_service;
    if (core_beta_ > 0.0) {
      // Shared oversubscribed core: serves the flow's bytes at the
      // aggregate core rate, then frees for the next inter-node flow.
      core_free_ = start + static_cast<double>(bytes) * core_beta_;
    }
    if (crosses_pod) {
      // Oversubscribed pod uplinks, same processor-sharing treatment.
      const double uplink_service =
          static_cast<double>(bytes) * uplink_beta_;
      pod_ports_[topology_.pod_of(src_node)].send_free =
          start + uplink_service;
      pod_ports_[topology_.pod_of(dst_node)].recv_free =
          start + uplink_service;
    }
    inter_node_bytes_ += bytes;
  } else {
    intra_node_bytes_ += bytes;
  }
  if (tracing_) {
    trace_.push_back(
        TraceEvent{src, dst, bytes, start, duration, crosses_node});
  }
  return outcome;
}

void Cluster::write_chrome_trace(std::ostream& os,
                                 const std::string& process_name) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\""
     << process_name << "\"}}";
  for (int rank = 0; rank < world_size(); ++rank) {
    os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << rank
       << ",\"args\":{\"name\":\"gpu" << rank << " (node"
       << topology_.node_of(rank) << ")\"}}";
  }
  for (const auto& event : trace_) {
    // Complete events ("X") on the *destination* rank's track: that is the
    // port the transfer occupies for its duration.
    os << ",\n{\"name\":\"" << (event.inter_node ? "inter " : "intra ")
       << event.src << "->" << event.dst << "\",\"cat\":\""
       << (event.inter_node ? "nic" : "nvlink") << "\",\"ph\":\"X\",\"ts\":"
       << event.start * 1e6 << ",\"dur\":" << event.duration * 1e6
       << ",\"pid\":1,\"tid\":" << event.dst << ",\"args\":{\"bytes\":"
       << event.bytes << "}}";
  }
  os << "\n]}\n";
}

double Cluster::compute(double ready, double duration) {
  return ready + duration;
}

double Cluster::quiescent_time() const {
  double t = 0.0;
  for (const auto& p : gpu_ports_) {
    t = std::max({t, p.send_free, p.recv_free});
  }
  for (const auto& p : nic_ports_) {
    t = std::max({t, p.send_free, p.recv_free});
  }
  for (const auto& p : pod_ports_) {
    t = std::max({t, p.send_free, p.recv_free});
  }
  return std::max(t, core_free_);
}

}  // namespace hitopk::simnet
