#include "simnet/cluster.h"

#include <algorithm>
#include <ostream>
#include <set>

#include "core/check.h"

namespace hitopk::simnet {

// ------------------------------------------------------------ PortTimeline

PortTimeline::Lane& PortTimeline::lane(int job) {
  for (Lane& l : lanes_) {
    if (l.job == job) return l;
  }
  lanes_.push_back(Lane{job, 0.0, {}});
  return lanes_.back();
}

const PortTimeline::Lane* PortTimeline::find(int job) const {
  for (const Lane& l : lanes_) {
    if (l.job == job) return &l;
  }
  return nullptr;
}

double PortTimeline::free_at(int job) const {
  const Lane* l = find(job);
  return l != nullptr ? l->free : 0.0;
}

int PortTimeline::sharers(int job, double begin, double end) const {
  int count = 0;
  for (const Lane& l : lanes_) {
    if (l.job == job) continue;
    // First interval ending after `begin` (intervals are sorted and
    // disjoint); it is the only one that can overlap [begin, end).
    const auto it = std::partition_point(
        l.intervals.begin(), l.intervals.end(),
        [begin](const Interval& iv) { return iv.end <= begin; });
    if (it != l.intervals.end() && it->begin < end) ++count;
  }
  return count;
}

void PortTimeline::reserve(int job, double begin, double end) {
  Lane& l = lane(job);
  HITOPK_CHECK(begin >= l.free)
      << "reservation at" << begin << "before the job's port clock" << l.free;
  l.free = std::max(l.free, end);
  if (end <= begin) return;  // zero-length service: clock only
  if (!l.intervals.empty() && begin <= l.intervals.back().end) {
    // Back-to-back with the previous reservation: extend it in place.
    l.intervals.back().end = std::max(l.intervals.back().end, end);
    return;
  }
  l.intervals.push_back({begin, end});
  if (l.intervals.size() > kMaxIntervals) {
    l.intervals.erase(l.intervals.begin());
  }
}

double PortTimeline::max_free() const {
  double t = 0.0;
  for (const Lane& l : lanes_) t = std::max(t, l.free);
  return t;
}

// ----------------------------------------------------------------- Cluster

Cluster::Cluster(Topology topology)
    : topology_(std::move(topology)),
      gpu_ports_(static_cast<size_t>(topology_.world_size())),
      nic_send_(static_cast<size_t>(topology_.nodes())),
      nic_recv_(static_cast<size_t>(topology_.nodes())) {
  if (topology_.oversubscription() > 1.0) {
    if (topology_.pods() > 1) {
      // Edge/aggregation fat tree: one uplink per pod of capacity
      // nodes_per_pod * nic_rate / f, as seconds/byte.
      pod_send_.resize(static_cast<size_t>(topology_.pods()));
      pod_recv_.resize(static_cast<size_t>(topology_.pods()));
      uplink_beta_ = topology_.nic_beta() * topology_.oversubscription() /
                     static_cast<double>(topology_.nodes_per_pod());
    } else {
      // Single switch layer: aggregate core capacity nodes * nic_rate / f.
      core_beta_ = topology_.nic_beta() * topology_.oversubscription() /
                   static_cast<double>(topology_.nodes());
    }
  }
}

void Cluster::reset() {
  for (auto& p : gpu_ports_) p = Port{};
  for (auto& p : nic_send_) p.clear();
  for (auto& p : nic_recv_) p.clear();
  for (auto& p : pod_send_) p.clear();
  for (auto& p : pod_recv_) p.clear();
  core_.clear();
  inter_node_bytes_ = 0;
  intra_node_bytes_ = 0;
  traffic_.clear();
  trace_.clear();
  send_seq_ = 0;
}

double Cluster::send(int src, int dst, size_t bytes, double data_ready,
                     double extra_seconds) {
  const FlowOutcome outcome =
      submit({kDefaultJob, src, dst, bytes, data_ready, extra_seconds});
  HITOPK_CHECK(outcome.delivered)
      << "send touched preempted rank" << outcome.dead_rank
      << "at t=" << outcome.time << "(use try_send on fault-injected runs)";
  return outcome.time;
}

SendOutcome Cluster::try_send(int src, int dst, size_t bytes,
                              double data_ready, double extra_seconds) {
  const FlowOutcome f =
      submit({kDefaultJob, src, dst, bytes, data_ready, extra_seconds});
  return SendOutcome{f.delivered, f.time, f.dead_rank, f.retries, f.degraded};
}

FlowOutcome Cluster::submit(const Flow& flow) {
  const int src = flow.src;
  const int dst = flow.dst;
  const int job = flow.job;
  const size_t bytes = flow.bytes;
  HITOPK_CHECK(job >= 0) << "job id" << job << "must be non-negative";
  HITOPK_CHECK(src >= 0 && src < world_size());
  HITOPK_CHECK(dst >= 0 && dst < world_size());
  HITOPK_CHECK_NE(src, dst);

  const bool crosses_node = !topology_.same_node(src, dst);
  const LinkParams& link = topology_.link_between(src, dst);
  double duration = link.transfer_seconds(bytes) + flow.extra_seconds;

  const int src_node = crosses_node ? topology_.node_of(src) : 0;
  const int dst_node = crosses_node ? topology_.node_of(dst) : 0;
  const bool crosses_pod =
      crosses_node && uplink_beta_ > 0.0 &&
      !topology_.same_pod(src_node, dst_node);
  const int src_pod = crosses_pod ? topology_.pod_of(src_node) : 0;
  const int dst_pod = crosses_pod ? topology_.pod_of(dst_node) : 0;

  double start = std::max(flow.ready, gpu_ports_[src].send_free);
  start = std::max(start, gpu_ports_[dst].recv_free);
  if (crosses_node) {
    start = std::max(start, nic_send_[src_node].free_at(job));
    start = std::max(start, nic_recv_[dst_node].free_at(job));
    if (core_beta_ > 0.0) start = std::max(start, core_.free_at(job));
    if (crosses_pod) {
      start = std::max(start, pod_send_[src_pod].free_at(job));
      start = std::max(start, pod_recv_[dst_pod].free_at(job));
    }
  }

  FlowOutcome outcome;
  outcome.start = start;
  outcome.inter_node = crosses_node;
  double nic_degrade = 1.0;
  const bool faults = fault_plan_ != nullptr && !fault_plan_->empty();
  if (faults) {
    // Message-boundary fault granularity: a transfer whose start falls in a
    // preemption window never happens; nothing below this point runs, so a
    // failed flow leaves ports, counters, and the trace untouched.
    if (!fault_plan_->alive(src, start)) {
      outcome.delivered = false;
      outcome.dead_rank = src;
      outcome.time = start;
      return outcome;
    }
    if (!fault_plan_->alive(dst, start)) {
      outcome.delivered = false;
      outcome.dead_rank = dst;
      outcome.time = start;
      return outcome;
    }
    if (crosses_node) {
      nic_degrade =
          std::max(fault_plan_->degrade_factor(topology_.node_of(src), start),
                   fault_plan_->degrade_factor(topology_.node_of(dst), start));
      duration *= nic_degrade;
    }
    outcome.retries = fault_plan_->transient_attempts(send_seq_++);
    if (outcome.retries > 0) {
      // Each failed attempt wasted one full (possibly degraded) transfer
      // plus the backoff before the retry.
      duration += outcome.retries *
                  (duration + fault_plan_->transient_backoff());
    }
    outcome.degraded = nic_degrade > 1.0 || outcome.retries > 0;
  }

  // Processor sharing across jobs: the flow's service window is checked
  // against every contended port it crosses; overlapping reservations of
  // k-1 other jobs on the bottleneck port slow it to 1/k of its isolated
  // rate.  A single-tenant flow never enters the branch, so its arithmetic
  // is exactly the legacy path.
  double share = 1.0;
  if (crosses_node) {
    const double window_end = start + duration;
    int others = nic_send_[src_node].sharers(job, start, window_end);
    others = std::max(others, nic_recv_[dst_node].sharers(job, start,
                                                          window_end));
    if (core_beta_ > 0.0) {
      others = std::max(others, core_.sharers(job, start, window_end));
    }
    if (crosses_pod) {
      others = std::max(others,
                        pod_send_[src_pod].sharers(job, start, window_end));
      others = std::max(others,
                        pod_recv_[dst_pod].sharers(job, start, window_end));
    }
    if (others > 0) {
      share = 1.0 + static_cast<double>(others);
      duration *= share;
    }
  }
  outcome.share = share;

  const double done = start + duration;
  outcome.time = done;

  gpu_ports_[src].send_free = done;
  gpu_ports_[dst].recv_free = done;
  if (crosses_node) {
    // The NIC serves the flow's bytes at aggregate line rate and is then
    // free for the job's next flow — processor sharing in time — while the
    // flow itself completes at its (slower) per-flow rate.  Under cross-job
    // sharing the service window stretches with the share factor: the job
    // receives 1/share of the port rate while contended.
    double nic_service =
        (static_cast<double>(bytes) * topology_.nic_beta() +
         flow.extra_seconds) *
        nic_degrade;
    if (share > 1.0) nic_service *= share;
    nic_send_[src_node].reserve(job, start, start + nic_service);
    nic_recv_[dst_node].reserve(job, start, start + nic_service);
    if (core_beta_ > 0.0) {
      // Shared oversubscribed core: serves the flow's bytes at the
      // aggregate core rate, then frees for the job's next inter-node flow.
      double core_service = static_cast<double>(bytes) * core_beta_;
      if (share > 1.0) core_service *= share;
      core_.reserve(job, start, start + core_service);
    }
    if (crosses_pod) {
      // Oversubscribed pod uplinks, same processor-sharing treatment.
      double uplink_service = static_cast<double>(bytes) * uplink_beta_;
      if (share > 1.0) uplink_service *= share;
      pod_send_[src_pod].reserve(job, start, start + uplink_service);
      pod_recv_[dst_pod].reserve(job, start, start + uplink_service);
    }
    inter_node_bytes_ += bytes;
    traffic_[job].inter += bytes;
  } else {
    intra_node_bytes_ += bytes;
    traffic_[job].intra += bytes;
  }
  if (tracing_) {
    trace_.push_back(TraceEvent{src, dst, bytes, start, duration,
                                crosses_node, job, share});
  }
  return outcome;
}

size_t Cluster::inter_node_bytes(int job) const {
  const auto it = traffic_.find(job);
  return it != traffic_.end() ? it->second.inter : 0;
}

size_t Cluster::intra_node_bytes(int job) const {
  const auto it = traffic_.find(job);
  return it != traffic_.end() ? it->second.intra : 0;
}

std::vector<int> Cluster::traffic_jobs() const {
  std::vector<int> jobs;
  jobs.reserve(traffic_.size());
  for (const auto& [job, bytes] : traffic_) jobs.push_back(job);
  return jobs;
}

void Cluster::write_chrome_trace(std::ostream& os,
                                 const std::string& process_name) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\""
     << process_name << "\"}}";
  for (int rank = 0; rank < world_size(); ++rank) {
    os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << rank
       << ",\"args\":{\"name\":\"gpu" << rank << " (node"
       << topology_.node_of(rank) << ")\"}}";
  }
  // Multi-tenant traces: one process per non-default job (pid = job + 1),
  // with per-rank tracks named only for the ranks that job actually used.
  std::set<std::pair<int, int>> job_tracks;  // (job, dst rank)
  for (const auto& event : trace_) {
    if (event.job != kDefaultJob) job_tracks.insert({event.job, event.dst});
  }
  int named_job = kDefaultJob;
  for (const auto& [job, rank] : job_tracks) {
    if (job != named_job) {
      named_job = job;
      os << ",\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << job + 1
         << ",\"args\":{\"name\":\"" << process_name << "/job" << job
         << "\"}}";
    }
    os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << job + 1
       << ",\"tid\":" << rank << ",\"args\":{\"name\":\"job" << job << " gpu"
       << rank << " (node" << topology_.node_of(rank) << ")\"}}";
  }
  for (const auto& event : trace_) {
    // Complete events ("X") on the *destination* rank's track of the
    // owning job's process: that is the port the transfer occupies for its
    // duration.
    os << ",\n{\"name\":\"" << (event.inter_node ? "inter " : "intra ")
       << event.src << "->" << event.dst << "\",\"cat\":\""
       << (event.inter_node ? "nic" : "nvlink") << "\",\"ph\":\"X\",\"ts\":"
       << event.start * 1e6 << ",\"dur\":" << event.duration * 1e6
       << ",\"pid\":" << event.job + 1 << ",\"tid\":" << event.dst
       << ",\"args\":{\"bytes\":" << event.bytes << ",\"job\":" << event.job
       << ",\"share\":" << event.share << "}}";
  }
  os << "\n]}\n";
}

double Cluster::compute(double ready, double duration) {
  return ready + duration;
}

double Cluster::quiescent_time() const {
  double t = 0.0;
  for (const auto& p : gpu_ports_) {
    t = std::max({t, p.send_free, p.recv_free});
  }
  for (const auto& p : nic_send_) t = std::max(t, p.max_free());
  for (const auto& p : nic_recv_) t = std::max(t, p.max_free());
  for (const auto& p : pod_send_) t = std::max(t, p.max_free());
  for (const auto& p : pod_recv_) t = std::max(t, p.max_free());
  return std::max(t, core_.max_free());
}

}  // namespace hitopk::simnet
