#include "simnet/cluster.h"

#include <algorithm>
#include <ostream>

#include "core/check.h"

namespace hitopk::simnet {

Cluster::Cluster(Topology topology)
    : topology_(std::move(topology)),
      gpu_ports_(static_cast<size_t>(topology_.world_size())),
      nic_ports_(static_cast<size_t>(topology_.nodes())) {}

void Cluster::reset() {
  for (auto& p : gpu_ports_) p = Port{};
  for (auto& p : nic_ports_) p = Port{};
  inter_node_bytes_ = 0;
  intra_node_bytes_ = 0;
  trace_.clear();
}

double Cluster::send(int src, int dst, size_t bytes, double data_ready,
                     double extra_seconds) {
  HITOPK_CHECK(src >= 0 && src < world_size());
  HITOPK_CHECK(dst >= 0 && dst < world_size());
  HITOPK_CHECK_NE(src, dst);

  const bool crosses_node = !topology_.same_node(src, dst);
  const LinkParams& link = topology_.link_between(src, dst);
  const double duration = link.transfer_seconds(bytes) + extra_seconds;

  double start = std::max(data_ready, gpu_ports_[src].send_free);
  start = std::max(start, gpu_ports_[dst].recv_free);
  if (crosses_node) {
    start = std::max(start, nic_ports_[topology_.node_of(src)].send_free);
    start = std::max(start, nic_ports_[topology_.node_of(dst)].recv_free);
  }
  const double done = start + duration;

  gpu_ports_[src].send_free = done;
  gpu_ports_[dst].recv_free = done;
  if (crosses_node) {
    // The NIC serves the flow's bytes at aggregate line rate and is then
    // free for the next flow — processor sharing across concurrent flows —
    // while the flow itself completes at its (slower) per-flow rate.
    const double nic_service =
        static_cast<double>(bytes) * topology_.nic_beta() + extra_seconds;
    nic_ports_[topology_.node_of(src)].send_free = start + nic_service;
    nic_ports_[topology_.node_of(dst)].recv_free = start + nic_service;
    inter_node_bytes_ += bytes;
  } else {
    intra_node_bytes_ += bytes;
  }
  if (tracing_) {
    trace_.push_back(
        TraceEvent{src, dst, bytes, start, duration, crosses_node});
  }
  return done;
}

void Cluster::write_chrome_trace(std::ostream& os,
                                 const std::string& process_name) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\""
     << process_name << "\"}}";
  for (int rank = 0; rank < world_size(); ++rank) {
    os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << rank
       << ",\"args\":{\"name\":\"gpu" << rank << " (node"
       << topology_.node_of(rank) << ")\"}}";
  }
  for (const auto& event : trace_) {
    // Complete events ("X") on the *destination* rank's track: that is the
    // port the transfer occupies for its duration.
    os << ",\n{\"name\":\"" << (event.inter_node ? "inter " : "intra ")
       << event.src << "->" << event.dst << "\",\"cat\":\""
       << (event.inter_node ? "nic" : "nvlink") << "\",\"ph\":\"X\",\"ts\":"
       << event.start * 1e6 << ",\"dur\":" << event.duration * 1e6
       << ",\"pid\":1,\"tid\":" << event.dst << ",\"args\":{\"bytes\":"
       << event.bytes << "}}";
  }
  os << "\n]}\n";
}

double Cluster::compute(double ready, double duration) {
  return ready + duration;
}

double Cluster::quiescent_time() const {
  double t = 0.0;
  for (const auto& p : gpu_ports_) {
    t = std::max({t, p.send_free, p.recv_free});
  }
  for (const auto& p : nic_ports_) {
    t = std::max({t, p.send_free, p.recv_free});
  }
  return t;
}

}  // namespace hitopk::simnet
