// Cluster topology: m nodes x n GPUs with a two-level interconnect.
//
// This is the substrate standing in for the paper's testbed (Table 1): GPUs
// inside a node are connected by NVLink (high bandwidth, low latency,
// dedicated peer links); nodes are connected by Ethernet through one NIC per
// node, which all of a node's GPUs share.  The shared NIC is the property
// that makes flat collectives slow on public clouds and is modelled
// explicitly (inter-node transfers serialize through per-node NIC ports).
#pragma once

#include <string>

#include "core/check.h"

namespace hitopk::simnet {

// alpha-beta link: transferring b bytes costs alpha + b * beta seconds.
// For inter-node links beta is the *per-flow* rate: a single TCP stream on
// a cloud VPC reaches well under line rate; the NIC's aggregate line-rate
// capacity is a separate Topology parameter (nic_beta).  Schemes that open
// many concurrent flows per NIC (2DTAR, HiTopKComm) aggregate toward line
// rate; schemes with one or two flows per node (ring/tree Dense-SGD) are
// stuck at per-flow speed — the asymmetry behind Fig. 7.
struct LinkParams {
  double alpha = 0.0;  // latency per message, seconds
  double beta = 0.0;   // seconds per byte (1 / per-flow bandwidth)

  double transfer_seconds(size_t bytes) const {
    return alpha + beta * static_cast<double>(bytes);
  }
};

class Topology {
 public:
  // nic_beta: seconds/byte of a node NIC's aggregate capacity; <= 0 means
  // "same as the per-flow rate" (the NIC fully serializes transfers).
  Topology(int nodes, int gpus_per_node, LinkParams intra, LinkParams inter,
           double nic_beta = 0.0);

  // Presets matching Table 1 instances.  Intra-node: V100 NVLink ring
  // (~45 GB/s per hop, ~6 us).  Inter-node: the instance NIC with TCP/VPC
  // overhead (~80% of line rate, ~25 us).
  static Topology tencent_cloud(int nodes = 16, int gpus_per_node = 8);  // 25 GbE
  static Topology aws_p3(int nodes = 16, int gpus_per_node = 8);         // 25 GbE
  static Topology aliyun(int nodes = 16, int gpus_per_node = 8);         // 32 GbE
  // 100 Gbps InfiniBand cluster (DAWNBench competitors).
  static Topology infiniband_100g(int nodes = 16, int gpus_per_node = 8);

  int nodes() const { return nodes_; }
  int gpus_per_node() const { return gpus_per_node_; }
  int world_size() const { return nodes_ * gpus_per_node_; }

  int node_of(int rank) const;
  int local_rank(int rank) const;
  int rank_of(int node, int local) const;
  bool same_node(int a, int b) const;

  const LinkParams& intra() const { return intra_; }
  const LinkParams& inter() const { return inter_; }
  const LinkParams& link_between(int a, int b) const;
  double nic_beta() const { return nic_beta_; }

  std::string describe() const;

 private:
  int nodes_;
  int gpus_per_node_;
  LinkParams intra_;
  LinkParams inter_;
  double nic_beta_;
};

}  // namespace hitopk::simnet
