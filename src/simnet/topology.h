// Cluster topology: m nodes x n GPUs with a two-level interconnect.
//
// This is the substrate standing in for the paper's testbed (Table 1): GPUs
// inside a node are connected by NVLink (high bandwidth, low latency,
// dedicated peer links); nodes are connected by Ethernet through one NIC per
// node, which all of a node's GPUs share.  The shared NIC is the property
// that makes flat collectives slow on public clouds and is modelled
// explicitly (inter-node transfers serialize through per-node NIC ports).
//
// Two generalizations open the topology axis beyond the paper's uniform
// testbed:
//
//   uneven nodes — gpus-per-node may differ per node (the transient-server
//     / heterogeneous-fleet scenario: a cluster assembled from whatever
//     instance shapes the cloud had available).  Rank r maps to the node
//     whose half-open rank interval contains r; `gpus_per_node()` stays
//     valid only on uniform topologies (collectives that require a uniform
//     shard layout keep calling it and fail loudly on uneven clusters).
//
//   fat-tree oversubscription — public-cloud fabrics are rarely
//     non-blocking: the aggregation/core layer carries only 1/f of the sum
//     of the edge (NIC) bandwidths.  `oversubscription` (f >= 1) bounds the
//     aggregate inter-node service rate; f == 1 (default) is a non-blocking
//     fabric and leaves every existing timing bit-for-bit unchanged.  Two
//     fabric shapes, selected by `nodes_per_pod`:
//       0 (default) — one oversubscribed switch layer: every inter-node
//         transfer shares a single core port of capacity
//         nodes * nic_rate / f.
//       k in (0, nodes) — an edge/aggregation fat tree: nodes are grouped
//         into pods of k; transfers between nodes of one pod stay on the
//         (non-blocking) edge switch and see only the NIC ports, while
//         cross-pod transfers additionally pass their pods' uplinks, each
//         of capacity k * nic_rate / f.  Topology-aware schedules that
//         keep traffic inside a pod (BlueConnect stages) dodge the
//         oversubscribed layer; flat world-scale rings cannot.
#pragma once

#include <string>
#include <vector>

#include "core/check.h"

namespace hitopk::simnet {

// alpha-beta link: transferring b bytes costs alpha + b * beta seconds.
// For inter-node links beta is the *per-flow* rate: a single TCP stream on
// a cloud VPC reaches well under line rate; the NIC's aggregate line-rate
// capacity is a separate Topology parameter (nic_beta).  Schemes that open
// many concurrent flows per NIC (2DTAR, HiTopKComm) aggregate toward line
// rate; schemes with one or two flows per node (ring/tree Dense-SGD) are
// stuck at per-flow speed — the asymmetry behind Fig. 7.
struct LinkParams {
  double alpha = 0.0;  // latency per message, seconds
  double beta = 0.0;   // seconds per byte (1 / per-flow bandwidth)

  double transfer_seconds(size_t bytes) const {
    return alpha + beta * static_cast<double>(bytes);
  }
};

class Topology {
 public:
  // nic_beta: seconds/byte of a node NIC's aggregate capacity; <= 0 means
  // "same as the per-flow rate" (the NIC fully serializes transfers).
  // oversubscription: fat-tree oversubscription factor f >= 1 (see above);
  // nodes_per_pod: edge-pod size, 0 = single switch layer.
  Topology(int nodes, int gpus_per_node, LinkParams intra, LinkParams inter,
           double nic_beta = 0.0, double oversubscription = 1.0,
           int nodes_per_pod = 0);

  // Uneven variant: gpus[i] GPUs on node i (all > 0).
  Topology(std::vector<int> gpus, LinkParams intra, LinkParams inter,
           double nic_beta = 0.0, double oversubscription = 1.0,
           int nodes_per_pod = 0);

  // Presets matching Table 1 instances.  Intra-node: V100 NVLink ring
  // (~45 GB/s per hop, ~6 us).  Inter-node: the instance NIC with TCP/VPC
  // overhead (~80% of line rate, ~25 us).
  static Topology tencent_cloud(int nodes = 16, int gpus_per_node = 8);  // 25 GbE
  static Topology aws_p3(int nodes = 16, int gpus_per_node = 8);         // 25 GbE
  static Topology aliyun(int nodes = 16, int gpus_per_node = 8);         // 32 GbE
  // 100 Gbps InfiniBand cluster (DAWNBench competitors).
  static Topology infiniband_100g(int nodes = 16, int gpus_per_node = 8);

  int nodes() const { return static_cast<int>(gpus_.size()); }
  int world_size() const { return world_size_; }

  // Uniform-shape accessor: valid only when every node has the same GPU
  // count (fails loudly otherwise, so collectives that assume a uniform
  // shard layout cannot silently mis-map ranks on uneven clusters).
  int gpus_per_node() const {
    HITOPK_CHECK(uniform_gpus_ > 0)
        << "gpus_per_node() on an uneven topology; use gpus_on_node(node)";
    return uniform_gpus_;
  }
  bool uniform() const { return uniform_gpus_ > 0; }
  int gpus_on_node(int node) const {
    HITOPK_CHECK(node >= 0 && node < nodes());
    return gpus_[static_cast<size_t>(node)];
  }
  int max_gpus_per_node() const { return max_gpus_; }

  int node_of(int rank) const;
  int local_rank(int rank) const;
  int rank_of(int node, int local) const;
  bool same_node(int a, int b) const;

  const LinkParams& intra() const { return intra_; }
  const LinkParams& inter() const { return inter_; }
  const LinkParams& link_between(int a, int b) const;
  double nic_beta() const { return nic_beta_; }
  double oversubscription() const { return oversubscription_; }
  int nodes_per_pod() const { return nodes_per_pod_; }
  // Number of edge pods (1 when the fabric has a single switch layer).
  int pods() const;
  int pod_of(int node) const;
  bool same_pod(int node_a, int node_b) const {
    return pod_of(node_a) == pod_of(node_b);
  }

  std::string describe() const;

  // Structural hash of everything the timing model sees: the per-node GPU
  // vector, both link parameter pairs, the NIC capacity, the
  // oversubscription factor, and the pod tiling.  Two topologies with equal
  // fingerprints replay any schedule to the same clock, so planner caches
  // key on it.  Stable within a process run; not a persistence format.
  uint64_t fingerprint() const;

 private:
  std::vector<int> gpus_;        // GPUs per node
  std::vector<int> node_base_;   // first world rank of each node, + world end
  int world_size_ = 0;
  int uniform_gpus_ = 0;         // common GPU count, 0 when uneven
  int max_gpus_ = 0;
  LinkParams intra_;
  LinkParams inter_;
  double nic_beta_;
  double oversubscription_;
  int nodes_per_pod_;
};

}  // namespace hitopk::simnet
