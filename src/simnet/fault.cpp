#include "simnet/fault.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "core/rng.h"

namespace hitopk::simnet {
namespace {

// SplitMix64 finalizer: counter-keyed hashing for the transient-failure
// decisions.  A hash (rather than a stateful stream) makes each send's fate
// independent of how many other sends were issued before it, so the same
// send sequence number always draws the same outcome.
uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double unit_double(uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace

void FaultPlan::preempt(int rank, double time, double recover_time) {
  HITOPK_CHECK_GE(rank, 0);
  HITOPK_CHECK_GE(time, 0.0);
  HITOPK_CHECK_GT(recover_time, time);
  preemptions_.push_back(Preemption{rank, time, recover_time});
}

void FaultPlan::degrade_node(int node, double begin, double end,
                             double factor) {
  HITOPK_CHECK_GE(node, 0);
  HITOPK_CHECK_GE(begin, 0.0);
  HITOPK_CHECK_GT(end, begin);
  HITOPK_CHECK_GE(factor, 1.0);
  degradations_.push_back(Degradation{node, begin, end, factor});
}

void FaultPlan::set_transient(double probability, double backoff_seconds,
                              int max_retries, uint64_t seed) {
  HITOPK_CHECK(probability >= 0.0 && probability < 1.0);
  HITOPK_CHECK_GE(backoff_seconds, 0.0);
  HITOPK_CHECK_GE(max_retries, 0);
  transient_probability_ = probability;
  transient_backoff_ = backoff_seconds;
  transient_max_retries_ = max_retries;
  transient_seed_ = seed;
}

bool FaultPlan::alive(int rank, double time) const {
  for (const Preemption& p : preemptions_) {
    if (p.rank == rank && time >= p.time && time < p.recover_time) {
      return false;
    }
  }
  return true;
}

double FaultPlan::next_preemption(int rank, double from) const {
  double next = kNever;
  for (const Preemption& p : preemptions_) {
    if (p.rank == rank && p.time >= from) next = std::min(next, p.time);
  }
  return next;
}

double FaultPlan::degrade_factor(int node, double time) const {
  double factor = 1.0;
  for (const Degradation& d : degradations_) {
    if (d.node == node && time >= d.begin && time < d.end) {
      factor = std::max(factor, d.factor);
    }
  }
  return factor;
}

int FaultPlan::transient_attempts(uint64_t send_seq) const {
  if (transient_probability_ <= 0.0) return 0;
  int failures = 0;
  while (failures < transient_max_retries_) {
    const uint64_t word = mix64(transient_seed_ ^ mix64(send_seq) ^
                                static_cast<uint64_t>(failures) * 0x632be59bull);
    if (unit_double(word) >= transient_probability_) break;
    ++failures;
  }
  return failures;
}

FaultPlan FaultPlan::remap(const std::vector<int>& new_to_old_rank,
                           const std::vector<int>& new_to_old_node) const {
  FaultPlan plan;
  plan.detection_timeout_ = detection_timeout_;
  plan.transient_probability_ = transient_probability_;
  plan.transient_backoff_ = transient_backoff_;
  plan.transient_max_retries_ = transient_max_retries_;
  plan.transient_seed_ = transient_seed_;
  for (int new_rank = 0; new_rank < static_cast<int>(new_to_old_rank.size());
       ++new_rank) {
    const int old_rank = new_to_old_rank[static_cast<size_t>(new_rank)];
    for (const Preemption& p : preemptions_) {
      if (p.rank == old_rank) {
        plan.preemptions_.push_back(
            Preemption{new_rank, p.time, p.recover_time});
      }
    }
  }
  for (int new_node = 0; new_node < static_cast<int>(new_to_old_node.size());
       ++new_node) {
    const int old_node = new_to_old_node[static_cast<size_t>(new_node)];
    for (const Degradation& d : degradations_) {
      if (d.node == old_node) {
        plan.degradations_.push_back(
            Degradation{new_node, d.begin, d.end, d.factor});
      }
    }
  }
  return plan;
}

FaultPlan FaultPlan::generate(uint64_t seed, const Topology& topology,
                              double horizon, const FaultRates& rates) {
  HITOPK_CHECK_GT(horizon, 0.0);
  // Negative intensities are config bugs, not "no faults": reject them
  // loudly instead of silently sampling nothing (rate == 0 is the documented
  // empty-script case and stays valid).
  HITOPK_VALIDATE(rates.preempt_per_rank_hour >= 0.0)
      << "negative preemption rate:" << rates.preempt_per_rank_hour;
  HITOPK_VALIDATE(rates.degrade_per_node_hour >= 0.0)
      << "negative degradation rate:" << rates.degrade_per_node_hour;
  HITOPK_VALIDATE(rates.recover_seconds > 0.0)
      << "recovery delay must be positive:" << rates.recover_seconds;
  FaultPlan plan;
  Rng rng(seed);
  if (rates.preempt_per_rank_hour > 0.0) {
    const double lambda =
        rates.preempt_per_rank_hour * topology.world_size() / 3600.0;
    double t = 0.0;
    while (true) {
      t += -std::log(1.0 - rng.uniform()) / lambda;
      if (t >= horizon) break;
      const int rank =
          static_cast<int>(rng.uniform_index(
              static_cast<uint64_t>(topology.world_size())));
      const double recover = rates.recover_seconds < kNever
                                 ? t + rates.recover_seconds
                                 : kNever;
      plan.preempt(rank, t, recover);
    }
  }
  if (rates.degrade_per_node_hour > 0.0) {
    HITOPK_CHECK_GT(rates.degrade_duration_seconds, 0.0);
    const double lambda =
        rates.degrade_per_node_hour * topology.nodes() / 3600.0;
    double t = 0.0;
    while (true) {
      t += -std::log(1.0 - rng.uniform()) / lambda;
      if (t >= horizon) break;
      const int node = static_cast<int>(
          rng.uniform_index(static_cast<uint64_t>(topology.nodes())));
      plan.degrade_node(node, t, t + rates.degrade_duration_seconds,
                        rates.degrade_factor);
    }
  }
  return plan;
}

}  // namespace hitopk::simnet
