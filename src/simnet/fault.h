// Deterministic fault-event scripts for timed schedule replay.
//
// A FaultPlan is a pre-computed, seeded script of the failures a public-cloud
// run can see — rank preemption (spot revocation) with optional recovery,
// NIC/uplink degradation windows, and transient send failures that cost
// retry/backoff time — which a Cluster consults during `try_send`.  The plan
// is *data*, not a random process: every query is a pure function of the
// script and its arguments, so a replay with the same plan, topology, and
// schedule is bit-identical every time (the determinism contract the perf
// gate and the bitwise elastic-rescale tests rely on).
//
// Time granularity is the message boundary: a preemption at time t kills
// every transfer whose start would be >= t.  In-flight transfers that
// started before t still complete (their port bookkeeping already happened);
// the *next* send touching the dead rank observes the failure.  This matches
// how a timed replay can observe faults at all, and it keeps the fault-free
// path bit-identical: a Cluster without a plan (or with an empty one)
// never branches on fault state.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "simnet/topology.h"

namespace hitopk::simnet {

// Sentinel for "does not recover within the scenario horizon".
inline constexpr double kNever = std::numeric_limits<double>::infinity();

// Rank `rank` is dead on [time, recover_time).
struct Preemption {
  int rank = 0;
  double time = 0.0;
  double recover_time = kNever;
};

// Inter-node transfers touching `node` run `factor`x slower on [begin, end).
struct Degradation {
  int node = 0;
  double begin = 0.0;
  double end = kNever;
  double factor = 1.0;
};

// Poisson-process intensities for FaultPlan::generate.
struct FaultRates {
  double preempt_per_rank_hour = 0.0;   // spot revocations per rank-hour
  double recover_seconds = kNever;      // time until a preempted rank returns
  double degrade_per_node_hour = 0.0;   // NIC brown-out onsets per node-hour
  double degrade_duration_seconds = 0.0;
  double degrade_factor = 1.0;
};

class FaultPlan {
 public:
  FaultPlan() = default;

  // ---- script construction ------------------------------------------------
  void preempt(int rank, double time, double recover_time = kNever);
  void degrade_node(int node, double begin, double end, double factor);
  // Every send independently fails with `probability` per attempt (decided by
  // a counter-keyed hash, not a stateful stream, so interleaving order does
  // not matter); each failed attempt costs one backoff plus a full re-send.
  // After max_retries consecutive failures the next attempt succeeds.
  void set_transient(double probability, double backoff_seconds,
                     int max_retries, uint64_t seed = 0x5eed5eed5eedull);
  // Charged by the schedule layer when a dead rank is detected mid-replay
  // (the keepalive/timeout a real runtime would wait out before aborting).
  void set_detection_timeout(double seconds) { detection_timeout_ = seconds; }

  // Samples Poisson preemption / degradation scripts on [0, horizon).
  static FaultPlan generate(uint64_t seed, const Topology& topology,
                            double horizon, const FaultRates& rates);

  // ---- queries ------------------------------------------------------------
  bool empty() const {
    return preemptions_.empty() && degradations_.empty() &&
           transient_probability_ <= 0.0;
  }
  bool alive(int rank, double time) const;
  // First preemption onset >= `from` for this rank, kNever if none.
  double next_preemption(int rank, double from) const;
  // Max degradation factor over windows containing `time` (1.0 = healthy).
  double degrade_factor(int node, double time) const;
  // Failed attempts before send number `send_seq` succeeds (0 = first try).
  int transient_attempts(uint64_t send_seq) const;

  double detection_timeout() const { return detection_timeout_; }
  double transient_probability() const { return transient_probability_; }
  double transient_backoff() const { return transient_backoff_; }
  const std::vector<Preemption>& preemptions() const { return preemptions_; }
  const std::vector<Degradation>& degradations() const {
    return degradations_;
  }

  // Plan for a renumbered world: surviving new rank i was old rank
  // new_to_old_rank[i] (and new node j was old node new_to_old_node[j]).
  // Preemptions/degradations of dropped ranks/nodes fall away; transient and
  // detection settings carry over unchanged.
  FaultPlan remap(const std::vector<int>& new_to_old_rank,
                  const std::vector<int>& new_to_old_node) const;

 private:
  std::vector<Preemption> preemptions_;
  std::vector<Degradation> degradations_;
  double detection_timeout_ = 0.0;
  double transient_probability_ = 0.0;
  double transient_backoff_ = 0.0;
  int transient_max_retries_ = 0;
  uint64_t transient_seed_ = 0;
};

}  // namespace hitopk::simnet
