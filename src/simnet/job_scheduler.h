// Multi-tenant gang scheduler over a shared Cluster.
//
// The paper's setting is a public cloud cluster: many independent training
// jobs arrive over time, each needs a *gang* of GPUs for its whole lifetime
// (synchronous data-parallel training cannot run on a partial allocation),
// and they contend for the shared NIC/uplink/core fabric that the Cluster's
// reservation timelines model (see cluster.h).  This is the operating model
// of IBM's Deep Learning Service and the motivation for placement-aware
// bandwidth partitioning in MiCS (see PAPERS.md).
//
// The scheduler is an event-driven simulation in one OS thread:
//
//   - Jobs arrive at scripted instants (JobSpec::arrival) and queue FIFO.
//   - Admission scans the queue in arrival order whenever GPUs free up; with
//     backfill enabled (default) a later job that fits may jump a blocked
//     head-of-line job, otherwise admission is strict FIFO.
//   - Placement maps a job to a concrete rank set via one of three gang
//     policies (kPackByPod / kSpread / kLocalityAware, below).
//   - Running jobs advance ONE training iteration per event, cheapest-clock
//     first (ties break on job id).  Interleaving iterations of concurrent
//     jobs is what makes their flows overlap on the port timelines, so
//     cross-job contention emerges from the Cluster model rather than being
//     assumed here.
//
// The actual per-iteration work is a caller-supplied JobBody callback, so
// simnet stays independent of the collectives layer; train/scenario.h
// provides a body that runs a real ring All-Reduce schedule plus a
// PerfModel compute phase (see make_tenant_body).
//
// Everything is deterministic: scripted arrivals, ordered tie-breaks, and
// an explicitly seeded Rng for the Poisson trace generator.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "simnet/cluster.h"

namespace hitopk::simnet {

// Gang placement policies.
//
//   kPackByPod      — best-fit: prefer the pod, then the node, with the
//                     least free capacity that still fits the job.  Keeps
//                     jobs dense so big arrivals find contiguous room, at
//                     the price of stacking tenants onto the same uplinks.
//   kSpread         — round-robin one GPU at a time across the nodes with
//                     the most free GPUs.  Maximizes per-job NIC count
//                     (each rank gets its own NIC share) but forces almost
//                     all traffic inter-node.
//   kLocalityAware  — smallest single node that fits, else smallest single
//                     pod that fits, else fall back to pack-by-pod.  The
//                     paper's hierarchy argument applied to placement:
//                     NVLink first, one uplink domain second.
enum class PlacementPolicy : uint8_t { kPackByPod, kSpread, kLocalityAware };

const char* placement_policy_name(PlacementPolicy policy);

// One job of a replay trace.  `isolated_seconds`, when > 0, is the job's
// runtime on an otherwise-idle cluster (filled in by replay_trace for
// slowdown reporting); generators may leave it 0.
struct JobSpec {
  int id = 0;
  double arrival = 0.0;
  int gpus = 1;           // gang size (whole allocation or nothing)
  int iterations = 1;     // training iterations to run
  size_t bytes = 0;       // gradient payload per iteration (body-defined)
  double isolated_seconds = 0.0;
};

// What a JobBody reports back for one iteration.
struct JobIteration {
  double finish = 0.0;   // cluster time the iteration completed
  bool aborted = false;  // a fault killed the job (scheduler frees its gang)
};

// Runs one training iteration of `spec` on `ranks` starting at `start`,
// submitting flows under job id spec.id.  Must be deterministic.
using JobBody = std::function<JobIteration(
    Cluster& cluster, const JobSpec& spec, const std::vector<int>& ranks,
    double start)>;

// Per-job outcome of a scheduler run.
struct JobRecord {
  JobSpec spec;
  std::vector<int> ranks;     // the placed gang (empty if never admitted)
  double start = 0.0;         // admission instant
  double finish = 0.0;        // last iteration (or abort) instant
  int iterations_done = 0;
  bool aborted = false;
  double queued_seconds() const { return start - spec.arrival; }
  double jct() const { return finish - spec.arrival; }
  double slowdown() const {
    return spec.isolated_seconds > 0.0 ? jct() / spec.isolated_seconds : 0.0;
  }
};

struct JobSchedulerOptions {
  PlacementPolicy policy = PlacementPolicy::kPackByPod;
  // Allow a queued job to be admitted ahead of a blocked earlier one.
  bool backfill = true;
};

class JobScheduler {
 public:
  JobScheduler(Cluster& cluster, JobSchedulerOptions options = {});

  // Runs every job to completion (or abort) and returns one record per
  // job, in job-id order.  Jobs need not arrive sorted.
  std::vector<JobRecord> run(const std::vector<JobSpec>& jobs,
                             const JobBody& body);

  // Places a gang of `gpus` on the currently-free GPUs under the configured
  // policy; returns the rank set (sorted ascending) or empty when it does
  // not fit.  Exposed for tests; run() uses it internally.
  std::vector<int> place(int gpus) const;

 private:
  struct Running {
    size_t job = 0;        // index into records_
    double clock = 0.0;    // finish time of the job's last iteration
    int remaining = 0;     // iterations left
  };

  bool rank_free(int rank) const { return !busy_[static_cast<size_t>(rank)]; }
  int free_on_node(int node) const;
  void admit_from_queue(const JobBody& body, double now);

  Cluster& cluster_;
  JobSchedulerOptions options_;
  std::vector<char> busy_;          // per world rank
  std::vector<JobRecord> records_;
  std::vector<Running> running_;
  std::vector<size_t> queue_;       // record indices, arrival order
};

// ---- trace generation & replay --------------------------------------------

// Poisson-arrival mixed-size workload generator.  Fully determined by the
// seed: gang sizes draw from `gang_sizes` with `gang_weights` (uniform when
// weights are empty), iteration counts uniform in [min_iterations,
// max_iterations], inter-arrival gaps exponential with mean
// `mean_interarrival_seconds`.
struct TraceOptions {
  int jobs = 120;
  double mean_interarrival_seconds = 0.05;
  uint64_t seed = 1;
  std::vector<int> gang_sizes = {4, 8, 16, 32};
  std::vector<double> gang_weights = {};  // empty = uniform
  int min_iterations = 2;
  int max_iterations = 6;
  size_t bytes_per_gpu = 100 << 20;  // gradient payload per iteration
};

std::vector<JobSpec> generate_trace(const TraceOptions& options);

// Aggregate metrics of one replay (see bench_fig12_multitenant).
struct ReplayMetrics {
  double makespan = 0.0;        // last finish - first arrival
  double goodput = 0.0;         // sum(isolated) / makespan (jobs "worth" run)
  double mean_slowdown = 0.0;   // mean over completed jobs
  double p50_jct = 0.0;
  double p95_jct = 0.0;
  double p99_jct = 0.0;
  std::vector<JobRecord> records;
};

// Replays `jobs` on a fresh clone of `topology` under `policy`, then runs
// each job alone on another fresh cluster to fill isolated_seconds, and
// reports per-job slowdown plus cluster-level metrics.  Deterministic.
ReplayMetrics replay_trace(const Topology& topology,
                           const std::vector<JobSpec>& jobs,
                           const JobBody& body, PlacementPolicy policy,
                           bool backfill = true);

}  // namespace hitopk::simnet
