#include "simnet/topology.h"

#include <algorithm>
#include <cstring>
#include <sstream>

namespace hitopk::simnet {
namespace {

// Gbps line rate -> seconds/byte at the given achievable efficiency.
// Aggregate TCP goodput across many competing flows on a cloud VPC reaches
// only ~55% of line rate (framing, congestion control, virtualization).
double ethernet_beta(double gbps, double efficiency = 0.55) {
  return 1.0 / (gbps / 8.0 * 1e9 * efficiency);
}

constexpr double kNvlinkHopBandwidth = 45e9;  // bytes/s per ring hop
constexpr double kNvlinkAlpha = 6e-6;
constexpr double kEthernetAlpha = 25e-6;  // VPC / TCP stack latency
constexpr double kInfinibandAlpha = 5e-6;
// A single tuned TCP flow on a cloud VPC (NCCL socket transport): ~9.6 Gbps
// regardless of the 25/32 GbE line rate.
constexpr double kTcpFlowBandwidth = 1.2e9;  // bytes/s

LinkParams nvlink() { return LinkParams{kNvlinkAlpha, 1.0 / kNvlinkHopBandwidth}; }

}  // namespace

Topology::Topology(int nodes, int gpus_per_node, LinkParams intra,
                   LinkParams inter, double nic_beta, double oversubscription,
                   int nodes_per_pod)
    : Topology(std::vector<int>(static_cast<size_t>(std::max(nodes, 0)),
                                gpus_per_node),
               intra, inter, nic_beta, oversubscription, nodes_per_pod) {
  // nodes <= 0 yields an empty vector, which the delegated constructor
  // rejects before this body runs.
}

Topology::Topology(std::vector<int> gpus, LinkParams intra, LinkParams inter,
                   double nic_beta, double oversubscription, int nodes_per_pod)
    : gpus_(std::move(gpus)), intra_(intra), inter_(inter),
      nic_beta_(nic_beta > 0.0 ? nic_beta : inter.beta),
      oversubscription_(oversubscription), nodes_per_pod_(nodes_per_pod) {
  HITOPK_CHECK(!gpus_.empty()) << "topology needs at least one node";
  HITOPK_CHECK_GE(oversubscription_, 1.0);
  HITOPK_CHECK_GE(nodes_per_pod_, 0);
  node_base_.reserve(gpus_.size() + 1);
  uniform_gpus_ = gpus_.front();
  for (int n : gpus_) {
    HITOPK_CHECK_GT(n, 0);
    node_base_.push_back(world_size_);
    world_size_ += n;
    max_gpus_ = std::max(max_gpus_, n);
    if (n != uniform_gpus_) uniform_gpus_ = 0;
  }
  node_base_.push_back(world_size_);
}

Topology Topology::tencent_cloud(int nodes, int gpus_per_node) {
  return Topology(nodes, gpus_per_node, nvlink(),
                  LinkParams{kEthernetAlpha, 1.0 / kTcpFlowBandwidth},
                  ethernet_beta(25.0));
}

Topology Topology::aws_p3(int nodes, int gpus_per_node) {
  return Topology(nodes, gpus_per_node, nvlink(),
                  LinkParams{kEthernetAlpha, 1.0 / kTcpFlowBandwidth},
                  ethernet_beta(25.0));
}

Topology Topology::aliyun(int nodes, int gpus_per_node) {
  return Topology(nodes, gpus_per_node, nvlink(),
                  LinkParams{kEthernetAlpha, 1.0 / kTcpFlowBandwidth},
                  ethernet_beta(32.0));
}

Topology Topology::infiniband_100g(int nodes, int gpus_per_node) {
  // RDMA verbs: a single queue pair reaches near line rate.
  return Topology(nodes, gpus_per_node, nvlink(),
                  LinkParams{kInfinibandAlpha, ethernet_beta(100.0, 0.9)},
                  ethernet_beta(100.0, 0.9));
}

int Topology::node_of(int rank) const {
  HITOPK_CHECK(rank >= 0 && rank < world_size_);
  if (uniform_gpus_ > 0) return rank / uniform_gpus_;
  // First node whose base exceeds rank sits one past rank's node.
  const auto it =
      std::upper_bound(node_base_.begin(), node_base_.end(), rank);
  return static_cast<int>(it - node_base_.begin()) - 1;
}

int Topology::local_rank(int rank) const {
  HITOPK_CHECK(rank >= 0 && rank < world_size_);
  if (uniform_gpus_ > 0) return rank % uniform_gpus_;
  return rank - node_base_[static_cast<size_t>(node_of(rank))];
}

int Topology::rank_of(int node, int local) const {
  HITOPK_CHECK(node >= 0 && node < nodes());
  HITOPK_CHECK(local >= 0 && local < gpus_[static_cast<size_t>(node)]);
  return node_base_[static_cast<size_t>(node)] + local;
}

bool Topology::same_node(int a, int b) const { return node_of(a) == node_of(b); }

int Topology::pods() const {
  if (nodes_per_pod_ <= 0 || nodes_per_pod_ >= nodes()) return 1;
  return (nodes() + nodes_per_pod_ - 1) / nodes_per_pod_;
}

int Topology::pod_of(int node) const {
  HITOPK_CHECK(node >= 0 && node < nodes());
  if (nodes_per_pod_ <= 0 || nodes_per_pod_ >= nodes()) return 0;
  return node / nodes_per_pod_;
}

const LinkParams& Topology::link_between(int a, int b) const {
  return same_node(a, b) ? intra_ : inter_;
}

uint64_t Topology::fingerprint() const {
  // FNV-1a over the structural fields.  Doubles hash by bit pattern — the
  // cache this feeds only needs "same parameters -> same key", not
  // tolerance-based equality.
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  auto mix_double = [&](double d) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  };
  mix(static_cast<uint64_t>(gpus_.size()));
  for (int n : gpus_) mix(static_cast<uint64_t>(n));
  mix_double(intra_.alpha);
  mix_double(intra_.beta);
  mix_double(inter_.alpha);
  mix_double(inter_.beta);
  mix_double(nic_beta_);
  mix_double(oversubscription_);
  mix(static_cast<uint64_t>(nodes_per_pod_));
  return h;
}

std::string Topology::describe() const {
  std::ostringstream os;
  if (uniform_gpus_ > 0) {
    os << nodes() << " nodes x " << uniform_gpus_ << " GPUs";
  } else {
    os << nodes() << " nodes x {";
    for (size_t n = 0; n < gpus_.size(); ++n) {
      os << (n == 0 ? "" : ",") << gpus_[n];
    }
    os << "} GPUs";
  }
  os << " | intra " << 1.0 / intra_.beta / 1e9 << " GB/s, "
     << intra_.alpha * 1e6 << " us"
     << " | inter " << 1.0 / inter_.beta / 1e9 << " GB/s, "
     << inter_.alpha * 1e6 << " us";
  if (oversubscription_ > 1.0) {
    os << " | " << oversubscription_ << ":1 oversubscribed";
    if (pods() > 1) os << " (" << pods() << " pods)";
  }
  return os.str();
}

}  // namespace hitopk::simnet
