#include "simnet/topology.h"

#include <sstream>

namespace hitopk::simnet {
namespace {

// Gbps line rate -> seconds/byte at the given achievable efficiency.
// Aggregate TCP goodput across many competing flows on a cloud VPC reaches
// only ~55% of line rate (framing, congestion control, virtualization).
double ethernet_beta(double gbps, double efficiency = 0.55) {
  return 1.0 / (gbps / 8.0 * 1e9 * efficiency);
}

constexpr double kNvlinkHopBandwidth = 45e9;  // bytes/s per ring hop
constexpr double kNvlinkAlpha = 6e-6;
constexpr double kEthernetAlpha = 25e-6;  // VPC / TCP stack latency
constexpr double kInfinibandAlpha = 5e-6;
// A single tuned TCP flow on a cloud VPC (NCCL socket transport): ~9.6 Gbps
// regardless of the 25/32 GbE line rate.
constexpr double kTcpFlowBandwidth = 1.2e9;  // bytes/s

LinkParams nvlink() { return LinkParams{kNvlinkAlpha, 1.0 / kNvlinkHopBandwidth}; }

}  // namespace

Topology::Topology(int nodes, int gpus_per_node, LinkParams intra,
                   LinkParams inter, double nic_beta)
    : nodes_(nodes), gpus_per_node_(gpus_per_node), intra_(intra),
      inter_(inter), nic_beta_(nic_beta > 0.0 ? nic_beta : inter.beta) {
  HITOPK_CHECK_GT(nodes, 0);
  HITOPK_CHECK_GT(gpus_per_node, 0);
}

Topology Topology::tencent_cloud(int nodes, int gpus_per_node) {
  return Topology(nodes, gpus_per_node, nvlink(),
                  LinkParams{kEthernetAlpha, 1.0 / kTcpFlowBandwidth},
                  ethernet_beta(25.0));
}

Topology Topology::aws_p3(int nodes, int gpus_per_node) {
  return Topology(nodes, gpus_per_node, nvlink(),
                  LinkParams{kEthernetAlpha, 1.0 / kTcpFlowBandwidth},
                  ethernet_beta(25.0));
}

Topology Topology::aliyun(int nodes, int gpus_per_node) {
  return Topology(nodes, gpus_per_node, nvlink(),
                  LinkParams{kEthernetAlpha, 1.0 / kTcpFlowBandwidth},
                  ethernet_beta(32.0));
}

Topology Topology::infiniband_100g(int nodes, int gpus_per_node) {
  // RDMA verbs: a single queue pair reaches near line rate.
  return Topology(nodes, gpus_per_node, nvlink(),
                  LinkParams{kInfinibandAlpha, ethernet_beta(100.0, 0.9)},
                  ethernet_beta(100.0, 0.9));
}

int Topology::node_of(int rank) const {
  HITOPK_CHECK(rank >= 0 && rank < world_size());
  return rank / gpus_per_node_;
}

int Topology::local_rank(int rank) const {
  HITOPK_CHECK(rank >= 0 && rank < world_size());
  return rank % gpus_per_node_;
}

int Topology::rank_of(int node, int local) const {
  HITOPK_CHECK(node >= 0 && node < nodes_);
  HITOPK_CHECK(local >= 0 && local < gpus_per_node_);
  return node * gpus_per_node_ + local;
}

bool Topology::same_node(int a, int b) const { return node_of(a) == node_of(b); }

const LinkParams& Topology::link_between(int a, int b) const {
  return same_node(a, b) ? intra_ : inter_;
}

std::string Topology::describe() const {
  std::ostringstream os;
  os << nodes_ << " nodes x " << gpus_per_node_ << " GPUs"
     << " | intra " << 1.0 / intra_.beta / 1e9 << " GB/s, "
     << intra_.alpha * 1e6 << " us"
     << " | inter " << 1.0 / inter_.beta / 1e9 << " GB/s, "
     << inter_.alpha * 1e6 << " us";
  return os.str();
}

}  // namespace hitopk::simnet
