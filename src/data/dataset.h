// Dataset descriptors for the paper's workloads.
//
// Substitution note (DESIGN.md): the real ImageNet/WMT17 bytes are not
// available, so datasets are described by their storage statistics — sample
// counts and encoded/decoded sizes — which is everything the I/O subsystem's
// behaviour depends on.
#pragma once

#include <cstddef>
#include <string>

namespace hitopk::data {

struct DatasetSpec {
  std::string name;
  size_t num_samples = 0;        // training set size
  size_t validation_samples = 0;
  size_t avg_encoded_bytes = 0;  // on-disk size per sample (JPEG / text)

  // ImageNet-1k train split: 1,281,167 JPEGs averaging ~110 KB; DAWNBench
  // validates on 100,000 samples (§5.6).
  static DatasetSpec imagenet();

  // WMT17 En-De: ~5.9 M sentence pairs, ~120 bytes each.
  static DatasetSpec wmt17();

  // Bytes of one decoded sample at the given square resolution (3 channels,
  // uint8).  For text datasets, resolution is ignored and the tokenized
  // sample size is returned.
  size_t decoded_bytes(int resolution) const;
};

}  // namespace hitopk::data
