#include "data/lru_cache.h"

namespace hitopk::data {

LruCache::LruCache(size_t capacity_bytes) : capacity_(capacity_bytes) {}

bool LruCache::get(uint64_t key) {
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return true;
}

void LruCache::put(uint64_t key, size_t bytes) {
  if (bytes > capacity_) return;
  auto it = index_.find(key);
  if (it != index_.end()) {
    used_ -= it->second->bytes;
    it->second->bytes = bytes;
    used_ += bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, bytes});
    index_[key] = lru_.begin();
    used_ += bytes;
  }
  while (used_ > capacity_) evict_one();
}

bool LruCache::contains(uint64_t key) const { return index_.count(key) > 0; }

void LruCache::clear() {
  lru_.clear();
  index_.clear();
  used_ = 0;
}

void LruCache::evict_one() {
  if (lru_.empty()) return;
  const Entry& victim = lru_.back();
  used_ -= victim.bytes;
  index_.erase(victim.key);
  lru_.pop_back();
  ++evictions_;
}

}  // namespace hitopk::data
