#include "data/dataset.h"

#include "core/check.h"

namespace hitopk::data {

DatasetSpec DatasetSpec::imagenet() {
  DatasetSpec spec;
  spec.name = "imagenet";
  spec.num_samples = 1'281'167;
  spec.validation_samples = 100'000;
  spec.avg_encoded_bytes = 110'000;
  return spec;
}

DatasetSpec DatasetSpec::wmt17() {
  DatasetSpec spec;
  spec.name = "wmt17";
  spec.num_samples = 5'900'000;
  spec.validation_samples = 3'004;  // newstest2017
  spec.avg_encoded_bytes = 120;
  return spec;
}

size_t DatasetSpec::decoded_bytes(int resolution) const {
  if (name == "wmt17") {
    // 256 tokens x 4-byte ids (one "sample" = one 256-word sentence, §5.5.2).
    return 256 * 4;
  }
  HITOPK_CHECK_GT(resolution, 0);
  return 3 * static_cast<size_t>(resolution) * static_cast<size_t>(resolution);
}

}  // namespace hitopk::data
