// DataCache: the paper's two-level caching for training data (Fig. 5, §4.1).
//
// Three fetch paths per sample, mirroring the figure:
//   first epoch of the first run : NFS -> (populate SSD cache) -> decode ->
//                                  augment -> (populate memory cache)
//   second or higher runs        : SSD cache -> decode -> augment ->
//                                  (populate memory cache)
//   second or higher epochs      : memory cache (pre-processed) -> augment
//
// The memory tier is a sharded key/value store: the dataset is split across
// the cluster's nodes (1/m of the samples per node) to bound memory use.
// Timing comes from per-tier bandwidth/latency models plus a multi-core
// decode/augment cost; reads and decodes pipeline (max), augmentation is a
// dependent stage (add).
#pragma once

#include <cstdint>
#include <span>

#include "data/dataset.h"
#include "data/lru_cache.h"

namespace hitopk::data {

// Storage-tier and preprocessing cost parameters, calibrated so the naive
// NFS path costs ~50 ms per 256-sample batch (Fig. 1 / Fig. 9) and the
// cached path ~10x less (Fig. 9).
struct IoParams {
  // Networked file system (CFS in Table 1), effective per node.
  double nfs_latency = 2e-3;
  double nfs_bandwidth = 600e6;  // bytes/s
  // Local SSD (instance store).
  double ssd_latency = 1e-4;
  double ssd_bandwidth = 1.5e9;
  // Host memory (key/value store of pre-processed samples).
  double ram_latency = 2e-6;
  double ram_bandwidth = 10e9;
  // Outstanding parallel read requests (latency amortization across the
  // node's async input pipelines).
  int parallel_requests = 64;
  // JPEG decode cost per image on one core (source-resolution bound).
  double decode_seconds_per_image = 6e-3;
  // Augmentation (crop/mirror/normalize) per image per core at 96x96;
  // scales with output pixel count.
  double augment_seconds_per_image_96 = 5e-4;
  // Pre-processing cores per node.
  int cpu_cores = 32;
};

struct DataCacheConfig {
  DatasetSpec dataset = DatasetSpec::imagenet();
  IoParams io;
  bool use_ssd_cache = true;
  bool use_memory_cache = true;
  size_t ssd_capacity_bytes = size_t{1} << 40;    // 1 TiB local SSD
  size_t memory_capacity_bytes = size_t{64} << 30;  // per-node cache budget
  int nodes = 16;  // memory cache shards the dataset across nodes
  // When non-zero, samples are cached pre-processed at this fixed
  // resolution and down-cropped per batch, so the DAWNBench multi-
  // resolution schedule does not invalidate the memory cache (decode
  // happens once, at the largest scheduled size).  Requested resolutions
  // above this value still force re-decoding.
  int cache_resolution = 0;
};

struct FetchBreakdown {
  double seconds = 0.0;
  size_t nfs_samples = 0;
  size_t ssd_samples = 0;
  size_t memory_samples = 0;
};

// Per-node cache state.  One DataCache instance models one node's caches;
// the trainer holds one per node (or one representative node, since access
// patterns are symmetric).
class DataCache {
 public:
  explicit DataCache(DataCacheConfig config);

  // Simulated seconds to produce one pre-processed batch at `resolution`.
  // `sample_ids` are global dataset indices; this node caches the ones it
  // fetches regardless of id (the shard assignment is the caller's choice).
  FetchBreakdown fetch_batch(std::span<const uint64_t> sample_ids,
                             int resolution);

  // Epoch-position convenience: fetches batch `iteration` of this node's
  // shard (node_samples consecutive ids starting at shard_offset).
  FetchBreakdown fetch_shard_batch(uint64_t shard_offset, uint64_t iteration,
                                   size_t batch_size, int resolution);

  // Marks the start of a new run (hyper-parameter restart): the memory cache
  // is gone (new process) but the node's SSD file cache survives.
  void new_run();

  // The memory cache stores samples pre-processed at a fixed resolution;
  // changing resolution (DAWNBench schedule) invalidates it.
  void set_resolution(int resolution);

  const LruCache& ssd_cache() const { return ssd_; }
  const LruCache& memory_cache() const { return memory_; }
  const DataCacheConfig& config() const { return config_; }

 private:
  DataCacheConfig config_;
  LruCache ssd_;
  LruCache memory_;
  int cached_resolution_ = 0;
};

}  // namespace hitopk::data
