#include "data/datacache.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/check.h"

namespace hitopk::data {
namespace {

double read_seconds(const IoParams& io, double latency, double bandwidth,
                    size_t count, size_t bytes) {
  if (count == 0) return 0.0;
  const double batches = std::ceil(static_cast<double>(count) /
                                   static_cast<double>(io.parallel_requests));
  return latency * batches + static_cast<double>(bytes) / bandwidth;
}

}  // namespace

DataCache::DataCache(DataCacheConfig config)
    : config_(std::move(config)),
      ssd_(config_.use_ssd_cache ? config_.ssd_capacity_bytes : 0),
      memory_(config_.use_memory_cache ? config_.memory_capacity_bytes : 0) {}

FetchBreakdown DataCache::fetch_batch(std::span<const uint64_t> sample_ids,
                                      int resolution) {
  set_resolution(resolution);
  const IoParams& io = config_.io;
  const size_t encoded = config_.dataset.avg_encoded_bytes;
  // Cached entries may be stored at a fixed (larger) resolution.
  const int stored_resolution =
      config_.cache_resolution > 0
          ? std::max(config_.cache_resolution, resolution)
          : resolution;
  const size_t decoded = config_.dataset.decoded_bytes(stored_resolution);

  FetchBreakdown out;
  size_t nfs_bytes = 0, ssd_bytes = 0, ram_bytes = 0;
  for (uint64_t id : sample_ids) {
    if (config_.use_memory_cache && memory_.get(id)) {
      ++out.memory_samples;
      ram_bytes += decoded;
      continue;
    }
    if (config_.use_ssd_cache && ssd_.get(id)) {
      ++out.ssd_samples;
      ssd_bytes += encoded;
    } else {
      ++out.nfs_samples;
      nfs_bytes += encoded;
      if (config_.use_ssd_cache) ssd_.put(id, encoded);
    }
    if (config_.use_memory_cache) memory_.put(id, decoded);
  }

  // Reads from the three tiers proceed concurrently (different samples,
  // different devices); decode pipelines with the encoded-tier reads.
  const double nfs = read_seconds(io, io.nfs_latency, io.nfs_bandwidth,
                                  out.nfs_samples, nfs_bytes);
  const double ssd = read_seconds(io, io.ssd_latency, io.ssd_bandwidth,
                                  out.ssd_samples, ssd_bytes);
  const double ram = read_seconds(io, io.ram_latency, io.ram_bandwidth,
                                  out.memory_samples, ram_bytes);
  const double decode = static_cast<double>(out.nfs_samples + out.ssd_samples) *
                        io.decode_seconds_per_image /
                        static_cast<double>(io.cpu_cores);

  const double augment_per_image =
      io.augment_seconds_per_image_96 *
      (config_.dataset.name == "wmt17"
           ? 0.02  // tokenized text needs no pixel work
           : static_cast<double>(resolution) * resolution / (96.0 * 96.0));
  const double augment = static_cast<double>(sample_ids.size()) *
                         augment_per_image /
                         static_cast<double>(io.cpu_cores);

  out.seconds = std::max({nfs, ssd, ram, decode}) + augment;
  return out;
}

FetchBreakdown DataCache::fetch_shard_batch(uint64_t shard_offset,
                                            uint64_t iteration,
                                            size_t batch_size, int resolution) {
  const size_t shard_samples = config_.dataset.num_samples /
                               static_cast<size_t>(std::max(1, config_.nodes));
  HITOPK_CHECK_GT(shard_samples, 0u);
  std::vector<uint64_t> ids(batch_size);
  for (size_t i = 0; i < batch_size; ++i) {
    ids[i] = shard_offset + (iteration * batch_size + i) % shard_samples;
  }
  return fetch_batch(ids, resolution);
}

void DataCache::new_run() { memory_.clear(); }

void DataCache::set_resolution(int resolution) {
  HITOPK_CHECK_GT(resolution, 0);
  if (config_.cache_resolution > 0 &&
      resolution <= config_.cache_resolution) {
    // Fixed-resolution caching: down-cropping per batch keeps entries valid
    // across the DAWNBench resolution schedule.
    cached_resolution_ = config_.cache_resolution;
    return;
  }
  if (cached_resolution_ != 0 && cached_resolution_ != resolution) {
    memory_.clear();  // cached pre-processed samples are the wrong size
  }
  cached_resolution_ = resolution;
}

}  // namespace hitopk::data
