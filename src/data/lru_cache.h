// Byte-budgeted LRU cache keyed by sample id.
//
// Real data structure (list + hash map), used by both cache tiers of
// DataCache: the SSD tier caches encoded files, the memory tier caches
// pre-processed samples (the key/value store of §4.1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>

namespace hitopk::data {

class LruCache {
 public:
  explicit LruCache(size_t capacity_bytes);

  // True and touches the entry on hit.
  bool get(uint64_t key);

  // Inserts or refreshes; evicts least-recently-used entries until the new
  // entry fits.  Entries larger than the whole capacity are not cached.
  void put(uint64_t key, size_t bytes);

  // Read-only membership test (no LRU touch).
  bool contains(uint64_t key) const;

  void clear();

  size_t capacity_bytes() const { return capacity_; }
  size_t used_bytes() const { return used_; }
  size_t entries() const { return index_.size(); }
  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }
  size_t evictions() const { return evictions_; }

 private:
  struct Entry {
    uint64_t key;
    size_t bytes;
  };

  void evict_one();

  size_t capacity_;
  size_t used_ = 0;
  size_t hits_ = 0;
  size_t misses_ = 0;
  size_t evictions_ = 0;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_;
};

}  // namespace hitopk::data
