// PTO: the paper's parallel tensor operator (§4.2, Eq. 12-14).
//
// After gradient aggregation every GPU holds identical tensors, so any
// replicated post-processing op r = OP(g) can be partitioned: rank p
// computes OP on its slice g[p], and an All-Gather reassembles r.  PTO pays
// one extra (tiny) All-Gather to divide the compute by P; it wins whenever
// the gathered payload is small — e.g. LARS layer-wise rates are one scalar
// per layer (§4.2: 161 scalars for ResNet-50 across 128 GPUs).
#pragma once

#include <functional>
#include <vector>

#include "collectives/common.h"
#include "simgpu/gpu_model.h"

namespace hitopk::pto {

// Work partition of `items` across `world` ranks (contiguous slices, same
// balanced split as collective chunking).
struct PtoPlan {
  int world = 1;
  size_t items = 0;

  coll::ChunkRange slice(int rank) const;
  // Largest slice size (the critical-path rank).
  size_t max_slice() const;
};

// Functionally executes OP over all items via the PTO partition: every rank
// computes its slice; the returned vector is the reassembled result (equal
// on every rank by construction).  `op(item_index)` must be deterministic.
std::vector<float> pto_compute(const PtoPlan& plan,
                               const std::function<float(size_t)>& op);

// Simulated time of the PTO All-Gather: every rank contributes
// slice_items * bytes_per_item, gathered hierarchically (intra-node ring,
// then inter-node ring of node leaders, then intra broadcast is unnecessary
// since the intra ring already replicates).  Returns completion time.
double pto_allgather_seconds(simnet::Cluster& cluster, size_t items,
                             size_t bytes_per_item, double start);

// End-to-end PTO timing for an op whose serial device time is
// serial_seconds: compute shrinks by the partition factor; the all-gather
// and a framework overhead (TF graph partitioning, calibrated in
// models/calibration.h) are added.
struct PtoTiming {
  double serial_seconds = 0.0;
  double pto_seconds = 0.0;
  double speedup() const {
    return pto_seconds > 0.0 ? serial_seconds / pto_seconds : 0.0;
  }
};

PtoTiming pto_timing(simnet::Cluster& cluster, size_t items,
                     size_t bytes_per_item, double serial_seconds,
                     double framework_overhead);

}  // namespace hitopk::pto
