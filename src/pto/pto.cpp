#include "pto/pto.h"

#include <algorithm>

#include "collectives/ring.h"
#include "core/check.h"

namespace hitopk::pto {

coll::ChunkRange PtoPlan::slice(int rank) const {
  HITOPK_CHECK(rank >= 0 && rank < world);
  return coll::chunk_range(items, static_cast<size_t>(world),
                           static_cast<size_t>(rank));
}

size_t PtoPlan::max_slice() const {
  HITOPK_CHECK_GT(world, 0);
  return coll::chunk_range(items, static_cast<size_t>(world), 0).count;
}

std::vector<float> pto_compute(const PtoPlan& plan,
                               const std::function<float(size_t)>& op) {
  std::vector<float> result(plan.items, 0.0f);
  // Each rank computes only its slice; concatenation is the all-gather.
  for (int rank = 0; rank < plan.world; ++rank) {
    const coll::ChunkRange range = plan.slice(rank);
    for (size_t i = range.begin; i < range.begin + range.count; ++i) {
      result[i] = op(i);
    }
  }
  return result;
}

double pto_allgather_seconds(simnet::Cluster& cluster, size_t items,
                             size_t bytes_per_item, double start) {
  const simnet::Topology& topo = cluster.topology();
  const int world = topo.world_size();
  if (world <= 1 || items == 0) return start;
  const PtoPlan plan{world, items};

  // Stage 1: intra-node ring all-gather of the per-rank slices.
  double stage1 = start;
  for (int node = 0; node < topo.nodes(); ++node) {
    const coll::Group group = coll::node_group(topo, node);
    std::vector<size_t> payload(group.size());
    for (size_t i = 0; i < group.size(); ++i) {
      payload[i] = plan.slice(group[i]).count * bytes_per_item;
    }
    stage1 = std::max(
        stage1, coll::ring_allgather_bytes(cluster, group, payload, start));
  }

  // Stage 2: inter-node ring all-gather among local rank 0 of each node,
  // each contributing its node's concatenated slices.
  coll::Group leaders;
  std::vector<size_t> node_payload;
  for (int node = 0; node < topo.nodes(); ++node) {
    leaders.push_back(topo.rank_of(node, 0));
    size_t bytes = 0;
    for (int rank : coll::node_group(topo, node)) {
      bytes += plan.slice(rank).count * bytes_per_item;
    }
    node_payload.push_back(bytes);
  }
  const double stage2 =
      coll::ring_allgather_bytes(cluster, leaders, node_payload, stage1);

  // Stage 3: leaders broadcast the foreign-node items inside the node —
  // recorded as a one-step schedule (timing-only; PTO moves no tensor data
  // here) so the broadcast is a schedule definition like every other leg.
  coll::Schedule bcast;
  const uint32_t slot0 =
      bcast.add_slots(static_cast<uint32_t>(topo.world_size()));
  const size_t total_bytes = items * bytes_per_item;
  for (int node = 0; node < topo.nodes(); ++node) {
    const int leader = topo.rank_of(node, 0);
    for (int local = 1; local < topo.gpus_on_node(node); ++local) {
      const int dst = topo.rank_of(node, local);
      bcast.send(leader, dst, total_bytes, slot0 + static_cast<uint32_t>(leader),
                 slot0 + static_cast<uint32_t>(dst));
    }
  }
  return bcast.run_timing(cluster, stage2).finish;
}

PtoTiming pto_timing(simnet::Cluster& cluster, size_t items,
                     size_t bytes_per_item, double serial_seconds,
                     double framework_overhead) {
  PtoTiming timing;
  timing.serial_seconds = serial_seconds;
  const int world = cluster.topology().world_size();
  const PtoPlan plan{world, items};
  const double compute =
      serial_seconds * static_cast<double>(plan.max_slice()) /
      static_cast<double>(std::max<size_t>(1, items));
  const double gather_done =
      pto_allgather_seconds(cluster, items, bytes_per_item, compute);
  timing.pto_seconds = gather_done + framework_overhead;
  return timing;
}

}  // namespace hitopk::pto
