#include "pto/lars.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace hitopk::pto {
namespace {

// Shared velocity-map export helpers (SgdOptimizer and LarsOptimizer store
// the same unordered_map<string, Tensor> momentum state).
std::vector<std::string> sorted_keys(
    const std::unordered_map<std::string, Tensor>& m) {
  std::vector<std::string> out;
  out.reserve(m.size());
  for (const auto& [key, value] : m) out.push_back(key);
  std::sort(out.begin(), out.end());
  return out;
}

std::span<const float> lookup_state(
    const std::unordered_map<std::string, Tensor>& m, const std::string& key) {
  auto it = m.find(key);
  HITOPK_CHECK(it != m.end()) << "no optimizer state for" << key;
  return it->second.span();
}

void store_state(std::unordered_map<std::string, Tensor>& m,
                 const std::string& key, std::span<const float> values) {
  Tensor t(values.size());
  std::copy(values.begin(), values.end(), t.span().begin());
  m[key] = std::move(t);
}

}  // namespace

float lars_rate(const LarsConfig& config, float weight_norm, float grad_norm) {
  if (weight_norm <= 0.0f) return 1.0f;  // fresh tensors: no scaling signal
  const double denominator =
      static_cast<double>(grad_norm) +
      config.weight_decay * static_cast<double>(weight_norm) + config.epsilon;
  return static_cast<float>(config.trust_coefficient *
                            static_cast<double>(weight_norm) / denominator);
}

SgdOptimizer::SgdOptimizer(double momentum, double weight_decay)
    : momentum_(momentum), weight_decay_(weight_decay) {}

namespace {

// Blocked constant-trip momentum update over restrict pointers so the GCC12
// -O2 vectorizer engages; this runs once per iteration over every parameter
// in the convergence loop.
void sgd_update(float* __restrict__ w, float* __restrict__ v,
                const float* __restrict__ g, size_t n, float momentum,
                float weight_decay, float lr) {
  constexpr size_t kBlock = 16;
  const size_t full_end = n - n % kBlock;
  for (size_t base = 0; base < full_end; base += kBlock) {
    float* wb = w + base;
    float* vb = v + base;
    const float* gb = g + base;
    for (size_t j = 0; j < kBlock; ++j) {
      vb[j] = momentum * vb[j] + (gb[j] + weight_decay * wb[j]);
      wb[j] -= lr * vb[j];
    }
  }
  for (size_t i = full_end; i < n; ++i) {
    v[i] = momentum * v[i] + (g[i] + weight_decay * w[i]);
    w[i] -= lr * v[i];
  }
}

}  // namespace

void SgdOptimizer::step(const std::string& key, std::span<float> weights,
                        std::span<const float> grad, double lr) {
  HITOPK_CHECK_EQ(weights.size(), grad.size());
  auto [it, inserted] = velocity_.try_emplace(key, weights.size());
  Tensor& v = it->second;
  HITOPK_CHECK_EQ(v.size(), weights.size());
  sgd_update(weights.data(), v.data(), grad.data(), weights.size(),
             static_cast<float>(momentum_), static_cast<float>(weight_decay_),
             static_cast<float>(lr));
}

std::vector<std::string> SgdOptimizer::state_keys() const {
  return sorted_keys(velocity_);
}

std::span<const float> SgdOptimizer::state(const std::string& key) const {
  return lookup_state(velocity_, key);
}

void SgdOptimizer::set_state(const std::string& key,
                             std::span<const float> values) {
  store_state(velocity_, key, values);
}

LarsOptimizer::LarsOptimizer(LarsConfig config) : config_(config) {}

void LarsOptimizer::step(const std::string& key, std::span<float> weights,
                         std::span<const float> grad, double lr) {
  HITOPK_CHECK_EQ(weights.size(), grad.size());
  const float w_norm = tensor_ops::l2_norm(
      std::span<const float>(weights.data(), weights.size()));
  const float g_norm = tensor_ops::l2_norm(grad);
  const float rate = lars_rate(config_, w_norm, g_norm);
  last_rate_[key] = rate;

  auto [it, inserted] = velocity_.try_emplace(key, weights.size());
  Tensor& v = it->second;
  HITOPK_CHECK_EQ(v.size(), weights.size());
  const float scaled_lr = static_cast<float>(lr) * rate;
  for (size_t i = 0; i < weights.size(); ++i) {
    const float g =
        grad[i] + static_cast<float>(config_.weight_decay) * weights[i];
    v[i] = static_cast<float>(config_.momentum) * v[i] + scaled_lr * g;
    weights[i] -= v[i];
  }
}

float LarsOptimizer::last_rate(const std::string& key) const {
  auto it = last_rate_.find(key);
  return it == last_rate_.end() ? 0.0f : it->second;
}

std::vector<std::string> LarsOptimizer::state_keys() const {
  return sorted_keys(velocity_);
}

std::span<const float> LarsOptimizer::state(const std::string& key) const {
  return lookup_state(velocity_, key);
}

void LarsOptimizer::set_state(const std::string& key,
                              std::span<const float> values) {
  store_state(velocity_, key, values);
}

LambOptimizer::LambOptimizer(double beta1, double beta2, double weight_decay,
                             double epsilon)
    : beta1_(beta1), beta2_(beta2), weight_decay_(weight_decay),
      epsilon_(epsilon) {}

void LambOptimizer::step(const std::string& key, std::span<float> weights,
                         std::span<const float> grad, double lr) {
  HITOPK_CHECK_EQ(weights.size(), grad.size());
  auto [it, inserted] = state_.try_emplace(key);
  State& s = it->second;
  if (inserted) {
    s.m = Tensor(weights.size());
    s.v = Tensor(weights.size());
  }
  HITOPK_CHECK_EQ(s.m.size(), weights.size());
  ++s.step;

  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(s.step));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(s.step));
  // Adam update direction with decoupled weight decay.
  Tensor update(weights.size());
  for (size_t i = 0; i < weights.size(); ++i) {
    s.m[i] = static_cast<float>(beta1_ * s.m[i] + (1.0 - beta1_) * grad[i]);
    s.v[i] = static_cast<float>(beta2_ * s.v[i] +
                                (1.0 - beta2_) * grad[i] * grad[i]);
    const double m_hat = s.m[i] / bc1;
    const double v_hat = s.v[i] / bc2;
    update[i] = static_cast<float>(m_hat / (std::sqrt(v_hat) + epsilon_) +
                                   weight_decay_ * weights[i]);
  }
  const float w_norm = tensor_ops::l2_norm(
      std::span<const float>(weights.data(), weights.size()));
  const float u_norm = update.l2_norm();
  const float trust =
      (w_norm > 0.0f && u_norm > 0.0f) ? w_norm / u_norm : 1.0f;
  for (size_t i = 0; i < weights.size(); ++i) {
    weights[i] -= static_cast<float>(lr) * trust * update[i];
  }
}

}  // namespace hitopk::pto
