// LARS: layer-wise adaptive rate scaling (You et al. 2018), Eq. 11:
//
//   lambda_l = gamma * eta_t * ||w_l|| / (||g_l|| + eps_wd * ||w_l||)
//
// required for the paper's 32K-batch training, plus the plain momentum-SGD
// baseline and LAMB.  The optimizers here are *functional* (they update real
// tensors in the convergence experiments); the simulated device cost of the
// layer-wise norms lives in simgpu::GpuCostModel::lars_seconds and the PTO
// partitioning in pto/pto.h.
#pragma once

#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/tensor.h"

namespace hitopk::pto {

struct LarsConfig {
  double trust_coefficient = 0.001;  // gamma
  double weight_decay = 5e-5;        // eps in Eq. 11's denominator term
  double momentum = 0.9;
  double epsilon = 1e-9;  // numerical floor for zero norms
};

// The layer-wise learning-rate multiplier of Eq. 11 (excluding eta_t, which
// the caller applies).
float lars_rate(const LarsConfig& config, float weight_norm, float grad_norm);

// Momentum SGD baseline: w -= lr * (m = mu*m + g + wd*w).
class SgdOptimizer {
 public:
  explicit SgdOptimizer(double momentum = 0.9, double weight_decay = 0.0);

  void step(const std::string& key, std::span<float> weights,
            std::span<const float> grad, double lr);

  // Momentum-state export/import for checkpointing (sorted keys = canonical
  // serialization order) and elastic worker management.
  std::vector<std::string> state_keys() const;
  std::span<const float> state(const std::string& key) const;
  void set_state(const std::string& key, std::span<const float> values);
  // Drops the velocity for `key` (a rejoining worker restarts cold).
  void reset(const std::string& key) { velocity_.erase(key); }
  void clear() { velocity_.clear(); }

 private:
  double momentum_;
  double weight_decay_;
  std::unordered_map<std::string, Tensor> velocity_;
};

// LARS optimizer: momentum SGD with the per-tensor trust ratio of Eq. 11.
class LarsOptimizer {
 public:
  explicit LarsOptimizer(LarsConfig config = LarsConfig{});

  void step(const std::string& key, std::span<float> weights,
            std::span<const float> grad, double lr);

  // The rate used in the most recent step for `key` (diagnostics / tests).
  float last_rate(const std::string& key) const;

  // Momentum-state export/import, mirroring SgdOptimizer's (last_rate_ is a
  // diagnostic recomputed every step, so it is not part of the state).
  std::vector<std::string> state_keys() const;
  std::span<const float> state(const std::string& key) const;
  void set_state(const std::string& key, std::span<const float> values);
  void clear() {
    velocity_.clear();
    last_rate_.clear();
  }

 private:
  LarsConfig config_;
  std::unordered_map<std::string, Tensor> velocity_;
  std::unordered_map<std::string, float> last_rate_;
};

// LAMB (You et al. 2020): Adam statistics with a per-tensor trust ratio.
class LambOptimizer {
 public:
  LambOptimizer(double beta1 = 0.9, double beta2 = 0.999,
                double weight_decay = 0.01, double epsilon = 1e-6);

  void step(const std::string& key, std::span<float> weights,
            std::span<const float> grad, double lr);

 private:
  double beta1_, beta2_, weight_decay_, epsilon_;
  struct State {
    Tensor m;
    Tensor v;
    long step = 0;
  };
  std::unordered_map<std::string, State> state_;
};

}  // namespace hitopk::pto
