#include "train/fusion.h"

#include "core/check.h"

namespace hitopk::train {

std::vector<GradientBucket> fuse_buckets(
    const std::vector<size_t>& backprop_sizes, size_t fusion_bytes,
    size_t bytes_per_elem, const std::vector<double>& compute_weights) {
  HITOPK_CHECK_GT(bytes_per_elem, 0u);
  if (!compute_weights.empty()) {
    HITOPK_CHECK_EQ(compute_weights.size(), backprop_sizes.size());
  }
  auto weight_of = [&](size_t i) {
    return compute_weights.empty() ? static_cast<double>(backprop_sizes[i])
                                   : compute_weights[i];
  };
  double total_weight = 0.0;
  for (size_t i = 0; i < backprop_sizes.size(); ++i) {
    total_weight += weight_of(i);
  }

  std::vector<GradientBucket> buckets;
  GradientBucket current;
  double cumulative_weight = 0.0;
  for (size_t i = 0; i < backprop_sizes.size(); ++i) {
    current.elems += backprop_sizes[i];
    current.layers += 1;
    cumulative_weight += weight_of(i);
    if (current.elems * bytes_per_elem >= fusion_bytes) {
      current.ready_fraction =
          total_weight > 0.0 ? cumulative_weight / total_weight : 1.0;
      buckets.push_back(current);
      current = GradientBucket{};
    }
  }
  if (current.elems > 0) {
    current.ready_fraction = 1.0;
    buckets.push_back(current);
  }
  return buckets;
}

}  // namespace hitopk::train
