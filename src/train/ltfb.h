// LTFB-style tournament training (Livermore Tournament Fast Batch).
//
// Several *populations* — disjoint node slices of the cluster, each a full
// data-parallel ConvergenceEngine with its own shuffle stream — train
// independently for `round_epochs` epochs, then hold a tournament: standing
// populations pair off in index order, leaders exchange candidate models
// over the full-cluster fabric (a two-sided parameter send on the transfer
// schedule engine, charged to the shared wall clock), each pair compares
// validation quality, and the loser adopts the winner's parameters (clearing
// momentum and error-feedback residuals, which describe the replaced model).
// An odd population count gives the tail population a bye.
//
// The fault plan addresses workers by *global* index (population p's local
// worker w is global rank p * training.world() + w).  Populations tolerate
// losing a subset of workers mid-round — the engine's elastic path shrinks
// them and the round completes — while a population that loses its *last*
// worker forfeits: it drops out of the tournament for the rest of the run
// (its slice of spot capacity is gone; later recovery events for its workers
// are ignored).  When every population forfeits the run ends with
// completed = false.
//
// Everything is deterministic: population p trains with engine seed
// training.seed + p * seed_stride, events are consumed at lockstep iteration
// boundaries, and ties go to the lower population index.
#pragma once

#include <functional>
#include <memory>

#include "simnet/fault.h"
#include "train/convergence.h"

namespace hitopk::train {

// Builds population `p`'s task.  All populations must produce tasks of the
// same shape (param_count, train_size) and a comparable held-out metric —
// call the same factory with the same data seed and let the engine seeds
// differentiate the trajectories.
using TaskFactory = std::function<std::unique_ptr<ConvergenceTask>(int p)>;

struct LtfbOptions {
  // Per-population shape: `nodes` is the size of one population's node
  // slice, `epochs` the total per-population budget (must divide evenly
  // into rounds of round_epochs).
  ConvergenceOptions training;
  int populations = 2;
  int round_epochs = 1;
  simnet::FaultPlan faults;  // global worker indices (see header comment)
  double compute_seconds_per_iter = 0.05;
  double reschedule_seconds = 0.5;
  uint64_t seed_stride = 7919;
};

struct LtfbRoundPoint {
  int round = 0;                  // 1-based
  int standing = 0;               // populations still in the tournament
  std::vector<int> winners;       // winning population of each played pair
  std::vector<double> qualities;  // per population; -1 once forfeited
};

struct LtfbResult {
  std::vector<LtfbRoundPoint> rounds;
  std::vector<double> final_quality;  // per population; -1 once forfeited
  int best_population = 0;
  double best_quality = 0.0;
  double wall_seconds = 0.0;
  int preemptions = 0;  // events that hit a live worker
  int regrows = 0;      // workers returned to a standing population
  int exchanges = 0;    // pairwise model exchanges played
  int forfeits = 0;     // populations that lost their last worker
  bool completed = true;
};

// Runs the tournament.  `factory` is called once per population up front.
LtfbResult run_ltfb(const TaskFactory& factory, const LtfbOptions& options);

}  // namespace hitopk::train
