#include "train/dawnbench.h"

#include <algorithm>
#include <numeric>

#include "core/check.h"
#include "data/datacache.h"

namespace hitopk::train {

DawnbenchSchedule DawnbenchSchedule::paper_recipe() {
  DawnbenchSchedule schedule;
  schedule.phases = {
      {13, 96, 256, Algorithm::kMstopkHitopk},
      {11, 128, 256, Algorithm::kDense2dTorus},
      {3, 224, 256, Algorithm::kDense2dTorus},
      {1, 288, 128, Algorithm::kDense2dTorus},
  };
  return schedule;
}

int DawnbenchSchedule::total_epochs() const {
  int total = 0;
  for (const auto& phase : phases) total += phase.epochs;
  return total;
}

DawnbenchReport simulate_dawnbench(const simnet::Topology& topology,
                                   const DawnbenchSchedule& schedule) {
  HITOPK_CHECK(!schedule.phases.empty());
  const data::DatasetSpec dataset = data::DatasetSpec::imagenet();

  // Persistent per-node cache: decoded samples stored at the schedule's
  // largest resolution so later phases reuse them.
  int max_resolution = 0;
  for (const auto& phase : schedule.phases) {
    max_resolution = std::max(max_resolution, phase.resolution);
  }
  data::DataCacheConfig cache_config;
  cache_config.dataset = dataset;
  cache_config.nodes = topology.nodes();
  cache_config.cache_resolution = max_resolution;
  data::DataCache cache(cache_config);

  if (schedule.prewarm_caches) {
    // Stage one pass of the node's shard at the cache resolution; the fetch
    // cost is paid outside the timed run.
    const size_t node_shard =
        dataset.num_samples / static_cast<size_t>(topology.nodes());
    const size_t chunk = 4096;
    for (size_t begin = 0; begin < node_shard; begin += chunk) {
      std::vector<uint64_t> ids(std::min(chunk, node_shard - begin));
      std::iota(ids.begin(), ids.end(), begin);
      cache.fetch_batch(ids, max_resolution);
    }
  }

  DawnbenchReport report;
  for (const auto& phase : schedule.phases) {
    TrainerOptions options;
    options.model = "resnet50";
    options.resolution = phase.resolution;
    options.local_batch = phase.local_batch;
    options.algorithm = phase.algorithm;
    TrainingSimulator sim(topology, options);

    const size_t global_batch = static_cast<size_t>(phase.local_batch) *
                                static_cast<size_t>(topology.world_size());
    const size_t iterations_per_epoch =
        (dataset.num_samples + global_batch - 1) / global_batch;
    const size_t node_batch = static_cast<size_t>(phase.local_batch) *
                              static_cast<size_t>(topology.gpus_on_node(0));

    PhaseReport phase_report;
    phase_report.phase = phase;
    phase_report.single_gpu_throughput = sim.simulate_single_gpu().throughput;

    for (int epoch = 0; epoch < phase.epochs; ++epoch) {
      double epoch_seconds = 0.0;
      double steady_throughput = 0.0;
      // Walk one node's shard; access symmetry makes one node
      // representative of all.
      for (size_t it = 0; it < iterations_per_epoch; ++it) {
        const auto fetch =
            cache.fetch_shard_batch(0, it, node_batch, phase.resolution);
        const auto iteration = sim.simulate_with_io(fetch.seconds);
        epoch_seconds += iteration.total;
        steady_throughput = iteration.throughput;
      }
      if (epoch == 0) phase_report.first_epoch_seconds = epoch_seconds;
      // Steady-state cluster throughput (warm cache) defines the Table 4
      // entry; the last iteration of the epoch is steady.
      phase_report.cluster_throughput = steady_throughput;
      phase_report.seconds += epoch_seconds;
    }
    phase_report.scaling_efficiency =
        phase_report.cluster_throughput /
        (static_cast<double>(topology.world_size()) *
         phase_report.single_gpu_throughput);
    report.train_seconds += phase_report.seconds;
    report.phases.push_back(phase_report);
  }
  report.eval_seconds = schedule.eval_seconds_per_epoch *
                        static_cast<double>(schedule.total_epochs());
  report.total_seconds = report.train_seconds + report.eval_seconds;
  return report;
}

}  // namespace hitopk::train
