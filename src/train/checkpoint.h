// Checksummed, versioned training-state snapshots.
//
// A checkpoint is a flat byte blob of named, typed records (u64 / f64 /
// float32 payloads), each protected by its own FNV-1a 64 checksum, with a
// whole-blob footer checksum on top.  The two layers split the failure
// modes: a flipped byte inside a record trips that record's checksum (and
// names the culprit), while truncation, reordering, or a torn tail trips
// the footer.  CheckpointReader verifies everything up front and throws
// ConfigError — the *recoverable* error type (core/check.h) — so a corrupt
// snapshot is an input condition callers handle, never a crash.
//
// CheckpointStore keeps the last `max_versions` committed blobs.  commit()
// validates the blob before retiring the oldest version (a malformed blob
// leaves the store untouched), and newest_valid() re-verifies on the way
// out, silently falling back to the previous version when the newest is
// corrupt — the torn-checkpoint contract the fault-tolerant convergence
// driver relies on.  The store is an in-memory version ring; durability
// media (local disk, object store) would wrap the same blobs without
// changing the format.
//
// Multi-byte values are encoded little-endian via memcpy (the toolchain
// targets little-endian platforms; the checksums would reject a
// foreign-endian blob rather than misread it).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace hitopk::train {

// FNV-1a 64-bit over a byte range (the record and footer checksum).
uint64_t fnv1a64(std::span<const uint8_t> bytes,
                 uint64_t basis = 0xcbf29ce484222325ull);

class CheckpointWriter {
 public:
  CheckpointWriter();

  void put_u64s(std::string_view name, std::span<const uint64_t> values);
  void put_f64s(std::string_view name, std::span<const double> values);
  void put_floats(std::string_view name, std::span<const float> values);

  // Appends the footer checksum and returns the blob.  The writer is spent
  // afterwards (throws CheckError on further use).
  std::vector<uint8_t> finish();

 private:
  void put_record(std::string_view name, uint8_t type,
                  std::span<const uint8_t> payload);

  std::vector<uint8_t> blob_;
  bool finished_ = false;
};

class CheckpointReader {
 public:
  // Parses and fully verifies `blob`; throws ConfigError on any corruption
  // (bad magic, record checksum mismatch, truncation, footer mismatch).
  explicit CheckpointReader(std::span<const uint8_t> blob);

  // Record names in blob order.
  const std::vector<std::string>& names() const { return names_; }
  bool has(std::string_view name) const;

  // Typed accessors; throw ConfigError when the record is missing or was
  // written with a different type.
  std::span<const uint64_t> u64s(std::string_view name) const;
  std::span<const double> f64s(std::string_view name) const;
  std::span<const float> floats(std::string_view name) const;

 private:
  struct Record {
    uint8_t type = 0;
    std::vector<uint64_t> u;
    std::vector<double> d;
    std::vector<float> f;
  };
  const Record& record(std::string_view name, uint8_t type) const;

  std::vector<std::string> names_;
  std::unordered_map<std::string, Record> records_;
};

class CheckpointStore {
 public:
  explicit CheckpointStore(size_t max_versions = 2);

  // Validates `blob` (parse + checksums), stores it as the newest version,
  // and retires the oldest once `max_versions` is exceeded.  Returns the
  // version id (monotonically increasing from 1).  Throws ConfigError for a
  // malformed blob, leaving the store unchanged — a failed write must never
  // evict a good snapshot.
  uint64_t commit(std::vector<uint8_t> blob);

  // Newest version whose blob still verifies, or nullopt when none does.
  // Every corrupt version skipped on the way increments fallbacks().
  struct Snapshot {
    uint64_t version = 0;
    const std::vector<uint8_t>* blob = nullptr;
  };
  std::optional<Snapshot> newest_valid();

  size_t versions() const { return slots_.size(); }
  uint64_t newest_version() const;
  // Corrupt versions skipped by newest_valid() so far (restore diagnostics).
  int fallbacks() const { return fallbacks_; }

  // Mutable access for fault-injection tests (flip a byte, then watch
  // newest_valid() fall back).  Throws CheckError for an unknown version.
  std::vector<uint8_t>& mutable_blob(uint64_t version);

 private:
  struct Slot {
    uint64_t version = 0;
    std::vector<uint8_t> blob;
  };
  size_t max_versions_;
  uint64_t next_version_ = 1;
  std::vector<Slot> slots_;  // oldest first
  int fallbacks_ = 0;
};

}  // namespace hitopk::train
