// Tenant job bodies for the multi-tenant JobScheduler.
//
// simnet::JobScheduler (simnet/job_scheduler.h) is collective-agnostic: it
// places gangs and interleaves per-iteration callbacks.  This is the train
// layer's hook that turns a JobSpec into a real synchronous data-parallel
// training iteration:
//
//   compute — one forward/backward pass priced by models::PerfModel for the
//     workload's model/resolution/batch (no ports occupied, every rank in
//     parallel), then
//   communicate — a bandwidth-optimal ring All-Reduce of the job's gradient
//     payload over its placed gang, recorded once per distinct rank set by
//     the schedule engine and replayed under the job's id via
//     run_timing_abortable, so concurrent tenants processor-share NICs and
//     uplinks and a preemption scripted on the cluster's FaultPlan aborts
//     exactly the jobs placed on the dead rank.
//
// The gang is locality-sorted before the ring is built (pod, node, rank),
// so a spread placement still crosses each pod boundary a minimal number of
// times — placement policy decides *where* the ranks are, the collective
// layer keeps the ring sane over them.
#pragma once

#include <string>

#include "collectives/common.h"
#include "simnet/job_scheduler.h"

namespace hitopk::train {

// Per-job workload shape shared by every job of a replay (the per-job gang
// size, payload, and iteration count live in JobSpec).
struct TenantWorkload {
  std::string model = "resnet50";
  int resolution = 224;
  int local_batch = 64;
  // Wire dtype of the gradient transfers (compress/wire_codec.h).  The
  // job's payload (JobSpec::bytes) counts fp32 gradient elements; fp16
  // halves the bytes each iteration actually places on the ports.
  coll::WireDtype wire = coll::WireDtype::kFp32;
};

// Builds a JobBody running compute + ring All-Reduce iterations.  The
// returned callable caches one recorded Schedule per distinct gang, is
// deterministic, and must only be used from one thread (the scheduler's
// event loop is single-threaded by design).
simnet::JobBody make_tenant_body(const TenantWorkload& workload);

}  // namespace hitopk::train
