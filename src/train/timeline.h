// Iteration timeline simulator: the end-to-end training-system model.
//
// Composes every substrate — PerfModel (FF&BP), DataCache (I/O), the
// compression cost models, the cluster collectives, and LARS/PTO — into one
// simulated training iteration with the paper's pipelining structure:
// prefetched I/O, wait-free backpropagation (per-bucket collectives launched
// as gradients materialize), a compression stream, and the LARS + update
// tail.  Produces the Fig. 1 breakdown (elapsed time that cannot be
// overlapped) and the Table 3/4 throughput / scaling-efficiency numbers.
#pragma once

#include <string>

#include "collectives/common.h"
#include "data/datacache.h"
#include "simgpu/gpu_model.h"
#include "simnet/cluster.h"
#include "simnet/topology.h"

namespace hitopk::train {

enum class Algorithm {
  kDenseTree,     // Dense-SGD: Horovod/NCCL double-binary-tree All-Reduce
  kDense2dTorus,  // 2DTAR-SGD: hierarchical dense All-Reduce (CommLib)
  kTopkNaiveAg,   // TopK-SGD: exact top-k + flat sparse All-Gather
  kMstopkHitopk,  // MSTopK-SGD: MSTopK + HiTopKComm (the paper's system)
};

std::string algorithm_name(Algorithm algorithm);

struct TrainerOptions {
  std::string model = "resnet50";
  int resolution = 224;
  int local_batch = 256;
  Algorithm algorithm = Algorithm::kMstopkHitopk;
  // Gradient density for the sparse algorithms.
  double density = 0.001;
  // Wire dtypes: FP16 gradients everywhere (mixed-precision training,
  // §5.3) — the dense collectives and the sparse legs' values both travel
  // half-width by default (compress/wire_codec.h).
  coll::WireDtype dense_wire = coll::WireDtype::kFp16;
  coll::WireDtype sparse_value_wire = coll::WireDtype::kFp16;
  bool use_datacache = true;
  bool use_pto = true;
  bool overlap_io = true;    // prefetch pipeline hides I/O behind compute
  bool overlap_comm = true;  // wait-free backpropagation
  size_t fusion_bytes = size_t{64} << 20;
  int mstopk_samplings = 30;
  // Single-pass histogram MSTopK (default) vs the legacy multi-pass search
  // in the functional HiTopKComm path.
  bool mstopk_histogram = true;
  // Coefficient of variation of per-GPU compute time (virtualization
  // jitter).  Synchronous SGD waits for the slowest of P workers; the
  // expected straggler penalty is modelled by the Gaussian order statistic
  // E[max of P] ~ 1 + cv * sqrt(2 ln P).  0 disables straggler modelling.
  double straggler_cv = 0.0;
  // Per-iteration framework overheads, calibrated against Table 3.
  // Dense-SGD (stock Horovod) pays per-tensor negotiation on top of a flat
  // cost; the CommLib schemes fuse aggressively (flat only); the sparse
  // path adds bookkeeping kernels (zero/extract/scatter) per iteration.
  double dense_framework_overhead = 3e-3;
  double dense_per_tensor_overhead = 0.8e-3;
  double torus_framework_overhead = 3e-3;
  double sparse_framework_overhead = 22e-3;
};

struct IterationBreakdown {
  // Exposed (non-overlapped) seconds per phase; they sum to `total`.
  double io = 0.0;
  double ffbp = 0.0;
  double compression = 0.0;
  double communication = 0.0;
  double lars = 0.0;      // LARS rates + weight update
  double overhead = 0.0;  // framework tax
  double total = 0.0;
  // Cluster-wide samples/second.
  double throughput = 0.0;
};

class TrainingSimulator {
 public:
  TrainingSimulator(simnet::Topology topology, TrainerOptions options);

  // Steady-state training iteration (caches warm when DataCache is on).
  IterationBreakdown simulate_iteration();

  // Same pipeline with an externally supplied raw (pre-overlap) per-
  // iteration I/O time — the DAWNBench simulator drives this with a
  // persistent DataCache whose state evolves across epochs.
  // `compute_multiplier` scales the (straggler-adjusted) FF&BP time: the
  // fault-scenario simulator drives it with the slowest pod's bursty-jitter
  // factor (>= 1), on top of the steady-state straggler_cv model.
  IterationBreakdown simulate_with_io(double raw_io,
                                      double compute_multiplier = 1.0);

  // Raw (pre-overlap) I/O seconds per iteration for one node's workers —
  // public so timeline drivers (DAWNBench, fault scenarios) can price it
  // once and replay simulate_with_io many times.
  double raw_io_seconds();

  // The same workload on one GPU (no communication, no compression) — the
  // scaling-efficiency denominator.
  IterationBreakdown simulate_single_gpu();

  // throughput(P GPUs) / (P * throughput(1 GPU)).
  double scaling_efficiency();

  const TrainerOptions& options() const { return options_; }
  const simnet::Topology& topology() const { return topology_; }

 private:
  simnet::Topology topology_;
  TrainerOptions options_;
  simgpu::GpuCostModel gpu_;
};

}  // namespace hitopk::train
