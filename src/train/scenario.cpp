#include "train/scenario.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "core/check.h"
#include "core/rng.h"
#include "models/model_zoo.h"

namespace hitopk::train {
namespace {

// Uniform topology with `nodes` nodes and the fabric parameters of `base`.
// The pod grouping survives only while it still tiles the node count.
simnet::Topology resize_topology(const simnet::Topology& base, int nodes) {
  const int npp =
      base.nodes_per_pod() > 0 && nodes % base.nodes_per_pod() == 0
          ? base.nodes_per_pod()
          : 0;
  return simnet::Topology(nodes, base.gpus_per_node(), base.intra(),
                          base.inter(), base.nic_beta(),
                          base.oversubscription(), npp);
}

}  // namespace

ScenarioResult simulate_scenario(const simnet::Topology& topology,
                                 const ScenarioOptions& options) {
  HITOPK_VALIDATE(topology.uniform())
      << "fault scenarios resize the world at node granularity and need a "
         "uniform topology";
  HITOPK_VALIDATE(options.iterations > 0);
  HITOPK_VALIDATE(options.checkpoint_interval > 0);
  const int full_nodes = topology.nodes();
  const int gpus = topology.gpus_per_node();

  // Iteration time cache: (nodes up, pod bursting) -> seconds.  The
  // TrainingSimulator pipeline is deterministic per world size, so a
  // scenario of thousands of iterations prices each distinct state once.
  std::map<std::pair<int, bool>, double> iter_cache;
  std::map<int, double> io_cache;
  auto iteration_seconds = [&](int nodes, bool bursting) {
    const auto key = std::make_pair(nodes, bursting);
    auto it = iter_cache.find(key);
    if (it != iter_cache.end()) return it->second;
    TrainingSimulator sim(resize_topology(topology, nodes), options.trainer);
    auto io = io_cache.find(nodes);
    if (io == io_cache.end()) {
      io = io_cache.emplace(nodes, sim.raw_io_seconds()).first;
    }
    const double secs =
        sim.simulate_with_io(io->second,
                             bursting ? options.burst_factor : 1.0)
            .total;
    iter_cache.emplace(key, secs);
    return secs;
  };

  // Elastic re-shard: every survivor refills its shard of parameters and
  // optimizer state — one full parameter pass over the inter-node fabric.
  const models::ModelSpec model = models::model_by_name(options.trainer.model);
  const double reshard_seconds =
      static_cast<double>(model.total_params()) * 4.0 *
      topology.inter().beta;

  // Checkpoint write cost: size-derived when a write rate is given (weights
  // + momentum + error-feedback residuals = 3 float planes, the state the
  // ConvergenceEngine actually serializes), otherwise the legacy flat cost.
  HITOPK_VALIDATE(options.checkpoint_write_gbps >= 0.0)
      << "negative checkpoint write rate:" << options.checkpoint_write_gbps;
  const double checkpoint_write_seconds =
      options.checkpoint_write_gbps > 0.0
          ? static_cast<double>(model.total_params()) * 4.0 * 3.0 /
                (options.checkpoint_write_gbps * 1e9)
          : options.checkpoint_seconds;

  // Bursty correlated stragglers: a FaultPlan degradation script with one
  // "node" per pod, generated over a horizon comfortably past the expected
  // wall time (a run that outlives it just sees a calm tail).
  const int pods =
      (full_nodes + options.nodes_per_pod - 1) / options.nodes_per_pod;
  const double base_iter = iteration_seconds(full_nodes, false);
  const double horizon =
      5.0 * base_iter * static_cast<double>(options.iterations) + 3600.0;
  simnet::FaultPlan bursts;
  if (options.burst_rate_per_pod_hour > 0.0) {
    simnet::FaultRates rates;
    rates.degrade_per_node_hour = options.burst_rate_per_pod_hour;
    rates.degrade_duration_seconds = options.burst_duration_seconds;
    rates.degrade_factor = options.burst_factor;
    bursts = simnet::FaultPlan::generate(
        options.seed ^ 0xb0b5u,
        simnet::Topology(pods, 1, topology.intra(), topology.inter()),
        horizon, rates);
  }
  auto any_pod_bursting = [&](double t) {
    for (int pod = 0; pod < pods; ++pod) {
      if (bursts.degrade_factor(pod, t) > 1.0) return true;
    }
    return false;
  };

  Rng rng(options.seed);
  const double preempt_rate =
      options.preempt_rate_per_node_hour / 3600.0;  // per node-second
  auto sample_gap = [&](int nodes_up) {
    if (preempt_rate <= 0.0 || nodes_up <= 0) return simnet::kNever;
    return -std::log(1.0 - rng.uniform()) /
           (preempt_rate * static_cast<double>(nodes_up));
  };

  ScenarioResult out;
  out.min_world_nodes = full_nodes;
  double t = 0.0;
  double lost_seconds = 0.0;
  double recover_seconds_total = 0.0;
  double useful_samples = 0.0;
  int nodes_up = full_nodes;
  int since_checkpoint = 0;
  double next_preempt = t + sample_gap(nodes_up);
  std::vector<double> returns;  // pending node-return times (elastic)

  const double samples_per_node =
      static_cast<double>(options.trainer.local_batch) *
      static_cast<double>(gpus);

  while (out.useful_iterations < options.iterations) {
    // Rejoin any returned node before starting the next iteration.
    if (options.policy == RecoveryPolicy::kElasticContinue) {
      std::sort(returns.begin(), returns.end());
      while (!returns.empty() && returns.front() <= t) {
        returns.erase(returns.begin());
        ++nodes_up;
        ++out.rescales;
        t += options.reschedule_seconds + reshard_seconds;
        next_preempt = t + sample_gap(nodes_up);
      }
      if (nodes_up == 0) {
        if (returns.empty()) {
          out.completed = false;
          break;
        }
        t = returns.front();  // stall until the first node comes back
        continue;
      }
    }

    const bool bursting = any_pod_bursting(t);
    const double duration = iteration_seconds(nodes_up, bursting);

    if (next_preempt < t + duration) {
      // Preemption mid-iteration: the partial iteration is lost.  A
      // preemption that lands inside a checkpoint write or a recovery
      // window (next_preempt < t) takes effect at the boundary instead —
      // no partial work lost, and the just-written checkpoint is durable.
      ++out.preemptions;
      const double preempt_at = std::max(next_preempt, t);
      lost_seconds += preempt_at - t;
      t = preempt_at + options.detection_timeout_seconds;
      if (options.policy == RecoveryPolicy::kAbortRestart) {
        // Roll back to the last checkpoint and restart on a full world.
        lost_seconds +=
            static_cast<double>(since_checkpoint) * duration;
        useful_samples -= static_cast<double>(since_checkpoint) *
                          samples_per_node * nodes_up;
        out.useful_iterations -= since_checkpoint;
        since_checkpoint = 0;
        ++out.restarts;
        t += options.restart_seconds;
        recover_seconds_total +=
            options.detection_timeout_seconds + options.restart_seconds;
        nodes_up = full_nodes;
      } else {
        --nodes_up;
        ++out.rescales;
        out.min_world_nodes = std::min(out.min_world_nodes, nodes_up);
        if (options.node_return_seconds < simnet::kNever) {
          returns.push_back(next_preempt + options.node_return_seconds);
        }
        const double recover = options.reschedule_seconds + reshard_seconds;
        t += recover;
        recover_seconds_total += options.detection_timeout_seconds + recover;
      }
      next_preempt = t + sample_gap(nodes_up);
      continue;
    }

    t += duration;
    useful_samples += samples_per_node * static_cast<double>(nodes_up);
    ++out.useful_iterations;
    ++since_checkpoint;
    if (since_checkpoint == options.checkpoint_interval &&
        out.useful_iterations < options.iterations) {
      t += checkpoint_write_seconds;
      out.checkpoint_seconds_total += checkpoint_write_seconds;
      since_checkpoint = 0;
    }
  }

  out.wall_seconds = t;
  out.ideal_throughput =
      samples_per_node * static_cast<double>(full_nodes) / base_iter;
  out.goodput = t > 0.0 ? useful_samples / t : 0.0;
  out.goodput_fraction =
      out.ideal_throughput > 0.0 ? out.goodput / out.ideal_throughput : 0.0;
  out.lost_work_fraction = t > 0.0 ? lost_seconds / t : 0.0;
  out.checkpoint_overhead_fraction =
      t > 0.0 ? out.checkpoint_seconds_total / t : 0.0;
  out.mean_time_to_recover =
      out.preemptions > 0
          ? recover_seconds_total / static_cast<double>(out.preemptions)
          : 0.0;
  return out;
}

}  // namespace hitopk::train
