// DAWNBench case study (§5.6, Tables 4 & 5): train ResNet-50 on ImageNet to
// 93% top-5 in 28 epochs with the paper's multi-resolution recipe:
//
//   epochs  1-13 :  96x96, batch 256/GPU, MSTopK-SGD (HiTopKComm)
//   epochs 14-24 : 128x128, batch 256/GPU, 2DTAR-SGD (dense)
//   epochs 25-27 : 224x224, batch 256/GPU, 2DTAR-SGD
//   epoch     28 : 288x288, batch 128/GPU, 2DTAR-SGD
//
// MSTopK-SGD is used only while the input is small (where dense scaling
// collapses); from 128^2 up the dense scheme preserves accuracy (§5.6).
// The simulation is epoch-by-epoch with a persistent DataCache: the first
// epoch pays NFS + decode (cached at the schedule's largest resolution so
// later phases hit memory), and each epoch adds a validation/checkpoint
// overhead.
#pragma once

#include <vector>

#include "simnet/topology.h"
#include "train/timeline.h"

namespace hitopk::train {

struct PhaseSpec {
  int epochs = 0;
  int resolution = 0;
  int local_batch = 0;
  Algorithm algorithm = Algorithm::kDense2dTorus;
};

struct DawnbenchSchedule {
  std::vector<PhaseSpec> phases;
  // Per-epoch validation + checkpoint cost (100k images on 128 GPUs).
  double eval_seconds_per_epoch = 0.25;
  // DAWNBench submissions stage the dataset before the timed run; with
  // prewarm the local caches start hot and the first epoch is steady-state.
  bool prewarm_caches = true;

  static DawnbenchSchedule paper_recipe();

  int total_epochs() const;
};

struct PhaseReport {
  PhaseSpec phase;
  double single_gpu_throughput = 0.0;   // Table 4, "Single-GPU"
  double cluster_throughput = 0.0;      // Table 4, "128-GPU"
  double scaling_efficiency = 0.0;      // Table 4, "SE"
  double seconds = 0.0;                 // wall-clock of the phase
  double first_epoch_seconds = 0.0;     // includes cold-cache I/O
};

struct DawnbenchReport {
  std::vector<PhaseReport> phases;
  double train_seconds = 0.0;
  double eval_seconds = 0.0;
  double total_seconds = 0.0;
};

DawnbenchReport simulate_dawnbench(const simnet::Topology& topology,
                                   const DawnbenchSchedule& schedule);

}  // namespace hitopk::train
