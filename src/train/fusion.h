// Tensor fusion: batching per-layer gradients into communication buckets.
//
// Horovod-style fusion (Shi et al. 2019b/2020, cited in §2.2's discussion of
// tasks pipelining): gradients become available layer-by-layer during
// backpropagation (last layer first) and are grouped into buckets of at
// least `fusion_bytes`; each bucket launches one collective, enabling
// wait-free backpropagation overlap.
#pragma once

#include <cstddef>
#include <vector>

namespace hitopk::train {

struct GradientBucket {
  size_t elems = 0;   // fused element count
  size_t layers = 0;  // tensors fused into this bucket
  // Fraction of total backward work completed when this bucket's last
  // gradient materializes (gradient volume is the proxy for backward time).
  double ready_fraction = 0.0;
};

// `backprop_sizes` is the per-tensor element count in backprop order
// (ModelSpec::backprop_order_sizes()).  bytes_per_elem is the in-memory
// gradient width (4 for FP32 accumulation).  `compute_weights`, when
// provided (ModelSpec::backprop_order_compute_weights()), drives the
// ready_fraction: a tensor's gradient is available once the backward
// wall-time proportional to its layer's FLOPs has elapsed — parameter
// volume alone badly misplaces fc/embedding layers.
std::vector<GradientBucket> fuse_buckets(
    const std::vector<size_t>& backprop_sizes, size_t fusion_bytes,
    size_t bytes_per_elem = 4,
    const std::vector<double>& compute_weights = {});

}  // namespace hitopk::train
