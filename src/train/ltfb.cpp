#include "train/ltfb.h"

#include <algorithm>

#include "collectives/schedule.h"
#include "core/check.h"

namespace hitopk::train {
namespace {

int first_active(const ConvergenceEngine& engine) {
  for (int w = 0; w < engine.world(); ++w) {
    if (engine.worker_active(w)) return w;
  }
  HITOPK_CHECK(false) << "no active worker in a standing population";
  return -1;
}

}  // namespace

LtfbResult run_ltfb(const TaskFactory& factory, const LtfbOptions& options) {
  HITOPK_VALIDATE(options.populations > 0);
  HITOPK_VALIDATE(options.round_epochs > 0);
  HITOPK_VALIDATE(options.training.epochs % options.round_epochs == 0)
      << "epochs must divide into whole rounds of round_epochs";
  HITOPK_VALIDATE(options.compute_seconds_per_iter >= 0.0);
  const int P = options.populations;
  const int world_pop = options.training.world();
  const int gpus = options.training.gpus_per_node;

  std::vector<std::unique_ptr<ConvergenceTask>> tasks;
  std::vector<std::unique_ptr<ConvergenceEngine>> engines;
  for (int p = 0; p < P; ++p) {
    tasks.push_back(factory(p));
    HITOPK_VALIDATE(tasks.back() != nullptr) << "task factory returned null";
    ConvergenceOptions opt = options.training;
    opt.seed = options.training.seed +
               static_cast<uint64_t>(p) * options.seed_stride;
    engines.push_back(std::make_unique<ConvergenceEngine>(*tasks.back(), opt));
    HITOPK_VALIDATE(engines.back()->iters_per_epoch() ==
                    engines.front()->iters_per_epoch())
        << "populations must share the task shape";
    HITOPK_VALIDATE(tasks.back()->param_count() ==
                    tasks.front()->param_count())
        << "populations must share the parameter count";
  }
  const size_t d = tasks.front()->param_count();

  // The exchange fabric: every population's node slice side by side on one
  // cluster, so a candidate-model swap pays real inter-node latency and
  // bandwidth between the pairs' leader ranks.
  const simnet::Topology& pop_topo = engines.front()->topology();
  const simnet::Topology cluster_topo(P * options.training.nodes, gpus,
                                      pop_topo.intra(), pop_topo.inter(),
                                      pop_topo.nic_beta());

  // Fault script at global worker granularity, consumed once in time order
  // at lockstep iteration boundaries.
  struct Event {
    double time = 0.0;
    int pop = 0;
    int local = 0;
    bool recovery = false;
  };
  std::vector<Event> events;
  for (const simnet::Preemption& pr : options.faults.preemptions()) {
    if (pr.rank < 0 || pr.rank >= P * world_pop) continue;
    events.push_back(Event{pr.time, pr.rank / world_pop, pr.rank % world_pop,
                           false});
    if (pr.recover_time < simnet::kNever) {
      events.push_back(Event{pr.recover_time, pr.rank / world_pop,
                             pr.rank % world_pop, true});
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     return a.time < b.time;
                   });

  LtfbResult out;
  out.final_quality.assign(static_cast<size_t>(P), -1.0);
  std::vector<bool> down(static_cast<size_t>(P), false);
  const int rounds = options.training.epochs / options.round_epochs;
  const int ipe = engines.front()->iters_per_epoch();
  double t = 0.0;
  size_t next_event = 0;

  auto consume_events = [&] {
    while (next_event < events.size() && events[next_event].time <= t) {
      const Event ev = events[next_event++];
      if (down[static_cast<size_t>(ev.pop)]) continue;  // forfeited: ignore
      ConvergenceEngine& engine = *engines[static_cast<size_t>(ev.pop)];
      if (ev.recovery) {
        if (!engine.worker_active(ev.local)) {
          engine.restore_worker(ev.local);
          ++out.regrows;
          t += options.reschedule_seconds;
        }
      } else if (engine.worker_active(ev.local)) {
        ++out.preemptions;
        engine.preempt_worker(ev.local);
        t += options.faults.detection_timeout() + options.reschedule_seconds;
        if (engine.active_workers() == 0) {
          down[static_cast<size_t>(ev.pop)] = true;
          ++out.forfeits;
        }
      }
    }
  };
  auto all_down = [&] {
    return std::all_of(down.begin(), down.end(), [](bool b) { return b; });
  };

  for (int round = 0; round < rounds && out.completed; ++round) {
    // ---- train: round_epochs epochs in population lockstep
    for (int e = 0; e < options.round_epochs && out.completed; ++e) {
      for (int p = 0; p < P; ++p) {
        if (!down[static_cast<size_t>(p)]) engines[p]->begin_epoch();
      }
      for (int it = 0; it < ipe; ++it) {
        consume_events();
        if (all_down()) {
          out.completed = false;
          break;
        }
        // Populations march together: the lockstep iteration costs the
        // slowest standing population's compute (scaled by its nodes' worst
        // degradation) plus its own collective time.
        double dt = 0.0;
        for (int p = 0; p < P; ++p) {
          if (down[static_cast<size_t>(p)]) continue;
          ConvergenceEngine& engine = *engines[static_cast<size_t>(p)];
          double degrade = 1.0;
          for (int w = 0; w < world_pop; ++w) {
            if (!engine.worker_active(w)) continue;
            const int node = (p * world_pop + w) / gpus;
            degrade = std::max(degrade,
                               options.faults.degrade_factor(node, t));
          }
          engine.step();
          dt = std::max(dt, options.compute_seconds_per_iter * degrade +
                                engine.last_step_comm_seconds());
        }
        t += dt;
      }
      for (int p = 0; p < P; ++p) {
        // A population that forfeited mid-epoch never closes it; skip.
        if (!down[static_cast<size_t>(p)] &&
            engines[p]->step_in_epoch() == ipe) {
          engines[p]->end_epoch();
        }
      }
    }
    if (!out.completed) break;

    // ---- tournament among the standing populations
    std::vector<int> standing;
    for (int p = 0; p < P; ++p) {
      if (!down[static_cast<size_t>(p)]) standing.push_back(p);
    }
    LtfbRoundPoint point;
    point.round = round + 1;
    point.standing = static_cast<int>(standing.size());
    point.qualities.assign(static_cast<size_t>(P), -1.0);
    for (int p : standing) {
      point.qualities[static_cast<size_t>(p)] = tasks[p]->evaluate();
    }
    // Pair in index order; an odd tail population gets a bye.  A single
    // standing population keeps training with no exchange.
    for (size_t i = 0; i + 1 < standing.size(); i += 2) {
      const int a = standing[i];
      const int b = standing[i + 1];
      coll::Schedule sched;
      const uint32_t slot_a = sched.add_slots(2);
      const uint32_t slot_b = slot_a + 1;
      const int rank_a = a * world_pop + first_active(*engines[a]);
      const int rank_b = b * world_pop + first_active(*engines[b]);
      sched.send(rank_a, rank_b, d * 4, slot_a, slot_b);
      sched.send(rank_b, rank_a, d * 4, slot_b, slot_a);
      simnet::Cluster cluster(cluster_topo);
      t = sched.run_timing(cluster, t).finish;
      ++out.exchanges;
      // Higher held-out quality wins; ties go to the lower index.
      const bool a_wins = point.qualities[static_cast<size_t>(a)] >=
                          point.qualities[static_cast<size_t>(b)];
      const int winner = a_wins ? a : b;
      const int loser = a_wins ? b : a;
      engines[loser]->adopt_params(tasks[winner]->params());
      point.winners.push_back(winner);
    }
    out.rounds.push_back(std::move(point));
  }

  out.wall_seconds = t;
  double best = -1.0;
  for (int p = 0; p < P; ++p) {
    if (down[static_cast<size_t>(p)]) continue;
    const double q = tasks[p]->evaluate();
    out.final_quality[static_cast<size_t>(p)] = q;
    if (q > best) {
      best = q;
      out.best_population = p;
    }
  }
  out.best_quality = std::max(best, 0.0);
  return out;
}

}  // namespace hitopk::train
