#include "train/convergence.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "collectives/gtopk.h"
#include "collectives/hitopkcomm.h"
#include "collectives/naive_allgather.h"
#include "collectives/ring.h"
#include "compress/error_feedback.h"
#include "compress/exact_topk.h"
#include "compress/other_compressors.h"
#include "core/check.h"
#include "core/half.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "pto/lars.h"

namespace hitopk::train {

std::string convergence_algorithm_name(ConvergenceAlgorithm algorithm) {
  switch (algorithm) {
    case ConvergenceAlgorithm::kDense: return "Dense-SGD";
    case ConvergenceAlgorithm::kTopk: return "TopK-SGD";
    case ConvergenceAlgorithm::kMstopk: return "MSTopK-SGD";
    case ConvergenceAlgorithm::kRandomk: return "RandomK-SGD";
    case ConvergenceAlgorithm::kGtopk: return "gTopK-SGD";
    case ConvergenceAlgorithm::kLocalSgd: return "LocalSGD";
  }
  return "unknown";
}

ConvergenceAlgorithm convergence_algorithm_from_name(const std::string& name) {
  if (name == "dense") return ConvergenceAlgorithm::kDense;
  if (name == "topk") return ConvergenceAlgorithm::kTopk;
  if (name == "mstopk") return ConvergenceAlgorithm::kMstopk;
  if (name == "randomk") return ConvergenceAlgorithm::kRandomk;
  if (name == "gtopk") return ConvergenceAlgorithm::kGtopk;
  if (name == "localsgd") return ConvergenceAlgorithm::kLocalSgd;
  HITOPK_CHECK(false) << "unknown convergence algorithm:" << name;
  return ConvergenceAlgorithm::kDense;
}

ConvergenceResult run_convergence(ConvergenceTask& task,
                                  const ConvergenceOptions& options) {
  const int world = options.world();
  HITOPK_CHECK_GT(world, 0);
  const size_t d = task.param_count();
  const size_t global_batch =
      static_cast<size_t>(world) * static_cast<size_t>(options.local_batch);
  HITOPK_CHECK_LE(global_batch, task.train_size());

  const simnet::Topology topology(
      options.nodes, options.gpus_per_node,
      simnet::LinkParams{6e-6, 1.0 / 45e9},
      simnet::LinkParams{25e-6, 1.0 / 1.2e9}, 1.0 / 2.5e9);

  // Per-worker gradient buffers, reused across iterations.
  std::vector<Tensor> worker_grads(static_cast<size_t>(world), Tensor(d));
  coll::RankData grad_spans;
  for (auto& g : worker_grads) grad_spans.push_back(g.span());

  compress::ErrorFeedback error_feedback;
  pto::SgdOptimizer sgd(options.momentum, 0.0);
  pto::LarsOptimizer lars;
  // Local SGD keeps one parameter copy (and momentum state) per worker and
  // averages them every local_sgd_period iterations.
  const bool local_sgd =
      options.algorithm == ConvergenceAlgorithm::kLocalSgd;
  std::vector<Tensor> worker_params;
  if (local_sgd) {
    HITOPK_CHECK_GT(options.local_sgd_period, 0);
    for (int w = 0; w < world; ++w) {
      Tensor copy(d);
      std::copy(task.params().begin(), task.params().end(),
                copy.span().begin());
      worker_params.push_back(std::move(copy));
    }
  }
  auto average_worker_params = [&](simnet::Cluster& cluster) {
    coll::RankData param_spans;
    for (auto& p : worker_params) param_spans.push_back(p.span());
    coll::ring_allreduce(cluster, coll::world_group(topology), param_spans, d,
                         4, 0.0);
    for (auto& p : worker_params) p *= 1.0f / static_cast<float>(world);
    std::copy(worker_params[0].span().begin(), worker_params[0].span().end(),
              task.params().begin());
  };
  Rng shuffle_rng(options.seed);
  Rng compressor_rng(options.seed + 17);
  // Per-worker error-feedback keys for the kTopk/kRandomk path, built once
  // (string construction and map insertion stay off the iteration loop).
  std::vector<std::string> worker_keys;

  // Learning-rate schedule: linear warmup then cosine decay.
  const int iters_per_epoch =
      static_cast<int>(task.train_size() / global_batch);
  HITOPK_CHECK_GT(iters_per_epoch, 0);
  const int total_iters = options.epochs * iters_per_epoch;
  const int warmup_iters = options.warmup_epochs * iters_per_epoch;
  auto lr_at = [&](int iter) {
    if (iter < warmup_iters) {
      return options.learning_rate * (iter + 1) /
             static_cast<double>(std::max(1, warmup_iters));
    }
    const double progress = static_cast<double>(iter - warmup_iters) /
                            static_cast<double>(
                                std::max(1, total_iters - warmup_iters));
    return options.learning_rate * 0.5 * (1.0 + std::cos(M_PI * progress));
  };

  ConvergenceResult result;
  std::vector<size_t> order(task.train_size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::vector<double> worker_loss(static_cast<size_t>(world), 0.0);

  double comm_seconds = 0.0;
  int iter = 0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    shuffle_rng.shuffle(order);
    double epoch_loss = 0.0;
    for (int step = 0; step < iters_per_epoch; ++step, ++iter) {
      // Real per-worker gradients on disjoint shards of the global batch.
      // Workers are independent — the shared parameters are read-only
      // (LocalSGD workers evaluate at their own parameter copy via
      // gradient_at) and every worker writes only its own grad buffer — so
      // the fan-out runs on the thread pool.  Losses are reduced and the
      // LocalSGD optimizer steps applied in rank order afterwards, keeping
      // the result bitwise-identical to serial execution.
      parallel_for(0, static_cast<size_t>(world), [&](size_t w) {
        const size_t offset =
            static_cast<size_t>(step) * global_batch +
            w * static_cast<size_t>(options.local_batch);
        std::span<const size_t> idx(&order[offset],
                                    static_cast<size_t>(options.local_batch));
        worker_loss[w] =
            local_sgd
                ? task.gradient_at(worker_params[w].span(), idx,
                                   worker_grads[w].span())
                : task.gradient(idx, worker_grads[w].span());
      });
      double loss = 0.0;
      for (int w = 0; w < world; ++w) {
        loss += worker_loss[static_cast<size_t>(w)];
        if (local_sgd) {
          sgd.step("local" + std::to_string(w),
                   worker_params[static_cast<size_t>(w)].span(),
                   worker_grads[static_cast<size_t>(w)].span(), lr_at(iter));
        }
      }
      epoch_loss += loss / world;
      if (local_sgd) {
        simnet::Cluster cluster(topology);
        if ((iter + 1) % options.local_sgd_period == 0) {
          average_worker_params(cluster);
          comm_seconds += cluster.quiescent_time();
        }
        continue;
      }
      if (options.fp16_gradients) {
        for (auto& g : worker_grads) fp16_round_trip(g.span());
      }

      // Aggregate through the functional collectives.
      simnet::Cluster cluster(topology);
      switch (options.algorithm) {
        case ConvergenceAlgorithm::kLocalSgd:
          break;  // handled above (no per-iteration aggregation)
        case ConvergenceAlgorithm::kDense: {
          coll::ring_allreduce(cluster, coll::world_group(topology),
                               grad_spans, d, 4, 0.0);
          break;
        }
        case ConvergenceAlgorithm::kTopk:
        case ConvergenceAlgorithm::kRandomk: {
          const size_t k = std::max<size_t>(
              1, static_cast<size_t>(options.density * static_cast<double>(d)));
          std::vector<compress::SparseTensor> sparse(
              static_cast<size_t>(world));
          // Per-worker EF + selection commute (disjoint grad buffers,
          // per-worker residual entries pre-created so the workers only
          // look keys up, per-worker seeds drawn in rank order up front),
          // so the loop runs on the pool bitwise-identical to serial —
          // the same pattern as HiTopKComm's per-shard selection.  The
          // fused EF exchange (apply_priming/absorb_primed) holds because
          // grads are untouched between compensation and absorption.
          std::vector<uint64_t> worker_seeds;
          if (options.algorithm == ConvergenceAlgorithm::kRandomk) {
            for (int w = 0; w < world; ++w) {
              worker_seeds.push_back(compressor_rng.next_u64());
            }
          }
          if (options.use_error_feedback && worker_keys.empty()) {
            for (int w = 0; w < world; ++w) {
              worker_keys.push_back("w" + std::to_string(w));
              error_feedback.ensure(worker_keys.back(), d);
            }
          }
          parallel_for(0, static_cast<size_t>(world), [&](size_t w) {
            auto grad = worker_grads[w].span();
            if (options.use_error_feedback) {
              error_feedback.apply_priming(worker_keys[w], grad);
            }
            if (options.algorithm == ConvergenceAlgorithm::kTopk) {
              sparse[w] = compress::exact_topk(
                  grad, k,
                  options.topk_histogram ? compress::TopKSelect::kHistogram
                                         : compress::TopKSelect::kNthElement);
            } else {
              compress::RandomK random_k(worker_seeds[w]);
              sparse[w] = random_k.compress(grad, k);
            }
            if (options.use_error_feedback) {
              error_feedback.absorb_primed(worker_keys[w], sparse[w]);
            }
          });
          coll::naive_sparse_allgather(cluster, sparse, grad_spans, d, 4, 0.0,
                                       0.0);
          break;
        }
        case ConvergenceAlgorithm::kGtopk: {
          coll::GtopkOptions gtopk;
          gtopk.density = options.density;
          gtopk.topk_select = options.topk_histogram
                                  ? compress::TopKSelect::kHistogram
                                  : compress::TopKSelect::kNthElement;
          gtopk.error_feedback =
              options.use_error_feedback ? &error_feedback : nullptr;
          gtopk.ef_key_prefix = "g";
          coll::gtopk_comm(cluster, grad_spans, d, gtopk, 0.0);
          break;
        }
        case ConvergenceAlgorithm::kMstopk: {
          coll::HiTopKOptions hi;
          hi.density = options.density;
          hi.mstopk_samplings = options.mstopk_samplings;
          hi.mstopk_histogram = options.mstopk_histogram;
          hi.seed = options.seed + static_cast<uint64_t>(iter) * 977;
          hi.error_feedback =
              options.use_error_feedback ? &error_feedback : nullptr;
          hi.ef_key_prefix = "shard";
          coll::hitopk_comm(cluster, grad_spans, d, hi, 0.0);
          break;
        }
      }
      comm_seconds += cluster.quiescent_time();

      // All workers hold the identical aggregated gradient; update the
      // shared parameters with its mean.
      Tensor& aggregated = worker_grads[0];
      aggregated *= 1.0f / static_cast<float>(world);
      if (options.use_lars) {
        // Per-layer trust ratios over the task's segment table (Eq. 11).
        for (const auto& segment : task.segments()) {
          lars.step(segment.name,
                    task.params().subspan(segment.begin, segment.count),
                    aggregated.slice(segment.begin, segment.count),
                    lr_at(iter));
        }
      } else {
        sgd.step("flat", task.params(), aggregated.span(), lr_at(iter));
      }
    }

    if (local_sgd) {
      simnet::Cluster cluster(topology);
      average_worker_params(cluster);  // evaluate the averaged model
      comm_seconds += cluster.quiescent_time();
      for (auto& p : worker_params) {
        std::copy(task.params().begin(), task.params().end(),
                  p.span().begin());
      }
    }
    EpochPoint point;
    point.epoch = epoch + 1;
    point.train_loss = epoch_loss / iters_per_epoch;
    point.quality = task.evaluate();
    point.residual_norm = std::sqrt(error_feedback.residual_sq_norm());
    result.curve.push_back(point);
    result.best_quality = std::max(result.best_quality, point.quality);
  }
  result.final_quality =
      result.curve.empty() ? 0.0 : result.curve.back().quality;
  result.simulated_comm_seconds = comm_seconds;
  return result;
}

}  // namespace hitopk::train
