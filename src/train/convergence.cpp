#include "train/convergence.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "collectives/common.h"
#include "collectives/gtopk.h"
#include "collectives/hitopkcomm.h"
#include "collectives/naive_allgather.h"
#include "collectives/ring.h"
#include "compress/exact_topk.h"
#include "compress/other_compressors.h"
#include "core/check.h"
#include "core/half.h"
#include "core/parallel.h"
#include "train/checkpoint.h"

namespace hitopk::train {

std::string convergence_algorithm_name(ConvergenceAlgorithm algorithm) {
  switch (algorithm) {
    case ConvergenceAlgorithm::kDense: return "Dense-SGD";
    case ConvergenceAlgorithm::kTopk: return "TopK-SGD";
    case ConvergenceAlgorithm::kMstopk: return "MSTopK-SGD";
    case ConvergenceAlgorithm::kRandomk: return "RandomK-SGD";
    case ConvergenceAlgorithm::kGtopk: return "gTopK-SGD";
    case ConvergenceAlgorithm::kLocalSgd: return "LocalSGD";
  }
  return "unknown";
}

ConvergenceAlgorithm convergence_algorithm_from_name(const std::string& name) {
  if (name == "dense") return ConvergenceAlgorithm::kDense;
  if (name == "topk") return ConvergenceAlgorithm::kTopk;
  if (name == "mstopk") return ConvergenceAlgorithm::kMstopk;
  if (name == "randomk") return ConvergenceAlgorithm::kRandomk;
  if (name == "gtopk") return ConvergenceAlgorithm::kGtopk;
  if (name == "localsgd") return ConvergenceAlgorithm::kLocalSgd;
  HITOPK_CHECK(false) << "unknown convergence algorithm:" << name;
  return ConvergenceAlgorithm::kDense;
}

namespace {

// The cyclically-next active worker after `w` — the fold target for a dead
// worker's error-feedback residual (docs/INTERNALS.md: fold policy).
int fold_target(int w, const std::vector<int>& active) {
  for (int a : active) {
    if (a > w) return a;
  }
  return active.front();
}

int index_of(int value, const std::vector<int>& v) {
  for (size_t i = 0; i < v.size(); ++i) {
    if (v[i] == value) return static_cast<int>(i);
  }
  HITOPK_CHECK(false) << "value not found";
  return -1;
}

}  // namespace

ConvergenceEngine::ConvergenceEngine(ConvergenceTask& task,
                                     const ConvergenceOptions& options)
    : task_(task),
      options_(options),
      world_(options.world()),
      d_(task.param_count()),
      global_batch_(static_cast<size_t>(world_) *
                    static_cast<size_t>(options.local_batch)),
      topology_(options.nodes, options.gpus_per_node,
                simnet::LinkParams{6e-6, 1.0 / 45e9},
                simnet::LinkParams{25e-6, 1.0 / 1.2e9}, 1.0 / 2.5e9),
      local_sgd_(options.algorithm == ConvergenceAlgorithm::kLocalSgd),
      sgd_(options.momentum, 0.0),
      shuffle_rng_(options.seed),
      compressor_rng_(options.seed + 17),
      order_(task.train_size()),
      worker_loss_(static_cast<size_t>(options.world()), 0.0),
      active_(static_cast<size_t>(options.world()), 1),
      active_count_(options.world()),
      shrunk_(coll::shrink_topology(topology_, {})),
      pending_correction_(task.param_count()) {
  HITOPK_CHECK_GT(world_, 0);
  HITOPK_CHECK_LE(global_batch_, task_.train_size());
  iters_per_epoch_ = static_cast<int>(task_.train_size() / global_batch_);
  HITOPK_CHECK_GT(iters_per_epoch_, 0);
  total_iters_ = options_.epochs * iters_per_epoch_;
  warmup_iters_ = options_.warmup_epochs * iters_per_epoch_;

  worker_grads_.reserve(static_cast<size_t>(world_));
  for (int w = 0; w < world_; ++w) worker_grads_.emplace_back(d_);
  for (auto& g : worker_grads_) grad_spans_.push_back(g.span());

  if (local_sgd_) {
    HITOPK_CHECK_GT(options_.local_sgd_period, 0);
    for (int w = 0; w < world_; ++w) {
      Tensor copy(d_);
      std::copy(task_.params().begin(), task_.params().end(),
                copy.span().begin());
      worker_params_.push_back(std::move(copy));
    }
  }
  std::iota(order_.begin(), order_.end(), size_t{0});
  rebuild_active_caches();
}

double ConvergenceEngine::lr_at(int iter) const {
  if (iter < warmup_iters_) {
    return options_.learning_rate * (iter + 1) /
           static_cast<double>(std::max(1, warmup_iters_));
  }
  const double progress =
      static_cast<double>(iter - warmup_iters_) /
      static_cast<double>(std::max(1, total_iters_ - warmup_iters_));
  return options_.learning_rate * 0.5 * (1.0 + std::cos(M_PI * progress));
}

bool ConvergenceEngine::worker_active(int w) const {
  HITOPK_CHECK(w >= 0 && w < world_);
  return active_[static_cast<size_t>(w)] != 0;
}

void ConvergenceEngine::rebuild_active_caches() {
  active_idx_.clear();
  std::vector<int> dead;
  for (int w = 0; w < world_; ++w) {
    (active_[static_cast<size_t>(w)] ? active_idx_ : dead).push_back(w);
  }
  active_count_ = static_cast<int>(active_idx_.size());
  if (active_count_ > 0 && active_count_ < world_) {
    shrunk_ = coll::shrink_topology(topology_, dead);
  }
}

void ConvergenceEngine::flush_residual_to_pending(std::span<const float> values,
                                                  size_t begin) {
  HITOPK_CHECK_LE(begin + values.size(), d_);
  tensor_ops::add_into(pending_correction_.slice(begin, values.size()), values);
  has_pending_correction_ = true;
}

// EF residual remap policy (docs/INTERNALS.md):
//  - worker-keyed residuals ("w{orig}", kTopk/kRandomk): a dead worker's
//    residual is folded (vector add) into the cyclically-next survivor's —
//    the total unsent gradient mass is preserved and re-enters selection.
//  - rank-slot keys ("g:{slot}", kGtopk): survivors' entries are re-keyed to
//    their new dense slots; dead entries fold into their fold target's slot.
//  - shard keys ("shard:{rank}", kMstopk) tile disjoint [begin, count)
//    coordinate ranges of the old world, which a new shard layout cannot
//    inherit — so on any world change every kMstopk residual is *flushed*
//    into pending_correction_ and delivered with the next aggregated update.
void ConvergenceEngine::remap_ef_for_world_change(
    const std::vector<int>& old_active, const std::vector<int>& new_active) {
  if (!options_.use_error_feedback || local_sgd_ ||
      options_.algorithm == ConvergenceAlgorithm::kDense) {
    return;
  }
  switch (options_.algorithm) {
    case ConvergenceAlgorithm::kTopk:
    case ConvergenceAlgorithm::kRandomk: {
      if (worker_keys_.empty()) return;  // first aggregation never ran
      for (int w : old_active) {
        if (std::find(new_active.begin(), new_active.end(), w) !=
            new_active.end()) {
          continue;
        }
        const std::string& key = worker_keys_[static_cast<size_t>(w)];
        if (!error_feedback_.has(key)) continue;
        const Tensor residual = error_feedback_.take(key);
        if (new_active.empty()) {
          flush_residual_to_pending(residual.span(), 0);
        } else {
          const int target = fold_target(w, new_active);
          error_feedback_.accumulate(worker_keys_[static_cast<size_t>(target)],
                                     residual.span());
        }
      }
      break;
    }
    case ConvergenceAlgorithm::kGtopk: {
      // Take every populated slot of the old dense numbering, then re-key
      // (take-all-then-set avoids rename collisions).
      std::vector<std::pair<int, Tensor>> taken;  // original worker -> residual
      for (size_t slot = 0; slot < old_active.size(); ++slot) {
        const std::string key = "g:" + std::to_string(slot);
        if (!error_feedback_.has(key)) continue;
        taken.emplace_back(old_active[slot], error_feedback_.take(key));
      }
      for (auto& [orig, residual] : taken) {
        if (new_active.empty()) {
          flush_residual_to_pending(residual.span(), 0);
          continue;
        }
        const bool survived = std::find(new_active.begin(), new_active.end(),
                                        orig) != new_active.end();
        const int target = survived ? orig : fold_target(orig, new_active);
        const int slot = index_of(target, new_active);
        error_feedback_.accumulate("g:" + std::to_string(slot),
                                   residual.span());
      }
      break;
    }
    case ConvergenceAlgorithm::kMstopk: {
      // Shard residuals of the old world: GPU `local` of every node owns
      // chunk_range(d, gpus_per_node, local) — mirror hitopk_comm's layout.
      const simnet::Topology old_topo =
          old_active.size() == static_cast<size_t>(world_)
              ? topology_
              : [&] {
                  std::vector<int> dead;
                  for (int w = 0; w < world_; ++w) {
                    if (std::find(old_active.begin(), old_active.end(), w) ==
                        old_active.end()) {
                      dead.push_back(w);
                    }
                  }
                  return coll::shrink_topology(topology_, dead).topology;
                }();
      if (old_topo.uniform()) {  // shard keys exist only after uniform runs
        const int n = old_topo.gpus_per_node();
        for (int r = 0; r < old_topo.world_size(); ++r) {
          const std::string key = "shard:" + std::to_string(r);
          if (!error_feedback_.has(key)) continue;
          const Tensor residual = error_feedback_.take(key);
          const coll::ChunkRange shard = coll::chunk_range(
              d_, static_cast<size_t>(n), static_cast<size_t>(r % n));
          flush_residual_to_pending(residual.span(), shard.begin);
        }
      }
      // Worker keys from uneven-world fallback episodes flush too, so no
      // mass is stranded when HiTopKComm resumes.
      for (int w = 0; w < world_; ++w) {
        const std::string key = "w" + std::to_string(w);
        if (!error_feedback_.has(key)) continue;
        const Tensor residual = error_feedback_.take(key);
        flush_residual_to_pending(residual.span(), 0);
      }
      worker_keys_.clear();  // rebuilt (with fresh zero entries) on next use
      break;
    }
    case ConvergenceAlgorithm::kDense:
    case ConvergenceAlgorithm::kLocalSgd:
      break;
  }
}

void ConvergenceEngine::preempt_worker(int w) {
  HITOPK_CHECK(w >= 0 && w < world_);
  if (!active_[static_cast<size_t>(w)]) return;
  const std::vector<int> old_active = active_idx_;
  std::vector<int> new_active;
  for (int a : old_active) {
    if (a != w) new_active.push_back(a);
  }
  remap_ef_for_world_change(old_active, new_active);
  active_[static_cast<size_t>(w)] = 0;
  rebuild_active_caches();
}

void ConvergenceEngine::restore_worker(int w) {
  HITOPK_CHECK(w >= 0 && w < world_);
  if (active_[static_cast<size_t>(w)]) return;
  const std::vector<int> old_active = active_idx_;
  std::vector<int> new_active = old_active;
  new_active.insert(
      std::upper_bound(new_active.begin(), new_active.end(), w), w);
  remap_ef_for_world_change(old_active, new_active);
  active_[static_cast<size_t>(w)] = 1;
  rebuild_active_caches();
  // The returning worker rejoins with the shared model and cold per-worker
  // state: fresh parameter copy (LocalSGD), zero momentum, zero residual.
  if (local_sgd_) {
    std::copy(task_.params().begin(), task_.params().end(),
              worker_params_[static_cast<size_t>(w)].span().begin());
    sgd_.reset("local" + std::to_string(w));
  }
  if (!worker_keys_.empty()) {
    error_feedback_.set(worker_keys_[static_cast<size_t>(w)],
                        Tensor(d_).span());
  }
}

void ConvergenceEngine::ensure_worker_keys() {
  if (!options_.use_error_feedback || !worker_keys_.empty()) return;
  // Keys for the *full* world (dead workers get zero entries): the key set
  // is then independent of when the first sparse aggregation runs, and a
  // worker returning later finds its slot waiting.
  for (int w = 0; w < world_; ++w) {
    worker_keys_.push_back("w" + std::to_string(w));
    error_feedback_.ensure(worker_keys_.back(), d_);
  }
}

void ConvergenceEngine::begin_epoch() {
  HITOPK_CHECK(!epoch_open_) << "begin_epoch with an epoch already open";
  HITOPK_CHECK(!done());
  shuffle_rng_.shuffle(order_);
  epoch_loss_ = 0.0;
  step_in_epoch_ = 0;
  epoch_open_ = true;
}

void ConvergenceEngine::average_worker_params(simnet::Cluster& cluster) {
  coll::RankData param_spans;
  for (int w : active_idx_) {
    param_spans.push_back(worker_params_[static_cast<size_t>(w)].span());
  }
  const simnet::Topology& topo =
      active_count_ == world_ ? topology_ : shrunk_.topology;
  if (active_count_ > 1) {
    coll::ring_allreduce(cluster, coll::world_group(topo), param_spans, d_,
                         coll::WireDtype::kFp32, 0.0);
  }
  for (int w : active_idx_) {
    worker_params_[static_cast<size_t>(w)] *=
        1.0f / static_cast<float>(active_count_);
  }
  std::copy(worker_params_[static_cast<size_t>(active_idx_[0])].span().begin(),
            worker_params_[static_cast<size_t>(active_idx_[0])].span().end(),
            task_.params().begin());
}

void ConvergenceEngine::aggregate_dense(simnet::Cluster& cluster) {
  if (active_count_ == world_) {
    coll::ring_allreduce(cluster, coll::world_group(topology_), grad_spans_,
                         d_, coll::WireDtype::kFp32, 0.0);
    return;
  }
  coll::RankData spans;
  for (int w : active_idx_) {
    spans.push_back(worker_grads_[static_cast<size_t>(w)].span());
  }
  coll::ring_allreduce(cluster, coll::world_group(shrunk_.topology), spans, d_,
                       coll::WireDtype::kFp32, 0.0);
}

void ConvergenceEngine::aggregate_sparse_workers(simnet::Cluster& cluster,
                                                 bool random_k) {
  const size_t k = std::max<size_t>(
      1, static_cast<size_t>(options_.density * static_cast<double>(d_)));
  std::vector<compress::SparseTensor> sparse(
      static_cast<size_t>(active_count_));
  // Per-worker EF + selection commute (disjoint grad buffers, per-worker
  // residual entries pre-created so the workers only look keys up,
  // per-worker seeds drawn in rank order up front), so the loop runs on the
  // pool bitwise-identical to serial — the same pattern as HiTopKComm's
  // per-shard selection.  The fused EF exchange (apply_priming /
  // absorb_primed) holds because grads are untouched between compensation
  // and absorption.  Seeds are drawn for every *original* worker whether
  // active or not, so survivors' compressor streams do not shift when the
  // world rescales.
  std::vector<uint64_t> worker_seeds;
  if (random_k) {
    for (int w = 0; w < world_; ++w) {
      worker_seeds.push_back(compressor_rng_.next_u64());
    }
  }
  ensure_worker_keys();
  parallel_for(0, static_cast<size_t>(active_count_), [&](size_t i) {
    const auto w = static_cast<size_t>(active_idx_[i]);
    auto grad = worker_grads_[w].span();
    if (options_.use_error_feedback) {
      error_feedback_.apply_priming(worker_keys_[w], grad);
    }
    if (!random_k) {
      sparse[i] = compress::exact_topk(
          grad, k,
          options_.topk_histogram ? compress::TopKSelect::kHistogram
                                  : compress::TopKSelect::kNthElement);
    } else {
      compress::RandomK rk(worker_seeds[w]);
      sparse[i] = rk.compress(grad, k);
    }
    if (options_.use_error_feedback) {
      error_feedback_.absorb_primed(worker_keys_[w], sparse[i]);
    }
  });
  if (active_count_ == world_) {
    coll::naive_sparse_allgather(cluster, sparse, grad_spans_, d_, 4, 0.0,
                                 0.0);
    return;
  }
  coll::RankData spans;
  for (int w : active_idx_) {
    spans.push_back(worker_grads_[static_cast<size_t>(w)].span());
  }
  coll::naive_sparse_allgather(cluster, sparse, spans, d_, 4, 0.0, 0.0);
}

void ConvergenceEngine::aggregate_gtopk(simnet::Cluster& cluster) {
  coll::GtopkOptions gtopk;
  gtopk.density = options_.density;
  gtopk.topk_select = options_.topk_histogram
                          ? compress::TopKSelect::kHistogram
                          : compress::TopKSelect::kNthElement;
  gtopk.error_feedback =
      options_.use_error_feedback ? &error_feedback_ : nullptr;
  gtopk.ef_key_prefix = "g";
  if (active_count_ == world_) {
    coll::gtopk_comm(cluster, grad_spans_, d_, gtopk, 0.0);
    return;
  }
  coll::RankData spans;
  for (int w : active_idx_) {
    spans.push_back(worker_grads_[static_cast<size_t>(w)].span());
  }
  coll::gtopk_comm(cluster, spans, d_, gtopk, 0.0);
}

void ConvergenceEngine::aggregate_mstopk(simnet::Cluster& cluster) {
  const simnet::Topology& topo =
      active_count_ == world_ ? topology_ : shrunk_.topology;
  if (!topo.uniform()) {
    // HiTopKComm's owned-shard layout needs a uniform world; while a rescale
    // leaves nodes uneven, MSTopK-SGD degrades to flat TopK-SGD (its shard
    // residuals were flushed at the rescale, so no mass is stranded).
    aggregate_sparse_workers(cluster, /*random_k=*/false);
    return;
  }
  coll::HiTopKOptions hi;
  hi.density = options_.density;
  hi.mstopk_samplings = options_.mstopk_samplings;
  hi.mstopk_histogram = options_.mstopk_histogram;
  hi.seed = options_.seed + static_cast<uint64_t>(iter_) * 977;
  hi.error_feedback =
      options_.use_error_feedback ? &error_feedback_ : nullptr;
  hi.ef_key_prefix = "shard";
  if (active_count_ == world_) {
    coll::hitopk_comm(cluster, grad_spans_, d_, hi, 0.0);
    return;
  }
  coll::RankData spans;
  for (int w : active_idx_) {
    spans.push_back(worker_grads_[static_cast<size_t>(w)].span());
  }
  coll::hitopk_comm(cluster, spans, d_, hi, 0.0);
}

void ConvergenceEngine::step() {
  HITOPK_CHECK(epoch_open_) << "step() outside an open epoch";
  HITOPK_CHECK_LT(step_in_epoch_, iters_per_epoch_);
  HITOPK_VALIDATE(active_count_ > 0)
      << "step() with zero active workers: restore a worker first";
  const int step = step_in_epoch_;
  last_step_comm_seconds_ = 0.0;

  // Real per-worker gradients on disjoint shards of the global batch.
  // Sample offsets are indexed by *original* worker id, so a worker's shard
  // is stable across rescales; a dead worker's shard is simply skipped (the
  // effective global batch shrinks with the world).  Workers are
  // independent — the shared parameters are read-only (LocalSGD workers
  // evaluate at their own parameter copy via gradient_at) and every worker
  // writes only its own grad buffer — so the fan-out runs on the thread
  // pool.  Losses are reduced and the LocalSGD optimizer steps applied in
  // rank order afterwards, keeping the result bitwise-identical to serial
  // execution.
  parallel_for(0, static_cast<size_t>(active_count_), [&](size_t i) {
    const auto w = static_cast<size_t>(active_idx_[i]);
    const size_t offset = static_cast<size_t>(step) * global_batch_ +
                          w * static_cast<size_t>(options_.local_batch);
    std::span<const size_t> idx(&order_[offset],
                                static_cast<size_t>(options_.local_batch));
    worker_loss_[w] =
        local_sgd_ ? task_.gradient_at(worker_params_[w].span(), idx,
                                       worker_grads_[w].span())
                   : task_.gradient(idx, worker_grads_[w].span());
  });
  double loss = 0.0;
  for (int w : active_idx_) {
    loss += worker_loss_[static_cast<size_t>(w)];
    if (local_sgd_) {
      sgd_.step("local" + std::to_string(w),
                worker_params_[static_cast<size_t>(w)].span(),
                worker_grads_[static_cast<size_t>(w)].span(), lr_at(iter_));
    }
  }
  epoch_loss_ += loss / active_count_;

  if (local_sgd_) {
    if ((iter_ + 1) % options_.local_sgd_period == 0) {
      simnet::Cluster cluster(active_count_ == world_ ? topology_
                                                      : shrunk_.topology);
      average_worker_params(cluster);
      const double t = cluster.quiescent_time();
      comm_seconds_ += t;
      last_step_comm_seconds_ += t;
    }
    ++step_in_epoch_;
    ++iter_;
    return;
  }

  if (options_.gradient_wire != compress::WireDtype::kFp32) {
    for (int w : active_idx_) {
      compress::wire_round_trip(options_.gradient_wire,
                                worker_grads_[static_cast<size_t>(w)].span());
    }
  }

  // Aggregate through the functional collectives.  A single survivor needs
  // no collective at all (All-Reduce of one contribution is the identity):
  // it trains on alone with zero communication.
  if (active_count_ > 1) {
    simnet::Cluster cluster(active_count_ == world_ ? topology_
                                                    : shrunk_.topology);
    switch (options_.algorithm) {
      case ConvergenceAlgorithm::kLocalSgd:
        break;  // handled above (no per-iteration aggregation)
      case ConvergenceAlgorithm::kDense:
        aggregate_dense(cluster);
        break;
      case ConvergenceAlgorithm::kTopk:
        aggregate_sparse_workers(cluster, /*random_k=*/false);
        break;
      case ConvergenceAlgorithm::kRandomk:
        aggregate_sparse_workers(cluster, /*random_k=*/true);
        break;
      case ConvergenceAlgorithm::kGtopk:
        aggregate_gtopk(cluster);
        break;
      case ConvergenceAlgorithm::kMstopk:
        aggregate_mstopk(cluster);
        break;
    }
    const double t = cluster.quiescent_time();
    comm_seconds_ += t;
    last_step_comm_seconds_ += t;
  }

  // All active workers hold the identical aggregated gradient; update the
  // shared parameters with its mean.  Error-feedback mass flushed at a
  // rescale rides along exactly once.
  Tensor& aggregated = worker_grads_[static_cast<size_t>(active_idx_[0])];
  if (has_pending_correction_) {
    tensor_ops::add_into(aggregated.span(), pending_correction_.span());
    pending_correction_.fill(0.0f);
    has_pending_correction_ = false;
  }
  aggregated *= 1.0f / static_cast<float>(active_count_);
  if (options_.use_lars) {
    // Per-layer trust ratios over the task's segment table (Eq. 11).
    for (const auto& segment : task_.segments()) {
      lars_.step(segment.name,
                 task_.params().subspan(segment.begin, segment.count),
                 aggregated.slice(segment.begin, segment.count), lr_at(iter_));
    }
  } else {
    sgd_.step("flat", task_.params(), aggregated.span(), lr_at(iter_));
  }
  ++step_in_epoch_;
  ++iter_;
}

EpochPoint ConvergenceEngine::end_epoch() {
  HITOPK_CHECK(epoch_open_) << "end_epoch without an open epoch";
  HITOPK_CHECK_EQ(step_in_epoch_, iters_per_epoch_);
  if (local_sgd_) {
    simnet::Cluster cluster(active_count_ == world_ ? topology_
                                                    : shrunk_.topology);
    average_worker_params(cluster);  // evaluate the averaged model
    const double t = cluster.quiescent_time();
    comm_seconds_ += t;
    last_step_comm_seconds_ += t;
    for (auto& p : worker_params_) {
      std::copy(task_.params().begin(), task_.params().end(),
                p.span().begin());
    }
  }
  EpochPoint point;
  point.epoch = epoch_ + 1;
  point.train_loss = epoch_loss_ / iters_per_epoch_;
  point.quality = task_.evaluate();
  point.residual_norm = std::sqrt(error_feedback_.residual_sq_norm());
  result_.curve.push_back(point);
  result_.best_quality = std::max(result_.best_quality, point.quality);
  ++epoch_;
  epoch_open_ = false;
  return point;
}

void ConvergenceEngine::adopt_params(std::span<const float> params) {
  HITOPK_CHECK_EQ(params.size(), d_);
  std::copy(params.begin(), params.end(), task_.params().begin());
  // Momentum and residuals describe the replaced model: drop them.  The
  // worker-key vector is cleared with the entries so the next sparse
  // aggregation re-creates both serially (parallel workers never insert).
  sgd_.clear();
  lars_.clear();
  error_feedback_.reset();
  worker_keys_.clear();
  pending_correction_.fill(0.0f);
  has_pending_correction_ = false;
  if (local_sgd_) {
    for (auto& p : worker_params_) {
      std::copy(task_.params().begin(), task_.params().end(),
                p.span().begin());
    }
  }
}

ConvergenceResult ConvergenceEngine::result() const {
  ConvergenceResult out = result_;
  out.final_quality = out.curve.empty() ? 0.0 : out.curve.back().quality;
  out.simulated_comm_seconds = comm_seconds_;
  return out;
}

// ---------------------------------------------------------- checkpointing

std::vector<uint8_t> ConvergenceEngine::serialize() const {
  CheckpointWriter writer;
  const std::vector<uint64_t> meta{
      static_cast<uint64_t>(iter_),
      static_cast<uint64_t>(epoch_),
      static_cast<uint64_t>(step_in_epoch_),
      epoch_open_ ? 1u : 0u,
      static_cast<uint64_t>(world_),
      static_cast<uint64_t>(active_count_),
      static_cast<uint64_t>(options_.algorithm),
      has_pending_correction_ ? 1u : 0u,
      worker_keys_.empty() ? 0u : 1u,
      static_cast<uint64_t>(d_),
      options_.seed,
  };
  writer.put_u64s("meta", meta);
  const std::vector<double> clock{comm_seconds_, last_step_comm_seconds_,
                                  epoch_loss_, result_.best_quality};
  writer.put_f64s("clock", clock);
  writer.put_floats("params", task_.params());
  std::vector<uint64_t> order(order_.size());
  std::copy(order_.begin(), order_.end(), order.begin());
  writer.put_u64s("order", order);
  const auto shuffle_state = shuffle_rng_.state();
  writer.put_u64s("rng.shuffle", shuffle_state);
  const auto compressor_state = compressor_rng_.state();
  writer.put_u64s("rng.compressor", compressor_state);
  std::vector<uint64_t> active(active_.size());
  std::copy(active_.begin(), active_.end(), active.begin());
  writer.put_u64s("active", active);
  std::vector<double> curve;
  for (const EpochPoint& p : result_.curve) {
    curve.push_back(static_cast<double>(p.epoch));
    curve.push_back(p.train_loss);
    curve.push_back(p.quality);
    curve.push_back(p.residual_norm);
  }
  writer.put_f64s("curve", curve);
  if (has_pending_correction_) {
    writer.put_floats("pending", pending_correction_.span());
  }
  for (const std::string& key : sgd_.state_keys()) {
    writer.put_floats("sgd:" + key, sgd_.state(key));
  }
  for (const std::string& key : lars_.state_keys()) {
    writer.put_floats("lars:" + key, lars_.state(key));
  }
  for (const std::string& key : error_feedback_.keys()) {
    writer.put_floats("ef:" + key, error_feedback_.residual(key));
  }
  if (local_sgd_) {
    for (int w = 0; w < world_; ++w) {
      writer.put_floats("wp:" + std::to_string(w),
                        worker_params_[static_cast<size_t>(w)].span());
    }
  }
  return writer.finish();
}

void ConvergenceEngine::restore(std::span<const uint8_t> blob) {
  const CheckpointReader reader(blob);  // throws ConfigError on corruption

  const auto meta = reader.u64s("meta");
  HITOPK_VALIDATE(meta.size() == 11) << "checkpoint meta record malformed";
  HITOPK_VALIDATE(meta[4] == static_cast<uint64_t>(world_))
      << "checkpoint world size mismatch";
  HITOPK_VALIDATE(meta[6] == static_cast<uint64_t>(options_.algorithm))
      << "checkpoint algorithm mismatch";
  HITOPK_VALIDATE(meta[9] == static_cast<uint64_t>(d_))
      << "checkpoint parameter count mismatch";
  HITOPK_VALIDATE(meta[10] == options_.seed) << "checkpoint seed mismatch";

  const auto params = reader.floats("params");
  HITOPK_VALIDATE(params.size() == d_);
  const auto order = reader.u64s("order");
  HITOPK_VALIDATE(order.size() == order_.size());
  const auto active = reader.u64s("active");
  HITOPK_VALIDATE(active.size() == static_cast<size_t>(world_));
  const auto clock = reader.f64s("clock");
  HITOPK_VALIDATE(clock.size() == 4);
  const auto curve = reader.f64s("curve");
  HITOPK_VALIDATE(curve.size() % 4 == 0);

  // Everything validated: mutate.
  iter_ = static_cast<int>(meta[0]);
  epoch_ = static_cast<int>(meta[1]);
  step_in_epoch_ = static_cast<int>(meta[2]);
  epoch_open_ = meta[3] != 0;
  has_pending_correction_ = meta[7] != 0;
  comm_seconds_ = clock[0];
  last_step_comm_seconds_ = clock[1];
  epoch_loss_ = clock[2];
  result_.best_quality = clock[3];

  std::copy(params.begin(), params.end(), task_.params().begin());
  std::copy(order.begin(), order.end(), order_.begin());
  std::array<uint64_t, Rng::kStateWords> rng_words;
  const auto shuffle_state = reader.u64s("rng.shuffle");
  HITOPK_VALIDATE(shuffle_state.size() == Rng::kStateWords);
  std::copy(shuffle_state.begin(), shuffle_state.end(), rng_words.begin());
  shuffle_rng_.set_state(rng_words);
  const auto compressor_state = reader.u64s("rng.compressor");
  HITOPK_VALIDATE(compressor_state.size() == Rng::kStateWords);
  std::copy(compressor_state.begin(), compressor_state.end(),
            rng_words.begin());
  compressor_rng_.set_state(rng_words);
  for (int w = 0; w < world_; ++w) {
    active_[static_cast<size_t>(w)] =
        active[static_cast<size_t>(w)] != 0 ? 1 : 0;
  }
  rebuild_active_caches();

  result_.curve.clear();
  for (size_t i = 0; i < curve.size(); i += 4) {
    EpochPoint p;
    p.epoch = static_cast<int>(curve[i]);
    p.train_loss = curve[i + 1];
    p.quality = curve[i + 2];
    p.residual_norm = curve[i + 3];
    result_.curve.push_back(p);
  }

  pending_correction_.fill(0.0f);
  if (has_pending_correction_) {
    const auto pending = reader.floats("pending");
    HITOPK_VALIDATE(pending.size() == d_);
    std::copy(pending.begin(), pending.end(),
              pending_correction_.span().begin());
  }

  sgd_.clear();
  lars_.clear();
  error_feedback_.reset();
  for (const std::string& name : reader.names()) {
    if (name.rfind("sgd:", 0) == 0) {
      sgd_.set_state(name.substr(4), reader.floats(name));
    } else if (name.rfind("lars:", 0) == 0) {
      lars_.set_state(name.substr(5), reader.floats(name));
    } else if (name.rfind("ef:", 0) == 0) {
      error_feedback_.set(name.substr(3), reader.floats(name));
    } else if (name.rfind("wp:", 0) == 0) {
      HITOPK_VALIDATE(local_sgd_)
          << "checkpoint has LocalSGD state but the engine does not";
      const int w = std::stoi(name.substr(3));
      HITOPK_VALIDATE(w >= 0 && w < world_);
      const auto values = reader.floats(name);
      HITOPK_VALIDATE(values.size() == d_);
      std::copy(values.begin(), values.end(),
                worker_params_[static_cast<size_t>(w)].span().begin());
    }
  }

  worker_keys_.clear();
  if (meta[8] != 0) {
    for (int w = 0; w < world_; ++w) {
      worker_keys_.push_back("w" + std::to_string(w));
    }
    // Active workers' entries must exist before parallel apply_priming
    // lookups; the ef records restored them, this is belt-and-braces.
    for (int w : active_idx_) {
      error_feedback_.ensure(worker_keys_[static_cast<size_t>(w)], d_);
    }
  }
}

ConvergenceResult run_convergence(ConvergenceTask& task,
                                  const ConvergenceOptions& options) {
  ConvergenceEngine engine(task, options);
  while (!engine.done()) {
    engine.begin_epoch();
    for (int step = 0; step < engine.iters_per_epoch(); ++step) {
      engine.step();
    }
    engine.end_epoch();
  }
  return engine.result();
}

}  // namespace hitopk::train
