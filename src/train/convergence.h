// Distributed convergence harness (Fig. 10 / Table 2).
//
// Runs real data-parallel SGD over the simulated cluster: every worker rank
// computes a real mini-batch gradient (autodiff), gradients are aggregated
// through the *functional* collectives — dense ring All-Reduce, exact top-k
// + NaiveAG, or MSTopK + HiTopKComm with shard-level error feedback — and
// the shared parameters are updated.  Because HiTopKComm aggregates densely
// inside each node before sparsifying, MSTopK-SGD sees less selection noise
// than flat TopK-SGD, the mechanism behind the paper's Table 2 ordering.
#pragma once

#include <string>
#include <vector>

#include "train/synthetic.h"

namespace hitopk::train {

enum class ConvergenceAlgorithm {
  kDense,    // ring All-Reduce of full gradients (Dense-SGD with TreeAR/2DTAR)
  kTopk,     // per-worker exact top-k + error feedback + NaiveAG (TopK-SGD)
  kMstopk,   // Alg. 2: intra-node dense + per-shard MSTopK + EF (MSTopK-SGD)
  kRandomk,  // random-k + error feedback (ablation: magnitude matters)
  kGtopk,    // global top-k via recursive doubling (Shi et al. 2019c)
  kLocalSgd, // H local steps, then parameter averaging (comm-avoidance
             // baseline orthogonal to compression)
};

std::string convergence_algorithm_name(ConvergenceAlgorithm algorithm);
ConvergenceAlgorithm convergence_algorithm_from_name(const std::string& name);

struct ConvergenceOptions {
  int nodes = 4;
  int gpus_per_node = 4;
  ConvergenceAlgorithm algorithm = ConvergenceAlgorithm::kDense;
  double density = 0.01;
  int epochs = 40;
  int local_batch = 8;
  double learning_rate = 0.08;
  double momentum = 0.9;
  int warmup_epochs = 3;
  bool use_error_feedback = true;
  int mstopk_samplings = 30;
  // Selection backends, each a fast default with a bit-identical or
  // semantically-identical validation twin (docs/INTERNALS.md):
  //   topk_histogram — kTopk/kGtopk exact selection via the shared magnitude
  //       histogram (TopKSelect::kHistogram); false = packed-key nth_element
  //       reference.  The two are bit-identical, so this only trades speed.
  //   mstopk_histogram — MSTopK bracket search (MsTopKMode); false = the
  //       paper-literal multi-pass binary search.
  bool topk_histogram = true;
  bool mstopk_histogram = true;
  // Optimizer: plain momentum SGD, or LARS with per-layer trust ratios
  // (Eq. 11) applied over the task's layer segments — the large-batch
  // regime of §2.2.
  bool use_lars = false;
  // Synchronization period H for kLocalSgd (average parameters every H
  // iterations).
  int local_sgd_period = 4;
  // Round every worker gradient through FP16 before aggregation (the
  // mixed-precision wire of §5.3); validates that communication precision
  // does not change the convergence story.
  bool fp16_gradients = false;
  uint64_t seed = 42;

  int world() const { return nodes * gpus_per_node; }
};

struct EpochPoint {
  int epoch = 0;
  double train_loss = 0.0;
  double quality = 0.0;        // held-out metric in [0, 1]
  double residual_norm = 0.0;  // error-feedback residual magnitude
};

struct ConvergenceResult {
  std::vector<EpochPoint> curve;
  double final_quality = 0.0;
  double best_quality = 0.0;
  // Simulated communication seconds accumulated over all iterations (lets
  // benches plot quality against simulated wall-clock, not just epochs).
  double simulated_comm_seconds = 0.0;
};

// Trains `task` in place (its parameters are updated).
ConvergenceResult run_convergence(ConvergenceTask& task,
                                  const ConvergenceOptions& options);

}  // namespace hitopk::train
