// Distributed convergence harness (Fig. 10 / Table 2).
//
// Runs real data-parallel SGD over the simulated cluster: every worker rank
// computes a real mini-batch gradient (autodiff), gradients are aggregated
// through the *functional* collectives — dense ring All-Reduce, exact top-k
// + NaiveAG, or MSTopK + HiTopKComm with shard-level error feedback — and
// the shared parameters are updated.  Because HiTopKComm aggregates densely
// inside each node before sparsifying, MSTopK-SGD sees less selection noise
// than flat TopK-SGD, the mechanism behind the paper's Table 2 ordering.
//
// The loop is factored into ConvergenceEngine, a stepwise core that the
// fault-tolerant layers drive one iteration at a time: it checkpoints its
// complete state (parameters, optimizer momentum, error-feedback residuals,
// RNG streams, epoch bookkeeping) into checksummed blobs, and it supports
// elastic worker preemption/return mid-run with a documented residual remap
// policy (docs/INTERNALS.md).  run_convergence() is the fault-free wrapper
// and is bitwise-identical to the pre-engine monolithic loop.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "collectives/elastic.h"
#include "compress/error_feedback.h"
#include "core/rng.h"
#include "pto/lars.h"
#include "simnet/topology.h"
#include "train/synthetic.h"

namespace hitopk::train {

enum class ConvergenceAlgorithm {
  kDense,    // ring All-Reduce of full gradients (Dense-SGD with TreeAR/2DTAR)
  kTopk,     // per-worker exact top-k + error feedback + NaiveAG (TopK-SGD)
  kMstopk,   // Alg. 2: intra-node dense + per-shard MSTopK + EF (MSTopK-SGD)
  kRandomk,  // random-k + error feedback (ablation: magnitude matters)
  kGtopk,    // global top-k via recursive doubling (Shi et al. 2019c)
  kLocalSgd, // H local steps, then parameter averaging (comm-avoidance
             // baseline orthogonal to compression)
};

std::string convergence_algorithm_name(ConvergenceAlgorithm algorithm);
ConvergenceAlgorithm convergence_algorithm_from_name(const std::string& name);

struct ConvergenceOptions {
  int nodes = 4;
  int gpus_per_node = 4;
  ConvergenceAlgorithm algorithm = ConvergenceAlgorithm::kDense;
  double density = 0.01;
  int epochs = 40;
  int local_batch = 8;
  double learning_rate = 0.08;
  double momentum = 0.9;
  int warmup_epochs = 3;
  bool use_error_feedback = true;
  int mstopk_samplings = 30;
  // Selection backends, each a fast default with a bit-identical or
  // semantically-identical validation twin (docs/INTERNALS.md):
  //   topk_histogram — kTopk/kGtopk exact selection via the shared magnitude
  //       histogram (TopKSelect::kHistogram); false = packed-key nth_element
  //       reference.  The two are bit-identical, so this only trades speed.
  //   mstopk_histogram — MSTopK bracket search (MsTopKMode); false = the
  //       paper-literal multi-pass binary search.
  bool topk_histogram = true;
  bool mstopk_histogram = true;
  // Optimizer: plain momentum SGD, or LARS with per-layer trust ratios
  // (Eq. 11) applied over the task's layer segments — the large-batch
  // regime of §2.2.
  bool use_lars = false;
  // Synchronization period H for kLocalSgd (average parameters every H
  // iterations).
  int local_sgd_period = 4;
  // Round every worker gradient through this wire dtype before aggregation
  // (the mixed-precision wire of §5.3, generalized to the typed-payload
  // codecs of compress/wire_codec.h: kFp16 or the int8 quantizer);
  // validates that communication precision does not change the convergence
  // story.  kFp32 is the exact baseline.
  compress::WireDtype gradient_wire = compress::WireDtype::kFp32;
  uint64_t seed = 42;

  int world() const { return nodes * gpus_per_node; }
};

struct EpochPoint {
  int epoch = 0;
  double train_loss = 0.0;
  double quality = 0.0;        // held-out metric in [0, 1]
  double residual_norm = 0.0;  // error-feedback residual magnitude
};

struct ConvergenceResult {
  std::vector<EpochPoint> curve;
  double final_quality = 0.0;
  double best_quality = 0.0;
  // Simulated communication seconds accumulated over all iterations (lets
  // benches plot quality against simulated wall-clock, not just epochs).
  double simulated_comm_seconds = 0.0;
};

// The stepwise convergence core.  Epochs are explicit brackets —
//
//   while (!engine.done()) {
//     if (!engine.epoch_open()) engine.begin_epoch();
//     engine.step();
//     if (engine.step_in_epoch() == engine.iters_per_epoch())
//       engine.end_epoch();
//   }
//
// — so a driver can interleave fault events, checkpoints, and rescales at
// iteration boundaries.  Elastic world control: preempt_worker() removes a
// worker (its batch shard is simply skipped — the global batch shrinks —
// and its error-feedback residual is folded into survivors or flushed into
// a pending correction; see docs/INTERNALS.md "EF residual remap policy"),
// restore_worker() brings one back with the shared model and cold optimizer
// state.  serialize()/restore() round-trip the complete training state
// bitwise: a restored engine continues the exact run, including RNG streams
// and mid-epoch position.
class ConvergenceEngine {
 public:
  ConvergenceEngine(ConvergenceTask& task, const ConvergenceOptions& options);

  // ---- loop structure
  int iters_per_epoch() const { return iters_per_epoch_; }
  int total_iters() const { return total_iters_; }
  int iter() const { return iter_; }
  int epoch() const { return epoch_; }  // completed epochs
  int step_in_epoch() const { return step_in_epoch_; }
  bool epoch_open() const { return epoch_open_; }
  bool done() const { return epoch_ >= options_.epochs; }

  void begin_epoch();
  // One training iteration: per-worker gradients over the active workers,
  // aggregation through the functional collectives on the (possibly shrunk)
  // simulated cluster, optimizer step.  Requires an open epoch and at least
  // one active worker.
  void step();
  EpochPoint end_epoch();

  // ---- wall-model hooks
  double comm_seconds() const { return comm_seconds_; }
  // Simulated communication seconds of the most recent step() (what a
  // wall-clock fault driver adds to its timeline per iteration).
  double last_step_comm_seconds() const { return last_step_comm_seconds_; }

  // ---- elastic world control
  int world() const { return world_; }
  int active_workers() const { return active_count_; }
  bool worker_active(int w) const;
  // Removes worker `w` from the active set (idempotent).  May leave zero
  // active workers; step() then refuses to run until restore_worker().
  void preempt_worker(int w);
  // Returns worker `w` to the active set (idempotent): it rejoins with the
  // shared model parameters and cold (zero) per-worker optimizer state.
  void restore_worker(int w);

  // ---- checkpointing
  // Complete state as a checksummed checkpoint blob (train/checkpoint.h).
  std::vector<uint8_t> serialize() const;
  // Restores a serialize() blob; throws ConfigError on corruption or on a
  // blob from an incompatible run (different world/task/algorithm).
  void restore(std::span<const uint8_t> blob);

  // ---- LTFB tournament support
  // Overwrites the model with `params` (the tournament winner) and clears
  // optimizer momentum + EF residuals, which describe the replaced model.
  void adopt_params(std::span<const float> params);

  ConvergenceResult result() const;
  const ConvergenceOptions& options() const { return options_; }
  ConvergenceTask& task() { return task_; }
  const simnet::Topology& topology() const { return topology_; }

 private:
  void rebuild_active_caches();
  void remap_ef_for_world_change(const std::vector<int>& old_active,
                                 const std::vector<int>& new_active);
  void flush_residual_to_pending(std::span<const float> values, size_t begin);
  void ensure_worker_keys();
  double lr_at(int iter) const;
  void average_worker_params(simnet::Cluster& cluster);
  void aggregate_dense(simnet::Cluster& cluster);
  void aggregate_sparse_workers(simnet::Cluster& cluster, bool random_k);
  void aggregate_gtopk(simnet::Cluster& cluster);
  void aggregate_mstopk(simnet::Cluster& cluster);

  ConvergenceTask& task_;
  ConvergenceOptions options_;
  int world_ = 0;
  size_t d_ = 0;
  size_t global_batch_ = 0;
  simnet::Topology topology_;
  int iters_per_epoch_ = 0;
  int warmup_iters_ = 0;
  int total_iters_ = 0;
  bool local_sgd_ = false;

  std::vector<Tensor> worker_grads_;
  coll::RankData grad_spans_;  // full-world spans, stable across rescales
  compress::ErrorFeedback error_feedback_;
  pto::SgdOptimizer sgd_;
  pto::LarsOptimizer lars_;
  std::vector<Tensor> worker_params_;  // kLocalSgd per-worker copies
  Rng shuffle_rng_;
  Rng compressor_rng_;
  std::vector<std::string> worker_keys_;
  std::vector<size_t> order_;
  std::vector<double> worker_loss_;

  // Elastic state.  active_idx_ lists active original worker ids ascending;
  // shrunk_ is the dense survivor world (valid while active_count_ < world_
  // and > 0).  pending_correction_ carries error-feedback mass flushed at a
  // rescale until the next update delivers it.
  std::vector<uint8_t> active_;
  int active_count_ = 0;
  std::vector<int> active_idx_;
  coll::SurvivorWorld shrunk_;
  Tensor pending_correction_;
  bool has_pending_correction_ = false;

  double comm_seconds_ = 0.0;
  double last_step_comm_seconds_ = 0.0;
  int iter_ = 0;
  int epoch_ = 0;
  int step_in_epoch_ = 0;
  bool epoch_open_ = false;
  double epoch_loss_ = 0.0;
  ConvergenceResult result_;
};

// Trains `task` in place (its parameters are updated).  Fault-free: drives
// a ConvergenceEngine through every epoch.
ConvergenceResult run_convergence(ConvergenceTask& task,
                                  const ConvergenceOptions& options);

}  // namespace hitopk::train
