// Fault-tolerant convergence: run_convergence through a FaultPlan script.
//
// Drives a ConvergenceEngine one iteration at a time along a simulated wall
// clock, consuming the plan's preemption script as timed events and applying
// one of the two recovery policies of scenario.h at *worker* granularity:
//
//   kAbortRestart — a preemption kills the job; the driver charges
//     detection + restart, rolls the engine back to the newest *valid*
//     checkpoint in the CheckpointStore (a corrupt newest version falls back
//     to the previous one — never a crash), and re-runs the lost iterations
//     on a full world.  Every preemption event inside the recovery window is
//     absorbed: no job was running for it to kill.
//
//   kElasticContinue — only the in-flight iteration's time is lost; the
//     engine drops the worker (its error-feedback residual folds into the
//     survivors per the documented remap policy) and continues at the
//     smaller world.  Scripted recover_times re-grow the world.  If every
//     worker dies the driver stalls to the first scripted return, or ends
//     with completed = false when there is none.
//
// Checkpoints are committed every checkpoint_interval iterations under both
// policies; the write cost is priced from the *actual serialized blob size*
// against checkpoint_write_gbps (0 = free writes, the pure-convergence
// view).  Compute time per iteration is scaled by the worst fault-plan
// degradation factor over the active workers' nodes, and communication time
// is the engine's own simulated collective time — so the wall clock, the
// convergence curve, and the fault script stay one deterministic story.
#pragma once

#include <functional>

#include "simnet/fault.h"
#include "train/checkpoint.h"
#include "train/convergence.h"
#include "train/scenario.h"

namespace hitopk::train {

struct FtOptions {
  ConvergenceOptions training;
  simnet::FaultPlan faults;
  RecoveryPolicy policy = RecoveryPolicy::kElasticContinue;

  int checkpoint_interval = 50;   // iterations between checkpoint commits
  int checkpoint_versions = 2;    // CheckpointStore ring size
  double checkpoint_write_gbps = 0.0;  // 0 = free checkpoint writes

  // Wall-clock model: seconds of compute per iteration (scaled by the fault
  // plan's degradation factor) on top of the engine's simulated
  // communication seconds.
  double compute_seconds_per_iter = 0.05;
  double restart_seconds = 30.0;     // abort-restart: re-provision + reload
  double reschedule_seconds = 0.5;   // elastic: rendezvous + re-derivation

  // Called after every checkpoint commit (fault-injection hook: corruption
  // tests flip bytes in the just-committed blob via store.mutable_blob and
  // watch the next restore fall back).
  std::function<void(CheckpointStore&, uint64_t version)> after_commit;
};

struct FtResult {
  ConvergenceResult convergence;
  double wall_seconds = 0.0;
  int preemptions = 0;         // preemption events that hit a live worker
  int regrows = 0;             // elastic: workers that rejoined
  int restores = 0;            // abort-restart: checkpoint rollbacks
  int lost_iterations = 0;     // iterations re-run after rollbacks
  int checkpoint_commits = 0;
  int checkpoint_fallbacks = 0;  // corrupt versions skipped on restore
  double checkpoint_seconds_total = 0.0;
  int min_active_workers = 0;
  bool completed = true;  // false if the world died with no scripted return
};

// Trains `task` under the fault script.  Deterministic: same task, options,
// and plan give a bit-identical result.  With an empty plan and default
// costs the convergence curve is bitwise-identical to run_convergence.
// `store` is the checkpoint ring the run commits to and restores from;
// passing it in lets tests corrupt blobs between iterations (and callers
// warm-start from a previous run's snapshots).
FtResult run_convergence_ft(ConvergenceTask& task, const FtOptions& options,
                            CheckpointStore* store = nullptr);

}  // namespace hitopk::train
