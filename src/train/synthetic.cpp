#include "train/synthetic.h"

#include <algorithm>
#include <cmath>

#include "autodiff/tape.h"
#include "core/check.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "core/workspace.h"

namespace hitopk::train {
namespace {

// One reusable tape per thread: reset() rewinds it with capacity intact, so
// steady-state gradient/evaluate calls allocate nothing (the node vector,
// id staging, and arena capacity all survive between calls).  Thread-local,
// so parallel_for workers each drive their own tape.
ad::Tape& scratch_tape() {
  thread_local ad::Tape tape;
  tape.reset();
  return tape;
}

// ------------------------------------------------------------ vision task
struct ClassificationData {
  Tensor x;  // n x dim
  std::vector<int> y;
  size_t classes = 0;
};

class MlpVisionTask : public ConvergenceTask {
 public:
  MlpVisionTask(uint64_t seed, std::string name, std::vector<size_t> hidden)
      : name_(std::move(name)) {
    // Gaussian mixture: class centers on a random sphere, isotropic noise
    // sized so top-1 is hard but top-5 is reachable (mirroring ImageNet's
    // top-5 metric head-room).  Train and test share the same centers.
    Rng rng(seed);
    Tensor centers(kClasses, kDim);
    centers.fill_normal(rng, 0.0f, 1.0f);
    auto fill = [&](ClassificationData& data, size_t samples) {
      data.classes = kClasses;
      data.x = Tensor(samples, kDim);
      data.y.resize(samples);
      for (size_t i = 0; i < samples; ++i) {
        const size_t c = static_cast<size_t>(rng.uniform_index(kClasses));
        data.y[i] = static_cast<int>(c);
        for (size_t j = 0; j < kDim; ++j) {
          data.x.at(i, j) =
              centers.at(c, j) + static_cast<float>(rng.normal(0.0, kNoise));
        }
      }
    };
    fill(train_, kTrainSamples);
    fill(test_, kTestSamples);

    // Layer dimensions: dim -> hidden... -> classes.
    std::vector<size_t> dims{kDim};
    dims.insert(dims.end(), hidden.begin(), hidden.end());
    dims.push_back(kClasses);
    size_t total = 0;
    for (size_t l = 0; l + 1 < dims.size(); ++l) {
      segments_.push_back({"w" + std::to_string(l), total, dims[l] * dims[l + 1]});
      total += dims[l] * dims[l + 1];
      segments_.push_back({"b" + std::to_string(l), total, dims[l + 1]});
      total += dims[l + 1];
    }
    dims_ = std::move(dims);
    params_ = Tensor(total);
    Rng init(seed + 1);
    size_t seg = 0;
    for (size_t l = 0; l + 1 < dims_.size(); ++l) {
      // He initialization for the weights; zero biases.
      const float scale =
          std::sqrt(2.0f / static_cast<float>(dims_[l]));
      auto w = params_.slice(segments_[seg].begin, segments_[seg].count);
      for (auto& v : w) v = static_cast<float>(init.normal(0.0, scale));
      seg += 2;
    }
  }

  std::string name() const override { return name_; }
  std::string quality_metric() const override { return "top-5 accuracy"; }
  size_t train_size() const override { return kTrainSamples; }
  size_t param_count() const override { return params_.size(); }
  std::span<float> params() override { return params_.span(); }
  const std::vector<LayerSegment>& segments() const override {
    return segments_;
  }

  double gradient_at(std::span<const float> params,
                     std::span<const size_t> sample_indices,
                     std::span<float> grad_out) override {
    HITOPK_CHECK_EQ(grad_out.size(), params_.size());
    HITOPK_CHECK_EQ(params.size(), params_.size());
    tensor_ops::zero(grad_out);
    const size_t b = sample_indices.size();
    HITOPK_CHECK_GT(b, 0u);
    // Gather the batch into thread-local scratch (reused across calls).
    Scratch<float> x(b * kDim);
    Scratch<int> y(b);
    for (size_t i = 0; i < b; ++i) {
      const size_t idx = sample_indices[i];
      HITOPK_CHECK_LT(idx, kTrainSamples);
      std::copy_n(&train_.x[idx * kDim], kDim, &x[i * kDim]);
      y[i] = train_.y[idx];
    }
    ad::Tape& tape = scratch_tape();
    const ad::VarId logits = forward(tape, params, x.span(), b, grad_out);
    const double loss = tape.softmax_cross_entropy(logits, y.span());
    tape.backward();
    return loss;
  }

  double evaluate() override {
    const size_t n = kTestSamples;
    // Chunked forward pass (no gradients); chunks are independent, so they
    // run on the thread pool, each with its own scratch gather buffers.
    const size_t chunk = 512;
    const size_t num_chunks = (n + chunk - 1) / chunk;
    std::vector<size_t> correct(num_chunks, 0);
    const std::span<const float> params = params_.span();
    parallel_for(0, num_chunks, [&](size_t c) {
      const size_t begin = c * chunk;
      const size_t count = std::min(chunk, n - begin);
      Scratch<float> x(count * kDim);
      Scratch<int> y(count);
      for (size_t i = 0; i < count; ++i) {
        std::copy_n(&test_.x[(begin + i) * kDim], kDim, &x[i * kDim]);
        y[i] = test_.y[begin + i];
      }
      ad::Tape& tape = scratch_tape();
      const ad::VarId logits = forward(tape, params, x.span(), count, {});
      correct[c] = ad::Tape::count_topk_correct(tape.value(logits), count,
                                               kClasses, y.span(), 5);
    });
    size_t total = 0;
    for (size_t c : correct) total += c;
    return static_cast<double>(total) / static_cast<double>(n);
  }

 private:
  // Builds the forward graph over the given flat parameters; when grad is
  // non-empty the parameter leaves accumulate into slices of it.
  ad::VarId forward(ad::Tape& tape, std::span<const float> params,
                    std::span<const float> x, size_t batch,
                    std::span<float> grad) {
    const ad::VarId input = tape.leaf(x, {}, batch, kDim);
    ad::VarId h = input;
    size_t seg = 0;
    for (size_t l = 0; l + 1 < dims_.size(); ++l) {
      const LayerSegment& ws = segments_[seg];
      const LayerSegment& bs = segments_[seg + 1];
      seg += 2;
      auto w_val = params.subspan(ws.begin, ws.count);
      auto b_val = params.subspan(bs.begin, bs.count);
      std::span<float> w_grad =
          grad.empty() ? std::span<float>{} : grad.subspan(ws.begin, ws.count);
      std::span<float> b_grad =
          grad.empty() ? std::span<float>{} : grad.subspan(bs.begin, bs.count);
      const ad::VarId w = tape.leaf(w_val, w_grad, dims_[l], dims_[l + 1]);
      const ad::VarId bias = tape.leaf(b_val, b_grad, 1, dims_[l + 1]);
      // Hidden layers fuse the bias add with the ReLU clamp.
      h = l + 2 < dims_.size() ? tape.add_bias_relu(tape.matmul(h, w), bias)
                               : tape.add_bias(tape.matmul(h, w), bias);
    }
    return h;
  }

  static constexpr size_t kClasses = 50;
  static constexpr size_t kDim = 64;
  static constexpr size_t kTrainSamples = 8192;
  static constexpr size_t kTestSamples = 2048;
  static constexpr double kNoise = 2.20;

  std::string name_;
  ClassificationData train_;
  ClassificationData test_;
  std::vector<size_t> dims_;
  Tensor params_;
  std::vector<LayerSegment> segments_;
};

// ------------------------------------------------------------ seq task
struct SequenceData {
  std::vector<int> tokens;  // n * seq_len
  std::vector<int> y;
  size_t seq_len = 0;
  size_t classes = 0;
  size_t vocab = 0;
};

// Class-conditional unigram sequences: class c emits tokens mostly from its
// own slice of the vocabulary, with uniform noise mixed in.
SequenceData make_unigram_sequences(size_t classes, size_t vocab,
                                    size_t seq_len, size_t samples,
                                    double noise_prob, Rng& rng) {
  SequenceData data;
  data.seq_len = seq_len;
  data.classes = classes;
  data.vocab = vocab;
  data.tokens.resize(samples * seq_len);
  data.y.resize(samples);
  const size_t slice = vocab / classes;
  for (size_t i = 0; i < samples; ++i) {
    const size_t c = static_cast<size_t>(rng.uniform_index(classes));
    data.y[i] = static_cast<int>(c);
    for (size_t t = 0; t < seq_len; ++t) {
      int token;
      if (rng.uniform() < noise_prob) {
        token = static_cast<int>(rng.uniform_index(vocab));
      } else {
        token = static_cast<int>(c * slice + rng.uniform_index(slice));
      }
      data.tokens[i * seq_len + t] = token;
    }
  }
  return data;
}

class SeqTask : public ConvergenceTask {
 public:
  explicit SeqTask(uint64_t seed, std::string name) : name_(std::move(name)) {
    Rng rng(seed);
    train_ = make_unigram_sequences(kClasses, kVocab, kSeqLen, kTrainSamples,
                                    kNoise, rng);
    test_ = make_unigram_sequences(kClasses, kVocab, kSeqLen, kTestSamples,
                                   kNoise, rng);
    size_t total = 0;
    segments_.push_back({"embedding", total, kVocab * kWidth});
    total += kVocab * kWidth;
    segments_.push_back({"w1", total, kWidth * kHidden});
    total += kWidth * kHidden;
    segments_.push_back({"b1", total, kHidden});
    total += kHidden;
    segments_.push_back({"w2", total, kHidden * kClasses});
    total += kHidden * kClasses;
    segments_.push_back({"b2", total, kClasses});
    total += kClasses;
    params_ = Tensor(total);
    Rng init(seed + 1);
    for (const auto& seg : segments_) {
      if (seg.name[0] == 'b') continue;
      const float scale = seg.name == "embedding"
                              ? 0.5f
                              : std::sqrt(2.0f / static_cast<float>(kWidth));
      auto w = params_.slice(seg.begin, seg.count);
      for (auto& v : w) v = static_cast<float>(init.normal(0.0, scale));
    }
  }

  std::string name() const override { return name_; }
  std::string quality_metric() const override { return "token accuracy"; }
  size_t train_size() const override { return kTrainSamples; }
  size_t param_count() const override { return params_.size(); }
  std::span<float> params() override { return params_.span(); }
  const std::vector<LayerSegment>& segments() const override {
    return segments_;
  }

  double gradient_at(std::span<const float> params,
                     std::span<const size_t> sample_indices,
                     std::span<float> grad_out) override {
    HITOPK_CHECK_EQ(grad_out.size(), params_.size());
    HITOPK_CHECK_EQ(params.size(), params_.size());
    tensor_ops::zero(grad_out);
    const size_t b = sample_indices.size();
    ad::Tape& tape = scratch_tape();
    Scratch<int> y(b);
    const ad::VarId logits =
        forward(tape, params, train_, sample_indices, grad_out, y.span());
    const double loss = tape.softmax_cross_entropy(logits, y.span());
    tape.backward();
    return loss;
  }

  double evaluate() override {
    const size_t chunk = 512;
    const size_t num_chunks = (kTestSamples + chunk - 1) / chunk;
    std::vector<size_t> correct(num_chunks, 0);
    const std::span<const float> params = params_.span();
    parallel_for(0, num_chunks, [&](size_t c) {
      const size_t begin = c * chunk;
      const size_t count = std::min(chunk, kTestSamples - begin);
      Scratch<size_t> idx(count);
      Scratch<int> y(count);
      for (size_t i = 0; i < count; ++i) idx[i] = begin + i;
      ad::Tape& tape = scratch_tape();
      const ad::VarId logits =
          forward(tape, params, test_, idx.span(), {}, y.span());
      correct[c] = ad::Tape::count_topk_correct(tape.value(logits), count,
                                               kClasses, y.span(), 1);
    });
    size_t total = 0;
    for (size_t c : correct) total += c;
    return static_cast<double>(total) / static_cast<double>(kTestSamples);
  }

 private:
  ad::VarId forward(ad::Tape& tape, std::span<const float> params,
                    const SequenceData& data, std::span<const size_t> indices,
                    std::span<float> grad, std::span<int> labels_out) {
    const size_t b = indices.size();
    Scratch<int> ids(b * kSeqLen);
    for (size_t i = 0; i < b; ++i) {
      std::copy_n(&data.tokens[indices[i] * kSeqLen], kSeqLen,
                  &ids[i * kSeqLen]);
      labels_out[i] = data.y[indices[i]];
    }
    auto leaf_of = [&](size_t seg_index, size_t rows, size_t cols) {
      const LayerSegment& seg = segments_[seg_index];
      auto value = params.subspan(seg.begin, seg.count);
      std::span<float> g = grad.empty()
                               ? std::span<float>{}
                               : grad.subspan(seg.begin, seg.count);
      return tape.leaf(value, g, rows, cols);
    };
    const ad::VarId table = leaf_of(0, kVocab, kWidth);
    const ad::VarId embedded =
        tape.embedding(table, std::span<const int>(ids.span()));
    const ad::VarId pooled = tape.mean_pool(embedded, kSeqLen);
    const ad::VarId w1 = leaf_of(1, kWidth, kHidden);
    const ad::VarId b1 = leaf_of(2, 1, kHidden);
    const ad::VarId h = tape.add_bias_relu(tape.matmul(pooled, w1), b1);
    const ad::VarId w2 = leaf_of(3, kHidden, kClasses);
    const ad::VarId b2 = leaf_of(4, 1, kClasses);
    return tape.add_bias(tape.matmul(h, w2), b2);
  }

  static constexpr size_t kClasses = 16;
  static constexpr size_t kVocab = 128;
  static constexpr size_t kSeqLen = 20;
  static constexpr size_t kWidth = 32;
  static constexpr size_t kHidden = 64;
  static constexpr size_t kTrainSamples = 8192;
  static constexpr size_t kTestSamples = 2048;
  static constexpr double kNoise = 0.82;

  std::string name_;
  SequenceData train_;
  SequenceData test_;
  Tensor params_;
  std::vector<LayerSegment> segments_;
};

// ------------------------------------------------------------ CNN task
class CnnTask : public ConvergenceTask {
 public:
  explicit CnnTask(uint64_t seed, std::string name) : name_(std::move(name)) {
    // Class motifs: distinct 3x3 binary stamps.
    const uint16_t motifs[kClasses] = {
        0b000111000,  // horizontal bar
        0b010010010,  // vertical bar
        0b100010001,  // diagonal
        0b001010100,  // anti-diagonal
        0b010111010,  // cross
        0b111100100,  // corner
        0b111101111,  // ring
        0b101010101,  // checkers
    };
    Rng rng(seed);
    auto fill = [&](Tensor& x, std::vector<int>& y, size_t samples) {
      x = Tensor(samples, kPixels);
      y.resize(samples);
      for (size_t i = 0; i < samples; ++i) {
        const size_t c = static_cast<size_t>(rng.uniform_index(kClasses));
        y[i] = static_cast<int>(c);
        float* img = &x[i * kPixels];
        for (size_t p = 0; p < kPixels; ++p) {
          img[p] = static_cast<float>(rng.normal(0.0, kNoise));
        }
        // Stamp the motif at a random interior position.
        const size_t oy = 1 + rng.uniform_index(kSide - 3);
        const size_t ox = 1 + rng.uniform_index(kSide - 3);
        for (int ky = 0; ky < 3; ++ky) {
          for (int kx = 0; kx < 3; ++kx) {
            if (motifs[c] >> (8 - (ky * 3 + kx)) & 1) {
              img[(oy + static_cast<size_t>(ky) - 1) * kSide + ox +
                  static_cast<size_t>(kx) - 1] += 3.0f;
            }
          }
        }
      }
    };
    fill(train_x_, train_y_, kTrainSamples);
    fill(test_x_, test_y_, kTestSamples);

    size_t total = 0;
    auto segment = [&](const char* seg_name, size_t count) {
      segments_.push_back({seg_name, total, count});
      total += count;
    };
    segment("conv1.w", kChannels * 1 * 9);
    segment("conv2.w", kChannels * kChannels * 9);
    segment("fc.w", kChannels * kClasses);
    segment("fc.b", kClasses);
    params_ = Tensor(total);
    Rng init(seed + 1);
    for (size_t s = 0; s < 3; ++s) {  // He-style init for the weights
      auto w = params_.slice(segments_[s].begin, segments_[s].count);
      const float scale = s < 2 ? 0.35f : 0.4f;
      for (auto& v : w) v = static_cast<float>(init.normal(0.0, scale));
    }
  }

  std::string name() const override { return name_; }
  std::string quality_metric() const override { return "top-1 accuracy"; }
  size_t train_size() const override { return kTrainSamples; }
  size_t param_count() const override { return params_.size(); }
  std::span<float> params() override { return params_.span(); }
  const std::vector<LayerSegment>& segments() const override {
    return segments_;
  }

  double gradient_at(std::span<const float> params,
                     std::span<const size_t> sample_indices,
                     std::span<float> grad_out) override {
    HITOPK_CHECK_EQ(grad_out.size(), params_.size());
    HITOPK_CHECK_EQ(params.size(), params_.size());
    tensor_ops::zero(grad_out);
    const size_t b = sample_indices.size();
    Scratch<float> x(b * kPixels);
    Scratch<int> y(b);
    for (size_t i = 0; i < b; ++i) {
      std::copy_n(&train_x_[sample_indices[i] * kPixels], kPixels,
                  &x[i * kPixels]);
      y[i] = train_y_[sample_indices[i]];
    }
    ad::Tape& tape = scratch_tape();
    const ad::VarId logits = forward(tape, params, x.span(), b, grad_out);
    const double loss = tape.softmax_cross_entropy(logits, y.span());
    tape.backward();
    return loss;
  }

  double evaluate() override {
    const size_t chunk = 256;
    const size_t num_chunks = (kTestSamples + chunk - 1) / chunk;
    std::vector<size_t> correct(num_chunks, 0);
    const std::span<const float> params = params_.span();
    parallel_for(0, num_chunks, [&](size_t c) {
      const size_t begin = c * chunk;
      const size_t count = std::min(chunk, kTestSamples - begin);
      Scratch<float> x(count * kPixels);
      Scratch<int> y(count);
      for (size_t i = 0; i < count; ++i) {
        std::copy_n(&test_x_[(begin + i) * kPixels], kPixels, &x[i * kPixels]);
        y[i] = test_y_[begin + i];
      }
      ad::Tape& tape = scratch_tape();
      const ad::VarId logits = forward(tape, params, x.span(), count, {});
      correct[c] = ad::Tape::count_topk_correct(tape.value(logits), count,
                                               kClasses, y.span(), 1);
    });
    size_t total = 0;
    for (size_t c : correct) total += c;
    return static_cast<double>(total) / static_cast<double>(kTestSamples);
  }

 private:
  ad::VarId forward(ad::Tape& tape, std::span<const float> params,
                    std::span<const float> x, size_t batch,
                    std::span<float> grad) {
    auto leaf_of = [&](size_t seg_index, size_t rows, size_t cols) {
      const LayerSegment& seg = segments_[seg_index];
      auto value = params.subspan(seg.begin, seg.count);
      std::span<float> g = grad.empty()
                               ? std::span<float>{}
                               : grad.subspan(seg.begin, seg.count);
      return tape.leaf(value, g, rows, cols);
    };
    const ad::VarId input = tape.leaf(x, {}, batch, kPixels);
    const ad::VarId w1 = leaf_of(0, kChannels, 9);
    const ad::VarId h1 = tape.relu(
        tape.conv2d(input, w1, 1, kSide, kSide, kChannels, 3));
    const ad::VarId w2 = leaf_of(1, kChannels, kChannels * 9);
    const ad::VarId h2 = tape.relu(
        tape.conv2d(h1, w2, kChannels, kSide, kSide, kChannels, 3));
    // Global average pooling makes the head translation invariant — the
    // motif can appear anywhere in the canvas.
    const ad::VarId pooled = tape.channel_pool(h2, kChannels);
    const ad::VarId fc_w = leaf_of(2, kChannels, kClasses);
    const ad::VarId fc_b = leaf_of(3, 1, kClasses);
    return tape.add_bias(tape.matmul(pooled, fc_w), fc_b);
  }

  static constexpr size_t kClasses = 8;
  static constexpr size_t kSide = 12;
  static constexpr size_t kPixels = kSide * kSide;
  static constexpr size_t kChannels = 16;
  static constexpr size_t kTrainSamples = 4096;
  static constexpr size_t kTestSamples = 1024;
  static constexpr double kNoise = 0.55;

  std::string name_;
  Tensor train_x_;
  Tensor test_x_;
  std::vector<int> train_y_;
  std::vector<int> test_y_;
  Tensor params_;
  std::vector<LayerSegment> segments_;
};

}  // namespace

std::unique_ptr<ConvergenceTask> make_vision_task(uint64_t seed,
                                                  const std::string& name,
                                                  std::vector<size_t> hidden) {
  return std::make_unique<MlpVisionTask>(seed, name, std::move(hidden));
}

std::unique_ptr<ConvergenceTask> make_sequence_task(uint64_t seed,
                                                    const std::string& name) {
  return std::make_unique<SeqTask>(seed, name);
}

std::unique_ptr<ConvergenceTask> make_cnn_task(uint64_t seed,
                                               const std::string& name) {
  return std::make_unique<CnnTask>(seed, name);
}

}  // namespace hitopk::train
