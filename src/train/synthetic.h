// Synthetic convergence tasks (substitution for ImageNet / WMT17; see
// DESIGN.md).
//
// The paper's Fig. 10 / Table 2 claims are about the *relative* convergence
// of Dense-SGD vs TopK-SGD vs MSTopK-SGD, which depends on gradient
// sparsification dynamics, not on the specific vision/translation task.
// The stand-ins preserve what matters: real non-convex models trained by
// mini-batch SGD with real per-worker gradients.
//
//   - Vision proxy (ResNet-50 / VGG-19 rows): Gaussian-mixture
//     classification with an MLP; quality metric is top-5 accuracy, like
//     the paper's CNN rows.
//   - Sequence proxy (Transformer row): class-conditional unigram
//     sequences classified by an embedding + mean-pool model; quality is
//     token-classification accuracy standing in for BLEU.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/tensor.h"

namespace hitopk::train {

struct LayerSegment {
  std::string name;
  size_t begin = 0;
  size_t count = 0;
};

// A model + dataset bundle exposing exactly what the distributed
// convergence harness needs: flat parameters, per-batch flat gradients, and
// a held-out quality metric.
class ConvergenceTask {
 public:
  virtual ~ConvergenceTask() = default;

  virtual std::string name() const = 0;
  virtual std::string quality_metric() const = 0;

  virtual size_t train_size() const = 0;
  virtual size_t param_count() const = 0;
  virtual std::span<float> params() = 0;
  virtual const std::vector<LayerSegment>& segments() const = 0;

  // Computes the mean mini-batch gradient of the current parameters over
  // the given training samples into grad_out (zeroed first).  Returns the
  // batch loss.
  double gradient(std::span<const size_t> sample_indices,
                  std::span<float> grad_out) {
    return gradient_at(params(), sample_indices, grad_out);
  }

  // Same, but evaluated at an explicit parameter vector (layout identical
  // to params()) without touching task state — what LocalSGD's per-worker
  // parameter copies need.  Implementations must be safe to call
  // concurrently from parallel_for workers: they may read shared training
  // data but keep all mutable scratch per call (thread-local workspace
  // buffers), so the per-worker gradient fan-out in run_convergence can run
  // on the thread pool with bitwise-serial-identical results.
  virtual double gradient_at(std::span<const float> params,
                             std::span<const size_t> sample_indices,
                             std::span<float> grad_out) = 0;

  // Quality on the held-out set (top-5 accuracy or token accuracy, in
  // [0, 1]).
  virtual double evaluate() = 0;
};

// MLP on a Gaussian-mixture classification problem.  `hidden` of {96, 64}
// with 20 classes / 64 input dims gives ~14k parameters.
std::unique_ptr<ConvergenceTask> make_vision_task(
    uint64_t seed, const std::string& name = "resnet50-proxy",
    std::vector<size_t> hidden = {96, 64});

// Embedding + mean-pool classifier on class-conditional token sequences.
std::unique_ptr<ConvergenceTask> make_sequence_task(
    uint64_t seed, const std::string& name = "transformer-proxy");

// A real (small) convolutional network on translation-invariant pattern
// images: class-specific 3x3 motifs stamped at random positions in a noisy
// 12x12 canvas, classified by conv -> relu -> conv -> relu -> dense.  The
// closest laptop-scale analogue of the paper's CNN workloads: convolution
// weight gradients flow through the same sparsification path.
std::unique_ptr<ConvergenceTask> make_cnn_task(
    uint64_t seed, const std::string& name = "cnn-proxy");

}  // namespace hitopk::train
