#include "train/tenant.h"

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "collectives/ring.h"
#include "models/perf_model.h"

namespace hitopk::train {

simnet::JobBody make_tenant_body(const TenantWorkload& workload) {
  // One recorded schedule per distinct gang: the recording depends only on
  // the (sorted) rank set and payload, not on the clock or the job id, so a
  // job replays the same schedule every iteration and jobs that happen to
  // get the same gang shape share nothing (gangs are disjoint while alive).
  struct State {
    TenantWorkload workload;
    std::map<std::pair<std::vector<int>, size_t>, coll::Schedule> schedules;
  };
  auto state = std::make_shared<State>();
  state->workload = workload;

  return [state](simnet::Cluster& cluster, const simnet::JobSpec& spec,
                 const std::vector<int>& ranks,
                 double start) -> simnet::JobIteration {
    const TenantWorkload& w = state->workload;
    const double compute = simnet::Cluster::compute(
        start, models::PerfModel::ffbp_seconds(w.model, w.resolution,
                                               w.local_batch));
    if (ranks.size() <= 1 || spec.bytes == 0) return {compute, false};

    // JobSpec::bytes counts the fp32 gradient; the wire dtype decides how
    // many bytes those elements occupy on the ports.
    const size_t elems = (spec.bytes + 3) / 4;
    coll::Schedule& sched = state->schedules[{ranks, spec.bytes}];
    if (sched.empty()) {
      const coll::Group group =
          coll::locality_sorted_group(cluster.topology(), ranks);
      const std::vector<coll::Group> groups{group};
      const coll::RingGrid grid = coll::ring_grid(sched, groups, {}, w.wire);
      coll::build_ring_reduce_scatter(sched, groups, grid, elems, w.wire,
                                      /*fused_chains=*/true);
      sched.sync(/*collapse=*/true);
      coll::build_ring_allgather(sched, groups, grid, elems, w.wire);
    }
    const coll::ScheduleOutcome out =
        sched.run_timing_abortable(cluster, compute, spec.id);
    return {out.finish, out.aborted()};
  };
}

}  // namespace hitopk::train
