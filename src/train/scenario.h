// Fault-injected training timeline: the public-cloud scenario axis.
//
// Wraps TrainingSimulator's per-iteration model in a wall-clock event loop
// driven by a seeded fault script: node-granularity preemptions (spot
// revocations) arriving as a Poisson process, optional node return after a
// provisioning delay, and bursty *correlated-per-pod* compute jitter — a
// whole pod of nodes slows down together for a window (noisy neighbor,
// thermal event), which the constant-cv Gaussian straggler model cannot
// express because it assumes independent per-worker noise.  The burst
// windows are a simnet::FaultPlan degradation script (one entry per pod),
// so the straggler model and the collective-level fault injection share one
// event-script format and one determinism contract: same seed, same
// timeline, bit-identical metrics.
//
// Two recovery policies, the checkpoint-interval trade-off between them
// being the point of bench_fig11_faults:
//
//   kAbortRestart — the classic fixed-world job: a preemption kills the
//     run, work since the last checkpoint is lost, and the job restarts on
//     a re-provisioned full world after `restart_seconds`.  Short
//     checkpoint intervals bound the lost work but pay `checkpoint_seconds`
//     often.
//
//   kElasticContinue — the elastic job: only the in-flight iteration is
//     lost; the survivors re-shard the model state (one full parameter pass
//     over the fabric), re-derive their collectives (the elastic layer of
//     collectives/elastic.h), and continue at the smaller world — at
//     proportionally lower throughput — until the preempted node returns
//     and re-shards back in.
#pragma once

#include "simnet/fault.h"
#include "train/timeline.h"

namespace hitopk::train {

enum class RecoveryPolicy { kAbortRestart, kElasticContinue };

struct ScenarioOptions {
  TrainerOptions trainer;
  int iterations = 1000;  // useful iterations the job must complete

  // ---- preemption process
  double preempt_rate_per_node_hour = 0.0;  // Poisson intensity per up-node
  // Preempted node returns (re-provisioned spot capacity) after this long;
  // simnet::kNever = never.  Elastic only — abort-restart always restarts
  // on a full world.
  double node_return_seconds = simnet::kNever;
  // Keepalive timeout before the survivors declare the rank dead.
  double detection_timeout_seconds = 1.0;

  // ---- recovery policy costs
  RecoveryPolicy policy = RecoveryPolicy::kElasticContinue;
  int checkpoint_interval = 100;     // iterations between checkpoints
  double checkpoint_seconds = 5.0;   // cost of writing one checkpoint
  // When positive, the checkpoint write is priced from the snapshot size
  // instead of the flat checkpoint_seconds: the state a fault-tolerant run
  // snapshots is ~3 parameter planes (weights + optimizer momentum +
  // error-feedback residuals, the ConvergenceEngine serialization) at 4
  // bytes each, streamed to durable storage at this rate.  0 keeps the
  // legacy flat cost.
  double checkpoint_write_gbps = 0.0;
  double restart_seconds = 120.0;    // abort-restart: provision + reload
  double reschedule_seconds = 2.0;   // elastic: rendezvous + re-derivation

  // ---- bursty correlated-per-pod jitter (FaultPlan degradation script)
  double burst_rate_per_pod_hour = 0.0;
  double burst_duration_seconds = 30.0;
  double burst_factor = 1.25;  // compute multiplier while a pod bursts
  int nodes_per_pod = 4;       // pod grouping for the burst correlation

  uint64_t seed = 42;
};

struct ScenarioResult {
  double wall_seconds = 0.0;
  // Useful samples per wall second vs the fault-free full-world rate.
  double goodput = 0.0;
  double ideal_throughput = 0.0;
  double goodput_fraction = 0.0;
  // Compute seconds thrown away (partial iterations at preemptions plus
  // rolled-back work under abort-restart) as a fraction of wall time.
  double lost_work_fraction = 0.0;
  // Mean seconds from a preemption to training running again.
  double mean_time_to_recover = 0.0;
  int preemptions = 0;
  int rescales = 0;   // elastic world-size changes (shrink + regrow)
  int restarts = 0;   // abort-restart recoveries
  double checkpoint_seconds_total = 0.0;
  // Wall-time share spent writing checkpoints (the interval trade-off axis
  // of bench_fig11_faults: short intervals bound lost work but raise this).
  double checkpoint_overhead_fraction = 0.0;
  int min_world_nodes = 0;  // smallest node count the job ran at
  int useful_iterations = 0;
  bool completed = true;  // false if the world died out with no returns
};

// Simulates the job on a uniform `topology` (throws ConfigError otherwise).
// Deterministic in options.seed.
ScenarioResult simulate_scenario(const simnet::Topology& topology,
                                 const ScenarioOptions& options);

}  // namespace hitopk::train
