#include "train/checkpoint.h"

#include <algorithm>
#include <cstring>

#include "core/check.h"

namespace hitopk::train {
namespace {

constexpr uint8_t kTypeU64 = 0;
constexpr uint8_t kTypeF64 = 1;
constexpr uint8_t kTypeF32 = 2;

constexpr uint32_t kMagic = 0x48544b43u;  // "HTKC"
constexpr uint32_t kFormatVersion = 1;

void append_bytes(std::vector<uint8_t>& blob, const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  blob.insert(blob.end(), p, p + n);
}

template <typename T>
void append_scalar(std::vector<uint8_t>& blob, T value) {
  append_bytes(blob, &value, sizeof(T));
}

template <typename T>
T read_scalar(std::span<const uint8_t> blob, size_t& offset) {
  HITOPK_VALIDATE(offset + sizeof(T) <= blob.size())
      << "checkpoint truncated inside a header field";
  T value;
  std::memcpy(&value, blob.data() + offset, sizeof(T));
  offset += sizeof(T);
  return value;
}

}  // namespace

uint64_t fnv1a64(std::span<const uint8_t> bytes, uint64_t basis) {
  uint64_t hash = basis;
  for (uint8_t b : bytes) {
    hash ^= b;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

// ------------------------------------------------------------------ writer

CheckpointWriter::CheckpointWriter() {
  append_scalar(blob_, kMagic);
  append_scalar(blob_, kFormatVersion);
}

void CheckpointWriter::put_record(std::string_view name, uint8_t type,
                                  std::span<const uint8_t> payload) {
  HITOPK_CHECK(!finished_) << "checkpoint writer already finished";
  HITOPK_CHECK(!name.empty());
  const size_t record_start = blob_.size();
  append_scalar(blob_, static_cast<uint32_t>(name.size()));
  append_bytes(blob_, name.data(), name.size());
  append_scalar(blob_, type);
  append_scalar(blob_, static_cast<uint64_t>(payload.size()));
  append_bytes(blob_, payload.data(), payload.size());
  // The record checksum covers everything from the name length to the end
  // of the payload, so header corruption is caught too.
  const uint64_t checksum = fnv1a64(
      std::span<const uint8_t>(blob_.data() + record_start,
                               blob_.size() - record_start));
  append_scalar(blob_, checksum);
}

void CheckpointWriter::put_u64s(std::string_view name,
                                std::span<const uint64_t> values) {
  put_record(name, kTypeU64,
             std::span<const uint8_t>(
                 reinterpret_cast<const uint8_t*>(values.data()),
                 values.size() * sizeof(uint64_t)));
}

void CheckpointWriter::put_f64s(std::string_view name,
                                std::span<const double> values) {
  put_record(name, kTypeF64,
             std::span<const uint8_t>(
                 reinterpret_cast<const uint8_t*>(values.data()),
                 values.size() * sizeof(double)));
}

void CheckpointWriter::put_floats(std::string_view name,
                                  std::span<const float> values) {
  put_record(name, kTypeF32,
             std::span<const uint8_t>(
                 reinterpret_cast<const uint8_t*>(values.data()),
                 values.size() * sizeof(float)));
}

std::vector<uint8_t> CheckpointWriter::finish() {
  HITOPK_CHECK(!finished_) << "checkpoint writer already finished";
  finished_ = true;
  const uint64_t footer = fnv1a64(blob_);
  append_scalar(blob_, footer);
  return std::move(blob_);
}

// ------------------------------------------------------------------ reader

CheckpointReader::CheckpointReader(std::span<const uint8_t> blob) {
  HITOPK_VALIDATE(blob.size() >= sizeof(uint32_t) * 2 + sizeof(uint64_t))
      << "checkpoint blob too small to hold a header and footer";
  // Footer first: a mismatch means truncation or a torn tail, so nothing
  // after this point can be trusted.
  const size_t body_size = blob.size() - sizeof(uint64_t);
  uint64_t footer;
  std::memcpy(&footer, blob.data() + body_size, sizeof(uint64_t));
  HITOPK_VALIDATE(fnv1a64(blob.subspan(0, body_size)) == footer)
      << "checkpoint footer checksum mismatch (torn or truncated blob)";

  size_t offset = 0;
  HITOPK_VALIDATE(read_scalar<uint32_t>(blob, offset) == kMagic)
      << "checkpoint magic mismatch";
  HITOPK_VALIDATE(read_scalar<uint32_t>(blob, offset) == kFormatVersion)
      << "unsupported checkpoint format version";

  while (offset < body_size) {
    const size_t record_start = offset;
    const uint32_t name_len = read_scalar<uint32_t>(blob, offset);
    HITOPK_VALIDATE(offset + name_len <= body_size)
        << "checkpoint truncated inside a record name";
    std::string name(reinterpret_cast<const char*>(blob.data() + offset),
                     name_len);
    offset += name_len;
    const uint8_t type = read_scalar<uint8_t>(blob, offset);
    const uint64_t payload_bytes = read_scalar<uint64_t>(blob, offset);
    // Compared against the remaining bytes (not offset + payload_bytes,
    // which a corrupt length field could wrap past the end).
    HITOPK_VALIDATE(payload_bytes <= body_size - offset)
        << "checkpoint truncated inside record" << name;
    const std::span<const uint8_t> payload = blob.subspan(offset, payload_bytes);
    offset += payload_bytes;
    const uint64_t expected = fnv1a64(
        blob.subspan(record_start, offset - record_start));
    HITOPK_VALIDATE(read_scalar<uint64_t>(blob, offset) == expected)
        << "checkpoint record checksum mismatch for" << name;

    Record record;
    record.type = type;
    switch (type) {
      case kTypeU64:
        HITOPK_VALIDATE(payload_bytes % sizeof(uint64_t) == 0);
        record.u.resize(payload_bytes / sizeof(uint64_t));
        std::memcpy(record.u.data(), payload.data(), payload_bytes);
        break;
      case kTypeF64:
        HITOPK_VALIDATE(payload_bytes % sizeof(double) == 0);
        record.d.resize(payload_bytes / sizeof(double));
        std::memcpy(record.d.data(), payload.data(), payload_bytes);
        break;
      case kTypeF32:
        HITOPK_VALIDATE(payload_bytes % sizeof(float) == 0);
        record.f.resize(payload_bytes / sizeof(float));
        std::memcpy(record.f.data(), payload.data(), payload_bytes);
        break;
      default:
        HITOPK_VALIDATE(false) << "unknown checkpoint record type for" << name;
    }
    HITOPK_VALIDATE(records_.emplace(name, std::move(record)).second)
        << "duplicate checkpoint record" << name;
    names_.push_back(std::move(name));
  }
}

bool CheckpointReader::has(std::string_view name) const {
  return records_.count(std::string(name)) > 0;
}

const CheckpointReader::Record& CheckpointReader::record(std::string_view name,
                                                         uint8_t type) const {
  auto it = records_.find(std::string(name));
  HITOPK_VALIDATE(it != records_.end())
      << "checkpoint record missing:" << std::string(name);
  HITOPK_VALIDATE(it->second.type == type)
      << "checkpoint record type mismatch for" << std::string(name);
  return it->second;
}

std::span<const uint64_t> CheckpointReader::u64s(std::string_view name) const {
  return record(name, kTypeU64).u;
}

std::span<const double> CheckpointReader::f64s(std::string_view name) const {
  return record(name, kTypeF64).d;
}

std::span<const float> CheckpointReader::floats(std::string_view name) const {
  return record(name, kTypeF32).f;
}

// ------------------------------------------------------------------- store

namespace {

bool blob_verifies(const std::vector<uint8_t>& blob) {
  try {
    CheckpointReader reader(blob);
    return true;
  } catch (const ConfigError&) {
    return false;
  }
}

}  // namespace

CheckpointStore::CheckpointStore(size_t max_versions)
    : max_versions_(max_versions) {
  HITOPK_CHECK_GT(max_versions, 0u);
}

uint64_t CheckpointStore::commit(std::vector<uint8_t> blob) {
  // Validate before touching the ring: a malformed snapshot must not evict
  // the good one it was meant to replace.
  HITOPK_VALIDATE(blob_verifies(blob))
      << "refusing to commit a checkpoint blob that fails validation";
  slots_.push_back(Slot{next_version_, std::move(blob)});
  if (slots_.size() > max_versions_) slots_.erase(slots_.begin());
  return next_version_++;
}

std::optional<CheckpointStore::Snapshot> CheckpointStore::newest_valid() {
  for (auto it = slots_.rbegin(); it != slots_.rend(); ++it) {
    if (blob_verifies(it->blob)) return Snapshot{it->version, &it->blob};
    ++fallbacks_;
  }
  return std::nullopt;
}

uint64_t CheckpointStore::newest_version() const {
  return slots_.empty() ? 0 : slots_.back().version;
}

std::vector<uint8_t>& CheckpointStore::mutable_blob(uint64_t version) {
  for (Slot& slot : slots_) {
    if (slot.version == version) return slot.blob;
  }
  HITOPK_CHECK(false) << "no checkpoint version" << version;
  return slots_.front().blob;  // unreachable
}

}  // namespace hitopk::train
