#include "train/ft_convergence.h"

#include <algorithm>

#include "core/check.h"

namespace hitopk::train {

FtResult run_convergence_ft(ConvergenceTask& task, const FtOptions& options,
                            CheckpointStore* store_ptr) {
  HITOPK_VALIDATE(options.checkpoint_interval > 0);
  HITOPK_VALIDATE(options.checkpoint_versions > 0);
  HITOPK_VALIDATE(options.compute_seconds_per_iter >= 0.0);
  HITOPK_VALIDATE(options.checkpoint_write_gbps >= 0.0);

  CheckpointStore local_store(
      static_cast<size_t>(options.checkpoint_versions));
  CheckpointStore& store = store_ptr ? *store_ptr : local_store;
  ConvergenceEngine engine(task, options.training);
  const simnet::FaultPlan& plan = options.faults;
  const int gpus = options.training.gpus_per_node;

  // The plan's preemption script as a sorted, consumed-once event list:
  // each scripted window contributes a death event and (when it recovers
  // inside the horizon) a return event.  Consuming events exactly once —
  // rather than polling alive() — is what lets abort-restart make progress
  // against a permanent preemption: the restarted full world stands for
  // re-provisioned capacity, not the same doomed machine.
  struct Event {
    double time = 0.0;
    int rank = 0;
    bool recovery = false;
  };
  std::vector<Event> events;
  for (const simnet::Preemption& p : plan.preemptions()) {
    if (p.rank >= engine.world()) continue;
    events.push_back(Event{p.time, p.rank, false});
    if (p.recover_time < simnet::kNever) {
      events.push_back(Event{p.recover_time, p.rank, true});
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     return a.time < b.time;
                   });

  FtResult out;
  out.min_active_workers = engine.world();
  double t = 0.0;
  size_t next_event = 0;
  int since_checkpoint = 0;
  const int fallbacks_before = store.fallbacks();

  auto commit_checkpoint = [&] {
    std::vector<uint8_t> blob = engine.serialize();
    if (options.checkpoint_write_gbps > 0.0) {
      const double cost = static_cast<double>(blob.size()) /
                          (options.checkpoint_write_gbps * 1e9);
      t += cost;
      out.checkpoint_seconds_total += cost;
    }
    const uint64_t version = store.commit(std::move(blob));
    ++out.checkpoint_commits;
    if (options.after_commit) options.after_commit(store, version);
  };
  // The initial state doubles as the rollback target of last resort: if
  // every retained checkpoint version fails validation, a restart
  // re-provisions from the job spec instead of crashing.
  const std::vector<uint8_t> genesis = engine.serialize();
  commit_checkpoint();  // t = 0 snapshot: the first rollback target

  while (!engine.done()) {
    while (next_event < events.size() && events[next_event].time <= t) {
      const Event ev = events[next_event++];
      if (ev.recovery) {
        if (options.policy == RecoveryPolicy::kElasticContinue &&
            !engine.worker_active(ev.rank)) {
          engine.restore_worker(ev.rank);
          ++out.regrows;
          t += options.reschedule_seconds;
        }
        // Abort-restart ignores returns: restarts already re-provision a
        // full world.
        continue;
      }
      if (options.policy == RecoveryPolicy::kAbortRestart) {
        ++out.preemptions;
        t += plan.detection_timeout() + options.restart_seconds;
        const auto snapshot = store.newest_valid();
        const int iter_before = engine.iter();
        engine.restore(snapshot ? *snapshot->blob : genesis);
        ++out.restores;
        out.lost_iterations += iter_before - engine.iter();
        since_checkpoint = 0;
        // Absorb events inside the recovery window: no job was running for
        // them to kill.
        while (next_event < events.size() && events[next_event].time <= t) {
          ++next_event;
        }
      } else if (engine.worker_active(ev.rank)) {
        ++out.preemptions;
        engine.preempt_worker(ev.rank);
        t += plan.detection_timeout() + options.reschedule_seconds;
        // Record the shrunken world here, not just after a step: the
        // detection + reschedule cost can carry t past a scripted return,
        // in which case the smallest world never takes a step.  An empty
        // world is a stall, not a world size.
        if (engine.active_workers() > 0) {
          out.min_active_workers =
              std::min(out.min_active_workers, engine.active_workers());
        }
      }
    }

    if (options.policy == RecoveryPolicy::kElasticContinue &&
        engine.active_workers() == 0) {
      // Whole world gone: stall until the first scripted return, or give up.
      double stall = simnet::kNever;
      for (size_t i = next_event; i < events.size(); ++i) {
        if (events[i].recovery) {
          stall = events[i].time;
          break;
        }
      }
      if (stall == simnet::kNever) {
        out.completed = false;
        break;
      }
      t = std::max(t, stall);
      continue;
    }

    if (!engine.epoch_open()) engine.begin_epoch();
    double degrade = 1.0;
    for (int w = 0; w < engine.world(); ++w) {
      if (!engine.worker_active(w)) continue;
      degrade = std::max(degrade, plan.degrade_factor(w / gpus, t));
    }
    engine.step();
    t += options.compute_seconds_per_iter * degrade +
         engine.last_step_comm_seconds();
    out.min_active_workers =
        std::min(out.min_active_workers, engine.active_workers());
    if (engine.step_in_epoch() == engine.iters_per_epoch()) {
      engine.end_epoch();
    }
    ++since_checkpoint;
    if (since_checkpoint >= options.checkpoint_interval && !engine.done()) {
      commit_checkpoint();
      since_checkpoint = 0;
    }
  }

  out.convergence = engine.result();
  out.wall_seconds = t;
  out.checkpoint_fallbacks = store.fallbacks() - fallbacks_before;
  return out;
}

}  // namespace hitopk::train
