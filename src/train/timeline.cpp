#include "train/timeline.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "collectives/hitopkcomm.h"
#include "collectives/naive_allgather.h"
#include "collectives/ring.h"
#include "collectives/torus2d.h"
#include "collectives/tree_allreduce.h"
#include "core/check.h"
#include "models/calibration.h"
#include "models/model_zoo.h"
#include "models/perf_model.h"
#include "pto/pto.h"
#include "train/fusion.h"

namespace hitopk::train {

std::string algorithm_name(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kDenseTree: return "Dense-SGD";
    case Algorithm::kDense2dTorus: return "2DTAR-SGD";
    case Algorithm::kTopkNaiveAg: return "TopK-SGD";
    case Algorithm::kMstopkHitopk: return "MSTopK-SGD";
  }
  return "unknown";
}

TrainingSimulator::TrainingSimulator(simnet::Topology topology,
                                     TrainerOptions options)
    : topology_(std::move(topology)), options_(std::move(options)) {}

double TrainingSimulator::raw_io_seconds() {
  data::DataCacheConfig config;
  config.dataset = options_.model == "transformer"
                       ? data::DatasetSpec::wmt17()
                       : data::DatasetSpec::imagenet();
  config.nodes = topology_.nodes();
  config.use_memory_cache = options_.use_datacache;
  config.use_ssd_cache = options_.use_datacache;
  data::DataCache cache(config);

  // One node fetches gpus * local_batch samples per iteration; on an uneven
  // fleet the busiest node bounds the IO wait.
  const size_t node_batch = static_cast<size_t>(topology_.max_gpus_per_node()) *
                            static_cast<size_t>(options_.local_batch);
  std::vector<uint64_t> ids(node_batch);
  std::iota(ids.begin(), ids.end(), uint64_t{0});
  const double cold = cache.fetch_batch(ids, options_.resolution).seconds;
  if (!options_.use_datacache) return cold;
  // Steady state: the memory cache serves everything.
  return cache.fetch_batch(ids, options_.resolution).seconds;
}

IterationBreakdown TrainingSimulator::simulate_iteration() {
  return simulate_with_io(raw_io_seconds());
}

IterationBreakdown TrainingSimulator::simulate_with_io(
    double raw_io, double compute_multiplier) {
  const models::ModelSpec model = models::model_by_name(options_.model);
  const size_t params = model.total_params();
  double ffbp = models::PerfModel::ffbp_seconds(
      options_.model, options_.resolution, options_.local_batch);
  if (options_.straggler_cv > 0.0 && topology_.world_size() > 1) {
    // Synchronous SGD pays the slowest worker's compute time each
    // iteration: Gaussian order-statistic approximation of E[max of P].
    ffbp *= 1.0 + options_.straggler_cv *
                      std::sqrt(2.0 * std::log(static_cast<double>(
                                    topology_.world_size())));
  }
  // Bursty/correlated jitter (fault scenarios): the whole iteration waits
  // for the slowest pod, so its burst factor multiplies on top of the
  // steady-state order statistic.
  ffbp *= compute_multiplier;
  const double forward_end = ffbp * models::PerfModel::forward_fraction;
  const double bp_duration = ffbp - forward_end;

  const auto buckets =
      fuse_buckets(model.backprop_order_sizes(), options_.fusion_bytes, 4,
                   model.backprop_order_compute_weights());

  simnet::Cluster cluster(topology_);
  const coll::Group world = coll::world_group(topology_);
  const bool sparse = options_.algorithm == Algorithm::kTopkNaiveAg ||
                      options_.algorithm == Algorithm::kMstopkHitopk;

  double comm_done = 0.0;
  double compress_free = 0.0;  // per-rank compression stream (symmetric)
  for (const auto& bucket : buckets) {
    const double ready =
        options_.overlap_comm
            ? forward_end + bp_duration * bucket.ready_fraction
            : ffbp;
    double done = ready;
    switch (options_.algorithm) {
      case Algorithm::kDenseTree: {
        coll::TreeOptions tree;
        tree.wire = options_.dense_wire;
        done = coll::tree_allreduce(cluster, world, {}, bucket.elems, tree,
                                    ready);
        break;
      }
      case Algorithm::kDense2dTorus: {
        done = ready + coll::torus2d_allreduce(cluster, {}, bucket.elems,
                                               options_.dense_wire, ready)
                           .total;
        break;
      }
      case Algorithm::kTopkNaiveAg: {
        // Exact top-k shares the GPU compute stream (a TF op), so it cannot
        // start before backpropagation finishes — which is why Fig. 1 shows
        // the full 0.239 s exposed.
        const size_t k = std::max<size_t>(
            1, static_cast<size_t>(options_.density *
                                   static_cast<double>(bucket.elems)));
        const double start = std::max({ready, compress_free, ffbp});
        const double compressed =
            start + gpu_.exact_topk_seconds(bucket.elems);
        compress_free = compressed;
        const double accumulate = gpu_.scatter_add_seconds(
            static_cast<size_t>(topology_.world_size()) * k);
        done = compressed +
               coll::naive_sparse_allgather_time(
                   cluster, k,
                   coll::wire_elem_bytes(options_.sparse_value_wire),
                   accumulate, compressed)
                   .total;
        break;
      }
      case Algorithm::kMstopkHitopk: {
        coll::HiTopKOptions hi;
        hi.density = options_.density;
        hi.value_wire = options_.sparse_value_wire;
        hi.mstopk_samplings = options_.mstopk_samplings;
        hi.mstopk_histogram = options_.mstopk_histogram;
        hi.gpu = &gpu_;
        const auto breakdown =
            coll::hitopk_comm(cluster, {}, bucket.elems, hi, ready);
        done = ready + breakdown.total;
        break;
      }
    }
    comm_done = std::max(comm_done, done);
  }

  // Tail: LARS rates (serial or PTO) + the weight update.
  const double tail_start = std::max({ffbp, comm_done, compress_free});
  double lars_seconds;
  if (options_.use_pto && topology_.world_size() > 1) {
    simnet::Cluster pto_cluster(topology_);
    const double serial = gpu_.lars_seconds(model.num_tensors(), params);
    const double framework =
        options_.model == "transformer"
            ? models::Calibration::pto_framework_overhead_transformer
            : models::Calibration::pto_framework_overhead_resnet50;
    lars_seconds =
        pto::pto_timing(pto_cluster, model.num_tensors(), 4, serial, framework)
            .pto_seconds;
  } else {
    lars_seconds = gpu_.lars_seconds(model.num_tensors(), params);
  }
  const double update_seconds = gpu_.elementwise_seconds(params, 3);
  double overhead;
  if (sparse) {
    overhead = options_.sparse_framework_overhead;
  } else if (options_.algorithm == Algorithm::kDenseTree) {
    overhead = options_.dense_framework_overhead +
               options_.dense_per_tensor_overhead *
                   static_cast<double>(model.num_tensors());
  } else {
    overhead = options_.torus_framework_overhead;
  }
  const double pipeline_total =
      tail_start + lars_seconds + update_seconds + overhead;

  const double io = raw_io;
  const double total =
      options_.overlap_io ? std::max(io, pipeline_total) : io + pipeline_total;

  IterationBreakdown out;
  out.ffbp = ffbp;
  out.compression = std::max(0.0, compress_free - ffbp);
  out.communication =
      std::max(0.0, comm_done - std::max(ffbp, compress_free));
  out.lars = lars_seconds + update_seconds;
  out.overhead = overhead;
  out.io = total - pipeline_total;
  out.total = total;
  out.throughput = static_cast<double>(options_.local_batch) *
                   static_cast<double>(topology_.world_size()) / total;
  return out;
}

IterationBreakdown TrainingSimulator::simulate_single_gpu() {
  const models::ModelSpec model = models::model_by_name(options_.model);
  const double ffbp = models::PerfModel::ffbp_seconds(
      options_.model, options_.resolution, options_.local_batch);
  const double lars_seconds =
      gpu_.lars_seconds(model.num_tensors(), model.total_params());
  const double update_seconds =
      gpu_.elementwise_seconds(model.total_params(), 3);
  const double pipeline_total = ffbp + lars_seconds + update_seconds;

  // Single-GPU I/O: one GPU's batch, DataCache enabled (the baselines in
  // §5.5.2 are measured with healthy local input pipelines).
  data::DataCacheConfig config;
  config.dataset = options_.model == "transformer"
                       ? data::DatasetSpec::wmt17()
                       : data::DatasetSpec::imagenet();
  config.nodes = 1;
  data::DataCache cache(config);
  std::vector<uint64_t> ids(static_cast<size_t>(options_.local_batch));
  std::iota(ids.begin(), ids.end(), uint64_t{0});
  cache.fetch_batch(ids, options_.resolution);
  const double io = cache.fetch_batch(ids, options_.resolution).seconds;

  IterationBreakdown out;
  out.ffbp = ffbp;
  out.lars = lars_seconds + update_seconds;
  out.total = std::max(io, pipeline_total);
  out.io = out.total - pipeline_total;
  out.throughput = static_cast<double>(options_.local_batch) / out.total;
  return out;
}

double TrainingSimulator::scaling_efficiency() {
  const double cluster_throughput = simulate_iteration().throughput;
  const double single_throughput = simulate_single_gpu().throughput;
  return cluster_throughput /
         (static_cast<double>(topology_.world_size()) * single_throughput);
}

}  // namespace hitopk::train
