// Dense gradient quantizers from the compression literature the paper
// builds on (§6): QSGD (Alistarh et al. 2017) and 1-bit SignSGD with error
// feedback (Karimireddy et al. 2019).  Unlike top-k sparsifiers these keep
// every coordinate but shrink its representation, so they compose with
// All-Reduce-style aggregation; they serve as ablation baselines against
// sparsification.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/rng.h"

namespace hitopk::compress {

// QSGD: stochastic uniform quantization to `levels` magnitude levels.
//   q_i = ||x||_2 * sign(x_i) * xi_i,   xi_i in {0, 1/s, ..., s/s}
// with E[q] = x (unbiased).  Wire size: one FP32 norm + ceil(log2(2s+1))
// bits per coordinate.
class Qsgd {
 public:
  explicit Qsgd(int levels = 15, uint64_t seed = 42);

  // Quantizes in place (the decoded values replace x) and returns the wire
  // payload in bytes.
  size_t quantize(std::span<float> x);

  int levels() const { return levels_; }

  // Wire bytes for a d-element tensor at this level count.
  size_t payload_bytes(size_t d) const;

 private:
  int levels_;
  int bits_per_value_;
  Rng rng_;
};

// EF-SignSGD: transmit sign(x) scaled by mean(|x|); biased, so it requires
// error feedback (the caller keeps the residual).  Wire size: 1 bit per
// coordinate + one FP32 scale.
class SignCompressor {
 public:
  // Compresses in place; returns the wire payload in bytes.
  static size_t compress(std::span<float> x);

  static size_t payload_bytes(size_t d) { return d / 8 + 4; }
};

}  // namespace hitopk::compress
