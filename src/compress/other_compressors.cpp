#include "compress/other_compressors.h"

#include <algorithm>
#include <cmath>

namespace hitopk::compress {

SparseTensor RandomK::compress(std::span<const float> x, size_t k) {
  const size_t d = x.size();
  SparseTensor out;
  out.dense_size = d;
  k = std::min(k, d);
  if (k == 0) return out;

  // Floyd's algorithm: k distinct indices in O(k) expected time without
  // materializing a d-sized permutation.
  std::vector<uint32_t> chosen;
  chosen.reserve(k);
  std::vector<bool> used(d, false);
  for (size_t j = d - k; j < d; ++j) {
    const size_t t = static_cast<size_t>(rng_.uniform_index(j + 1));
    if (!used[t]) {
      used[t] = true;
      chosen.push_back(static_cast<uint32_t>(t));
    } else {
      used[j] = true;
      chosen.push_back(static_cast<uint32_t>(j));
    }
  }
  std::sort(chosen.begin(), chosen.end());
  out.indices = std::move(chosen);
  out.values.resize(k);
  for (size_t i = 0; i < k; ++i) out.values[i] = x[out.indices[i]];
  return out;
}

SparseTensor ThresholdK::compress(std::span<const float> x, size_t /*k*/) {
  SparseTensor out;
  out.dense_size = x.size();
  for (size_t i = 0; i < x.size(); ++i) {
    if (std::fabs(x[i]) >= threshold_) {
      out.indices.push_back(static_cast<uint32_t>(i));
      out.values.push_back(x[i]);
    }
  }
  return out;
}

}  // namespace hitopk::compress
