#include "compress/quantizers.h"

#include <cmath>

#include "core/check.h"
#include "core/tensor.h"

namespace hitopk::compress {

Qsgd::Qsgd(int levels, uint64_t seed) : levels_(levels), rng_(seed) {
  HITOPK_CHECK_GT(levels, 0);
  bits_per_value_ = 1;  // sign
  int distinct = 2 * levels + 1;
  while ((1 << bits_per_value_) < distinct) ++bits_per_value_;
}

size_t Qsgd::quantize(std::span<float> x) {
  const float norm = tensor_ops::l2_norm(
      std::span<const float>(x.data(), x.size()));
  if (norm == 0.0f) return payload_bytes(x.size());
  const double s = static_cast<double>(levels_);
  for (auto& v : x) {
    const double magnitude = std::fabs(v) / norm;  // in [0, 1]
    const double scaled = magnitude * s;
    double level = std::floor(scaled);
    // Stochastic rounding keeps the estimator unbiased.
    if (rng_.uniform() < scaled - level) level += 1.0;
    const float q = static_cast<float>(norm * level / s);
    v = v < 0.0f ? -q : q;
  }
  return payload_bytes(x.size());
}

size_t Qsgd::payload_bytes(size_t d) const {
  return (d * static_cast<size_t>(bits_per_value_) + 7) / 8 + 4;
}

size_t SignCompressor::compress(std::span<float> x) {
  double abs_sum = 0.0;
  for (float v : x) abs_sum += std::fabs(v);
  const float scale =
      x.empty() ? 0.0f
                : static_cast<float>(abs_sum / static_cast<double>(x.size()));
  for (auto& v : x) v = v < 0.0f ? -scale : scale;
  return payload_bytes(x.size());
}

}  // namespace hitopk::compress
