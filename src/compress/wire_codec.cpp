#include "compress/wire_codec.h"

#include <algorithm>
#include <cmath>

#include "core/half.h"

namespace hitopk::compress {

const char* wire_dtype_name(WireDtype dtype) {
  switch (dtype) {
    case WireDtype::kFp16: return "fp16";
    case WireDtype::kInt8: return "int8";
    case WireDtype::kFp32: default: return "fp32";
  }
}

float int8_wire_scale(std::span<const float> values) {
  float maxabs = 0.0f;
  for (float v : values) {
    const float a = std::fabs(v);
    // NaN compares false, so it never becomes the max; Inf is rejected below.
    if (std::isfinite(a) && a > maxabs) maxabs = a;
  }
  if (maxabs == 0.0f) return 0.0f;
  int e = 0;
  std::frexp(maxabs, &e);         // maxabs = m * 2^e, m in [0.5, 1)
  return std::ldexp(1.0f, e - 7);  // quantized magnitudes land in [64, 127]
}

namespace {

void int8_round_trip(std::span<float> values) {
  const float scale = int8_wire_scale(values);
  if (scale == 0.0f) return;  // all-zero / all-non-finite shard: pass through
  const float inv = 1.0f / scale;  // exact: scale is a power of two
  for (float& v : values) {
    if (!std::isfinite(v)) continue;  // Inf/NaN pass through unchanged
    // TF-style round-half-away-from-zero, saturating to the int8 range.
    long q = std::lround(v * inv);
    q = std::clamp(q, -127l, 127l);
    v = static_cast<float>(q) * scale;
  }
}

}  // namespace

void wire_round_trip(WireDtype dtype, std::span<float> values) {
  switch (dtype) {
    case WireDtype::kFp32: return;
    case WireDtype::kFp16: fp16_round_trip(values); return;
    case WireDtype::kInt8: int8_round_trip(values); return;
  }
}

}  // namespace hitopk::compress
