// MSTopK: the paper's approximate top-k operator (Algorithm 1).
//
// Instead of sorting, MSTopK binary-searches a magnitude threshold in the
// interval [mean(|x|), max(|x|)].  Each of the N samplings is one coalesced
// counting pass (count |x(i)| >= thres), which is why the operator is fast
// on many-core hardware.  The search tracks two brackets:
//   thres1 — the tightest threshold seen selecting <= k elements (k1 of them)
//   thres2 — the loosest threshold seen selecting  > k elements (k2 of them)
// After N iterations the result is all k1 elements above thres1 plus a
// random contiguous run of (k - k1) elements from the band
// [thres2, thres1), giving exactly k selected elements (lines 25-29).
#pragma once

#include "compress/compressor.h"
#include "core/rng.h"

namespace hitopk::compress {

struct MsTopKStats {
  // Thresholds bracketing the exact k-th magnitude after the search.
  float thres1 = 0.0f;
  float thres2 = 0.0f;
  // Element counts at those thresholds.
  size_t k1 = 0;
  size_t k2 = 0;
  // Number of counting passes actually executed.
  int samplings = 0;
};

class MsTopK : public Compressor {
 public:
  // n_samplings is the paper's N; their experiments use N = 30 (Fig. 6).
  explicit MsTopK(int n_samplings = 30, uint64_t seed = 42);

  std::string name() const override { return "mstopk"; }

  SparseTensor compress(std::span<const float> x, size_t k) override;

  // Search diagnostics for the most recent compress() call (used by the
  // sampling-count ablation).
  const MsTopKStats& last_stats() const { return stats_; }

  int n_samplings() const { return n_samplings_; }

 private:
  int n_samplings_;
  Rng rng_;
  MsTopKStats stats_;
};

}  // namespace hitopk::compress
