// MSTopK: the paper's approximate top-k operator (Algorithm 1).
//
// Instead of sorting, MSTopK brackets a magnitude threshold inside the
// interval [mean(|x|), max(|x|)].  The search tracks two thresholds:
//   thres1 — the tightest threshold seen selecting <= k elements (k1 of them)
//   thres2 — the loosest threshold seen selecting  > k elements (k2 of them)
// The result is all k1 elements above thres1 plus a random contiguous run of
// (k - k1) elements from the band [thres2, thres1), giving exactly k
// selected elements (lines 25-29).
//
// Two implementations of the bracket search:
//   kHistogram (default) — one counting pass builds a 512-bucket magnitude
//       histogram over [mean, max]; suffix sums give the element count above
//       every bucket boundary at once, so the brackets fall out of a single
//       scan of the histogram.  Three passes over the data total (statistics,
//       histogram, gather), independent of N.
//   kMultiPass — the paper's literal binary search: each of the N samplings
//       is one counting pass (count |x(i)| >= thres).  O(N*d); kept as the
//       validation reference for the histogram variant and for the
//       sampling-count ablation.
#pragma once

#include "compress/compressor.h"
#include "core/rng.h"

namespace hitopk::compress {

enum class MsTopKMode {
  kHistogram,  // single-pass histogram bracket search (fast path)
  kMultiPass,  // Alg. 1 literal binary search (validation reference)
};

struct MsTopKStats {
  // Thresholds bracketing the exact k-th magnitude after the search.
  float thres1 = 0.0f;
  float thres2 = 0.0f;
  // Element counts at those thresholds.
  size_t k1 = 0;
  size_t k2 = 0;
  // Number of counting passes actually executed (1 for the histogram mode).
  int samplings = 0;
  // Histogram buckets used (0 in multi-pass mode).
  int buckets = 0;
};

class MsTopK : public Compressor {
 public:
  // n_samplings is the paper's N; their experiments use N = 30 (Fig. 6).
  // Only the multi-pass mode consumes it.
  explicit MsTopK(int n_samplings = 30, uint64_t seed = 42,
                  MsTopKMode mode = MsTopKMode::kHistogram);

  std::string name() const override {
    return mode_ == MsTopKMode::kHistogram ? "mstopk" : "mstopk_legacy";
  }

  SparseTensor compress(std::span<const float> x, size_t k) override;

  // Search diagnostics for the most recent compress() call (used by the
  // sampling-count ablation and the histogram-vs-legacy property tests).
  const MsTopKStats& last_stats() const { return stats_; }

  int n_samplings() const { return n_samplings_; }
  MsTopKMode mode() const { return mode_; }

 private:
  // Bracket searches: fill stats_.{thres1,thres2,k1,k2,samplings,buckets}.
  void histogram_brackets(std::span<const float> x, size_t k, float abs_mean,
                          float abs_max);
  void multi_pass_brackets(std::span<const float> x, size_t k, float abs_mean,
                           float abs_max);

  // Alg. 1 lines 25-29: emit the certain set plus a random band run.
  SparseTensor gather_selection(std::span<const float> x, size_t k);

  int n_samplings_;
  Rng rng_;
  MsTopKMode mode_;
  MsTopKStats stats_;
};

}  // namespace hitopk::compress
