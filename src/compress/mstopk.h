// MSTopK: the paper's approximate top-k operator (Algorithm 1).
//
// Instead of sorting, MSTopK brackets a magnitude threshold inside the
// interval [mean(|x|), max(|x|)].  The search tracks two thresholds:
//   thres1 — the tightest threshold seen selecting <= k elements (k1 of them)
//   thres2 — the loosest threshold seen selecting  > k elements (k2 of them)
// The result is all k1 elements above thres1 plus a random contiguous run of
// (k - k1) elements from the band [thres2, thres1), giving exactly k
// selected elements (lines 25-29).
//
// Three implementations of the bracket search:
//   kHistogram (default) — two counting passes over integer magnitude-bit
//       buckets (threshold_select::bracket_kth_magnitude): a half-octave
//       pass locates the boundary bucket, an exact 512-way mantissa-bit
//       refinement brackets the k-th magnitude to 2^13 ulps.  No statistics
//       pass and no verification recount (bit-pattern boundaries make the
//       counts exact by construction): two counting passes plus the gather,
//       the same pass structure as exact_topk.
//   kLinear — the previous fast path, kept flag-selectable: a separate
//       mean/max statistics pass, one 512-bucket linear histogram over
//       [mean, max], and an exact verification recount (float-arithmetic
//       bucket boundaries can misplace elements by one bucket).
//   kMultiPass — the paper's literal binary search: each of the N samplings
//       is one counting pass (count |x(i)| >= thres).  O(N*d); kept as the
//       validation reference and for the sampling-count ablation.
#pragma once

#include "compress/compressor.h"
#include "core/rng.h"

namespace hitopk::compress {

enum class MsTopKMode {
  kHistogram,  // magnitude-bit bracket search (fast path, no stats pass)
  kLinear,     // linear [mean, max] histogram (previous fast path)
  kMultiPass,  // Alg. 1 literal binary search (validation reference)
};

struct MsTopKStats {
  // Thresholds bracketing the exact k-th magnitude after the search.
  float thres1 = 0.0f;
  float thres2 = 0.0f;
  // Element counts at those thresholds.
  size_t k1 = 0;
  size_t k2 = 0;
  // Number of counting passes actually executed (2 for the bit-bucket
  // mode: coarse + refinement; 1 for the linear histogram).
  int samplings = 0;
  // Histogram buckets used per pass (0 in multi-pass mode).
  int buckets = 0;
};

class MsTopK : public Compressor {
 public:
  // n_samplings is the paper's N; their experiments use N = 30 (Fig. 6).
  // Only the multi-pass mode consumes it.
  explicit MsTopK(int n_samplings = 30, uint64_t seed = 42,
                  MsTopKMode mode = MsTopKMode::kHistogram);

  std::string name() const override {
    switch (mode_) {
      case MsTopKMode::kHistogram: return "mstopk";
      case MsTopKMode::kLinear: return "mstopk_linear";
      case MsTopKMode::kMultiPass: break;
    }
    return "mstopk_legacy";
  }

  SparseTensor compress(std::span<const float> x, size_t k) override;

  // Search diagnostics for the most recent compress() call (used by the
  // sampling-count ablation and the histogram-vs-legacy property tests).
  const MsTopKStats& last_stats() const { return stats_; }

  int n_samplings() const { return n_samplings_; }
  MsTopKMode mode() const { return mode_; }

 private:
  // Fast path: bit-bucket bracket search and selection in two data reads
  // (threshold_select::bracket_kth_magnitude does the search and hands back
  // the certain/band index sets; this draws the random band run).
  SparseTensor bit_select(std::span<const float> x, size_t k);

  // Bracket searches: fill stats_.{thres1,thres2,k1,k2,samplings,buckets}.
  void histogram_brackets(std::span<const float> x, size_t k, float abs_mean,
                          float abs_max);
  void multi_pass_brackets(std::span<const float> x, size_t k, float abs_mean,
                           float abs_max);

  // Alg. 1 lines 25-29: emit the certain set plus a random band run.
  SparseTensor gather_selection(std::span<const float> x, size_t k);

  int n_samplings_;
  Rng rng_;
  MsTopKMode mode_;
  MsTopKStats stats_;
};

}  // namespace hitopk::compress
