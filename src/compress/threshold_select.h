// Shared magnitude-histogram threshold selection.
//
// Every top-k flavour in this library ultimately needs the same primitive:
// "where does the k-th largest |x(i)| sit?".  The generic answer
// (std::nth_element over d elements) is a cache-hostile partial sort that
// dominated the TopK-SGD iteration; this module generalises the 512-bucket
// magnitude histogram that already carried MSTopK's bracket search into a
// shared facility with two bucket geometries over one blocked, parallel
// counting core:
//
//   - magnitude_histogram(): linear buckets over [lo, lo + 512*width) — the
//     geometry MSTopK's bracket search needs (thresholds are arithmetic
//     combinations of mean/max, so the buckets must be evenly spaced).
//   - select_topk() / topk_threshold(): exact top-k selection and k-th
//     magnitude via *log-spaced* buckets read straight off the magnitude
//     bits ((bits & 0x7FFFFFFF) >> 22: exponent plus top mantissa bit).
//     IEEE-754 magnitude bits order like magnitudes, so the map is monotone
//     and needs no statistics pass, no width arithmetic, and no degenerate-
//     range fallbacks: one counting pass, a suffix scan to the bucket
//     holding the k-th magnitude, then an exact repair pass (nth_element
//     over just that bucket's candidates, on the same packed magnitude/index
//     keys the reference uses) resolves the boundary.  Elements in higher
//     buckets have strictly larger magnitudes than every boundary-bucket
//     element, so the selected set — indices AND values — is bit-identical
//     to the nth_element reference for every input bit pattern.
//
// TopKSelect::kNthElement keeps the reference path callable directly (the
// validation twin, like MsTopKMode::kMultiPass for MSTopK);
// tests/threshold_select_test.cpp pins the two paths bit-identical across
// adversarial distributions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "compress/sparse_tensor.h"

namespace hitopk::compress {

// Selection algorithm for exact top-k (exact_topk / exact_topk_threshold).
enum class TopKSelect {
  kHistogram,   // histogram boundary search + exact repair (fast path)
  kNthElement,  // packed-key std::nth_element (validation reference)
};

// Bucket count shared by every histogram user (MSTopK brackets + exact
// selection): 512 buckets bracket a threshold as tightly as 9 binary-search
// counting passes (2^9 = 512) while reading the data once.
inline constexpr int kThresholdBuckets = 512;

// Below this size the histogram's fixed two-pass cost loses to a direct
// nth_element; both paths return bit-identical results, so the cutoff is
// purely a performance heuristic.
inline constexpr size_t kHistogramMinSize = 2048;

// One linear-bucket counting pass over x: counts[b + 1] accumulates the
// elements whose clamped bucket index trunc((|x(i)| - lo) * inv_width) is b,
// for b in [-1, kThresholdBuckets - 1] (slot 0 holds the below-lo count,
// ties at the top land in the last bucket via the clamp).  counts must have
// kThresholdBuckets + 1 slots; existing contents are accumulated into, so
// zero it first.  Blocked with compile-time trip counts so the index
// arithmetic vectorizes under GCC12 -O2, and partitioned across the
// parallel_for pool for large x — bucket counts are integers, so the merged
// histogram is identical regardless of partitioning.
void magnitude_histogram(std::span<const float> x, float lo, float inv_width,
                         std::span<size_t> counts);

// Exact magnitude brackets around the k-th largest |x(i)| in two blocked
// data reads — the machinery MSTopK's bracket search runs on:
//
//   read 1 — the log-spaced magnitude-bit histogram (bits >> 22, as in
//     select_topk) locates the half-octave bucket holding the k-th
//     magnitude;
//   read 2 — a select_topk-style gather: indices above the bucket are
//     emitted directly, the bucket's occupants become candidates carrying
//     their magnitude bits, and a 512-way sub-histogram of those bits
//     (mantissa bits 13..21, O(bucket) work — no third read) refines the
//     bracket to 2^13 ulps of the k-th magnitude, tighter than the legacy
//     (max-mean)/512 linear bucket for anything Gaussian-shaped.
//
// Because every boundary is an exact float bit pattern (not float
// arithmetic on mean/max), the counts are exact by construction: no
// statistics pass and no verification recount — the same read structure as
// exact selection.  Conventions match MsTopKStats: thres1 is the tightest
// boundary selecting k1 <= k elements (0 when no representable boundary
// does — ties at the top of the float range); thres2 the loosest boundary
// selecting k2 > k (0 when the bracket reaches the bottom of the float
// range, or when thres1 already selects exactly k and no band is needed).
//
// When `certain` / `band` are non-null they are overwritten with the
// selection sets of the brackets: `certain` holds the k1 indices with
// |x(i)| >= thres1 (every one belongs to the true top-k), `band` the
// k2 - k1 indices with thres2 <= |x(i)| < thres1 in ascending index order
// (what MSTopK draws its random run from).  With k == 0 or k >= x.size()
// there is no bracket; both sets come back empty.  Inputs containing any
// non-finite magnitude (inf or NaN) set finite = false and return no
// bracket either — thresholds cannot discriminate above an infinity, and
// the legacy searches' mean/max statistics are equally poisoned there;
// callers fall back (MSTopK keeps its legacy first-k fallback).
struct MagnitudeBrackets {
  float thres1 = 0.0f;
  float thres2 = 0.0f;
  size_t k1 = 0;
  size_t k2 = 0;
  bool finite = true;
};

MagnitudeBrackets bracket_kth_magnitude(std::span<const float> x, size_t k,
                                        std::vector<uint32_t>* certain = nullptr,
                                        std::vector<uint32_t>* band = nullptr);

// Exactly min(k, x.size()) elements with the largest |x(i)|, ties broken by
// lower index; indices sorted ascending, values gathered from x.  Both
// algorithms return bit-identical results for every input bit pattern.
SparseTensor select_topk(std::span<const float> x, size_t k, TopKSelect algo);

// The k-th largest |x(i)| (0 when k == 0 or x is empty).  Both algorithms
// return the identical float.
float topk_threshold(std::span<const float> x, size_t k, TopKSelect algo);

}  // namespace hitopk::compress
