#include "compress/exact_topk.h"

namespace hitopk::compress {

SparseTensor exact_topk(std::span<const float> x, size_t k, TopKSelect algo) {
  return select_topk(x, k, algo);
}

float exact_topk_threshold(std::span<const float> x, size_t k,
                           TopKSelect algo) {
  return topk_threshold(x, k, algo);
}

SparseTensor ExactTopK::compress(std::span<const float> x, size_t k) {
  return select_topk(x, k, algo_);
}

}  // namespace hitopk::compress
