#include "compress/exact_topk.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "core/check.h"
#include "core/workspace.h"

namespace hitopk::compress {

SparseTensor exact_topk(std::span<const float> x, size_t k) {
  SparseTensor out;
  out.dense_size = x.size();
  k = std::min(k, x.size());
  if (k == 0) return out;

  // Selection runs on packed 64-bit keys — magnitude bits in the high word
  // (IEEE-754 non-negative floats order like their bit patterns), inverted
  // index in the low word — so nth_element compares flat integers instead
  // of chasing a permutation through x with two fabs per comparison.  The
  // ordering is identical to the old comparator: larger magnitude first,
  // ties broken by lower index.
  static_assert(sizeof(size_t) == 8, "packed top-k keys need 64 bits");
  Scratch<size_t> keys_buf(x.size());
  size_t* keys = keys_buf.data();
  for (size_t i = 0; i < x.size(); ++i) {
    const uint32_t mag = std::bit_cast<uint32_t>(x[i]) & 0x7FFFFFFFu;
    keys[i] = (static_cast<size_t>(mag) << 32) |
              (~static_cast<uint32_t>(i));
  }
  std::nth_element(keys, keys + (k - 1), keys + x.size(),
                   std::greater<size_t>());
  out.indices.resize(k);
  for (size_t i = 0; i < k; ++i) {
    out.indices[i] = ~static_cast<uint32_t>(keys[i]);
  }
  std::sort(out.indices.begin(), out.indices.end());
  out.values.resize(k);
  for (size_t i = 0; i < k; ++i) out.values[i] = x[out.indices[i]];
  return out;
}

float exact_topk_threshold(std::span<const float> x, size_t k) {
  if (k == 0 || x.empty()) return 0.0f;
  k = std::min(k, x.size());
  Scratch<float> mags(x.size());
  for (size_t i = 0; i < x.size(); ++i) mags[i] = std::fabs(x[i]);
  std::nth_element(mags.vec().begin(),
                   mags.vec().begin() + static_cast<long>(k - 1),
                   mags.vec().end(), std::greater<float>());
  return mags[k - 1];
}

SparseTensor ExactTopK::compress(std::span<const float> x, size_t k) {
  return exact_topk(x, k);
}

}  // namespace hitopk::compress
