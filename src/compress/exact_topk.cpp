#include "compress/exact_topk.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/check.h"
#include "core/workspace.h"

namespace hitopk::compress {

SparseTensor exact_topk(std::span<const float> x, size_t k) {
  SparseTensor out;
  out.dense_size = x.size();
  k = std::min(k, x.size());
  if (k == 0) return out;

  // The d-element permutation is pure scratch: only the first k survive.
  Scratch<uint32_t> order_buf(x.size());
  std::vector<uint32_t>& order = order_buf.vec();
  std::iota(order.begin(), order.end(), uint32_t{0});
  // Larger magnitude first; ties broken by lower index for determinism.
  auto by_magnitude = [&](uint32_t a, uint32_t b) {
    const float ma = std::fabs(x[a]);
    const float mb = std::fabs(x[b]);
    if (ma != mb) return ma > mb;
    return a < b;
  };
  std::nth_element(order.begin(), order.begin() + static_cast<long>(k - 1),
                   order.end(), by_magnitude);
  std::sort(order.begin(), order.begin() + static_cast<long>(k));

  out.indices.assign(order.begin(), order.begin() + static_cast<long>(k));
  out.values.resize(k);
  for (size_t i = 0; i < k; ++i) out.values[i] = x[out.indices[i]];
  return out;
}

float exact_topk_threshold(std::span<const float> x, size_t k) {
  if (k == 0 || x.empty()) return 0.0f;
  k = std::min(k, x.size());
  Scratch<float> mags(x.size());
  for (size_t i = 0; i < x.size(); ++i) mags[i] = std::fabs(x[i]);
  std::nth_element(mags.vec().begin(),
                   mags.vec().begin() + static_cast<long>(k - 1),
                   mags.vec().end(), std::greater<float>());
  return mags[k - 1];
}

SparseTensor ExactTopK::compress(std::span<const float> x, size_t k) {
  return exact_topk(x, k);
}

}  // namespace hitopk::compress
