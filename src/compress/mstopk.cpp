#include "compress/mstopk.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace hitopk::compress {

MsTopK::MsTopK(int n_samplings, uint64_t seed)
    : n_samplings_(n_samplings), rng_(seed) {
  HITOPK_CHECK_GT(n_samplings, 0);
}

SparseTensor MsTopK::compress(std::span<const float> x, size_t k) {
  const size_t d = x.size();
  SparseTensor out;
  out.dense_size = d;
  stats_ = MsTopKStats{};
  if (k == 0 || d == 0) return out;
  if (k >= d) {
    out.indices.resize(d);
    out.values.resize(d);
    for (size_t i = 0; i < d; ++i) {
      out.indices[i] = static_cast<uint32_t>(i);
      out.values[i] = x[i];
    }
    return out;
  }

  // Alg. 1 lines 1-3: magnitude statistics.  One coalesced pass each on the
  // device; here a single fused pass.
  double abs_sum = 0.0;
  float abs_max = 0.0f;
  for (float v : x) {
    const float m = std::fabs(v);
    abs_sum += m;
    abs_max = std::max(abs_max, m);
  }
  const float abs_mean = static_cast<float>(abs_sum / static_cast<double>(d));

  // Degenerate input (all zeros or all equal magnitude): no threshold can
  // discriminate, fall back to the first k indices.
  if (!(abs_max > abs_mean)) {
    out.indices.resize(k);
    out.values.resize(k);
    for (size_t i = 0; i < k; ++i) {
      out.indices[i] = static_cast<uint32_t>(i);
      out.values[i] = x[i];
    }
    return out;
  }

  // Alg. 1 lines 4-24: binary search the threshold ratio in [0, 1], where
  // thres = mean + ratio * (max - mean).  thres1/k1 bracket from below
  // (nnz <= k), thres2/k2 from above (nnz > k).
  double lo = 0.0, hi = 1.0;
  size_t k1 = 0;
  size_t k2 = d;
  float thres1 = 0.0f;
  float thres2 = 0.0f;
  for (int i = 0; i < n_samplings_; ++i) {
    const double ratio = lo + (hi - lo) / 2.0;
    const float thres =
        abs_mean + static_cast<float>(ratio) * (abs_max - abs_mean);
    size_t nnz = 0;
    for (float v : x) {
      if (std::fabs(v) >= thres) ++nnz;
    }
    ++stats_.samplings;
    if (nnz <= k) {
      hi = ratio;
      if (nnz > k1 || thres1 == 0.0f) {
        k1 = nnz;
        thres1 = thres;
      }
    } else {
      lo = ratio;
      if (nnz < k2) {
        k2 = nnz;
        thres2 = thres;
      }
    }
    if (nnz == k) break;  // Exact bracket found early.
  }
  stats_.thres1 = thres1;
  stats_.thres2 = thres2;
  stats_.k1 = k1;
  stats_.k2 = k2;

  // Alg. 1 lines 25-26: gather the certain set (>= thres1) and the band
  // [thres2, thres1).  thres1 == 0 means no threshold ever selected <= k
  // elements (heavy ties at the max); then the certain set is empty and the
  // band is everything >= thres2.
  std::vector<uint32_t> certain;
  std::vector<uint32_t> band;
  certain.reserve(k1);
  const bool have_upper = thres1 > 0.0f;
  for (size_t i = 0; i < d; ++i) {
    const float m = std::fabs(x[i]);
    if (have_upper && m >= thres1) {
      certain.push_back(static_cast<uint32_t>(i));
    } else if (m >= thres2) {
      band.push_back(static_cast<uint32_t>(i));
    }
  }
  if (certain.size() > k) certain.resize(k);  // Tie overflow guard.

  // Alg. 1 lines 27-28: random contiguous run of (k - k1) band elements.
  const size_t need = k - certain.size();
  std::vector<uint32_t> chosen = std::move(certain);
  if (need > 0 && !band.empty()) {
    const size_t take = std::min(need, band.size());
    const size_t max_start = band.size() - take;
    const size_t start = static_cast<size_t>(rng_.uniform_index(max_start + 1));
    chosen.insert(chosen.end(), band.begin() + static_cast<long>(start),
                  band.begin() + static_cast<long>(start + take));
  }
  // Band exhausted (possible only with extreme ties): top up from the lowest
  // unselected indices so the contract "exactly k elements" holds.
  if (chosen.size() < k) {
    std::vector<bool> used(d, false);
    for (uint32_t idx : chosen) used[idx] = true;
    for (size_t i = 0; i < d && chosen.size() < k; ++i) {
      if (!used[i]) chosen.push_back(static_cast<uint32_t>(i));
    }
  }

  std::sort(chosen.begin(), chosen.end());
  out.indices = std::move(chosen);
  out.values.resize(out.indices.size());
  for (size_t i = 0; i < out.indices.size(); ++i) {
    out.values[i] = x[out.indices[i]];
  }
  return out;
}

}  // namespace hitopk::compress
