#include "compress/mstopk.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "compress/threshold_select.h"
#include "core/check.h"
#include "core/workspace.h"

namespace hitopk::compress {
namespace {

// Degenerate fallback shared by all modes: the first min(k, d) indices,
// values gathered from x.  Used when no threshold can discriminate —
// k >= d, all-equal magnitudes (mean == max), or non-finite inputs.  The
// modes must keep agreeing on it (pinned by
// MsTopKHistogram.NonFiniteInputsFallBackLikeTheLegacyPaths).
SparseTensor first_k_fallback(std::span<const float> x, size_t k) {
  SparseTensor out;
  out.dense_size = x.size();
  k = std::min(k, x.size());
  out.indices.resize(k);
  out.values.resize(k);
  for (size_t i = 0; i < k; ++i) {
    out.indices[i] = static_cast<uint32_t>(i);
    out.values[i] = x[i];
  }
  return out;
}

}  // namespace

MsTopK::MsTopK(int n_samplings, uint64_t seed, MsTopKMode mode)
    : n_samplings_(n_samplings), rng_(seed), mode_(mode) {
  HITOPK_CHECK_GT(n_samplings, 0);
}

SparseTensor MsTopK::compress(std::span<const float> x, size_t k) {
  const size_t d = x.size();
  SparseTensor out;
  out.dense_size = d;
  stats_ = MsTopKStats{};
  if (k == 0 || d == 0) return out;
  if (k >= d) return first_k_fallback(x, k);

  // The bit-bucket search needs no statistics: its boundaries are float
  // bit patterns, and degenerate inputs (all-equal magnitudes) simply put
  // every element in one sub-bucket, which the band top-up handles.
  if (mode_ == MsTopKMode::kHistogram) {
    return bit_select(x, k);
  }

  // Alg. 1 lines 1-3: magnitude statistics, one fused pass (the linear and
  // multi-pass geometries are arithmetic combinations of mean/max).
  const tensor_ops::AbsStats abs = tensor_ops::abs_stats(x);
  const float abs_max = abs.abs_max;
  const float abs_mean =
      static_cast<float>(abs.abs_sum / static_cast<double>(d));

  // Degenerate input (all zeros or all equal magnitude): no threshold can
  // discriminate, fall back to the first k indices.
  if (!(abs_max > abs_mean)) return first_k_fallback(x, k);

  if (mode_ == MsTopKMode::kLinear) {
    histogram_brackets(x, k, abs_mean, abs_max);
  } else {
    multi_pass_brackets(x, k, abs_mean, abs_max);
  }
  return gather_selection(x, k);
}

SparseTensor MsTopK::bit_select(std::span<const float> x, size_t k) {
  Scratch<uint32_t> certain_buf(0);
  Scratch<uint32_t> band_buf(0);
  std::vector<uint32_t>& certain = certain_buf.vec();
  std::vector<uint32_t>& band = band_buf.vec();
  const MagnitudeBrackets brackets =
      bracket_kth_magnitude(x, k, &certain, &band);
  if (!brackets.finite) {
    // Non-finite magnitudes poison any threshold comparison: keep the
    // legacy degenerate fallback, like the statistics modes whose
    // mean/max a NaN or inf poisons.
    stats_.samplings = 1;
    stats_.buckets = kThresholdBuckets;
    return first_k_fallback(x, k);
  }
  stats_.thres1 = brackets.thres1;
  stats_.thres2 = brackets.thres2;
  stats_.k1 = brackets.k1;
  stats_.k2 = brackets.k2;
  stats_.samplings = 2;  // coarse counting read + gather read
  stats_.buckets = kThresholdBuckets;

  // Alg. 1 lines 25-29 on the pre-partitioned sets: every certain index,
  // plus a random contiguous run of the remainder from the band.  The
  // exact bracket counts guarantee band coverage (k2 - k1 >= k - k1), so
  // the legacy top-up is unreachable here.
  std::vector<uint32_t> chosen;
  chosen.reserve(k);
  chosen.assign(certain.begin(), certain.end());
  if (chosen.size() > k) chosen.resize(k);
  const size_t need = k - chosen.size();
  if (need > 0 && !band.empty()) {
    const size_t take = std::min(need, band.size());
    const size_t max_start = band.size() - take;
    const size_t start = static_cast<size_t>(rng_.uniform_index(max_start + 1));
    chosen.insert(chosen.end(), band.begin() + static_cast<long>(start),
                  band.begin() + static_cast<long>(start + take));
  }
  HITOPK_CHECK_EQ(chosen.size(), k);

  std::sort(chosen.begin(), chosen.end());
  SparseTensor out;
  out.dense_size = x.size();
  out.indices = std::move(chosen);
  out.values.resize(out.indices.size());
  for (size_t i = 0; i < out.indices.size(); ++i) {
    out.values[i] = x[out.indices[i]];
  }
  return out;
}

void MsTopK::histogram_brackets(std::span<const float> x, size_t k,
                                float abs_mean, float abs_max) {
  const int nb = kThresholdBuckets;
  const float width =
      (abs_max - abs_mean) / static_cast<float>(nb);
  if (!(width >= std::numeric_limits<float>::min())) {
    // [mean, max] narrower than one normal-float bucket: a denormal width
    // would make inv_width infinite and 0 * inf = NaN bucket indices, so
    // treat the collapsed interval as a single boundary at the mean.
    // Everything >= mean forms the band; the gather's top-up handles the
    // rest.
    stats_.thres1 = 0.0f;
    stats_.thres2 = abs_mean;
    stats_.k1 = 0;
    stats_.k2 = tensor_ops::count_abs_ge(x, abs_mean);
    stats_.samplings = 1;
    stats_.buckets = nb;
    return;
  }
  const float inv_width = 1.0f / width;
  // boundary(b) for integer b: below-mean magnitudes map to the virtual
  // index -1 (bucket 0 of the shifted histogram), b == nb means "no upper
  // boundary" (ties at the max), and b == -1 means "no lower boundary".
  auto boundary = [&](int b) {
    return abs_mean + width * static_cast<float>(b);
  };

  // The one counting pass runs on the shared histogram builder
  // (threshold_select.h): blocked, vectorizable, and partitioned across the
  // thread pool for large shards.  Multiplication rounding can misplace an
  // element whose magnitude sits within a few ulps of a boundary by one
  // bucket, which is repaired by the exact verification pass below.
  Scratch<size_t> counts(static_cast<size_t>(nb) + 1, /*zeroed=*/true);
  magnitude_histogram(x, abs_mean, inv_width, counts.span());
  stats_.samplings = 1;
  stats_.buckets = nb;

  // Suffix scan: suffix(b) = approximate count of |x| >= boundary(b)
  // (histogram slot b+1 and up).  The brackets are the two adjacent
  // boundaries whose counts straddle k — what the multi-pass binary search
  // converges to, read off in one scan.
  size_t suffix = 0;
  int b2 = -1;  // loosest boundary with count > k
  for (int b = nb - 1; b >= 0; --b) {
    const size_t next = suffix + counts[static_cast<size_t>(b + 1)];
    if (next > k) {
      b2 = b;
      break;
    }
    suffix = next;
  }
  int b1 = b2 + 1;

  // Exact verification: one fused counting pass computes the true element
  // counts at both bracket boundaries (the |x| >= thres comparison every
  // later consumer uses).  If boundary rounding put the approximate count on
  // the wrong side of k, nudge the bracket one bucket and recount — in
  // practice this loop runs exactly once.
  for (;;) {
    const float th1 = b1 <= nb - 1 ? boundary(b1) : 0.0f;
    const float th2 = b2 >= 0 ? boundary(b2) : 0.0f;
    size_t c1 = 0, c2 = 0;
    for (float v : x) {
      const float m = std::fabs(v);
      c1 += m >= th1 ? 1 : 0;
      c2 += m >= th2 ? 1 : 0;
    }
    if (b1 <= nb - 1 && c1 > k) {
      ++b1;
      continue;
    }
    if (b2 >= 0 && c2 <= k) {
      --b2;
      continue;
    }
    // thres1 == 0 encodes "no threshold selects <= k" (heavy ties at the
    // max, the legacy search's convention); thres2 == 0 encodes "even the
    // mean selects <= k", making the band everything below thres1.
    stats_.thres1 = b1 <= nb - 1 ? th1 : 0.0f;
    stats_.thres2 = b2 >= 0 ? th2 : 0.0f;
    stats_.k1 = b1 <= nb - 1 ? c1 : 0;
    stats_.k2 = c2;
    return;
  }
}

void MsTopK::multi_pass_brackets(std::span<const float> x, size_t k,
                                 float abs_mean, float abs_max) {
  // Alg. 1 lines 4-24: binary search the threshold ratio in [0, 1], where
  // thres = mean + ratio * (max - mean).  thres1/k1 bracket from below
  // (nnz <= k), thres2/k2 from above (nnz > k).
  double lo = 0.0, hi = 1.0;
  size_t k1 = 0;
  size_t k2 = x.size();
  float thres1 = 0.0f;
  float thres2 = 0.0f;
  for (int i = 0; i < n_samplings_; ++i) {
    const double ratio = lo + (hi - lo) / 2.0;
    const float thres =
        abs_mean + static_cast<float>(ratio) * (abs_max - abs_mean);
    const size_t nnz = tensor_ops::count_abs_ge(x, thres);
    ++stats_.samplings;
    if (nnz <= k) {
      hi = ratio;
      if (nnz > k1 || thres1 == 0.0f) {
        k1 = nnz;
        thres1 = thres;
      }
    } else {
      lo = ratio;
      if (nnz < k2) {
        k2 = nnz;
        thres2 = thres;
      }
    }
    if (nnz == k) break;  // Exact bracket found early.
  }
  stats_.thres1 = thres1;
  stats_.thres2 = thres2;
  stats_.k1 = k1;
  stats_.k2 = k2;
}

SparseTensor MsTopK::gather_selection(std::span<const float> x, size_t k) {
  const size_t d = x.size();
  const float thres1 = stats_.thres1;
  const float thres2 = stats_.thres2;

  // Alg. 1 lines 25-26: gather the certain set (>= thres1) and the band
  // [thres2, thres1).  thres1 == 0 means no threshold ever selected <= k
  // elements (heavy ties at the max); then the certain set is empty and the
  // band is everything >= thres2.
  Scratch<uint32_t> certain_buf(0);
  Scratch<uint32_t> band_buf(0);
  std::vector<uint32_t>& certain = certain_buf.vec();
  std::vector<uint32_t>& band = band_buf.vec();
  certain.reserve(stats_.k1);
  const bool have_upper = thres1 > 0.0f;
  for (size_t i = 0; i < d; ++i) {
    const float m = std::fabs(x[i]);
    if (have_upper && m >= thres1) {
      certain.push_back(static_cast<uint32_t>(i));
    } else if (m >= thres2) {
      band.push_back(static_cast<uint32_t>(i));
    }
  }
  if (certain.size() > k) certain.resize(k);  // Tie overflow guard.

  // Alg. 1 lines 27-28: random contiguous run of (k - k1) band elements.
  const size_t need = k - certain.size();
  std::vector<uint32_t> chosen;
  chosen.reserve(k);
  chosen.assign(certain.begin(), certain.end());
  if (need > 0 && !band.empty()) {
    const size_t take = std::min(need, band.size());
    const size_t max_start = band.size() - take;
    const size_t start = static_cast<size_t>(rng_.uniform_index(max_start + 1));
    chosen.insert(chosen.end(), band.begin() + static_cast<long>(start),
                  band.begin() + static_cast<long>(start + take));
  }
  // Band exhausted (possible only with extreme ties): top up from the lowest
  // unselected indices so the contract "exactly k elements" holds.
  if (chosen.size() < k) {
    std::vector<bool> used(d, false);
    for (uint32_t idx : chosen) used[idx] = true;
    for (size_t i = 0; i < d && chosen.size() < k; ++i) {
      if (!used[i]) chosen.push_back(static_cast<uint32_t>(i));
    }
  }

  std::sort(chosen.begin(), chosen.end());
  SparseTensor out;
  out.dense_size = d;
  out.indices = std::move(chosen);
  out.values.resize(out.indices.size());
  for (size_t i = 0; i < out.indices.size(); ++i) {
    out.values[i] = x[out.indices[i]];
  }
  return out;
}

}  // namespace hitopk::compress
