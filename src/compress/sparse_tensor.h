// Sparse gradient representation produced by top-k style compressors.
//
// A compressed gradient is the pair (values, indices) the paper transmits in
// place of the dense tensor: k float values plus k uint32 indices into the
// original dense vector (so the wire size is 2k elements, Eq. 3 context).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/tensor.h"

namespace hitopk::compress {

struct SparseTensor {
  std::vector<float> values;
  std::vector<uint32_t> indices;
  size_t dense_size = 0;

  size_t nnz() const { return values.size(); }

  // Bytes on the wire: values (value_bytes each, 4 for FP32 / 2 for FP16)
  // plus 4-byte indices.
  size_t payload_bytes(size_t value_bytes = 4) const {
    return values.size() * value_bytes + indices.size() * 4;
  }

  // dense[indices[i]] += values[i].  Duplicate indices accumulate, which is
  // exactly the aggregation semantics HiTopKComm needs (Alg. 2 line 18).
  void scatter_add_into(std::span<float> dense) const;

  // dense[indices[i]] = values[i]; all other entries zero.
  Tensor to_dense() const;

  // Sorts (index, value) pairs by index ascending; useful for deterministic
  // comparisons in tests.
  void sort_by_index();

  // True if every index is < dense_size and there are as many values as
  // indices.
  bool is_valid() const;
};

// Merges many sparse tensors (e.g. the per-node contributions gathered by
// All-Gather) into `dense`: zeroes the buffer, then adds every part with
// duplicate indices accumulating — the fused aggregation hot path of
// NaiveAG.  Validates every part once up front (size match, index bounds),
// then runs unchecked.  Large accumulations are partitioned by *index space*
// across the parallel_for pool: each worker owns a contiguous dense range
// and walks each part's in-range run in storage order, so every dense
// element receives its contributions in exactly the serial per-part order —
// bitwise-identical to the serial loop regardless of thread count.
void accumulate_into(std::span<const SparseTensor> parts,
                     std::span<float> dense);

// Pointer form for callers whose parts are not contiguous (gTop-k merges a
// pair drawn from different slots of its per-rank state); identical
// semantics and float-add order.
void accumulate_into(std::span<const SparseTensor* const> parts,
                     std::span<float> dense);

// Allocating wrapper around accumulate_into.
Tensor accumulate(std::span<const SparseTensor> parts, size_t dense_size);

}  // namespace hitopk::compress
