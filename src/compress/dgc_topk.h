// DGC-style double-sampling top-k (Lin et al. 2018), the paper's second
// baseline in Fig. 6.
//
// The selection threshold is estimated from a uniform sample of the input:
// run exact top-k on the sample to get a trial threshold, select all
// elements above it, then hierarchically re-select exact top-k among the
// candidates.  When the sample underestimates the threshold the candidate
// set is too small and the threshold is relaxed and retried, which is why
// the paper notes DGC "requires at least two times of top-k operations".
#pragma once

#include "compress/compressor.h"
#include "compress/threshold_select.h"
#include "core/rng.h"

namespace hitopk::compress {

class DgcTopK : public Compressor {
 public:
  // sample_ratio: fraction of the input sampled for threshold estimation
  // (the DGC paper uses 0.1%-1%).  algo picks the shared threshold-selection
  // backend (threshold_select.h) for both the sample-threshold estimate and
  // the hierarchical re-selection; the two backends are bit-identical, so
  // this only trades speed.
  explicit DgcTopK(double sample_ratio = 0.01, uint64_t seed = 42,
                   TopKSelect algo = TopKSelect::kHistogram);

  std::string name() const override { return "dgc"; }

  SparseTensor compress(std::span<const float> x, size_t k) override;

  // Number of exact top-k invocations in the most recent compress() call
  // (>= 2 by construction: sample + candidate re-selection).
  int last_topk_calls() const { return last_topk_calls_; }

 private:
  double sample_ratio_;
  Rng rng_;
  TopKSelect algo_;
  int last_topk_calls_ = 0;
};

}  // namespace hitopk::compress
