#include "compress/sparse_tensor.h"

#include <algorithm>
#include <numeric>

#include "core/check.h"

namespace hitopk::compress {

void SparseTensor::scatter_add_into(std::span<float> dense) const {
  HITOPK_CHECK_EQ(dense.size(), dense_size);
  HITOPK_CHECK_EQ(values.size(), indices.size());
  for (size_t i = 0; i < values.size(); ++i) {
    HITOPK_CHECK_LT(indices[i], dense.size());
    dense[indices[i]] += values[i];
  }
}

Tensor SparseTensor::to_dense() const {
  Tensor out(dense_size);
  scatter_add_into(out.span());
  return out;
}

void SparseTensor::sort_by_index() {
  HITOPK_CHECK_EQ(values.size(), indices.size());
  std::vector<size_t> order(values.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return indices[a] < indices[b]; });
  std::vector<float> new_values(values.size());
  std::vector<uint32_t> new_indices(indices.size());
  for (size_t i = 0; i < order.size(); ++i) {
    new_values[i] = values[order[i]];
    new_indices[i] = indices[order[i]];
  }
  values = std::move(new_values);
  indices = std::move(new_indices);
}

bool SparseTensor::is_valid() const {
  if (values.size() != indices.size()) return false;
  for (uint32_t idx : indices) {
    if (idx >= dense_size) return false;
  }
  return true;
}

Tensor accumulate(std::span<const SparseTensor> parts, size_t dense_size) {
  Tensor out(dense_size);
  for (const auto& part : parts) {
    HITOPK_CHECK_EQ(part.dense_size, dense_size);
    part.scatter_add_into(out.span());
  }
  return out;
}

}  // namespace hitopk::compress
