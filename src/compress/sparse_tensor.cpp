#include "compress/sparse_tensor.h"

#include <algorithm>
#include <bit>

#include "core/check.h"
#include "core/parallel.h"
#include "core/workspace.h"

namespace hitopk::compress {

void SparseTensor::scatter_add_into(std::span<float> dense) const {
  HITOPK_CHECK_EQ(dense.size(), dense_size);
  HITOPK_CHECK_EQ(values.size(), indices.size());
  if (values.empty()) return;
  // Validate all indices up front (a branch-free max-fold the vectorizer
  // likes), then run the scatter-add with no per-element bounds check —
  // this loop is the aggregation hot path of HiTopKComm / NaiveAG.
  uint32_t max_index = 0;
  for (size_t i = 0; i < indices.size(); ++i) {
    max_index = std::max(max_index, indices[i]);
  }
  HITOPK_CHECK_LT(max_index, dense.size()) << "sparse index out of range";
  const uint32_t* idx = indices.data();
  const float* val = values.data();
  float* out = dense.data();
  for (size_t i = 0; i < values.size(); ++i) {
    out[idx[i]] += val[i];
  }
}

Tensor SparseTensor::to_dense() const {
  Tensor out(dense_size);
  scatter_add_into(out.span());
  return out;
}

void SparseTensor::sort_by_index() {
  HITOPK_CHECK_EQ(values.size(), indices.size());
  const size_t n = values.size();
  if (n < 2) return;
  // Sort (index, value) as one packed 64-bit key — index in the high word —
  // instead of sorting a permutation array and gathering through it (three
  // fresh allocations plus a random-access gather).  The single scratch
  // buffer comes from the thread-local workspace pool, so steady-state
  // calls allocate nothing, and the sort itself moves key and value
  // together.  Ties on index order deterministically by value bits.
  static_assert(sizeof(size_t) == 8, "packed key-value sort needs 64 bits");
  Scratch<size_t> packed(n);
  for (size_t i = 0; i < n; ++i) {
    packed[i] = (static_cast<size_t>(indices[i]) << 32) |
                std::bit_cast<uint32_t>(values[i]);
  }
  std::sort(packed.data(), packed.data() + n);
  for (size_t i = 0; i < n; ++i) {
    indices[i] = static_cast<uint32_t>(packed[i] >> 32);
    values[i] = std::bit_cast<float>(static_cast<uint32_t>(packed[i]));
  }
}

bool SparseTensor::is_valid() const {
  if (values.size() != indices.size()) return false;
  for (uint32_t idx : indices) {
    if (idx >= dense_size) return false;
  }
  return true;
}

void accumulate_into(std::span<const SparseTensor> parts,
                     std::span<float> dense) {
  Scratch<const SparseTensor*> ptrs(parts.size());
  for (size_t p = 0; p < parts.size(); ++p) ptrs[p] = &parts[p];
  accumulate_into(std::span<const SparseTensor* const>(ptrs.data(),
                                                       parts.size()),
                  dense);
}

void accumulate_into(std::span<const SparseTensor* const> parts,
                     std::span<float> dense) {
  const size_t d = dense.size();
  // Validate everything once: size agreement, value/index pairing, and the
  // index-bounds guard (branch-free max-fold per part, like
  // scatter_add_into), plus sortedness — sorted parts (every top-k compressor
  // emits ascending indices) let the partitioned path binary-search its
  // in-range run instead of scanning.
  size_t total_nnz = 0;
  Scratch<uint32_t> sorted_flags(parts.size());
  for (size_t p = 0; p < parts.size(); ++p) {
    const SparseTensor& part = *parts[p];
    HITOPK_CHECK_EQ(part.dense_size, d);
    HITOPK_CHECK_EQ(part.values.size(), part.indices.size());
    uint32_t max_index = 0;
    uint32_t sorted = 1;
    const uint32_t* idx = part.indices.data();
    const size_t n = part.indices.size();
    for (size_t i = 0; i < n; ++i) {
      max_index = std::max(max_index, idx[i]);
      sorted &= static_cast<uint32_t>(i == 0 || idx[i - 1] <= idx[i]);
    }
    HITOPK_CHECK(n == 0 || max_index < d) << "sparse index out of range";
    sorted_flags[p] = sorted;
    total_nnz += n;
  }
  tensor_ops::zero(dense);

  // Partition the index space only when the pool and the work are both big
  // enough for the split to pay for its per-part range searches.
  const size_t max_workers =
      std::min<size_t>(static_cast<size_t>(std::max(1, parallel_threads())),
                       d / 4096);
  if (max_workers <= 1 || total_nnz < 4096) {
    for (const SparseTensor* part : parts) {
      const uint32_t* idx = part->indices.data();
      const float* val = part->values.data();
      float* out = dense.data();
      for (size_t i = 0; i < part->values.size(); ++i) out[idx[i]] += val[i];
    }
    return;
  }
  parallel_for(0, max_workers, [&](size_t w) {
    const uint32_t lo = static_cast<uint32_t>(d * w / max_workers);
    const uint32_t hi = static_cast<uint32_t>(d * (w + 1) / max_workers);
    float* out = dense.data();
    for (size_t p = 0; p < parts.size(); ++p) {
      const SparseTensor& part = *parts[p];
      const uint32_t* idx = part.indices.data();
      const float* val = part.values.data();
      if (sorted_flags[p]) {
        const uint32_t* begin =
            std::lower_bound(idx, idx + part.indices.size(), lo);
        const uint32_t* end =
            std::lower_bound(begin, idx + part.indices.size(), hi);
        for (const uint32_t* it = begin; it != end; ++it) {
          out[*it] += val[it - idx];
        }
      } else {
        for (size_t i = 0; i < part.indices.size(); ++i) {
          if (idx[i] >= lo && idx[i] < hi) out[idx[i]] += val[i];
        }
      }
    }
  });
}

Tensor accumulate(std::span<const SparseTensor> parts, size_t dense_size) {
  Tensor out(dense_size);
  accumulate_into(parts, out.span());
  return out;
}

}  // namespace hitopk::compress
