#include "compress/sparse_tensor.h"

#include <algorithm>
#include <bit>

#include "core/check.h"
#include "core/workspace.h"

namespace hitopk::compress {

void SparseTensor::scatter_add_into(std::span<float> dense) const {
  HITOPK_CHECK_EQ(dense.size(), dense_size);
  HITOPK_CHECK_EQ(values.size(), indices.size());
  if (values.empty()) return;
  // Validate all indices up front (a branch-free max-fold the vectorizer
  // likes), then run the scatter-add with no per-element bounds check —
  // this loop is the aggregation hot path of HiTopKComm / NaiveAG.
  uint32_t max_index = 0;
  for (size_t i = 0; i < indices.size(); ++i) {
    max_index = std::max(max_index, indices[i]);
  }
  HITOPK_CHECK_LT(max_index, dense.size()) << "sparse index out of range";
  const uint32_t* idx = indices.data();
  const float* val = values.data();
  float* out = dense.data();
  for (size_t i = 0; i < values.size(); ++i) {
    out[idx[i]] += val[i];
  }
}

Tensor SparseTensor::to_dense() const {
  Tensor out(dense_size);
  scatter_add_into(out.span());
  return out;
}

void SparseTensor::sort_by_index() {
  HITOPK_CHECK_EQ(values.size(), indices.size());
  const size_t n = values.size();
  if (n < 2) return;
  // Sort (index, value) as one packed 64-bit key — index in the high word —
  // instead of sorting a permutation array and gathering through it (three
  // fresh allocations plus a random-access gather).  The single scratch
  // buffer comes from the thread-local workspace pool, so steady-state
  // calls allocate nothing, and the sort itself moves key and value
  // together.  Ties on index order deterministically by value bits.
  static_assert(sizeof(size_t) == 8, "packed key-value sort needs 64 bits");
  Scratch<size_t> packed(n);
  for (size_t i = 0; i < n; ++i) {
    packed[i] = (static_cast<size_t>(indices[i]) << 32) |
                std::bit_cast<uint32_t>(values[i]);
  }
  std::sort(packed.data(), packed.data() + n);
  for (size_t i = 0; i < n; ++i) {
    indices[i] = static_cast<uint32_t>(packed[i] >> 32);
    values[i] = std::bit_cast<float>(static_cast<uint32_t>(packed[i]));
  }
}

bool SparseTensor::is_valid() const {
  if (values.size() != indices.size()) return false;
  for (uint32_t idx : indices) {
    if (idx >= dense_size) return false;
  }
  return true;
}

Tensor accumulate(std::span<const SparseTensor> parts, size_t dense_size) {
  Tensor out(dense_size);
  for (const auto& part : parts) {
    HITOPK_CHECK_EQ(part.dense_size, dense_size);
    part.scatter_add_into(out.span());
  }
  return out;
}

}  // namespace hitopk::compress
