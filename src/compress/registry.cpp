#include "compress/compressor.h"
#include "compress/dgc_topk.h"
#include "compress/exact_topk.h"
#include "compress/mstopk.h"
#include "compress/other_compressors.h"
#include "core/check.h"

namespace hitopk::compress {

std::unique_ptr<Compressor> make_compressor(const std::string& name,
                                            uint64_t seed) {
  if (name == "exact_topk") return std::make_unique<ExactTopK>();
  if (name == "exact_topk_legacy") {
    return std::make_unique<ExactTopK>(TopKSelect::kNthElement);
  }
  if (name == "dgc") return std::make_unique<DgcTopK>(0.01, seed);
  if (name == "mstopk") return std::make_unique<MsTopK>(30, seed);
  if (name == "mstopk_linear") {
    return std::make_unique<MsTopK>(30, seed, MsTopKMode::kLinear);
  }
  if (name == "mstopk_legacy") {
    return std::make_unique<MsTopK>(30, seed, MsTopKMode::kMultiPass);
  }
  if (name == "random_k") return std::make_unique<RandomK>(seed);
  HITOPK_CHECK(false) << "unknown compressor:" << name;
  return nullptr;  // Unreachable.
}

}  // namespace hitopk::compress
