#include "compress/error_feedback.h"

#include <algorithm>

#include "core/check.h"

namespace hitopk::compress {

Tensor& ErrorFeedback::entry(const std::string& key, size_t size) {
  // Lookup-first: for keys pre-created via ensure(), this path only ever
  // performs a const find, which the standard guarantees is safe from
  // concurrent parallel_for workers (insertion is not).
  auto it = residuals_.find(key);
  if (it == residuals_.end()) it = residuals_.try_emplace(key, size).first;
  HITOPK_CHECK_EQ(it->second.size(), size)
      << "residual shape changed for tensor" << key;
  return it->second;
}

void ErrorFeedback::ensure(const std::string& key, size_t size) {
  entry(key, size);
}

void ErrorFeedback::apply(const std::string& key, std::span<float> grad) {
  Tensor& residual = entry(key, grad.size());
  tensor_ops::add_into(grad, residual.span());  // vectorized
}

void ErrorFeedback::absorb(const std::string& key, std::span<const float> grad,
                           const SparseTensor& sent) {
  Tensor& residual = entry(key, grad.size());
  HITOPK_CHECK_EQ(sent.dense_size, grad.size());
  std::copy(grad.begin(), grad.end(), residual.span().begin());
  // Validate the sent indices once, then clear them unchecked — this runs
  // per worker per iteration on the full gradient.
  uint32_t max_index = 0;
  for (size_t i = 0; i < sent.nnz(); ++i) {
    max_index = std::max(max_index, sent.indices[i]);
  }
  HITOPK_CHECK(sent.nnz() == 0 || max_index < residual.size())
      << "sent index out of range";
  // Subtract the value actually sent: x - x == +0.0 for finite x, so exact
  // sends still zero the coordinate bitwise; quantized sends leave the
  // rounding error behind as the next step's feedback.
  float* r = residual.data();
  for (size_t i = 0; i < sent.nnz(); ++i) r[sent.indices[i]] -= sent.values[i];
}

void ErrorFeedback::apply_priming(const std::string& key,
                                  std::span<float> grad) {
  Tensor& residual = entry(key, grad.size());
  // One fused pass: grad and residual both become grad + residual (what
  // apply() then absorb()'s copy would produce, before the sent coordinates
  // are cleared).
  tensor_ops::add_into_both(grad, residual.span());
}

void ErrorFeedback::absorb_primed(const std::string& key,
                                  const SparseTensor& sent) {
  Tensor& residual = entry(key, sent.dense_size);
  uint32_t max_index = 0;
  for (size_t i = 0; i < sent.nnz(); ++i) {
    max_index = std::max(max_index, sent.indices[i]);
  }
  HITOPK_CHECK(sent.nnz() == 0 || max_index < residual.size())
      << "sent index out of range";
  float* r = residual.data();
  for (size_t i = 0; i < sent.nnz(); ++i) r[sent.indices[i]] -= sent.values[i];
}

double ErrorFeedback::residual_sq_norm() const {
  double acc = 0.0;
  for (const std::string& key : keys()) {
    const float norm = residuals_.at(key).l2_norm();
    acc += static_cast<double>(norm) * norm;
  }
  return acc;
}

void ErrorFeedback::reset() { residuals_.clear(); }

std::vector<std::string> ErrorFeedback::keys() const {
  std::vector<std::string> out;
  out.reserve(residuals_.size());
  for (const auto& [key, residual] : residuals_) out.push_back(key);
  std::sort(out.begin(), out.end());
  return out;
}

std::span<const float> ErrorFeedback::residual(const std::string& key) const {
  auto it = residuals_.find(key);
  HITOPK_CHECK(it != residuals_.end()) << "no residual for tensor" << key;
  return it->second.span();
}

void ErrorFeedback::set(const std::string& key,
                        std::span<const float> values) {
  Tensor t(values.size());
  std::copy(values.begin(), values.end(), t.span().begin());
  residuals_[key] = std::move(t);
}

Tensor ErrorFeedback::take(const std::string& key) {
  auto it = residuals_.find(key);
  if (it == residuals_.end()) return Tensor();
  Tensor out = std::move(it->second);
  residuals_.erase(it);
  return out;
}

void ErrorFeedback::accumulate(const std::string& key,
                               std::span<const float> values) {
  Tensor& residual = entry(key, values.size());
  tensor_ops::add_into(residual.span(), values);
}

}  // namespace hitopk::compress
