#include "compress/error_feedback.h"

#include "core/check.h"

namespace hitopk::compress {

void ErrorFeedback::apply(const std::string& key, std::span<float> grad) {
  auto [it, inserted] = residuals_.try_emplace(key, grad.size());
  Tensor& residual = it->second;
  HITOPK_CHECK_EQ(residual.size(), grad.size())
      << "residual shape changed for tensor" << key;
  for (size_t i = 0; i < grad.size(); ++i) grad[i] += residual[i];
}

void ErrorFeedback::absorb(const std::string& key, std::span<const float> grad,
                           const SparseTensor& sent) {
  auto [it, inserted] = residuals_.try_emplace(key, grad.size());
  Tensor& residual = it->second;
  HITOPK_CHECK_EQ(residual.size(), grad.size());
  HITOPK_CHECK_EQ(sent.dense_size, grad.size());
  for (size_t i = 0; i < grad.size(); ++i) residual[i] = grad[i];
  for (size_t i = 0; i < sent.nnz(); ++i) {
    HITOPK_CHECK_LT(sent.indices[i], residual.size());
    residual[sent.indices[i]] = 0.0f;
  }
}

double ErrorFeedback::residual_sq_norm() const {
  double acc = 0.0;
  for (const auto& [key, residual] : residuals_) {
    const float norm = residual.l2_norm();
    acc += static_cast<double>(norm) * norm;
  }
  return acc;
}

void ErrorFeedback::reset() { residuals_.clear(); }

}  // namespace hitopk::compress
