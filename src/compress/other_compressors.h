// Ablation-baseline compressors: random-k and fixed-threshold selection.
#pragma once

#include "compress/compressor.h"
#include "core/rng.h"

namespace hitopk::compress {

// Selects k uniformly-random coordinates (sparsification without magnitude
// information); a standard baseline showing why top-k selection matters.
class RandomK : public Compressor {
 public:
  explicit RandomK(uint64_t seed = 42) : rng_(seed) {}

  std::string name() const override { return "random_k"; }

  SparseTensor compress(std::span<const float> x, size_t k) override;

 private:
  Rng rng_;
};

// Selects every element with |x(i)| >= threshold.  The k argument of
// compress() is ignored; nnz varies per call, which is exactly the property
// that makes fixed-threshold schemes awkward for All-Gather aggregation
// (different workers contribute different element counts).
class ThresholdK : public Compressor {
 public:
  explicit ThresholdK(float threshold) : threshold_(threshold) {}

  std::string name() const override { return "threshold_k"; }

  SparseTensor compress(std::span<const float> x, size_t k) override;

 private:
  float threshold_;
};

}  // namespace hitopk::compress
