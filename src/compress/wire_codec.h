// Typed transfer payloads: the wire dtype of a scheduled transfer.
//
// The paper's premise is that 25 Gbps cloud interconnects — not compute —
// bound scaling, so communication volume is the highest-leverage axis.  A
// schedule buffer therefore carries a *wire dtype*: the representation its
// bytes travel in.  fp32 is the identity; fp16 halves the bytes through the
// core/half round trip; int8 quarters them through a per-shard power-of-two
// linear quantizer with TF-style round-half-away-from-zero (see TensorFlow's
// quantization_utils for the rounding/range idiom).
//
// The codec contract (docs/INTERNALS.md "Typed transfer payloads"):
//   encode(decode(x)) == decode(x)  — the round trip is *idempotent*, so a
//   value that has already crossed one hop re-encodes bitwise-identically on
//   the next hop.  This is what makes a resolved multi-hop schedule (copy
//   straight from the owner) equal the hop-by-hop legacy loop, and what
//   keeps every replica of an allgathered chunk identical.
//
// For int8 the scale is a power of two derived from the shard's max
// magnitude: frexp(maxabs) = m * 2^e with m in [0.5, 1), scale = 2^(e-7),
// so quantized magnitudes land in [64, 127] and re-deriving the scale from
// the decoded values yields the same exponent — idempotence by construction.
// Each int8 shard ships one 4-byte scale record on the wire
// (wire_scale_bytes); fp16 needs none.  Non-finite values pass through
// unchanged (quantizing an Inf/NaN shard would be garbage either way), and
// an all-zero shard is left untouched.
#pragma once

#include <cstddef>
#include <span>

namespace hitopk::compress {

enum class WireDtype : unsigned char {
  kFp32 = 0,  // identity: 4 bytes/element, no codec
  kFp16 = 1,  // core/half round-to-nearest-even: 2 bytes/element
  kInt8 = 2,  // power-of-two linear quantizer: 1 byte/element + 4-byte scale
};

const char* wire_dtype_name(WireDtype dtype);

// Bytes per element as transferred on the wire.
inline size_t wire_elem_bytes(WireDtype dtype) {
  switch (dtype) {
    case WireDtype::kFp16: return 2;
    case WireDtype::kInt8: return 1;
    case WireDtype::kFp32: default: return 4;
  }
}

// Per-shard scale-record overhead (int8 ships one fp32 scale per transfer).
inline size_t wire_scale_bytes(WireDtype dtype) {
  return dtype == WireDtype::kInt8 ? 4 : 0;
}

// Total wire bytes for a `count`-element shard: payload + scale record.
inline size_t wire_payload_bytes(WireDtype dtype, size_t count) {
  return count * wire_elem_bytes(dtype) + wire_scale_bytes(dtype);
}

// The power-of-two scale the int8 codec would use for this shard: 2^(e-7)
// where frexp(max |x| over finite values) has exponent e.  Returns 0 when
// the shard has no finite non-zero value (the codec then passes the shard
// through unchanged).
float int8_wire_scale(std::span<const float> values);

// Simulates one shard crossing the wire at `dtype`, in place:
//   kFp32 — no-op;
//   kFp16 — core/half fp16_round_trip (RNE, subnormals, NaN/Inf preserved);
//   kInt8 — q = clamp(round-half-away(x / scale), -127, 127), x = q * scale,
//           non-finite values untouched.
// Idempotent for every dtype: a second call is bitwise a no-op.
void wire_round_trip(WireDtype dtype, std::span<float> values);

}  // namespace hitopk::compress
