// Gradient compressor interface.
//
// A compressor selects (approximately) the k largest-magnitude elements of a
// dense gradient.  Implementations:
//   - ExactTopK   : exact selection (the paper's nn.topk baseline)
//   - DgcTopK     : double-sampling selection (Lin et al. 2018, "DGC")
//   - MsTopK      : the paper's Algorithm 1 (multi-sampling threshold search)
//   - RandomK     : uniform random selection (ablation baseline)
//   - ThresholdK  : fixed-threshold selection (variable k; ablation)
#pragma once

#include <memory>
#include <span>
#include <string>

#include "compress/sparse_tensor.h"

namespace hitopk::compress {

class Compressor {
 public:
  virtual ~Compressor() = default;

  // Human-readable identifier (used by the registry and benches).
  virtual std::string name() const = 0;

  // Selects k elements from x.  Implementations must return a valid
  // SparseTensor with dense_size == x.size(); approximate algorithms return
  // exactly k elements whenever k <= x.size() (the paper's MSTopK guarantees
  // this via the two-threshold band, Alg. 1 lines 25-29).
  virtual SparseTensor compress(std::span<const float> x, size_t k) = 0;
};

// Factory: name is one of "exact_topk", "dgc", "mstopk", "mstopk_legacy"
// (the multi-pass validation reference), "random_k".  Throws CheckError for
// unknown names.
std::unique_ptr<Compressor> make_compressor(const std::string& name,
                                            uint64_t seed = 42);

}  // namespace hitopk::compress
