// Exact top-k selection (the nn.topk baseline of Fig. 6).
//
// Both entry points delegate to compress/threshold_select.h: the default
// kHistogram algorithm locates the k-th magnitude with a 512-bucket
// histogram and repairs the boundary bucket exactly, returning results
// bit-identical (indices and values) to the kNthElement reference — the
// packed-key std::nth_element kept as the validation path, selectable like
// MSTopK's mstopk_legacy twin (registry name "exact_topk_legacy").
#pragma once

#include "compress/compressor.h"
#include "compress/threshold_select.h"

namespace hitopk::compress {

class ExactTopK : public Compressor {
 public:
  explicit ExactTopK(TopKSelect algo = TopKSelect::kHistogram) : algo_(algo) {}

  std::string name() const override {
    return algo_ == TopKSelect::kHistogram ? "exact_topk"
                                           : "exact_topk_legacy";
  }

  // Selects exactly min(k, x.size()) elements with the largest |x(i)|.
  // Ties at the threshold are broken by lower index, so the result is
  // deterministic.  Returned indices are sorted ascending.
  SparseTensor compress(std::span<const float> x, size_t k) override;

  TopKSelect algo() const { return algo_; }

 private:
  TopKSelect algo_;
};

// Free-function form used internally by DGC's hierarchical re-selection,
// gTopK, and the TopK-SGD convergence path.
SparseTensor exact_topk(std::span<const float> x, size_t k,
                        TopKSelect algo = TopKSelect::kHistogram);

// The k-th largest |x(i)| (the exact threshold `thres` of Eq. 2); 0 when
// k == 0 or x is empty.
float exact_topk_threshold(std::span<const float> x, size_t k,
                           TopKSelect algo = TopKSelect::kHistogram);

}  // namespace hitopk::compress
