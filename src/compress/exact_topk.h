// Exact top-k selection (the nn.topk baseline of Fig. 6).
#pragma once

#include "compress/compressor.h"

namespace hitopk::compress {

class ExactTopK : public Compressor {
 public:
  std::string name() const override { return "exact_topk"; }

  // Selects exactly min(k, x.size()) elements with the largest |x(i)|.
  // Ties at the threshold are broken by lower index, so the result is
  // deterministic.  Returned indices are sorted ascending.
  SparseTensor compress(std::span<const float> x, size_t k) override;
};

// Free-function form used internally by DGC's hierarchical re-selection.
SparseTensor exact_topk(std::span<const float> x, size_t k);

// The k-th largest |x(i)| (the exact threshold `thres` of Eq. 2); 0 when
// k == 0 or x is empty.
float exact_topk_threshold(std::span<const float> x, size_t k);

}  // namespace hitopk::compress
