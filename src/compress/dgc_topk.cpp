#include "compress/dgc_topk.h"

#include <algorithm>
#include <cmath>

#include "compress/exact_topk.h"
#include "core/check.h"
#include "core/workspace.h"

namespace hitopk::compress {

DgcTopK::DgcTopK(double sample_ratio, uint64_t seed, TopKSelect algo)
    : sample_ratio_(sample_ratio), rng_(seed), algo_(algo) {
  HITOPK_CHECK(sample_ratio > 0.0 && sample_ratio <= 1.0);
}

SparseTensor DgcTopK::compress(std::span<const float> x, size_t k) {
  const size_t d = x.size();
  last_topk_calls_ = 0;
  if (k >= d || k == 0 || d == 0) {
    last_topk_calls_ = 1;
    return exact_topk(x, k, algo_);
  }

  // Sample pass: uniform subset for threshold estimation.  The sample must
  // contain at least ceil(k * ratio) elements above the true threshold in
  // expectation, so keep a floor of 64 samples.
  const size_t sample_size = std::max<size_t>(
      64, static_cast<size_t>(std::ceil(sample_ratio_ * static_cast<double>(d))));
  Scratch<float> sample_buf(std::min(sample_size, d));
  std::vector<float>& sample = sample_buf.vec();
  for (auto& s : sample) s = x[rng_.uniform_index(d)];

  // Exact top-k on the sample estimates the threshold for k elements of the
  // full input: the k-th largest overall maps to roughly the
  // (k * sample/d)-th largest of the sample.
  const size_t sample_k = std::max<size_t>(
      1, static_cast<size_t>(std::round(static_cast<double>(k) *
                                        static_cast<double>(sample.size()) /
                                        static_cast<double>(d))));
  float threshold = exact_topk_threshold(sample, sample_k, algo_);
  ++last_topk_calls_;

  // Select candidates above the estimated threshold, relaxing the threshold
  // when the estimate was too aggressive.
  Scratch<uint32_t> candidates_buf(0);
  std::vector<uint32_t>& candidates = candidates_buf.vec();
  for (int attempt = 0; attempt < 8; ++attempt) {
    candidates.clear();
    for (size_t i = 0; i < d; ++i) {
      if (std::fabs(x[i]) >= threshold) candidates.push_back(static_cast<uint32_t>(i));
    }
    if (candidates.size() >= k || threshold == 0.0f) break;
    threshold *= 0.5f;  // Too few candidates: relax and rescan.
  }

  SparseTensor out;
  out.dense_size = d;
  if (candidates.size() <= k) {
    // Threshold hit (or undershot even at relaxation limit): ship what we
    // have, topping up exactly like a second selection pass would.
    out.indices.assign(candidates.begin(), candidates.end());
  } else {
    // Hierarchical re-selection: exact top-k restricted to the candidates.
    Scratch<float> candidate_values_buf(candidates.size());
    std::vector<float>& candidate_values = candidate_values_buf.vec();
    for (size_t i = 0; i < candidates.size(); ++i) {
      candidate_values[i] = x[candidates[i]];
    }
    SparseTensor inner = exact_topk(candidate_values, k, algo_);
    ++last_topk_calls_;
    out.indices.resize(inner.nnz());
    for (size_t i = 0; i < inner.nnz(); ++i) {
      out.indices[i] = candidates[inner.indices[i]];
    }
  }
  if (last_topk_calls_ < 2) ++last_topk_calls_;  // Candidate scan counts.

  std::sort(out.indices.begin(), out.indices.end());
  out.values.resize(out.indices.size());
  for (size_t i = 0; i < out.indices.size(); ++i) {
    out.values[i] = x[out.indices[i]];
  }
  return out;
}

}  // namespace hitopk::compress
