#include "compress/threshold_select.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "core/check.h"
#include "core/parallel.h"
#include "core/workspace.h"

namespace hitopk::compress {
namespace {

constexpr size_t kSlots = static_cast<size_t>(kThresholdBuckets) + 1;

// Packed selection key: magnitude bits in the high word (IEEE-754
// non-negative floats order like their bit patterns), inverted index in the
// low word, so plain integer std::greater orders "larger magnitude first,
// ties broken by lower index".  Shared by the reference path and the
// histogram repair pass — using the identical comparator is what makes the
// two algorithms bit-identical.
static_assert(sizeof(size_t) == 8, "packed top-k keys need 64 bits");

inline uint32_t magnitude_bits(float v) {
  return std::bit_cast<uint32_t>(v) & 0x7FFFFFFFu;
}

inline size_t pack_key(float v, size_t i) {
  return (static_cast<size_t>(magnitude_bits(v)) << 32) |
         (~static_cast<uint32_t>(i));
}

// Log-spaced bucket of |v|: exponent byte plus top mantissa bit, in
// [0, kThresholdBuckets - 1].  Monotone nondecreasing in |v| because
// non-negative IEEE-754 floats order like their bit patterns and shifting
// preserves order.  Handles denormals, zeros, and infinities uniformly —
// no statistics pass or width arithmetic required.
inline uint32_t magnitude_bits_bucket(float v) {
  return magnitude_bits(v) >> 22;
}

// Linear bucket of |v| over [lo, lo + kThresholdBuckets * width), clamped
// to [-1, kThresholdBuckets - 1]: -1 for |v| < lo ("below the histogram"),
// the top bucket for ties at the max.  Monotone nondecreasing in |v|
// (subtraction, multiplication by a positive constant, truncation, and
// clamping are each monotone).
inline int32_t magnitude_linear_bucket(float v, float lo, float inv_width,
                                       float top) {
  float t = (std::fabs(v) - lo) * inv_width;
  t = std::min(t, top);
  t = std::max(t, -1.0f);
  return static_cast<int32_t>(t);
}

// One worker's counting pass over [p, p + n): a vectorizable arithmetic
// block turns magnitudes into histogram slots (no per-element boundary
// comparisons or branches), then a scalar block scatters them into four
// interleaved sub-histograms so consecutive same-bucket hits don't
// serialize on one counter.  hist must have 4 * kSlots zeroed entries.
// slot_of must return values in [0, kSlots - 1].
template <typename SlotFn>
void count_into(const float* p, size_t n, size_t* hist, SlotFn slot_of) {
  constexpr size_t kBlock = 1024;
  size_t* h0 = hist;
  size_t* h1 = h0 + kSlots;
  size_t* h2 = h1 + kSlots;
  size_t* h3 = h2 + kSlots;
  uint32_t idx[kBlock];
  auto index_block = [&](const float* q, size_t count) {
    for (size_t j = 0; j < count; ++j) idx[j] = slot_of(q[j]);
  };
  auto scatter_block = [&](size_t count) {
    size_t j = 0;
    for (; j + 4 <= count; j += 4) {
      ++h0[idx[j]];
      ++h1[idx[j + 1]];
      ++h2[idx[j + 2]];
      ++h3[idx[j + 3]];
    }
    for (; j < count; ++j) ++h0[idx[j]];
  };
  // Full blocks get a compile-time trip count so the slot arithmetic
  // vectorizes even under -O2's conservative cost model; the remainder goes
  // through the same lambdas with a runtime count.
  const size_t full_end = n - n % kBlock;
  for (size_t base = 0; base < full_end; base += kBlock) {
    index_block(p + base, kBlock);
    scatter_block(kBlock);
  }
  index_block(p + full_end, n - full_end);
  scatter_block(n - full_end);
}

// Shared counting core: partitions x into per-worker chunks when the pool
// and the input are both large enough to amortize the extra sub-histogram
// merges, counts with `slot_of`, and merges into counts[kSlots].  Bucket
// counts are integers, so any partitioning merges to the identical
// histogram.
template <typename SlotFn>
void histogram_count(std::span<const float> x, std::span<size_t> counts,
                     SlotFn slot_of) {
  HITOPK_CHECK_EQ(counts.size(), kSlots);
  const size_t d = x.size();
  constexpr size_t kMinChunk = 1 << 16;
  const size_t max_chunks = std::max<size_t>(1, d / kMinChunk);
  const size_t chunks = std::min<size_t>(
      static_cast<size_t>(std::max(1, parallel_threads())), max_chunks);

  Scratch<size_t> hist_buf(chunks * 4 * kSlots, /*zeroed=*/true);
  size_t* slabs = hist_buf.data();
  if (chunks == 1) {
    count_into(x.data(), d, slabs, slot_of);
  } else {
    parallel_for(0, chunks, [&](size_t c) {
      const size_t begin = d * c / chunks;
      const size_t end = d * (c + 1) / chunks;
      count_into(x.data() + begin, end - begin, slabs + c * 4 * kSlots,
                 slot_of);
    });
  }
  for (size_t c = 0; c < chunks; ++c) {
    const size_t* slab = slabs + c * 4 * kSlots;
    for (size_t s = 0; s < kSlots; ++s) {
      counts[s] += slab[s] + slab[kSlots + s] + slab[2 * kSlots + s] +
                   slab[3 * kSlots + s];
    }
  }
}

// The reference selection: nth_element over all packed keys.
SparseTensor select_topk_nth(std::span<const float> x, size_t k) {
  SparseTensor out;
  out.dense_size = x.size();
  Scratch<size_t> keys_buf(x.size());
  size_t* keys = keys_buf.data();
  for (size_t i = 0; i < x.size(); ++i) keys[i] = pack_key(x[i], i);
  std::nth_element(keys, keys + (k - 1), keys + x.size(),
                   std::greater<size_t>());
  out.indices.resize(k);
  for (size_t i = 0; i < k; ++i) {
    out.indices[i] = ~static_cast<uint32_t>(keys[i]);
  }
  std::sort(out.indices.begin(), out.indices.end());
  out.values.resize(k);
  for (size_t i = 0; i < k; ++i) out.values[i] = x[out.indices[i]];
  return out;
}

float topk_threshold_nth(std::span<const float> x, size_t k) {
  // Rank magnitude bits instead of fabs floats: same order (non-negative
  // IEEE floats order like their bit patterns), total even on adversarial
  // bit patterns, and the integer nth_element is what the histogram repair
  // uses — keeping the two paths' comparators identical.
  Scratch<uint32_t> mags(x.size());
  for (size_t i = 0; i < x.size(); ++i) mags[i] = magnitude_bits(x[i]);
  std::nth_element(mags.vec().begin(),
                   mags.vec().begin() + static_cast<long>(k - 1),
                   mags.vec().end(), std::greater<uint32_t>());
  return std::bit_cast<float>(mags[k - 1]);
}

// Suffix scan shared by selection and threshold: the bucket holding the
// k-th magnitude and the exact count of elements in buckets above it
// (< k of them, each with strictly larger magnitude than every boundary-
// bucket element, by monotonicity of the bucket map).
struct BoundaryScan {
  uint32_t boundary = 0;
  size_t above = 0;
};

BoundaryScan scan_boundary(std::span<const size_t> counts, size_t k) {
  BoundaryScan scan;
  size_t above = 0;
  for (int b = kThresholdBuckets - 1; b >= 0; --b) {
    const size_t c = counts[static_cast<size_t>(b)];
    if (above + c >= k) {
      scan.boundary = static_cast<uint32_t>(b);
      scan.above = above;
      return scan;
    }
    above += c;
  }
  HITOPK_CHECK(false) << "histogram lost elements";  // d >= k are all counted
  return scan;
}

}  // namespace

void magnitude_histogram(std::span<const float> x, float lo, float inv_width,
                         std::span<size_t> counts) {
  const float top = static_cast<float>(kThresholdBuckets - 1);
  histogram_count(x, counts, [=](float v) {
    return static_cast<uint32_t>(
        magnitude_linear_bucket(v, lo, inv_width, top) + 1);
  });
}

MagnitudeBrackets bracket_kth_magnitude(std::span<const float> x, size_t k,
                                        std::vector<uint32_t>* certain,
                                        std::vector<uint32_t>* band) {
  MagnitudeBrackets out;
  const size_t d = x.size();
  out.k2 = d;
  if (certain != nullptr) certain->clear();
  if (band != nullptr) band->clear();
  if (d == 0 || k == 0 || k >= d) return out;  // no bracket to find

  // Read 1: half-octave bit buckets locate the boundary bucket (exactly
  // select_topk's coarse geometry).
  Scratch<size_t> counts(kSlots, /*zeroed=*/true);
  histogram_count(x, counts.span(),
                  [](float v) { return magnitude_bits_bucket(v); });
  // Non-finite magnitudes (bits >= 0x7F800000 land in buckets 510/511):
  // no representable threshold can discriminate above an infinity, and a
  // NaN poisons every magnitude comparison — report "no bracket" so the
  // caller can fall back, exactly like the legacy searches whose
  // mean/max statistics a non-finite input poisons.
  if (counts[510] + counts[511] > 0) {
    out.finite = false;
    return out;
  }
  const BoundaryScan scan = scan_boundary(counts.span(), k);
  const uint32_t bucket = scan.boundary;

  // Read 2: select_topk-style gather.  Elements above the boundary bucket
  // are certain winners; the bucket's occupants become candidates carrying
  // their magnitude bits (index order preserved).  Sizes are known exactly
  // from the histogram — no reallocation.
  Scratch<uint32_t> own_certain(0);
  std::vector<uint32_t>& sure = certain != nullptr ? *certain
                                                   : own_certain.vec();
  sure.resize(scan.above);
  uint32_t* sure_out = sure.data();
  size_t n_sure = 0;
  Scratch<uint32_t> cand_idx(counts[bucket]);
  Scratch<uint32_t> cand_bits(counts[bucket]);
  size_t n_cand = 0;
  const uint32_t lower_bits = bucket << 22;
  // For bucket 511 this wraps to 0x80000000, which no magnitude reaches —
  // exactly "nothing is above the top bucket".
  const uint32_t above_bits = (bucket + 1) << 22;
  {
    constexpr size_t kBlock = 1024;
    uint32_t mag[kBlock];
    const float* p = x.data();
    auto bits_block = [&](size_t base, size_t count) {
      for (size_t j = 0; j < count; ++j) mag[j] = magnitude_bits(p[base + j]);
    };
    auto gather_block = [&](size_t base, size_t count) {
      for (size_t j = 0; j < count; ++j) {
        const uint32_t m = mag[j];
        if (m < lower_bits) continue;  // common case first
        const uint32_t i = static_cast<uint32_t>(base + j);
        if (m >= above_bits) {
          sure_out[n_sure++] = i;
        } else {
          cand_idx[n_cand] = i;
          cand_bits[n_cand] = m;
          ++n_cand;
        }
      }
    };
    const size_t full_end = d - d % kBlock;
    for (size_t base = 0; base < full_end; base += kBlock) {
      bits_block(base, kBlock);
      gather_block(base, kBlock);
    }
    bits_block(full_end, d - full_end);
    gather_block(full_end, d - full_end);
  }
  HITOPK_CHECK_EQ(n_sure, scan.above);
  HITOPK_CHECK_EQ(n_cand, counts[bucket]);

  // Exact 512-way refinement on the candidates' mantissa bits 13..21 —
  // O(bucket occupancy), no further pass over x.
  Scratch<size_t> fine(static_cast<size_t>(kThresholdBuckets),
                       /*zeroed=*/true);
  for (size_t c = 0; c < n_cand; ++c) {
    ++fine[(cand_bits[c] >> 13) & (kThresholdBuckets - 1)];
  }
  size_t above = scan.above;
  uint32_t sub = 0;
  for (int b = kThresholdBuckets - 1; b >= 0; --b) {
    const size_t c = fine[static_cast<size_t>(b)];
    if (above + c >= k) {
      sub = static_cast<uint32_t>(b);
      break;
    }
    above += c;
    HITOPK_CHECK_GT(b, 0) << "refinement histogram lost elements";
  }

  // Bracket boundaries as exact bit patterns: the sub-bucket's own lower
  // edge (loose side) and the next sub-bucket edge (tight side, with
  // natural carry into the next half-octave).
  const uint32_t edge2 = ((bucket << 9) | sub) << 13;
  const uint32_t edge1 = (((bucket << 9) | sub) + 1) << 13;
  out.k1 = above;                                 // |x| >= edge1, < k of them
  out.k2 = above + fine[sub];                     // |x| >= edge2, >= k
  out.thres2 = std::bit_cast<float>(edge2);
  bool promoted = false;
  if (out.k2 == k) {
    // The loose edge already selects exactly k: promote it to the
    // certain-set threshold; no band is needed.
    out.thres1 = out.thres2;
    out.k1 = k;
    out.thres2 = 0.0f;
    out.k2 = d;
    promoted = true;
  } else {
    // All inputs are finite (checked above), so bucket <= 509 and the
    // tight edge is always representable (at worst +inf, which selects
    // zero finite elements).
    out.thres1 = std::bit_cast<float>(edge1);
  }

  // Split the candidates across the refined edge: at or above the tight
  // edge they are certain (promoted: at or above the loose edge), inside
  // [edge2, edge1) they form the band, ascending index order preserved.
  if (certain != nullptr || band != nullptr) {
    const uint32_t certain_edge = promoted ? edge2 : edge1;
    for (size_t c = 0; c < n_cand; ++c) {
      if (cand_bits[c] >= certain_edge) {
        sure.push_back(cand_idx[c]);
      } else if (cand_bits[c] >= edge2 && band != nullptr) {
        band->push_back(cand_idx[c]);
      }
    }
    HITOPK_CHECK_EQ(sure.size(), out.k1);
  }
  return out;
}

SparseTensor select_topk(std::span<const float> x, size_t k, TopKSelect algo) {
  SparseTensor out;
  out.dense_size = x.size();
  k = std::min(k, x.size());
  if (k == 0) return out;
  if (algo == TopKSelect::kNthElement || x.size() < kHistogramMinSize) {
    return select_topk_nth(x, k);
  }

  // Counting pass on the log-spaced bit buckets (slot == bucket; slot
  // kThresholdBuckets stays empty) and suffix scan to the boundary.
  Scratch<size_t> counts(kSlots, /*zeroed=*/true);
  histogram_count(x, counts.span(),
                  [](float v) { return magnitude_bits_bucket(v); });
  const BoundaryScan scan = scan_boundary(counts.span(), k);

  // Gather pass.  Sizes are known exactly from the histogram: scan.above
  // certain winners go straight into the output index array, and the
  // boundary bucket's elements become repair candidates carrying their
  // exact keys — no reallocation, no second counting.  Two-phase like the
  // counting pass: a constant-trip block extracts magnitude bits
  // (vectorizable), then a scalar block compares them against the bucket's
  // bit bounds — almost always "below, skip" for sparse selections.
  out.indices.resize(k);
  uint32_t* chosen = out.indices.data();
  size_t n_chosen = 0;
  Scratch<size_t> cand_buf(counts[scan.boundary]);
  size_t* cand = cand_buf.data();
  size_t n_cand = 0;
  // First magnitude-bit pattern inside / above the boundary bucket.  For
  // boundary 511 `above_bits` wraps to 0x80000000, which no magnitude
  // reaches — exactly "nothing is above the top bucket".
  const uint32_t lower_bits = scan.boundary << 22;
  const uint32_t above_bits = (scan.boundary + 1) << 22;
  {
    constexpr size_t kBlock = 1024;
    uint32_t mag[kBlock];
    const float* p = x.data();
    auto bits_block = [&](size_t base, size_t count) {
      for (size_t j = 0; j < count; ++j) mag[j] = magnitude_bits(p[base + j]);
    };
    auto gather_block = [&](size_t base, size_t count) {
      for (size_t j = 0; j < count; ++j) {
        const uint32_t m = mag[j];
        if (m < lower_bits) continue;  // common case first
        const size_t i = base + j;
        if (m >= above_bits) {
          chosen[n_chosen++] = static_cast<uint32_t>(i);
        } else {
          cand[n_cand++] = (static_cast<size_t>(m) << 32) |
                           (~static_cast<uint32_t>(i));
        }
      }
    };
    const size_t full_end = x.size() - x.size() % kBlock;
    for (size_t base = 0; base < full_end; base += kBlock) {
      bits_block(base, kBlock);
      gather_block(base, kBlock);
    }
    bits_block(full_end, x.size() - full_end);
    gather_block(full_end, x.size() - full_end);
  }
  HITOPK_CHECK_EQ(n_chosen, scan.above);
  HITOPK_CHECK_EQ(n_cand, counts[scan.boundary]);

  // Exact boundary repair: the remaining (k - above) slots go to the best
  // candidates under the reference comparator.  nth_element over just the
  // boundary bucket (a half-octave of magnitudes; all of d only when every
  // element shares one bucket) replaces the reference's nth_element over d.
  const size_t need = k - scan.above;
  if (need < n_cand) {
    std::nth_element(cand, cand + (need - 1), cand + n_cand,
                     std::greater<size_t>());
  }
  for (size_t i = 0; i < need; ++i) {
    chosen[n_chosen++] = ~static_cast<uint32_t>(cand[i]);
  }

  std::sort(out.indices.begin(), out.indices.end());
  out.values.resize(k);
  for (size_t i = 0; i < k; ++i) out.values[i] = x[out.indices[i]];
  return out;
}

float topk_threshold(std::span<const float> x, size_t k, TopKSelect algo) {
  if (k == 0 || x.empty()) return 0.0f;
  k = std::min(k, x.size());
  if (algo == TopKSelect::kNthElement || x.size() < kHistogramMinSize) {
    return topk_threshold_nth(x, k);
  }

  Scratch<size_t> counts(kSlots, /*zeroed=*/true);
  histogram_count(x, counts.span(),
                  [](float v) { return magnitude_bits_bucket(v); });
  const BoundaryScan scan = scan_boundary(counts.span(), k);

  // The k-th magnitude overall is the (k - above)-th largest within the
  // boundary bucket (same set argument as select_topk), so the exact repair
  // only has to rank the boundary bucket's magnitude bits.
  Scratch<uint32_t> cand_buf(counts[scan.boundary]);
  uint32_t* cand = cand_buf.data();
  size_t n_cand = 0;
  for (const float v : x) {
    const uint32_t mag = magnitude_bits(v);
    if ((mag >> 22) == scan.boundary) cand[n_cand++] = mag;
  }
  HITOPK_CHECK_EQ(n_cand, counts[scan.boundary]);
  const size_t need = k - scan.above;
  std::nth_element(cand, cand + (need - 1), cand + n_cand,
                   std::greater<uint32_t>());
  return std::bit_cast<float>(cand[need - 1]);
}

}  // namespace hitopk::compress
