// Error-feedback (residual accumulation) for sparsified SGD.
//
// Top-k sparsification discards most gradient coordinates; convergence
// guarantees (Stich et al. 2018; Karimireddy et al. 2019, both cited by the
// paper) require feeding the discarded remainder back into the next step:
//
//   acc_t   = grad_t + residual_{t-1}
//   sent_t  = TopK(acc_t, k)
//   residual_t = acc_t - dense(sent_t)
//
// The convergence experiments (Fig. 10 / Table 2) run this exact loop.
#pragma once

#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "compress/sparse_tensor.h"
#include "core/tensor.h"

namespace hitopk::compress {

class ErrorFeedback {
 public:
  // Pre-creates a zero residual of `size` elements for `key` if absent.
  // apply/absorb insert missing entries themselves, which mutates the map;
  // callers that run apply/absorb on distinct keys from parallel workers
  // (HiTopKComm's per-rank loop) must ensure() every key serially first so
  // the workers only ever look entries up.
  void ensure(const std::string& key, size_t size);

  // grad += residual[key]; a zero residual is created on first use.
  void apply(const std::string& key, std::span<float> grad);

  // residual[key] = grad - dense(sent): the uncommunicated remainder.  At
  // coordinates not in `sent` this is grad itself; at sent coordinates it is
  // grad[idx] - sent.values[i] — exactly zero (+0.0) when the sent value is
  // the gradient value, and the *quantization error* when the value crossed
  // a lossy wire codec first (compress/wire_codec.h).  Feeding that error
  // back is what keeps quantized top-k unbiased in the EF sense
  // (Karimireddy et al. 2019).  `sent.indices` must index into grad.
  void absorb(const std::string& key, std::span<const float> grad,
              const SparseTensor& sent);

  // Fused apply that also primes the residual for absorb_primed():
  // grad += residual[key] AND residual[key] = the compensated gradient, in
  // one pass over the buffer.  Callers that follow the standard
  // apply -> select -> absorb sequence WITHOUT touching grad in between
  // (every EF user in this repository) can then finish with
  // absorb_primed(), which only zeroes the sent coordinates — replacing
  // absorb()'s full-gradient copy with k scattered writes.  Bitwise
  // identical to apply() + absorb() under that contract.
  void apply_priming(const std::string& key, std::span<float> grad);

  // Completes a apply_priming() exchange: subtracts sent.values from the
  // primed residual at sent.indices (leaving +0.0 for exact sends, the
  // quantization error for lossy ones).  The residual must not have been
  // re-primed for another gradient in between.
  void absorb_primed(const std::string& key, const SparseTensor& sent);

  // Sum of squared residual magnitudes across all keys (a diagnostic the
  // convergence bench tracks: bounded residual norm is the EF invariant).
  // Accumulated in sorted-key order, so the value is a function of the
  // stored residuals alone — independent of map insertion history, which a
  // checkpoint restore cannot reproduce.
  double residual_sq_norm() const;

  // Drops all stored residuals (e.g. between convergence runs).
  void reset();

  size_t num_tensors() const { return residuals_.size(); }

  // ---- state export / elastic remap (checkpointing and world rescale) ----

  // All stored keys, sorted (a canonical order for serialization).
  std::vector<std::string> keys() const;

  bool has(const std::string& key) const { return residuals_.count(key) > 0; }

  // Read-only view of an existing residual; throws CheckError if absent.
  std::span<const float> residual(const std::string& key) const;

  // Overwrites (or creates) the residual for `key` from a checkpoint.
  void set(const std::string& key, std::span<const float> values);

  // Removes the residual for `key` and returns it (empty Tensor if absent).
  // The building block for elastic re-keying: take() every affected entry,
  // then set()/accumulate() under the new keys — no in-place rename that
  // could collide.
  Tensor take(const std::string& key);

  // residual[key] += values (created zeroed if absent).  Used to fold a dead
  // worker's residual into a survivor so the total unsent gradient mass is
  // preserved across a world shrink.
  void accumulate(const std::string& key, std::span<const float> values);

  // Drops the residual for `key` if present (a worker that left the world
  // and whose mass was folded elsewhere).
  void erase(const std::string& key) { residuals_.erase(key); }

 private:
  // Finds (or, on first use, creates) the residual for `key`.
  Tensor& entry(const std::string& key, size_t size);

  std::unordered_map<std::string, Tensor> residuals_;
};

}  // namespace hitopk::compress
