#!/usr/bin/env python3
"""Diff an emitted BENCH_*.json against its checked-in reference.

Usage: check_bench_regression.py REF.json NEW.json [--tolerance 0.25]
           [--sim-tolerance 1e-6] [--gate-wall]

Field classes (by key name, recursively):
  - booleans ("bit_identical"): a reference `true` must stay `true`.
  - "speedup": machine-portable ratio of two wall times measured in the
    same process; regression if NEW < REF * (1 - tolerance).
  - "mass_overlap": deterministic selection quality; regression if it drops
    by more than 0.005.
  - keys under a "sim" subtree: deterministic port-clock simulation times,
    identical on every machine; any relative difference beyond
    --sim-tolerance is a regression (this is the timing-model gate).
  - "*_s" / "*seconds": absolute wall clocks.  Reported, but only gated
    with --gate-wall (CI runners and the 1-vCPU reference container have
    different hardware; the speedup ratios are the portable gate).
  - integer metadata (d, k, elems, elems_m): schema sanity, must match
    exactly ("reps" is a stability knob, not schema, and is not gated).

Exit status: 0 = no regressions, 1 = regressions (or schema mismatch).
"""

import argparse
import json
import sys

WALL_SUFFIXES = ("_s", "seconds")
META_KEYS = {"d", "k", "elems", "elems_m"}


class Checker:
    def __init__(self, tolerance, sim_tolerance, gate_wall):
        self.tolerance = tolerance
        self.sim_tolerance = sim_tolerance
        self.gate_wall = gate_wall
        self.failures = []
        self.notes = []

    def fail(self, path, message):
        self.failures.append(f"{path}: {message}")

    def note(self, path, message):
        self.notes.append(f"{path}: {message}")

    def compare(self, ref, new, path="$", in_sim=False):
        if isinstance(ref, dict):
            if not isinstance(new, dict):
                return self.fail(path, f"expected object, got {type(new).__name__}")
            for key, ref_value in ref.items():
                if key not in new:
                    self.fail(f"{path}.{key}", "missing in new output")
                    continue
                self.compare(ref_value, new[key], f"{path}.{key}",
                             in_sim or key == "sim")
        elif isinstance(ref, list):
            if not isinstance(new, list) or len(ref) != len(new):
                return self.fail(path, "array shape changed")
            for i, (r, n) in enumerate(zip(ref, new)):
                self.compare(r, n, f"{path}[{i}]", in_sim)
        elif isinstance(ref, bool):
            if ref and not new:
                self.fail(path, "was true in reference, now false")
        elif isinstance(ref, (int, float)):
            self.compare_number(path, float(ref), float(new), in_sim)
        else:
            if ref != new:
                self.note(path, f"changed: {ref!r} -> {new!r}")

    def compare_number(self, path, ref, new, in_sim):
        key = path.rsplit(".", 1)[-1].split("[")[0]
        if key in META_KEYS:
            if ref != new:
                self.fail(path, f"metadata changed: {ref:g} -> {new:g}")
        elif in_sim:
            denom = max(abs(ref), 1e-300)
            rel = abs(new - ref) / denom
            if rel > self.sim_tolerance:
                self.fail(path, f"simulated time drifted: {ref:g} -> {new:g} "
                                f"(rel {rel:.2e}; deterministic field)")
        elif key == "speedup":
            floor = ref * (1.0 - self.tolerance)
            if new < floor:
                self.fail(path, f"speedup regressed: {ref:.2f} -> {new:.2f} "
                                f"(floor {floor:.2f})")
            else:
                self.note(path, f"speedup {ref:.2f} -> {new:.2f}")
        elif key == "mass_overlap":
            if new < ref - 0.005:
                self.fail(path, f"selection quality dropped: {ref:.4f} -> {new:.4f}")
        elif key.endswith(WALL_SUFFIXES):
            ratio = new / ref if ref > 0 else float("inf")
            message = f"wall {ref:.4f}s -> {new:.4f}s ({ratio:.2f}x ref)"
            if self.gate_wall and new > ref * (1.0 + self.tolerance):
                self.fail(path, "wall-time regression: " + message)
            else:
                self.note(path, message)
        else:
            self.note(path, f"{ref:g} -> {new:g}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("ref")
    parser.add_argument("new")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional regression for speedups "
                             "(and wall times with --gate-wall)")
    parser.add_argument("--sim-tolerance", type=float, default=1e-6,
                        help="allowed relative drift of deterministic "
                             "simulated times")
    parser.add_argument("--gate-wall", action="store_true",
                        help="also fail on absolute wall-time regressions "
                             "(same-machine comparisons only)")
    args = parser.parse_args()

    with open(args.ref) as f:
        ref = json.load(f)
    with open(args.new) as f:
        new = json.load(f)

    checker = Checker(args.tolerance, args.sim_tolerance, args.gate_wall)
    checker.compare(ref, new)

    print(f"== {args.new} vs reference {args.ref} ==")
    for note in checker.notes:
        print(f"  info  {note}")
    if checker.failures:
        for failure in checker.failures:
            print(f"  FAIL  {failure}")
        print(f"{len(checker.failures)} regression(s).")
        return 1
    print("no regressions.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
