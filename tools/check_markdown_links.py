#!/usr/bin/env python3
"""Checks that relative markdown links resolve to real files.

Usage: check_markdown_links.py <file-or-directory>...

Scans every given markdown file (directories are searched recursively for
*.md) for inline links/images `[text](target)`. External targets (http/https/
mailto) and pure in-page anchors (#...) are skipped; everything else is
resolved relative to the containing file and must exist. Exits non-zero
listing every broken link, so documented paths can never rot.
"""
import re
import sys
from pathlib import Path

# Inline links/images. Deliberately simple: no reference-style links are
# used in this repository, and code spans are stripped first.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
CODE_RE = re.compile(r"`[^`]*`")


def md_files(paths):
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.md"))
        else:
            yield path


def check(path: Path):
    broken = []
    text = path.read_text(encoding="utf-8")
    for line_number, line in enumerate(text.splitlines(), start=1):
        for match in LINK_RE.finditer(CODE_RE.sub("", line)):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            if not (path.parent / relative).exists():
                broken.append((line_number, target))
    return broken


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = 0
    checked = 0
    for path in md_files(argv[1:]):
        checked += 1
        for line_number, target in check(path):
            print(f"{path}:{line_number}: broken link -> {target}")
            failures += 1
    print(f"checked {checked} markdown file(s), {failures} broken link(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
