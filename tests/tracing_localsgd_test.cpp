// Tests for cluster transfer tracing and the local-SGD convergence variant.
#include <gtest/gtest.h>

#include <sstream>

#include "collectives/ring.h"
#include "simnet/cluster.h"
#include "train/convergence.h"
#include "train/synthetic.h"

namespace hitopk {
namespace {

using simnet::Cluster;
using simnet::LinkParams;
using simnet::Topology;

Topology tiny() {
  return Topology(2, 2, LinkParams{1e-6, 1e-9}, LinkParams{1e-5, 1e-8});
}

// ------------------------------------------------------------ tracing
TEST(Tracing, DisabledByDefault) {
  Cluster c(tiny());
  c.send(0, 1, 100, 0.0);
  EXPECT_TRUE(c.trace().empty());
}

TEST(Tracing, RecordsTransfers) {
  Cluster c(tiny());
  c.enable_tracing();
  c.send(0, 1, 100, 0.0);
  c.send(1, 2, 200, 0.0);
  ASSERT_EQ(c.trace().size(), 2u);
  EXPECT_EQ(c.trace()[0].src, 0);
  EXPECT_EQ(c.trace()[0].dst, 1);
  EXPECT_EQ(c.trace()[0].bytes, 100u);
  EXPECT_FALSE(c.trace()[0].inter_node);
  EXPECT_TRUE(c.trace()[1].inter_node);
  EXPECT_GT(c.trace()[1].duration, c.trace()[0].duration);
}

TEST(Tracing, ResetClearsEvents) {
  Cluster c(tiny());
  c.enable_tracing();
  c.send(0, 1, 100, 0.0);
  c.reset();
  EXPECT_TRUE(c.trace().empty());
}

TEST(Tracing, CollectiveEventCountMatchesSchedule) {
  // Ring all-reduce over G ranks: 2 * (G-1) steps x G transfers.
  Cluster c(tiny());
  c.enable_tracing();
  coll::ring_allreduce(c, coll::world_group(c.topology()), {}, 400, coll::WireDtype::kFp32, 0.0);
  EXPECT_EQ(c.trace().size(), 2u * 3u * 4u);
}

TEST(Tracing, ChromeTraceIsWellFormedJson) {
  Cluster c(tiny());
  c.enable_tracing();
  c.send(0, 2, 1000, 0.0);
  std::ostringstream os;
  c.write_chrome_trace(os, "test");
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"inter 0->2\""), std::string::npos);
  EXPECT_NE(json.find("\"bytes\":1000"), std::string::npos);
  // Balanced braces (cheap structural check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

// ------------------------------------------------------------ local SGD
train::ConvergenceOptions local_options(int period, int epochs = 10) {
  train::ConvergenceOptions options;
  options.algorithm = train::ConvergenceAlgorithm::kLocalSgd;
  options.local_sgd_period = period;
  options.epochs = epochs;
  options.nodes = 2;
  options.gpus_per_node = 2;
  options.local_batch = 32;
  return options;
}

TEST(LocalSgd, PeriodOneMatchesDenseClosely) {
  // H = 1 averages after every step: mathematically close to dense gradient
  // averaging (momentum states differ, so allow a small gap).
  auto task_a = train::make_vision_task(61);
  const auto local = train::run_convergence(*task_a, local_options(1));
  train::ConvergenceOptions dense_options = local_options(1);
  dense_options.algorithm = train::ConvergenceAlgorithm::kDense;
  auto task_b = train::make_vision_task(61);
  const auto dense = train::run_convergence(*task_b, dense_options);
  EXPECT_NEAR(local.final_quality, dense.final_quality, 0.06);
}

TEST(LocalSgd, LearnsWithModeratePeriod) {
  auto task = train::make_vision_task(67);
  const auto result = train::run_convergence(*task, local_options(4));
  EXPECT_GT(result.final_quality, 0.75);
}

TEST(LocalSgd, LargerPeriodUsesLessCommunication) {
  auto task_a = train::make_vision_task(71);
  const auto frequent = train::run_convergence(*task_a, local_options(1, 4));
  auto task_b = train::make_vision_task(71);
  const auto rare = train::run_convergence(*task_b, local_options(8, 4));
  EXPECT_LT(rare.simulated_comm_seconds, frequent.simulated_comm_seconds);
}

TEST(LocalSgd, NameRoundTrip) {
  EXPECT_EQ(train::convergence_algorithm_name(
                train::ConvergenceAlgorithm::kLocalSgd),
            "LocalSGD");
  EXPECT_EQ(train::convergence_algorithm_from_name("localsgd"),
            train::ConvergenceAlgorithm::kLocalSgd);
}

}  // namespace
}  // namespace hitopk
