// Tests for the command-line flag parser.
#include <gtest/gtest.h>

#include "core/flags.h"

namespace hitopk {
namespace {

Flags parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsSyntax) {
  const Flags f = parse({"--model=vgg19", "--batch=128"});
  EXPECT_EQ(f.get("model"), "vgg19");
  EXPECT_EQ(f.get_int("batch", 0), 128);
}

TEST(Flags, SpaceSyntax) {
  const Flags f = parse({"--model", "resnet50", "--density", "0.01"});
  EXPECT_EQ(f.get("model"), "resnet50");
  EXPECT_DOUBLE_EQ(f.get_double("density", 0.0), 0.01);
}

TEST(Flags, BareFlagIsBooleanTrue) {
  const Flags f = parse({"--verbose", "--model=x"});
  EXPECT_TRUE(f.get_bool("verbose"));
  EXPECT_FALSE(f.get_bool("quiet"));
  EXPECT_TRUE(f.get_bool("quiet", true));
}

TEST(Flags, TrailingBareFlag) {
  const Flags f = parse({"--model=x", "--no-pto"});
  EXPECT_TRUE(f.get_bool("no-pto"));
}

TEST(Flags, FallbacksWhenMissing) {
  const Flags f = parse({});
  EXPECT_EQ(f.get("model", "resnet50"), "resnet50");
  EXPECT_EQ(f.get_int("nodes", 16), 16);
  EXPECT_DOUBLE_EQ(f.get_double("density", 0.001), 0.001);
  EXPECT_FALSE(f.has("model"));
}

TEST(Flags, PositionalArgumentsCollected) {
  const Flags f = parse({"input.txt", "--k=2", "output.txt"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.txt");
  EXPECT_EQ(f.positional()[1], "output.txt");
}

TEST(Flags, BooleanValueSpellings) {
  const Flags f = parse({"--a=true", "--b=1", "--c=yes", "--d=on", "--e=false",
                         "--f=0"});
  EXPECT_TRUE(f.get_bool("a"));
  EXPECT_TRUE(f.get_bool("b"));
  EXPECT_TRUE(f.get_bool("c"));
  EXPECT_TRUE(f.get_bool("d"));
  EXPECT_FALSE(f.get_bool("e"));
  EXPECT_FALSE(f.get_bool("f"));
}

TEST(Flags, LastValueWins) {
  const Flags f = parse({"--k=1", "--k=2"});
  EXPECT_EQ(f.get_int("k", 0), 2);
}

}  // namespace
}  // namespace hitopk
