// Unit tests for the core substrate: checks, RNG, tensor, half, stats, table.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <sstream>

#include "core/check.h"
#include "core/half.h"
#include "core/rng.h"
#include "core/stats.h"
#include "core/table.h"
#include "core/tensor.h"

namespace hitopk {
namespace {

// ---------------------------------------------------------------- check
TEST(Check, PassingConditionDoesNotThrow) {
  EXPECT_NO_THROW(HITOPK_CHECK(1 + 1 == 2));
}

TEST(Check, FailingConditionThrowsCheckError) {
  EXPECT_THROW(HITOPK_CHECK(false) << "context", CheckError);
}

TEST(Check, MessageContainsConditionAndContext) {
  try {
    int k = 7;
    HITOPK_CHECK(k < 5) << "k was" << k;
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("k < 5"), std::string::npos);
    EXPECT_NE(what.find("k was 7"), std::string::npos);
  }
}

TEST(Check, ComparisonMacros) {
  EXPECT_NO_THROW(HITOPK_CHECK_EQ(3, 3));
  EXPECT_NO_THROW(HITOPK_CHECK_LT(2, 3));
  EXPECT_THROW(HITOPK_CHECK_GT(2, 3), CheckError);
  EXPECT_THROW(HITOPK_CHECK_NE(5, 5), CheckError);
}

// ---------------------------------------------------------------- rng
TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexInRange) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_index(17), 17u);
  }
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(17);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(19);
  const int n = 100000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.fork();
  // The child stream must not replay the parent stream.
  Rng parent_copy(23);
  (void)parent_copy.next_u64();  // same advance as fork consumed
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next_u64() == parent_copy.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, UniformIndexZeroThrows) {
  Rng rng(31);
  EXPECT_THROW(rng.uniform_index(0), CheckError);
}

// ---------------------------------------------------------------- tensor
TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
}

TEST(Tensor, OneDimensionalConstruction) {
  Tensor t(5);
  EXPECT_EQ(t.size(), 5u);
  EXPECT_EQ(t.rows(), 5u);
  EXPECT_EQ(t.cols(), 1u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, TwoDimensionalAccess) {
  Tensor t(2, 3);
  t.at(1, 2) = 42.0f;
  EXPECT_EQ(t.at(1, 2), 42.0f);
  EXPECT_EQ(t[5], 42.0f);  // row-major
  EXPECT_THROW(t.at(2, 0), CheckError);
}

TEST(Tensor, FromValues) {
  Tensor t = Tensor::from({1.0f, -2.0f, 3.0f});
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t[1], -2.0f);
}

TEST(Tensor, From2dShapeMismatchThrows) {
  EXPECT_THROW(Tensor::from(2, 2, {1.0f, 2.0f, 3.0f}), CheckError);
}

TEST(Tensor, ElementwiseArithmetic) {
  Tensor a = Tensor::from({1.0f, 2.0f, 3.0f});
  Tensor b = Tensor::from({10.0f, 20.0f, 30.0f});
  a += b;
  EXPECT_EQ(a[2], 33.0f);
  a -= b;
  EXPECT_EQ(a[2], 3.0f);
  a *= 2.0f;
  EXPECT_EQ(a[0], 2.0f);
}

TEST(Tensor, MismatchedAddThrows) {
  Tensor a(3), b(4);
  EXPECT_THROW(a += b, CheckError);
}

TEST(Tensor, Reductions) {
  Tensor t = Tensor::from({3.0f, -4.0f});
  EXPECT_FLOAT_EQ(t.sum(), -1.0f);
  EXPECT_FLOAT_EQ(t.l2_norm(), 5.0f);
  EXPECT_FLOAT_EQ(t.abs_mean(), 3.5f);
  EXPECT_FLOAT_EQ(t.abs_max(), 4.0f);
}

TEST(Tensor, CountAbsGe) {
  Tensor t = Tensor::from({0.5f, -1.5f, 2.5f, -0.1f});
  EXPECT_EQ(t.count_abs_ge(1.0f), 2u);
  EXPECT_EQ(t.count_abs_ge(0.0f), 4u);
  EXPECT_EQ(t.count_abs_ge(3.0f), 0u);
}

TEST(Tensor, SliceViewsShareStorage) {
  Tensor t(10);
  auto view = t.slice(2, 3);
  view[0] = 9.0f;
  EXPECT_EQ(t[2], 9.0f);
  EXPECT_THROW(t.slice(8, 3), CheckError);
}

TEST(Tensor, FillRandomRespectsBounds) {
  Rng rng(37);
  Tensor t(1000);
  t.fill_uniform(rng, -2.0f, 2.0f);
  for (size_t i = 0; i < t.size(); ++i) {
    EXPECT_GE(t[i], -2.0f);
    EXPECT_LT(t[i], 2.0f);
  }
}

TEST(TensorOps, AddIntoAndZero) {
  Tensor a = Tensor::from({1.0f, 2.0f});
  Tensor b = Tensor::from({3.0f, 4.0f});
  tensor_ops::add_into(a.span(), b.span());
  EXPECT_EQ(a[1], 6.0f);
  tensor_ops::zero(a.span());
  EXPECT_EQ(a[0], 0.0f);
}

// ---------------------------------------------------------------- half
TEST(Half, ExactSmallValuesRoundTrip) {
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 1024.0f, -0.25f}) {
    EXPECT_EQ(half_to_float(float_to_half(v)), v) << v;
  }
}

TEST(Half, RoundingErrorBounded) {
  Rng rng(41);
  for (int i = 0; i < 10000; ++i) {
    const float v = static_cast<float>(rng.uniform(-100.0, 100.0));
    const float r = half_to_float(float_to_half(v));
    // FP16 has 11 significand bits: relative error <= 2^-11.
    EXPECT_NEAR(r, v, std::fabs(v) * 0x1.0p-10 + 1e-7f) << v;
  }
}

TEST(Half, OverflowToInfinity) {
  const Half h = float_to_half(1e6f);
  EXPECT_TRUE(std::isinf(half_to_float(h)));
  const Half hneg = float_to_half(-1e6f);
  EXPECT_TRUE(std::isinf(half_to_float(hneg)));
  EXPECT_LT(half_to_float(hneg), 0.0f);
}

TEST(Half, NanPreserved) {
  const Half h = float_to_half(std::numeric_limits<float>::quiet_NaN());
  EXPECT_TRUE(std::isnan(half_to_float(h)));
}

TEST(Half, SubnormalRange) {
  // Smallest positive normal half is 2^-14; below that we get subnormals.
  const float tiny = 0x1.0p-20f;
  const float r = half_to_float(float_to_half(tiny));
  EXPECT_NEAR(r, tiny, tiny * 0.05f);
}

TEST(Half, UnderflowToZero) {
  EXPECT_EQ(half_to_float(float_to_half(1e-30f)), 0.0f);
}

TEST(Half, RoundToNearestEvenTies) {
  // Half spacing in [1, 2) is 2^-10; a float exactly halfway between two
  // representable halves must round to the even mantissa.
  EXPECT_EQ(half_to_float(float_to_half(1.0f + 0x1.0p-11f)), 1.0f);
  EXPECT_EQ(half_to_float(float_to_half(1.0f + 3 * 0x1.0p-11f)),
            1.0f + 0x1.0p-9f);
  // Not-quite-halfway rounds to nearest, not to even.
  EXPECT_EQ(half_to_float(float_to_half(1.0f + 0x1.8p-11f)),
            1.0f + 0x1.0p-10f);
}

TEST(Half, DenormalTiesAndBoundaries) {
  // Smallest positive subnormal half is 2^-24.  Exactly half of it ties to
  // even (zero); anything above the tie rounds up to 2^-24.
  EXPECT_EQ(half_to_float(float_to_half(0x1.0p-24f)), 0x1.0p-24f);
  EXPECT_EQ(half_to_float(float_to_half(0x1.0p-25f)), 0.0f);
  EXPECT_EQ(half_to_float(float_to_half(0x1.8p-25f)), 0x1.0p-24f);
  // The sign of an underflowed zero survives.
  EXPECT_TRUE(std::signbit(half_to_float(float_to_half(-0x1.0p-25f))));
  // Largest subnormal and smallest normal half round trip exactly.
  EXPECT_EQ(half_to_float(float_to_half(0x1.ff8p-15f)), 0x1.ff8p-15f);
  EXPECT_EQ(half_to_float(float_to_half(0x1.0p-14f)), 0x1.0p-14f);
}

TEST(Half, OverflowBoundaryTies) {
  // 65504 is the largest finite half; 65520 is exactly halfway to the next
  // grid point (65536, not representable) and ties upward to infinity.
  EXPECT_EQ(half_to_float(float_to_half(65504.0f)), 65504.0f);
  EXPECT_TRUE(std::isinf(half_to_float(float_to_half(65520.0f))));
  EXPECT_EQ(half_to_float(float_to_half(65519.0f)), 65504.0f);
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(half_to_float(float_to_half(inf)), inf);
  EXPECT_EQ(half_to_float(float_to_half(-inf)), -inf);
}

TEST(Half, BulkConversionMatchesScalar) {
  Rng rng(43);
  std::vector<float> src(257);
  for (auto& v : src) v = static_cast<float>(rng.normal(0.0, 10.0));
  std::vector<Half> halves(src.size());
  std::vector<float> dst(src.size());
  float_to_half(src, halves);
  half_to_float(halves, dst);
  for (size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(dst[i], half_to_float(float_to_half(src[i])));
  }
}

TEST(Half, RoundTripIsIdempotent) {
  Rng rng(47);
  std::vector<float> v(100);
  for (auto& x : v) x = static_cast<float>(rng.normal(0.0, 1.0));
  fp16_round_trip(v);
  auto once = v;
  fp16_round_trip(v);
  EXPECT_EQ(v, once);
}

// ---------------------------------------------------------------- stats
TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(Percentile, MedianAndExtremes) {
  std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
}

// ---------------------------------------------------------------- table
TEST(TablePrinter, AlignedOutput) {
  TablePrinter table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22222"});
  std::ostringstream os;
  table.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22222"), std::string::npos);
  EXPECT_NE(s.find("|---"), std::string::npos);
}

TEST(TablePrinter, CellCountMismatchThrows) {
  TablePrinter table({"a", "b"});
  EXPECT_THROW(table.add_row({"only one"}), CheckError);
}

TEST(TablePrinter, Formatting) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::fmt_int(42), "42");
  EXPECT_EQ(TablePrinter::fmt_percent(0.905, 1), "90.5%");
}

}  // namespace
}  // namespace hitopk
