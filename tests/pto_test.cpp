// Tests for the parallel tensor operator and the LARS/SGD/LAMB optimizers.
#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "models/calibration.h"
#include "models/model_zoo.h"
#include "pto/lars.h"
#include "pto/pto.h"
#include "simgpu/gpu_model.h"
#include "simnet/cluster.h"

namespace hitopk::pto {
namespace {

using simnet::Cluster;
using simnet::Topology;

// ------------------------------------------------------------ plan
TEST(PtoPlan, SlicesPartitionItems) {
  PtoPlan plan{128, 161};  // the paper's example: 161 layers on 128 GPUs
  size_t total = 0;
  for (int rank = 0; rank < 128; ++rank) {
    const auto slice = plan.slice(rank);
    EXPECT_EQ(slice.begin, total);
    total += slice.count;
    EXPECT_LE(slice.count, 2u);  // "the first GPU calculates 1 to 2 layers"
    EXPECT_GE(slice.count, 1u);
  }
  EXPECT_EQ(total, 161u);
  EXPECT_EQ(plan.max_slice(), 2u);
}

TEST(PtoCompute, MatchesSerialComputation) {
  PtoPlan plan{7, 100};
  auto op = [](size_t i) { return static_cast<float>(i * i % 13); };
  const auto result = pto_compute(plan, op);
  ASSERT_EQ(result.size(), 100u);
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ(result[i], op(i));
}

TEST(PtoAllGather, ScalarGatherIsCheap) {
  // 161 scalars across 128 GPUs: far under a millisecond of wire time.
  Cluster cluster(Topology::tencent_cloud(16, 8));
  const double done = pto_allgather_seconds(cluster, 161, 4, 0.0);
  EXPECT_LT(done, 2e-3);
  EXPECT_GT(done, 0.0);
}

TEST(PtoTiming, MatchesPaperLarsSpeedup) {
  // §5.4: LARS 11 ms -> 7 ms on ResNet-50 and 30 ms -> 14 ms on
  // Transformer with PTO on 128 GPUs ("about 2x speedups").
  using models::Calibration;
  Cluster cluster(Topology::tencent_cloud(16, 8));
  const PtoTiming resnet = pto_timing(
      cluster, 161, 4, Calibration::lars_resnet50_seconds,
      Calibration::pto_framework_overhead_resnet50);
  EXPECT_NEAR(resnet.pto_seconds, 7e-3, 2e-3);
  EXPECT_GT(resnet.speedup(), 1.3);

  cluster.reset();
  const PtoTiming transformer = pto_timing(
      cluster, 452, 4, Calibration::lars_transformer_seconds,
      Calibration::pto_framework_overhead_transformer);
  EXPECT_NEAR(transformer.pto_seconds, 14e-3, 3e-3);
  EXPECT_GT(transformer.speedup(), 1.8);
}

TEST(PtoTiming, NoBenefitOnOneGpu) {
  Cluster cluster(Topology::tencent_cloud(1, 1));
  const PtoTiming t = pto_timing(cluster, 161, 4, 11e-3, 0.0);
  EXPECT_NEAR(t.pto_seconds, t.serial_seconds, 1e-9);
}

// ------------------------------------------------------------ lars rate
TEST(LarsRate, MatchesEquation11) {
  LarsConfig config;
  config.trust_coefficient = 0.001;
  config.weight_decay = 5e-5;
  config.epsilon = 0.0;
  const float w = 2.0f, g = 0.5f;
  const float expected =
      0.001f * w / (g + 5e-5f * w);
  EXPECT_NEAR(lars_rate(config, w, g), expected, 1e-9f);
}

TEST(LarsRate, ZeroWeightNormGivesUnitRate) {
  EXPECT_EQ(lars_rate(LarsConfig{}, 0.0f, 1.0f), 1.0f);
}

TEST(LarsRate, LargerGradNormShrinksRate) {
  LarsConfig config;
  EXPECT_GT(lars_rate(config, 1.0f, 0.1f), lars_rate(config, 1.0f, 10.0f));
}

// ------------------------------------------------------------ optimizers
TEST(SgdOptimizer, PlainStepWithoutMomentum) {
  SgdOptimizer sgd(0.0, 0.0);
  Tensor w = Tensor::from({1.0f, 2.0f});
  Tensor g = Tensor::from({0.5f, -0.5f});
  sgd.step("w", w.span(), g.span(), 0.1);
  EXPECT_NEAR(w[0], 0.95f, 1e-6f);
  EXPECT_NEAR(w[1], 2.05f, 1e-6f);
}

TEST(SgdOptimizer, MomentumAccumulates) {
  SgdOptimizer sgd(0.9, 0.0);
  Tensor w = Tensor::from({0.0f});
  Tensor g = Tensor::from({1.0f});
  sgd.step("w", w.span(), g.span(), 1.0);  // v=1, w=-1
  sgd.step("w", w.span(), g.span(), 1.0);  // v=1.9, w=-2.9
  EXPECT_NEAR(w[0], -2.9f, 1e-6f);
}

TEST(SgdOptimizer, WeightDecayPullsTowardZero) {
  SgdOptimizer sgd(0.0, 0.1);
  Tensor w = Tensor::from({1.0f});
  Tensor g = Tensor::from({0.0f});
  sgd.step("w", w.span(), g.span(), 0.5);
  EXPECT_LT(w[0], 1.0f);
}

TEST(LarsOptimizer, RecordsLayerRates) {
  LarsOptimizer lars;
  Rng rng(1);
  Tensor w(100), g(100);
  w.fill_normal(rng, 0.0f, 1.0f);
  g.fill_normal(rng, 0.0f, 1.0f);
  lars.step("layer0", w.span(), g.span(), 0.1);
  EXPECT_GT(lars.last_rate("layer0"), 0.0f);
  EXPECT_EQ(lars.last_rate("unknown"), 0.0f);
}

TEST(LarsOptimizer, StepScaleIndependentOfGradientScale) {
  // The trust ratio normalizes the gradient magnitude: scaling g by 100
  // leaves the first-step weight delta (almost) unchanged.
  LarsOptimizer a, b;
  Rng rng(2);
  Tensor w1(50), g(50);
  w1.fill_normal(rng, 0.0f, 1.0f);
  g.fill_normal(rng, 0.0f, 1.0f);
  Tensor w2 = w1;
  Tensor g_scaled = g;
  g_scaled *= 100.0f;
  a.step("w", w1.span(), g.span(), 0.1);
  b.step("w", w2.span(), g_scaled.span(), 0.1);
  // Compare the update norms.
  float delta1 = 0, delta2 = 0;
  for (size_t i = 0; i < 50; ++i) {
    delta1 += (w1[i]) * (w1[i]);
    delta2 += (w2[i]) * (w2[i]);
  }
  EXPECT_NEAR(std::sqrt(delta1), std::sqrt(delta2), 0.05f * std::sqrt(delta1));
}

TEST(LambOptimizer, ConvergesOnQuadratic) {
  // Minimize f(w) = ||w - target||^2 with LAMB; it must make progress.
  LambOptimizer lamb(0.9, 0.999, 0.0, 1e-6);
  Tensor w(10);
  Tensor target(10);
  target.fill(3.0f);
  double initial_loss = 0, final_loss = 0;
  for (int step = 0; step < 200; ++step) {
    Tensor g(10);
    double loss = 0;
    for (size_t i = 0; i < 10; ++i) {
      g[i] = 2.0f * (w[i] - target[i]);
      loss += (w[i] - target[i]) * (w[i] - target[i]);
    }
    if (step == 0) initial_loss = loss;
    final_loss = loss;
    lamb.step("w", w.span(), g.span(), 0.05);
  }
  EXPECT_LT(final_loss, 0.05 * initial_loss);
}

TEST(Optimizers, IndependentStatePerKey) {
  SgdOptimizer sgd(0.9, 0.0);
  Tensor a = Tensor::from({0.0f});
  Tensor b = Tensor::from({0.0f});
  Tensor g = Tensor::from({1.0f});
  sgd.step("a", a.span(), g.span(), 1.0);
  sgd.step("a", a.span(), g.span(), 1.0);
  sgd.step("b", b.span(), g.span(), 1.0);
  EXPECT_NEAR(a[0], -2.9f, 1e-6f);
  EXPECT_NEAR(b[0], -1.0f, 1e-6f);  // fresh momentum for key "b"
}

// ----------------------------------------- PTO + LARS integration
TEST(PtoLars, PartitionedRatesEqualSerialRates) {
  // Compute the paper's LARS microbench functionally: random w, g per
  // ResNet-50 layer; rates via serial loop and via PTO partition must agree
  // exactly (same inputs on every "GPU").
  const models::ModelSpec spec = models::resnet50();
  Rng rng(3);
  std::vector<Tensor> weights, grads;
  for (const auto& layer : spec.layers) {
    Tensor w(layer.size()), g(layer.size());
    w.fill_normal(rng, 0.0f, 0.1f);
    g.fill_normal(rng, 0.0f, 0.01f);
    weights.push_back(std::move(w));
    grads.push_back(std::move(g));
  }
  LarsConfig config;
  auto rate_of = [&](size_t layer) {
    return lars_rate(config, weights[layer].l2_norm(),
                     grads[layer].l2_norm());
  };
  std::vector<float> serial(spec.num_tensors());
  for (size_t l = 0; l < spec.num_tensors(); ++l) serial[l] = rate_of(l);

  PtoPlan plan{128, spec.num_tensors()};
  const auto partitioned = pto_compute(plan, rate_of);
  ASSERT_EQ(partitioned.size(), serial.size());
  for (size_t l = 0; l < serial.size(); ++l) {
    EXPECT_EQ(partitioned[l], serial[l]) << "layer " << l;
  }
}

}  // namespace
}  // namespace hitopk::pto
