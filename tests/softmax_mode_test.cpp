// Float-vs-double softmax cross-entropy: the fast float path
// (SoftmaxMode::kFloat, polynomial expf + float denominator) must agree with
// the double reference per step to tight tolerances — probabilities,
// losses, and gradients.  Trajectory-level agreement (convergence curves
// within run-to-run noise) is validated by the Fig. 10 harness; these tests
// pin the per-step numerics that make that possible.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "autodiff/tape.h"
#include "core/rng.h"
#include "core/tensor.h"

namespace hitopk::ad {
namespace {

// Restores the process-wide softmax mode when a test exits.
class ScopedSoftmaxMode {
 public:
  explicit ScopedSoftmaxMode(SoftmaxMode mode) : previous_(softmax_mode()) {
    set_softmax_mode(mode);
  }
  ~ScopedSoftmaxMode() { set_softmax_mode(previous_); }

 private:
  SoftmaxMode previous_;
};

struct XentRun {
  double loss = 0.0;
  std::vector<float> probs;
  std::vector<float> grad;
};

XentRun run_xent(SoftmaxMode mode, const Tensor& logits,
                 const std::vector<int>& labels) {
  ScopedSoftmaxMode scoped(mode);
  XentRun out;
  out.grad.assign(logits.size(), 0.0f);
  Tape tape;
  const VarId l = tape.leaf(logits.span(), out.grad, logits.rows(),
                            logits.cols());
  out.loss = tape.softmax_cross_entropy(l, labels);
  const VarId loss_node = l + 1;
  const auto probs = tape.value(loss_node);
  out.probs.assign(probs.begin(), probs.end());
  tape.backward();
  return out;
}

TEST(SoftmaxMode, DefaultIsFloat) {
  EXPECT_EQ(softmax_mode(), SoftmaxMode::kFloat);
}

TEST(SoftmaxMode, FloatMatchesDoubleReference) {
  Rng rng(11);
  const size_t batch = 32, classes = 20;
  // Logit scales from tame to extreme (post-max differences down to -60):
  // the polynomial exp and float accumulation must track the double
  // reference everywhere the training loop can visit.
  for (const float scale : {1.0f, 5.0f, 30.0f}) {
    Tensor logits(batch, classes);
    logits.fill_normal(rng, 0.0f, scale);
    std::vector<int> labels;
    for (size_t i = 0; i < batch; ++i) {
      labels.push_back(static_cast<int>(rng.uniform_index(classes)));
    }
    const XentRun f = run_xent(SoftmaxMode::kFloat, logits, labels);
    const XentRun d = run_xent(SoftmaxMode::kDouble, logits, labels);
    EXPECT_NEAR(f.loss, d.loss, 1e-5 * (1.0 + std::fabs(d.loss)))
        << "scale=" << scale;
    for (size_t i = 0; i < f.probs.size(); ++i) {
      EXPECT_NEAR(f.probs[i], d.probs[i], 2e-6f + 2e-6f * d.probs[i])
          << "scale=" << scale << " prob " << i;
    }
    for (size_t i = 0; i < f.grad.size(); ++i) {
      EXPECT_NEAR(f.grad[i], d.grad[i], 2e-6f) << "scale=" << scale
                                               << " grad " << i;
    }
  }
}

TEST(SoftmaxMode, UniformLogitsExactInBothModes) {
  // exp(0) is exactly 1 in the polynomial path, so uniform logits give the
  // textbook loss log(C) in either mode.
  for (const SoftmaxMode mode : {SoftmaxMode::kFloat, SoftmaxMode::kDouble}) {
    ScopedSoftmaxMode scoped(mode);
    Tape tape;
    Tensor logits(4, 5);
    const double loss = tape.softmax_cross_entropy(
        tape.leaf(logits.span(), {}, 4, 5), std::vector<int>{0, 1, 2, 3});
    EXPECT_NEAR(loss, std::log(5.0), 1e-6);
  }
}

TEST(SoftmaxMode, ProbabilitiesSumToOne) {
  ScopedSoftmaxMode scoped(SoftmaxMode::kFloat);
  Rng rng(13);
  Tensor logits(16, 10);
  logits.fill_normal(rng, 0.0f, 3.0f);
  std::vector<int> labels(16, 0);
  const XentRun f = run_xent(SoftmaxMode::kFloat, logits, labels);
  for (size_t i = 0; i < 16; ++i) {
    float sum = 0.0f;
    for (size_t j = 0; j < 10; ++j) sum += f.probs[i * 10 + j];
    EXPECT_NEAR(sum, 1.0f, 1e-5f) << "row " << i;
  }
}

TEST(SoftmaxMode, ExtremeLogitGapsStayFinite) {
  // A logit 200 below the row max must produce a vanishing probability
  // (the exp argument clamps at -80), never a NaN or an overflow, in the
  // float path.
  ScopedSoftmaxMode scoped(SoftmaxMode::kFloat);
  Tape tape;
  Tensor logits = Tensor::from(1, 3, {100.0f, -100.0f, 99.0f});
  const double loss = tape.softmax_cross_entropy(
      tape.leaf(logits.span(), {}, 1, 3), std::vector<int>{0});
  EXPECT_TRUE(std::isfinite(loss));
  const auto probs = tape.value(1);
  EXPECT_LT(probs[1], 1e-30f);
  EXPECT_GT(probs[0], 0.7f);
}

}  // namespace
}  // namespace hitopk::ad
