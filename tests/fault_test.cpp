// Fault-injection layer: FaultPlan scripts, Cluster::try_send semantics,
// abortable schedule replay, the typed-error split (CheckError invariants vs
// recoverable ConfigError), and the fault-injected training scenario.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <type_traits>
#include <vector>

#include "collectives/hitopkcomm.h"
#include "collectives/ring.h"
#include "collectives/schedule.h"
#include "core/check.h"
#include "core/tensor.h"
#include "simnet/cluster.h"
#include "simnet/fault.h"
#include "train/scenario.h"

namespace hitopk {
namespace {

using simnet::Cluster;
using simnet::FaultPlan;
using simnet::FaultRates;
using simnet::LinkParams;
using simnet::SendOutcome;
using simnet::Topology;

Topology tiny() {
  return Topology(2, 2, LinkParams{1e-6, 1e-9}, LinkParams{1e-5, 1e-8});
}

// ------------------------------------------------------------ FaultPlan
TEST(FaultPlan, EmptyPlanAnswersHealthy) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_TRUE(plan.alive(0, 0.0));
  EXPECT_EQ(plan.next_preemption(0, 0.0), simnet::kNever);
  EXPECT_DOUBLE_EQ(plan.degrade_factor(0, 1.0), 1.0);
  EXPECT_EQ(plan.transient_attempts(0), 0);
}

TEST(FaultPlan, PreemptionWindowAndRecovery) {
  FaultPlan plan;
  plan.preempt(1, 2.0, 5.0);  // dead on [2, 5)
  plan.preempt(2, 3.0);       // dead forever
  EXPECT_FALSE(plan.empty());
  EXPECT_TRUE(plan.alive(1, 1.999));
  EXPECT_FALSE(plan.alive(1, 2.0));
  EXPECT_FALSE(plan.alive(1, 4.999));
  EXPECT_TRUE(plan.alive(1, 5.0));
  EXPECT_FALSE(plan.alive(2, 100.0));
  EXPECT_TRUE(plan.alive(0, 100.0));  // unscripted rank never dies
  EXPECT_DOUBLE_EQ(plan.next_preemption(1, 0.0), 2.0);
  EXPECT_EQ(plan.next_preemption(1, 2.5), simnet::kNever);
  EXPECT_DOUBLE_EQ(plan.next_preemption(2, 3.0), 3.0);
}

TEST(FaultPlan, DegradationWindowsTakeTheMax) {
  FaultPlan plan;
  plan.degrade_node(0, 1.0, 3.0, 2.0);
  plan.degrade_node(0, 2.0, 4.0, 3.0);  // overlaps the first
  EXPECT_DOUBLE_EQ(plan.degrade_factor(0, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(plan.degrade_factor(0, 1.5), 2.0);
  EXPECT_DOUBLE_EQ(plan.degrade_factor(0, 2.5), 3.0);  // max, not product
  EXPECT_DOUBLE_EQ(plan.degrade_factor(0, 3.5), 3.0);
  EXPECT_DOUBLE_EQ(plan.degrade_factor(0, 4.0), 1.0);
  EXPECT_DOUBLE_EQ(plan.degrade_factor(1, 2.5), 1.0);  // other node healthy
}

TEST(FaultPlan, TransientAttemptsAreCounterKeyedAndBounded) {
  FaultPlan plan;
  plan.set_transient(0.5, 1e-3, 3, 77);
  // Pure function of the sequence number: any query order, same answers.
  std::vector<int> forward, backward;
  for (uint64_t s = 0; s < 200; ++s) forward.push_back(plan.transient_attempts(s));
  for (uint64_t s = 200; s-- > 0;) backward.push_back(plan.transient_attempts(s));
  for (size_t i = 0; i < 200; ++i) EXPECT_EQ(forward[i], backward[199 - i]);
  int max_seen = 0, nonzero = 0;
  for (int r : forward) {
    max_seen = std::max(max_seen, r);
    nonzero += r > 0 ? 1 : 0;
  }
  EXPECT_LE(max_seen, 3);  // max_retries bounds the failure streak
  EXPECT_GT(nonzero, 40);  // p = 0.5: roughly half the sends retry
  FaultPlan other;
  other.set_transient(0.5, 1e-3, 3, 78);  // different seed, different draws
  bool differs = false;
  for (uint64_t s = 0; s < 200 && !differs; ++s) {
    differs = other.transient_attempts(s) != forward[s];
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlan, GenerateIsDeterministicInSeed) {
  FaultRates rates;
  rates.preempt_per_rank_hour = 200.0;
  rates.recover_seconds = 30.0;
  rates.degrade_per_node_hour = 100.0;
  rates.degrade_duration_seconds = 5.0;
  rates.degrade_factor = 2.0;
  const Topology topo = tiny();
  const FaultPlan a = FaultPlan::generate(9, topo, 3600.0, rates);
  const FaultPlan b = FaultPlan::generate(9, topo, 3600.0, rates);
  const FaultPlan c = FaultPlan::generate(10, topo, 3600.0, rates);
  ASSERT_FALSE(a.preemptions().empty());
  ASSERT_FALSE(a.degradations().empty());
  ASSERT_EQ(a.preemptions().size(), b.preemptions().size());
  for (size_t i = 0; i < a.preemptions().size(); ++i) {
    EXPECT_EQ(a.preemptions()[i].rank, b.preemptions()[i].rank);
    EXPECT_DOUBLE_EQ(a.preemptions()[i].time, b.preemptions()[i].time);
    EXPECT_DOUBLE_EQ(a.preemptions()[i].recover_time,
                     b.preemptions()[i].recover_time);
  }
  bool differs = c.preemptions().size() != a.preemptions().size();
  for (size_t i = 0; !differs && i < a.preemptions().size(); ++i) {
    differs = c.preemptions()[i].rank != a.preemptions()[i].rank ||
              c.preemptions()[i].time != a.preemptions()[i].time;
  }
  EXPECT_TRUE(differs);
  // Zero rates: an empty script.
  EXPECT_TRUE(FaultPlan::generate(9, topo, 3600.0, FaultRates{}).empty());
}

TEST(FaultPlan, GenerateRejectsNegativeRates) {
  const Topology topo = tiny();
  FaultRates bad;
  bad.preempt_per_rank_hour = -1.0;
  EXPECT_THROW(FaultPlan::generate(9, topo, 3600.0, bad), ConfigError);
  bad = FaultRates{};
  bad.degrade_per_node_hour = -0.5;
  EXPECT_THROW(FaultPlan::generate(9, topo, 3600.0, bad), ConfigError);
  bad = FaultRates{};
  bad.recover_seconds = 0.0;  // a preempted rank cannot return instantly
  EXPECT_THROW(FaultPlan::generate(9, topo, 3600.0, bad), ConfigError);
}

TEST(FaultPlan, EmptyPlanRemapIsANoOp) {
  const FaultPlan empty;
  const FaultPlan mapped = empty.remap({0, 1, 2}, {0, 1});
  EXPECT_TRUE(mapped.empty());
  EXPECT_TRUE(mapped.preemptions().empty());
  EXPECT_TRUE(mapped.degradations().empty());
  EXPECT_DOUBLE_EQ(mapped.detection_timeout(), 0.0);
  EXPECT_DOUBLE_EQ(mapped.transient_probability(), 0.0);
  EXPECT_TRUE(mapped.alive(0, 1e9));
  EXPECT_DOUBLE_EQ(mapped.degrade_factor(0, 1e9), 1.0);
}

TEST(FaultPlan, RemapKeepsSurvivorsAndSettings) {
  FaultPlan plan;
  plan.preempt(0, 1.0);
  plan.preempt(3, 2.0, 9.0);
  plan.degrade_node(1, 0.0, 4.0, 2.5);
  plan.set_transient(0.25, 1e-3, 2, 5);
  plan.set_detection_timeout(0.5);
  // Survivors: old ranks {1, 2, 3} -> new {0, 1, 2}; old node 1 -> new 0.
  const FaultPlan mapped = plan.remap({1, 2, 3}, {1});
  EXPECT_TRUE(mapped.alive(0, 100.0));             // old rank 1: unscripted
  EXPECT_FALSE(mapped.alive(2, 3.0));              // old rank 3's window moved
  EXPECT_TRUE(mapped.alive(2, 9.0));
  EXPECT_DOUBLE_EQ(mapped.degrade_factor(0, 1.0), 2.5);  // old node 1
  EXPECT_DOUBLE_EQ(mapped.detection_timeout(), 0.5);
  EXPECT_DOUBLE_EQ(mapped.transient_probability(), 0.25);
  // Old rank 0's permanent preemption fell away with the rank.
  for (const auto& p : mapped.preemptions()) EXPECT_NE(p.rank, 3);
}

// ------------------------------------------------------------ try_send
TEST(TrySend, NoPlanMatchesSendBitwise) {
  Cluster a(tiny()), b(tiny());
  const int hops[][2] = {{0, 1}, {0, 2}, {2, 3}, {1, 3}, {3, 0}};
  for (const auto& h : hops) {
    const double t_send = a.send(h[0], h[1], 4096, 0.0);
    const SendOutcome out = b.try_send(h[0], h[1], 4096, 0.0);
    EXPECT_TRUE(out.delivered);
    EXPECT_FALSE(out.degraded);
    EXPECT_EQ(out.retries, 0);
    EXPECT_DOUBLE_EQ(out.time, t_send);
  }
  EXPECT_DOUBLE_EQ(a.quiescent_time(), b.quiescent_time());
  EXPECT_EQ(a.inter_node_bytes(), b.inter_node_bytes());
  EXPECT_EQ(a.intra_node_bytes(), b.intra_node_bytes());
}

TEST(TrySend, EmptyPlanTakesTheFaultFreePath) {
  const FaultPlan empty;
  Cluster a(tiny()), b(tiny());
  b.set_fault_plan(&empty);
  EXPECT_DOUBLE_EQ(a.send(0, 3, 1 << 20, 0.25),
                   b.try_send(0, 3, 1 << 20, 0.25).time);
}

TEST(TrySend, DeadRankFailsWithoutMutatingState) {
  FaultPlan plan;
  plan.preempt(1, 0.0);
  Cluster tried(tiny()), untouched(tiny());
  tried.set_fault_plan(&plan);
  untouched.set_fault_plan(&plan);
  tried.enable_tracing();

  const SendOutcome as_dst = tried.try_send(0, 1, 4096, 0.0);
  EXPECT_FALSE(as_dst.delivered);
  EXPECT_EQ(as_dst.dead_rank, 1);
  EXPECT_DOUBLE_EQ(as_dst.time, 0.0);  // the would-be start
  const SendOutcome as_src = tried.try_send(1, 2, 4096, 0.0);
  EXPECT_FALSE(as_src.delivered);
  EXPECT_EQ(as_src.dead_rank, 1);

  // Nothing happened: no ports, no counters, no trace, and the next real
  // send lands exactly where it would on a cluster that never tried.
  EXPECT_DOUBLE_EQ(tried.quiescent_time(), 0.0);
  EXPECT_EQ(tried.inter_node_bytes() + tried.intra_node_bytes(), size_t{0});
  EXPECT_TRUE(tried.trace().empty());
  EXPECT_DOUBLE_EQ(tried.try_send(2, 3, 4096, 0.0).time,
                   untouched.try_send(2, 3, 4096, 0.0).time);

  // A recovered rank delivers again after its window.
  FaultPlan recovering;
  recovering.preempt(1, 0.0, 10.0);
  Cluster c(tiny());
  c.set_fault_plan(&recovering);
  EXPECT_FALSE(c.try_send(0, 1, 64, 5.0).delivered);
  EXPECT_TRUE(c.try_send(0, 1, 64, 10.0).delivered);

  // The blunt send() keeps the invariant: dead ranks are a caller bug there.
  Cluster d(tiny());
  d.set_fault_plan(&plan);
  EXPECT_THROW(d.send(0, 1, 64, 0.0), CheckError);
}

TEST(TrySend, DegradationSlowsInterNodeOnly) {
  FaultPlan plan;
  plan.degrade_node(1, 0.0, 100.0, 2.0);
  Cluster faulty(tiny()), healthy(tiny());
  faulty.set_fault_plan(&plan);
  // Intra-node transfer on the degraded node's GPUs: NVLink is unaffected.
  const SendOutcome intra = faulty.try_send(2, 3, 1 << 20, 0.0);
  EXPECT_TRUE(intra.delivered);
  EXPECT_FALSE(intra.degraded);
  EXPECT_DOUBLE_EQ(intra.time, healthy.send(2, 3, 1 << 20, 0.0));
  // Inter-node transfer into the degraded node: 2x the healthy duration.
  const double healthy_done = healthy.send(0, 2, 1 << 20, 1.0);
  const SendOutcome inter = faulty.try_send(0, 2, 1 << 20, 1.0);
  EXPECT_TRUE(inter.degraded);
  EXPECT_DOUBLE_EQ(inter.time - 1.0, 2.0 * (healthy_done - 1.0));
}

TEST(TrySend, TransientRetriesChargeBackoffPlusResend) {
  FaultPlan plan;
  plan.set_transient(0.6, 1e-3, 4, 123);
  Cluster faulty(tiny());
  faulty.set_fault_plan(&plan);
  // Find the expected retry count of the first send from the plan itself.
  const int retries = plan.transient_attempts(0);
  Cluster healthy(tiny());
  const double d0 = healthy.send(0, 2, 1 << 16, 0.0);
  const SendOutcome out = faulty.try_send(0, 2, 1 << 16, 0.0);
  EXPECT_TRUE(out.delivered);
  EXPECT_EQ(out.retries, retries);
  EXPECT_DOUBLE_EQ(out.time,
                   d0 + retries * (d0 + plan.transient_backoff()));
  // Some send in a short burst must retry at p = 0.6.
  int total = out.retries;
  for (int i = 0; i < 20; ++i) total += faulty.try_send(0, 2, 64, 0.0).retries;
  EXPECT_GT(total, 0);
}

TEST(TrySend, ResetReplaysTheScriptBitIdentically) {
  FaultPlan plan;
  plan.set_transient(0.4, 1e-3, 3, 9);
  plan.degrade_node(0, 0.0, 1e-3, 1.5);
  auto drive = [&](Cluster& c) {
    std::vector<double> times;
    times.push_back(c.try_send(0, 2, 4096, 0.0).time);
    times.push_back(c.try_send(1, 3, 4096, 0.0).time);
    times.push_back(c.try_send(0, 1, 4096, 0.0).time);
    times.push_back(c.try_send(2, 0, 8192, 0.0).time);
    return times;
  };
  Cluster fresh(tiny()), reused(tiny());
  fresh.set_fault_plan(&plan);
  reused.set_fault_plan(&plan);
  fresh.enable_tracing();
  reused.enable_tracing();
  drive(reused);  // dirty run
  reused.reset();
  const auto a = drive(fresh);
  const auto b = drive(reused);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
  // Identical clocks, counters, and traces: reset == fresh, including the
  // transient send-sequence counter (a stale counter would re-key every
  // hash and silently skew the replay).
  EXPECT_DOUBLE_EQ(fresh.quiescent_time(), reused.quiescent_time());
  EXPECT_EQ(fresh.inter_node_bytes(), reused.inter_node_bytes());
  EXPECT_EQ(fresh.intra_node_bytes(), reused.intra_node_bytes());
  ASSERT_EQ(fresh.trace().size(), reused.trace().size());
  for (size_t i = 0; i < fresh.trace().size(); ++i) {
    EXPECT_EQ(fresh.trace()[i].src, reused.trace()[i].src);
    EXPECT_EQ(fresh.trace()[i].dst, reused.trace()[i].dst);
    EXPECT_EQ(fresh.trace()[i].bytes, reused.trace()[i].bytes);
    EXPECT_DOUBLE_EQ(fresh.trace()[i].start, reused.trace()[i].start);
    EXPECT_DOUBLE_EQ(fresh.trace()[i].duration, reused.trace()[i].duration);
  }
  // The plan survives reset (a reset cluster replays the same script).
  EXPECT_EQ(reused.fault_plan(), &plan);
}

// ------------------------------------------------ abortable schedule replay
// A timing-only ring reduce-scatter leg over the whole world.
coll::Schedule ring_rs_schedule(const Topology& topo, size_t elems) {
  coll::Schedule sched;
  const std::vector<coll::Group> groups{coll::world_group(topo)};
  const std::vector<coll::RankData> data{coll::RankData{}};
  const coll::RingGrid grid = coll::ring_grid(sched, groups, data);
  coll::build_ring_reduce_scatter(sched, groups, grid, elems, coll::WireDtype::kFp32, true);
  return sched;
}

TEST(AbortableReplay, CompletesAndMatchesRunTimingWithoutFaults) {
  const Topology topo = tiny();
  Cluster a(topo), b(topo);
  const coll::Schedule sched = ring_rs_schedule(topo, 64);
  const auto plain = sched.run_timing(a, 0.5);
  const auto outcome = sched.run_timing_abortable(b, 0.5);
  EXPECT_TRUE(outcome.completed());
  EXPECT_EQ(outcome.status, coll::ScheduleStatus::kCompleted);
  EXPECT_DOUBLE_EQ(outcome.finish, plain.finish);
  EXPECT_EQ(outcome.abort_step, -1);
  EXPECT_EQ(outcome.retries, 0);
}

TEST(AbortableReplay, AbortChargesDetectionTimeout) {
  const Topology topo = tiny();
  FaultPlan plan;
  plan.preempt(1, 0.0);
  plan.set_detection_timeout(0.25);
  Cluster cluster(topo);
  cluster.set_fault_plan(&plan);
  const coll::Schedule sched = ring_rs_schedule(topo, 64);
  const auto outcome = sched.run_timing_abortable(cluster, 1.0);
  EXPECT_TRUE(outcome.aborted());
  EXPECT_EQ(outcome.status, coll::ScheduleStatus::kAborted);
  EXPECT_EQ(outcome.abort_step, 0);  // rank 1 is touched in the first step
  EXPECT_EQ(outcome.dead_rank, 1);
  EXPECT_GE(outcome.finish, 1.0 + 0.25);  // start + detection timeout
}

TEST(AbortableReplay, DegradedRunsFinishWithTheDegradedStatus) {
  const Topology topo = tiny();
  FaultPlan plan;
  plan.degrade_node(0, 0.0, 1e3, 3.0);
  Cluster faulty(topo), healthy(topo);
  faulty.set_fault_plan(&plan);
  const coll::Schedule sched = ring_rs_schedule(topo, 256);
  const auto slow = sched.run_timing_abortable(faulty, 0.0);
  const auto fast = sched.run_timing_abortable(healthy, 0.0);
  EXPECT_EQ(slow.status, coll::ScheduleStatus::kDegraded);
  EXPECT_EQ(fast.status, coll::ScheduleStatus::kCompleted);
  EXPECT_GT(slow.finish, fast.finish);
}

// -------------------------------------------------- typed-error boundaries
TEST(TypedErrors, InvalidRuntimeConfigIsRecoverable) {
  const Topology topo = tiny();
  Cluster cluster(topo);
  Tensor t(8);
  // Wrong data arity at the collective boundary: recoverable ConfigError.
  coll::RankData two{t.span(), t.span()};
  EXPECT_THROW(coll::ring_allreduce(cluster, coll::world_group(topo), two, 8,
                                    coll::WireDtype::kFp32, 0.0),
               ConfigError);
  // ConfigError is a runtime_error; CheckError stays a logic_error, so a
  // supervisor can catch the recoverable class without masking real bugs.
  try {
    coll::ring_allreduce(cluster, coll::world_group(topo), two, 8, coll::WireDtype::kFp32, 0.0);
    FAIL() << "expected ConfigError";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("invalid configuration"),
              std::string::npos);
  }
  static_assert(std::is_base_of_v<std::runtime_error, ConfigError>);
  static_assert(std::is_base_of_v<std::logic_error, CheckError>);
  // Uneven topologies are rejected the same recoverable way by the
  // uniform-only collectives.  HiTopKComm handles them natively (shards by
  // max gpus-per-node), so it must NOT throw here.
  const Topology uneven(std::vector<int>{3, 1}, LinkParams{1e-6, 1e-9},
                        LinkParams{1e-5, 1e-8});
  Cluster uc(uneven);
  EXPECT_NO_THROW(coll::hitopk_comm(uc, {}, 64, coll::HiTopKOptions{}, 0.0));
  EXPECT_THROW(train::simulate_scenario(uneven, train::ScenarioOptions{}),
               ConfigError);
}

// ------------------------------------------------------------ scenario
train::ScenarioOptions scenario_base() {
  train::ScenarioOptions options;
  options.trainer.model = "resnet50";
  options.trainer.resolution = 96;
  options.iterations = 120;
  // The whole run is only ~30 s of simulated wall time, so the rate must be
  // extreme (one revocation per 9 node-seconds) for the script to fire.
  options.preempt_rate_per_node_hour = 400.0;
  options.node_return_seconds = 120.0;
  options.checkpoint_interval = 30;
  options.seed = 7;
  return options;
}

TEST(Scenario, DeterministicInSeed) {
  const Topology topo = Topology::tencent_cloud(4, 2);
  const auto a = train::simulate_scenario(topo, scenario_base());
  const auto b = train::simulate_scenario(topo, scenario_base());
  EXPECT_DOUBLE_EQ(a.wall_seconds, b.wall_seconds);
  EXPECT_DOUBLE_EQ(a.goodput, b.goodput);
  EXPECT_DOUBLE_EQ(a.lost_work_fraction, b.lost_work_fraction);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.rescales, b.rescales);
  auto other = scenario_base();
  other.seed = 8;
  const auto c = train::simulate_scenario(topo, other);
  EXPECT_NE(a.wall_seconds, c.wall_seconds);
}

TEST(Scenario, FaultFreeRunsAtIdealThroughput) {
  const Topology topo = Topology::tencent_cloud(4, 2);
  auto options = scenario_base();
  options.preempt_rate_per_node_hour = 0.0;
  options.checkpoint_interval = options.iterations;  // no mid-run checkpoint
  const auto r = train::simulate_scenario(topo, options);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.preemptions, 0);
  EXPECT_EQ(r.useful_iterations, options.iterations);
  EXPECT_EQ(r.min_world_nodes, topo.nodes());
  EXPECT_NEAR(r.goodput_fraction, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.lost_work_fraction, 0.0);
  EXPECT_DOUBLE_EQ(r.mean_time_to_recover, 0.0);
}

TEST(Scenario, ElasticShrinksAbortRestartRollsBack) {
  const Topology topo = Topology::tencent_cloud(4, 2);
  auto elastic = scenario_base();
  elastic.policy = train::RecoveryPolicy::kElasticContinue;
  const auto e = train::simulate_scenario(topo, elastic);
  EXPECT_TRUE(e.completed);
  EXPECT_GT(e.preemptions, 0);
  EXPECT_GT(e.rescales, 0);
  EXPECT_EQ(e.restarts, 0);
  EXPECT_LT(e.min_world_nodes, topo.nodes());
  EXPECT_EQ(e.useful_iterations, elastic.iterations);

  auto abortr = scenario_base();
  abortr.policy = train::RecoveryPolicy::kAbortRestart;
  const auto a = train::simulate_scenario(topo, abortr);
  EXPECT_TRUE(a.completed);
  EXPECT_GT(a.restarts, 0);
  EXPECT_EQ(a.rescales, 0);
  EXPECT_EQ(a.min_world_nodes, topo.nodes());  // restarts go to a full world
  EXPECT_GT(a.lost_work_fraction, 0.0);        // rolled-back iterations
  // At this preemption rate the 120 s restarts dominate: elastic wins.
  EXPECT_GT(e.goodput, a.goodput);
}

TEST(Scenario, BurstsReduceGoodputDeterministically) {
  const Topology topo = Topology::tencent_cloud(4, 2);
  auto calm = scenario_base();
  calm.preempt_rate_per_node_hour = 0.0;
  calm.checkpoint_interval = calm.iterations;
  auto bursty = calm;
  bursty.burst_rate_per_pod_hour = 2000.0;  // ~1.1 onsets/s over an ~11 s run
  bursty.burst_duration_seconds = 30.0;
  bursty.burst_factor = 1.5;
  bursty.nodes_per_pod = 2;
  const auto c = train::simulate_scenario(topo, calm);
  const auto b1 = train::simulate_scenario(topo, bursty);
  const auto b2 = train::simulate_scenario(topo, bursty);
  EXPECT_LT(b1.goodput, c.goodput);
  EXPECT_DOUBLE_EQ(b1.goodput, b2.goodput);
  // Bursts slow iterations but lose no work.
  EXPECT_DOUBLE_EQ(b1.lost_work_fraction, 0.0);
}

TEST(Scenario, WorldDiesOutWithoutNodeReturn) {
  const Topology topo = Topology::tencent_cloud(2, 1);
  auto options = scenario_base();
  options.iterations = 100000;
  options.preempt_rate_per_node_hour = 3600.0;  // one per node-second
  options.node_return_seconds = simnet::kNever;
  options.policy = train::RecoveryPolicy::kElasticContinue;
  const auto r = train::simulate_scenario(topo, options);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.min_world_nodes, 0);
  EXPECT_LT(r.useful_iterations, options.iterations);
}

}  // namespace
}  // namespace hitopk
