// Tests for ring / tree / 2D-torus / hierarchical / sparse collectives and
// HiTopKComm (Algorithm 2): functional correctness against dense references,
// timing invariants, and the Fig. 7 performance ordering.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "collectives/common.h"
#include "collectives/hier_allreduce.h"
#include "collectives/hitopkcomm.h"
#include "collectives/naive_allgather.h"
#include "collectives/ring.h"
#include "collectives/torus2d.h"
#include "collectives/tree_allreduce.h"
#include "compress/exact_topk.h"
#include "compress/mstopk.h"
#include "core/rng.h"
#include "core/tensor.h"

namespace hitopk::coll {
namespace {

using compress::SparseTensor;
using simnet::Cluster;
using simnet::LinkParams;
using simnet::Topology;

// Uniform test fabric: fast intra, slow inter (1 GB/s vs 0.1 GB/s).
Topology fabric(int nodes, int gpus) {
  return Topology(nodes, gpus, LinkParams{1e-6, 1e-9}, LinkParams{1e-5, 1e-8});
}

// Builds per-rank random buffers and returns (buffers, dense reference sum).
struct Fixture {
  std::vector<Tensor> buffers;
  Tensor reference;
  RankData spans;
};

Fixture make_fixture(int world, size_t elems, uint64_t seed) {
  Fixture f;
  f.reference = Tensor(elems);
  Rng rng(seed);
  for (int r = 0; r < world; ++r) {
    Tensor t(elems);
    t.fill_normal(rng, 0.0f, 1.0f);
    f.reference += t;
    f.buffers.push_back(std::move(t));
  }
  for (auto& b : f.buffers) f.spans.push_back(b.span());
  return f;
}

void expect_all_equal_reference(const Fixture& f, float tol = 1e-4f) {
  for (const auto& b : f.buffers) {
    for (size_t i = 0; i < b.size(); ++i) {
      ASSERT_NEAR(b[i], f.reference[i], tol) << "element " << i;
    }
  }
}

// ------------------------------------------------------------ chunking
TEST(ChunkRange, BalancedPartition) {
  // 10 elements over 4 parts: 3,3,2,2.
  EXPECT_EQ(chunk_range(10, 4, 0).count, 3u);
  EXPECT_EQ(chunk_range(10, 4, 1).count, 3u);
  EXPECT_EQ(chunk_range(10, 4, 2).count, 2u);
  EXPECT_EQ(chunk_range(10, 4, 3).count, 2u);
  EXPECT_EQ(chunk_range(10, 4, 3).begin, 8u);
  // Contiguous cover.
  size_t total = 0;
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(chunk_range(10, 4, i).begin, total);
    total += chunk_range(10, 4, i).count;
  }
  EXPECT_EQ(total, 10u);
}

TEST(ChunkRange, MorePartsThanElements) {
  EXPECT_EQ(chunk_range(2, 4, 0).count, 1u);
  EXPECT_EQ(chunk_range(2, 4, 3).count, 0u);
}

TEST(Groups, Construction) {
  Topology t = fabric(2, 4);
  EXPECT_EQ(node_group(t, 1), (Group{4, 5, 6, 7}));
  EXPECT_EQ(cross_node_group(t, 2), (Group{2, 6}));
  EXPECT_EQ(world_group(t).size(), 8u);
}

// ------------------------------------------------------------ ring RS/AG
class RingGroupSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(RingGroupSizeTest, ReduceScatterOwnedChunksHoldSums) {
  const int g = GetParam();
  Topology topo = fabric(1, g);
  Cluster cluster(topo);
  const size_t elems = 67;  // not divisible by g: exercises ragged chunks
  Fixture f = make_fixture(g, elems, 100 + static_cast<uint64_t>(g));
  Group group = world_group(topo);
  ring_reduce_scatter(cluster, group, f.spans, elems, WireDtype::kFp32, 0.0);
  for (int r = 0; r < g; ++r) {
    const ChunkRange range =
        chunk_range(elems, static_cast<size_t>(g), static_cast<size_t>(r));
    for (size_t i = range.begin; i < range.begin + range.count; ++i) {
      ASSERT_NEAR(f.buffers[static_cast<size_t>(r)][i], f.reference[i], 1e-4f)
          << "rank " << r << " elem " << i;
    }
  }
}

TEST_P(RingGroupSizeTest, AllReduceMatchesReferenceEverywhere) {
  const int g = GetParam();
  Topology topo = fabric(1, g);
  Cluster cluster(topo);
  const size_t elems = 129;
  Fixture f = make_fixture(g, elems, 200 + static_cast<uint64_t>(g));
  ring_allreduce(cluster, world_group(topo), f.spans, elems, WireDtype::kFp32, 0.0);
  expect_all_equal_reference(f);
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, RingGroupSizeTest,
                         ::testing::Values(1, 2, 3, 4, 7, 8));

TEST(RingAllGather, ReplicatesOwnedChunks) {
  const int g = 4;
  Topology topo = fabric(1, g);
  Cluster cluster(topo);
  const size_t elems = 20;
  // Each rank owns chunk r filled with its rank id; others garbage (-1).
  std::vector<Tensor> buffers;
  for (int r = 0; r < g; ++r) {
    Tensor t(elems);
    t.fill(-1.0f);
    const ChunkRange range = chunk_range(elems, g, static_cast<size_t>(r));
    for (size_t i = range.begin; i < range.begin + range.count; ++i) {
      t[i] = static_cast<float>(r);
    }
    buffers.push_back(std::move(t));
  }
  RankData spans;
  for (auto& b : buffers) spans.push_back(b.span());
  ring_allgather(cluster, world_group(topo), spans, elems, WireDtype::kFp32, 0.0);
  for (int r = 0; r < g; ++r) {
    for (int c = 0; c < g; ++c) {
      const ChunkRange range = chunk_range(elems, g, static_cast<size_t>(c));
      for (size_t i = range.begin; i < range.begin + range.count; ++i) {
        ASSERT_EQ(buffers[static_cast<size_t>(r)][i], static_cast<float>(c));
      }
    }
  }
}

TEST(RingTiming, HomogeneousRingMatchesAlphaBetaModel) {
  // G ranks on one node: RS time = (G-1) * (alpha + chunk_bytes * beta).
  const int g = 4;
  Topology topo = fabric(1, g);
  Cluster cluster(topo);
  const size_t elems = 4000;  // divisible by 4 -> uniform 1000-elem chunks
  const double done = ring_reduce_scatter(cluster, world_group(topo), {},
                                          elems, WireDtype::kFp32, 0.0);
  const double expected = 3.0 * (1e-6 + 4000.0 * 1e-9);
  EXPECT_NEAR(done, expected, 1e-12);
}

TEST(RingTiming, Fp16HalvesTransferTime) {
  const int g = 4;
  Topology topo = fabric(1, g);
  const size_t elems = 40000;
  Cluster c32(topo), c16(topo);
  const double t32 =
      ring_allreduce(c32, world_group(topo), {}, elems, WireDtype::kFp32, 0.0);
  const double t16 =
      ring_allreduce(c16, world_group(topo), {}, elems, WireDtype::kFp16, 0.0);
  EXPECT_LT(t16, t32);
  EXPECT_GT(t16, 0.4 * t32);
}

TEST(RingTiming, TimingOnlyMatchesFunctional) {
  const int g = 5;
  Topology topo = fabric(1, g);
  const size_t elems = 123;
  Cluster ca(topo), cb(topo);
  Fixture f = make_fixture(g, elems, 300);
  const double functional =
      ring_allreduce(ca, world_group(topo), f.spans, elems, WireDtype::kFp32, 0.0);
  const double timing_only =
      ring_allreduce(cb, world_group(topo), {}, elems, WireDtype::kFp32, 0.0);
  EXPECT_DOUBLE_EQ(functional, timing_only);
}

TEST(RingAllGatherBytes, VariablePayloadTiming) {
  const int g = 3;
  Topology topo = fabric(1, g);
  Cluster cluster(topo);
  // Every origin block traverses g-1 hops; with one large block the total is
  // dominated by it: each of the 2 steps must move the 10^6-byte block once.
  const double done = ring_allgather_bytes(cluster, world_group(topo),
                                           {1000000, 10, 10}, 0.0);
  EXPECT_GE(done, 2.0 * (1e-6 + 1e6 * 1e-9));
}

// ------------------------------------------------------------ tree
class TreeWorldTest : public ::testing::TestWithParam<int> {};

TEST_P(TreeWorldTest, AllReduceMatchesReference) {
  const int world = GetParam();
  Topology topo = fabric(world >= 4 ? 2 : 1, world >= 4 ? world / 2 : world);
  Cluster cluster(topo);
  const size_t elems = 101;
  Fixture f = make_fixture(world, elems, 400 + static_cast<uint64_t>(world));
  tree_allreduce(cluster, world_group(topo), f.spans, elems, TreeOptions{},
                 0.0);
  expect_all_equal_reference(f);
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, TreeWorldTest,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 16));

TEST(TreeAllReduce, TimeGrowsLogarithmicallyAcrossNodes) {
  // The double binary tree runs across node leaders: doubling the node
  // count adds roughly one tree level, not double the time (for
  // latency-dominated small payloads).
  const size_t elems = 64;
  Topology t8 = fabric(8, 1);
  Topology t16 = fabric(16, 1);
  Cluster c8(t8), c16(t16);
  const double time8 =
      tree_allreduce(c8, world_group(t8), {}, elems, TreeOptions{}, 0.0);
  const double time16 =
      tree_allreduce(c16, world_group(t16), {}, elems, TreeOptions{}, 0.0);
  EXPECT_LT(time16, 1.8 * time8);
}

// ------------------------------------------------------------ 2D torus
class TorusShapeTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(TorusShapeTest, AllReduceMatchesReference) {
  const auto [m, n] = GetParam();
  Topology topo = fabric(m, n);
  Cluster cluster(topo);
  const size_t elems = 97;
  Fixture f = make_fixture(m * n, elems,
                           500 + static_cast<uint64_t>(m * 100 + n));
  torus2d_allreduce(cluster, f.spans, elems, WireDtype::kFp32, 0.0);
  expect_all_equal_reference(f);
}

INSTANTIATE_TEST_SUITE_P(Shapes, TorusShapeTest,
                         ::testing::Values(std::pair{1, 4}, std::pair{2, 2},
                                           std::pair{2, 4}, std::pair{4, 2},
                                           std::pair{3, 3}, std::pair{4, 4}));

TEST(Torus2d, BreakdownSumsToTotal) {
  Topology topo = fabric(4, 4);
  Cluster cluster(topo);
  const auto b = torus2d_allreduce(cluster, {}, 100000, WireDtype::kFp32, 0.0);
  EXPECT_NEAR(b.reduce_scatter + b.inter_allreduce + b.intra_allgather,
              b.total, 1e-12);
  EXPECT_GT(b.inter_allreduce, b.reduce_scatter);  // slow NIC dominates
}

TEST(Torus2d, BeatsTreeOnCloudTopology) {
  // The hierarchical scheme must beat the flat tree when inter-node
  // bandwidth is 10x worse than intra (the paper's §5.3 observation).
  Topology topo = fabric(8, 8);
  const size_t elems = 1 << 20;
  Cluster ct(topo), c2(topo);
  const double tree =
      tree_allreduce(ct, world_group(topo), {}, elems, TreeOptions{}, 0.0);
  const double torus = torus2d_allreduce(c2, {}, elems, WireDtype::kFp32, 0.0).total;
  EXPECT_LT(torus, tree);
}

// ------------------------------------------------------------ hierarchical
TEST(HierAllReduce, MatchesReference) {
  Topology topo = fabric(3, 4);
  Cluster cluster(topo);
  const size_t elems = 77;
  Fixture f = make_fixture(12, elems, 600);
  hier_allreduce(cluster, f.spans, elems, WireDtype::kFp32, 0.0);
  expect_all_equal_reference(f);
}

TEST(HierAllReduce, SlowerThanTorusForWideNodes) {
  // Leaders move the full buffer over the NIC; 2DTAR moves 1/n per GPU.
  Topology topo = fabric(8, 8);
  const size_t elems = 1 << 20;
  Cluster ch(topo), c2(topo);
  const double hier = hier_allreduce(ch, {}, elems, WireDtype::kFp32, 0.0).total;
  const double torus = torus2d_allreduce(c2, {}, elems, WireDtype::kFp32, 0.0).total;
  EXPECT_LT(torus, hier);
}

// ------------------------------------------------------------ NaiveAG
TEST(NaiveAg, FunctionalAggregationMatchesSparseSum) {
  Topology topo = fabric(2, 2);
  Cluster cluster(topo);
  const size_t elems = 50;
  Fixture f = make_fixture(4, elems, 700);
  // Sparsify each rank's gradient to top-5 and aggregate.
  std::vector<SparseTensor> sparse;
  Tensor expected(elems);
  for (int r = 0; r < 4; ++r) {
    SparseTensor s = compress::exact_topk(f.buffers[r].span(), 5);
    s.scatter_add_into(expected.span());
    sparse.push_back(std::move(s));
  }
  naive_sparse_allgather(cluster, sparse, f.spans, elems, 4, 0.0, 0.0);
  for (const auto& b : f.buffers) {
    for (size_t i = 0; i < elems; ++i) {
      ASSERT_NEAR(b[i], expected[i], 1e-5f);
    }
  }
}

TEST(NaiveAg, TimeOnlyMatchesFunctionalForUniformK) {
  Topology topo = fabric(2, 2);
  const size_t elems = 400;
  Cluster ca(topo), cb(topo);
  Fixture f = make_fixture(4, elems, 800);
  std::vector<SparseTensor> sparse;
  for (int r = 0; r < 4; ++r) {
    sparse.push_back(compress::exact_topk(f.buffers[r].span(), 16));
  }
  const double functional =
      naive_sparse_allgather(ca, sparse, f.spans, elems, 4, 0.0, 0.0).total;
  const double timed =
      naive_sparse_allgather_time(cb, 16, 4, 0.0, 0.0).total;
  EXPECT_DOUBLE_EQ(functional, timed);
}

TEST(NaiveAg, CrossesNodeBoundaryForEveryBlock) {
  Topology topo = fabric(2, 2);
  Cluster cluster(topo);
  naive_sparse_allgather_time(cluster, 100, 4, 0.0, 0.0);
  // Flat ring over 4 ranks: blocks cross the node boundary repeatedly.
  EXPECT_GT(cluster.inter_node_bytes(), 0u);
  EXPECT_GT(cluster.intra_node_bytes(), 0u);
}

// ------------------------------------------------------------ HiTopKComm
TEST(HiTopKComm, DensityOneEqualsDenseAllReduce) {
  Topology topo = fabric(2, 4);
  Cluster cluster(topo);
  const size_t elems = 96;
  Fixture f = make_fixture(8, elems, 900);
  HiTopKOptions options;
  options.density = 1.0;
  hitopk_comm(cluster, f.spans, elems, options, 0.0);
  expect_all_equal_reference(f);
}

TEST(HiTopKComm, AllRanksIdenticalResult) {
  Topology topo = fabric(2, 4);
  Cluster cluster(topo);
  const size_t elems = 256;
  Fixture f = make_fixture(8, elems, 1000);
  HiTopKOptions options;
  options.density = 0.1;
  hitopk_comm(cluster, f.spans, elems, options, 0.0);
  for (int r = 1; r < 8; ++r) {
    for (size_t i = 0; i < elems; ++i) {
      ASSERT_EQ(f.buffers[static_cast<size_t>(r)][i], f.buffers[0][i]);
    }
  }
}

TEST(HiTopKComm, SingleNodeMatchesPerShardMsTopKOfSum) {
  // With m = 1 the result must be exactly: per shard j, the MSTopK
  // selection (seeded as rank j) applied to the dense node sum.
  const int n = 4;
  Topology topo = fabric(1, n);
  Cluster cluster(topo);
  const size_t elems = 200;
  Fixture f = make_fixture(n, elems, 1100);
  HiTopKOptions options;
  options.density = 0.1;
  options.seed = 77;
  hitopk_comm(cluster, f.spans, elems, options, 0.0);

  Tensor expected(elems);
  for (int j = 0; j < n; ++j) {
    const ChunkRange shard = chunk_range(elems, n, static_cast<size_t>(j));
    const size_t k = std::max<size_t>(
        1, static_cast<size_t>(std::llround(options.density *
                                            static_cast<double>(shard.count))));
    compress::MsTopK mstopk(options.mstopk_samplings,
                            options.seed + static_cast<uint64_t>(j));
    auto shard_ref = f.reference.slice(shard.begin, shard.count);
    SparseTensor s = mstopk.compress(shard_ref, k);
    for (size_t i = 0; i < s.nnz(); ++i) {
      expected[shard.begin + s.indices[i]] += s.values[i];
    }
  }
  for (size_t i = 0; i < elems; ++i) {
    ASSERT_NEAR(f.buffers[0][i], expected[i], 1e-4f) << "elem " << i;
  }
}

TEST(HiTopKComm, SparsityBoundedByDensity) {
  Topology topo = fabric(4, 4);
  Cluster cluster(topo);
  const size_t elems = 1600;
  Fixture f = make_fixture(16, elems, 1200);
  HiTopKOptions options;
  options.density = 0.01;
  hitopk_comm(cluster, f.spans, elems, options, 0.0);
  // Result nnz <= m * n * k~ (k~ >= 1 per shard here).
  size_t nnz = 0;
  for (size_t i = 0; i < elems; ++i) {
    if (f.buffers[0][i] != 0.0f) ++nnz;
  }
  const size_t shard = elems / 4;
  const size_t k_tilde = std::max<size_t>(
      1, static_cast<size_t>(options.density * static_cast<double>(shard)));
  EXPECT_LE(nnz, 4u * 4u * k_tilde);
  EXPECT_GT(nnz, 0u);
}

TEST(HiTopKComm, NonzerosAreNodeSumSubsets) {
  // Every nonzero of the result must be the sum over a subset of nodes of
  // that coordinate's node sums — verified here with single-GPU nodes where
  // node sums are just the rank gradients.
  Topology topo = fabric(3, 1);
  Cluster cluster(topo);
  const size_t elems = 60;
  Fixture f = make_fixture(3, elems, 1300);
  // Keep original gradients: buffers are overwritten by the collective.
  std::vector<Tensor> originals = f.buffers;
  HiTopKOptions options;
  options.density = 0.2;
  hitopk_comm(cluster, f.spans, elems, options, 0.0);
  for (size_t i = 0; i < elems; ++i) {
    const float v = f.buffers[0][i];
    if (v == 0.0f) continue;
    // Enumerate all 2^3 node subsets; the value must match one of them.
    bool matched = false;
    for (int mask = 1; mask < 8 && !matched; ++mask) {
      float sum = 0.0f;
      for (int node = 0; node < 3; ++node) {
        if (mask & (1 << node)) sum += originals[static_cast<size_t>(node)][i];
      }
      matched = std::fabs(sum - v) < 1e-5f;
    }
    EXPECT_TRUE(matched) << "element " << i << " value " << v;
  }
}

TEST(HiTopKComm, TimingOnlyMatchesFunctionalWhenDisjoint) {
  // Craft gradients so every node selects disjoint indices: then functional
  // payloads equal the timing-only assumption and the clocks agree exactly.
  const int m = 2, n = 2;
  Topology topo = fabric(m, n);
  const size_t elems = 80;  // shards of 40; k~ = 4 at density 0.1
  std::vector<Tensor> buffers(static_cast<size_t>(m * n), Tensor(elems));
  Rng rng(1400);
  for (int node = 0; node < m; ++node) {
    for (int local = 0; local < n; ++local) {
      auto& t = buffers[static_cast<size_t>(node * n + local)];
      t.fill_normal(rng, 0.0f, 0.001f);
      // Node `node` has huge values in positions node, node+m, node+2m ...
      for (size_t i = static_cast<size_t>(node); i < elems;
           i += static_cast<size_t>(m)) {
        t[i] = 10.0f + static_cast<float>(i);
      }
    }
  }
  RankData spans;
  for (auto& b : buffers) spans.push_back(b.span());
  HiTopKOptions options;
  options.density = 0.1;
  Cluster ca(topo), cb(topo);
  const double functional =
      hitopk_comm(ca, spans, elems, options, 0.0).total;
  const double timed = hitopk_comm(cb, {}, elems, options, 0.0).total;
  // Functional payload in step 4 is bounded by the timing-only assumption.
  EXPECT_LE(functional, timed + 1e-12);
  EXPECT_GT(functional, 0.5 * timed);
}

TEST(HiTopKComm, BreakdownSumsToTotal) {
  Topology topo = fabric(4, 4);
  Cluster cluster(topo);
  HiTopKOptions options;
  options.density = 0.01;
  const auto b = hitopk_comm(cluster, {}, 1 << 20, options, 0.0);
  EXPECT_NEAR(b.reduce_scatter + b.mstopk + b.inter_allgather +
                  b.intra_allgather,
              b.total, 1e-12);
  EXPECT_GT(b.inter_allgather, 0.0);
}

TEST(HiTopKComm, ErrorFeedbackCarriesResidual) {
  Topology topo = fabric(1, 2);
  Cluster cluster(topo);
  const size_t elems = 40;
  Fixture f = make_fixture(2, elems, 1500);
  compress::ErrorFeedback ef;
  HiTopKOptions options;
  options.density = 0.1;
  options.error_feedback = &ef;
  options.ef_key_prefix = "g";
  hitopk_comm(cluster, f.spans, elems, options, 0.0);
  EXPECT_EQ(ef.num_tensors(), 2u);
  EXPECT_GT(ef.residual_sq_norm(), 0.0);  // something was left behind
}

// -------------------------------------------------- Fig. 7 ordering
TEST(Fig7Ordering, HiTopKFastestOnCloudCluster) {
  // The paper's qualitative result (Fig. 7): for large tensors on the
  // 16x8 cloud topology with FP16 payloads and rho = 0.01,
  //   HiTopKComm < 2DTAR < TreeAR < NaiveAG.
  Topology topo = Topology::tencent_cloud(16, 8);
  const size_t elems = 50'000'000;
  const size_t fp16 = 2;
  const double density = 0.01;

  Cluster c_naive(topo);
  const double naive =
      naive_sparse_allgather_time(
          c_naive, static_cast<size_t>(density * static_cast<double>(elems)),
          fp16, 0.0, 0.0)
          .total;

  Cluster c_tree(topo);
  TreeOptions tree_options;
  tree_options.wire = WireDtype::kFp16;
  const double tree = tree_allreduce(c_tree, world_group(topo), {}, elems,
                                     tree_options, 0.0);

  Cluster c_torus(topo);
  const double torus = torus2d_allreduce(c_torus, {}, elems, WireDtype::kFp16, 0.0).total;

  Cluster c_hitopk(topo);
  HiTopKOptions options;
  options.density = density;
  options.value_wire = WireDtype::kFp16;
  const double hitopk = hitopk_comm(c_hitopk, {}, elems, options, 0.0).total;

  EXPECT_LT(hitopk, torus);
  EXPECT_LT(torus, tree);
  EXPECT_LT(tree, naive);
}

TEST(Fig7Ordering, InterAllGatherDominatesHiTopKBreakdown) {
  // Fig. 8: the inter-node All-Gather is the dominant step.
  Topology topo = Topology::tencent_cloud(16, 8);
  Cluster cluster(topo);
  HiTopKOptions options;
  options.density = 0.01;
  const auto b = hitopk_comm(cluster, {}, 25'000'000, options, 0.0);
  EXPECT_GT(b.inter_allgather, b.reduce_scatter);
  EXPECT_GT(b.inter_allgather, b.intra_allgather);
}

}  // namespace
}  // namespace hitopk::coll
