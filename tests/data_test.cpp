// Tests for the I/O subsystem: LRU cache semantics and the DataCache paths
// of Fig. 5 (NFS / SSD / memory), including the Fig. 9 speed-up shape.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "data/datacache.h"
#include "data/dataset.h"
#include "data/lru_cache.h"

namespace hitopk::data {
namespace {

// ------------------------------------------------------------ dataset
TEST(DatasetSpec, ImagenetShape) {
  const DatasetSpec d = DatasetSpec::imagenet();
  EXPECT_EQ(d.num_samples, 1'281'167u);
  EXPECT_EQ(d.validation_samples, 100'000u);
  EXPECT_EQ(d.decoded_bytes(96), 3u * 96 * 96);
  EXPECT_EQ(d.decoded_bytes(224), 3u * 224 * 224);
}

TEST(DatasetSpec, WmtIgnoresResolution) {
  const DatasetSpec d = DatasetSpec::wmt17();
  EXPECT_EQ(d.decoded_bytes(96), d.decoded_bytes(224));
}

// ------------------------------------------------------------ LRU
TEST(LruCache, HitAndMiss) {
  LruCache cache(100);
  EXPECT_FALSE(cache.get(1));
  cache.put(1, 10);
  EXPECT_TRUE(cache.get(1));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache cache(30);
  cache.put(1, 10);
  cache.put(2, 10);
  cache.put(3, 10);
  EXPECT_TRUE(cache.get(1));  // touch 1: LRU order is now 2, 3, 1
  cache.put(4, 10);           // evicts 2
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_TRUE(cache.contains(4));
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(LruCache, UpdateExistingKeyAdjustsBytes) {
  LruCache cache(100);
  cache.put(1, 40);
  cache.put(1, 60);
  EXPECT_EQ(cache.used_bytes(), 60u);
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(LruCache, OversizedEntryNotCached) {
  LruCache cache(50);
  cache.put(1, 100);
  EXPECT_FALSE(cache.contains(1));
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(LruCache, ZeroCapacityNeverCaches) {
  LruCache cache(0);
  cache.put(1, 1);
  EXPECT_FALSE(cache.contains(1));
}

TEST(LruCache, ClearResetsContents) {
  LruCache cache(100);
  cache.put(1, 10);
  cache.clear();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.used_bytes(), 0u);
  EXPECT_FALSE(cache.contains(1));
}

TEST(LruCache, ContainsDoesNotTouch) {
  LruCache cache(20);
  cache.put(1, 10);
  cache.put(2, 10);
  EXPECT_TRUE(cache.contains(1));  // must not refresh key 1
  cache.put(3, 10);                // evicts 1 (oldest by *use*)
  EXPECT_FALSE(cache.contains(1));
}

// ------------------------------------------------------------ DataCache
std::vector<uint64_t> batch_ids(uint64_t start, size_t count) {
  std::vector<uint64_t> ids(count);
  std::iota(ids.begin(), ids.end(), start);
  return ids;
}

DataCacheConfig small_config() {
  DataCacheConfig config;
  config.dataset = DatasetSpec::imagenet();
  config.nodes = 16;
  return config;
}

TEST(DataCache, FirstEpochReadsNfs) {
  DataCache cache(small_config());
  const auto ids = batch_ids(0, 256);
  const FetchBreakdown f = cache.fetch_batch(ids, 96);
  EXPECT_EQ(f.nfs_samples, 256u);
  EXPECT_EQ(f.memory_samples, 0u);
  EXPECT_EQ(f.ssd_samples, 0u);
}

TEST(DataCache, SecondEpochHitsMemory) {
  DataCache cache(small_config());
  const auto ids = batch_ids(0, 256);
  cache.fetch_batch(ids, 96);
  const FetchBreakdown f = cache.fetch_batch(ids, 96);
  EXPECT_EQ(f.memory_samples, 256u);
  EXPECT_EQ(f.nfs_samples, 0u);
}

TEST(DataCache, SecondRunHitsSsdNotNfs) {
  DataCache cache(small_config());
  const auto ids = batch_ids(0, 256);
  cache.fetch_batch(ids, 96);
  cache.new_run();  // memory cache dies with the process, SSD survives
  const FetchBreakdown f = cache.fetch_batch(ids, 96);
  EXPECT_EQ(f.ssd_samples, 256u);
  EXPECT_EQ(f.nfs_samples, 0u);
  EXPECT_EQ(f.memory_samples, 0u);
}

TEST(DataCache, MemoryPathOver10xFasterThanNfsPath) {
  // Fig. 9: I/O time drops by more than 10x with caching.
  DataCache cache(small_config());
  const auto ids = batch_ids(0, 256);
  const double cold = cache.fetch_batch(ids, 96).seconds;
  const double warm = cache.fetch_batch(ids, 96).seconds;
  EXPECT_GT(cold, 10.0 * warm);
}

TEST(DataCache, SsdPathBetweenNfsAndMemory) {
  DataCache cache(small_config());
  const auto ids = batch_ids(0, 256);
  const double cold = cache.fetch_batch(ids, 96).seconds;
  cache.new_run();
  const double ssd = cache.fetch_batch(ids, 96).seconds;
  const double warm = cache.fetch_batch(ids, 96).seconds;
  EXPECT_LT(ssd, cold);
  EXPECT_GT(ssd, warm);
}

TEST(DataCache, ResolutionChangeInvalidatesMemoryCache) {
  DataCache cache(small_config());
  const auto ids = batch_ids(0, 256);
  cache.fetch_batch(ids, 96);
  const FetchBreakdown f = cache.fetch_batch(ids, 128);
  EXPECT_EQ(f.memory_samples, 0u);  // decoded-at-96 entries are useless
  EXPECT_EQ(f.ssd_samples, 256u);   // but the encoded files are still local
}

TEST(DataCache, DisabledTiersFallThrough) {
  DataCacheConfig config = small_config();
  config.use_memory_cache = false;
  config.use_ssd_cache = false;
  DataCache cache(config);
  const auto ids = batch_ids(0, 256);
  cache.fetch_batch(ids, 96);
  const FetchBreakdown f = cache.fetch_batch(ids, 96);
  EXPECT_EQ(f.nfs_samples, 256u);  // every epoch pays the NFS price
}

TEST(DataCache, MemoryCapacityBoundsCachedSamples) {
  DataCacheConfig config = small_config();
  config.memory_capacity_bytes = 100 * config.dataset.decoded_bytes(96);
  DataCache cache(config);
  const auto ids = batch_ids(0, 256);
  cache.fetch_batch(ids, 96);
  EXPECT_LE(cache.memory_cache().entries(), 100u);
  const FetchBreakdown f = cache.fetch_batch(ids, 96);
  // Some hits (the tail of the batch), many misses (evicted head).
  EXPECT_LT(f.memory_samples, 256u);
}

TEST(DataCache, ShardBatchWrapsAroundShard) {
  DataCacheConfig config = small_config();
  DataCache cache(config);
  const size_t shard = config.dataset.num_samples / 16;
  // Request the batch that crosses the shard end: ids must wrap within
  // [offset, offset + shard).
  const uint64_t iterations_per_epoch = shard / 256;
  const FetchBreakdown f =
      cache.fetch_shard_batch(0, iterations_per_epoch, 256, 96);
  EXPECT_EQ(f.nfs_samples + f.ssd_samples + f.memory_samples, 256u);
}

TEST(DataCache, HigherResolutionCostsMoreAugment) {
  DataCache cache_a(small_config());
  DataCache cache_b(small_config());
  const auto ids = batch_ids(0, 256);
  cache_a.fetch_batch(ids, 96);
  cache_b.fetch_batch(ids, 224);
  const double warm96 = cache_a.fetch_batch(ids, 96).seconds;
  const double warm224 = cache_b.fetch_batch(ids, 224).seconds;
  EXPECT_GT(warm224, warm96);
}

TEST(DataCache, Fig9IoTimesInCalibratedRange) {
  // Naive path ~0.05 s and cached path <= 0.01 s per 256-batch at 96^2
  // (see the Fig. 9 discussion in DESIGN.md).
  DataCache cache(small_config());
  const auto ids = batch_ids(0, 256);
  const double cold = cache.fetch_batch(ids, 96).seconds;
  const double warm = cache.fetch_batch(ids, 96).seconds;
  EXPECT_GT(cold, 0.03);
  EXPECT_LT(cold, 0.09);
  EXPECT_LT(warm, 0.01);
}

}  // namespace
}  // namespace hitopk::data
