// Tests for the model zoo (exact tensor counts / parameter totals) and the
// calibrated performance model.
#include <gtest/gtest.h>

#include "core/check.h"
#include "models/calibration.h"
#include "models/model_zoo.h"
#include "models/perf_model.h"

namespace hitopk::models {
namespace {

// ------------------------------------------------------------ resnet50
TEST(ResNet50, Has161ParameterTensors) {
  // §4.2: "the ResNet-50 model, which has 161 layers" (LARS layer count).
  EXPECT_EQ(resnet50().num_tensors(), 161u);
}

TEST(ResNet50, ParameterTotalMatchesReference) {
  // torchvision resnet50: 25,557,032 parameters.
  EXPECT_EQ(resnet50().total_params(), 25'557'032u);
}

TEST(ResNet50, TensorKindBreakdown) {
  const ModelSpec spec = resnet50();
  size_t convs = 0, bn = 0, dense = 0, bias = 0;
  for (const auto& layer : spec.layers) {
    switch (layer.kind) {
      case LayerKind::kConvWeight: ++convs; break;
      case LayerKind::kBatchNormGamma:
      case LayerKind::kBatchNormBeta: ++bn; break;
      case LayerKind::kDenseWeight: ++dense; break;
      case LayerKind::kBias: ++bias; break;
      default: break;
    }
  }
  EXPECT_EQ(convs, 53u);  // 1 stem + 48 block + 4 downsample
  EXPECT_EQ(bn, 106u);    // 53 BN layers x (gamma, beta)
  EXPECT_EQ(dense, 1u);
  EXPECT_EQ(bias, 1u);
}

TEST(ResNet50, LargestTensorIsFinalStageConv) {
  // layer4 3x3x512x512 = 2.36 M is the largest single tensor... except the
  // fc (2048x1000 = 2.048 M) and layer4 downsample (1x1x1024x2048 = 2.1 M);
  // the 3x3 conv wins.
  EXPECT_EQ(resnet50().max_tensor_size(), 3u * 3 * 512 * 512);
}

TEST(ResNet50, BackpropOrderStartsWithClassifier) {
  const auto sizes = resnet50().backprop_order_sizes();
  EXPECT_EQ(sizes.size(), 161u);
  EXPECT_EQ(sizes[0], 1000u);           // fc bias is last in forward order
  EXPECT_EQ(sizes[1], 2048u * 1000u);   // fc weight
}

// ------------------------------------------------------------ vgg19
TEST(Vgg19, Has38ParameterTensors) {
  EXPECT_EQ(vgg19().num_tensors(), 38u);
}

TEST(Vgg19, ParameterTotalMatchesReference) {
  // torchvision vgg19: 143,667,240 parameters.
  EXPECT_EQ(vgg19().total_params(), 143'667'240u);
}

TEST(Vgg19, DominatedByFirstDenseLayer) {
  // fc1 (25088 x 4096 = 102.8 M) holds ~70% of all parameters.
  EXPECT_EQ(vgg19().max_tensor_size(), 25088u * 4096u);
}

// ------------------------------------------------------------ transformer
TEST(Transformer, ParameterTotalNearPaper) {
  // Fig. 8 uses "110 million parameters for Transformer".
  const size_t params = transformer_wmt().total_params();
  EXPECT_GT(params, 105'000'000u);
  EXPECT_LT(params, 115'000'000u);
}

TEST(Transformer, HasEncoderAndDecoderStacks) {
  const ModelSpec spec = transformer_wmt();
  size_t encoder = 0, decoder = 0, embeddings = 0;
  for (const auto& layer : spec.layers) {
    if (layer.name.rfind("encoder.", 0) == 0) ++encoder;
    if (layer.name.rfind("decoder.", 0) == 0) ++decoder;
    if (layer.kind == LayerKind::kEmbedding) ++embeddings;
  }
  EXPECT_EQ(embeddings, 2u);
  EXPECT_GT(encoder, 0u);
  // Decoder layers carry cross-attention: more tensors than the encoder.
  EXPECT_GT(decoder, encoder);
}

// ------------------------------------------------------------ resnet152
TEST(ResNet152, ParameterTotalMatchesReference) {
  // torchvision resnet152: 60,192,808 parameters.
  EXPECT_EQ(resnet152().total_params(), 60'192'808u);
}

TEST(ResNet152, TensorCountMatchesStructure) {
  // 50 bottleneck blocks x 3 convs + 4 downsamples + stem = 155 convs;
  // each with a BN pair, plus fc weight + bias: 155 + 310 + 2 = 467.
  EXPECT_EQ(resnet152().num_tensors(), 467u);
}

TEST(ResNet152, SharesResNet50Stem) {
  const auto r50 = resnet50();
  const auto r152 = resnet152();
  EXPECT_EQ(r50.layers[0].shape, r152.layers[0].shape);
  EXPECT_EQ(r50.layers.back().shape, r152.layers.back().shape);
}

// ------------------------------------------------------------ bert
TEST(BertBase, ParameterTotalMatchesReference) {
  // huggingface bert-base-uncased encoder + pooler: ~109.5 M.
  const size_t params = bert_base().total_params();
  EXPECT_GT(params, 108'000'000u);
  EXPECT_LT(params, 111'000'000u);
}

TEST(BertBase, TwelveEncoderLayers) {
  size_t ffn1 = 0;
  for (const auto& layer : bert_base().layers) {
    if (layer.name.find(".ffn1.w") != std::string::npos) ++ffn1;
  }
  EXPECT_EQ(ffn1, 12u);
}

TEST(ModelZoo, LookupByName) {
  EXPECT_EQ(model_by_name("resnet50").name, "resnet50");
  EXPECT_EQ(model_by_name("resnet152").name, "resnet152");
  EXPECT_EQ(model_by_name("bert").name, "bert");
  EXPECT_EQ(model_by_name("vgg19").name, "vgg19");
  EXPECT_EQ(model_by_name("transformer").name, "transformer");
  EXPECT_THROW(model_by_name("alexnet"), CheckError);
}

// ------------------------------------------------------------ perf model
TEST(PerfModel, MatchesCalibrationAnchors) {
  EXPECT_NEAR(PerfModel::single_gpu_throughput("resnet50", 96), 4400.0, 1.0);
  EXPECT_NEAR(PerfModel::single_gpu_throughput("resnet50", 128), 3010.0, 1.0);
  EXPECT_NEAR(PerfModel::single_gpu_throughput("resnet50", 224), 1240.0, 1.0);
  EXPECT_NEAR(PerfModel::single_gpu_throughput("resnet50", 288), 710.0, 1.0);
  EXPECT_NEAR(PerfModel::single_gpu_throughput("vgg19", 224), 560.0, 1.0);
  EXPECT_NEAR(PerfModel::single_gpu_throughput("transformer", 0), 32.0, 0.1);
}

TEST(PerfModel, ThroughputDecreasesWithResolution) {
  double prev = 1e12;
  for (int res : {64, 96, 128, 160, 224, 288, 320}) {
    const double t = PerfModel::single_gpu_throughput("resnet50", res);
    EXPECT_LT(t, prev) << res;
    prev = t;
  }
}

TEST(PerfModel, FfbpSecondsLinearInBatch) {
  const double b1 = PerfModel::ffbp_seconds("resnet50", 224, 1);
  const double b256 = PerfModel::ffbp_seconds("resnet50", 224, 256);
  EXPECT_NEAR(b256, 256.0 * b1, 1e-9);
}

TEST(PerfModel, Fig1FfbpAnchor) {
  // Fig. 1: FF&BP of ResNet-50 at 224^2, batch 256 is ~0.204 s.
  const double t = PerfModel::ffbp_seconds("resnet50", 224, 256);
  EXPECT_GT(t, 0.18);
  EXPECT_LT(t, 0.23);
}

TEST(PerfModel, UnknownModelThrows) {
  EXPECT_THROW(PerfModel::ffbp_seconds("alexnet", 224, 1), CheckError);
}

}  // namespace
}  // namespace hitopk::models
