// Property tests pinning the histogram threshold-selection fast path
// (compress/threshold_select.h) bit-identical — indices AND values — to the
// packed-key nth_element reference across adversarial distributions: ties,
// denormals, all-equal, infinities, signed zeros, and skewed magnitude
// spreads.  Bit-identity (not closeness) is the contract every consumer
// (exact_topk, DGC's re-selection, the TopK-SGD convergence path) relies on
// when flipping between the two backends.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "compress/compressor.h"
#include "compress/dgc_topk.h"
#include "compress/exact_topk.h"
#include "compress/threshold_select.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "core/tensor.h"

namespace hitopk::compress {
namespace {

struct NamedInput {
  std::string name;
  Tensor x;
};

// Sizes straddle kHistogramMinSize so both the histogram path and the
// small-input nth_element cutoff are exercised.
std::vector<NamedInput> adversarial_inputs() {
  std::vector<NamedInput> inputs;
  {
    Rng rng(301);
    Tensor x(20000);
    x.fill_normal(rng, 0.0f, 1.0f);
    inputs.push_back({"gaussian", std::move(x)});
  }
  {
    // Heavy ties: every element is one of three magnitudes, so the boundary
    // bucket holds thousands of equal keys and selection is decided purely
    // by the index tie-break.
    Rng rng(303);
    Tensor x(8192);
    for (size_t i = 0; i < x.size(); ++i) {
      const uint64_t r = rng.uniform_index(3);
      x[i] = (r == 0 ? 0.5f : r == 1 ? -2.0f : 8.0f);
    }
    inputs.push_back({"tied", std::move(x)});
  }
  {
    Tensor x(4096);
    x.fill(-3.25f);
    inputs.push_back({"all_equal", std::move(x)});
  }
  {
    Tensor x(4096);
    inputs.push_back({"all_zero", std::move(x)});
  }
  {
    // Denormals (several sub-normal magnitudes plus zeros): the log-spaced
    // bit buckets must rank them without any width arithmetic blowing up.
    Rng rng(307);
    Tensor x(4096);
    for (size_t i = 0; i < x.size(); ++i) {
      const uint64_t r = rng.uniform_index(4);
      x[i] = r == 0   ? 0.0f
             : r == 1 ? 1.0e-40f
             : r == 2 ? -1.2e-40f
                      : 1.3e-44f;
    }
    inputs.push_back({"denormal", std::move(x)});
  }
  {
    // Infinities and huge finite spikes on a near-zero noise floor.
    Rng rng(311);
    Tensor x(16384);
    x.fill_normal(rng, 0.0f, 1e-6f);
    for (size_t i = 0; i < 16; ++i) {
      x[i * 911] = (i % 2 ? 1.0f : -1.0f) *
                   std::numeric_limits<float>::infinity();
      x[i * 911 + 7] = (i % 2 ? 3.4e38f : -3.4e38f);
    }
    inputs.push_back({"infinities", std::move(x)});
  }
  {
    // Signed zeros mixed with tiny values: -0.0 and +0.0 share a magnitude
    // and must tie-break by index identically in both paths.
    Tensor x(4096);
    for (size_t i = 0; i < x.size(); ++i) {
      x[i] = (i % 3 == 0) ? -0.0f : (i % 3 == 1) ? 0.0f : 1e-30f;
    }
    inputs.push_back({"signed_zero", std::move(x)});
  }
  {
    // Log-spaced magnitudes across 8 decades: every bit bucket in a wide
    // range is populated.
    Rng rng(313);
    Tensor x(10000);
    for (size_t i = 0; i < x.size(); ++i) {
      const double exponent = rng.uniform(-4.0, 4.0);
      x[i] = static_cast<float>(std::pow(10.0, exponent)) *
             (rng.uniform() < 0.5 ? -1.0f : 1.0f);
    }
    inputs.push_back({"log_spaced", std::move(x)});
  }
  {
    // Small input: exercises the kHistogramMinSize cutoff path.
    Rng rng(317);
    Tensor x(257);
    x.fill_normal(rng, 0.0f, 2.0f);
    inputs.push_back({"small", std::move(x)});
  }
  return inputs;
}

void expect_bit_identical(const SparseTensor& a, const SparseTensor& b,
                          const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(a.indices, b.indices);
  ASSERT_EQ(a.values.size(), b.values.size());
  for (size_t i = 0; i < a.values.size(); ++i) {
    EXPECT_EQ(std::bit_cast<uint32_t>(a.values[i]),
              std::bit_cast<uint32_t>(b.values[i]))
        << "value bits differ at " << i;
  }
}

TEST(ThresholdSelect, SelectionBitIdenticalToNthElementReference) {
  for (auto& input : adversarial_inputs()) {
    const size_t d = input.x.size();
    for (size_t k : {size_t{1}, size_t{2}, d / 1000 + 1, d / 100 + 1, d / 10,
                     d - 1, d, d + 5}) {
      if (k == 0) continue;
      const SparseTensor fast =
          select_topk(input.x.span(), k, TopKSelect::kHistogram);
      const SparseTensor ref =
          select_topk(input.x.span(), k, TopKSelect::kNthElement);
      expect_bit_identical(fast, ref,
                           input.name + " k=" + std::to_string(k));
      EXPECT_EQ(fast.nnz(), std::min(k, d));
    }
  }
}

TEST(ThresholdSelect, ThresholdBitIdenticalToNthElementReference) {
  for (auto& input : adversarial_inputs()) {
    const size_t d = input.x.size();
    for (size_t k : {size_t{1}, d / 100 + 1, d / 10, d}) {
      const float fast =
          topk_threshold(input.x.span(), k, TopKSelect::kHistogram);
      const float ref =
          topk_threshold(input.x.span(), k, TopKSelect::kNthElement);
      EXPECT_EQ(std::bit_cast<uint32_t>(fast), std::bit_cast<uint32_t>(ref))
          << input.name << " k=" << k;
    }
  }
}

TEST(ThresholdSelect, ThresholdMatchesKthSelectedMagnitude) {
  for (auto& input : adversarial_inputs()) {
    const size_t k = input.x.size() / 50 + 1;
    const SparseTensor sel =
        select_topk(input.x.span(), k, TopKSelect::kHistogram);
    const float thres = topk_threshold(input.x.span(), k,
                                       TopKSelect::kHistogram);
    // The threshold is the smallest selected magnitude.
    float smallest = std::numeric_limits<float>::infinity();
    for (float v : sel.values) smallest = std::min(smallest, std::fabs(v));
    EXPECT_EQ(std::bit_cast<uint32_t>(thres),
              std::bit_cast<uint32_t>(smallest))
        << input.name;
  }
}

TEST(ThresholdSelect, IdenticalAcrossThreadCounts) {
  // The counting pass partitions across the pool; integer bucket counts
  // make the merged histogram — and therefore the selection — independent
  // of the partitioning.
  Rng rng(401);
  Tensor x(1 << 18);
  x.fill_normal(rng, 0.0f, 1.0f);
  const size_t k = x.size() / 500;
  const int previous = parallel_threads();
  set_parallel_threads(1);
  const SparseTensor serial = select_topk(x.span(), k, TopKSelect::kHistogram);
  set_parallel_threads(4);
  const SparseTensor parallel =
      select_topk(x.span(), k, TopKSelect::kHistogram);
  set_parallel_threads(previous);
  expect_bit_identical(serial, parallel, "thread sweep");
}

TEST(ThresholdSelect, EmptyAndZeroK) {
  Tensor empty;
  EXPECT_EQ(select_topk(empty.span(), 5, TopKSelect::kHistogram).nnz(), 0u);
  EXPECT_EQ(topk_threshold(empty.span(), 5, TopKSelect::kHistogram), 0.0f);
  Rng rng(403);
  Tensor x(4096);
  x.fill_normal(rng, 0.0f, 1.0f);
  EXPECT_EQ(select_topk(x.span(), 0, TopKSelect::kHistogram).nnz(), 0u);
  EXPECT_EQ(topk_threshold(x.span(), 0, TopKSelect::kHistogram), 0.0f);
}

TEST(ThresholdSelect, RegistryExposesLegacyTwin) {
  auto fast = make_compressor("exact_topk", 1);
  auto legacy = make_compressor("exact_topk_legacy", 1);
  EXPECT_EQ(fast->name(), "exact_topk");
  EXPECT_EQ(legacy->name(), "exact_topk_legacy");
  Rng rng(405);
  Tensor x(10000);
  x.fill_normal(rng, 0.0f, 1.0f);
  expect_bit_identical(fast->compress(x.span(), 100),
                       legacy->compress(x.span(), 100), "registry twins");
}

TEST(ThresholdSelect, DgcBackendsAgree) {
  // DGC is randomized but seeds its sampling; with equal seeds the two
  // selection backends must walk the identical path.
  Rng rng(407);
  Tensor x(50000);
  x.fill_normal(rng, 0.0f, 1.0f);
  DgcTopK fast(0.01, 77, TopKSelect::kHistogram);
  DgcTopK legacy(0.01, 77, TopKSelect::kNthElement);
  expect_bit_identical(fast.compress(x.span(), 500),
                       legacy.compress(x.span(), 500), "dgc twins");
}

}  // namespace
}  // namespace hitopk::compress
