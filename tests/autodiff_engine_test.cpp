// Determinism tests for the rebuilt autodiff engine: tape reuse via
// reset() must be bitwise-identical to a fresh tape, the fused
// add_bias_relu op must be bitwise-identical to add_bias followed by relu,
// and run_convergence's parallel per-worker gradient fan-out must be
// bitwise-identical to serial execution for both dense SGD and LocalSGD.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "autodiff/tape.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "core/tensor.h"
#include "train/convergence.h"
#include "train/synthetic.h"

namespace hitopk {
namespace {

class ThreadGuard {
 public:
  ThreadGuard() : saved_(parallel_threads()) {}
  ~ThreadGuard() { set_parallel_threads(saved_); }

 private:
  int saved_;
};

// Builds a two-layer MLP forward/backward on the given tape and returns the
// loss; grads accumulate into `grad`.
double mlp_pass(ad::Tape& tape, const std::vector<float>& params,
                const Tensor& x, const std::vector<int>& labels,
                std::vector<float>& grad, bool fused) {
  const size_t dim = 6, hidden = 8, classes = 4;
  size_t off = 0;
  auto leaf = [&](size_t rows, size_t cols) {
    std::span<const float> value(params.data() + off, rows * cols);
    std::span<float> g(grad.data() + off, rows * cols);
    off += rows * cols;
    return tape.leaf(value, g, rows, cols);
  };
  const ad::VarId w1 = leaf(dim, hidden);
  const ad::VarId b1 = leaf(1, hidden);
  const ad::VarId w2 = leaf(hidden, classes);
  const ad::VarId b2 = leaf(1, classes);
  const ad::VarId input = tape.leaf(x.span(), {}, x.rows(), x.cols());
  const ad::VarId pre = tape.matmul(input, w1);
  const ad::VarId h = fused ? tape.add_bias_relu(pre, b1)
                            : tape.relu(tape.add_bias(pre, b1));
  const ad::VarId logits = tape.add_bias(tape.matmul(h, w2), b2);
  const double loss = tape.softmax_cross_entropy(logits, labels);
  tape.backward();
  return loss;
}

struct MlpFixture {
  std::vector<float> params;
  Tensor x{5, 6};
  std::vector<int> labels{0, 3, 1, 2, 0};

  MlpFixture() {
    Rng rng(17);
    params.resize(6 * 8 + 8 + 8 * 4 + 4);
    for (auto& p : params) p = static_cast<float>(rng.normal(0.0, 0.5));
    x.fill_normal(rng, 0.0f, 1.0f);
  }
};

TEST(TapeEngine, FusedBiasReluBitwiseMatchesSeparateOps) {
  MlpFixture f;
  std::vector<float> grad_fused(f.params.size(), 0.0f);
  std::vector<float> grad_separate(f.params.size(), 0.0f);
  ad::Tape tape_fused, tape_separate;
  const double loss_fused =
      mlp_pass(tape_fused, f.params, f.x, f.labels, grad_fused, true);
  const double loss_separate =
      mlp_pass(tape_separate, f.params, f.x, f.labels, grad_separate, false);
  EXPECT_EQ(loss_fused, loss_separate);
  ASSERT_EQ(0, std::memcmp(grad_fused.data(), grad_separate.data(),
                           grad_fused.size() * sizeof(float)));
}

TEST(TapeEngine, ResetTapeBitwiseMatchesFreshTape) {
  MlpFixture f;
  std::vector<float> grad_fresh(f.params.size(), 0.0f);
  double loss_fresh = 0.0;
  {
    ad::Tape tape;
    loss_fresh = mlp_pass(tape, f.params, f.x, f.labels, grad_fresh, true);
  }
  // One tape reused across three passes: every pass must reproduce the
  // fresh-tape loss and gradient exactly even though the arena storage is
  // recycled (dirty) between passes.
  ad::Tape reused;
  for (int pass = 0; pass < 3; ++pass) {
    std::vector<float> grad(f.params.size(), 0.0f);
    reused.reset();
    const double loss = mlp_pass(reused, f.params, f.x, f.labels, grad, true);
    EXPECT_EQ(loss, loss_fresh) << "pass " << pass;
    ASSERT_EQ(0, std::memcmp(grad.data(), grad_fresh.data(),
                             grad.size() * sizeof(float)))
        << "pass " << pass;
  }
}

TEST(TapeEngine, ResetKeepsArenaCapacity) {
  MlpFixture f;
  ad::Tape tape;
  std::vector<float> grad(f.params.size(), 0.0f);
  // First pass may grow the arena; identical later passes must reuse the
  // same backing storage (reset() keeps capacity, steady state allocates
  // nothing), which shows up as a stable node-value address.
  mlp_pass(tape, f.params, f.x, f.labels, grad, true);
  tape.reset();
  mlp_pass(tape, f.params, f.x, f.labels, grad, true);
  const float* second = tape.value(5).data();  // first matmul node
  tape.reset();
  mlp_pass(tape, f.params, f.x, f.labels, grad, true);
  const float* third = tape.value(5).data();
  EXPECT_EQ(second, third);
}

// ------------------------------------------------ parallel run_convergence
train::ConvergenceOptions quick(train::ConvergenceAlgorithm algorithm) {
  train::ConvergenceOptions options;
  options.algorithm = algorithm;
  options.epochs = 2;
  options.nodes = 2;
  options.gpus_per_node = 2;
  options.local_batch = 16;
  options.density = 0.05;
  options.seed = 33;
  return options;
}

// Trains a fresh vision task with the given pool width; returns the curve
// and the final parameters.
std::pair<train::ConvergenceResult, std::vector<float>> train_with_threads(
    train::ConvergenceAlgorithm algorithm, int threads) {
  set_parallel_threads(threads);
  auto task = train::make_vision_task(47, "det", {32, 24});
  const auto result = train::run_convergence(*task, quick(algorithm));
  std::vector<float> params(task->params().begin(), task->params().end());
  return {result, params};
}

void expect_identical_runs(train::ConvergenceAlgorithm algorithm) {
  const auto [serial, serial_params] = train_with_threads(algorithm, 1);
  const auto [parallel, parallel_params] = train_with_threads(algorithm, 4);
  ASSERT_EQ(serial.curve.size(), parallel.curve.size());
  for (size_t e = 0; e < serial.curve.size(); ++e) {
    EXPECT_EQ(serial.curve[e].train_loss, parallel.curve[e].train_loss)
        << "epoch " << e;
    EXPECT_EQ(serial.curve[e].quality, parallel.curve[e].quality)
        << "epoch " << e;
  }
  ASSERT_EQ(0, std::memcmp(serial_params.data(), parallel_params.data(),
                           serial_params.size() * sizeof(float)))
      << "final parameters diverged";
}

TEST(ParallelConvergence, DenseMatchesSerialBitwise) {
  ThreadGuard guard;
  expect_identical_runs(train::ConvergenceAlgorithm::kDense);
}

TEST(ParallelConvergence, MstopkMatchesSerialBitwise) {
  ThreadGuard guard;
  expect_identical_runs(train::ConvergenceAlgorithm::kMstopk);
}

TEST(ParallelConvergence, LocalSgdMatchesSerialBitwise) {
  ThreadGuard guard;
  expect_identical_runs(train::ConvergenceAlgorithm::kLocalSgd);
}

}  // namespace
}  // namespace hitopk
