// Property tests for the tiled SGEMM core: every transpose variant over
// ragged shapes straddling the register-tile boundaries must match the
// naive reference — bitwise when a single K block covers the reduction
// (both kernels then accumulate each output element in increasing k order),
// within float tolerance when K spans blocks.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "core/gemm.h"
#include "core/rng.h"
#include "core/tensor.h"

namespace hitopk::gemm {
namespace {

void fill_random(Tensor& t, Rng& rng) { t.fill_normal(rng, 0.0f, 1.0f); }

// Runs sgemm and sgemm_naive on identical inputs and compares.
void check_shape(Trans trans_a, Trans trans_b, size_t m, size_t n, size_t k,
                 bool accumulate, uint64_t seed) {
  Rng rng(seed);
  Tensor a(m * k), b(k * n), c_tiled(m * n), c_naive(m * n);
  fill_random(a, rng);
  fill_random(b, rng);
  if (accumulate) {
    Tensor base(m * n);
    fill_random(base, rng);
    std::copy(base.span().begin(), base.span().end(),
              c_tiled.span().begin());
    std::copy(base.span().begin(), base.span().end(),
              c_naive.span().begin());
  }
  const size_t lda = trans_a == Trans::kNo ? k : m;
  const size_t ldb = trans_b == Trans::kNo ? n : k;
  sgemm(trans_a, trans_b, m, n, k, a.data(), lda, b.data(), ldb,
        c_tiled.data(), n, accumulate);
  sgemm_naive(trans_a, trans_b, m, n, k, a.data(), lda, b.data(), ldb,
              c_naive.data(), n, accumulate);
  const bool exact = k <= kKc && !accumulate;
  for (size_t i = 0; i < m * n; ++i) {
    if (exact) {
      ASSERT_EQ(c_tiled[i], c_naive[i])
          << "element " << i << " m=" << m << " n=" << n << " k=" << k;
    } else {
      ASSERT_NEAR(c_tiled[i], c_naive[i],
                  1e-4f * (1.0f + std::fabs(c_naive[i])))
          << "element " << i << " m=" << m << " n=" << n << " k=" << k;
    }
  }
}

TEST(Gemm, AllVariantsRaggedShapesMatchNaive) {
  // Shapes straddle the kMr=4 / kNr=8 tile edges: one below, exact, one
  // above, plus degenerate single-row/column cases.
  const size_t sizes[] = {1, 3, 4, 5, 7, 8, 9, 16, 17, 33};
  const Trans variants[] = {Trans::kNo, Trans::kYes};
  uint64_t seed = 1;
  for (Trans ta : variants) {
    for (Trans tb : variants) {
      for (size_t m : sizes) {
        for (size_t n : sizes) {
          for (size_t k : {size_t{1}, size_t{5}, size_t{32}}) {
            check_shape(ta, tb, m, n, k, false, seed++);
          }
        }
      }
    }
  }
}

TEST(Gemm, BitwiseIdenticalToKOrderedLoopWithinOneKBlock) {
  // The accumulation-order contract the determinism tests lean on: for
  // K <= kKc each output element is the increasing-k float sum.
  check_shape(Trans::kNo, Trans::kNo, 32, 96, 64, false, 101);
  check_shape(Trans::kNo, Trans::kYes, 32, 64, 96, false, 102);
  check_shape(Trans::kYes, Trans::kNo, 64, 96, 32, false, 103);
}

TEST(Gemm, AccumulateAddsIntoExistingC) {
  for (Trans ta : {Trans::kNo, Trans::kYes}) {
    for (Trans tb : {Trans::kNo, Trans::kYes}) {
      check_shape(ta, tb, 13, 21, 17, true, 201);
    }
  }
}

TEST(Gemm, LargeKSpansMultipleBlocks) {
  check_shape(Trans::kNo, Trans::kNo, 9, 11, kKc + 37, false, 301);
  check_shape(Trans::kNo, Trans::kYes, 9, 11, 2 * kKc + 3, false, 302);
  check_shape(Trans::kYes, Trans::kNo, 9, 11, kKc + 1, true, 303);
}

TEST(Gemm, KZeroOverwritesOrKeepsC) {
  Tensor a(0), b(0), c(6);
  c.fill(3.0f);
  sgemm(Trans::kNo, Trans::kNo, 2, 3, 0, a.data(), 1, b.data(), 3, c.data(),
        3, /*accumulate=*/true);
  for (size_t i = 0; i < 6; ++i) EXPECT_EQ(c[i], 3.0f);
  sgemm(Trans::kNo, Trans::kNo, 2, 3, 0, a.data(), 1, b.data(), 3, c.data(),
        3, /*accumulate=*/false);
  for (size_t i = 0; i < 6; ++i) EXPECT_EQ(c[i], 0.0f);
}

TEST(Gemm, StridedOutputRowsRespectLdc) {
  // C rows embedded in a wider matrix: columns outside n are untouched.
  const size_t m = 5, n = 6, k = 7, ldc = 9;
  Rng rng(11);
  Tensor a(m * k), b(k * n);
  fill_random(a, rng);
  fill_random(b, rng);
  std::vector<float> c(m * ldc, -7.0f);
  Tensor ref(m * n);
  sgemm(Trans::kNo, Trans::kNo, m, n, k, a.data(), k, b.data(), n, c.data(),
        ldc, false);
  sgemm_naive(Trans::kNo, Trans::kNo, m, n, k, a.data(), k, b.data(), n,
              ref.data(), n, false);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < ldc; ++j) {
      if (j < n) {
        EXPECT_EQ(c[i * ldc + j], ref[i * n + j]);
      } else {
        EXPECT_EQ(c[i * ldc + j], -7.0f) << "padding clobbered";
      }
    }
  }
}

}  // namespace
}  // namespace hitopk::gemm
