// Tests for the shared thread pool (core/parallel.h), the thread-local
// scratch arena (core/workspace.h), and the determinism contract of the
// parallel collectives: hitopk_comm / ring_allreduce executed on the pool
// must produce bitwise-identical RankData to serial execution.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "collectives/hitopkcomm.h"
#include "collectives/ring.h"
#include "compress/error_feedback.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "core/tensor.h"
#include "core/workspace.h"

namespace hitopk {
namespace {

using coll::HiTopKOptions;
using coll::RankData;
using simnet::Cluster;
using simnet::LinkParams;
using simnet::Topology;

// Restores the configured pool width when a test returns.
class ThreadGuard {
 public:
  ThreadGuard() : saved_(parallel_threads()) {}
  ~ThreadGuard() { set_parallel_threads(saved_); }

 private:
  int saved_;
};

// ------------------------------------------------------------- parallel_for
TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadGuard guard;
  set_parallel_threads(4);
  const size_t n = 10000;
  std::vector<int> visits(n, 0);
  parallel_for(0, n, [&](size_t i) { ++visits[i]; });
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(visits[i], 1) << "index " << i;
}

TEST(ParallelFor, HonorsBeginOffsetAndEmptyRange) {
  ThreadGuard guard;
  set_parallel_threads(4);
  std::atomic<size_t> sum{0};
  parallel_for(100, 200, [&](size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), (100u + 199u) * 100u / 2u);
  parallel_for(5, 5, [&](size_t) { FAIL() << "empty range ran"; });
  parallel_for(7, 3, [&](size_t) { FAIL() << "inverted range ran"; });
}

TEST(ParallelFor, SerialFallbackMatchesParallel) {
  ThreadGuard guard;
  const size_t n = 4096;
  std::vector<double> serial(n), parallel(n);
  set_parallel_threads(1);
  parallel_for(0, n, [&](size_t i) {
    serial[i] = static_cast<double>(i) * 1.5 + 2.0;
  });
  set_parallel_threads(8);
  parallel_for(0, n, [&](size_t i) {
    parallel[i] = static_cast<double>(i) * 1.5 + 2.0;
  });
  EXPECT_EQ(0, std::memcmp(serial.data(), parallel.data(),
                           n * sizeof(double)));
}

TEST(ParallelFor, PropagatesExceptions) {
  ThreadGuard guard;
  set_parallel_threads(4);
  EXPECT_THROW(
      parallel_for(0, 1000,
                   [&](size_t i) {
                     if (i == 777) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, NestedCallsRunInline) {
  ThreadGuard guard;
  set_parallel_threads(4);
  std::vector<int> visits(64 * 64, 0);
  parallel_for(0, 64, [&](size_t outer) {
    parallel_for(0, 64, [&](size_t inner) { ++visits[outer * 64 + inner]; });
  });
  for (int v : visits) ASSERT_EQ(v, 1);
}

TEST(ParallelFor, ShrinkingThreadCountTakesEffect) {
  ThreadGuard guard;
  // Grow the pool first, then shrink: iterations must run on at most the
  // configured number of distinct threads (workers beyond the width park).
  set_parallel_threads(8);
  parallel_for(0, 64, [](size_t) {});
  set_parallel_threads(2);
  std::mutex mutex;
  std::set<std::thread::id> seen;
  parallel_for(0, 256, [&](size_t) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
    std::lock_guard<std::mutex> lock(mutex);
    seen.insert(std::this_thread::get_id());
  });
  EXPECT_LE(seen.size(), 2u);
}

TEST(ParallelFor, GrainLargerThanRangeRunsInline) {
  ThreadGuard guard;
  set_parallel_threads(4);
  std::vector<int> visits(10, 0);
  parallel_for(0, 10, [&](size_t i) { ++visits[i]; }, /*grain=*/100);
  for (int v : visits) ASSERT_EQ(v, 1);
}

// --------------------------------------------------------------- workspace
TEST(Workspace, BuffersAreReturnedAndReused) {
  workspace_clear();
  EXPECT_EQ(workspace_cached_buffers(), 0u);
  const float* first_data = nullptr;
  {
    Scratch<float> a(1024);
    first_data = a.data();
    EXPECT_EQ(a.size(), 1024u);
  }
  EXPECT_EQ(workspace_cached_buffers(), 1u);
  {
    // Same thread, same type: the returned buffer (and its allocation) is
    // handed back out.
    Scratch<float> b(512);
    EXPECT_EQ(b.data(), first_data);
    EXPECT_EQ(workspace_cached_buffers(), 0u);
  }
  workspace_clear();
}

TEST(Workspace, ZeroedCheckoutIsZero) {
  {
    Scratch<float> dirty(256);
    for (size_t i = 0; i < dirty.size(); ++i) dirty[i] = 1.0f;
  }
  Scratch<float> clean(256, /*zeroed=*/true);
  for (size_t i = 0; i < clean.size(); ++i) ASSERT_EQ(clean[i], 0.0f);
}

TEST(Workspace, NestedCheckoutsAreDistinct) {
  Scratch<uint32_t> outer(100);
  Scratch<uint32_t> inner(100);
  EXPECT_NE(outer.data(), inner.data());
}

// ------------------------------------------------- collective determinism
Topology fabric(int nodes, int gpus) {
  return Topology(nodes, gpus, LinkParams{1e-6, 1e-9}, LinkParams{1e-5, 1e-8});
}

std::vector<Tensor> random_grads(int world, size_t elems, uint64_t seed) {
  std::vector<Tensor> grads;
  Rng rng(seed);
  for (int r = 0; r < world; ++r) {
    Tensor t(elems);
    t.fill_normal(rng, 0.0f, 1.0f);
    grads.push_back(std::move(t));
  }
  return grads;
}

// Runs functional hitopk_comm over a copy of `grads` with the given pool
// width and returns the aggregated per-rank buffers.
std::vector<Tensor> run_hitopk(const std::vector<Tensor>& grads, size_t elems,
                               const Topology& topo,
                               const HiTopKOptions& options, int threads,
                               compress::ErrorFeedback* ef = nullptr) {
  set_parallel_threads(threads);
  std::vector<Tensor> copy = grads;
  RankData spans;
  for (auto& g : copy) spans.push_back(g.span());
  Cluster cluster(topo);
  HiTopKOptions opts = options;
  opts.error_feedback = ef;
  coll::hitopk_comm(cluster, spans, elems, opts, 0.0);
  return copy;
}

void expect_bitwise_equal(const std::vector<Tensor>& a,
                          const std::vector<Tensor>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t r = 0; r < a.size(); ++r) {
    ASSERT_EQ(a[r].size(), b[r].size());
    ASSERT_EQ(0, std::memcmp(a[r].data(), b[r].data(),
                             a[r].size() * sizeof(float)))
        << "rank " << r << " diverged";
  }
}

TEST(ParallelDeterminism, HiTopKCommMatchesSerialBitwise) {
  ThreadGuard guard;
  const Topology topo = fabric(3, 4);
  const size_t elems = 1 << 13;
  const auto grads = random_grads(topo.world_size(), elems, 301);
  HiTopKOptions options;
  options.density = 0.01;

  const auto serial = run_hitopk(grads, elems, topo, options, 1);
  const auto parallel = run_hitopk(grads, elems, topo, options, 8);
  expect_bitwise_equal(serial, parallel);
}

TEST(ParallelDeterminism, HiTopKCommLegacyOperatorMatchesSerialBitwise) {
  ThreadGuard guard;
  const Topology topo = fabric(2, 4);
  const size_t elems = 1 << 12;
  const auto grads = random_grads(topo.world_size(), elems, 307);
  HiTopKOptions options;
  options.density = 0.01;
  options.mstopk_histogram = false;

  const auto serial = run_hitopk(grads, elems, topo, options, 1);
  const auto parallel = run_hitopk(grads, elems, topo, options, 8);
  expect_bitwise_equal(serial, parallel);
}

TEST(ParallelDeterminism, HiTopKCommWithErrorFeedbackMatchesSerialBitwise) {
  ThreadGuard guard;
  const Topology topo = fabric(2, 2);
  const size_t elems = 1 << 12;
  HiTopKOptions options;
  options.density = 0.01;

  // Two iterations so the second run consumes residuals written by the
  // first: both the residual state and the aggregated output must match.
  compress::ErrorFeedback ef_serial;
  compress::ErrorFeedback ef_parallel;
  std::vector<Tensor> out_serial, out_parallel;
  for (uint64_t step = 0; step < 2; ++step) {
    const auto grads = random_grads(topo.world_size(), elems, 311 + step);
    out_serial = run_hitopk(grads, elems, topo, options, 1, &ef_serial);
    out_parallel = run_hitopk(grads, elems, topo, options, 8, &ef_parallel);
  }
  expect_bitwise_equal(out_serial, out_parallel);
  EXPECT_EQ(ef_serial.num_tensors(), ef_parallel.num_tensors());
  EXPECT_DOUBLE_EQ(ef_serial.residual_sq_norm(), ef_parallel.residual_sq_norm());
}

TEST(ParallelDeterminism, HiTopKCommHandlesFewerElemsThanGpus) {
  // Regression: with elems < gpus_per_node some shards are empty; their
  // streams are skipped but must still contribute valid (empty) sparse
  // tensors to the rebuild instead of default dense_size-0 ones.
  ThreadGuard guard;
  set_parallel_threads(1);
  const Topology topo = fabric(2, 4);
  const size_t elems = 3;
  const auto grads = random_grads(topo.world_size(), elems, 317);
  HiTopKOptions options;
  options.density = 0.5;
  const auto out = run_hitopk(grads, elems, topo, options, 1);
  for (size_t i = 0; i < elems; ++i) {
    ASSERT_EQ(out[0][i], out[1][i]);  // all ranks identical
  }
}

TEST(ParallelDeterminism, RingAllreduceMatchesSerialBitwise) {
  ThreadGuard guard;
  const Topology topo = fabric(1, 8);
  const size_t elems = 4096;
  const auto grads = random_grads(topo.world_size(), elems, 313);
  const coll::Group world = coll::world_group(topo);

  auto run = [&](int threads) {
    set_parallel_threads(threads);
    std::vector<Tensor> copy = grads;
    RankData spans;
    for (auto& g : copy) spans.push_back(g.span());
    Cluster cluster(topo);
    coll::ring_allreduce(cluster, world, spans, elems, coll::WireDtype::kFp32, 0.0);
    return copy;
  };
  expect_bitwise_equal(run(1), run(8));
}

}  // namespace
}  // namespace hitopk
