// Multi-tenant conformance suite: the per-flow reservation API, cross-job
// processor sharing, per-job accounting, gang placement policies, the job
// scheduler event loop, FaultPlan interplay, the contention-aware planner
// entry point, and the Poisson trace-replay harness.
//
// The two contracts everything here leans on:
//
//   backward compatibility — a single job on an idle cluster takes the
//     exact legacy arithmetic path: the deprecated send()/try_send()
//     wrappers and any non-default job id reproduce the pre-refactor
//     clocks bit for bit;
//   processor sharing — flows of different jobs overlapping on a NIC
//     split its rate: with matched per-flow and aggregate rates, two jobs
//     alternating transfers through one NIC finish their n-th transfers at
//     exactly (2n-1)*T and 2n*T (each job ~2x its isolated pace).
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "collectives/planner.h"
#include "core/check.h"
#include "simnet/cluster.h"
#include "simnet/fault.h"
#include "simnet/job_scheduler.h"
#include "train/tenant.h"

namespace hitopk::simnet {
namespace {

Topology tiny() {
  return Topology(2, 2, LinkParams{1e-6, 1e-9}, LinkParams{1e-5, 1e-8});
}

// 4 nodes x 4 GPUs in two 2-node pods over a 2:1 oversubscribed tree.
Topology podded() {
  return Topology(4, 4, LinkParams{1e-6, 1e-9}, LinkParams{1e-5, 1e-8},
                  /*nic_beta=*/0.0, /*oversubscription=*/2.0,
                  /*nodes_per_pod=*/2);
}

// ------------------------------------------------- wrapper bit-identity

TEST(FlowApi, SendWrapperBitIdenticalToSubmit) {
  Cluster legacy(tiny());
  Cluster flows(tiny());
  struct Msg {
    int src, dst;
    size_t bytes;
    double ready, extra;
  };
  const std::vector<Msg> msgs = {
      {0, 1, 1000, 0.0, 0.0},  {0, 2, 4096, 0.0, 0.0},
      {1, 3, 777, 1e-5, 2e-6}, {2, 0, 65536, 0.0, 0.0},
      {3, 1, 123, 5e-5, 0.0},  {0, 2, 4096, 2e-4, 0.0},
  };
  for (const Msg& m : msgs) {
    const double a = legacy.send(m.src, m.dst, m.bytes, m.ready, m.extra);
    const FlowOutcome b =
        flows.submit({kDefaultJob, m.src, m.dst, m.bytes, m.ready, m.extra});
    EXPECT_TRUE(b.delivered);
    EXPECT_EQ(a, b.time);  // bitwise, not just close
    EXPECT_EQ(b.share, 1.0);
  }
  EXPECT_EQ(legacy.quiescent_time(), flows.quiescent_time());
  EXPECT_EQ(legacy.inter_node_bytes(), flows.inter_node_bytes());
  EXPECT_EQ(legacy.intra_node_bytes(), flows.intra_node_bytes());
}

TEST(FlowApi, TrySendWrapperBitIdenticalUnderFaults) {
  FaultPlan plan;
  plan.preempt(/*rank=*/3, /*time=*/1e-4);
  plan.set_transient(0.2, 1e-6, 2);
  Cluster legacy(tiny());
  Cluster flows(tiny());
  legacy.set_fault_plan(&plan);
  flows.set_fault_plan(&plan);
  struct Msg {
    int src, dst;
    size_t bytes;
    double ready;
  };
  const std::vector<Msg> msgs = {
      {0, 2, 4096, 0.0},  {1, 3, 512, 0.0},    {2, 1, 2048, 0.0},
      {0, 3, 512, 2e-4},  // rank 3 dead by now: undelivered on both paths
      {2, 0, 8192, 3e-4}, {1, 2, 1024, 3e-4},
  };
  for (const Msg& m : msgs) {
    const SendOutcome a = legacy.try_send(m.src, m.dst, m.bytes, m.ready);
    const FlowOutcome b =
        flows.submit({kDefaultJob, m.src, m.dst, m.bytes, m.ready});
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_EQ(a.time, b.time);
    EXPECT_EQ(a.dead_rank, b.dead_rank);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.degraded, b.degraded);
  }
  EXPECT_EQ(legacy.quiescent_time(), flows.quiescent_time());
}

TEST(FlowApi, JobIdInvariantOnIdleCluster) {
  // A lone tenant's clocks must not depend on its job id: job 7 on a fresh
  // cluster replays the default-job arithmetic exactly.
  Cluster a(tiny());
  Cluster b(tiny());
  const std::vector<Flow> flows = {
      {kDefaultJob, 0, 2, 4096, 0.0, 0.0}, {kDefaultJob, 2, 0, 512, 0.0, 0.0},
      {kDefaultJob, 0, 1, 100, 1e-5, 0.0}, {kDefaultJob, 1, 3, 2048, 0.0, 1e-6},
      {kDefaultJob, 3, 2, 4096, 2e-4, 0.0},
  };
  for (const Flow& f : flows) {
    Flow tagged = f;
    tagged.job = 7;
    const FlowOutcome oa = a.submit(f);
    const FlowOutcome ob = b.submit(tagged);
    EXPECT_EQ(oa.time, ob.time);
    EXPECT_EQ(oa.start, ob.start);
    EXPECT_EQ(oa.share, ob.share);
  }
  EXPECT_EQ(a.quiescent_time(), b.quiescent_time());
}

// ------------------------------------------------- processor sharing

TEST(ProcessorSharing, TwoJobsAlternatingOneNicExactTwoX) {
  // Matched per-flow and aggregate NIC rates, zero latency: one flow of B
  // bytes takes T = beta*B alone.  Jobs 1 and 2 send disjoint GPU pairs
  // across the same node pair, alternating, each flow ready when the job's
  // previous flow finished.  The reservation algebra gives exactly
  //   job1: T, 3T, 5T     job2: 2T, 4T, 6T
  // (each job's n-th flow at ~2x its isolated pace nT, the
  // processor-sharing invariant; the first submission is the unstretched
  // first-comer).
  const double beta = 1e-8;
  const size_t bytes = 1 << 20;
  const double T = beta * static_cast<double>(bytes);
  Topology topo(2, 2, LinkParams{1e-6, 1e-9}, LinkParams{0.0, beta});
  Cluster cluster(topo);

  double a = 0.0, b = 0.0;
  FlowOutcome oa, ob;
  for (int n = 1; n <= 3; ++n) {
    oa = cluster.submit({1, 0, 2, bytes, a, 0.0});
    a = oa.time;
    ob = cluster.submit({2, 1, 3, bytes, b, 0.0});
    b = ob.time;
    EXPECT_DOUBLE_EQ(a, (2.0 * n - 1.0) * T) << "job1 flow " << n;
    EXPECT_DOUBLE_EQ(b, 2.0 * n * T) << "job2 flow " << n;
  }
  EXPECT_DOUBLE_EQ(oa.share, 2.0);
  EXPECT_DOUBLE_EQ(ob.share, 2.0);

  // Isolated reference: the same three flows alone finish at 3T — the
  // shared run is within [1.67x, 2x] of isolated, converging to 2x.
  Cluster alone(topo);
  double iso = 0.0;
  for (int n = 0; n < 3; ++n) iso = alone.submit({1, 0, 2, bytes, iso}).time;
  EXPECT_DOUBLE_EQ(iso, 3.0 * T);
  EXPECT_NEAR(a / iso, 2.0, 0.35);
  EXPECT_NEAR(b / iso, 2.0, 0.01);
}

TEST(ProcessorSharing, ThreeJobsShareAtOneThird) {
  const double beta = 1e-8;
  const size_t bytes = 1 << 20;
  const double T = beta * static_cast<double>(bytes);
  Topology topo(2, 3, LinkParams{1e-6, 1e-9}, LinkParams{0.0, beta});
  Cluster cluster(topo);
  // Jobs 1..3 each start one flow at t=0 over disjoint GPU pairs; the
  // second and third see 1 and 2 earlier reservations respectively.
  EXPECT_DOUBLE_EQ(cluster.submit({1, 0, 3, bytes, 0.0}).time, T);
  EXPECT_DOUBLE_EQ(cluster.submit({2, 1, 4, bytes, 0.0}).time, 2.0 * T);
  const FlowOutcome third = cluster.submit({3, 2, 5, bytes, 0.0});
  EXPECT_DOUBLE_EQ(third.share, 3.0);
  EXPECT_DOUBLE_EQ(third.time, 3.0 * T);
}

TEST(ProcessorSharing, IntraNodeFlowsNeverShare) {
  // NVLink peer ports are tenant-exclusive per rank; two jobs moving data
  // inside a node see no share factor.
  Cluster cluster(tiny());
  const FlowOutcome a = cluster.submit({1, 0, 1, 1 << 20, 0.0});
  const FlowOutcome b = cluster.submit({2, 1, 0, 1 << 20, 0.0});
  EXPECT_DOUBLE_EQ(a.share, 1.0);
  EXPECT_DOUBLE_EQ(b.share, 1.0);
  EXPECT_FALSE(a.inter_node);
}

// ------------------------------------------------- per-job accounting

TEST(Accounting, PerJobBytesSumToTotals) {
  Cluster cluster(tiny());
  cluster.submit({1, 0, 2, 1000, 0.0});  // inter
  cluster.submit({1, 0, 1, 500, 0.0});   // intra
  cluster.submit({2, 1, 3, 300, 0.0});   // inter
  cluster.submit({kDefaultJob, 2, 3, 50, 0.0});  // intra, default lane
  EXPECT_EQ(cluster.inter_node_bytes(), 1300u);
  EXPECT_EQ(cluster.intra_node_bytes(), 550u);
  EXPECT_EQ(cluster.inter_node_bytes(1), 1000u);
  EXPECT_EQ(cluster.intra_node_bytes(1), 500u);
  EXPECT_EQ(cluster.inter_node_bytes(2), 300u);
  EXPECT_EQ(cluster.inter_node_bytes(kDefaultJob), 0u);
  EXPECT_EQ(cluster.intra_node_bytes(kDefaultJob), 50u);
  EXPECT_EQ(cluster.traffic_jobs(), (std::vector<int>{0, 1, 2}));

  size_t inter_sum = 0, intra_sum = 0;
  for (int job : cluster.traffic_jobs()) {
    inter_sum += cluster.inter_node_bytes(job);
    intra_sum += cluster.intra_node_bytes(job);
  }
  EXPECT_EQ(inter_sum, cluster.inter_node_bytes());
  EXPECT_EQ(intra_sum, cluster.intra_node_bytes());
}

TEST(Accounting, ChromeTraceGetsPerJobTracks) {
  Cluster cluster(tiny());
  cluster.enable_tracing();
  cluster.submit({1, 0, 2, 1000, 0.0});
  cluster.submit({2, 1, 3, 2000, 0.0});
  std::ostringstream os;
  cluster.write_chrome_trace(os, "mt");
  const std::string json = os.str();
  EXPECT_NE(json.find("mt/job1"), std::string::npos);
  EXPECT_NE(json.find("mt/job2"), std::string::npos);
  EXPECT_NE(json.find("\"share\""), std::string::npos);
  // Balanced braces/brackets (same check as the tracing test).
  int depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);

  // Single-tenant traces keep the original one-process layout.
  Cluster solo(tiny());
  solo.enable_tracing();
  solo.send(0, 2, 1000, 0.0);
  std::ostringstream os2;
  solo.write_chrome_trace(os2, "mt");
  EXPECT_EQ(os2.str().find("/job"), std::string::npos);
}

// ------------------------------------------------- placement policies

TEST(Placement, LocalityAwarePrefersOneNodeThenOnePod) {
  Cluster cluster(podded());
  JobScheduler sched(cluster, {PlacementPolicy::kLocalityAware, true});
  const std::vector<int> gang4 = sched.place(4);
  ASSERT_EQ(gang4.size(), 4u);
  const Topology& topo = cluster.topology();
  for (int r : gang4) EXPECT_TRUE(topo.same_node(gang4[0], r));
  const std::vector<int> gang8 = sched.place(8);
  ASSERT_EQ(gang8.size(), 8u);
  for (int r : gang8) {
    EXPECT_TRUE(topo.same_pod(topo.node_of(gang8[0]), topo.node_of(r)));
  }
}

TEST(Placement, SpreadMaximizesNodeFanout) {
  Cluster cluster(podded());
  JobScheduler sched(cluster, {PlacementPolicy::kSpread, true});
  const std::vector<int> gang4 = sched.place(4);
  ASSERT_EQ(gang4.size(), 4u);
  const Topology& topo = cluster.topology();
  for (size_t i = 0; i < gang4.size(); ++i) {
    for (size_t j = i + 1; j < gang4.size(); ++j) {
      EXPECT_FALSE(topo.same_node(gang4[i], gang4[j]));
    }
  }
}

TEST(Placement, PackByPodStaysInsideOnePod) {
  Cluster cluster(podded());
  JobScheduler sched(cluster, {PlacementPolicy::kPackByPod, true});
  const std::vector<int> gang8 = sched.place(8);
  ASSERT_EQ(gang8.size(), 8u);
  const Topology& topo = cluster.topology();
  for (int r : gang8) {
    EXPECT_TRUE(topo.same_pod(topo.node_of(gang8[0]), topo.node_of(r)));
  }
}

TEST(Placement, ReturnsEmptyWhenFullAndThrowsWhenImpossible) {
  Cluster cluster(tiny());
  JobScheduler sched(cluster, {});
  EXPECT_EQ(sched.place(4).size(), 4u);  // fits an empty world
  EXPECT_THROW(sched.place(5), CheckError);
}

// ------------------------------------------------- scheduler event loop

JobBody unit_iteration_body() {
  // One second per iteration, no flows — isolates the queueing logic.
  return [](Cluster&, const JobSpec&, const std::vector<int>&, double start) {
    return JobIteration{start + 1.0, false};
  };
}

TEST(Scheduler, SerializesFullWorldGangs) {
  Cluster cluster(tiny());
  JobScheduler sched(cluster, {});
  std::vector<JobSpec> jobs(2);
  jobs[0] = {1, 0.0, 4, 2, 0, 0.0};
  jobs[1] = {2, 0.5, 4, 3, 0, 0.0};
  const auto records = sched.run(jobs, unit_iteration_body());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_DOUBLE_EQ(records[0].start, 0.0);
  EXPECT_DOUBLE_EQ(records[0].finish, 2.0);
  EXPECT_EQ(records[0].iterations_done, 2);
  // Job 2 queues behind job 1's full-world gang.
  EXPECT_DOUBLE_EQ(records[1].start, 2.0);
  EXPECT_DOUBLE_EQ(records[1].finish, 5.0);
  EXPECT_DOUBLE_EQ(records[1].queued_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(records[1].jct(), 4.5);
}

TEST(Scheduler, BackfillLetsSmallJobsPassBlockedHead) {
  std::vector<JobSpec> jobs(3);
  jobs[0] = {1, 0.0, 2, 2, 0, 0.0};   // half the world, runs [0, 2)
  jobs[1] = {2, 0.1, 4, 1, 0, 0.0};   // full world: blocked until job 1 ends
  jobs[2] = {3, 0.2, 2, 1, 0, 0.0};   // fits beside job 1

  Cluster with(tiny());
  const auto backfilled =
      JobScheduler(with, {PlacementPolicy::kPackByPod, true})
          .run(jobs, unit_iteration_body());
  EXPECT_DOUBLE_EQ(backfilled[2].start, 0.2);   // jumped the blocked head
  EXPECT_DOUBLE_EQ(backfilled[1].start, 2.0);

  Cluster without(tiny());
  const auto fifo = JobScheduler(without, {PlacementPolicy::kPackByPod, false})
                        .run(jobs, unit_iteration_body());
  EXPECT_DOUBLE_EQ(fifo[1].start, 2.0);
  EXPECT_GE(fifo[2].start, fifo[1].start);  // strict FIFO: waits its turn
}

TEST(Scheduler, FaultAbortsOnlyJobsPlacedOnDeadRank) {
  // Rank 3 is preempted from the start.  Two 2-GPU jobs under locality
  // placement land on node 0 (ranks 0,1) and node 1 (ranks 2,3); only the
  // job holding rank 3 aborts, and its gang frees for the next arrival.
  FaultPlan plan;
  plan.preempt(3, 0.0);
  Cluster cluster(tiny());
  cluster.set_fault_plan(&plan);
  JobScheduler sched(cluster, {PlacementPolicy::kLocalityAware, true});

  const JobBody body = [](Cluster& c, const JobSpec& spec,
                          const std::vector<int>& ranks, double start) {
    const FlowOutcome out =
        c.submit({spec.id, ranks[0], ranks[1], 1 << 16, start});
    return JobIteration{out.time, !out.delivered};
  };
  std::vector<JobSpec> jobs(3);
  jobs[0] = {1, 0.0, 2, 2, 0, 0.0};
  jobs[1] = {2, 0.0, 2, 2, 0, 0.0};
  jobs[2] = {3, 1.0, 2, 1, 0, 0.0};  // arrives late, reuses a freed gang
  const auto records = sched.run(jobs, body);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_FALSE(records[0].aborted);
  EXPECT_EQ(records[0].iterations_done, 2);
  EXPECT_TRUE(records[1].aborted);
  EXPECT_EQ(records[1].iterations_done, 0);
  ASSERT_EQ(records[1].ranks.size(), 2u);
  EXPECT_EQ(records[1].ranks[1], 3);
  EXPECT_FALSE(records[2].aborted);
}

// ------------------------------------------------- trace generation/replay

TEST(TraceReplay, GeneratorIsSeedDeterministic) {
  TraceOptions options;
  options.jobs = 40;
  options.seed = 77;
  const auto a = generate_trace(options);
  const auto b = generate_trace(options);
  ASSERT_EQ(a.size(), 40u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].gpus, b[i].gpus);
    EXPECT_EQ(a[i].iterations, b[i].iterations);
    EXPECT_GE(a[i].id, 1);  // tenant ids never alias kDefaultJob
  }
  options.seed = 78;
  const auto c = generate_trace(options);
  bool differs = false;
  for (size_t i = 0; i < a.size(); ++i) {
    differs = differs || a[i].arrival != c[i].arrival || a[i].gpus != c[i].gpus;
  }
  EXPECT_TRUE(differs);
}

TEST(TraceReplay, SmokeReplayUnderPinnedSeed) {
  // The CI legs pin HITOPK_FIG12_SEED; this smoke replay follows the same
  // seed so release and sanitizer builds replay one identical trace.
  uint64_t seed = 20260807ull;
  if (const char* env = std::getenv("HITOPK_FIG12_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  TraceOptions options;
  options.jobs = 16;
  options.seed = seed;
  options.gang_sizes = {2, 4, 8};
  options.bytes_per_gpu = 4 << 20;
  options.mean_interarrival_seconds = 0.02;
  const auto trace = generate_trace(options);

  train::TenantWorkload workload;
  workload.resolution = 96;
  const JobBody body = train::make_tenant_body(workload);
  const Topology topo = podded();
  const ReplayMetrics metrics =
      replay_trace(topo, trace, body, PlacementPolicy::kLocalityAware);
  ASSERT_EQ(metrics.records.size(), trace.size());
  EXPECT_GT(metrics.makespan, 0.0);
  EXPECT_GT(metrics.goodput, 0.0);
  EXPECT_GE(metrics.mean_slowdown, 1.0);  // queueing + contention only slow
  EXPECT_GE(metrics.p99_jct, metrics.p95_jct);
  EXPECT_GE(metrics.p95_jct, metrics.p50_jct);
  for (const JobRecord& rec : metrics.records) {
    EXPECT_FALSE(rec.aborted);
    EXPECT_EQ(rec.iterations_done, rec.spec.iterations);
    EXPECT_GT(rec.spec.isolated_seconds, 0.0);
    EXPECT_GE(rec.jct(), 0.0);
  }

  // Same trace, same policy: the replay itself is deterministic.
  const ReplayMetrics again =
      replay_trace(topo, trace, body, PlacementPolicy::kLocalityAware);
  EXPECT_EQ(metrics.makespan, again.makespan);
  EXPECT_EQ(metrics.mean_slowdown, again.mean_slowdown);
  EXPECT_EQ(metrics.p99_jct, again.p99_jct);
}

// ------------------------------------------------- contention-aware planner

TEST(LivePlanner, IdleClusterPinnedToTopologyWinners) {
  const Topology topo = podded();
  coll::Planner by_topo;
  coll::Planner by_cluster;
  const coll::PlanChoice a = by_topo.plan(topo, 1 << 18);
  Cluster idle(topo);
  const coll::PlanChoice b = by_cluster.plan(idle, 1 << 18);
  EXPECT_EQ(a.algorithm, b.algorithm);
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.ring_order, b.ring_order);
  EXPECT_EQ(a.predicted_seconds, b.predicted_seconds);
  EXPECT_EQ(a.flat_ring_seconds, b.flat_ring_seconds);
  // The delegated call populates the same cache as the topology path.
  const coll::PlanChoice c = by_cluster.plan(idle, 1 << 18);
  EXPECT_TRUE(c.cache_hit);
}

TEST(LivePlanner, LoadSlowsTheRingAndNeverLosesToIt) {
  const Topology topo = podded();
  coll::Planner planner;
  const coll::PlanChoice idle = planner.plan(topo, 1 << 18);

  Cluster loaded(topo);
  // A background tenant holds long reservations on every NIC lane.
  for (int node = 0; node + 1 < topo.nodes(); ++node) {
    loaded.submit({1, topo.rank_of(node, 0), topo.rank_of(node + 1, 0),
                   32 << 20, 0.0});
  }
  const coll::PlanChoice live =
      planner.plan(loaded, 1 << 18, 1.0, /*job=*/2, /*start=*/0.0);
  EXPECT_FALSE(live.cache_hit);
  EXPECT_LE(live.predicted_seconds, live.flat_ring_seconds);
  EXPECT_GE(live.flat_ring_seconds, idle.flat_ring_seconds);
  // Scoring is what-if only: the live cluster's state is untouched, so a
  // fresh idle plan from the same planner still matches the pinned one.
  EXPECT_EQ(planner.plan(topo, 1 << 18).predicted_seconds,
            idle.predicted_seconds);
}

}  // namespace
}  // namespace hitopk::simnet
