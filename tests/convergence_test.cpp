// Tests for the synthetic tasks and the distributed convergence harness
// (Fig. 10 / Table 2 machinery).  Convergence runs are kept short; the full
// curves live in bench_fig10_convergence.
#include <gtest/gtest.h>

#include "train/convergence.h"
#include "train/synthetic.h"

namespace hitopk::train {
namespace {

ConvergenceOptions quick(ConvergenceAlgorithm algorithm, int epochs = 8) {
  ConvergenceOptions options;
  options.algorithm = algorithm;
  options.epochs = epochs;
  options.nodes = 2;
  options.gpus_per_node = 2;
  options.local_batch = 32;  // global batch 128, the calibrated regime
  options.density = 0.05;
  options.seed = 21;
  return options;
}

// ------------------------------------------------------------ tasks
TEST(SyntheticTasks, VisionTaskShape) {
  auto task = make_vision_task(3);
  EXPECT_EQ(task->name(), "resnet50-proxy");
  EXPECT_EQ(task->quality_metric(), "top-5 accuracy");
  EXPECT_GT(task->param_count(), 10'000u);
  EXPECT_EQ(task->params().size(), task->param_count());
  // Segments tile the flat parameter vector exactly.
  size_t covered = 0;
  for (const auto& seg : task->segments()) {
    EXPECT_EQ(seg.begin, covered);
    covered += seg.count;
  }
  EXPECT_EQ(covered, task->param_count());
}

TEST(SyntheticTasks, SequenceTaskShape) {
  auto task = make_sequence_task(3);
  EXPECT_EQ(task->quality_metric(), "token accuracy");
  size_t covered = 0;
  for (const auto& seg : task->segments()) {
    EXPECT_EQ(seg.begin, covered);
    covered += seg.count;
  }
  EXPECT_EQ(covered, task->param_count());
}

TEST(SyntheticTasks, GradientIsDeterministic) {
  auto task = make_vision_task(5);
  std::vector<size_t> idx{0, 1, 2, 3};
  Tensor g1(task->param_count()), g2(task->param_count());
  const double l1 = task->gradient(idx, g1.span());
  const double l2 = task->gradient(idx, g2.span());
  EXPECT_EQ(l1, l2);
  for (size_t i = 0; i < g1.size(); ++i) ASSERT_EQ(g1[i], g2[i]);
}

TEST(SyntheticTasks, GradientDescendsLoss) {
  auto task = make_vision_task(7);
  std::vector<size_t> idx;
  for (size_t i = 0; i < 64; ++i) idx.push_back(i);
  Tensor g(task->param_count());
  const double before = task->gradient(idx, g.span());
  auto params = task->params();
  for (size_t i = 0; i < params.size(); ++i) params[i] -= 0.05f * g[i];
  Tensor g2(task->param_count());
  const double after = task->gradient(idx, g2.span());
  EXPECT_LT(after, before);
}

TEST(SyntheticTasks, FreshTaskNearChanceQuality) {
  auto task = make_vision_task(9);
  // 50 classes, top-5: chance = 10%.
  const double q = task->evaluate();
  EXPECT_GT(q, 0.02);
  EXPECT_LT(q, 0.35);
}

TEST(SyntheticTasks, IndependentSeedsGiveDifferentData) {
  auto a = make_vision_task(1);
  auto b = make_vision_task(2);
  std::vector<size_t> idx{0, 1, 2, 3, 4, 5, 6, 7};
  Tensor ga(a->param_count()), gb(b->param_count());
  const double la = a->gradient(idx, ga.span());
  const double lb = b->gradient(idx, gb.span());
  EXPECT_NE(la, lb);
}

TEST(SyntheticTasks, CnnTaskShape) {
  auto task = make_cnn_task(3);
  EXPECT_EQ(task->quality_metric(), "top-1 accuracy");
  size_t covered = 0;
  for (const auto& seg : task->segments()) {
    EXPECT_EQ(seg.begin, covered);
    covered += seg.count;
  }
  EXPECT_EQ(covered, task->param_count());
  // Fresh CNN near chance (8 classes).
  const double q = task->evaluate();
  EXPECT_GT(q, 0.03);
  EXPECT_LT(q, 0.35);
}

// ------------------------------------------------------------ harness
TEST(Convergence, DenseLearnsVisionTask) {
  auto task = make_vision_task(11);
  const auto result =
      run_convergence(*task, quick(ConvergenceAlgorithm::kDense, 10));
  EXPECT_GT(result.final_quality, 0.8);
  // Loss decreases from first to last epoch.
  EXPECT_LT(result.curve.back().train_loss, result.curve.front().train_loss);
}

TEST(Convergence, DenseLearnsSequenceTask) {
  auto task = make_sequence_task(11);
  const auto result =
      run_convergence(*task, quick(ConvergenceAlgorithm::kDense, 10));
  EXPECT_GT(result.final_quality, 0.5);
}

TEST(Convergence, SparseAlgorithmsTrackDense) {
  // Table 2 shape: top-k variants land within a few points of dense.
  const int epochs = 12;
  auto dense_task = make_vision_task(13);
  const auto dense =
      run_convergence(*dense_task, quick(ConvergenceAlgorithm::kDense, epochs));
  auto topk_task = make_vision_task(13);
  const auto topk =
      run_convergence(*topk_task, quick(ConvergenceAlgorithm::kTopk, epochs));
  auto mstopk_task = make_vision_task(13);
  const auto mstopk = run_convergence(
      *mstopk_task, quick(ConvergenceAlgorithm::kMstopk, epochs));
  EXPECT_GT(dense.final_quality, 0.8);
  EXPECT_GT(topk.final_quality, dense.final_quality - 0.08);
  EXPECT_GT(mstopk.final_quality, dense.final_quality - 0.08);
  // Dense is the ceiling (small tolerance for eval noise).
  EXPECT_GE(dense.final_quality + 0.02, topk.final_quality);
  EXPECT_GE(dense.final_quality + 0.02, mstopk.final_quality);
}

TEST(Convergence, CnnLearnsTranslationInvariantPatterns) {
  // The real-convolution task: dense training must solve it, and MSTopK
  // sparsified training must stay close — conv gradients through the same
  // sparsification path as the paper's CNNs.
  auto dense_task = make_cnn_task(25);
  ConvergenceOptions options = quick(ConvergenceAlgorithm::kDense, 8);
  options.learning_rate = 0.4;
  const auto dense = run_convergence(*dense_task, options);
  EXPECT_GT(dense.final_quality, 0.8);
  auto sparse_task = make_cnn_task(25);
  options.algorithm = ConvergenceAlgorithm::kMstopk;
  const auto sparse = run_convergence(*sparse_task, options);
  EXPECT_GT(sparse.final_quality, dense.final_quality - 0.15);
}

TEST(Convergence, RandomKIsMarkedlyWorse) {
  // Magnitude-based selection matters: random-k at the same density
  // converges far slower (ablation).
  const int epochs = 10;
  auto topk_task = make_vision_task(15);
  const auto topk =
      run_convergence(*topk_task, quick(ConvergenceAlgorithm::kTopk, epochs));
  auto random_task = make_vision_task(15);
  const auto random = run_convergence(
      *random_task, quick(ConvergenceAlgorithm::kRandomk, epochs));
  EXPECT_GT(topk.final_quality, random.final_quality + 0.1);
}

TEST(Convergence, ErrorFeedbackResidualStaysBounded) {
  auto task = make_vision_task(17);
  const auto result =
      run_convergence(*task, quick(ConvergenceAlgorithm::kTopk, 10));
  // EF invariant: the residual does not blow up over training.
  const double early = result.curve[2].residual_norm;
  const double late = result.curve.back().residual_norm;
  EXPECT_LT(late, 20.0 * (early + 1.0));
}

TEST(Convergence, WithoutErrorFeedbackConvergesWorse) {
  const int epochs = 10;
  ConvergenceOptions with_ef = quick(ConvergenceAlgorithm::kTopk, epochs);
  with_ef.density = 0.02;
  ConvergenceOptions without_ef = with_ef;
  without_ef.use_error_feedback = false;
  auto task_a = make_vision_task(19);
  auto task_b = make_vision_task(19);
  const auto ef = run_convergence(*task_a, with_ef);
  const auto no_ef = run_convergence(*task_b, without_ef);
  EXPECT_GT(ef.final_quality, no_ef.final_quality - 0.01);
}

TEST(Convergence, MstopkUsesLessCommunicationTime) {
  // The whole point: HiTopKComm's simulated communication time is far below
  // NaiveAG's at the same density.
  const int epochs = 4;
  auto topk_task = make_vision_task(23);
  const auto topk =
      run_convergence(*topk_task, quick(ConvergenceAlgorithm::kTopk, epochs));
  auto mstopk_task = make_vision_task(23);
  const auto mstopk = run_convergence(
      *mstopk_task, quick(ConvergenceAlgorithm::kMstopk, epochs));
  EXPECT_LT(mstopk.simulated_comm_seconds, 0.5 * topk.simulated_comm_seconds);
}

TEST(Convergence, CurveHasOneEntryPerEpoch) {
  auto task = make_vision_task(29);
  const auto result =
      run_convergence(*task, quick(ConvergenceAlgorithm::kDense, 5));
  ASSERT_EQ(result.curve.size(), 5u);
  for (int e = 0; e < 5; ++e) EXPECT_EQ(result.curve[e].epoch, e + 1);
}

TEST(Convergence, AlgorithmNamesRoundTrip) {
  for (const char* name : {"dense", "topk", "mstopk", "randomk"}) {
    const auto algorithm = convergence_algorithm_from_name(name);
    EXPECT_FALSE(convergence_algorithm_name(algorithm).empty());
  }
  EXPECT_THROW(convergence_algorithm_from_name("adam"), CheckError);
}

}  // namespace
}  // namespace hitopk::train
