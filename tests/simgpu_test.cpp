// Tests for the V100 cost model: the Fig. 6 operator ordering and the §5.4
// LARS anchors.
#include <gtest/gtest.h>

#include "models/calibration.h"
#include "simgpu/gpu_model.h"

namespace hitopk::simgpu {
namespace {

TEST(GpuCostModel, CoalescedPassFasterThanSortPass) {
  GpuCostModel gpu;
  EXPECT_LT(gpu.coalesced_pass_seconds(1 << 20),
            gpu.sort_pass_seconds(1 << 20));
}

TEST(GpuCostModel, ZeroSizeOpsCostNothing) {
  GpuCostModel gpu;
  EXPECT_EQ(gpu.exact_topk_seconds(0), 0.0);
  EXPECT_EQ(gpu.mstopk_seconds(0, 0), 0.0);
  EXPECT_EQ(gpu.dgc_topk_seconds(0), 0.0);
}

TEST(GpuCostModel, Fig6OrderingHoldsAcrossSizes) {
  // nn.topk > DGC > MSTopK at every measured size of Fig. 6.
  GpuCostModel gpu;
  for (size_t d : {size_t{256} << 10, size_t{1} << 20, size_t{8} << 20,
                   size_t{32} << 20, size_t{128} << 20}) {
    const size_t k = d / 1000;
    const double exact = gpu.exact_topk_seconds(d);
    const double dgc = gpu.dgc_topk_seconds(d);
    const double mstopk = gpu.mstopk_seconds(d, k, 30);
    EXPECT_GT(exact, dgc) << "d=" << d;
    EXPECT_GT(dgc, mstopk) << "d=" << d;
  }
}

TEST(GpuCostModel, ExactTopKCalibratedToPaper) {
  // Fig. 6b: nn.topk at 128 M elements is roughly 1.2 s.
  GpuCostModel gpu;
  const double t = gpu.exact_topk_seconds(128'000'000);
  EXPECT_GT(t, 0.8);
  EXPECT_LT(t, 1.6);
}

TEST(GpuCostModel, MsTopKNegligibleAtScale) {
  // Fig. 6: MSTopK stays well under 50 ms even at 128 M elements.
  GpuCostModel gpu;
  EXPECT_LT(gpu.mstopk_seconds(128'000'000, 128'000, 30), 0.05);
}

TEST(GpuCostModel, MsTopKScalesWithSamplings) {
  GpuCostModel gpu;
  const double n10 = gpu.mstopk_seconds(1 << 24, 1 << 14, 10);
  const double n30 = gpu.mstopk_seconds(1 << 24, 1 << 14, 30);
  EXPECT_GT(n30, n10);
  EXPECT_LT(n30, 3.5 * n10);
}

TEST(GpuCostModel, CostsMonotonicInSize) {
  GpuCostModel gpu;
  size_t prev_d = 1 << 16;
  for (size_t d = 1 << 18; d <= (1u << 26); d <<= 2) {
    EXPECT_GT(gpu.exact_topk_seconds(d), gpu.exact_topk_seconds(prev_d));
    EXPECT_GT(gpu.mstopk_seconds(d, d / 1000, 30),
              gpu.mstopk_seconds(prev_d, prev_d / 1000, 30));
    EXPECT_GT(gpu.dgc_topk_seconds(d), gpu.dgc_topk_seconds(prev_d));
    prev_d = d;
  }
}

TEST(GpuCostModel, LarsAnchoredToPaper) {
  // §5.4: full-model LARS is ~11 ms on ResNet-50 (161 layers, 25.6 M) and
  // ~30 ms on Transformer.
  GpuCostModel gpu;
  const double resnet = gpu.lars_seconds(161, 25'600'000);
  EXPECT_GT(resnet, 0.008);
  EXPECT_LT(resnet, 0.014);
  const double transformer = gpu.lars_seconds(256 + 196, 110'000'000);
  EXPECT_GT(transformer, 0.020);
  EXPECT_LT(transformer, 0.040);
}

TEST(GpuCostModel, ScatterAddScalesWithNnz) {
  GpuCostModel gpu;
  EXPECT_GT(gpu.scatter_add_seconds(1 << 22), gpu.scatter_add_seconds(1 << 12));
}

TEST(GpuCostModel, Fig1CompressionDominatesFfbp) {
  // Fig. 1's motivation: exact top-k on the full ResNet-50 gradient
  // (25.6 M elements) costs ~0.24 s, exceeding the 0.204 s FF&BP time.
  GpuCostModel gpu;
  const double compression = gpu.exact_topk_seconds(25'600'000);
  EXPECT_GT(compression, 0.15);
  EXPECT_LT(compression, 0.35);
}

}  // namespace
}  // namespace hitopk::simgpu
