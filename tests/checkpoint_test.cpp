// Tests for the checkpoint format (writer/reader/store) and the
// fault-tolerant convergence layer built on it: bitwise restore-and-continue
// identity, corruption detection with version fallback, elastic worker
// preemption with the documented error-feedback remap policy, and the
// abort-restart / elastic-continue drivers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "core/check.h"
#include "train/checkpoint.h"
#include "train/convergence.h"
#include "train/ft_convergence.h"
#include "train/synthetic.h"

namespace hitopk::train {
namespace {

// ------------------------------------------------------------ format

std::vector<uint8_t> sample_blob() {
  CheckpointWriter writer;
  const std::vector<uint64_t> meta{1, 2, 3};
  const std::vector<double> clock{0.5, 1.5};
  const std::vector<float> params{1.0f, -2.0f, 0.25f, 8.0f};
  writer.put_u64s("meta", meta);
  writer.put_f64s("clock", clock);
  writer.put_floats("params", params);
  return writer.finish();
}

TEST(CheckpointFormat, RoundTripsTypedRecords) {
  const auto blob = sample_blob();
  const CheckpointReader reader(blob);
  EXPECT_EQ(reader.names(),
            (std::vector<std::string>{"meta", "clock", "params"}));
  EXPECT_TRUE(reader.has("clock"));
  EXPECT_FALSE(reader.has("nope"));
  const auto meta = reader.u64s("meta");
  ASSERT_EQ(meta.size(), 3u);
  EXPECT_EQ(meta[1], 2u);
  const auto clock = reader.f64s("clock");
  ASSERT_EQ(clock.size(), 2u);
  EXPECT_EQ(clock[1], 1.5);
  const auto params = reader.floats("params");
  ASSERT_EQ(params.size(), 4u);
  EXPECT_EQ(params[3], 8.0f);
}

TEST(CheckpointFormat, MissingAndMistypedRecordsAreRecoverable) {
  const auto blob = sample_blob();
  const CheckpointReader reader(blob);
  EXPECT_THROW(reader.u64s("absent"), ConfigError);
  EXPECT_THROW(reader.floats("meta"), ConfigError);  // written as u64s
  EXPECT_THROW(reader.u64s("params"), ConfigError);  // written as floats
}

TEST(CheckpointFormat, EveryFlippedByteIsDetected) {
  const auto blob = sample_blob();
  // Corrupt every single byte position in turn: the reader must throw the
  // recoverable ConfigError each time — no crash, no silent acceptance.
  for (size_t i = 0; i < blob.size(); ++i) {
    std::vector<uint8_t> bad = blob;
    bad[i] ^= 0x40;
    EXPECT_THROW(CheckpointReader reader(bad), ConfigError)
        << "flipped byte " << i << " went undetected";
  }
}

TEST(CheckpointFormat, TruncationAndGarbageAreRecoverable) {
  const auto blob = sample_blob();
  for (size_t keep : {size_t{0}, size_t{3}, size_t{11}, blob.size() - 1}) {
    std::vector<uint8_t> torn(blob.begin(),
                              blob.begin() + static_cast<ptrdiff_t>(keep));
    EXPECT_THROW(CheckpointReader reader(torn), ConfigError);
  }
  std::vector<uint8_t> garbage(256, 0xab);
  EXPECT_THROW(CheckpointReader reader(garbage), ConfigError);
}

TEST(CheckpointFormat, WriterIsSpentAfterFinish) {
  CheckpointWriter writer;
  const std::vector<uint64_t> v{1};
  writer.put_u64s("v", v);
  writer.finish();
  EXPECT_THROW(writer.finish(), CheckError);
}

// ------------------------------------------------------------ store

TEST(CheckpointStore, KeepsARingAndEvictsOldest) {
  CheckpointStore store(2);
  EXPECT_EQ(store.commit(sample_blob()), 1u);
  EXPECT_EQ(store.commit(sample_blob()), 2u);
  EXPECT_EQ(store.commit(sample_blob()), 3u);
  EXPECT_EQ(store.versions(), 2u);
  EXPECT_EQ(store.newest_version(), 3u);
  EXPECT_THROW(store.mutable_blob(1), CheckError);  // evicted
}

TEST(CheckpointStore, CommitRejectsMalformedBlobsWithoutEvicting) {
  CheckpointStore store(1);
  store.commit(sample_blob());
  std::vector<uint8_t> bad = sample_blob();
  bad[bad.size() / 2] ^= 0xff;
  EXPECT_THROW(store.commit(std::move(bad)), ConfigError);
  // The good snapshot survived the failed write.
  EXPECT_EQ(store.versions(), 1u);
  ASSERT_TRUE(store.newest_valid().has_value());
  EXPECT_EQ(store.newest_valid()->version, 1u);
}

TEST(CheckpointStore, FallsBackPastCorruptVersions) {
  CheckpointStore store(3);
  store.commit(sample_blob());
  store.commit(sample_blob());
  store.commit(sample_blob());
  store.mutable_blob(3)[5] ^= 0x01;  // newest corrupt
  store.mutable_blob(2)[9] ^= 0x01;  // and the one before it
  const auto snapshot = store.newest_valid();
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_EQ(snapshot->version, 1u);
  EXPECT_EQ(store.fallbacks(), 2);

  store.mutable_blob(1)[1] ^= 0x01;  // now everything is corrupt
  EXPECT_FALSE(store.newest_valid().has_value());
}

// --------------------------------------------- engine restore identity

ConvergenceOptions quick(ConvergenceAlgorithm algorithm) {
  ConvergenceOptions options;
  options.algorithm = algorithm;
  options.epochs = 4;
  options.nodes = 2;
  options.gpus_per_node = 2;
  options.local_batch = 32;
  options.density = 0.05;
  options.seed = 21;
  return options;
}

void drive_to_end(ConvergenceEngine& engine) {
  while (!engine.done()) {
    if (!engine.epoch_open()) engine.begin_epoch();
    engine.step();
    if (engine.step_in_epoch() == engine.iters_per_epoch()) {
      engine.end_epoch();
    }
  }
}

void expect_bitwise_equal(const ConvergenceEngine& a,
                          const ConvergenceEngine& b, ConvergenceTask& ta,
                          ConvergenceTask& tb) {
  ASSERT_EQ(ta.param_count(), tb.param_count());
  EXPECT_EQ(std::memcmp(ta.params().data(), tb.params().data(),
                        ta.param_count() * sizeof(float)),
            0);
  const auto ra = a.result();
  const auto rb = b.result();
  ASSERT_EQ(ra.curve.size(), rb.curve.size());
  for (size_t i = 0; i < ra.curve.size(); ++i) {
    EXPECT_EQ(ra.curve[i].train_loss, rb.curve[i].train_loss);
    EXPECT_EQ(ra.curve[i].quality, rb.curve[i].quality);
    EXPECT_EQ(ra.curve[i].residual_norm, rb.curve[i].residual_norm);
  }
  EXPECT_EQ(ra.best_quality, rb.best_quality);
  EXPECT_EQ(a.comm_seconds(), b.comm_seconds());
}

// Serialize mid-epoch, restore into a fresh engine, and check (1) the
// serialize∘restore∘serialize fixed point and (2) that both engines finish
// the run bitwise-identically — parameters, curve, and simulated clock.
void roundtrip_case(ConvergenceAlgorithm algorithm, bool use_lars = false) {
  auto task_a = make_vision_task(11);
  auto task_b = make_vision_task(11);
  ConvergenceOptions options = quick(algorithm);
  options.use_lars = use_lars;
  ConvergenceEngine a(*task_a, options);

  // 1.5 epochs in: mid-epoch, warm optimizer, populated EF residuals.
  a.begin_epoch();
  for (int i = 0; i < a.iters_per_epoch(); ++i) a.step();
  a.end_epoch();
  a.begin_epoch();
  for (int i = 0; i < a.iters_per_epoch() / 2; ++i) a.step();

  const std::vector<uint8_t> blob = a.serialize();
  ConvergenceEngine b(*task_b, options);
  b.restore(blob);
  EXPECT_EQ(b.serialize(), blob) << "restore is not a serialization fixed "
                                    "point";

  while (a.step_in_epoch() < a.iters_per_epoch()) a.step();
  a.end_epoch();
  while (b.step_in_epoch() < b.iters_per_epoch()) b.step();
  b.end_epoch();
  drive_to_end(a);
  drive_to_end(b);
  expect_bitwise_equal(a, b, *task_a, *task_b);
}

TEST(EngineCheckpoint, DenseSgdRoundTripsBitwise) {
  roundtrip_case(ConvergenceAlgorithm::kDense);
}

TEST(EngineCheckpoint, TopkWithErrorFeedbackRoundTripsBitwise) {
  roundtrip_case(ConvergenceAlgorithm::kTopk);
}

TEST(EngineCheckpoint, MstopkRoundTripsBitwise) {
  roundtrip_case(ConvergenceAlgorithm::kMstopk);
}

TEST(EngineCheckpoint, LocalSgdRoundTripsBitwise) {
  roundtrip_case(ConvergenceAlgorithm::kLocalSgd);
}

TEST(EngineCheckpoint, LarsRoundTripsBitwise) {
  roundtrip_case(ConvergenceAlgorithm::kDense, /*use_lars=*/true);
}

TEST(EngineCheckpoint, RestoreRejectsIncompatibleRuns) {
  auto task = make_vision_task(11);
  ConvergenceEngine engine(*task, quick(ConvergenceAlgorithm::kDense));
  const auto blob = engine.serialize();

  auto other_task = make_vision_task(11);
  auto other_options = quick(ConvergenceAlgorithm::kTopk);
  ConvergenceEngine wrong_algo(*other_task, other_options);
  EXPECT_THROW(wrong_algo.restore(blob), ConfigError);

  auto seed_options = quick(ConvergenceAlgorithm::kDense);
  seed_options.seed = 99;
  ConvergenceEngine wrong_seed(*other_task, seed_options);
  EXPECT_THROW(wrong_seed.restore(blob), ConfigError);

  std::vector<uint8_t> corrupt = blob;
  corrupt[corrupt.size() / 3] ^= 0x10;
  ConvergenceEngine fresh(*other_task, quick(ConvergenceAlgorithm::kDense));
  EXPECT_THROW(fresh.restore(corrupt), ConfigError);
}

// --------------------------------------------- EF remap policy

TEST(EngineElastic, TopkPreemptFoldsResidualIntoSurvivor) {
  auto task = make_vision_task(11);
  ConvergenceEngine engine(*task, quick(ConvergenceAlgorithm::kTopk));
  engine.begin_epoch();
  for (int i = 0; i < 3; ++i) engine.step();

  const auto blob = engine.serialize();
  const CheckpointReader reader(blob);
  // Residual keys exist for the full world before the preemption.
  ASSERT_TRUE(reader.has("ef:w1"));

  // Folding preserves the total unsent gradient mass (sum over all
  // residual coordinates) up to float rounding in the elementwise add.
  ConvergenceEngine probe(*task, quick(ConvergenceAlgorithm::kTopk));
  probe.restore(blob);
  // Reach inside via serialization: sum before == sum after preempt.
  auto sum_of = [](const std::vector<uint8_t>& b) {
    const CheckpointReader r(b);
    double sum = 0.0;
    for (const auto& name : r.names()) {
      if (name.rfind("ef:", 0) != 0) continue;
      for (float v : r.floats(name)) sum += static_cast<double>(v);
    }
    return sum;
  };
  const double before = sum_of(blob);
  probe.preempt_worker(1);
  const double after = sum_of(probe.serialize());
  EXPECT_NEAR(before, after, 1e-3 * std::abs(before));
  EXPECT_EQ(probe.active_workers(), 3);

  // The dead worker's entry is gone; a restored worker starts cold (zero).
  const CheckpointReader shrunk(probe.serialize());
  EXPECT_FALSE(shrunk.has("ef:w1"));
  probe.restore_worker(1);
  const CheckpointReader regrown(probe.serialize());
  ASSERT_TRUE(regrown.has("ef:w1"));
  for (float v : regrown.floats("ef:w1")) ASSERT_EQ(v, 0.0f);
}

TEST(EngineElastic, PreemptedWorldKeepsTraining) {
  // Every algorithm survives a mid-run shrink to 3 of 4 workers (uneven
  // world: MSTopK falls back to flat TopK) and completes the run.
  for (const auto algorithm :
       {ConvergenceAlgorithm::kDense, ConvergenceAlgorithm::kTopk,
        ConvergenceAlgorithm::kMstopk, ConvergenceAlgorithm::kGtopk,
        ConvergenceAlgorithm::kRandomk, ConvergenceAlgorithm::kLocalSgd}) {
    auto task = make_vision_task(11);
    ConvergenceEngine engine(*task, quick(algorithm));
    engine.begin_epoch();
    for (int i = 0; i < 2; ++i) engine.step();
    engine.preempt_worker(2);
    EXPECT_EQ(engine.active_workers(), 3);
    while (engine.step_in_epoch() < engine.iters_per_epoch()) engine.step();
    engine.end_epoch();
    engine.preempt_worker(2);  // idempotent
    EXPECT_EQ(engine.active_workers(), 3);
    engine.restore_worker(2);
    EXPECT_EQ(engine.active_workers(), 4);
    drive_to_end(engine);
    const auto result = engine.result();
    EXPECT_EQ(result.curve.size(), 4u)
        << convergence_algorithm_name(algorithm);
    EXPECT_GT(result.best_quality, 0.0)
        << convergence_algorithm_name(algorithm);
  }
}

TEST(EngineElastic, ZeroActiveWorkersRefusesToStep) {
  auto task = make_vision_task(11);
  ConvergenceEngine engine(*task, quick(ConvergenceAlgorithm::kDense));
  engine.begin_epoch();
  engine.step();
  for (int w = 0; w < engine.world(); ++w) engine.preempt_worker(w);
  EXPECT_EQ(engine.active_workers(), 0);
  EXPECT_THROW(engine.step(), ConfigError);
  engine.restore_worker(0);
  engine.step();  // single survivor trains on alone
  EXPECT_EQ(engine.active_workers(), 1);
}

// --------------------------------------------- fault-tolerant driver

FtOptions ft_base(ConvergenceAlgorithm algorithm) {
  FtOptions options;
  options.training = quick(algorithm);
  options.checkpoint_interval = 5;
  options.compute_seconds_per_iter = 0.05;
  return options;
}

TEST(FaultTolerant, FaultFreeMatchesRunConvergence) {
  auto task_a = make_vision_task(11);
  auto task_b = make_vision_task(11);
  const auto options = ft_base(ConvergenceAlgorithm::kTopk);
  const auto plain = run_convergence(*task_a, options.training);
  const auto ft = run_convergence_ft(*task_b, options);
  EXPECT_TRUE(ft.completed);
  EXPECT_EQ(ft.preemptions, 0);
  ASSERT_EQ(ft.convergence.curve.size(), plain.curve.size());
  for (size_t i = 0; i < plain.curve.size(); ++i) {
    EXPECT_EQ(ft.convergence.curve[i].train_loss, plain.curve[i].train_loss);
    EXPECT_EQ(ft.convergence.curve[i].quality, plain.curve[i].quality);
  }
  EXPECT_EQ(std::memcmp(task_a->params().data(), task_b->params().data(),
                        task_a->param_count() * sizeof(float)),
            0);
}

TEST(FaultTolerant, ElasticContinueShrinksAndRegrows) {
  auto task = make_vision_task(11);
  auto options = ft_base(ConvergenceAlgorithm::kTopk);
  options.policy = RecoveryPolicy::kElasticContinue;
  options.faults.preempt(1, 0.3, 1.5);
  options.faults.preempt(3, 0.6);  // permanent
  options.faults.set_detection_timeout(0.1);
  const auto result = run_convergence_ft(*task, options);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.preemptions, 2);
  EXPECT_EQ(result.regrows, 1);
  EXPECT_EQ(result.restores, 0);
  EXPECT_EQ(result.min_active_workers, 2);
  EXPECT_EQ(result.convergence.curve.size(), 4u);
  EXPECT_GT(result.convergence.best_quality, 0.0);
}

TEST(FaultTolerant, ElasticStallsUntilFirstReturn) {
  auto task = make_vision_task(11);
  auto options = ft_base(ConvergenceAlgorithm::kDense);
  for (int w = 0; w < 4; ++w) options.faults.preempt(w, 0.2, 5.0);
  const auto result = run_convergence_ft(*task, options);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.min_active_workers, 1);  // shrank before the stall
  EXPECT_GE(result.wall_seconds, 5.0);      // waited for the first return

  auto doomed_task = make_vision_task(11);
  auto doomed = ft_base(ConvergenceAlgorithm::kDense);
  for (int w = 0; w < 4; ++w) doomed.faults.preempt(w, 0.2);  // permanent
  const auto dead = run_convergence_ft(*doomed_task, doomed);
  EXPECT_FALSE(dead.completed);
}

TEST(FaultTolerant, AbortRestartRollsBackToCheckpoint) {
  auto task = make_vision_task(11);
  auto options = ft_base(ConvergenceAlgorithm::kDense);
  options.policy = RecoveryPolicy::kAbortRestart;
  options.restart_seconds = 2.0;
  options.faults.preempt(2, 0.7);
  options.faults.set_detection_timeout(0.1);
  const auto result = run_convergence_ft(*task, options);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.preemptions, 1);
  EXPECT_EQ(result.restores, 1);
  EXPECT_GT(result.lost_iterations, 0);  // mid-interval rollback
  EXPECT_EQ(result.min_active_workers, 4);  // restarts run a full world
  EXPECT_EQ(result.convergence.curve.size(), 4u);
  EXPECT_GT(result.wall_seconds, 2.0);
}

TEST(FaultTolerant, CorruptedCheckpointFallsBackNeverCrashes) {
  auto task = make_vision_task(11);
  auto options = ft_base(ConvergenceAlgorithm::kTopk);
  options.policy = RecoveryPolicy::kAbortRestart;
  options.restart_seconds = 1.0;
  options.faults.preempt(0, 0.9);
  options.faults.set_detection_timeout(0.1);
  // Torn writes: every checkpoint after the initial snapshot is corrupted
  // in place.  The restore must detect this and fall back to the t = 0
  // snapshot instead of crashing or silently loading garbage.
  options.after_commit = [](CheckpointStore& store, uint64_t version) {
    if (version > 1) {
      auto& blob = store.mutable_blob(version);
      blob[blob.size() / 2] ^= 0xff;
    }
  };
  const auto result = run_convergence_ft(*task, options);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.restores, 1);
  EXPECT_GT(result.checkpoint_fallbacks, 0);
  EXPECT_EQ(result.convergence.curve.size(), 4u);
  EXPECT_GT(result.convergence.best_quality, 0.0);
}

TEST(FaultTolerant, CheckpointWriteCostScalesWithStateSize) {
  auto task_free = make_vision_task(11);
  auto task_paid = make_vision_task(11);
  auto options = ft_base(ConvergenceAlgorithm::kDense);
  const auto free_writes = run_convergence_ft(*task_free, options);
  EXPECT_EQ(free_writes.checkpoint_seconds_total, 0.0);
  options.checkpoint_write_gbps = 1e-3;  // deliberately slow: visible cost
  const auto paid = run_convergence_ft(*task_paid, options);
  EXPECT_GT(paid.checkpoint_seconds_total, 0.0);
  EXPECT_EQ(paid.checkpoint_commits, free_writes.checkpoint_commits);
  EXPECT_GT(paid.wall_seconds, free_writes.wall_seconds);
  // Same convergence either way: checkpoint cost is pure wall time.
  EXPECT_EQ(paid.convergence.curve.back().quality,
            free_writes.convergence.curve.back().quality);
}

TEST(FaultTolerant, DeterministicInPlanAndSeed) {
  auto make = [] {
    auto options = ft_base(ConvergenceAlgorithm::kMstopk);
    options.faults.preempt(1, 0.4, 2.0);
    options.faults.set_detection_timeout(0.1);
    return options;
  };
  auto task_a = make_vision_task(11);
  auto task_b = make_vision_task(11);
  const auto a = run_convergence_ft(*task_a, make());
  const auto b = run_convergence_ft(*task_b, make());
  EXPECT_EQ(a.wall_seconds, b.wall_seconds);
  ASSERT_EQ(a.convergence.curve.size(), b.convergence.curve.size());
  for (size_t i = 0; i < a.convergence.curve.size(); ++i) {
    EXPECT_EQ(a.convergence.curve[i].train_loss,
              b.convergence.curve[i].train_loss);
  }
  EXPECT_EQ(std::memcmp(task_a->params().data(), task_b->params().data(),
                        task_a->param_count() * sizeof(float)),
            0);
}

}  // namespace
}  // namespace hitopk::train
