// Tests for the parameter-server aggregation baseline.
#include <gtest/gtest.h>

#include "collectives/param_server.h"
#include "collectives/torus2d.h"
#include "core/rng.h"
#include "core/tensor.h"

namespace hitopk::coll {
namespace {

using simnet::Cluster;
using simnet::LinkParams;
using simnet::Topology;

Topology fabric(int nodes, int gpus) {
  return Topology(nodes, gpus, LinkParams{1e-6, 1e-9}, LinkParams{1e-5, 1e-8});
}

class ParamServerShapeTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ParamServerShapeTest, MatchesDenseReference) {
  const auto [m, n] = GetParam();
  Topology topo = fabric(m, n);
  Cluster cluster(topo);
  const size_t elems = 111;  // ragged shards
  std::vector<Tensor> grads;
  Tensor reference(elems);
  Rng rng(static_cast<uint64_t>(m * 10 + n));
  for (int r = 0; r < m * n; ++r) {
    Tensor t(elems);
    t.fill_normal(rng, 0.0f, 1.0f);
    reference += t;
    grads.push_back(std::move(t));
  }
  RankData spans;
  for (auto& g : grads) spans.push_back(g.span());
  param_server_allreduce(cluster, spans, elems, WireDtype::kFp32, 0.0);
  for (const auto& g : grads) {
    for (size_t i = 0; i < elems; ++i) {
      ASSERT_NEAR(g[i], reference[i], 1e-4f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ParamServerShapeTest,
                         ::testing::Values(std::pair{1, 4}, std::pair{2, 2},
                                           std::pair{3, 4}, std::pair{4, 8}));

TEST(ParamServer, BreakdownSumsToTotal) {
  Cluster cluster(Topology::tencent_cloud(16, 8));
  const auto r = param_server_allreduce(cluster, {}, 1u << 20, WireDtype::kFp16, 0.0);
  EXPECT_NEAR(r.push + r.pull, r.total, 1e-12);
  EXPECT_GT(r.push, 0.0);
  EXPECT_GT(r.pull, 0.0);
}

TEST(ParamServer, SlowerThanTorusOnCloudCluster) {
  // The fan-in congestion at server NICs makes co-located PS lose to the
  // topology-aware 2DTAR (the §1 argument for All-Reduce).
  const size_t elems = 25u << 20;
  Cluster c_ps(Topology::tencent_cloud(16, 8));
  const double ps = param_server_allreduce(c_ps, {}, elems, WireDtype::kFp16, 0.0).total;
  Cluster c_torus(Topology::tencent_cloud(16, 8));
  const double torus = torus2d_allreduce(c_torus, {}, elems, WireDtype::kFp16, 0.0).total;
  EXPECT_GT(ps, torus);
}

TEST(ParamServer, TimingOnlyMatchesFunctional) {
  Topology topo = fabric(2, 2);
  const size_t elems = 64;
  Cluster ca(topo), cb(topo);
  std::vector<Tensor> grads(4, Tensor(elems));
  RankData spans;
  for (auto& g : grads) spans.push_back(g.span());
  const double functional =
      param_server_allreduce(ca, spans, elems, WireDtype::kFp32, 0.0).total;
  const double timing = param_server_allreduce(cb, {}, elems, WireDtype::kFp32, 0.0).total;
  EXPECT_DOUBLE_EQ(functional, timing);
}

}  // namespace
}  // namespace hitopk::coll
